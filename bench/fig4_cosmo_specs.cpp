/// Regenerates paper Figure 4: the COSMO-SPECS case study on 100 ranks.
///   (a) timeline with a growing MPI (red) share over the run;
///   (b) SOS-time overlay highlighting ranks 44, 45, 54, 55, 64, 65, with
///       rank 54 the single worst.
/// Also reports the baseline comparison motivating SOS-time: plain segment
/// durations cannot localize the culprit ranks.

#include <algorithm>
#include <iostream>

#include "analysis/baselines.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "bench/bench_util.hpp"
#include "util/format.hpp"
#include "vis/chart.hpp"
#include "vis/heatmap.hpp"
#include "vis/timeline.hpp"

int main() {
  using namespace perfvar;
  bench::Verdict verdict;

  bench::header("Figure 4: COSMO-SPECS load imbalance (100 ranks)");
  const apps::CosmoSpecsScenario scenario = apps::buildCosmoSpecs();
  sim::SimReport simReport;
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions, &simReport);
  std::cout << "  simulated " << tr.processCount() << " ranks, "
            << simReport.events << " events, makespan "
            << fmt::seconds(simReport.makespan) << '\n';

  const analysis::AnalysisResult result = analysis::analyzeTrace(tr);

  // --- (a) MPI share over the run -----------------------------------------
  bench::header("Figure 4(a): MPI share per iteration decile");
  const auto sync = result.sos->syncFractionPerIteration();
  std::cout << "  series:";
  std::vector<double> deciles;
  for (std::size_t d = 0; d < 10; ++d) {
    const std::size_t lo = d * sync.size() / 10;
    const std::size_t hi = std::max(lo + 1, (d + 1) * sync.size() / 10);
    double avg = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      avg += sync[i];
    }
    avg /= static_cast<double>(hi - lo);
    deciles.push_back(avg);
    std::cout << ' ' << fmt::percent(avg);
  }
  std::cout << "\n  sparkline: " << fmt::sparkline(sync) << '\n';
  const bool growing = deciles.back() > 1.5 * deciles.front();
  bench::paperRow("MPI share trend over run", "increasing, dominant late",
                  fmt::percent(deciles.front()) + " -> " +
                      fmt::percent(deciles.back()),
                  growing);
  verdict.check("MPI share grows", growing);

  const bool slowdown = result.variation.durationTrend.slope > 0.0 &&
                        result.variation.durationTrend.r2 > 0.8;
  bench::paperRow("segment durations over run", "gradually increasing",
                  fmt::seconds(result.variation.durationTrend.slope) +
                      "/iteration (r2 " +
                      fmt::fixed(result.variation.durationTrend.r2, 2) + ")",
                  slowdown);
  verdict.check("durations increase", slowdown);

  // --- (b) SOS hotspot map ---------------------------------------------------
  bench::header("Figure 4(b): SOS-time hotspot ranking");
  std::cout << "  top 8 processes by total SOS-time:\n";
  for (std::size_t i = 0; i < 8; ++i) {
    const auto p = result.variation.processesBySos[i];
    std::cout << "    " << tr.processes[p].name << "  "
              << fmt::seconds(result.variation.processes[p].totalSos)
              << "  z " << fmt::fixed(result.variation.processes[p].totalZ, 1)
              << '\n';
  }
  std::vector<trace::ProcessId> top6(result.variation.processesBySos.begin(),
                                     result.variation.processesBySos.begin() +
                                         6);
  std::sort(top6.begin(), top6.end());
  const std::vector<trace::ProcessId> expected = {44, 45, 54, 55, 64, 65};
  bench::paperRow("hot processes", "44, 45, 54, 55, 64, 65",
                  [&] {
                    std::string s;
                    for (const auto p : top6) {
                      s += std::to_string(p) + " ";
                    }
                    return s;
                  }(),
                  top6 == expected);
  bench::paperRow("worst process", "54 (\"particularly Process 54\")",
                  std::to_string(result.variation.slowestProcess()),
                  result.variation.slowestProcess() == 54);
  verdict.check("six hot ranks", top6 == expected);
  verdict.check("rank 54 worst", result.variation.slowestProcess() == 54);

  // --- baseline comparison ----------------------------------------------------
  bench::header("baseline: plain durations vs. SOS-time localization");
  const auto sosOutcome = analysis::outcomeFromSos(*result.sos, "sos-time");
  const auto durOutcome =
      analysis::detectBySegmentDuration(tr, result.segmentFunction);
  std::cout << "  rank of true culprit (54): sos-time #"
            << sosOutcome.rankOf(54) << " (separation z "
            << fmt::fixed(sosOutcome.topSeparation(), 1)
            << "), segment-duration #" << durOutcome.rankOf(54)
            << " (separation z " << fmt::fixed(durOutcome.topSeparation(), 1)
            << ")\n";
  verdict.check("sos ranks culprit first", sosOutcome.rankOf(54) == 0);
  verdict.check("sos separation dominates duration baseline",
                sosOutcome.topSeparation() >
                    10.0 * std::max(0.1, durOutcome.topSeparation()));

  // --- renders -------------------------------------------------------------------
  const std::string dir = bench::artifactsDir();
  vis::TimelineOptions tl;
  tl.title = "COSMO-SPECS timeline (100 ranks)";
  tl.messageLines = false;
  const auto colors = vis::FunctionColors::standard(tr);
  vis::renderTimelineImage(tr, colors, tl).savePpm(dir + "/fig4a_timeline.ppm");
  vis::renderTimelineSvg(tr, colors, tl).save(dir + "/fig4a_timeline.svg");
  vis::HeatmapOptions heat;
  heat.title = "COSMO-SPECS SOS-time (rank x iteration)";
  vis::renderHeatmapImage(result.sos->sosMatrixSeconds(), heat)
      .savePpm(dir + "/fig4b_sos.ppm");
  vis::renderHeatmapSvg(result.sos->sosMatrixSeconds(), heat)
      .save(dir + "/fig4b_sos.svg");

  vis::Series mpiSeries;
  mpiSeries.label = "MPI share";
  mpiSeries.ys = sync;
  mpiSeries.color = vis::seriesColor(1);
  mpiSeries.filled = true;
  vis::Series durSeries;
  durSeries.label = "mean iteration duration (norm.)";
  durSeries.ys = result.sos->meanDurationPerIteration();
  {
    double peak = 0.0;
    for (const double v : durSeries.ys) {
      peak = std::max(peak, v);
    }
    for (double& v : durSeries.ys) {
      v = peak > 0.0 ? v / peak : 0.0;
    }
  }
  vis::ChartOptions chart;
  chart.title = "COSMO-SPECS: MPI share and iteration duration over the run";
  chart.xLabel = "iteration";
  chart.percentY = true;
  chart.yMin = 0.0;
  chart.yMax = 1.0;
  vis::renderLineChart({mpiSeries, durSeries}, chart)
      .save(dir + "/fig4a_series.svg");
  std::cout << "  wrote " << dir << "/fig4a_timeline.{ppm,svg}, "
            << dir << "/fig4a_series.svg, " << dir << "/fig4b_sos.{ppm,svg}\n";

  return verdict.exitCode();
}
