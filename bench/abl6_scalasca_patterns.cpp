/// Ablation A6: Scalasca-style automatic wait-state search vs. the SOS
/// overlay (paper Section II). On the COSMO-SPECS imbalance the pattern
/// search correctly measures large "Wait at Collective" severities - but
/// attributes them to the *victims* (the 94 waiting ranks), while the SOS
/// analysis points at the *cause* (the overloaded cloud ranks). Both views
/// agree on the magnitude of the lost time.

#include <algorithm>
#include <iostream>

#include "analysis/patterns.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "bench/bench_util.hpp"
#include "util/format.hpp"

int main() {
  using namespace perfvar;
  bench::Verdict verdict;
  bench::header("A6: wait-state pattern search vs SOS overlay");

  const apps::CosmoSpecsScenario scenario = apps::buildCosmoSpecs();
  const trace::Trace tr = sim::simulate(scenario.program, scenario.simOptions);

  const analysis::PatternReport patterns = analysis::findWaitStates(tr);
  std::cout << analysis::formatPatternReport(tr, patterns, 5) << '\n';

  const analysis::AnalysisResult sos = analysis::analyzeTrace(tr);

  // Cross-validation: total wait severity == total subtracted sync time
  // minus the collectives' intrinsic cost (small). Same order of magnitude.
  double totalSync = 0.0;
  for (const auto& per : sos.sos->all()) {
    for (const auto& seg : per) {
      totalSync += tr.toSeconds(seg.syncTime);
    }
  }
  std::cout << "  total wait severity:     "
            << fmt::seconds(patterns.totalSeverity) << '\n'
            << "  total subtracted sync:   " << fmt::seconds(totalSync)
            << '\n';
  verdict.check("severity and sync time agree within 20%",
                patterns.totalSeverity > 0.8 * totalSync * 0.8 &&
                    patterns.totalSeverity < 1.2 * totalSync);

  const trace::ProcessId victim = patterns.worstVictim();
  const trace::ProcessId culprit = sos.variation.slowestProcess();
  std::cout << "  pattern search blames (worst victim): "
            << tr.processes[victim].name << '\n'
            << "  SOS overlay blames (culprit):         "
            << tr.processes[culprit].name << '\n';
  bench::paperRow("SOS finds the overloaded rank", "54",
                  std::to_string(culprit), culprit == 54);
  verdict.check("SOS blames rank 54", culprit == 54);
  // The hot ranks wait the LEAST - the victim ranking is anti-correlated
  // with the true cause.
  const bool victimIsNotCulprit =
      std::find(scenario.hotRanks.begin(), scenario.hotRanks.end(), victim) ==
      scenario.hotRanks.end();
  bench::paperRow("wait-state severity lands on victims, not the cause",
                  "yes (Sec. II discussion)",
                  victimIsNotCulprit ? "yes" : "no", victimIsNotCulprit);
  verdict.check("victim != culprit", victimIsNotCulprit);

  // And the culprit has (near-)minimal severity among all ranks.
  std::vector<double> totals(tr.processCount(), 0.0);
  for (const auto& per : patterns.severityByProcess) {
    for (std::size_t p = 0; p < per.size(); ++p) {
      totals[p] += per[p];
    }
  }
  std::size_t rankedBelowCulprit = 0;
  for (const double t : totals) {
    if (t < totals[culprit]) {
      ++rankedBelowCulprit;
    }
  }
  std::cout << "  ranks with less wait than the culprit: "
            << rankedBelowCulprit << " of " << totals.size() << '\n';
  verdict.check("culprit is among the least-waiting ranks",
                rankedBelowCulprit <= totals.size() / 10);
  return verdict.exitCode();
}
