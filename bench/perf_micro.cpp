/// Library performance microbenchmarks (google-benchmark): throughput of
/// every pipeline stage, the trace substrate, the simulator and the
/// balancer. These quantify that the analysis is "lightweight" (paper
/// Section VIII) - a full dominant+SOS+variation pass costs a small
/// multiple of reading the trace.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/overlay.hpp"
#include "analysis/parallel.hpp"
#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "analysis/patterns.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/streaming.hpp"
#include "apps/cosmo_specs.hpp"
#include "balance/fd4.hpp"
#include "balance/hilbert.hpp"
#include "balance/partition.hpp"
#include "profile/calltree.hpp"
#include "profile/profile.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/replay.hpp"
#include "trace/text_io.hpp"
#include "vis/heatmap.hpp"
#include "vis/timeline.hpp"
#include "util/rng.hpp"

namespace {

using namespace perfvar;

/// Shared synthetic workload: `ranks` x `iters` iterative trace.
trace::Trace makeTrace(std::size_t ranks, std::size_t iters) {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = static_cast<std::uint32_t>(ranks >= 4 ? 4 : ranks);
  cfg.gridY = static_cast<std::uint32_t>(ranks / cfg.gridX);
  cfg.timesteps = iters;
  cfg.noiseSigma = 0.02;
  const auto scenario = apps::buildCosmoSpecs(cfg);
  return sim::simulate(scenario.program, scenario.simOptions);
}

const trace::Trace& sharedTrace() {
  static const trace::Trace tr = makeTrace(16, 50);
  return tr;
}

void BM_TraceBuild(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    trace::TraceBuilder b(1);
    const auto f = b.defineFunction("f");
    for (std::size_t i = 0; i < events / 2; ++i) {
      b.enter(0, 2 * i, f);
      b.leave(0, 2 * i + 1, f);
    }
    benchmark::DoNotOptimize(b.finish());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceBuild)->Arg(1000)->Arg(100000);

void BM_BinaryWrite(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream os;
    trace::writeBinary(tr, os);
    bytes = os.str().size();
    benchmark::DoNotOptimize(os);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.counters["events"] = static_cast<double>(tr.eventCount());
}
BENCHMARK(BM_BinaryWrite);

void BM_BinaryRead(benchmark::State& state) {
  std::ostringstream os;
  trace::writeBinary(sharedTrace(), os);
  const std::string bytes = os.str();
  for (auto _ : state) {
    std::istringstream is(bytes);
    benchmark::DoNotOptimize(trace::readBinary(is));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_BinaryRead);

void BM_TextWrite(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::toText(tr));
  }
}
BENCHMARK(BM_TextWrite);

void BM_Replay(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  for (auto _ : state) {
    std::size_t frames = 0;
    for (const auto& proc : tr.processes) {
      trace::ReplayVisitor v;
      v.onLeave = [&](const trace::Frame&) { ++frames; };
      trace::replayProcess(proc, v);
    }
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              sharedTrace().eventCount()));
}
BENCHMARK(BM_Replay);

void BM_FlatProfile(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile::FlatProfile::build(tr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
}
BENCHMARK(BM_FlatProfile);

void BM_CallTree(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile::CallTree::buildMerged(tr));
  }
}
BENCHMARK(BM_CallTree);

void BM_DominantSelection(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  const auto profile = profile::FlatProfile::build(tr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::selectDominantFunction(tr, profile));
  }
}
BENCHMARK(BM_DominantSelection);

void BM_SosAnalysis(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  const auto selection = analysis::selectDominantFunction(tr);
  const auto f = selection.dominant().function;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyzeSos(tr, f));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
}
BENCHMARK(BM_SosAnalysis);

void BM_VariationReport(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  const auto selection = analysis::selectDominantFunction(tr);
  const auto sos = analysis::analyzeSos(tr, selection.dominant().function);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyzeVariation(sos));
  }
}
BENCHMARK(BM_VariationReport);

void BM_FullPipeline(benchmark::State& state) {
  const trace::Trace tr = makeTrace(16, static_cast<std::size_t>(
                                            state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyzeTrace(tr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
}
BENCHMARK(BM_FullPipeline)->Arg(20)->Arg(100);

/// 64-rank synthetic trace shared by the parallel-engine benches.
const trace::Trace& trace64() {
  static const trace::Trace tr = makeTrace(64, 30);
  return tr;
}

void BM_FullPipelineParallel(benchmark::State& state) {
  const trace::Trace& tr = trace64();
  analysis::PipelineOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyzeTrace(tr, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
  state.counters["threads"] = static_cast<double>(
      util::ThreadPool::resolveThreadCount(opts.threads));
}
BENCHMARK(BM_FullPipelineParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

/// Serial-vs-parallel speedup of the full pipeline on the 64-rank trace,
/// recorded as counters (speedup = serial seconds / parallel seconds at
/// `threads` = the benchmark argument). On a multi-core host the 4-thread
/// speedup is expected to be >= 2x; on a single hardware thread it
/// degrades gracefully towards 1x (minus pool overhead).
void BM_PipelineSpeedup64(benchmark::State& state) {
  const trace::Trace& tr = trace64();
  analysis::PipelineOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  using clock = std::chrono::steady_clock;
  double serialSec = 0.0;
  double parallelSec = 0.0;
  for (auto _ : state) {
    const auto t0 = clock::now();
    benchmark::DoNotOptimize(analysis::analyzeTrace(tr));
    const auto t1 = clock::now();
    benchmark::DoNotOptimize(analysis::analyzeTrace(tr, opts));
    const auto t2 = clock::now();
    serialSec += std::chrono::duration<double>(t1 - t0).count();
    parallelSec += std::chrono::duration<double>(t2 - t1).count();
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["serial_s"] = serialSec / n;
  state.counters["parallel_s"] = parallelSec / n;
  state.counters["speedup"] =
      parallelSec > 0.0 ? serialSec / parallelSec : 0.0;
}
BENCHMARK(BM_PipelineSpeedup64)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SosAnalysisParallel(benchmark::State& state) {
  const trace::Trace& tr = trace64();
  const auto selection = analysis::selectDominantFunction(tr);
  const auto f = selection.dominant().function;
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::analyzeSosParallel(tr, f, analysis::SyncClassifier{}, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
}
BENCHMARK(BM_SosAnalysisParallel)->Arg(1)->Arg(2)->Arg(4);

// ---- lint ------------------------------------------------------------------
//
// The lint engine advertises itself as cheap enough to run on every load
// (the engine's lint-on-load gate); these benches quantify that claim on
// the shared 64-rank trace. The Release bench CI job archives the numbers
// as BENCH_lint.json.

void BM_LintFullRegistry(benchmark::State& state) {
  const trace::Trace& tr = trace64();
  lint::LintOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::lintTrace(tr, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
  state.counters["threads"] = static_cast<double>(
      util::ThreadPool::resolveThreadCount(opts.threads));
}
BENCHMARK(BM_LintFullRegistry)->Arg(1)->Arg(2)->Arg(4)->Arg(0);

/// The validate() subset alone — the forwarder's cost relative to the
/// historical single-pass validator they replaced.
void BM_LintValidateSubset(benchmark::State& state) {
  const trace::Trace& tr = trace64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::validateStructure(tr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
}
BENCHMARK(BM_LintValidateSubset);

/// Serial-vs-threaded lint speedup on the 64-rank trace, recorded as
/// counters like BM_PipelineSpeedup64 (the bench CI job greps `speedup`).
void BM_LintSpeedup64(benchmark::State& state) {
  const trace::Trace& tr = trace64();
  lint::LintOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  using clock = std::chrono::steady_clock;
  double serialSec = 0.0;
  double parallelSec = 0.0;
  for (auto _ : state) {
    const auto t0 = clock::now();
    benchmark::DoNotOptimize(lint::lintTrace(tr));
    const auto t1 = clock::now();
    benchmark::DoNotOptimize(lint::lintTrace(tr, opts));
    const auto t2 = clock::now();
    serialSec += std::chrono::duration<double>(t1 - t0).count();
    parallelSec += std::chrono::duration<double>(t2 - t1).count();
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["serial_s"] = serialSec / n;
  state.counters["parallel_s"] = parallelSec / n;
  state.counters["speedup"] =
      parallelSec > 0.0 ? serialSec / parallelSec : 0.0;
}
BENCHMARK(BM_LintSpeedup64)->Arg(4)->Unit(benchmark::kMillisecond);

// ---- analysis engine: cold vs warm cache ----------------------------------
//
// The same query through engine::AnalysisEngine, with the stage cache
// cleared every iteration (cold: every stage recomputed) and kept (warm:
// every stage a cache hit). The cold/warm gap is the cost the cache
// amortizes for interactive re-queries.

void BM_EngineColdAnalyze(benchmark::State& state) {
  engine::AnalysisEngine eng{trace::Trace(trace64())};
  for (auto _ : state) {
    state.PauseTiming();
    eng.clearCache();
    state.ResumeTiming();
    benchmark::DoNotOptimize(eng.analyze());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(eng.trace().eventCount()));
}
BENCHMARK(BM_EngineColdAnalyze)->Unit(benchmark::kMillisecond);

void BM_EngineWarmHit(benchmark::State& state) {
  engine::AnalysisEngine eng{trace::Trace(trace64())};
  benchmark::DoNotOptimize(eng.analyze());  // populate every stage
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.analyze());
  }
  const engine::CacheStats stats = eng.cacheStats();
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_EngineWarmHit);

/// Warm drilldown: re-query with only VariationOptions changed. The
/// profile, dominant ranking and SOS matrix stay cached; only the cheap
/// variation stage recomputes. Alternating thresholds keeps both variants
/// resident so every iteration after the first two is a pure hit on the
/// upstream stages.
void BM_EngineWarmDrilldown(benchmark::State& state) {
  engine::AnalysisEngine eng{trace::Trace(trace64())};
  analysis::PipelineOptions a;
  analysis::PipelineOptions b;
  b.variation.outlierThreshold = a.variation.outlierThreshold + 0.5;
  benchmark::DoNotOptimize(eng.analyze(a));  // warm the shared stages
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.analyze(flip ? b : a));
    flip = !flip;
  }
  const engine::CacheStats stats = eng.cacheStats();
  state.counters["hits"] = static_cast<double>(stats.hits);
  state.counters["misses"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_EngineWarmDrilldown);

// ---- trace I/O: format v1 vs v2, mmap load, parallel decode ---------------
//
// The BM_Io* family quantifies the cold-load path the paper's workflow
// starts with: the legacy v1 stream codec (per-byte checksum through
// virtual istream calls, serial) against the block-based v2 codec
// (block-wise buffer checksums, zero-copy mmap load, per-rank parallel
// decode). CI runs these on the 64-rank trace with
//   perf_micro --benchmark_filter=BM_Io
//              --benchmark_out=BENCH_io.json --benchmark_out_format=json
// and archives BENCH_io.json; BM_IoLoadSpeedup64's `speedup` counter is
// the headline v1-serial vs v2-mmap-threaded cold-load ratio.

/// 64-rank trace at the paper's event scale (hundreds of thousands of
/// events), so the fixed costs (pool spin-up, header parse) are measured
/// against a realistic decode volume.
const trace::Trace& ioTrace() {
  static const trace::Trace tr = makeTrace(64, 200);
  return tr;
}

/// 64-rank trace written once per process in both formats.
struct IoFixture {
  std::string v1Path = "perf_micro_io_v1.pvt";
  std::string v2Path = "perf_micro_io_v2.pvt";
  std::size_t v1Bytes = 0;
  std::size_t v2Bytes = 0;
};

const IoFixture& ioFixture() {
  static const IoFixture fixture = [] {
    IoFixture f;
    trace::BinaryWriteOptions v1;
    v1.version = trace::kBinaryFormatV1;
    trace::saveBinaryFile(ioTrace(), f.v1Path, v1);
    trace::saveBinaryFile(ioTrace(), f.v2Path);  // v2 default
    const auto size = [](const std::string& path) {
      std::ifstream in(path, std::ios::binary | std::ios::ate);
      return static_cast<std::size_t>(in.tellg());
    };
    f.v1Bytes = size(f.v1Path);
    f.v2Bytes = size(f.v2Path);
    return f;
  }();
  return fixture;
}

std::string binaryImage(std::uint32_t version) {
  std::ostringstream os;
  trace::BinaryWriteOptions opts;
  opts.version = version;
  trace::writeBinary(trace64(), os, opts);
  return os.str();
}

void BM_IoEncodeV1(benchmark::State& state) {
  const trace::Trace& tr = trace64();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream os;
    trace::BinaryWriteOptions opts;
    opts.version = trace::kBinaryFormatV1;
    trace::writeBinary(tr, os, opts);
    bytes = os.str().size();
    benchmark::DoNotOptimize(os);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_IoEncodeV1);

void BM_IoEncodeV2(benchmark::State& state) {
  const trace::Trace& tr = trace64();
  trace::BinaryWriteOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream os;
    trace::writeBinary(tr, os, opts);
    bytes = os.str().size();
    benchmark::DoNotOptimize(os);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_IoEncodeV2)->Arg(1)->Arg(8);

void BM_IoDecodeV1(benchmark::State& state) {
  const std::string bytes = binaryImage(trace::kBinaryFormatV1);
  for (auto _ : state) {
    std::istringstream is(bytes);
    benchmark::DoNotOptimize(trace::readBinary(is));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_IoDecodeV1)->Unit(benchmark::kMillisecond);

void BM_IoDecodeV2(benchmark::State& state) {
  const std::string bytes = binaryImage(trace::kBinaryFormatV2);
  trace::BinaryReadOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace::readBinaryBuffer(bytes.data(), bytes.size(), opts));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_IoDecodeV2)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_IoColdLoadV1(benchmark::State& state) {
  const IoFixture& f = ioFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::loadBinaryFile(f.v1Path));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.v1Bytes));
}
BENCHMARK(BM_IoColdLoadV1)->Unit(benchmark::kMillisecond);

void BM_IoColdLoadV2(benchmark::State& state) {
  const IoFixture& f = ioFixture();
  trace::BinaryReadOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::loadBinaryFile(f.v2Path, opts));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.v2Bytes));
}
BENCHMARK(BM_IoColdLoadV2)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Headline cold-load comparison on the 64-rank trace: v1 serial stream
/// load vs v2 mmap + parallel decode (hardware threads). The `speedup`
/// counter is the acceptance number recorded in BENCH_io.json; the size
/// counters document that v2 is also the smaller file.
void BM_IoLoadSpeedup64(benchmark::State& state) {
  const IoFixture& f = ioFixture();
  trace::BinaryReadOptions v2opts;
  v2opts.threads = 0;  // hardware concurrency
  using clock = std::chrono::steady_clock;
  double v1Sec = 0.0;
  double v2Sec = 0.0;
  for (auto _ : state) {
    const auto t0 = clock::now();
    benchmark::DoNotOptimize(trace::loadBinaryFile(f.v1Path));
    const auto t1 = clock::now();
    benchmark::DoNotOptimize(trace::loadBinaryFile(f.v2Path, v2opts));
    const auto t2 = clock::now();
    v1Sec += std::chrono::duration<double>(t1 - t0).count();
    v2Sec += std::chrono::duration<double>(t2 - t1).count();
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["v1_serial_s"] = v1Sec / n;
  state.counters["v2_mmap_threads_s"] = v2Sec / n;
  state.counters["speedup"] = v2Sec > 0.0 ? v1Sec / v2Sec : 0.0;
  state.counters["v1_bytes"] = static_cast<double>(f.v1Bytes);
  state.counters["v2_bytes"] = static_cast<double>(f.v2Bytes);
}
BENCHMARK(BM_IoLoadSpeedup64)->Unit(benchmark::kMillisecond);

void BM_OverlaySample(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  const auto selection = analysis::selectDominantFunction(tr);
  const auto sos = analysis::analyzeSos(tr, selection.dominant().function);
  const auto overlay = analysis::MetricOverlay::build(sos);
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay.sampleGrid(900));
  }
}
BENCHMARK(BM_OverlaySample);

void BM_HeatmapRender(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  const auto selection = analysis::selectDominantFunction(tr);
  const auto sos = analysis::analyzeSos(tr, selection.dominant().function);
  const auto matrix = sos.sosMatrixSeconds();
  vis::HeatmapOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vis::renderHeatmapImage(matrix, opts));
  }
}
BENCHMARK(BM_HeatmapRender);

void BM_TimelineBins(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  vis::TimelineOptions opts;
  opts.bins = 900;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vis::timelineBins(tr, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
}
BENCHMARK(BM_TimelineBins);

void BM_HilbertIndex(benchmark::State& state) {
  const balance::HilbertCurve curve(10);
  std::uint64_t acc = 0;
  std::uint32_t x = 1;
  for (auto _ : state) {
    x = (x * 2654435761u) % curve.side();
    acc += curve.toIndex(x, (x * 7) % curve.side());
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_HilbertIndex);

void BM_PartitionOptimal(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (auto& w : weights) {
    w = rng.uniform(0.1, 10.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(balance::partitionOptimal(weights, 64));
  }
}
BENCHMARK(BM_PartitionOptimal)->Arg(1600)->Arg(16384);

void BM_Fd4Update(benchmark::State& state) {
  balance::Fd4Balancer balancer(40, 40, 200);
  Rng rng(6);
  std::vector<double> weights(1600);
  for (auto _ : state) {
    for (auto& w : weights) {
      w = rng.uniform(0.1, 5.0);
    }
    benchmark::DoNotOptimize(balancer.update(weights));
  }
}
BENCHMARK(BM_Fd4Update);

void BM_StreamingSos(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  const auto selection = analysis::selectDominantFunction(tr);
  const auto f = selection.dominant().function;
  for (auto _ : state) {
    analysis::StreamingSos analyzer(tr, f);
    analysis::StreamingSos::replay(tr, analyzer);
    benchmark::DoNotOptimize(analyzer.segmentsCompleted());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
}
BENCHMARK(BM_StreamingSos);

void BM_WaitStateSearch(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::findWaitStates(tr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
}
BENCHMARK(BM_WaitStateSearch);

void BM_WindowSos(benchmark::State& state) {
  const trace::Trace& tr = sharedTrace();
  const trace::Timestamp window =
      (tr.endTime() - tr.startTime()) / 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyzeSosWindows(tr, window));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.eventCount()));
}
BENCHMARK(BM_WindowSos);

// ---- analysis server: round-trip latency and append throughput ------------
//
// The BM_Serve* family measures `trace_tool serve` end to end, minus the
// kernel socket hop variability: an in-process Server serving a Client
// over a socketpair, exactly the transport the daemon uses. Cold = load
// from disk + first analysis; warm = repeated analysis answered from the
// resident engine's stage cache (the interactive re-query latency); the
// append bench is the streaming-ingestion byte throughput. CI runs
//   perf_micro --benchmark_filter=BM_Serve
//              --benchmark_out=BENCH_serve.json --benchmark_out_format=json
// and archives BENCH_serve.json.

server::Client serveClient(server::Server& srv) {
  auto [serverEnd, clientEnd] = util::socketPair();
  srv.serveConnection(std::move(serverEnd));
  return server::Client{std::move(clientEnd)};
}

void BM_ServeColdQuery(benchmark::State& state) {
  const IoFixture& f = ioFixture();
  server::Server srv;
  server::Client client = serveClient(srv);
  for (auto _ : state) {
    if (!client.load("cold", f.v2Path).ok() ||
        client.analyze("cold").type != server::FrameType::Data) {
      state.SkipWithError("cold load/analyze failed");
      break;
    }
    state.PauseTiming();
    client.evict("cold");
    state.ResumeTiming();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.v2Bytes));
}
BENCHMARK(BM_ServeColdQuery)->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_ServeWarmQuery(benchmark::State& state) {
  const IoFixture& f = ioFixture();
  server::Server srv;
  server::Client client = serveClient(srv);
  if (!client.load("warm", f.v2Path).ok() || !client.analyze("warm").ok()) {
    state.SkipWithError("warm-up load/analyze failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.analyze("warm"));
  }
}
BENCHMARK(BM_ServeWarmQuery)->UseRealTime()->Unit(benchmark::kMicrosecond);

void BM_ServeAppend(benchmark::State& state) {
  const std::string image = binaryImage(trace::kBinaryFormatV2);
  server::Server srv;
  server::Client client = serveClient(srv);
  const auto selection = analysis::selectDominantFunction(trace64());
  const std::string segmentFn =
      trace64().functions.at(selection.dominant().function).name;
  for (auto _ : state) {
    state.PauseTiming();
    client.evict("stream");
    client.open("stream", segmentFn);
    state.ResumeTiming();
    if (!client.append("stream", image).ok()) {
      state.SkipWithError("append failed");
      break;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace64().eventCount()));
}
BENCHMARK(BM_ServeAppend)->UseRealTime()->Unit(benchmark::kMillisecond);

// Same stream with the write-ahead journal on: the BM_ServeAppend delta
// is the durability tax on ingestion throughput (no fsync — the default
// `--journal-dir` configuration).
void BM_ServeAppendJournal(benchmark::State& state) {
  const std::string image = binaryImage(trace::kBinaryFormatV2);
  const std::string journalDir = "perf_micro_journal.d";
  server::ServerOptions options;
  options.journalDir = journalDir;
  server::Server srv(options);
  server::Client client = serveClient(srv);
  const auto selection = analysis::selectDominantFunction(trace64());
  const std::string segmentFn =
      trace64().functions.at(selection.dominant().function).name;
  for (auto _ : state) {
    state.PauseTiming();
    client.evict("stream");
    client.open("stream", segmentFn);
    state.ResumeTiming();
    if (!client.append("stream", image).ok()) {
      state.SkipWithError("append failed");
      break;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace64().eventCount()));
  std::error_code ec;
  std::filesystem::remove_all(journalDir, ec);
}
BENCHMARK(BM_ServeAppendJournal)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_Simulator(benchmark::State& state) {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 8;
  cfg.gridY = 8;
  cfg.timesteps = 20;
  const auto scenario = apps::buildCosmoSpecs(cfg);
  std::size_t events = 0;
  for (auto _ : state) {
    sim::SimReport report;
    benchmark::DoNotOptimize(
        sim::simulate(scenario.program, scenario.simOptions, &report));
    events = report.events;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Simulator);

}  // namespace

BENCHMARK_MAIN();
