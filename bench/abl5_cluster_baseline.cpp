/// Ablation A5: phase clustering (the Paraver-style related-work
/// baseline) vs. the SOS hotspot analysis. The paper's criticism of the
/// clustering approach: "it does not highlight individual variations
/// within processes". This bench runs both on two scenarios:
///
///  * persistent single-rank imbalance - clustering forms a slow class
///    (and it happens to be pure), but it reports a *class*, not a
///    (process, iteration) location;
///  * transient single-invocation interruption - the slow "class" has
///    exactly one member, i.e. clustering degenerates, while the hotspot
///    list names the culprit cell directly in both cases.

#include <iostream>

#include "analysis/cluster.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "bench/bench_util.hpp"
#include "util/format.hpp"

int main() {
  using namespace perfvar;
  bench::Verdict verdict;

  // --- scenario 1: persistent imbalance (COSMO-SPECS, reduced) ----------
  bench::header("A5.1: persistent imbalance (COSMO-SPECS 36 ranks)");
  {
    apps::CosmoSpecsConfig cfg;
    cfg.gridX = 6;
    cfg.gridY = 6;
    cfg.timesteps = 25;
    const auto scenario = apps::buildCosmoSpecs(cfg);
    const trace::Trace tr =
        sim::simulate(scenario.program, scenario.simOptions);
    const auto result = analysis::analyzeTrace(tr);

    analysis::ClusterOptions copts;
    copts.clusters = 3;
    const auto clusters = analysis::clusterSegments(*result.sos, copts);
    std::cout << analysis::formatClusters(clusters);
    const auto slow = clusters.slowestCluster();
    std::cout << "  clustering verdict: a slow phase class exists ("
              << fmt::percent(clusters.fraction(slow))
              << " of segments), but no (process, iteration) location\n";
    std::cout << "  hotspot verdict:    " << tr.processes[
                     result.variation.slowestProcess()].name
              << " is the culprit (z "
              << fmt::fixed(result.variation.processes[
                     result.variation.slowestProcess()].totalZ, 1)
              << ")\n";
    verdict.check("slow class is a minority of segments",
                  clusters.fraction(slow) < 0.25);
    verdict.check("hotspots name the culprit",
                  result.variation.slowestProcess() == scenario.hottestRank);
  }

  // --- scenario 2: transient interruption (FD4, reduced) -------------------
  bench::header("A5.2: transient interruption (FD4 32 ranks)");
  {
    apps::CosmoSpecsFd4Config cfg;
    cfg.ranks = 32;
    cfg.blocksX = 16;
    cfg.blocksY = 16;
    cfg.iterations = 10;
    cfg.interruptRank = 20;
    cfg.interruptIteration = 6;
    const auto scenario = apps::buildCosmoSpecsFd4(cfg);
    const trace::Trace tr =
        sim::simulate(scenario.program, scenario.simOptions);
    const auto result = analysis::analyzeTrace(tr);

    analysis::ClusterOptions copts;
    copts.clusters = 3;
    const auto clusters = analysis::clusterSegments(*result.sos, copts);
    std::cout << analysis::formatClusters(clusters);
    const auto slow = clusters.slowestCluster();
    std::cout << "  clustering verdict: the \"slow class\" holds "
              << clusters.clusters[slow].size
              << " segment(s) - a degenerate cluster, still unlocated\n";
    const auto& top = result.variation.hotspots.front();
    std::cout << "  hotspot verdict:    " << tr.processes[top.process].name
              << ", iteration " << top.iteration << " (z "
              << fmt::fixed(top.globalZ, 1) << ")\n";
    verdict.check("slow cluster degenerates to the single outlier",
                  clusters.clusters[slow].size <= 2);
    verdict.check("hotspots name process and iteration",
                  top.process == scenario.culpritRank &&
                      top.iteration == scenario.culpritIteration);
  }

  std::cout << "\n  shape: clustering classifies phase populations; the "
               "paper's SOS hotspot\n  analysis additionally *locates* the "
               "variation - its stated advantage.\n";
  return verdict.exitCode();
}
