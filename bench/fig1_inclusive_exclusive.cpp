/// Regenerates paper Figure 1: inclusive vs. exclusive time of a function
/// invocation (foo [0,6] calling bar [2,4]).

#include <iostream>

#include "apps/paper_examples.hpp"
#include "bench/bench_util.hpp"
#include "profile/profile.hpp"

int main() {
  using namespace perfvar;
  bench::Verdict verdict;

  bench::header("Figure 1: inclusive vs. exclusive time");
  const trace::Trace tr = apps::buildFigure1Trace();
  const auto profile = profile::FlatProfile::build(tr);
  const auto foo = *tr.functions.find("foo");
  const auto bar = *tr.functions.find("bar");

  const auto& fooStats = profile.aggregated(foo);
  const auto& barStats = profile.aggregated(bar);
  std::cout << "  trace: foo enters t=0, bar [2,4], foo leaves t=6\n";
  bench::paperRow("inclusive(foo)", "6", std::to_string(fooStats.inclusive),
                  fooStats.inclusive == 6);
  bench::paperRow("exclusive(foo)", "4", std::to_string(fooStats.exclusive),
                  fooStats.exclusive == 4);
  bench::paperRow("inclusive(bar)", "2", std::to_string(barStats.inclusive),
                  barStats.inclusive == 2);
  verdict.check("inclusive(foo) == 6", fooStats.inclusive == 6);
  verdict.check("exclusive(foo) == 4", fooStats.exclusive == 4);
  verdict.check("inclusive(bar) == 2", barStats.inclusive == 2);

  std::cout << "\n" << profile::formatTopFunctions(tr, profile, 5);
  return verdict.exitCode();
}
