/// Regenerates paper Figure 3: segment durations vs. synchronization-
/// oblivious segment times (SOS-times) on the three-process calc+MPI
/// example. The paper's narrative numbers: iteration durations are
/// identical across processes (first iteration 6, middle iterations 3 -
/// "twice as fast"); the SOS-times expose the per-process calc times
/// (first iteration: 5 on Process 0 vs 1 on Process 2).

#include <iostream>

#include "analysis/sos.hpp"
#include "apps/paper_examples.hpp"
#include "bench/bench_util.hpp"
#include "util/format.hpp"

namespace {

void printMatrix(const char* title,
                 const std::vector<std::vector<double>>& m) {
  std::cout << "  " << title << '\n';
  for (std::size_t p = 0; p < m.size(); ++p) {
    std::cout << "    Process " << p << ":";
    for (const double v : m[p]) {
      std::cout << ' ' << v;
    }
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  using namespace perfvar;
  bench::Verdict verdict;

  bench::header("Figure 3: segment durations vs. SOS-times");
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");

  const analysis::SosResult durations =
      analysis::analyzeSegmentDurations(tr, fA);
  printMatrix("segment durations (inclusive time of a):",
              durations.durationMatrixSeconds());
  const analysis::SosResult sos = analysis::analyzeSos(tr, fA);
  printMatrix("SOS-times (synchronization subtracted):",
              sos.sosMatrixSeconds());

  // Shape checks against the narrative.
  bool durationsEqual = true;
  for (std::size_t i = 0; i < 3; ++i) {
    durationsEqual &=
        durations.durationSeconds(0, i) == durations.durationSeconds(1, i) &&
        durations.durationSeconds(1, i) == durations.durationSeconds(2, i);
  }
  bench::paperRow("durations identical across processes", "yes",
                  durationsEqual ? "yes" : "no", durationsEqual);
  bench::paperRow("duration(iteration 0)", "6",
                  fmt::fixed(durations.durationSeconds(0, 0), 0),
                  durations.durationSeconds(0, 0) == 6.0);
  bench::paperRow("duration(iteration 1)", "3 (twice as fast)",
                  fmt::fixed(durations.durationSeconds(0, 1), 0),
                  durations.durationSeconds(0, 1) == 3.0);
  bench::paperRow("SOS(iteration 0, Process 0)", "5",
                  fmt::fixed(sos.sosSeconds(0, 0), 0),
                  sos.sosSeconds(0, 0) == 5.0);
  bench::paperRow("SOS(iteration 0, Process 2)", "1",
                  fmt::fixed(sos.sosSeconds(2, 0), 0),
                  sos.sosSeconds(2, 0) == 1.0);

  verdict.check("durations equal", durationsEqual);
  verdict.check("iter0 duration 6", durations.durationSeconds(0, 0) == 6.0);
  verdict.check("iter1 duration 3", durations.durationSeconds(0, 1) == 3.0);
  verdict.check("sos exposes imbalance",
                sos.sosSeconds(0, 0) == 5.0 && sos.sosSeconds(2, 0) == 1.0);

  std::cout << "\n  note: the figure's exact cell values are partially "
               "ambiguous in the source\n  text; iteration 2 uses the "
               "reconstruction (1, 3, 4) documented in DESIGN.md.\n";
  return verdict.exitCode();
}
