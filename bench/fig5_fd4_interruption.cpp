/// Regenerates paper Figure 5: the COSMO-SPECS+FD4 case study on 200
/// ranks. The load is dynamically balanced; one coupling iteration is slow
/// because the OS interrupted rank 20 during one SPECS timestep.
///   (b) coarse SOS overlay: rank 20 red in one iteration;
///   (c) finer segmentation isolates the single interrupted invocation;
///   low PAPI_TOT_CYC on that invocation confirms the interruption.

#include <iostream>

#include "analysis/baselines.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "bench/bench_util.hpp"
#include "util/format.hpp"
#include "vis/heatmap.hpp"
#include "vis/timeline.hpp"

int main() {
  using namespace perfvar;
  bench::Verdict verdict;

  bench::header("Figure 5: COSMO-SPECS+FD4 process interruption (200 ranks)");
  const apps::CosmoSpecsFd4Scenario scenario = apps::buildCosmoSpecsFd4();
  sim::SimReport simReport;
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions, &simReport);
  std::cout << "  simulated " << tr.processCount() << " ranks, "
            << simReport.events << " events, makespan "
            << fmt::seconds(simReport.makespan) << '\n';

  // FD4 keeps the load balanced despite the moving cloud.
  double worstImbalance = 0.0;
  std::size_t migrations = 0;
  for (std::size_t i = 0; i < scenario.balancedImbalance.size(); ++i) {
    worstImbalance = std::max(worstImbalance, scenario.balancedImbalance[i]);
    migrations += scenario.migratedBlocks[i];
  }
  std::cout << "  FD4 balancing: worst post-balance imbalance "
            << fmt::percent(worstImbalance) << ", " << migrations
            << " block migrations over " << scenario.iterations
            << " iterations\n";
  verdict.check("FD4 keeps imbalance low", worstImbalance < 0.25);

  // --- (b) coarse segmentation ------------------------------------------------
  bench::header("Figure 5(b): coarse SOS overlay (coupling iterations)");
  const analysis::AnalysisResult coarse = analysis::analyzeTrace(tr);
  std::cout << "  dominant function: "
            << tr.functions.name(coarse.segmentFunction) << '\n';
  const auto& top = coarse.variation.hotspots.front();
  std::cout << "  top hotspot: " << tr.processes[top.process].name
            << ", iteration " << top.iteration << ", SOS "
            << fmt::seconds(top.sosSeconds) << " (z "
            << fmt::fixed(top.globalZ, 1) << ")\n";
  bench::paperRow("coarse culprit", "Process 20",
                  tr.processes[top.process].name,
                  top.process == scenario.culpritRank);
  bench::paperRow("slow iteration", std::to_string(
                      scenario.culpritIteration),
                  std::to_string(top.iteration),
                  top.iteration == scenario.culpritIteration);
  verdict.check("coarse hotspot correct",
                top.process == scenario.culpritRank &&
                    top.iteration == scenario.culpritIteration);

  // --- (c) finer segmentation ----------------------------------------------------
  bench::header("Figure 5(c): finer segmentation (specs timesteps)");
  analysis::PipelineOptions fineOpts;
  fineOpts.candidateIndex = 1;
  const analysis::AnalysisResult fine = analysis::analyzeTrace(tr, fineOpts);
  std::cout << "  segmentation function: "
            << tr.functions.name(fine.segmentFunction) << " ("
            << fine.sos->maxSegmentsPerProcess() << " segments/rank vs "
            << coarse.sos->maxSegmentsPerProcess() << " coarse)\n";
  const auto& fineTop = fine.variation.hotspots.front();
  std::cout << "  top hotspot: " << tr.processes[fineTop.process].name
            << ", invocation " << fineTop.iteration << " (z "
            << fmt::fixed(fineTop.globalZ, 1) << ")\n";
  bench::paperRow("single invocation isolated",
                  "one red line (one invocation)",
                  "invocation " + std::to_string(fineTop.iteration),
                  fineTop.process == scenario.culpritRank &&
                      fineTop.iteration == scenario.culpritFineSegment);
  verdict.check("fine hotspot correct",
                fineTop.process == scenario.culpritRank &&
                    fineTop.iteration == scenario.culpritFineSegment);
  // Only ONE fine segment stands far out (next hotspot much weaker or on
  // the same invocation).
  const bool isolated =
      fine.variation.hotspots.size() < 2 ||
      fine.variation.hotspots[1].globalZ < 0.3 * fineTop.globalZ;
  verdict.check("exactly one extreme invocation", isolated);

  // --- root cause: the cycle counter -----------------------------------------------
  bench::header("root cause: PAPI_TOT_CYC of the interrupted invocation");
  const auto cycles = tr.metrics.find("PAPI_TOT_CYC");
  if (cycles) {
    const auto& seg =
        fine.sos->process(fineTop.process)[fineTop.iteration];
    const double wall = tr.toSeconds(seg.segment.inclusive());
    const double cycleTime = seg.metricDelta[*cycles] / 2.5e9;
    std::cout << "  wall time " << fmt::seconds(wall)
              << ", cycle-backed time " << fmt::seconds(cycleTime) << " ("
              << fmt::percent(cycleTime / wall) << " of wall)\n";
    bench::paperRow("assigned CPU cycles", "low (process interrupted)",
                    fmt::percent(cycleTime / wall) + " of wall time",
                    cycleTime < 0.2 * wall);
    verdict.check("cycle counter reveals interruption",
                  cycleTime < 0.2 * wall);
  }

  // The aggregated profile baseline dilutes the one-off interruption.
  const auto profileOutcome = analysis::detectByProfile(tr);
  std::cout << "  profile-only baseline: culprit ranked #"
            << profileOutcome.rankOf(scenario.culpritRank)
            << " with separation z "
            << fmt::fixed(profileOutcome.topSeparation(), 2)
            << " (vs fine-SOS hotspot z " << fmt::fixed(fineTop.globalZ, 1)
            << ")\n";
  verdict.check("SOS hotspot far clearer than profile baseline",
                fineTop.globalZ > 10.0 * std::max(
                                             0.1,
                                             profileOutcome.topSeparation()));

  // --- renders ------------------------------------------------------------------------
  const std::string dir = bench::artifactsDir();
  vis::HeatmapOptions heat;
  heat.title = "FD4 coarse SOS (rank x iteration)";
  vis::renderHeatmapSvg(coarse.sos->sosMatrixSeconds(), heat)
      .save(dir + "/fig5b_sos_coarse.svg");
  heat.title = "FD4 fine SOS (rank x specs timestep)";
  vis::renderHeatmapSvg(fine.sos->sosMatrixSeconds(), heat)
      .save(dir + "/fig5c_sos_fine.svg");

  // Figure 5(a): timeline of the interrupted iteration only (the paper
  // shows a single slow iteration; normal iterations were discarded).
  const auto& culpritSeg =
      coarse.sos->process(scenario.culpritRank)[scenario.culpritIteration];
  vis::TimelineOptions tl;
  tl.title = "interrupted coupling iteration";
  tl.windowStart = culpritSeg.segment.enter;
  tl.windowEnd = culpritSeg.segment.leave;
  tl.bins = 600;
  tl.maxMessageLines = 400;
  const auto colors = vis::FunctionColors::standard(tr);
  vis::renderTimelineSvg(tr, colors, tl).save(dir + "/fig5a_timeline.svg");
  std::cout << "  wrote " << dir << "/fig5a_timeline.svg, "
            << dir << "/fig5b_sos_coarse.svg, " << dir
            << "/fig5c_sos_fine.svg\n";

  return verdict.exitCode();
}
