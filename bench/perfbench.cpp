/// \file perfbench.cpp
/// Pinned-trajectory macro-benchmark of end-to-end analysis throughput.
///
/// MAGPIE discipline: the inputs are pinned (the 64-rank paper trace and
/// a deterministic 10k-rank scale trace with an event-dense rank tail),
/// the trajectory is fixed (cold load -> full analyze -> lint -> warm
/// engine re-query -> SOS streaming replay), and every run reports the
/// same global iterations/second counter — so two builds are comparable
/// number for number. The skewed-tail analyze additionally records its
/// own pre-optimization baseline (static partition + reference kernels)
/// in the same run, making the headline speedup self-contained.
///
/// Output: BENCH_throughput.json (override with --out FILE). --smoke
/// shrinks the scale trace and the time budgets so the run finishes in
/// seconds; ctest uses it to keep the harness from bit-rotting.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/depgraph.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/streaming.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/scale_synthetic.hpp"
#include "bench/bench_util.hpp"
#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "sim/simulator.hpp"
#include "trace/binary_io.hpp"
#include "util/json_writer.hpp"
#include "util/perf_counters.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace perfvar;
using clock_type = std::chrono::steady_clock;

double secondsSince(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// The paper-shaped 64-rank trace (same construction as perf_micro's
/// trace64 fixture).
trace::Trace makePaperTrace() {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 16;
  cfg.timesteps = 30;
  cfg.noiseSigma = 0.02;
  const auto scenario = apps::buildCosmoSpecs(cfg);
  return sim::simulate(scenario.program, scenario.simOptions);
}

/// The skewed scale trace: a 2% rank tail carries 256 extra nested
/// compute pairs per iteration, so per-rank replay cost is far from
/// uniform — the scenario work stealing exists for.
apps::ScaleConfig makeScaleConfig(bool smoke) {
  apps::ScaleConfig cfg;
  cfg.ranks = smoke ? 200 : 10'000;
  cfg.iterations = smoke ? 3 : 5;
  cfg.skewTailPerMille = 20;
  cfg.skewEventsFactor = smoke ? 64 : 256;
  return cfg;
}

struct StageResult {
  std::string name;
  std::size_t reps = 0;
  double seconds = 0.0;

  double secondsPerIter() const {
    return reps > 0 ? seconds / static_cast<double>(reps) : 0.0;
  }
  double itersPerSec() const {
    return seconds > 0.0 ? static_cast<double>(reps) / seconds : 0.0;
  }
};

/// Repeat `body` until `budgetSeconds` elapsed (always at least
/// `minReps`). One untimed warmup rep when `warmup` is set.
template <typename F>
StageResult timeStage(const std::string& name, double budgetSeconds,
                      std::size_t minReps, bool warmup, F&& body) {
  if (warmup) {
    body();
  }
  StageResult r;
  r.name = name;
  const auto t0 = clock_type::now();
  do {
    body();
    ++r.reps;
    r.seconds = secondsSince(t0);
  } while (r.seconds < budgetSeconds || r.reps < minReps);
  std::cout << "  " << name << ": " << r.reps << " rep(s), "
            << r.secondsPerIter() << " s/iter, " << r.itersPerSec()
            << " iters/s\n";
  return r;
}

analysis::PipelineOptions pipelineOptions(bool stealing,
                                          bool referenceKernels) {
  analysis::PipelineOptions opts;
  opts.threads = 0;  // hardware concurrency, sharded even at 1 core
  opts.stealing = stealing;
  opts.referenceKernels = referenceKernels;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string outPath = "BENCH_throughput.json";
  std::string critpathOutPath = "BENCH_critpath.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      outPath = argv[++i];
    } else if (arg == "--critpath-out" && i + 1 < argc) {
      critpathOutPath = argv[++i];
    } else {
      std::cerr << "usage: perfbench [--smoke] [--out FILE]"
                   " [--critpath-out FILE]\n";
      return 2;
    }
  }
  const double budget = smoke ? 0.2 : 2.0;

  bench::header(smoke ? "perfbench (smoke)" : "perfbench");

  // ---- pinned inputs -------------------------------------------------------
  const trace::Trace paper = makePaperTrace();
  const apps::ScaleConfig scaleCfg = makeScaleConfig(smoke);
  const std::string scalePath =
      smoke ? "perfbench_scale_smoke.pvt" : "perfbench_scale.pvt";
  const apps::ScaleWriteResult written =
      apps::writeScaleTrace(scalePath, scaleCfg);
  std::cout << "  scale trace: " << written.ranks << " ranks, "
            << written.events << " events (skew tail "
            << scaleCfg.skewTailPerMille << " per mille x"
            << scaleCfg.skewEventsFactor << ")\n";

  std::vector<StageResult> stages;
  util::resetPerfCounters();

  // ---- stage 1: cold load --------------------------------------------------
  trace::Trace scale;
  stages.push_back(timeStage("cold_load", budget, 2, false, [&] {
    scale = trace::loadBinaryFile(scalePath);
  }));

  // ---- stage 2: full analyze of the skewed scale trace ---------------------
  // Three variants in one run: the pre-optimization baseline (static
  // partition + reference kernels), stealing-off with the tuned kernels
  // (isolates the scheduler), and the tuned configuration. All three are
  // bit-identical in output; only the wall clock differs.
  util::ThreadPoolStats poolStats;
  StageResult baseline = timeStage(
      "analyze_baseline", budget, 1, true, [&] {
        const auto result =
            analysis::analyzeTrace(scale, pipelineOptions(false, true));
        if (result.variation.processes.empty()) {
          std::abort();
        }
      });
  StageResult stealingOff = timeStage(
      "analyze_stealing_off", budget, 1, true, [&] {
        const auto result =
            analysis::analyzeTrace(scale, pipelineOptions(false, false));
        if (result.variation.processes.empty()) {
          std::abort();
        }
      });
  StageResult tuned = timeStage("analyze", budget, 1, true, [&] {
    analysis::PipelineOptions opts = pipelineOptions(true, false);
    opts.poolStats = &poolStats;
    const auto result = analysis::analyzeTrace(scale, opts);
    if (result.variation.processes.empty()) {
      std::abort();
    }
  });
  stages.push_back(tuned);
  const double speedupEndToEnd =
      tuned.secondsPerIter() > 0.0
          ? baseline.secondsPerIter() / tuned.secondsPerIter()
          : 0.0;
  const double speedupScheduler =
      tuned.secondsPerIter() > 0.0
          ? stealingOff.secondsPerIter() / tuned.secondsPerIter()
          : 0.0;
  std::cout << "  speedup vs baseline: " << speedupEndToEnd
            << "x end-to-end, " << speedupScheduler << "x scheduler-only\n";
  std::cout << formatThreadPoolStats(poolStats);

  // ---- stage 3: lint of the paper trace ------------------------------------
  stages.push_back(timeStage("lint", budget, 2, true, [&] {
    const lint::LintReport report = lint::lintTrace(paper);
    if (report.findings.capacity() == static_cast<std::size_t>(-1)) {
      std::abort();  // defeat dead-code elimination
    }
  }));

  // ---- stage 4: warm engine re-query ---------------------------------------
  engine::AnalysisEngine eng{trace::Trace(paper)};
  (void)eng.analyze();  // populate the stage cache
  stages.push_back(timeStage("warm_query", budget, 2, true, [&] {
    const auto& result = eng.analyze();
    if (result.variation->processes.empty()) {
      std::abort();
    }
  }));

  // ---- stage 5: cross-rank dependency analysis, cold vs warm ---------------
  // Cold runs the full happens-before build + detectors each rep; warm
  // re-queries the engine's dep stage, which by the caching contract is a
  // pure cache hit (the fingerprint excludes execution options). The gap
  // between the two is the cache's value and is gated in CI
  // (BENCH_critpath.json).
  const StageResult critCold = timeStage("critpath_cold", budget, 2, true, [&] {
    const analysis::DepAnalysis a = analysis::analyzeDependencies(paper);
    if (a.processCount == 0) {
      std::abort();
    }
  });
  (void)eng.depAnalysis();  // populate the dep stage cache
  const std::uint64_t depHitsBefore = eng.cacheStats().hits;
  const StageResult critWarm = timeStage("critpath_warm", budget, 2, true, [&] {
    const auto a = eng.depAnalysis();
    if (a->processCount == 0) {
      std::abort();
    }
  });
  const std::uint64_t depHitsGained = eng.cacheStats().hits - depHitsBefore;
  // The untimed warmup rep hits too, hence >= rather than ==.
  const bool critWarmAllHits = depHitsGained >= critWarm.reps;
  const double critSpeedup =
      critWarm.secondsPerIter() > 0.0
          ? critCold.secondsPerIter() / critWarm.secondsPerIter()
          : 0.0;
  const bool critMeetsTarget = critWarmAllHits && critSpeedup > 1.0;
  std::cout << "  critpath warm re-query: " << critSpeedup
            << "x vs cold, " << depHitsGained << " cache hit(s) — "
            << (critMeetsTarget ? "MET" : "NOT MET") << '\n';
  stages.push_back(critCold);
  stages.push_back(critWarm);

  // ---- stage 6: SOS streaming replay ---------------------------------------
  const auto selection = analysis::selectDominantFunction(paper);
  const trace::FunctionId dominant = selection.dominant().function;
  stages.push_back(timeStage("streaming_sos", budget, 2, true, [&] {
    analysis::StreamingSos analyzer(paper, dominant);
    analysis::StreamingSos::replay(paper, analyzer);
    if (analyzer.segmentsCompleted() == 0) {
      std::abort();
    }
  }));

  // ---- global counter ------------------------------------------------------
  std::size_t totalIters = 0;
  double totalSeconds = 0.0;
  for (const StageResult& s : stages) {
    totalIters += s.reps;
    totalSeconds += s.seconds;
  }
  const double globalItersPerSec =
      totalSeconds > 0.0 ? static_cast<double>(totalIters) / totalSeconds
                         : 0.0;
  std::cout << "  global: " << totalIters << " iters in " << totalSeconds
            << " s = " << globalItersPerSec << " iters/s\n";

  const double targetSpeedup = 1.5;
  const bool meetsTarget = speedupEndToEnd >= targetSpeedup;
  std::cout << "  target " << targetSpeedup << "x end-to-end: "
            << (meetsTarget ? "MET" : "NOT MET") << '\n';

  // ---- BENCH_throughput.json ----------------------------------------------
  {
    std::ofstream out(outPath);
    util::JsonWriter j(out);
    j.beginObject();
    j.key("bench");
    j.value(std::string("perfbench"));
    j.key("mode");
    j.value(std::string(smoke ? "smoke" : "full"));
    j.key("config");
    j.beginObject();
    j.key("ranks");
    j.value(static_cast<std::uint64_t>(scaleCfg.ranks));
    j.key("iterations");
    j.value(static_cast<std::uint64_t>(scaleCfg.iterations));
    j.key("skew_tail_per_mille");
    j.value(static_cast<std::uint64_t>(scaleCfg.skewTailPerMille));
    j.key("skew_events_factor");
    j.value(static_cast<std::uint64_t>(scaleCfg.skewEventsFactor));
    j.key("scale_events");
    j.value(static_cast<std::uint64_t>(written.events));
    j.key("threads");
    j.value(static_cast<std::uint64_t>(
        util::ThreadPool::resolveThreadCount(0)));
    j.endObject();
    j.key("stages");
    j.beginArray();
    for (const StageResult& s : stages) {
      j.beginObject();
      j.key("name");
      j.value(s.name);
      j.key("reps");
      j.value(static_cast<std::uint64_t>(s.reps));
      j.key("seconds_per_iter");
      j.value(s.secondsPerIter());
      j.key("iters_per_sec");
      j.value(s.itersPerSec());
      j.endObject();
    }
    j.endArray();
    j.key("scale_analyze");
    j.beginObject();
    j.key("baseline_s");
    j.value(baseline.secondsPerIter());
    j.key("stealing_off_s");
    j.value(stealingOff.secondsPerIter());
    j.key("tuned_s");
    j.value(tuned.secondsPerIter());
    j.key("speedup_end_to_end");
    j.value(speedupEndToEnd);
    j.key("speedup_scheduler");
    j.value(speedupScheduler);
    j.key("target_speedup");
    j.value(targetSpeedup);
    j.key("meets_target");
    j.value(meetsTarget);
    j.endObject();
    j.key("pool");
    j.beginObject();
    j.key("workers");
    j.value(static_cast<std::uint64_t>(poolStats.workers.size()));
    j.key("chunks");
    j.value(poolStats.totalChunks());
    j.key("stolen");
    j.value(poolStats.totalStolen());
    j.key("idle_wakeups");
    j.value(poolStats.totalIdleWakeups());
    j.endObject();
    // Empty unless built with -DPERFVAR_PERF_COUNTERS=ON.
    j.key("perf_counters");
    j.beginArray();
    for (const util::PerfCounterValue& c : util::collectPerfCounters()) {
      j.beginObject();
      j.key("name");
      j.value(c.name);
      j.key("value");
      j.value(c.value);
      j.endObject();
    }
    j.endArray();
    j.key("global");
    j.beginObject();
    j.key("total_iters");
    j.value(static_cast<std::uint64_t>(totalIters));
    j.key("total_seconds");
    j.value(totalSeconds);
    j.key("iters_per_sec");
    j.value(globalItersPerSec);
    j.endObject();
    j.endObject();
    out << '\n';
  }
  std::cout << "  wrote " << outPath << '\n';

  // ---- BENCH_critpath.json -------------------------------------------------
  {
    std::ofstream out(critpathOutPath);
    util::JsonWriter j(out);
    j.beginObject();
    j.key("bench");
    j.value(std::string("critpath"));
    j.key("mode");
    j.value(std::string(smoke ? "smoke" : "full"));
    j.key("cold_s");
    j.value(critCold.secondsPerIter());
    j.key("warm_s");
    j.value(critWarm.secondsPerIter());
    j.key("warm_reps");
    j.value(static_cast<std::uint64_t>(critWarm.reps));
    j.key("warm_cache_hits");
    j.value(depHitsGained);
    j.key("warm_all_hits");
    j.value(critWarmAllHits);
    j.key("speedup_warm_vs_cold");
    j.value(critSpeedup);
    j.key("meets_target");
    j.value(critMeetsTarget);
    j.endObject();
    out << '\n';
  }
  std::cout << "  wrote " << critpathOutPath << '\n';

  std::remove(scalePath.c_str());
  return 0;
}
