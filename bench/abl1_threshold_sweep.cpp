/// Ablation A1: the invocation-count threshold of the dominant-function
/// heuristic (Section IV). The paper requires >= 2p invocations and argues
/// that max-inclusive-only selection degenerates to `main`. This bench
/// sweeps the multiplier k (threshold k*p) on the three case studies and
/// reports which function gets selected and how many segments per process
/// the choice yields (0 segments/process = useless for variation analysis).

#include <iostream>

#include "analysis/dominant.hpp"
#include "analysis/segments.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "apps/wrf.hpp"
#include "bench/bench_util.hpp"
#include "util/format.hpp"

namespace {

using namespace perfvar;

void sweep(const std::string& name, const trace::Trace& tr,
           bench::Verdict& verdict, const std::string& expectedAtTwo) {
  bench::header("A1 threshold sweep: " + name);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"k (threshold k*p)", "selected function", "invocations",
                  "segments/process"});
  const auto profile = profile::FlatProfile::build(tr);
  std::string selectedAtTwo = "(none)";
  for (const std::uint64_t k : {1, 2, 3, 4, 8}) {
    analysis::DominantOptions opts;
    opts.invocationMultiplier = k;
    const auto sel = analysis::selectDominantFunction(tr, profile, opts);
    if (!sel.hasDominant()) {
      rows.push_back({std::to_string(k), "(none)", "-", "-"});
      continue;
    }
    const auto f = sel.dominant().function;
    const auto segments = analysis::extractSegments(tr, f);
    const auto info = analysis::describeSegmentation(segments);
    rows.push_back({std::to_string(k), tr.functions.name(f),
                    std::to_string(sel.dominant().invocations),
                    std::to_string(info.totalSegments / tr.processCount())});
    if (k == 2) {
      selectedAtTwo = tr.functions.name(f);
      // The k=2 choice must segment the run (> 1 segment per process) -
      // the property the paper's threshold is designed to guarantee.
      verdict.check(name + ": k=2 yields >1 segment/process",
                    info.totalSegments / tr.processCount() > 1);
    }
  }
  std::cout << fmt::table(rows);
  bench::paperRow("selected at k=2 (the paper's threshold)", expectedAtTwo,
                  selectedAtTwo, selectedAtTwo == expectedAtTwo);
  verdict.check(name + ": expected selection at k=2",
                selectedAtTwo == expectedAtTwo);
}

}  // namespace

int main() {
  using namespace perfvar;
  bench::Verdict verdict;

  {
    apps::CosmoSpecsConfig cfg;
    cfg.gridX = 6;
    cfg.gridY = 6;
    cfg.timesteps = 20;
    const auto s = apps::buildCosmoSpecs(cfg);
    sweep("COSMO-SPECS", sim::simulate(s.program, s.simOptions), verdict,
          "cosmo_specs_timestep");
  }
  {
    apps::CosmoSpecsFd4Config cfg;
    cfg.ranks = 16;
    cfg.blocksX = 16;
    cfg.blocksY = 16;
    cfg.iterations = 8;
    cfg.interruptRank = 3;
    cfg.interruptIteration = 4;
    const auto s = apps::buildCosmoSpecsFd4(cfg);
    sweep("COSMO-SPECS+FD4", sim::simulate(s.program, s.simOptions), verdict,
          "coupling_iteration");
  }
  {
    apps::WrfConfig cfg;
    cfg.gridX = 4;
    cfg.gridY = 4;
    cfg.timesteps = 15;
    cfg.fpeRank = 9;
    const auto s = apps::buildWrf(cfg);
    sweep("WRF", sim::simulate(s.program, s.simOptions), verdict,
          "wrf_timestep");
  }
  return verdict.exitCode();
}
