/// Ablation A4: robustness of the hotspot scoring under measurement noise.
/// A single interrupted invocation (8x one segment) is hidden in runs with
/// increasing log-normal compute noise; reported per noise level: whether
/// the robust (median/MAD) scoring still ranks the true (rank, iteration)
/// first, and the score margin over the best false positive - compared
/// against classic (mean/stddev) z-scoring.

#include <algorithm>
#include <iostream>

#include "analysis/sos.hpp"
#include "analysis/variation.hpp"
#include "bench/bench_util.hpp"
#include "sim/program.hpp"
#include "sim/simulator.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

namespace {

using namespace perfvar;

constexpr std::uint32_t kRanks = 12;
constexpr std::size_t kIters = 30;
constexpr std::uint32_t kCulprit = 7;
constexpr std::size_t kCulpritIter = 13;

trace::Trace noisyRun(double sigma, std::uint64_t seed) {
  sim::ProgramBuilder b(kRanks);
  const auto fStep = b.function("step", "APP");
  const auto fWork = b.function("work", "APP");
  for (std::size_t i = 0; i < kIters; ++i) {
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      b.enter(r, fStep);
      sim::ComputeAttrs attrs;
      if (r == kCulprit && i == kCulpritIter) {
        attrs.osDelay = 7.0e-3;  // 8x the nominal segment
      }
      b.compute(r, fWork, 1.0e-3, attrs);
      b.barrier(r);
      b.leave(r, fStep);
    }
  }
  sim::SimOptions opts;
  opts.noise.sigma = sigma;
  opts.noise.seed = seed;
  return sim::simulate(b.finish(), opts);
}

}  // namespace

int main() {
  using namespace perfvar;
  bench::Verdict verdict;
  bench::header("A4: hotspot detection vs compute noise (10 seeds each)");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"noise sigma", "robust hit rate", "robust margin",
                  "classic hit rate", "classic margin"});
  for (const double sigma : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    int robustHits = 0;
    int classicHits = 0;
    double robustMargin = 0.0;
    double classicMargin = 0.0;
    constexpr int kSeeds = 10;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const trace::Trace tr = noisyRun(sigma, 1000 + seed);
      const auto fStep = *tr.functions.find("step");
      const analysis::SosResult sos = analysis::analyzeSos(tr, fStep);

      // Robust scoring via the library's variation analysis.
      analysis::VariationOptions opts;
      opts.outlierThreshold = 3.5;
      const auto report = analyzeVariation(sos, opts);
      if (!report.hotspots.empty() &&
          report.hotspots[0].process == kCulprit &&
          report.hotspots[0].iteration == kCulpritIter) {
        ++robustHits;
        const double second = report.hotspots.size() > 1
                                  ? report.hotspots[1].globalZ
                                  : opts.outlierThreshold;
        robustMargin += report.hotspots[0].globalZ / second;
      }

      // Classic z-scoring over the same SOS values.
      const auto flat = sos.allSosSeconds();
      double bestZ = 0.0;
      double secondZ = 0.0;
      std::size_t bestIdx = 0;
      for (std::size_t k = 0; k < flat.size(); ++k) {
        const double z = stats::zScore(flat[k], flat);
        if (z > bestZ) {
          secondZ = bestZ;
          bestZ = z;
          bestIdx = k;
        } else {
          secondZ = std::max(secondZ, z);
        }
      }
      const std::size_t bestProc = bestIdx / kIters;
      const std::size_t bestIter = bestIdx % kIters;
      if (bestProc == kCulprit && bestIter == kCulpritIter && bestZ > 3.5) {
        ++classicHits;
        classicMargin += secondZ > 0.0 ? bestZ / secondZ : bestZ;
      }
    }
    rows.push_back({fmt::fixed(sigma, 2),
                    std::to_string(robustHits) + "/" +
                        std::to_string(kSeeds),
                    robustHits ? fmt::fixed(robustMargin / robustHits, 1)
                               : "-",
                    std::to_string(classicHits) + "/" +
                        std::to_string(kSeeds),
                    classicHits ? fmt::fixed(classicMargin / classicHits, 1)
                                : "-"});
    if (sigma <= 0.2) {
      verdict.check("robust scoring finds the hotspot at sigma " +
                        fmt::fixed(sigma, 2),
                    robustHits == 10);
    }
  }
  std::cout << fmt::table(rows);
  std::cout << "\n  shape: robust (median/MAD) scoring keeps a perfect hit "
               "rate well past the\n  noise level where the margin of "
               "classic z-scoring collapses.\n";
  return verdict.exitCode();
}
