/// Ablation A3: segmentation granularity (Figure 5(b) vs 5(c)). The same
/// trace with a single interrupted invocation is analyzed at every
/// dominant-function candidate level. Reported per level: segments per
/// process, whether the culprit (rank, segment) is found, the hotspot z,
/// and the fraction of the run one segment covers (temporal precision).

#include <iostream>

#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "bench/bench_util.hpp"
#include "util/format.hpp"

int main() {
  using namespace perfvar;
  bench::Verdict verdict;
  bench::header("A3: segmentation granularity vs detection precision");

  apps::CosmoSpecsFd4Config cfg;
  cfg.ranks = 32;
  cfg.blocksX = 16;
  cfg.blocksY = 16;
  cfg.iterations = 12;
  cfg.innerTimesteps = 6;
  cfg.interruptRank = 20;
  cfg.interruptIteration = 7;
  cfg.interruptInnerStep = 2;
  const apps::CosmoSpecsFd4Scenario scenario = apps::buildCosmoSpecsFd4(cfg);
  const trace::Trace tr = sim::simulate(scenario.program, scenario.simOptions);

  const auto selection = analysis::selectDominantFunction(tr);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"candidate", "function", "segments/rank", "culprit found",
                  "hotspot z", "segment span"});
  const double runSeconds = tr.durationSeconds();
  for (std::size_t level = 0; level < selection.candidates.size() && level < 4;
       ++level) {
    analysis::PipelineOptions opts;
    opts.candidateIndex = level;
    const auto result = analysis::analyzeTrace(tr, opts);
    const std::size_t segsPerRank = result.sos->maxSegmentsPerProcess();
    bool found = false;
    double z = 0.0;
    if (!result.variation.hotspots.empty()) {
      const auto& top = result.variation.hotspots.front();
      found = top.process == scenario.culpritRank;
      z = top.globalZ;
    }
    const double span = segsPerRank > 0
                            ? runSeconds / static_cast<double>(segsPerRank)
                            : runSeconds;
    rows.push_back({std::to_string(level),
                    tr.functions.name(result.segmentFunction),
                    std::to_string(segsPerRank), found ? "yes" : "no",
                    fmt::fixed(z, 1), fmt::seconds(span)});
    if (level == 0) {
      verdict.check("coarse level finds the culprit rank", found);
    }
    if (level == 1) {
      verdict.check("fine level finds the culprit rank", found);
      verdict.check("fine level isolates the exact invocation",
                    !result.variation.hotspots.empty() &&
                        result.variation.hotspots.front().iteration ==
                            scenario.culpritFineSegment);
      // Finer segmentation narrows the temporal window.
      verdict.check("finer level improves temporal precision",
                    segsPerRank > 2 * cfg.iterations);
    }
  }
  std::cout << fmt::table(rows);
  std::cout << "\n  shape: both levels blame the same rank; the finer level "
               "pins the exact\n  invocation (paper: \"allows direct "
               "identification of the one function\n  invocation\").\n";
  return verdict.exitCode();
}
