/// Regenerates paper Figure 6: the WRF case study on 64 ranks.
///   (a) timeline: init/IO lead-in, then iterations with ~25% MPI share;
///   (b) SOS overlay: rank 39 hot;
///   (c) FR_FPU_EXCEPTIONS_SSE_MICROTRAPS counter matching the SOS map.

#include <iostream>

#include "analysis/correlate.hpp"
#include "analysis/pipeline.hpp"
#include "apps/wrf.hpp"
#include "bench/bench_util.hpp"
#include "util/format.hpp"
#include "vis/heatmap.hpp"
#include "vis/timeline.hpp"

int main() {
  using namespace perfvar;
  bench::Verdict verdict;

  bench::header("Figure 6: WRF floating-point exceptions (64 ranks)");
  const apps::WrfScenario scenario = apps::buildWrf();
  sim::SimReport simReport;
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions, &simReport);
  std::cout << "  simulated " << tr.processCount() << " ranks, "
            << simReport.events << " events, makespan "
            << fmt::seconds(simReport.makespan) << '\n';

  const analysis::AnalysisResult result = analysis::analyzeTrace(tr);

  // --- (a): MPI share of the iteration phase --------------------------------
  bench::header("Figure 6(a): iteration-phase MPI share");
  const auto sync = result.sos->syncFractionPerIteration();
  double mpiShare = 0.0;
  for (const double s : sync) {
    mpiShare += s;
  }
  mpiShare /= static_cast<double>(sync.size());
  bench::paperRow("MPI share of iterations", "~25%", fmt::percent(mpiShare),
                  mpiShare > 0.15 && mpiShare < 0.35);
  verdict.check("MPI share ~25%", mpiShare > 0.15 && mpiShare < 0.35);

  // The init + input-I/O lead-in precedes the iterations (paper: ~11 s of
  // a longer run; shape, not scale).
  const double leadIn =
      tr.toSeconds(result.sos->process(1).front().segment.enter);
  std::cout << "  init/IO lead-in before first iteration: "
            << fmt::seconds(leadIn) << '\n';
  verdict.check("visible init lead-in", leadIn > 0.5);

  // --- (b): SOS hotspot --------------------------------------------------------
  bench::header("Figure 6(b): SOS-time overlay");
  std::cout << "  top 4 processes by total SOS-time:\n";
  for (std::size_t i = 0; i < 4; ++i) {
    const auto p = result.variation.processesBySos[i];
    std::cout << "    " << tr.processes[p].name << "  "
              << fmt::seconds(result.variation.processes[p].totalSos)
              << "  z " << fmt::fixed(result.variation.processes[p].totalZ, 1)
              << '\n';
  }
  bench::paperRow("hot process", "Process 39",
                  std::to_string(result.variation.slowestProcess()),
                  result.variation.slowestProcess() == scenario.culpritRank);
  verdict.check("rank 39 hot",
                result.variation.slowestProcess() == scenario.culpritRank);
  verdict.check("rank 39 is the only culprit",
                result.variation.culpritProcesses.size() == 1 &&
                    result.variation.culpritProcesses[0] ==
                        scenario.culpritRank);

  // --- (c): counter validation ---------------------------------------------------
  bench::header("Figure 6(c): FR_FPU_EXCEPTIONS_SSE_MICROTRAPS counter");
  const auto fpe = tr.metrics.find(scenario.fpExceptionMetricName);
  if (fpe) {
    const auto correlation = analysis::correlateMetric(*result.sos, *fpe);
    std::cout << "  " << analysis::formatCorrelation(tr, correlation) << '\n';
    const auto totals = result.sos->totalMetricPerProcess(*fpe);
    std::cout << "  exceptions on rank 39: " << totals[39]
              << " vs median rank: ~" << totals[0] << '\n';
    bench::paperRow("counter matches SOS map",
                    "perfect match (hot rank identical)",
                    "process Pearson " +
                        fmt::fixed(correlation.processPearson, 3),
                    correlation.processPearson > 0.95 &&
                        correlation.topProcessMatches);
    verdict.check("counter correlates",
                  correlation.processPearson > 0.95 &&
                      correlation.topProcessMatches);
  } else {
    verdict.check("fpe metric present", false);
  }

  // Ranked metric search puts the FPU counter first among all counters
  // that are not direct time proxies (PAPI_TOT_CYC tracks compute time by
  // definition, so it always correlates) - the "focused subsequent
  // analysis" the paper describes.
  const auto ranked = analysis::correlateAllMetrics(*result.sos);
  for (const auto& c : ranked) {
    if (tr.metrics.name(c.metric) != "PAPI_TOT_CYC") {
      std::cout << "  strongest non-time-proxy counter: "
                << tr.metrics.name(c.metric) << " (process Pearson "
                << fmt::fixed(c.processPearson, 3) << ")\n";
      verdict.check("FPU counter is the top non-time-proxy correlate",
                    tr.metrics.name(c.metric) ==
                        scenario.fpExceptionMetricName);
      break;
    }
  }

  // --- renders ----------------------------------------------------------------------
  const std::string dir = bench::artifactsDir();
  vis::TimelineOptions tl;
  tl.title = "WRF timeline (64 ranks)";
  tl.messageLines = false;
  vis::renderTimelineSvg(tr, vis::FunctionColors::standard(tr), tl)
      .save(dir + "/fig6a_timeline.svg");
  vis::HeatmapOptions heat;
  heat.title = "WRF SOS-time (rank x timestep)";
  vis::renderHeatmapSvg(result.sos->sosMatrixSeconds(), heat)
      .save(dir + "/fig6b_sos.svg");
  if (fpe) {
    heat.title = "WRF FP exceptions (rank x timestep)";
    vis::renderHeatmapSvg(result.sos->metricMatrix(*fpe), heat)
        .save(dir + "/fig6c_fpe.svg");
  }
  std::cout << "  wrote " << dir << "/fig6a_timeline.svg, " << dir
            << "/fig6b_sos.svg, " << dir << "/fig6c_fpe.svg\n";

  return verdict.exitCode();
}
