/// \file bench_scale.cpp
/// The BM_Scale bench family (google-benchmark): out-of-core analysis at
/// 1k / 10k / 100k ranks. Each size streams the synthetic scale scenario
/// to disk with trace::V2StreamWriter and measures (a) the streamed
/// generation itself, (b) a full dominant+SOS+variation pass through the
/// lazy TraceView backend under a bounded shard budget, and (c) the same
/// pass through an eager whole-trace load where memory still allows
/// (1k/10k). The peak decoded-shard residency is reported as a counter,
/// so BENCH_scale.json documents both time and the memory bound. CI runs
/// this in Release and uploads BENCH_scale.json (job: bench-scale).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "analysis/pipeline.hpp"
#include "apps/scale_synthetic.hpp"
#include "trace/binary_io.hpp"
#include "trace/stats.hpp"
#include "trace/view.hpp"

namespace {

using namespace perfvar;

/// Bench-sized scenario: 5 iterations keeps 100k ranks at ~3.7M events.
apps::ScaleConfig benchConfig(std::int64_t ranks) {
  apps::ScaleConfig cfg;
  cfg.ranks = static_cast<std::size_t>(ranks);
  cfg.iterations = 5;
  return cfg;
}

std::string benchPath(std::int64_t ranks) {
  return "bench_scale_" + std::to_string(ranks) + ".pvt";
}

/// Generate the fixture once per size; later benchmarks reuse the file.
const std::string& fixtureFile(std::int64_t ranks) {
  static std::string path1k, path10k, path100k;
  std::string& slot =
      ranks >= 100'000 ? path100k : (ranks >= 10'000 ? path10k : path1k);
  if (slot.empty()) {
    slot = benchPath(ranks);
    apps::writeScaleTrace(slot, benchConfig(ranks));
  }
  return slot;
}

void BM_ScaleGenerateStreamed(benchmark::State& state) {
  const apps::ScaleConfig cfg = benchConfig(state.range(0));
  const std::string path = benchPath(state.range(0)) + ".tmp";
  std::uint64_t events = 0;
  for (auto _ : state) {
    const apps::ScaleWriteResult written = apps::writeScaleTrace(path, cfg);
    events = written.events;
    benchmark::DoNotOptimize(written.ranks);
  }
  std::remove(path.c_str());
  state.counters["events"] = static_cast<double>(events);
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_ScaleGenerateStreamed)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_ScaleAnalyzeLazy(benchmark::State& state) {
  const std::string& path = fixtureFile(state.range(0));
  trace::TraceViewOptions viewOpts;
  viewOpts.shardBudgetBytes = 64ull << 20;  // 64 MiB regardless of size
  analysis::PipelineOptions pipeline;
  pipeline.threads = 0;
  std::uint64_t peak = 0;
  for (auto _ : state) {
    const trace::TraceView view = trace::TraceView::openFile(path, viewOpts);
    const analysis::AnalysisResult result =
        analysis::analyzeTrace(view, pipeline);
    benchmark::DoNotOptimize(result.variation.hotspots.size());
    peak = view.stats().peakResidentBytes;
  }
  state.counters["peak_resident_mb"] =
      static_cast<double>(peak) / (1024.0 * 1024.0);
}
BENCHMARK(BM_ScaleAnalyzeLazy)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_ScaleAnalyzeEager(benchmark::State& state) {
  const std::string& path = fixtureFile(state.range(0));
  analysis::PipelineOptions pipeline;
  pipeline.threads = 0;
  for (auto _ : state) {
    const trace::Trace tr = trace::loadBinaryFile(path);
    const analysis::AnalysisResult result =
        analysis::analyzeTrace(tr, pipeline);
    benchmark::DoNotOptimize(result.variation.hotspots.size());
  }
}
// Eager baseline stops at 10k ranks; 100k is the lazy backend's territory.
BENCHMARK(BM_ScaleAnalyzeEager)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

void BM_ScaleStatsSweep(benchmark::State& state) {
  const std::string& path = fixtureFile(state.range(0));
  trace::TraceViewOptions viewOpts;
  viewOpts.shardBudgetBytes = 16ull << 20;
  const trace::TraceView view = trace::TraceView::openFile(path, viewOpts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::computeStats(view).eventCount);
  }
  state.counters["peak_resident_mb"] =
      static_cast<double>(view.stats().peakResidentBytes) /
      (1024.0 * 1024.0);
}
BENCHMARK(BM_ScaleStatsSweep)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
