/// Ablation A7: dominant-function segmentation vs. fixed time windows.
/// The paper segments by dominant-function invocations so segments align
/// with iterations. The obvious alternative - fixed time windows - needs
/// no iterative structure, but windows straddle iteration boundaries and
/// mix one rank's compute with another iteration's wait time. Measured
/// consequence on the FD4 interruption scenario: window totals still
/// expose WHICH rank is slow (totals are segmentation-invariant), but no
/// window size yields a (rank, window) hotspot above the outlier
/// threshold, i.e. the WHEN is lost - exactly what the aligned
/// dominant-function segments provide (z >> threshold at the exact
/// iteration).

#include <iostream>

#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "bench/bench_util.hpp"
#include "util/format.hpp"

int main() {
  using namespace perfvar;
  bench::Verdict verdict;
  bench::header("A7: dominant-function vs fixed-window segmentation");

  apps::CosmoSpecsFd4Config cfg;
  cfg.ranks = 32;
  cfg.blocksX = 16;
  cfg.blocksY = 16;
  cfg.iterations = 12;
  cfg.interruptRank = 20;
  cfg.interruptIteration = 7;
  const apps::CosmoSpecsFd4Scenario scenario = apps::buildCosmoSpecsFd4(cfg);
  const trace::Trace tr = sim::simulate(scenario.program, scenario.simOptions);

  // Reference: the paper's segmentation.
  const analysis::AnalysisResult dominant = analysis::analyzeTrace(tr);
  const auto& domTop = dominant.variation.hotspots.front();
  const double iterationTicks =
      static_cast<double>(tr.endTime() - tr.startTime()) /
      static_cast<double>(cfg.iterations);
  std::cout << "  dominant-function segmentation: hotspot z "
            << fmt::fixed(domTop.globalZ, 1) << " at ("
            << tr.processes[domTop.process].name << ", iteration "
            << domTop.iteration << ")\n\n";

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"window (x iteration)", "windows", "process found",
                  "process z", "cell hotspot found", "best cell z"});
  bool anyCellHit = false;
  bool allProcessHits = true;
  for (const double fraction : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    const auto windowTicks =
        static_cast<trace::Timestamp>(iterationTicks * fraction);
    const analysis::SosResult windows =
        analysis::analyzeSosWindows(tr, windowTicks);
    const auto report = analysis::analyzeVariation(windows);
    const bool processHit =
        report.processesBySos.front() == scenario.culpritRank;
    allProcessHits &= processHit;
    const bool cellHit =
        !report.hotspots.empty() &&
        report.hotspots.front().process == scenario.culpritRank;
    anyCellHit |= cellHit;
    rows.push_back(
        {fmt::fixed(fraction, 1),
         std::to_string(windows.maxSegmentsPerProcess()),
         processHit ? "yes" : "no",
         fmt::fixed(report.processes[report.processesBySos.front()].totalZ,
                    1),
         cellHit ? "yes" : "no",
         report.hotspots.empty()
             ? "-"
             : fmt::fixed(report.hotspots.front().globalZ, 1)});
  }
  std::cout << fmt::table(rows);

  bench::paperRow("dominant segments localize (rank, iteration)",
                  "yes (Fig. 5b)",
                  domTop.process == scenario.culpritRank &&
                          domTop.iteration == scenario.culpritIteration
                      ? "yes"
                      : "no",
                  domTop.process == scenario.culpritRank);
  verdict.check("dominant segmentation finds the exact cell",
                domTop.process == scenario.culpritRank &&
                    domTop.iteration == scenario.culpritIteration &&
                    domTop.globalZ > 20.0);
  verdict.check("window totals still find the process", allProcessHits);
  verdict.check("no window size localizes the iteration cell", !anyCellHit);
  std::cout << "\n  shape: fixed windows keep the WHO (totals) but lose the "
               "WHEN; aligning\n  segments with iterations via the dominant "
               "function restores it (Sec. IV).\n";
  return verdict.exitCode();
}
