#ifndef PERFVAR_BENCH_BENCH_UTIL_HPP
#define PERFVAR_BENCH_BENCH_UTIL_HPP

/// \file bench_util.hpp
/// Shared helpers of the figure-reproduction benches: section headers,
/// paper-vs-measured rows, and an artifacts directory for renders.

#include <filesystem>
#include <iostream>
#include <string>

namespace perfvar::bench {

inline void header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

inline void paperRow(const std::string& what, const std::string& paper,
                     const std::string& measured, bool ok) {
  std::cout << "  " << what << ": paper=" << paper << " measured=" << measured
            << (ok ? "  [OK]" : "  [MISMATCH]") << '\n';
}

/// Directory for rendered artifacts (created under the current working
/// directory).
inline std::string artifactsDir() {
  const std::string dir = "artifacts";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Track the overall verdict of a bench binary.
class Verdict {
public:
  void check(const std::string& what, bool ok) {
    if (!ok) {
      ok_ = false;
      std::cout << "  !! check failed: " << what << '\n';
    }
  }

  int exitCode() const {
    std::cout << (ok_ ? "\nALL SHAPE CHECKS PASSED\n"
                      : "\nSOME SHAPE CHECKS FAILED\n");
    return ok_ ? 0 : 1;
  }

private:
  bool ok_ = true;
};

}  // namespace perfvar::bench

#endif  // PERFVAR_BENCH_BENCH_UTIL_HPP
