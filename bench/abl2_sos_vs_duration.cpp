/// Ablation A2: SOS-time vs. plain segment duration vs. aggregated
/// profile (Section V's motivation). A rank-`c` compute imbalance of
/// magnitude m is injected behind a barrier; each detector ranks the
/// processes. Reported per magnitude: the rank it assigns to the true
/// culprit (0 = first) and the separation of its top score. The shape the
/// paper predicts: SOS localizes at every magnitude, segment durations
/// never do (the barrier equalizes them).

#include <iostream>

#include "analysis/baselines.hpp"
#include "bench/bench_util.hpp"
#include "sim/program.hpp"
#include "sim/simulator.hpp"
#include "util/format.hpp"

namespace {

using namespace perfvar;

trace::Trace imbalancedRun(double magnitude, std::uint32_t culprit) {
  constexpr std::uint32_t kRanks = 16;
  constexpr std::size_t kIters = 25;
  sim::ProgramBuilder b(kRanks);
  const auto fStep = b.function("step", "APP");
  const auto fWork = b.function("work", "APP");
  for (std::size_t i = 0; i < kIters; ++i) {
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      b.enter(r, fStep);
      const double base = 1.0e-3;
      b.compute(r, fWork, r == culprit ? base * (1.0 + magnitude) : base);
      b.barrier(r);
      b.leave(r, fStep);
    }
  }
  sim::SimOptions opts;
  opts.noise.sigma = 0.03;
  return sim::simulate(b.finish(), opts);
}

}  // namespace

int main() {
  using namespace perfvar;
  bench::Verdict verdict;
  bench::header("A2: localization quality, SOS vs duration vs profile");

  constexpr std::uint32_t kCulprit = 11;
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"imbalance", "sos rank", "sos sep", "duration rank",
                  "duration sep", "profile rank", "profile sep"});
  for (const double magnitude : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0}) {
    const trace::Trace tr = imbalancedRun(magnitude, kCulprit);
    const auto fStep = *tr.functions.find("step");
    const auto sos = analysis::detectBySos(tr, fStep);
    const auto dur = analysis::detectBySegmentDuration(tr, fStep);
    const auto prof = analysis::detectByProfile(tr);
    rows.push_back({fmt::percent(magnitude),
                    std::to_string(sos.rankOf(kCulprit)),
                    fmt::fixed(sos.topSeparation(), 1),
                    std::to_string(dur.rankOf(kCulprit)),
                    fmt::fixed(dur.topSeparation(), 1),
                    std::to_string(prof.rankOf(kCulprit)),
                    fmt::fixed(prof.topSeparation(), 1)});
    // SOS must localize from 10% upward with clear separation.
    if (magnitude >= 0.1) {
      verdict.check("sos localizes at " + fmt::percent(magnitude),
                    sos.rankOf(kCulprit) == 0 && sos.topSeparation() > 3.0);
      // Durations are barrier-equalized: separation stays tiny.
      verdict.check("duration stays blind at " + fmt::percent(magnitude),
                    dur.topSeparation() < 0.3 * sos.topSeparation());
    }
  }
  std::cout << fmt::table(rows);
  std::cout << "\n  (profile-only also localizes persistent imbalance but "
               "has no temporal\n  dimension - see A3/fig5 for the transient "
               "case it misses.)\n";
  return verdict.exitCode();
}
