/// Regenerates paper Figure 2: selection of the time-dominant function on
/// the three-process main/i/a/b/c example. The paper's numbers: main has
/// the highest aggregated inclusive time (54) but only p = 3 invocations;
/// `a` has the second highest (36) with 9 >= 2p invocations and is selected.

#include <iostream>

#include "analysis/dominant.hpp"
#include "apps/paper_examples.hpp"
#include "bench/bench_util.hpp"
#include "profile/profile.hpp"

int main() {
  using namespace perfvar;
  bench::Verdict verdict;

  bench::header("Figure 2: time-dominant function selection");
  const trace::Trace tr = apps::buildFigure2Trace();
  const auto profile = profile::FlatProfile::build(tr);
  std::cout << profile::formatTopFunctions(tr, profile, 10) << '\n';

  const auto fMain = *tr.functions.find("main");
  const auto fA = *tr.functions.find("a");
  bench::paperRow("aggregated inclusive(main)", "54",
                  std::to_string(profile.aggregated(fMain).inclusive),
                  profile.aggregated(fMain).inclusive == 54);
  bench::paperRow("invocations(main)", "3 (= p)",
                  std::to_string(profile.aggregated(fMain).invocations),
                  profile.aggregated(fMain).invocations == 3);
  bench::paperRow("aggregated inclusive(a)", "36",
                  std::to_string(profile.aggregated(fA).inclusive),
                  profile.aggregated(fA).inclusive == 36);
  bench::paperRow("invocations(a)", "9 (>= 2p = 6)",
                  std::to_string(profile.aggregated(fA).invocations),
                  profile.aggregated(fA).invocations == 9);

  const analysis::DominantSelection sel =
      analysis::selectDominantFunction(tr, profile);
  std::cout << '\n' << analysis::formatSelection(tr, sel);
  const bool aSelected =
      sel.hasDominant() && sel.dominant().function == fA;
  const bool mainRejected =
      !sel.rejectedTopLevel.empty() &&
      sel.rejectedTopLevel.front().function == fMain;
  bench::paperRow("selected dominant function", "a",
                  sel.hasDominant() ? tr.functions.name(
                                          sel.dominant().function)
                                    : "(none)",
                  aSelected);
  bench::paperRow("rejected despite max inclusive time", "main",
                  mainRejected ? "main" : "(none)", mainRejected);

  verdict.check("a selected", aSelected);
  verdict.check("main rejected", mainRejected);
  verdict.check("main inclusive 54",
                profile.aggregated(fMain).inclusive == 54);
  verdict.check("a inclusive 36", profile.aggregated(fA).inclusive == 36);
  return verdict.exitCode();
}
