#include <gtest/gtest.h>

#include <sstream>

#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/text_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace perfvar::trace {
namespace {

Trace sampleTrace() {
  TraceBuilder b(3);
  const auto f = b.defineFunction("solve \"quoted\"", "APP");
  const auto g = b.defineFunction("MPI_Barrier", "MPI", Paradigm::MPI);
  const auto m = b.defineMetric("PAPI_TOT_CYC", "cycles");
  b.setProcessName(2, "Rank two \\ special");
  for (ProcessId p = 0; p < 3; ++p) {
    b.enter(p, p, f);
    b.metric(p, p + 1, m, 3.25 * (p + 1));
    b.enter(p, p + 2, g);
    b.leave(p, p + 5, g);
    b.leave(p, p + 9, f);
  }
  b.mpiSend(0, 100, 1, 7, 4096);
  b.mpiRecv(1, 120, 0, 7, 4096);
  return b.finish();
}

void expectTracesEqual(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.resolution, b.resolution);
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    const auto id = static_cast<FunctionId>(i);
    EXPECT_EQ(a.functions.at(id).name, b.functions.at(id).name);
    EXPECT_EQ(a.functions.at(id).group, b.functions.at(id).group);
    EXPECT_EQ(a.functions.at(id).paradigm, b.functions.at(id).paradigm);
  }
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    const auto id = static_cast<MetricId>(i);
    EXPECT_EQ(a.metrics.at(id).name, b.metrics.at(id).name);
    EXPECT_EQ(a.metrics.at(id).unit, b.metrics.at(id).unit);
    EXPECT_EQ(a.metrics.at(id).mode, b.metrics.at(id).mode);
  }
  ASSERT_EQ(a.processes.size(), b.processes.size());
  for (std::size_t p = 0; p < a.processes.size(); ++p) {
    EXPECT_EQ(a.processes[p].name, b.processes[p].name);
    ASSERT_EQ(a.processes[p].events.size(), b.processes[p].events.size());
    for (std::size_t i = 0; i < a.processes[p].events.size(); ++i) {
      EXPECT_EQ(a.processes[p].events[i], b.processes[p].events[i]);
    }
  }
}

TEST(BinaryIo, RoundTripsSampleTrace) {
  const Trace original = sampleTrace();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  writeBinary(original, buf);
  const Trace loaded = readBinary(buf);
  expectTracesEqual(original, loaded);
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOPE and more bytes here";
  EXPECT_THROW(readBinary(buf), Error);
}

TEST(BinaryIo, RejectsTruncation) {
  const Trace original = sampleTrace();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  writeBinary(original, buf);
  const std::string full = buf.str();
  for (const std::size_t cut : {5ul, full.size() / 2, full.size() - 3}) {
    std::stringstream cutBuf(full.substr(0, cut),
                             std::ios::in | std::ios::binary);
    EXPECT_THROW(readBinary(cutBuf), Error) << "cut at " << cut;
  }
}

TEST(BinaryIo, RejectsBitFlips) {
  const Trace original = sampleTrace();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  writeBinary(original, buf);
  std::string bytes = buf.str();
  // Flip a byte in the middle of the payload: either a structural check
  // or the checksum must catch it.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  std::stringstream corrupted(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(readBinary(corrupted), Error);
}

TEST(BinaryIo, FileRoundTrip) {
  const Trace original = sampleTrace();
  const std::string path = ::testing::TempDir() + "/perfvar_io_test.pvt";
  saveBinaryFile(original, path);
  const Trace loaded = loadBinaryFile(path);
  expectTracesEqual(original, loaded);
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(loadBinaryFile("/nonexistent/dir/file.pvt"), Error);
}

TEST(TextIo, RoundTripsSampleTraceWithEscapes) {
  const Trace original = sampleTrace();
  const std::string text = toText(original);
  const Trace loaded = fromText(text);
  expectTracesEqual(original, loaded);
}

TEST(TextIo, RejectsGarbage) {
  EXPECT_THROW(fromText("not a trace"), Error);
  EXPECT_THROW(fromText(""), Error);
  EXPECT_THROW(fromText("PVTX 9\n"), Error);
}

TEST(TextIo, ReportsLineNumbers) {
  try {
    fromText("PVTX 1\nresolution 1000\nbogus record\n");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(TextIo, SkipsCommentsAndBlankLines) {
  const Trace t = fromText(
      "PVTX 1\n"
      "# a comment\n"
      "\n"
      "resolution 1000\n"
      "function 0 \"f\" \"\" COMPUTE\n"
      "process 0 \"Rank 0\"\n"
      "E 0 0\n"
      "L 5 0\n");
  EXPECT_EQ(t.resolution, 1000u);
  EXPECT_EQ(t.eventCount(), 2u);
}

TEST(TextIo, RejectsEventBeforeProcess) {
  EXPECT_THROW(fromText("PVTX 1\nE 0 0\n"), Error);
}

// Property: random traces round-trip through both formats.
class IoRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoRoundTripSweep, RandomTraceRoundTrips) {
  Rng rng(GetParam());
  const auto nProcs = static_cast<std::size_t>(rng.uniformInt(1, 5));
  TraceBuilder b(nProcs);
  std::vector<FunctionId> fns;
  const auto nFuncs = rng.uniformInt(1, 6);
  for (std::int64_t i = 0; i < nFuncs; ++i) {
    fns.push_back(b.defineFunction(
        "f" + std::to_string(i), i % 2 ? "MPI" : "APP",
        i % 2 ? Paradigm::MPI : Paradigm::Compute));
  }
  const auto m = b.defineMetric("counter");
  for (ProcessId p = 0; p < nProcs; ++p) {
    Timestamp t = static_cast<Timestamp>(rng.uniformInt(0, 10));
    std::vector<FunctionId> stack;
    const auto steps = rng.uniformInt(10, 60);
    for (std::int64_t s = 0; s < steps; ++s) {
      t += static_cast<Timestamp>(rng.uniformInt(0, 1000));
      const auto roll = rng.uniformInt(0, 3);
      if ((roll < 2 || stack.empty()) && stack.size() < 8) {
        const auto f = fns[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(fns.size()) - 1))];
        b.enter(p, t, f);
        stack.push_back(f);
      } else if (roll == 2 && !stack.empty()) {
        b.leave(p, t, stack.back());
        stack.pop_back();
      } else {
        b.metric(p, t, m, rng.uniform(0.0, 1e9));
      }
    }
    while (!stack.empty()) {
      t += 1;
      b.leave(p, t, stack.back());
      stack.pop_back();
    }
  }
  const Trace original = b.finish();

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  writeBinary(original, buf);
  expectTracesEqual(original, readBinary(buf));
  expectTracesEqual(original, fromText(toText(original)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTripSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace perfvar::trace
