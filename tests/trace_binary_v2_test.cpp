/// Differential tests of the block-based PVTF v2 codec: serial and
/// threaded encode/decode must reproduce the original trace bit-exactly,
/// v1 files written by the legacy writer must keep loading, and v2 files
/// must not be larger than their v1 counterparts.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/paper_examples.hpp"
#include "trace/binary_format.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace perfvar::trace {
namespace {

void expectTracesEqual(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.resolution, b.resolution);
  ASSERT_EQ(a.functions.size(), b.functions.size());
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    const auto id = static_cast<FunctionId>(i);
    EXPECT_EQ(a.functions.at(id).name, b.functions.at(id).name);
    EXPECT_EQ(a.functions.at(id).group, b.functions.at(id).group);
    EXPECT_EQ(a.functions.at(id).paradigm, b.functions.at(id).paradigm);
  }
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    const auto id = static_cast<MetricId>(i);
    EXPECT_EQ(a.metrics.at(id).name, b.metrics.at(id).name);
    EXPECT_EQ(a.metrics.at(id).unit, b.metrics.at(id).unit);
    EXPECT_EQ(a.metrics.at(id).mode, b.metrics.at(id).mode);
  }
  ASSERT_EQ(a.processes.size(), b.processes.size());
  for (std::size_t p = 0; p < a.processes.size(); ++p) {
    EXPECT_EQ(a.processes[p].name, b.processes[p].name);
    ASSERT_EQ(a.processes[p].events.size(), b.processes[p].events.size());
    for (std::size_t i = 0; i < a.processes[p].events.size(); ++i) {
      EXPECT_EQ(a.processes[p].events[i], b.processes[p].events[i]);
    }
  }
}

/// A mid-sized multi-rank trace exercising every event kind, large
/// deltas, escape-coded function ids (>= 31) and neighbor messaging.
Trace syntheticTrace(std::size_t ranks, std::size_t iterations) {
  TraceBuilder b(ranks);
  std::vector<FunctionId> fns;
  for (std::size_t i = 0; i < 40; ++i) {
    fns.push_back(b.defineFunction(
        "fn" + std::to_string(i), i % 3 ? "APP" : "MPI",
        i % 3 ? Paradigm::Compute : Paradigm::MPI));
  }
  const auto m = b.defineMetric("cycles", "count");
  for (ProcessId p = 0; p < ranks; ++p) {
    Timestamp t = 17 * (p + 1);
    for (std::size_t it = 0; it < iterations; ++it) {
      const auto f = fns[(p + it) % fns.size()];
      b.enter(p, t, f);
      t += 3 + ((p * 31 + it * 7) % 5000);  // exercises multi-byte deltas
      b.metric(p, t, m, static_cast<double>(p) * 1e6 + it);
      if (ranks > 1) {
        const auto peer = static_cast<ProcessId>((p + 1) % ranks);
        b.mpiSend(p, t, peer, static_cast<std::uint32_t>(it), 64 * (it + 1));
        const auto src = static_cast<ProcessId>((p + ranks - 1) % ranks);
        b.mpiRecv(p, t + 1, src, static_cast<std::uint32_t>(it), 64);
      }
      t += 2;
      b.leave(p, t, f);
      ++t;
    }
  }
  return b.finish();
}

std::vector<Trace> goldenTraces() {
  std::vector<Trace> traces;
  traces.push_back(apps::buildFigure1Trace());
  traces.push_back(apps::buildFigure2Trace());
  traces.push_back(apps::buildFigure3Trace());
  traces.push_back(syntheticTrace(16, 40));
  return traces;
}

std::string image(const Trace& tr, const BinaryWriteOptions& options = {}) {
  std::ostringstream os;
  writeBinary(tr, os, options);
  return os.str();
}

TEST(BinaryV2, SerialAndThreadedDecodeMatchOriginal) {
  for (const Trace& original : goldenTraces()) {
    const std::string bytes = image(original);
    for (const std::size_t threads : {1ul, 2ul, 8ul}) {
      BinaryReadOptions options;
      options.threads = threads;
      const Trace loaded =
          readBinaryBuffer(bytes.data(), bytes.size(), options);
      expectTracesEqual(original, loaded);
    }
    // Stream path (sniffs the version, slurps, decodes).
    std::istringstream is(bytes);
    expectTracesEqual(original, readBinary(is));
  }
}

TEST(BinaryV2, ThreadedEncodeIsByteIdenticalToSerial) {
  for (const Trace& original : goldenTraces()) {
    const std::string serial = image(original);
    for (const std::size_t threads : {2ul, 8ul}) {
      BinaryWriteOptions options;
      options.threads = threads;
      EXPECT_EQ(serial, image(original, options));
    }
  }
}

TEST(BinaryV2, ExternalPoolIsReusedForEncodeAndDecode) {
  util::ThreadPool pool(4);
  const Trace original = syntheticTrace(8, 30);
  BinaryWriteOptions writeOptions;
  writeOptions.pool = &pool;
  const std::string bytes = image(original, writeOptions);
  EXPECT_EQ(bytes, image(original));
  BinaryReadOptions readOptions;
  readOptions.pool = &pool;
  expectTracesEqual(original,
                    readBinaryBuffer(bytes.data(), bytes.size(), readOptions));
}

TEST(BinaryV2, ExplicitV1WriteStillRoundTrips) {
  for (const Trace& original : goldenTraces()) {
    BinaryWriteOptions options;
    options.version = kBinaryFormatV1;
    const std::string bytes = image(original, options);
    ASSERT_GE(bytes.size(), 8u);
    EXPECT_EQ(bytes[4], 1);  // version field says v1
    expectTracesEqual(original,
                      readBinaryBuffer(bytes.data(), bytes.size()));
    std::istringstream is(bytes);
    expectTracesEqual(original, readBinary(is));
  }
}

/// The exact bytes the v1 writer produced before v2 existed, for a small
/// two-rank trace. Guards both directions of compatibility: the modern
/// reader must accept files from old writers, and the v1 writer must keep
/// emitting the same bytes (older tools read what we write).
const unsigned char kGoldenV1[] = {
    0x50, 0x56, 0x54, 0x46, 0x01, 0x00, 0x00, 0x00, 0x80, 0x94, 0xeb, 0xdc,
    0x03, 0x02, 0x04, 0x6d, 0x61, 0x69, 0x6e, 0x03, 0x41, 0x50, 0x50, 0x00,
    0x0d, 0x4d, 0x50, 0x49, 0x5f, 0x41, 0x6c, 0x6c, 0x72, 0x65, 0x64, 0x75,
    0x63, 0x65, 0x03, 0x4d, 0x50, 0x49, 0x01, 0x01, 0x0c, 0x50, 0x41, 0x50,
    0x49, 0x5f, 0x54, 0x4f, 0x54, 0x5f, 0x43, 0x59, 0x43, 0x06, 0x63, 0x79,
    0x63, 0x6c, 0x65, 0x73, 0x00, 0x02, 0x06, 0x52, 0x61, 0x6e, 0x6b, 0x20,
    0x30, 0x06, 0x00, 0x0a, 0x00, 0x04, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0xf8, 0x3f, 0x00, 0x02, 0x01, 0x01, 0x06, 0x01, 0x01, 0x0a,
    0x00, 0x02, 0x0a, 0x01, 0x03, 0x80, 0x02, 0x06, 0x52, 0x61, 0x6e, 0x6b,
    0x20, 0x31, 0x06, 0x00, 0x0b, 0x00, 0x04, 0x02, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x08, 0x40, 0x00, 0x02, 0x01, 0x01, 0x06, 0x01, 0x01,
    0x0a, 0x00, 0x03, 0x0a, 0x00, 0x03, 0x80, 0x02, 0x30, 0x5a, 0x13, 0xb9,
    0x33, 0x65, 0x5b, 0x78,
};

Trace goldenV1Trace() {
  TraceBuilder b(2);
  const auto f = b.defineFunction("main", "APP");
  const auto g = b.defineFunction("MPI_Allreduce", "MPI", Paradigm::MPI);
  const auto m = b.defineMetric("PAPI_TOT_CYC", "cycles");
  b.setProcessName(1, "Rank 1");
  for (ProcessId p = 0; p < 2; ++p) {
    b.enter(p, 10 + p, f);
    b.metric(p, 12 + p, m, 1.5 * (p + 1));
    b.enter(p, 14 + p, g);
    b.leave(p, 20 + p, g);
    b.leave(p, 30 + p, f);
  }
  b.mpiSend(0, 40, 1, 3, 256);
  b.mpiRecv(1, 41, 0, 3, 256);
  return b.finish();
}

TEST(BinaryV2, GoldenV1FileFromOldWriterStillLoads) {
  const Trace loaded = readBinaryBuffer(kGoldenV1, sizeof(kGoldenV1));
  expectTracesEqual(goldenV1Trace(), loaded);
}

TEST(BinaryV2, V1WriterIsByteStable) {
  BinaryWriteOptions options;
  options.version = kBinaryFormatV1;
  const std::string bytes = image(goldenV1Trace(), options);
  ASSERT_EQ(bytes.size(), sizeof(kGoldenV1));
  EXPECT_EQ(0, std::memcmp(bytes.data(), kGoldenV1, sizeof(kGoldenV1)));
}

TEST(BinaryV2, V2FilesAreNoLargerThanV1) {
  BinaryWriteOptions v1;
  v1.version = kBinaryFormatV1;
  // The tag byte folds small function ids into the event header, so v2
  // wins about one byte per event; real traces (the sizes the format is
  // for) come out smaller than v1 despite the block table.
  for (const Trace& original :
       {syntheticTrace(16, 40), syntheticTrace(64, 200)}) {
    EXPECT_LE(image(original).size(), image(original, v1).size());
  }
  // Tiny traces cannot amortize the fixed header; the overhead is bounded
  // by the header/table/hash scaffolding, never proportional to events.
  for (const Trace& original : goldenTraces()) {
    const std::size_t overhead = 48 + 40 * original.processCount();
    EXPECT_LE(image(original).size(),
              image(original, v1).size() + overhead);
  }
}

TEST(BinaryV2, MappedAndBufferedFileLoadsMatch) {
  const Trace original = syntheticTrace(8, 25);
  const std::string path = ::testing::TempDir() + "/perfvar_v2_mmap.pvt";
  saveBinaryFile(original, path);
  BinaryReadOptions mapped;
  mapped.mapFile = true;
  BinaryReadOptions buffered;
  buffered.mapFile = false;
  expectTracesEqual(original, loadBinaryFile(path, mapped));
  expectTracesEqual(original, loadBinaryFile(path, buffered));
  std::remove(path.c_str());
}

TEST(BinaryV2, EmptyProcessesAndDefinitionsRoundTrip) {
  // Degenerate shapes: a rank with zero events, and a trace without
  // functions or metrics at all.
  TraceBuilder b(3);
  const auto f = b.defineFunction("only", "APP");
  b.enter(1, 5, f);
  b.leave(1, 9, f);
  const Trace sparse = b.finish();
  const std::string bytes = image(sparse);
  BinaryReadOptions threaded;
  threaded.threads = 4;
  expectTracesEqual(sparse,
                    readBinaryBuffer(bytes.data(), bytes.size(), threaded));

  Trace bare;
  bare.resolution = 1000;
  bare.processes.resize(2);
  bare.processes[0].name = "a";
  bare.processes[1].name = "b";
  const std::string bareBytes = image(bare);
  expectTracesEqual(bare, readBinaryBuffer(bareBytes.data(),
                                           bareBytes.size(), threaded));
}

TEST(BinaryV2, InspectReportsV2Layout) {
  const Trace original = syntheticTrace(4, 10);
  const std::string path = ::testing::TempDir() + "/perfvar_v2_inspect.pvt";
  saveBinaryFile(original, path);
  const BinaryFileInfo info = inspectBinaryFile(path);
  EXPECT_EQ(info.version, kBinaryFormatV2);
  EXPECT_EQ(info.resolution, original.resolution);
  EXPECT_EQ(info.eventCount, original.eventCount());
  {
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    EXPECT_EQ(info.fileSize, static_cast<std::uint64_t>(f.tellg()));
  }
  ASSERT_EQ(info.blocks.size(), original.processCount());
  for (std::size_t p = 0; p < info.blocks.size(); ++p) {
    EXPECT_EQ(info.blocks[p].process, original.processes[p].name);
    EXPECT_EQ(info.blocks[p].events, original.processes[p].events.size());
    EXPECT_GT(info.blocks[p].bytes, 0u);
  }
  std::remove(path.c_str());
}

TEST(BinaryV2, InspectReportsV1Layout) {
  const Trace original = goldenV1Trace();
  const std::string path = ::testing::TempDir() + "/perfvar_v1_inspect.pvt";
  {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(kGoldenV1), sizeof(kGoldenV1));
  }
  const BinaryFileInfo info = inspectBinaryFile(path);
  EXPECT_EQ(info.version, kBinaryFormatV1);
  EXPECT_EQ(info.fileSize, sizeof(kGoldenV1));
  EXPECT_EQ(info.resolution, original.resolution);
  EXPECT_EQ(info.eventCount, original.eventCount());
  ASSERT_EQ(info.blocks.size(), 2u);
  EXPECT_EQ(info.blocks[0].process, "Rank 0");
  EXPECT_EQ(info.blocks[0].events, original.processes[0].events.size());
  EXPECT_GT(info.blocks[0].bytes, 0u);
  std::remove(path.c_str());
}

TEST(BinaryV2, WriteRejectsUnknownVersion) {
  BinaryWriteOptions options;
  options.version = 7;
  std::ostringstream os;
  EXPECT_THROW(writeBinary(syntheticTrace(1, 2), os, options), Error);
}

// ---- varint decoder properties --------------------------------------------
//
// The unrolled fast path (taken whenever 10 bytes are in bounds) must be
// observationally identical to the byte-at-a-time scalar loop: same
// value, same cursor advance, same error classification on adversarial
// encodings.

namespace {

std::vector<unsigned char> encodeLeb128(std::uint64_t v) {
  std::vector<unsigned char> out;
  do {
    unsigned char byte = v & 0x7F;
    v >>= 7;
    if (v != 0) {
      byte |= 0x80;
    }
    out.push_back(byte);
  } while (v != 0);
  return out;
}

/// Decode with both implementations over a buffer padded to `padding`
/// trailing bytes (0 = the <10-byte scalar fallback, >=10 = the unrolled
/// fast path) and require identical value and cursor advance.
std::uint64_t decodeBothWays(const std::vector<unsigned char>& encoded,
                             std::size_t padding) {
  std::vector<unsigned char> buf = encoded;
  buf.insert(buf.end(), padding, 0x55);
  const unsigned char* fast = buf.data();
  const std::uint64_t fastValue =
      detail::decodeVarint(fast, buf.data() + buf.size());
  const unsigned char* scalar = buf.data();
  const std::uint64_t scalarValue =
      detail::decodeVarintScalar(scalar, buf.data() + buf.size());
  EXPECT_EQ(fastValue, scalarValue);
  EXPECT_EQ(fast - buf.data(), scalar - buf.data());
  EXPECT_EQ(static_cast<std::size_t>(fast - buf.data()), encoded.size());
  return fastValue;
}

}  // namespace

TEST(VarintProperty, RandomRoundTripsOnBothPaths) {
  Rng rng(2026);
  for (int i = 0; i < 5000; ++i) {
    // Bit-width-uniform values so every encoded length 1..10 is hit.
    const auto bits = static_cast<std::uint32_t>(rng.uniformInt(0, 63));
    const std::uint64_t v = rng() >> (63 - bits);
    const auto encoded = encodeLeb128(v);
    for (const std::size_t padding : {std::size_t{0}, std::size_t{16}}) {
      EXPECT_EQ(decodeBothWays(encoded, padding), v);
    }
  }
}

TEST(VarintProperty, BoundaryPaddingSweepsScalarVsFast) {
  // Around the 10-byte fast-path threshold the two implementations must
  // agree for every remaining-bytes count.
  const std::uint64_t v = ~std::uint64_t{0};  // max-length encoding
  const auto encoded = encodeLeb128(v);
  ASSERT_EQ(encoded.size(), 10u);
  for (std::size_t padding = 0; padding <= 12; ++padding) {
    EXPECT_EQ(decodeBothWays(encoded, padding), v);
  }
}

TEST(VarintProperty, TruncatedEncodingsThrowTruncatedInput) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng() | (1ULL << 60);  // multi-byte for sure
    const auto encoded = encodeLeb128(v);
    for (std::size_t keep = 0; keep < encoded.size(); ++keep) {
      std::vector<unsigned char> buf(encoded.begin(),
                                     encoded.begin() + keep);
      const unsigned char* p = buf.data();
      try {
        (void)detail::decodeVarint(p, buf.data() + buf.size());
        FAIL() << "truncated varint decoded";
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::TruncatedInput);
      }
    }
  }
}

TEST(VarintProperty, OverlongEncodingsThrowMalformedEvent) {
  // 10 continuation bytes followed by more payload: the encoding would
  // exceed 64 value bits. Both paths must classify it as malformed, on
  // the fast path (ample padding) and the scalar path alike.
  std::vector<unsigned char> overlong(11, 0x80);
  overlong.push_back(0x01);
  for (const std::size_t padding : {std::size_t{0}, std::size_t{16}}) {
    std::vector<unsigned char> buf = overlong;
    buf.insert(buf.end(), padding, 0x00);
    const unsigned char* fast = buf.data();
    try {
      (void)detail::decodeVarint(fast, buf.data() + buf.size());
      FAIL() << "overlong varint decoded";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::MalformedEvent);
    }
    const unsigned char* scalar = buf.data();
    try {
      (void)detail::decodeVarintScalar(scalar, buf.data() + buf.size());
      FAIL() << "overlong varint decoded (scalar)";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::MalformedEvent);
    }
  }
}

TEST(VarintProperty, TenthByteHighBitsDropLikeScalar) {
  // A 10-byte encoding whose final byte carries payload bits above bit
  // 63: the scalar loop shifts them out (shift 63 keeps only the low
  // bit), and the fast path must reproduce that exactly.
  std::vector<unsigned char> encoded(9, 0x80);
  encoded.push_back(0x7F);  // bits 63..69 set, only bit 63 survives
  for (const std::size_t padding : {std::size_t{0}, std::size_t{16}}) {
    EXPECT_EQ(decodeBothWays(encoded, padding), 1ULL << 63);
  }
}

}  // namespace
}  // namespace perfvar::trace
