/// Crash-recovery differentials over the journaled analysis server: a
/// server killed at any journal kill point and restarted with recovery
/// must serve analyze/export byte-identical to a server that was fed the
/// same committed prefix and never died. "Killed" is simulated by
/// dropping the Server (the journal survives on disk exactly as a
/// SIGKILL would leave it — acknowledged records present, nothing else)
/// plus a truncation sweep that cuts the journal at record boundaries
/// and mid-record to model writes torn by the crash itself. Also the
/// evict-to-disk rehydration contract: with rehydration on, a
/// budget-evicted trace is cold, not gone.

#include <gtest/gtest.h>

#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.hpp"
#include "server/journal.hpp"
#include "server/server.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/filter.hpp"
#include "util/error.hpp"
#include "util/socket.hpp"

namespace perfvar::server {
namespace {

struct Rig {
  Server server;
  Client client;

  explicit Rig(ServerOptions options = {})
      : server(options), client(connect(server)) {}

  static Client connect(Server& server) {
    auto [serverEnd, clientEnd] = util::socketPair();
    server.serveConnection(std::move(serverEnd));
    return Client{std::move(clientEnd)};
  }
};

std::string scratchDir(const std::string& stem) {
  const std::string dir = stem + "_" + std::to_string(getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

/// Same fixture as server_streaming_test: two ranks, 100 iterations, one
/// 10x outlier late enough for the default warmup to flag it.
trace::Trace outlierTrace() {
  trace::TraceBuilder b(2);
  const auto fStep = b.defineFunction("step");
  const auto fSync = b.defineFunction("MPI_Barrier", "MPI",
                                      trace::Paradigm::MPI);
  for (std::size_t i = 0; i < 100; ++i) {
    for (trace::ProcessId p = 0; p < 2; ++p) {
      const auto t0 = static_cast<trace::Timestamp>(i) * 1000 + p;
      const trace::Timestamp w =
          (p == 1 && i == 70) ? 900 : 90 + (p * 5 + i * 3) % 7;
      b.enter(p, t0, fStep);
      b.enter(p, t0 + 2, fSync);
      b.leave(p, t0 + 4 + (p + i) % 3, fSync);
      b.leave(p, t0 + w, fStep);
    }
  }
  return b.finish();
}

std::string imageOf(const trace::Trace& tr) {
  std::ostringstream os;
  trace::writeBinary(tr, os);
  return os.str();
}

/// The queryable face of a live trace, captured for differentials.
/// Error finals are captured too (type + payload), so "recovered to an
/// empty stream" states compare exactly as well.
struct Face {
  FrameType analyzeType = FrameType::Error;
  std::string analyze;
  FrameType exportType = FrameType::Error;
  std::string exported;

  bool operator==(const Face& other) const {
    return analyzeType == other.analyzeType && analyze == other.analyze &&
           exportType == other.exportType && exported == other.exported;
  }
};

Face faceOf(Client& c, const std::string& name) {
  Face f;
  const ClientResponse a = c.analyze(name);
  f.analyzeType = a.type;
  f.analyze = a.payload;
  const ClientResponse e = c.exportReport(name + " json");
  f.exportType = e.type;
  f.exported = e.payload;
  return f;
}

/// Reference: a never-journaled, never-killed server fed chunks[0..k).
Face referenceFace(const std::vector<trace::Trace>& chunks, std::size_t k,
                   std::size_t threads = 1) {
  ServerOptions options;
  options.threads = threads;
  Rig rig(options);
  EXPECT_TRUE(rig.client.open("live", "step threshold 6.0").ok());
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_TRUE(rig.client.append("live", imageOf(chunks[i])).ok());
  }
  return faceOf(rig.client, "live");
}

// ---- basic crash / recover -------------------------------------------------

TEST(ServerRecovery, RecoverReconstructsTheLiveTraceByteIdentical) {
  const std::string dir = scratchDir("recovery_basic");
  const trace::Trace tr = outlierTrace();
  const std::vector<trace::Trace> chunks = trace::splitByTime(tr, 5);

  Face before;
  {
    ServerOptions options;
    options.journalDir = dir;
    Rig rig(options);
    ASSERT_TRUE(rig.client.open("live", "step threshold 6.0").ok());
    for (const trace::Trace& chunk : chunks) {
      ASSERT_TRUE(rig.client.append("live", imageOf(chunk)).ok());
    }
    before = faceOf(rig.client, "live");
    ASSERT_EQ(before.analyzeType, FrameType::Data);
  }  // SIGKILL: the Server dies without any farewell; the journal stays.

  ServerOptions options;
  options.journalDir = dir;
  options.recover = true;
  Rig revived(options);
  EXPECT_TRUE(faceOf(revived.client, "live") == before);
  // The recovered stream is appendable: journaling continues seamlessly.
  ASSERT_TRUE(revived.client.open("more", "step").ok());
  ASSERT_TRUE(revived.client.append("live", imageOf(chunks[0])).type ==
              FrameType::Error)  // stale chunk: stream already past it
      << "appending an old chunk to the recovered stream must fail the "
         "same way it would have before the crash";
  std::filesystem::remove_all(dir);
}

TEST(ServerRecovery, RecoveryMatchesTheUninterruptedRunAcrossThreads) {
  const std::string dir = scratchDir("recovery_threads");
  const trace::Trace tr = outlierTrace();
  const std::vector<trace::Trace> chunks = trace::splitByTime(tr, 4);

  {
    ServerOptions options;
    options.journalDir = dir;
    Rig rig(options);
    ASSERT_TRUE(rig.client.open("live", "step threshold 6.0").ok());
    for (const trace::Trace& chunk : chunks) {
      ASSERT_TRUE(rig.client.append("live", imageOf(chunk)).ok());
    }
  }

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ServerOptions options;
    options.journalDir = dir;
    options.recover = true;
    options.threads = threads;
    Rig revived(options);
    const Face recovered = faceOf(revived.client, "live");
    EXPECT_TRUE(recovered == referenceFace(chunks, chunks.size(), threads))
        << "threads=" << threads;
  }
  std::filesystem::remove_all(dir);
}

// ---- kill-point sweep ------------------------------------------------------

/// Cut the journal at every record boundary and at offsets inside every
/// record (a write torn mid-record), recover each cut, and demand the
/// recovered state equals the uninterrupted reference fed exactly the
/// chunks whose records survived the cut. This is the "SIGKILL at any
/// point mid-append" differential: the journal on disk after a real kill
/// is precisely one of these prefixes.
TEST(ServerRecovery, EveryKillPointRecoversToTheCommittedPrefix) {
  const std::string dir = scratchDir("recovery_killpoints");
  const trace::Trace tr = outlierTrace();
  const std::vector<trace::Trace> chunks = trace::splitByTime(tr, 4);

  std::string journalPath;
  {
    ServerOptions options;
    options.journalDir = dir;
    Rig rig(options);
    ASSERT_TRUE(rig.client.open("live", "step threshold 6.0").ok());
    for (const trace::Trace& chunk : chunks) {
      ASSERT_TRUE(rig.client.append("live", imageOf(chunk)).ok());
    }
    const std::vector<std::string> journals = listJournals(dir);
    ASSERT_EQ(journals.size(), 1u);
    journalPath = journals[0];
  }

  std::ifstream in(journalPath, std::ios::binary);
  const std::string full((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  in.close();

  // Record boundaries, from the scanner itself: boundary[k] = bytes
  // holding the header plus k records (records[0] is the Open).
  std::vector<std::size_t> boundaries;
  {
    const JournalScan scan = scanJournal(journalPath);
    ASSERT_EQ(scan.records.size(), 1 + chunks.size());
    std::size_t offset = scan.validBytes;
    ASSERT_EQ(offset, full.size());
    // Rebuild boundaries by rescanning successive cuts — O(n^2) over a
    // tiny file, and it uses only the public contract.
    for (std::size_t len = 0; len <= full.size(); ++len) {
      const std::string cutDirStep = dir + "/probe";
      std::filesystem::create_directories(cutDirStep);
      const std::string probe = cutDirStep + "/" + journalFileName("live");
      std::ofstream out(probe, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(len));
      out.close();
      try {
        const JournalScan cut = scanJournal(probe);
        if (!cut.torn && boundaries.size() == cut.records.size()) {
          boundaries.push_back(len);
        }
      } catch (const Error&) {
        // header region: not a kill point we can recover from
      }
    }
    ASSERT_EQ(boundaries.size(), 2 + chunks.size());  // header + each record
  }

  // Reference faces: state after k committed appends.
  std::vector<Face> references;
  for (std::size_t k = 0; k <= chunks.size(); ++k) {
    references.push_back(referenceFace(chunks, k));
  }

  const std::string cutDir = dir + "/cut";
  // Kill points: each boundary, and three torn offsets inside each
  // record (just after the boundary, mid-record, just before the next).
  for (std::size_t b = 1; b < boundaries.size(); ++b) {
    const std::size_t lo = boundaries[b - 1];
    const std::size_t hi = boundaries[b];
    for (const std::size_t len :
         {hi, lo + 1, (lo + hi) / 2, hi - 1}) {
      if (len < boundaries[0]) {
        continue;  // would damage the header, covered by the journal test
      }
      std::filesystem::remove_all(cutDir);
      std::filesystem::create_directories(cutDir);
      const std::string cut = cutDir + "/" + journalFileName("live");
      {
        std::ofstream out(cut, std::ios::binary | std::ios::trunc);
        out.write(full.data(), static_cast<std::streamsize>(len));
      }
      // How many records survive this cut? Torn tails count for nothing.
      std::size_t survivors = 0;
      while (survivors + 1 < boundaries.size() &&
             boundaries[survivors + 1] <= len) {
        ++survivors;
      }

      ServerOptions options;
      options.journalDir = cutDir;
      options.recover = true;
      Rig revived(options);
      if (survivors == 0) {
        // The crash tore the Open record itself: the open was never
        // acknowledged, so there is rightly nothing to recover.
        EXPECT_EQ(revived.client.analyze("live").type, FrameType::Error)
            << "kill point at byte " << len;
        continue;
      }
      const std::size_t committed = survivors - 1;
      const Face recovered = faceOf(revived.client, "live");
      EXPECT_TRUE(recovered == references[committed])
          << "kill point at byte " << len << " (" << committed
          << " committed appends): recovered analyze diverges";
    }
  }
  std::filesystem::remove_all(dir);
}

// ---- reorder window + recovery ---------------------------------------------

TEST(ServerRecovery, ReorderedStreamRecoversIdenticalToOrderedDelivery) {
  const std::string dir = scratchDir("recovery_reorder");
  const trace::Trace tr = outlierTrace();
  const std::vector<trace::Trace> chunks = trace::splitByTime(tr, 6);
  // Scrambled arrival order (a fixed permutation, no randomness).
  const std::size_t order[] = {2, 0, 1, 4, 5, 3};

  {
    ServerOptions options;
    options.journalDir = dir;
    options.reorderWindowBytes = 64 * 1024 * 1024;
    Rig rig(options);
    ASSERT_TRUE(rig.client.open("live", "step threshold 6.0").ok());
    for (const std::size_t i : order) {
      const ClientResponse r = rig.client.append("live", imageOf(chunks[i]));
      ASSERT_TRUE(r.ok()) << r.payload;
    }
  }  // crash with the whole stream still buffered in the window

  ServerOptions options;
  options.journalDir = dir;
  options.recover = true;
  options.reorderWindowBytes = 64 * 1024 * 1024;
  Rig revived(options);
  // Reads flush the window in time order: the recovered face equals the
  // ordered, unjournaled, uninterrupted delivery.
  EXPECT_TRUE(faceOf(revived.client, "live") ==
              referenceFace(chunks, chunks.size()));
  std::filesystem::remove_all(dir);
}

// ---- evict-to-disk rehydration ---------------------------------------------

TEST(ServerRecovery, BudgetEvictedEngineTraceRehydratesFromItsFile) {
  const trace::Trace tr = outlierTrace();
  const std::string path = "server_recovery_rehydrate.pvt";
  trace::saveBinaryFile(tr, path);

  ServerOptions options;
  options.maxResidentBytes = 1;  // nothing fits: every new load evicts
  options.rehydrate = true;
  Rig rig(options);
  ASSERT_TRUE(rig.client.load("a", path).ok());
  ASSERT_TRUE(rig.client.load("b", path).ok());
  // "a" was evicted — but with rehydration on it is cold, not gone.
  const ClientResponse a = rig.client.analyze("a");
  EXPECT_EQ(a.type, FrameType::Data) << a.payload;
  const ClientResponse b = rig.client.analyze("b");
  EXPECT_EQ(b.type, FrameType::Data);
  EXPECT_EQ(a.payload, b.payload);  // same file, same report
  // Under the 1-byte budget the two names ping-pong: analyzing "a"
  // faulted it in (spilling "b"), analyzing "b" faulted that back.
  const ClientResponse stats = rig.client.stats();
  ASSERT_EQ(stats.type, FrameType::Data);
  EXPECT_NE(stats.payload.find("rehydrations: 2"), std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find("spilled: 1"), std::string::npos)
      << stats.payload;
  std::remove(path.c_str());
}

TEST(ServerRecovery, BudgetEvictedLiveTraceRehydratesFromItsJournal) {
  const std::string dir = scratchDir("recovery_rehydrate_live");
  const trace::Trace tr = outlierTrace();
  const std::string path = "server_recovery_rehydrate_live.pvt";
  trace::saveBinaryFile(tr, path);

  ServerOptions options;
  options.journalDir = dir;
  options.rehydrate = true;
  options.maxResidentBytes = 1;
  Rig rig(options);
  ASSERT_TRUE(rig.client.open("live", "step threshold 6.0").ok());
  Face before;
  for (const trace::Trace& chunk : trace::splitByTime(tr, 3)) {
    ASSERT_TRUE(rig.client.append("live", imageOf(chunk)).ok());
  }
  before = faceOf(rig.client, "live");
  ASSERT_EQ(before.analyzeType, FrameType::Data);

  // Loading another trace under the 1-byte budget evicts "live" ...
  ASSERT_TRUE(rig.client.load("disk", path).ok());
  // ... which faults back in from its journal on the next reference.
  EXPECT_TRUE(faceOf(rig.client, "live") == before);

  // Explicit eviction is a real drop: no rehydration afterwards.
  ASSERT_TRUE(rig.client.load("disk2", path).ok());  // spill "live" again
  EXPECT_EQ(rig.client.evict("live").type, FrameType::Ok);
  EXPECT_EQ(rig.client.analyze("live").type, FrameType::Evicted);
  std::remove(path.c_str());
  std::filesystem::remove_all(dir);
}

TEST(ServerRecovery, RehydrationOffKeepsTheTombstoneContract) {
  const trace::Trace tr = outlierTrace();
  const std::string path = "server_recovery_tombstone.pvt";
  trace::saveBinaryFile(tr, path);

  ServerOptions options;
  options.maxResidentBytes = 1;  // rehydrate defaults to false
  Rig rig(options);
  ASSERT_TRUE(rig.client.load("a", path).ok());
  ASSERT_TRUE(rig.client.load("b", path).ok());
  EXPECT_EQ(rig.client.analyze("a").type, FrameType::Evicted);
  std::remove(path.c_str());
}

// ---- graceful drain --------------------------------------------------------

TEST(ServerRecovery, DrainFlushesJournalsAndAnswersInFlightRequests) {
  const std::string dir = scratchDir("recovery_drain");
  const trace::Trace tr = outlierTrace();

  ServerOptions options;
  options.journalDir = dir;
  Server server(options);
  Client client = Rig::connect(server);
  ASSERT_TRUE(client.open("live", "step threshold 6.0").ok());
  ASSERT_TRUE(client.append("live", imageOf(tr)).ok());

  std::thread drainer([&server] { server.drain(); });
  // The drained server no longer reads new requests; the already-living
  // session winds down, and the journal holds everything acknowledged.
  drainer.join();

  ServerOptions recovered;
  recovered.journalDir = dir;
  recovered.recover = true;
  Rig revived(recovered);
  const Face face = faceOf(revived.client, "live");
  EXPECT_EQ(face.analyzeType, FrameType::Data);

  ServerOptions reference;
  Rig ref(reference);
  ASSERT_TRUE(ref.client.open("live", "step threshold 6.0").ok());
  ASSERT_TRUE(ref.client.append("live", imageOf(tr)).ok());
  EXPECT_TRUE(face == faceOf(ref.client, "live"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace perfvar::server
