/// Differential + concurrency tests for engine::AnalysisEngine: every
/// answer the engine serves — cold, warm (cache hit), serial or pooled —
/// must be byte-identical to a fresh analyzeTrace() run with the same
/// options, across the three canonical scenario traces (Figure 2,
/// Figure 3, small COSMO-SPECS). Labeled `parallel` so the TSan CI job
/// exercises the concurrent query paths.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/paper_examples.hpp"
#include "engine/engine.hpp"
#include "sim/simulator.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"

namespace perfvar {
namespace {

trace::Trace smallCosmo() {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 12;
  const auto scenario = apps::buildCosmoSpecs(cfg);
  return sim::simulate(scenario.program, scenario.simOptions);
}

struct Scenario {
  const char* name;
  trace::Trace tr;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back({"figure2", apps::buildFigure2Trace()});
  out.push_back({"figure3", apps::buildFigure3Trace()});
  out.push_back({"cosmo4x4", smallCosmo()});
  return out;
}

/// The reference answer: a fresh serial pipeline run rendered to text
/// (formatAnalysis covers every stage's fields, so byte equality of the
/// report is the differential oracle the golden tests already rely on).
std::string reference(const trace::Trace& tr,
                      const analysis::PipelineOptions& opts = {}) {
  return analysis::formatAnalysis(tr, analysis::analyzeTrace(tr, opts));
}

// ---- warm cache is byte-identical to analyzeTrace ------------------------

TEST(Engine, ColdAndWarmQueriesMatchSerialPipeline) {
  for (auto& s : scenarios()) {
    SCOPED_TRACE(s.name);
    const std::string expected = reference(s.tr);
    engine::AnalysisEngine eng{std::move(s.tr)};

    EXPECT_EQ(eng.formatReport(), expected);  // cold: every stage computed
    const engine::CacheStats afterCold = eng.cacheStats();
    EXPECT_EQ(afterCold.hits, 0u);
    EXPECT_GT(afterCold.misses, 0u);
    EXPECT_GT(afterCold.bytes, 0u);

    EXPECT_EQ(eng.formatReport(), expected);  // warm: every stage a hit
    const engine::CacheStats afterWarm = eng.cacheStats();
    EXPECT_GT(afterWarm.hits, afterCold.hits);
    EXPECT_EQ(afterWarm.misses, afterCold.misses);
  }
}

TEST(Engine, PooledEngineMatchesSerialPipeline) {
  for (auto& s : scenarios()) {
    SCOPED_TRACE(s.name);
    const std::string expected = reference(s.tr);
    engine::EngineOptions eopts;
    eopts.threads = 4;
    engine::AnalysisEngine eng{std::move(s.tr), eopts};
    EXPECT_EQ(eng.formatReport(), expected);
    EXPECT_EQ(eng.formatReport(), expected);
  }
}

TEST(Engine, ExportsMatchTheUnifiedExporters) {
  const trace::Trace tr = apps::buildFigure3Trace();  // outlives `serial`
  const analysis::AnalysisResult serial = analysis::analyzeTrace(tr);
  engine::AnalysisEngine eng{trace::Trace(tr)};
  using analysis::ExportFormat;
  for (const ExportFormat format :
       {ExportFormat::Text, ExportFormat::Json, ExportFormat::Csv,
        ExportFormat::CsvIterations, ExportFormat::CsvHotspots}) {
    std::ostringstream viaEngine;
    eng.exportReport(format, viaEngine);
    EXPECT_EQ(viaEngine.str(), analysis::exportReportString(tr, serial, format));
  }
}

// ---- drill-down sweeps reuse upstream stages -----------------------------

TEST(Engine, CandidateIndexSweepMatchesSerialAndSkipsUpstreamStages) {
  trace::Trace cosmo = smallCosmo();
  const trace::Trace probe = cosmo;  // analyzeTrace needs an lvalue copy
  engine::AnalysisEngine eng{std::move(cosmo)};
  const std::size_t candidates =
      eng.dominant()->candidates.size();
  ASSERT_GE(candidates, 1u);

  for (std::size_t k = 0; k < candidates && k < 3; ++k) {
    SCOPED_TRACE("candidate=" + std::to_string(k));
    analysis::PipelineOptions opts;
    opts.candidateIndex = k;
    EXPECT_EQ(eng.formatReport(opts), reference(probe, opts));
  }

  // A re-queried candidateIndex is a pure cache hit: no new misses.
  const engine::CacheStats before = eng.cacheStats();
  analysis::PipelineOptions opts;
  opts.candidateIndex = 0;
  (void)eng.analyze(opts);
  const engine::CacheStats after = eng.cacheStats();
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GT(after.hits, before.hits);
}

TEST(Engine, ThresholdSweepRecomputesOnlyTheVariationStage) {
  trace::Trace cosmo = smallCosmo();
  const trace::Trace probe = cosmo;
  engine::AnalysisEngine eng{std::move(cosmo)};
  (void)eng.analyze();  // warm profile/dominant/SOS
  const engine::CacheStats warm = eng.cacheStats();

  for (const double z : {2.0, 2.5, 3.0}) {
    SCOPED_TRACE("outlierThreshold=" + std::to_string(z));
    analysis::PipelineOptions opts;
    opts.variation.outlierThreshold = z;
    EXPECT_EQ(eng.formatReport(opts), reference(probe, opts));
  }
  // Three new variation keys -> exactly three misses; the profile,
  // dominant and SOS stages were all served from cache.
  EXPECT_EQ(eng.cacheStats().misses, warm.misses + 3);

  // maxHotspots is part of the variation fingerprint too.
  analysis::PipelineOptions opts;
  opts.variation.maxHotspots = 1;
  EXPECT_EQ(eng.formatReport(opts), reference(probe, opts));
}

TEST(Engine, DominantOptionsAreKeyedSeparately) {
  trace::Trace tr = apps::buildFigure2Trace();
  const trace::Trace probe = tr;
  engine::AnalysisEngine eng{std::move(tr)};
  analysis::DominantOptions strict;
  strict.invocationMultiplier = 3;
  const auto base = eng.dominant();
  const auto strictSel = eng.dominant(strict);
  EXPECT_EQ(base->candidates.size(),
            analysis::selectDominantFunction(probe).candidates.size());
  EXPECT_EQ(strictSel->candidates.size(),
            analysis::selectDominantFunction(probe, strict).candidates.size());
  // Both keys now resident: re-queries are hits.
  const engine::CacheStats before = eng.cacheStats();
  (void)eng.dominant();
  (void)eng.dominant(strict);
  EXPECT_EQ(eng.cacheStats().misses, before.misses);
}

// ---- error behavior matches analyzeTrace ---------------------------------

TEST(Engine, ErrorsMatchAnalyzeTrace) {
  trace::Trace tr = apps::buildFigure3Trace();
  engine::AnalysisEngine eng{std::move(tr)};
  analysis::PipelineOptions opts;
  opts.candidateIndex = 10000;
  EXPECT_THROW((void)eng.analyze(opts), Error);

  // A trace with no qualifying candidate throws like the pipeline does.
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("main");
  b.enter(0, 0, f);
  b.leave(0, 100, f);
  engine::AnalysisEngine empty{b.finish()};
  EXPECT_THROW((void)empty.analyze(), Error);
}

// ---- eviction and lifetime -----------------------------------------------

TEST(Engine, LruEvictionKeepsResultsCorrectAndOwned) {
  trace::Trace cosmo = smallCosmo();
  const trace::Trace probe = cosmo;
  engine::EngineOptions eopts;
  eopts.maxCacheEntries = 3;  // profile exempt; forces derived-stage churn
  engine::AnalysisEngine eng{std::move(cosmo), eopts};

  const engine::EngineResult first = eng.analyze();
  const std::string firstReport = reference(probe);

  for (int i = 0; i < 6; ++i) {  // six distinct variation keys
    analysis::PipelineOptions opts;
    opts.variation.maxHotspots = static_cast<std::size_t>(10 + i);
    EXPECT_EQ(eng.formatReport(opts), reference(probe, opts));
  }
  EXPECT_GT(eng.cacheStats().evictions, 0u);

  // The result handed out before the churn still works (shared ownership).
  EXPECT_EQ(analysis::formatAnalysis(first.trace, *first.selection,
                                     *first.sos, *first.variation),
            firstReport);
  // And a re-query after eviction recomputes correctly.
  EXPECT_EQ(eng.formatReport(), firstReport);
}

TEST(Engine, ClearCacheDropsBytesButKeepsAnswersIdentical) {
  trace::Trace tr = apps::buildFigure3Trace();
  const std::string expected = reference(tr);
  engine::AnalysisEngine eng{std::move(tr)};
  EXPECT_EQ(eng.formatReport(), expected);
  EXPECT_GT(eng.cacheStats().bytes, 0u);
  eng.clearCache();
  EXPECT_EQ(eng.cacheStats().bytes, 0u);
  EXPECT_EQ(eng.formatReport(), expected);
}

TEST(Engine, ResultOutlivesTheEngine) {
  engine::EngineResult result;
  std::string expected;
  {
    trace::Trace tr = apps::buildFigure2Trace();
    expected = reference(tr);
    engine::AnalysisEngine eng{std::move(tr)};
    result = eng.analyze();
  }
  // The engine is gone; the shared view and stages keep the result valid.
  EXPECT_EQ(analysis::formatAnalysis(result.trace, *result.selection,
                                     *result.sos, *result.variation),
            expected);
}

// ---- file loading --------------------------------------------------------

TEST(Engine, FromFileAnswersLikeTheInMemoryEngine) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const std::string path = "engine_test_fig3.pvt";
  trace::saveBinaryFile(tr, path);
  auto eng = engine::AnalysisEngine::fromFile(path);
  EXPECT_EQ(eng.formatReport(), reference(tr));
  std::remove(path.c_str());
}

// ---- stats rendering -----------------------------------------------------

TEST(Engine, FormatCacheStatsIsStable) {
  engine::CacheStats stats;
  stats.hits = 7;
  stats.misses = 3;
  stats.evictions = 1;
  stats.bytes = 4096;
  EXPECT_EQ(engine::formatCacheStats(stats),
            "cache: hits=7 misses=3 evictions=1 bytes=4096");
}

// ---- concurrency (the TSan job runs this file) ---------------------------

TEST(Engine, ConcurrentMixedQueriesAgreeWithSerialAnswers) {
  trace::Trace cosmo = smallCosmo();
  const trace::Trace probe = cosmo;
  engine::EngineOptions eopts;
  eopts.threads = 2;  // pool + concurrent callers: the contended path
  engine::AnalysisEngine eng{std::move(cosmo), eopts};

  // Precompute the expected answers serially.
  std::vector<analysis::PipelineOptions> queries;
  for (const double z : {2.5, 3.5}) {
    analysis::PipelineOptions opts;
    opts.variation.outlierThreshold = z;
    queries.push_back(opts);
  }
  std::vector<std::string> expected;
  expected.reserve(queries.size());
  for (const auto& q : queries) {
    expected.push_back(reference(probe, q));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::vector<int> mismatches(kThreads, 0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int r = 0; r < kRounds; ++r) {
          const std::size_t q =
              static_cast<std::size_t>(t + r) % queries.size();
          if (eng.formatReport(queries[q]) != expected[q]) {
            ++mismatches[static_cast<std::size_t>(t)];
          }
        }
      });
    }
    for (auto& w : workers) {
      w.join();
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0)
        << "thread " << t << " observed a divergent cached answer";
  }

  // Exactly queries.size() variation keys (plus the shared upstream
  // stages) were ever computed; everything else was served from cache.
  const engine::CacheStats stats = eng.cacheStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

}  // namespace
}  // namespace perfvar
