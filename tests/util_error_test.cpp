/// Unit tests of the error taxonomy: ErrorCode carriage on
/// perfvar::Error, the stable kebab-case code names, ErrorContext
/// defaults and the PERFVAR_REQUIRE / PERFVAR_REQUIRE_E / PERFVAR_ASSERT
/// macro family (including the NDEBUG no-op contract of the assert).

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace perfvar {
namespace {

TEST(ErrorCodeNames, AreStableAndKebabCase) {
  EXPECT_STREQ(errorCodeName(ErrorCode::None), "none");
  EXPECT_STREQ(errorCodeName(ErrorCode::Generic), "error");
  EXPECT_STREQ(errorCodeName(ErrorCode::IoFailure), "io-failure");
  EXPECT_STREQ(errorCodeName(ErrorCode::BadMagic), "bad-magic");
  EXPECT_STREQ(errorCodeName(ErrorCode::UnsupportedVersion),
               "unsupported-version");
  EXPECT_STREQ(errorCodeName(ErrorCode::ChecksumMismatch),
               "checksum-mismatch");
  EXPECT_STREQ(errorCodeName(ErrorCode::TruncatedInput), "truncated-input");
  EXPECT_STREQ(errorCodeName(ErrorCode::MalformedEvent), "malformed-event");
  EXPECT_STREQ(errorCodeName(ErrorCode::StackImbalance), "stack-imbalance");
  EXPECT_STREQ(errorCodeName(ErrorCode::ChunkOutOfWindow),
               "chunk-out-of-window");
}

TEST(ErrorContextTest, DefaultsMeanUnknown) {
  const ErrorContext c;
  EXPECT_EQ(c.code, ErrorCode::Generic);
  EXPECT_EQ(c.byteOffset, ErrorContext::kNoByteOffset);
  EXPECT_EQ(c.rank, -1);
  EXPECT_TRUE(c.path.empty());
}

TEST(ErrorContextTest, AtFillsCodeOffsetAndRank) {
  const ErrorContext c = ErrorContext::at(ErrorCode::TruncatedInput, 42, 3);
  EXPECT_EQ(c.code, ErrorCode::TruncatedInput);
  EXPECT_EQ(c.byteOffset, 42u);
  EXPECT_EQ(c.rank, 3);
}

TEST(ErrorTest, PlainConstructionCarriesGenericCode) {
  const Error e("boom");
  EXPECT_EQ(e.code(), ErrorCode::Generic);
  EXPECT_EQ(e.byteOffset(), ErrorContext::kNoByteOffset);
  EXPECT_EQ(e.rank(), -1);
  EXPECT_TRUE(e.path().empty());
  EXPECT_STREQ(e.what(), "boom");
}

TEST(ErrorTest, ContextConstructionExposesEveryField) {
  ErrorContext c = ErrorContext::at(ErrorCode::ChecksumMismatch, 128, 7);
  c.path = "some/trace.pvt";
  const Error e("block 7 damaged", c);
  EXPECT_EQ(e.code(), ErrorCode::ChecksumMismatch);
  EXPECT_EQ(e.byteOffset(), 128u);
  EXPECT_EQ(e.rank(), 7);
  EXPECT_EQ(e.path(), "some/trace.pvt");
  EXPECT_EQ(e.context().code, ErrorCode::ChecksumMismatch);
}

TEST(RequireMacros, RequirePassesAndThrowsWithGenericCode) {
  EXPECT_NO_THROW(PERFVAR_REQUIRE(1 + 1 == 2, "arithmetic works"));
  try {
    PERFVAR_REQUIRE(false, "always fails");
    FAIL() << "PERFVAR_REQUIRE(false) must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Generic);
    EXPECT_NE(std::string(e.what()).find("always fails"),
              std::string::npos);
  }
}

TEST(RequireMacros, RequireEAttachesTheContext) {
  try {
    PERFVAR_REQUIRE_E(false, "bad block",
                      ErrorContext::at(ErrorCode::MalformedEvent, 99, 2));
    FAIL() << "PERFVAR_REQUIRE_E(false) must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::MalformedEvent);
    EXPECT_EQ(e.byteOffset(), 99u);
    EXPECT_EQ(e.rank(), 2);
    EXPECT_NE(std::string(e.what()).find("bad block"), std::string::npos);
  }
}

TEST(AssertMacro, HoldsTheNdebugContract) {
  int evaluations = 0;
  const auto count = [&evaluations] {
    ++evaluations;
    return true;
  };
#ifdef NDEBUG
  // Release builds: the condition is never evaluated and a false
  // condition does not throw.
  PERFVAR_ASSERT(count(), "never evaluated");
  EXPECT_EQ(evaluations, 0);
  EXPECT_NO_THROW(PERFVAR_ASSERT(false, "compiled out"));
#else
  // Debug builds: behaves exactly like PERFVAR_REQUIRE.
  PERFVAR_ASSERT(count(), "evaluated once");
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(PERFVAR_ASSERT(false, "must throw"), Error);
#endif
}

}  // namespace
}  // namespace perfvar
