/// Golden-file regression tests: formatAnalysis() output for three small
/// canonical traces is serialized under tests/golden/ and diffed here, so
/// a refactor cannot silently change report content. The parallel pipeline
/// must reproduce the same golden reports (its output is bit-identical to
/// the serial one by contract).
///
/// To regenerate after an *intentional* report change:
///   PERFVAR_UPDATE_GOLDEN=1 ./golden_report_test
/// then review the diff of tests/golden/ like any other code change.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/depgraph.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/desync_stencil.hpp"
#include "apps/paper_examples.hpp"
#include "apps/pipeline_chain.hpp"
#include "sim/simulator.hpp"

#ifndef PERFVAR_GOLDEN_DIR
#error "PERFVAR_GOLDEN_DIR must point at tests/golden"
#endif

namespace perfvar {
namespace {

std::string goldenPath(const std::string& name) {
  return std::string(PERFVAR_GOLDEN_DIR) + "/" + name;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Diff `actual` against the golden file; with PERFVAR_UPDATE_GOLDEN set,
/// rewrite the file instead (the test is reported as skipped so an update
/// run is conspicuous in a test log).
void checkGolden(const std::string& name, const std::string& actual) {
  const std::string path = goldenPath(name);
  if (std::getenv("PERFVAR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated " << path;
  }
  const std::string expected = readFile(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << path
      << " (regenerate with PERFVAR_UPDATE_GOLDEN=1)";
  EXPECT_EQ(expected, actual)
      << "report for '" << name << "' changed; if intentional, regenerate "
      << "with PERFVAR_UPDATE_GOLDEN=1 and review the diff";
}

/// The three canonical traces: the paper's Figure 2 and Figure 3 examples
/// (integer tick arithmetic, resolution 1) and a small simulated
/// COSMO-SPECS run (deterministic simulator, fixed seed).
trace::Trace smallCosmo() {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 12;
  const auto scenario = apps::buildCosmoSpecs(cfg);
  return sim::simulate(scenario.program, scenario.simOptions);
}

std::string reportFor(const trace::Trace& tr) {
  const analysis::AnalysisResult result = analysis::analyzeTrace(tr);
  return analysis::formatAnalysis(tr, result);
}

TEST(GoldenReport, Figure2Trace) {
  const trace::Trace tr = apps::buildFigure2Trace();
  checkGolden("figure2_report.txt", reportFor(tr));
}

TEST(GoldenReport, Figure3Trace) {
  const trace::Trace tr = apps::buildFigure3Trace();
  checkGolden("figure3_report.txt", reportFor(tr));
}

TEST(GoldenReport, SmallCosmoSpecsTrace) {
  const trace::Trace tr = smallCosmo();
  checkGolden("cosmo_4x4_report.txt", reportFor(tr));
}

// The dependency reports of the two planted ground-truth workloads: a
// refactor of the graph builder or a detector cannot silently change the
// diagnosed rank, shares or wave shape.
TEST(GoldenReport, PipelineCritpathReport) {
  const trace::Trace tr = apps::buildPipelineTrace({});
  checkGolden("pipeline_critpath.txt",
              analysis::formatDepAnalysis(tr, analysis::analyzeDependencies(tr)));
}

TEST(GoldenReport, StencilCritpathReport) {
  const trace::Trace tr = apps::buildStencilTrace({});
  checkGolden("stencil_critpath.txt",
              analysis::formatDepAnalysis(tr, analysis::analyzeDependencies(tr)));
}

TEST(GoldenReport, ParallelCritpathReproducesTheGoldenReports) {
  analysis::DepAnalysisOptions opts;
  opts.threads = 4;
  const trace::Trace pipeline = apps::buildPipelineTrace({});
  const trace::Trace stencil = apps::buildStencilTrace({});
  checkGolden("pipeline_critpath.txt",
              analysis::formatDepAnalysis(
                  pipeline, analysis::analyzeDependencies(pipeline, opts)));
  checkGolden("stencil_critpath.txt",
              analysis::formatDepAnalysis(
                  stencil, analysis::analyzeDependencies(stencil, opts)));
}

TEST(GoldenReport, ParallelPipelineReproducesTheGoldenReports) {
  analysis::PipelineOptions opts;
  opts.threads = 4;
  const trace::Trace fig2 = apps::buildFigure2Trace();
  const trace::Trace fig3 = apps::buildFigure3Trace();
  const trace::Trace cosmo = smallCosmo();
  checkGolden("figure2_report.txt",
              analysis::formatAnalysis(fig2, analysis::analyzeTrace(fig2, opts)));
  checkGolden("figure3_report.txt",
              analysis::formatAnalysis(fig3, analysis::analyzeTrace(fig3, opts)));
  checkGolden("cosmo_4x4_report.txt",
              analysis::formatAnalysis(cosmo,
                                       analysis::analyzeTrace(cosmo, opts)));
}

}  // namespace
}  // namespace perfvar
