#include "util/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace perfvar::stats {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> xs = {42.0};
  EXPECT_EQ(variance(xs), 0.0);
}

TEST(Stats, SummarizeMatchesIndividuals) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, xs.size());
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_NEAR(s.stddev, stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum, 31.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, QuantileEndpointsAndMidpoint) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 3.0);
}

TEST(Stats, MadOfSymmetricSample) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(mad(xs), 1.0);
}

TEST(Stats, RobustZFlagsOutlier) {
  std::vector<double> xs(50, 1.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] += 0.01 * static_cast<double>(i % 5);
  }
  const double z = robustZ(10.0, xs);
  EXPECT_GT(z, 100.0);
}

TEST(Stats, RobustZFallsBackToClassicZWhenMadIsZero) {
  // Majority identical -> MAD 0, but stddev > 0.
  const std::vector<double> xs = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0};
  const double z = robustZ(5.0, xs);
  EXPECT_GT(z, 0.0);
  EXPECT_DOUBLE_EQ(z, zScore(5.0, xs));
}

TEST(Stats, RobustZOfConstantSampleIsZero) {
  const std::vector<double> xs(10, 3.0);
  EXPECT_EQ(robustZ(3.0, xs), 0.0);
  EXPECT_EQ(robustZ(9.0, xs), 0.0);
}

TEST(Stats, OlsFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const OlsFit fit = olsFit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, OlsTrendDetectsGrowth) {
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    ys.push_back(1.0 + 0.1 * i);
  }
  const OlsFit fit = olsTrend(ys);
  EXPECT_NEAR(fit.slope, 0.1, 1e-12);
}

TEST(Stats, OlsDegenerateInputs) {
  EXPECT_EQ(olsTrend(std::vector<double>{5.0}).slope, 0.0);
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_EQ(olsFit(xs, ys).slope, 0.0);  // zero x-variance
}

TEST(Stats, PearsonPerfectAndAnti) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Stats, PearsonOfConstantIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, SpearmanIsRankBased) {
  // Monotone but nonlinear relation: Spearman 1, Pearson < 1.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> ys = {1.0, 8.0, 27.0, 64.0, 1000.0};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Stats, RanksAverageTies) {
  const std::vector<double> xs = {10.0, 20.0, 20.0, 30.0};
  const auto r = ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 1.5);
  EXPECT_DOUBLE_EQ(r[2], 1.5);
  EXPECT_DOUBLE_EQ(r[3], 3.0);
}

TEST(Stats, ImbalanceFactorBalanced) {
  const std::vector<double> xs = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(imbalanceFactor(xs), 0.0);
}

TEST(Stats, ImbalanceFactorSkewed) {
  const std::vector<double> xs = {1.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(imbalanceFactor(xs), 1.0);  // max 4 / mean 2 - 1
}

TEST(Stats, ImbalanceLossBounds) {
  const std::vector<double> xs = {1.0, 1.0, 4.0};
  const double loss = imbalanceLoss(xs);
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 1.0);
  EXPECT_DOUBLE_EQ(loss, (4.0 - 2.0) / 4.0);
}

TEST(Stats, HistogramCountsSumToInput) {
  const std::vector<double> xs = {0.0, 0.1, 0.5, 0.9, 1.0};
  const auto h = histogram(xs, 4);
  std::size_t total = 0;
  for (const auto c : h) {
    total += c;
  }
  EXPECT_EQ(total, xs.size());
  EXPECT_EQ(h.back(), 2u);  // 0.9 and 1.0 land in the last bucket
}

TEST(Stats, HistogramOfConstantGoesToFirstBucket) {
  const std::vector<double> xs = {5.0, 5.0, 5.0};
  const auto h = histogram(xs, 3);
  EXPECT_EQ(h[0], 3u);
}

// Property sweep: robust z of every in-sample point of a well-behaved
// normal sample stays small, for several sample sizes.
class RobustZSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RobustZSweep, InSamplePointsAreNotOutliers) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (std::size_t i = 0; i < 200 + GetParam(); ++i) {
    xs.push_back(rng.normal(10.0, 1.0));
  }
  for (const double x : xs) {
    EXPECT_LT(std::abs(robustZ(x, xs)), 6.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RobustZSweep,
                         ::testing::Values(1, 2, 3, 17, 99));

// ---- selection-kernel bit identity ----------------------------------------
//
// The nth_element-based kernels and the batched leave-one-out scorer must
// match the sort-based reference implementations bit for bit (EXPECT_EQ
// on doubles, not EXPECT_NEAR): the parallel-analysis determinism
// contract and the golden-report tests both depend on it.

namespace {

std::vector<double> randomSample(Rng& rng, std::size_t n, bool withTies) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(withTies ? static_cast<double>(rng.uniformInt(0, 9))
                          : rng.normal(5.0, 2.0));
  }
  return xs;
}

}  // namespace

TEST(StatsBitIdentity, MedianMatchesReferenceOnEdgeCases) {
  const std::vector<std::vector<double>> cases = {
      {},
      {3.25},
      {2.0, 1.0},
      {7.0, 7.0, 7.0},
      {1.0, 2.0, 3.0, 4.0},
      {-0.0, 0.0},
      {1e300, -1e300, 3.0},
  };
  for (const auto& xs : cases) {
    EXPECT_EQ(median(xs), detail::medianReference(xs));
    EXPECT_EQ(mad(xs), detail::madReference(xs));
  }
}

TEST(StatsBitIdentity, RandomSweepMedianQuantileMad) {
  Rng rng(42);
  for (const bool withTies : {false, true}) {
    for (std::size_t n = 1; n <= 64; ++n) {
      const std::vector<double> xs = randomSample(rng, n, withTies);
      EXPECT_EQ(median(xs), detail::medianReference(xs));
      EXPECT_EQ(mad(xs), detail::madReference(xs));
      for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        EXPECT_EQ(quantile(xs, q), detail::quantileReference(xs, q))
            << "n=" << n << " q=" << q << " ties=" << withTies;
      }
    }
  }
}

TEST(StatsBitIdentity, LeaveOneOutMatchesNaiveLoop) {
  Rng rng(7);
  for (const bool withTies : {false, true}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{2}, std::size_t{3},
                                std::size_t{4}, std::size_t{5},
                                std::size_t{17}, std::size_t{64},
                                std::size_t{101}}) {
      const std::vector<double> xs = randomSample(rng, n, withTies);
      const std::vector<double> fast = leaveOneOutZ(xs);
      const std::vector<double> ref = detail::leaveOneOutZReference(xs);
      ASSERT_EQ(fast.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(fast[i], ref[i])
            << "n=" << n << " i=" << i << " ties=" << withTies;
      }
    }
  }
}

TEST(StatsBitIdentity, LeaveOneOutDegenerateSamples) {
  const std::vector<std::vector<double>> cases = {
      {5.0, 5.0, 5.0, 5.0},              // constant -> all zeros
      {5.0, 5.0, 5.0, 9.0},              // MAD collapses without the outlier
      {1.0, 1.0, 2.0, 2.0},              // heavy ties
      {0.0, 0.0, 0.0, 1e-12},            // near-zero constant reference
      {3.0, 100.0},                      // n = 2: empty scale both ways
      {-2.0, -2.0, -2.0, -2.0, 7.5, 7.5},
  };
  for (const auto& xs : cases) {
    const std::vector<double> fast = leaveOneOutZ(xs);
    const std::vector<double> ref = detail::leaveOneOutZReference(xs);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(fast[i], ref[i]) << "i=" << i;
    }
  }
}

TEST(StatsBitIdentity, RobustZAndReferenceZUnchangedByScratchReuse) {
  // Interleave kernels so each call inherits a dirty scratch buffer from
  // a different predecessor; results must not depend on it.
  Rng rng(11);
  const std::vector<double> a = randomSample(rng, 33, false);
  const std::vector<double> b = randomSample(rng, 7, true);
  const double za1 = robustZ(4.0, a);
  (void)median(b);
  (void)mad(a);
  const double za2 = robustZ(4.0, a);
  EXPECT_EQ(za1, za2);
  const double ra1 = referenceZ(4.0, b);
  (void)quantile(a, 0.73);
  const double ra2 = referenceZ(4.0, b);
  EXPECT_EQ(ra1, ra2);
}

}  // namespace
}  // namespace perfvar::stats
