#include <cmath>
#include <gtest/gtest.h>

#include "analysis/sos.hpp"
#include "analysis/variation.hpp"
#include "apps/paper_examples.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"
#include "vis/heatmap.hpp"

namespace perfvar::analysis {
namespace {

TEST(SosWindows, WindowsTileTheWholeTraceSpan) {
  const trace::Trace tr = apps::buildFigure3Trace();  // span [0, 14]
  const SosResult sos = analyzeSosWindows(tr, 5);
  EXPECT_EQ(sos.segmentFunction(), trace::kInvalidFunction);
  EXPECT_EQ(sos.maxSegmentsPerProcess(), 3u);  // ceil(14/5)
  for (trace::ProcessId p = 0; p < 3; ++p) {
    const auto& segs = sos.process(p);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0].segment.enter, 0u);
    EXPECT_EQ(segs[0].segment.leave, 5u);
    EXPECT_EQ(segs[2].segment.enter, 10u);
    EXPECT_EQ(segs[2].segment.leave, 14u);  // clipped at trace end
  }
}

TEST(SosWindows, SyncTimeIsClippedPerWindow) {
  // fig3 process 2: MPI frames [1,6), [8,9), [13,14). Window [0,5):
  // overlap of [1,6) is 4. Window [5,10): 1 (from [1,6)) + 1 ([8,9)).
  // Window [10,14): 1 (from [13,14)).
  const trace::Trace tr = apps::buildFigure3Trace();
  const SosResult sos = analyzeSosWindows(tr, 5);
  const auto& segs = sos.process(2);
  EXPECT_EQ(segs[0].syncTime, 4u);
  EXPECT_EQ(segs[0].sosTime, 1u);
  EXPECT_EQ(segs[1].syncTime, 2u);
  EXPECT_EQ(segs[1].sosTime, 3u);
  EXPECT_EQ(segs[2].syncTime, 1u);
  EXPECT_EQ(segs[2].sosTime, 3u);
}

TEST(SosWindows, TotalsMatchFunctionSegmentation) {
  // Summed sync time is segmentation-independent when windows cover the
  // same span the function segments do (fig3 segments cover [0,14]).
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  const SosResult byFunction = analyzeSos(tr, fA);
  const SosResult byWindow = analyzeSosWindows(tr, 7);
  for (trace::ProcessId p = 0; p < 3; ++p) {
    trace::Timestamp syncF = 0;
    for (const auto& s : byFunction.process(p)) {
      syncF += s.syncTime;
    }
    trace::Timestamp syncW = 0;
    for (const auto& s : byWindow.process(p)) {
      syncW += s.syncTime;
    }
    EXPECT_EQ(syncF, syncW);
  }
}

TEST(SosWindows, MetricDeltasLandInTheirWindow) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  const auto m = b.defineMetric("ctr");
  b.enter(0, 0, f);
  b.metric(0, 3, m, 10.0);
  b.metric(0, 17, m, 25.0);
  b.leave(0, 20, f);
  const trace::Trace tr = b.finish();
  const SosResult sos = analyzeSosWindows(tr, 10);
  EXPECT_DOUBLE_EQ(sos.process(0)[0].metricDelta[m], 10.0);
  EXPECT_DOUBLE_EQ(sos.process(0)[1].metricDelta[m], 15.0);
}

TEST(SosWindows, VariationAnalysisRunsOnWindows) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const SosResult sos = analyzeSosWindows(tr, 5);
  const VariationReport report = analyzeVariation(sos);
  EXPECT_EQ(report.iterations.size(), 3u);
  const std::string text = formatVariationReport(sos, report);
  EXPECT_NE(text.find("(fixed time windows)"), std::string::npos);
}

TEST(SosWindows, RejectsDegenerateInputs) {
  const trace::Trace tr = apps::buildFigure3Trace();
  EXPECT_THROW(analyzeSosWindows(tr, 0), Error);
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  b.enter(0, 5, f);
  b.leave(0, 5, f);
  const trace::Trace degenerate = b.finish();
  EXPECT_THROW(analyzeSosWindows(degenerate, 10), Error);  // zero span
}

// --- topology view -------------------------------------------------------------

TEST(Topology, ImageLaysRanksOutOnTheGrid) {
  std::vector<double> values(12, 0.0);
  values[1 * 4 + 2] = 1.0;  // rank 6 on a 4x3 grid -> cell (x=2, y=1)
  vis::HeatmapOptions opts;
  opts.legend = false;
  opts.robustScale = false;
  opts.cellWidth = 12;
  opts.cellHeight = 12;
  const vis::Image img = vis::renderTopologyImage(values, 4, 3, opts);
  // Hot cell center is red; a cold corner cell is blue.
  const vis::Rgb hot = img.at(1 + 2 * 12 + 6, 1 + 1 * 12 + 6);
  const vis::Rgb cold = img.at(1 + 6, 1 + 6);
  EXPECT_GT(hot.r, hot.b);
  EXPECT_GT(cold.b, cold.r);
}

TEST(Topology, SvgLabelsRanksOnSmallGrids) {
  std::vector<double> values(9, 1.0);
  values[4] = 5.0;
  vis::HeatmapOptions opts;
  const std::string doc =
      vis::renderTopologySvg(values, 3, 3, opts).finalize();
  EXPECT_NE(doc.find(">4</text>"), std::string::npos);
  EXPECT_NE(doc.find(">8</text>"), std::string::npos);
}

TEST(Topology, RejectsMismatchedSizes) {
  const std::vector<double> values(10, 0.0);
  EXPECT_THROW(vis::renderTopologyImage(values, 4, 3, {}), Error);
}

}  // namespace
}  // namespace perfvar::analysis
