#include <gtest/gtest.h>

#include <algorithm>

#include "trace/builder.hpp"
#include "trace/stats.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "lint/lint.hpp"

namespace perfvar::trace {
namespace {

TEST(FunctionRegistry, InternIsIdempotent) {
  FunctionRegistry reg;
  const auto a = reg.intern("foo", "G");
  const auto b = reg.intern("foo", "G");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.name(a), "foo");
  EXPECT_EQ(reg.at(a).group, "G");
}

TEST(FunctionRegistry, ConflictingReRegistrationThrows) {
  FunctionRegistry reg;
  reg.intern("foo", "G", Paradigm::Compute);
  EXPECT_THROW(reg.intern("foo", "G", Paradigm::MPI), Error);
  EXPECT_THROW(reg.intern("foo", "H", Paradigm::Compute), Error);
}

TEST(FunctionRegistry, FindReturnsNulloptForUnknown) {
  FunctionRegistry reg;
  reg.intern("foo");
  EXPECT_TRUE(reg.find("foo").has_value());
  EXPECT_FALSE(reg.find("bar").has_value());
}

TEST(FunctionRegistry, EmptyNameRejected) {
  FunctionRegistry reg;
  EXPECT_THROW(reg.intern(""), Error);
}

TEST(MetricRegistry, InternAndModeConflict) {
  MetricRegistry reg;
  const auto m = reg.intern("PAPI_TOT_CYC", "cycles");
  EXPECT_EQ(reg.intern("PAPI_TOT_CYC"), m);
  EXPECT_THROW(reg.intern("PAPI_TOT_CYC", "", MetricMode::Absolute), Error);
}

TEST(Paradigm, NamesRoundTrip) {
  for (const auto p : {Paradigm::Compute, Paradigm::MPI, Paradigm::OpenMP,
                       Paradigm::IO, Paradigm::Memory, Paradigm::Other}) {
    EXPECT_EQ(paradigmFromName(paradigmName(p)), p);
  }
  EXPECT_THROW(paradigmFromName("NOPE"), Error);
}

TEST(Types, SecondsTicksRoundTrip) {
  EXPECT_EQ(secondsToTicks(1.5, 1'000'000'000ULL), 1'500'000'000ULL);
  EXPECT_EQ(secondsToTicks(0.0, 1000), 0ULL);
  EXPECT_DOUBLE_EQ(ticksToSeconds(250, 1000), 0.25);
  EXPECT_THROW(secondsToTicks(-1.0, 1000), Error);
}

TEST(Builder, BuildsValidTrace) {
  TraceBuilder b(2);
  const auto f = b.defineFunction("work");
  const auto g = b.defineFunction("inner");
  b.enter(0, 0, f);
  b.enter(0, 10, g);
  b.leave(0, 20, g);
  b.leave(0, 30, f);
  b.enter(1, 5, f);
  b.leave(1, 25, f);
  const Trace tr = b.finish();
  EXPECT_TRUE(lint::validateStructure(tr).empty());
  EXPECT_EQ(tr.eventCount(), 6u);
  EXPECT_EQ(tr.startTime(), 0u);
  EXPECT_EQ(tr.endTime(), 30u);
}

TEST(Trace, StartEndTimeMatchFullEventScan) {
  // startTime()/endTime() rely on the sorted-stream invariant (front() /
  // back() of each process); cross-check against a scan of every event.
  TraceBuilder b(4);
  const auto f = b.defineFunction("work");
  b.enter(1, 7, f);
  b.leave(1, 900, f);
  b.enter(2, 3, f);
  b.leave(2, 450, f);
  b.enter(3, 100, f);
  b.leave(3, 2000, f);
  const Trace tr = b.finish();  // process 0 stays empty

  Timestamp lo = 0;
  Timestamp hi = 0;
  bool any = false;
  for (const auto& p : tr.processes) {
    for (const Event& e : p.events) {
      lo = any ? std::min(lo, e.time) : e.time;
      hi = any ? std::max(hi, e.time) : e.time;
      any = true;
    }
  }
  ASSERT_TRUE(any);
  EXPECT_EQ(tr.startTime(), lo);
  EXPECT_EQ(tr.startTime(), 3u);
  EXPECT_EQ(tr.endTime(), hi);
  EXPECT_EQ(tr.endTime(), 2000u);

  const Trace empty;
  EXPECT_EQ(empty.startTime(), 0u);
  EXPECT_EQ(empty.endTime(), 0u);
}

TEST(Builder, RejectsMismatchedLeave) {
  TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  const auto g = b.defineFunction("g");
  b.enter(0, 0, f);
  EXPECT_THROW(b.leave(0, 1, g), Error);
}

TEST(Builder, RejectsLeaveWithoutEnter) {
  TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  EXPECT_THROW(b.leave(0, 1, f), Error);
}

TEST(Builder, RejectsTimeTravel) {
  TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  b.enter(0, 10, f);
  EXPECT_THROW(b.leave(0, 5, f), Error);
}

TEST(Builder, RejectsUnclosedFramesAtFinish) {
  TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  b.enter(0, 0, f);
  EXPECT_THROW(b.finish(), Error);
}

TEST(Builder, RejectsSelfMessages) {
  TraceBuilder b(2);
  EXPECT_THROW(b.mpiSend(0, 0, 0, 1, 8), Error);
  EXPECT_THROW(b.mpiRecv(1, 0, 1, 1, 8), Error);
}

TEST(Builder, RejectsUndefinedIds) {
  TraceBuilder b(1);
  EXPECT_THROW(b.enter(0, 0, 7), Error);
  EXPECT_THROW(b.metric(0, 0, 7, 1.0), Error);
}

TEST(Builder, EqualTimestampsAreAllowed) {
  TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  const auto g = b.defineFunction("g");
  b.enter(0, 5, f);
  b.enter(0, 5, g);
  b.leave(0, 5, g);
  b.leave(0, 5, f);
  const Trace tr = b.finish();
  EXPECT_TRUE(lint::validateStructure(tr).empty());
}

TEST(Builder, DepthTracksNesting) {
  TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  EXPECT_EQ(b.depth(0), 0u);
  b.enter(0, 0, f);
  EXPECT_EQ(b.depth(0), 1u);
  b.enter(0, 1, f);
  EXPECT_EQ(b.depth(0), 2u);
  b.leave(0, 2, f);
  b.leave(0, 3, f);
  EXPECT_EQ(b.depth(0), 0u);
}

TEST(Validate, DetectsHandCraftedCorruption) {
  Trace tr;
  const auto f = tr.functions.intern("f");
  tr.processes.resize(1);
  tr.processes[0].events.push_back(Event::enter(10, f));
  tr.processes[0].events.push_back(Event::leave(5, f));  // time decreases
  const auto issues = lint::validateStructure(tr);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("timestamp"), std::string::npos);
}

TEST(Validate, DetectsUnclosedFrame) {
  Trace tr;
  const auto f = tr.functions.intern("f");
  tr.processes.resize(1);
  tr.processes[0].events.push_back(Event::enter(0, f));
  const auto issues = lint::validateStructure(tr);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("unclosed"), std::string::npos);
  EXPECT_THROW(lint::requireStructurallyValid(tr), Error);
}

TEST(Validate, DetectsUndefinedFunctionReference) {
  Trace tr;
  tr.functions.intern("f");
  tr.processes.resize(1);
  tr.processes[0].events.push_back(Event::enter(0, 42));
  EXPECT_FALSE(lint::validateStructure(tr).empty());
}

TEST(Stats, CountsEverything) {
  TraceBuilder b(2);
  const auto f = b.defineFunction("f");
  const auto m = b.defineMetric("m");
  b.enter(0, 0, f);
  b.mpiSend(0, 1, 1, 9, 100);
  b.metric(0, 2, m, 5.0);
  b.leave(0, 10, f);
  b.enter(1, 0, f);
  b.mpiRecv(1, 3, 0, 9, 100);
  b.leave(1, 12, f);
  const Trace statsTrace = b.finish();
  const TraceStats s = computeStats(statsTrace);
  EXPECT_EQ(s.processCount, 2u);
  EXPECT_EQ(s.eventCount, 7u);
  EXPECT_EQ(s.messageCount, 1u);
  EXPECT_EQ(s.messageBytes, 100u);
  EXPECT_EQ(s.maxStackDepth, 1u);
  EXPECT_EQ(s.eventsByKind[static_cast<std::size_t>(EventKind::Metric)], 1u);
  const std::string text = formatStats(s);
  EXPECT_NE(text.find("processes:   2"), std::string::npos);
}

TEST(EventKindNames, AreStable) {
  EXPECT_STREQ(eventKindName(EventKind::Enter), "ENTER");
  EXPECT_STREQ(eventKindName(EventKind::MpiRecv), "MPI_RECV");
}

}  // namespace
}  // namespace perfvar::trace
