/// Differential matrix of the throughput engineering pass: every
/// scheduling configuration (thread count x stealing on/off) and both
/// kernel generations (tuned vs reference) must produce byte-identical
/// analysis output on skewed, uniform and empty-rank traces. Plus direct
/// coverage of the work-stealing chunk scheduler itself: full coverage,
/// deterministic chunk boundaries, exception propagation and the
/// ThreadPoolStats counters. Runs under the TSan CI job (label:
/// parallel).

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "analysis/parallel.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/sos.hpp"
#include "apps/scale_synthetic.hpp"
#include "profile/profile.hpp"
#include "util/thread_pool.hpp"

namespace perfvar {
namespace {

// ---- fixtures --------------------------------------------------------------

apps::ScaleConfig smallConfig() {
  apps::ScaleConfig cfg;
  cfg.ranks = 48;
  cfg.iterations = 4;
  return cfg;
}

/// Uniform event density across ranks.
const trace::Trace& uniformTrace() {
  static const trace::Trace tr = apps::buildScaleTrace(smallConfig());
  return tr;
}

/// 10% of ranks carry 32 extra nested compute pairs per iteration — the
/// shape work stealing exists for.
const trace::Trace& skewedTrace() {
  static const trace::Trace tr = [] {
    apps::ScaleConfig cfg = smallConfig();
    cfg.skewTailPerMille = 100;
    cfg.skewEventsFactor = 32;
    return apps::buildScaleTrace(cfg);
  }();
  return tr;
}

/// Uniform trace with one rank's event stream emptied: a degenerate
/// shard the scheduler and every per-rank kernel must pass through.
const trace::Trace& emptyRankTrace() {
  static const trace::Trace tr = [] {
    trace::Trace t = apps::buildScaleTrace(smallConfig());
    t.processes[t.processes.size() / 2].events.clear();
    return t;
  }();
  return tr;
}

std::vector<const trace::Trace*> traceMatrix() {
  return {&uniformTrace(), &skewedTrace(), &emptyRankTrace()};
}

// ---- the differential matrix ----------------------------------------------

TEST(ThroughputMatrix, AllSchedulesMatchSerialReferenceByteForByte) {
  for (const trace::Trace* tr : traceMatrix()) {
    // Oracle: serial run of the pre-optimization reference kernels.
    analysis::PipelineOptions oracleOpts;
    oracleOpts.referenceKernels = true;
    const analysis::AnalysisResult oracle =
        analysis::analyzeTrace(*tr, oracleOpts);
    const std::string oracleText = analysis::formatAnalysis(*tr, oracle);

    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      for (const bool stealing : {false, true}) {
        for (const bool reference : {false, true}) {
          analysis::PipelineOptions opts;
          opts.threads = threads;
          opts.stealing = stealing;
          opts.referenceKernels = reference;
          const analysis::AnalysisResult result =
              analysis::analyzeTrace(*tr, opts);
          EXPECT_EQ(analysis::formatAnalysis(*tr, result), oracleText)
              << "threads=" << threads << " stealing=" << stealing
              << " reference=" << reference;

          // The formatted report rounds; the numeric fields must match
          // bit for bit as well.
          ASSERT_EQ(result.variation.processes.size(),
                    oracle.variation.processes.size());
          for (std::size_t p = 0; p < oracle.variation.processes.size();
               ++p) {
            EXPECT_EQ(result.variation.processes[p].totalZ,
                      oracle.variation.processes[p].totalZ);
            EXPECT_EQ(result.variation.processes[p].totalSos,
                      oracle.variation.processes[p].totalSos);
          }
          ASSERT_EQ(result.variation.hotspots.size(),
                    oracle.variation.hotspots.size());
          for (std::size_t h = 0; h < oracle.variation.hotspots.size();
               ++h) {
            EXPECT_EQ(result.variation.hotspots[h].globalZ,
                      oracle.variation.hotspots[h].globalZ);
            EXPECT_EQ(result.variation.hotspots[h].iterationZ,
                      oracle.variation.hotspots[h].iterationZ);
            EXPECT_EQ(result.variation.hotspots[h].process,
                      oracle.variation.hotspots[h].process);
            EXPECT_EQ(result.variation.hotspots[h].iteration,
                      oracle.variation.hotspots[h].iteration);
          }
        }
      }
    }
  }
}

// ---- per-rank kernel oracles ----------------------------------------------

TEST(ThroughputKernels, ProfileVisitorMatchesReference) {
  for (const trace::Trace* tr : traceMatrix()) {
    const trace::TraceView view(*tr);
    for (std::size_t p = 0; p < view.processCount(); ++p) {
      const auto rank = static_cast<trace::ProcessId>(p);
      const auto fast = profile::FlatProfile::buildProcess(view, rank);
      const auto ref = profile::FlatProfile::buildProcessReference(view, rank);
      ASSERT_EQ(fast.size(), ref.size());
      for (std::size_t f = 0; f < ref.size(); ++f) {
        EXPECT_EQ(fast[f].invocations, ref[f].invocations);
        EXPECT_EQ(fast[f].inclusive, ref[f].inclusive);
        EXPECT_EQ(fast[f].exclusive, ref[f].exclusive);
        EXPECT_EQ(fast[f].minInclusive, ref[f].minInclusive);
        EXPECT_EQ(fast[f].maxInclusive, ref[f].maxInclusive);
      }
    }
  }
}

TEST(ThroughputKernels, SosVisitorMatchesReference) {
  for (const trace::Trace* tr : traceMatrix()) {
    const trace::TraceView view(*tr);
    const auto selection = analysis::selectDominantFunction(view);
    ASSERT_TRUE(selection.hasDominant());
    const trace::FunctionId fn = selection.dominant().function;
    const std::vector<bool> mask = analysis::SyncClassifier{}.mask(view);
    analysis::detail::SosScratch scratch;
    for (std::size_t p = 0; p < view.processCount(); ++p) {
      const auto rank = static_cast<trace::ProcessId>(p);
      const auto fast =
          analysis::detail::analyzeSosProcess(view, rank, fn, mask, scratch);
      const auto ref =
          analysis::detail::analyzeSosProcessReference(view, rank, fn, mask);
      ASSERT_EQ(fast.size(), ref.size());
      for (std::size_t s = 0; s < ref.size(); ++s) {
        EXPECT_EQ(fast[s].segment.enter, ref[s].segment.enter);
        EXPECT_EQ(fast[s].segment.leave, ref[s].segment.leave);
        EXPECT_EQ(fast[s].segment.index, ref[s].segment.index);
        EXPECT_EQ(fast[s].syncTime, ref[s].syncTime);
        EXPECT_EQ(fast[s].sosTime, ref[s].sosTime);
        EXPECT_EQ(fast[s].paradigmTime, ref[s].paradigmTime);
        EXPECT_EQ(fast[s].metricDelta, ref[s].metricDelta);
      }
    }
  }
}

// ---- the chunk scheduler itself -------------------------------------------

TEST(ChunkScheduler, EveryIndexCoveredExactlyOnce) {
  util::ThreadPool pool(4);
  for (const bool stealing : {false, true}) {
    for (const std::size_t batch : {std::size_t{0}, std::size_t{1},
                                    std::size_t{5}}) {
      const std::size_t n = 1000;
      const std::size_t grain = 7;
      std::vector<std::atomic<int>> hits(n);
      util::ChunkOptions opts;
      opts.grain = grain;
      opts.stealing = stealing;
      opts.batch = batch;
      util::parallelChunks(&pool, n, opts,
                           [&](std::size_t begin, std::size_t end) {
                             // Chunk boundaries are a function of n and
                             // grain only, regardless of scheduling.
                             EXPECT_EQ(begin % grain, 0u);
                             EXPECT_LE(end - begin, grain);
                             EXPECT_TRUE(end == n || (end - begin) == grain);
                             for (std::size_t i = begin; i < end; ++i) {
                               hits[i].fetch_add(1,
                                                 std::memory_order_relaxed);
                             }
                           });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "i=" << i << " stealing=" << stealing << " batch=" << batch;
      }
    }
  }
}

TEST(ChunkScheduler, NullPoolAndSingleChunkRunInline) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  util::parallelChunks(nullptr, 10, 3,
                       [&](std::size_t b, std::size_t e) {
                         ranges.emplace_back(b, e);
                       });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], std::make_pair(std::size_t{0}, std::size_t{10}));

  util::ThreadPool pool(2);
  ranges.clear();
  util::parallelChunks(&pool, 5, 100,
                       [&](std::size_t b, std::size_t e) {
                         ranges.emplace_back(b, e);
                       });
  ASSERT_EQ(ranges.size(), 1u);  // one chunk -> inline on the caller
  EXPECT_EQ(ranges[0], std::make_pair(std::size_t{0}, std::size_t{5}));
}

TEST(ChunkScheduler, ExceptionPropagatesAndPoolStaysUsable) {
  util::ThreadPool pool(3);
  util::ChunkOptions opts;
  opts.grain = 1;
  EXPECT_THROW(
      util::parallelChunks(&pool, 64, opts,
                           [&](std::size_t begin, std::size_t) {
                             if (begin == 17) {
                               throw std::runtime_error("boom");
                             }
                           }),
      std::runtime_error);

  // The error state is cleared; the pool keeps scheduling correctly.
  std::atomic<std::size_t> covered{0};
  util::parallelChunks(&pool, 64, opts,
                       [&](std::size_t begin, std::size_t end) {
                         covered.fetch_add(end - begin,
                                           std::memory_order_relaxed);
                       });
  EXPECT_EQ(covered.load(), 64u);
}

TEST(ChunkScheduler, StatsCountChunksAndReset) {
  util::ThreadPool pool(2);
  util::ChunkOptions opts;
  opts.grain = 1;
  util::parallelChunks(&pool, 100, opts, [](std::size_t, std::size_t) {});
  util::ThreadPoolStats stats = pool.stats();
  ASSERT_EQ(stats.workers.size(), 2u);
  EXPECT_EQ(stats.totalChunks(), 100u);
  EXPECT_LE(stats.totalStolen(), stats.totalChunks());
  EXPECT_GT(stats.totalTasks(), 0u);

  const std::string text = util::formatThreadPoolStats(stats);
  EXPECT_NE(text.find("thread pool: 2 workers"), std::string::npos);
  EXPECT_NE(text.find("worker 0:"), std::string::npos);

  pool.resetStats();
  stats = pool.stats();
  EXPECT_EQ(stats.totalChunks(), 0u);
  EXPECT_EQ(stats.totalTasks(), 0u);
}

TEST(ChunkScheduler, StealingDisabledStealsNothing) {
  util::ThreadPool pool(4);
  util::ChunkOptions opts;
  opts.grain = 1;
  opts.stealing = false;
  pool.resetStats();
  util::parallelChunks(&pool, 500, opts, [](std::size_t, std::size_t) {});
  EXPECT_EQ(pool.stats().totalStolen(), 0u);
}

TEST(ChunkScheduler, PipelineExportsPoolStats) {
  analysis::PipelineOptions opts;
  opts.threads = 4;
  util::ThreadPoolStats stats;
  opts.poolStats = &stats;
  const analysis::AnalysisResult result =
      analysis::analyzeTrace(skewedTrace(), opts);
  EXPECT_FALSE(result.variation.processes.empty());
  ASSERT_EQ(stats.workers.size(), 4u);
  EXPECT_GT(stats.totalChunks(), 0u);
}

}  // namespace
}  // namespace perfvar
