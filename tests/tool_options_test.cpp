/// \file tool_options_test.cpp
/// The shared trace_tool option parser (examples/tool_options.hpp): the
/// exact parser the production front end uses, exercised directly —
/// defaults, every flag, unknown-flag rejection, missing/malformed
/// values, and positional passthrough order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "examples/tool_options.hpp"

namespace {

using namespace perfvar;
using tool::ParseStatus;
using tool::ToolOptions;

/// Run the parser over a brace-list of argv tokens (argv[0] included).
ParseStatus parse(std::vector<const char*> argv, ToolOptions& options,
                  std::string& error) {
  argv.insert(argv.begin(), "trace_tool");
  return tool::parseToolOptions(static_cast<int>(argv.size()), argv.data(),
                                options, error);
}

TEST(ToolOptions, DefaultsMatchDocumentedContract) {
  ToolOptions options;
  std::string error;
  EXPECT_EQ(parse({"analyze", "in.pvt"}, options, error), ParseStatus::Ok);
  EXPECT_EQ(options.threads, 1u);
  EXPECT_EQ(options.format, trace::kBinaryFormatV2);
  EXPECT_FALSE(options.salvage);
  EXPECT_FALSE(options.lazy);
  EXPECT_EQ(options.shardBudgetMb, 256u);
  EXPECT_EQ(options.lintFailOn, lint::Severity::Warning);
  EXPECT_TRUE(options.journalDir.empty());
  EXPECT_FALSE(options.recover);
  EXPECT_FALSE(options.journalFsync);
  EXPECT_EQ(options.reorderWindowBytes, 0u);
  EXPECT_EQ(options.sendTimeoutMs, 5000u);
  EXPECT_EQ(options.retry, 50u);
  EXPECT_EQ(options.retryDelayMs, 100u);
  EXPECT_EQ(options.positional,
            (std::vector<std::string>{"analyze", "in.pvt"}));
}

TEST(ToolOptions, DurabilityAndRetryFlagsParse) {
  ToolOptions options;
  std::string error;
  EXPECT_EQ(parse({"--journal-dir", "wal", "--recover", "--journal-fsync",
                   "--reorder-window-bytes", "65536", "--send-timeout-ms",
                   "250", "serve", "a.sock"},
                  options, error),
            ParseStatus::Ok)
      << error;
  EXPECT_EQ(options.journalDir, "wal");
  EXPECT_TRUE(options.recover);
  EXPECT_TRUE(options.journalFsync);
  EXPECT_EQ(options.reorderWindowBytes, 65536u);
  EXPECT_EQ(options.sendTimeoutMs, 250u);
  EXPECT_EQ(options.positional,
            (std::vector<std::string>{"serve", "a.sock"}));

  ToolOptions connectOptions;
  EXPECT_EQ(parse({"--retry", "3", "--retry-delay-ms", "10", "connect",
                   "a.sock"},
                  connectOptions, error),
            ParseStatus::Ok);
  EXPECT_EQ(connectOptions.retry, 3u);
  EXPECT_EQ(connectOptions.retryDelayMs, 10u);

  // Value flags reject missing and malformed values like every other.
  for (const char* flag : {"--journal-dir", "--reorder-window-bytes",
                           "--send-timeout-ms", "--retry",
                           "--retry-delay-ms"}) {
    ToolOptions o;
    EXPECT_EQ(parse({flag}, o, error), ParseStatus::Error) << flag;
  }
  ToolOptions o;
  EXPECT_EQ(parse({"--reorder-window-bytes", "lots"}, o, error),
            ParseStatus::Error);
  EXPECT_EQ(parse({"--retry", "-1"}, o, error), ParseStatus::Error);
}

TEST(ToolOptions, AllFlagsParse) {
  ToolOptions options;
  std::string error;
  EXPECT_EQ(parse({"--threads", "8", "--format", "v1", "--salvage",
                   "--verify", "--lazy", "--shard-budget-mb", "64",
                   "--budget-mb", "512", "--session-budget-mb", "128",
                   "--json", "--fail-on", "error", "--disable",
                   "clock-monotonicity", "--disable", "stack-balance",
                   "lint", "in.pvt"},
                  options, error),
            ParseStatus::Ok)
      << error;
  EXPECT_EQ(options.threads, 8u);
  EXPECT_EQ(options.format, trace::kBinaryFormatV1);
  EXPECT_TRUE(options.salvage);
  EXPECT_TRUE(options.verify);
  EXPECT_TRUE(options.lazy);
  EXPECT_EQ(options.shardBudgetMb, 64u);
  EXPECT_EQ(options.budgetMb, 512u);
  EXPECT_EQ(options.sessionBudgetMb, 128u);
  EXPECT_TRUE(options.lintJson);
  EXPECT_EQ(options.lintFailOn, lint::Severity::Error);
  EXPECT_EQ(options.lintDisabled,
            (std::vector<std::string>{"clock-monotonicity",
                                      "stack-balance"}));
  EXPECT_EQ(options.positional,
            (std::vector<std::string>{"lint", "in.pvt"}));
}

TEST(ToolOptions, OnlyAndExcludeParseCommaLists) {
  ToolOptions options;
  std::string error;
  EXPECT_EQ(parse({"--only", "stack-balance,zero-duration", "--only",
                   "idle-wave-propagation", "--exclude",
                   "clock-monotonicity,sync-coverage", "lint", "in.pvt"},
                  options, error),
            ParseStatus::Ok)
      << error;
  // Repeated flags append; comma lists split in order.
  EXPECT_EQ(options.lintOnly,
            (std::vector<std::string>{"stack-balance", "zero-duration",
                                      "idle-wave-propagation"}));
  EXPECT_EQ(options.lintExclude,
            (std::vector<std::string>{"clock-monotonicity",
                                      "sync-coverage"}));
  EXPECT_EQ(options.positional,
            (std::vector<std::string>{"lint", "in.pvt"}));
}

TEST(ToolOptions, OnlyAndExcludeRejectMalformedLists) {
  for (const char* flag : {"--only", "--exclude"}) {
    ToolOptions options;
    std::string error;
    EXPECT_EQ(parse({flag}, options, error), ParseStatus::Error)
        << flag << " without a value must be rejected";
    // Empty segments: leading, trailing, doubled commas, empty value.
    for (const char* bad : {"", ",", "a,", ",a", "a,,b"}) {
      ToolOptions o;
      EXPECT_EQ(parse({flag, bad}, o, error), ParseStatus::Error)
          << flag << " '" << bad << "'";
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(ToolOptions, OptionsInterleaveWithPositionals) {
  ToolOptions options;
  std::string error;
  EXPECT_EQ(parse({"generate", "--format", "v2", "scale", "out.pvt",
                   "--threads", "2", "100000"},
                  options, error),
            ParseStatus::Ok);
  EXPECT_EQ(options.positional, (std::vector<std::string>{
                                    "generate", "scale", "out.pvt",
                                    "100000"}));
  EXPECT_EQ(options.threads, 2u);
}

TEST(ToolOptions, HelpShortCircuits) {
  ToolOptions options;
  std::string error;
  EXPECT_EQ(parse({"--help"}, options, error), ParseStatus::Help);
  EXPECT_EQ(parse({"analyze", "-h"}, options, error), ParseStatus::Help);
}

TEST(ToolOptions, UnknownFlagsAreRejected) {
  ToolOptions options;
  std::string error;
  EXPECT_EQ(parse({"--no-such-flag", "analyze"}, options, error),
            ParseStatus::Error);
  EXPECT_EQ(error, "unknown option '--no-such-flag'");
  EXPECT_EQ(parse({"-x"}, options, error), ParseStatus::Error);
}

TEST(ToolOptions, MissingAndMalformedValues) {
  const std::vector<const char*> valueFlags{
      "--threads",   "--format",           "--shard-budget-mb",
      "--budget-mb", "--session-budget-mb", "--fail-on",
      "--disable"};
  for (const char* flag : valueFlags) {
    ToolOptions options;
    std::string error;
    EXPECT_EQ(parse({flag}, options, error), ParseStatus::Error)
        << flag << " without a value must be rejected";
    EXPECT_FALSE(error.empty());
  }

  ToolOptions options;
  std::string error;
  EXPECT_EQ(parse({"--threads", "-3"}, options, error), ParseStatus::Error);
  EXPECT_EQ(parse({"--threads", "many"}, options, error),
            ParseStatus::Error);
  EXPECT_EQ(parse({"--format", "v3"}, options, error), ParseStatus::Error);
  EXPECT_EQ(parse({"--fail-on", "fatal"}, options, error),
            ParseStatus::Error);
  EXPECT_EQ(parse({"--shard-budget-mb", "1.5"}, options, error),
            ParseStatus::Error);
}

TEST(ToolOptions, SizeAndDoubleParsers) {
  std::size_t n = 0;
  EXPECT_TRUE(tool::parseSize("42", n));
  EXPECT_EQ(n, 42u);
  EXPECT_FALSE(tool::parseSize("", n));
  EXPECT_FALSE(tool::parseSize("4 2", n));
  EXPECT_FALSE(tool::parseSize("-1", n));
  EXPECT_FALSE(tool::parseSize("0x10", n));

  double d = 0.0;
  EXPECT_TRUE(tool::parseDouble("2.5", d));
  EXPECT_EQ(d, 2.5);
  EXPECT_TRUE(tool::parseDouble("-1e-3", d));
  EXPECT_FALSE(tool::parseDouble("2.5x", d));
  EXPECT_FALSE(tool::parseDouble("", d));
}

}  // namespace
