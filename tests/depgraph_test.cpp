/// Dependency-graph tests: happens-before construction and matching on
/// hand-built traces, ground-truth diagnoses of the two planted workloads
/// (the pipeline's serializing rank, the stencil's idle-wave origin), the
/// determinism guarantee (byte-identical exports at 1/2/8 threads), the
/// engine's dep stage cache (warm re-query is a hit returning the same
/// instance), the three lint rules, and the never-throws robustness
/// contract on hostile inputs (cyclic timestamps, unmatched sends,
/// invalid endpoints).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/depgraph.hpp"
#include "apps/desync_stencil.hpp"
#include "apps/pipeline_chain.hpp"
#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "trace/builder.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace perfvar::analysis {
namespace {

using trace::Event;
using trace::Trace;

/// Two ranks, one matched message: rank 0 computes then sends; rank 1
/// waits inside a sync region and receives.
Trace twoRankMessage() {
  trace::TraceBuilder b(2);
  const auto work = b.defineFunction("work", "APP");
  const auto recv =
      b.defineFunction("MPI_Recv", "MPI", trace::Paradigm::MPI);
  b.enter(0, 10, work);
  b.mpiSend(0, 100, 1, 7, 64);
  b.leave(0, 110, work);
  b.enter(1, 10, work);
  b.leave(1, 20, work);
  b.enter(1, 20, recv);
  b.mpiRecv(1, 150, 0, 7, 64);
  b.leave(1, 150, recv);
  return b.finish();
}

// ---- graph construction ----------------------------------------------------

TEST(DepGraph, MatchesSendToRecvPerChannel) {
  const Trace tr = twoRankMessage();
  const DepGraph g = buildDepGraph(tr);
  ASSERT_EQ(g.rankNodes.size(), 2u);
  EXPECT_EQ(g.stats.sendEvents, 1u);
  EXPECT_EQ(g.stats.recvEvents, 1u);
  EXPECT_EQ(g.stats.matchedPairs, 1u);
  EXPECT_EQ(g.stats.unmatchedSends, 0u);
  EXPECT_EQ(g.stats.unmatchedRecvs, 0u);

  // Locate the send and recv nodes and verify the cross edge.
  std::int64_t sendNode = -1;
  std::int64_t recvNode = -1;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].kind == DepNodeKind::Send) {
      sendNode = static_cast<std::int64_t>(i);
    }
    if (g.nodes[i].kind == DepNodeKind::Recv) {
      recvNode = static_cast<std::int64_t>(i);
    }
  }
  ASSERT_GE(sendNode, 0);
  ASSERT_GE(recvNode, 0);
  EXPECT_EQ(g.nodes[sendNode].match, recvNode);
  EXPECT_EQ(g.nodes[recvNode].match, sendNode);
  // The receiver entered its sync region at t=20 and completed at t=150.
  EXPECT_EQ(g.nodes[recvNode].waitStart, 20u);
  EXPECT_EQ(g.nodes[recvNode].time, 150u);
}

TEST(DepGraph, FifoMatchingPerChannelIsOrderPreserving) {
  // Two messages on one (sender, receiver, tag) channel must match in
  // FIFO order — the MPI ordering guarantee.
  trace::TraceBuilder b(2);
  b.defineFunction("work", "APP");
  b.mpiSend(0, 10, 1, 0, 8);
  b.mpiSend(0, 20, 1, 0, 8);
  b.mpiRecv(1, 30, 0, 0, 8);
  b.mpiRecv(1, 40, 0, 0, 8);
  const Trace tr = b.finish();
  const DepGraph g = buildDepGraph(tr);
  EXPECT_EQ(g.stats.matchedPairs, 2u);
  std::vector<std::size_t> sends;
  std::vector<std::size_t> recvs;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].kind == DepNodeKind::Send) sends.push_back(i);
    if (g.nodes[i].kind == DepNodeKind::Recv) recvs.push_back(i);
  }
  ASSERT_EQ(sends.size(), 2u);
  ASSERT_EQ(recvs.size(), 2u);
  EXPECT_EQ(g.nodes[sends[0]].match, static_cast<std::int64_t>(recvs[0]));
  EXPECT_EQ(g.nodes[sends[1]].match, static_cast<std::int64_t>(recvs[1]));
}

TEST(DepGraph, CountsUnmatchedAndInvalidEndpoints) {
  trace::TraceBuilder b(2);
  b.defineFunction("work", "APP");
  b.mpiSend(0, 10, 1, 0, 8);    // never received
  b.mpiRecv(1, 20, 0, 9, 8);    // never sent (wrong tag)
  const Trace tr1 = b.finish();
  const DepGraph g1 = buildDepGraph(tr1);
  EXPECT_EQ(g1.stats.matchedPairs, 0u);
  EXPECT_EQ(g1.stats.unmatchedSends, 1u);
  EXPECT_EQ(g1.stats.unmatchedRecvs, 1u);

  // Self-send and out-of-range peers are screened, not matched. The
  // builder refuses these, so assemble the trace by hand.
  Trace tr2;
  tr2.functions.intern("f", "APP");
  trace::ProcessTrace proc;
  proc.name = "p0";
  proc.events.push_back(Event::mpiSend(10, 0, 0, 8));    // self
  proc.events.push_back(Event::mpiSend(20, 1000, 0, 8)); // out of range
  tr2.processes.push_back(std::move(proc));
  const DepGraph g2 = buildDepGraph(tr2);
  EXPECT_EQ(g2.stats.invalidEndpoints, 2u);
  EXPECT_EQ(g2.stats.matchedPairs, 0u);
}

// ---- critical path ---------------------------------------------------------

TEST(DepGraph, CriticalPathCrossesTheLateMessage) {
  const Trace tr = twoRankMessage();
  const DepGraph g = buildDepGraph(tr);
  const CriticalPathResult path = extractCriticalPath(g);
  EXPECT_FALSE(path.truncated);
  EXPECT_EQ(path.endProcess, 1u);
  EXPECT_EQ(path.pathEnd, 150u);
  // The receive completed at 150 but the rank began waiting at 20: the
  // send at t=100 departed late, so the path must hop to rank 0.
  bool sawRemote = false;
  for (const CriticalPathStep& s : path.steps) {
    sawRemote |= s.remote;
  }
  EXPECT_TRUE(sawRemote);
  EXPECT_GT(path.remoteTicks, 0u);
  EXPECT_EQ(path.accountedTicks, path.pathEnd - path.pathStart);
}

// ---- pipeline ground truth -------------------------------------------------

TEST(DepGraphPipeline, DiagnosesThePlantedSerializingRank) {
  const apps::PipelineConfig cfg;
  const Trace tr = apps::buildPipelineTrace(cfg);
  const std::size_t slow = apps::pipelineSlowRank(cfg);
  const DepAnalysis a = analyzeDependencies(tr);

  EXPECT_EQ(a.processCount, cfg.ranks);
  EXPECT_EQ(a.graphStats.matchedPairs,
            (cfg.ranks - 1) * cfg.items);
  EXPECT_EQ(a.graphStats.unmatchedSends, 0u);
  EXPECT_EQ(a.graphStats.unmatchedRecvs, 0u);

  // The slow stage dominates the critical path...
  ASSERT_EQ(a.serialization.dominatedRanks.size(), 1u);
  EXPECT_EQ(a.serialization.dominatedRanks[0].process, slow);
  EXPECT_GT(a.serialization.dominatedRanks[0].share, 0.9);

  // ...and the bottleneck region is its compute function.
  ASSERT_FALSE(a.serialization.bottlenecks.empty());
  const RegionCriticality& top = a.serialization.bottlenecks[0];
  EXPECT_EQ(top.process, slow);
  EXPECT_EQ(tr.functions.name(top.function), "stage_compute");
  EXPECT_GT(top.share, 0.9);
}

TEST(DepGraphPipeline, JitterDoesNotChangeTheDiagnosis) {
  apps::PipelineConfig cfg;
  cfg.jitterTicks = 20'000;  // well below slowExtraTicks
  const Trace tr = apps::buildPipelineTrace(cfg);
  const DepAnalysis a = analyzeDependencies(tr);
  ASSERT_EQ(a.serialization.dominatedRanks.size(), 1u);
  EXPECT_EQ(a.serialization.dominatedRanks[0].process,
            apps::pipelineSlowRank(cfg));
}

// ---- stencil ground truth --------------------------------------------------

TEST(DepGraphStencil, DiagnosesTheIdleWaveOrigin) {
  const apps::StencilConfig cfg;
  const Trace tr = apps::buildStencilTrace(cfg);
  const std::size_t delayed = apps::stencilDelayRank(cfg);
  const DepAnalysis a = analyzeDependencies(tr);

  EXPECT_EQ(a.processCount, cfg.ranks);
  EXPECT_EQ(a.graphStats.unmatchedSends, 0u);
  EXPECT_EQ(a.graphStats.unmatchedRecvs, 0u);

  // One wave, seeded by the delayed rank, washing over every rank (the
  // left- and right-moving fronts merge by origin).
  ASSERT_EQ(a.idleWaves.waves.size(), 1u);
  const IdleWave& wave = a.idleWaves.waves[0];
  EXPECT_EQ(wave.origin, delayed);
  EXPECT_EQ(wave.distinctRanks, cfg.ranks);
  EXPECT_GE(wave.maxWaitTicks, cfg.delayExtraTicks);
  // One late arrival per rank other than the origin (the origin itself
  // was computing, not waiting).
  EXPECT_EQ(wave.hops.size(), cfg.ranks - 1);
  for (const IdleWaveHop& hop : wave.hops) {
    EXPECT_NE(hop.process, delayed);
  }
}

// ---- determinism -----------------------------------------------------------

TEST(DepGraphDeterminism, ExportsAreByteIdenticalAcrossThreadCounts) {
  const Trace pipeline = apps::buildPipelineTrace({});
  const Trace stencil = apps::buildStencilTrace({});
  for (const Trace* tr : {&pipeline, &stencil}) {
    DepAnalysisOptions serial;
    const DepAnalysis reference = analyzeDependencies(*tr, serial);
    for (const std::size_t threads : {2ul, 8ul}) {
      DepAnalysisOptions opts;
      opts.threads = threads;
      const DepAnalysis a = analyzeDependencies(*tr, opts);
      for (const auto format :
           {ExportFormat::Text, ExportFormat::Json, ExportFormat::Csv}) {
        EXPECT_EQ(exportDepAnalysisString(*tr, a, format),
                  exportDepAnalysisString(*tr, reference, format))
            << "threads=" << threads;
      }
    }
  }
}

// ---- export formats --------------------------------------------------------

TEST(DepGraphExport, AnalysisSpecificCsvVariantsThrow) {
  const Trace tr = twoRankMessage();
  const DepAnalysis a = analyzeDependencies(tr);
  EXPECT_THROW(exportDepAnalysisString(tr, a, ExportFormat::CsvIterations),
               Error);
  EXPECT_THROW(exportDepAnalysisString(tr, a, ExportFormat::CsvHotspots),
               Error);
}

TEST(DepGraphExport, CsvHasOneRowPerStep) {
  const Trace tr = apps::buildPipelineTrace({});
  const DepAnalysis a = analyzeDependencies(tr);
  const std::string csv = exportDepAnalysisString(tr, a, ExportFormat::Csv);
  std::size_t lines = 0;
  for (const char c : csv) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, a.criticalPath.steps.size() + 1);  // + header
}

// ---- engine caching --------------------------------------------------------

TEST(DepGraphEngine, WarmReQueryHitsTheDepStageCache) {
  engine::EngineOptions opts;
  opts.threads = 2;
  engine::AnalysisEngine eng(apps::buildPipelineTrace({}), opts);
  const auto cold = eng.depAnalysis();
  const engine::CacheStats afterCold = eng.cacheStats();
  const auto warm = eng.depAnalysis();
  const engine::CacheStats afterWarm = eng.cacheStats();
  // Same instance, one more hit, no more misses.
  EXPECT_EQ(cold.get(), warm.get());
  EXPECT_EQ(afterWarm.hits, afterCold.hits + 1);
  EXPECT_EQ(afterWarm.misses, afterCold.misses);
}

TEST(DepGraphEngine, ThresholdChangesMissAndExecOptionsDoNot) {
  engine::AnalysisEngine eng(apps::buildPipelineTrace({}));
  const auto base = eng.depAnalysis();
  // Execution fields are not part of the fingerprint.
  DepAnalysisOptions execOnly;
  execOnly.threads = 8;
  execOnly.grainSizeRanks = 4;
  EXPECT_EQ(eng.depAnalysis(execOnly).get(), base.get());
  // A threshold change is a different stage key.
  DepAnalysisOptions tightened;
  tightened.serialization.rankShareThreshold = 0.9;
  EXPECT_NE(eng.depAnalysis(tightened).get(), base.get());
}

TEST(DepGraphEngine, ReportMatchesTheLibraryFormatter) {
  const Trace tr = apps::buildStencilTrace({});
  engine::AnalysisEngine eng(apps::buildStencilTrace({}));
  EXPECT_EQ(eng.formatDepReport(),
            formatDepAnalysis(tr, analyzeDependencies(tr)));
}

// ---- lint rules ------------------------------------------------------------

bool hasFinding(const lint::LintReport& report, const std::string& rule,
                trace::ProcessId process) {
  for (const lint::Finding& f : report.findings) {
    if (f.rule == rule && f.process == process) {
      return true;
    }
  }
  return false;
}

TEST(DepGraphLint, PipelineFiresTheSerializationRules) {
  const apps::PipelineConfig cfg;
  const Trace tr = apps::buildPipelineTrace(cfg);
  const auto slow = static_cast<trace::ProcessId>(apps::pipelineSlowRank(cfg));
  const lint::LintReport report = lint::lintTrace(tr);
  EXPECT_TRUE(hasFinding(report, "critical-path-dominated-rank", slow))
      << formatLintReport(report);
  EXPECT_TRUE(hasFinding(report, "serialization-bottleneck", slow))
      << formatLintReport(report);
}

TEST(DepGraphLint, StencilFiresTheIdleWaveRule) {
  const apps::StencilConfig cfg;
  const Trace tr = apps::buildStencilTrace(cfg);
  const auto delayed =
      static_cast<trace::ProcessId>(apps::stencilDelayRank(cfg));
  const lint::LintReport report = lint::lintTrace(tr);
  EXPECT_TRUE(hasFinding(report, "idle-wave-propagation", delayed))
      << formatLintReport(report);
}

TEST(DepGraphLint, RulesRespectTheConfiguredThresholds) {
  // With an unreachable rank-share threshold the dominated-rank rule goes
  // quiet; the bottleneck rule follows its own threshold.
  const Trace tr = apps::buildPipelineTrace({});
  lint::LintOptions options;
  options.serialization.rankShareThreshold = 1.1;
  options.serialization.functionShareThreshold = 1.1;
  options.idleWave.minRanks = 1000;
  const lint::LintReport report = lint::lintTrace(tr, options);
  for (const lint::Finding& f : report.findings) {
    EXPECT_NE(f.rule, "critical-path-dominated-rank");
    EXPECT_NE(f.rule, "serialization-bottleneck");
    EXPECT_NE(f.rule, "idle-wave-propagation");
  }
}

// ---- robustness ------------------------------------------------------------

TEST(DepGraphRobustness, CyclicTimestampsTerminateViaTheVisitedGuard) {
  // Hand-built garbage: timestamps run backward across a matched pair in
  // both directions, which would cycle a naive backward walk.
  Trace tr;
  tr.functions.intern("f", "APP");
  for (int p = 0; p < 2; ++p) {
    trace::ProcessTrace proc;
    proc.name = "p" + std::to_string(p);
    const auto peer = static_cast<trace::ProcessId>(1 - p);
    proc.events.push_back(Event::mpiRecv(5, peer, 0, 8));
    proc.events.push_back(Event::mpiSend(100, peer, 0, 8));
    proc.events.push_back(Event::mpiRecv(3, peer, 1, 8));
    proc.events.push_back(Event::mpiSend(90, peer, 1, 8));
    tr.processes.push_back(std::move(proc));
  }
  DepAnalysis a;
  ASSERT_NO_THROW(a = analyzeDependencies(tr));
  EXPECT_NO_THROW(exportDepAnalysisString(tr, a, ExportFormat::Text));
  EXPECT_NO_THROW(exportDepAnalysisString(tr, a, ExportFormat::Json));
  EXPECT_NO_THROW(exportDepAnalysisString(tr, a, ExportFormat::Csv));
}

TEST(DepGraphRobustness, HostileShapesNeverThrow) {
  // Empty trace.
  const Trace empty;
  EXPECT_NO_THROW(analyzeDependencies(empty));

  // Events referencing undefined functions, non-monotone clocks,
  // unmatched traffic in both directions.
  Trace tr;
  trace::ProcessTrace proc;
  proc.name = "p0";
  proc.events.push_back(Event::enter(50, 99));
  proc.events.push_back(Event::mpiSend(10, 1, 0, 8));
  proc.events.push_back(Event::leave(5, 99));
  proc.events.push_back(Event::mpiRecv(2, 7, 3, 8));
  tr.processes.push_back(std::move(proc));
  DepAnalysis a;
  ASSERT_NO_THROW(a = analyzeDependencies(tr));
  EXPECT_EQ(a.graphStats.unmatchedRecvs + a.graphStats.invalidEndpoints +
                a.graphStats.unmatchedSends,
            2u);
  EXPECT_NO_THROW(formatDepAnalysis(tr, a));
}

}  // namespace
}  // namespace perfvar::analysis
