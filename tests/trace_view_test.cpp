/// \file trace_view_test.cpp
/// The TraceView contract: eager and out-of-core backends are
/// interchangeable. The differential suite pins byte-identical analysis
/// output between the two at several thread counts, the streamed scale
/// writer against the one-shot serializer, LRU bounds of the shard cache,
/// and the salvage path on FaultInjector-corrupted files.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/export.hpp"
#include "analysis/pipeline.hpp"
#include "apps/scale_synthetic.hpp"
#include "lint/lint.hpp"
#include "trace/binary_io.hpp"
#include "trace/fault_injection.hpp"
#include "trace/filter.hpp"
#include "trace/stats.hpp"
#include "trace/view.hpp"
#include "util/error.hpp"

namespace {

using namespace perfvar;
namespace ft = perfvar::testing;

/// Fixture files are pid-unique: ctest runs every TEST as its own
/// process from one working directory (see tool_cli_test.cpp).
std::string uniquePath(const std::string& stem) {
  return stem + "_" + std::to_string(getpid()) + ".pvt";
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void writeFile(const std::string& path, const ft::Image& image) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
}

/// Small scale scenario with enough ranks for real variation and a
/// guaranteed culprit subset (hiccupPerMille cranked up).
apps::ScaleConfig smallConfig() {
  apps::ScaleConfig cfg;
  cfg.ranks = 24;
  cfg.iterations = 8;
  cfg.hiccupPerMille = 100;
  return cfg;
}

/// RAII deletion of a fixture file.
struct FileGuard {
  explicit FileGuard(std::string p) : path(std::move(p)) {}
  ~FileGuard() { std::remove(path.c_str()); }
  std::string path;
};

TEST(ScaleSynthetic, StreamedFileMatchesEagerSave) {
  const apps::ScaleConfig cfg = smallConfig();
  const FileGuard streamed(uniquePath("view_streamed"));
  const FileGuard eager(uniquePath("view_eager_save"));

  const apps::ScaleWriteResult written =
      apps::writeScaleTrace(streamed.path, cfg);
  EXPECT_EQ(written.ranks, cfg.ranks);
  EXPECT_GT(written.culpritRanks, 0u);

  const trace::Trace built = apps::buildScaleTrace(cfg);
  EXPECT_EQ(written.events, built.eventCount());
  trace::BinaryWriteOptions v2;
  v2.version = trace::kBinaryFormatV2;
  trace::saveBinaryFile(built, eager.path, v2);

  const std::string streamedBytes = readFile(streamed.path);
  ASSERT_FALSE(streamedBytes.empty());
  EXPECT_EQ(streamedBytes, readFile(eager.path))
      << "V2StreamWriter must be byte-identical to writeBinary v2";
}

TEST(ScaleSynthetic, RankEventsAreDeterministic) {
  const apps::ScaleConfig cfg = smallConfig();
  trace::FunctionRegistry f1, f2;
  trace::MetricRegistry m1, m2;
  const apps::ScaleDefs d1 = apps::registerScaleDefs(f1, m1);
  const apps::ScaleDefs d2 = apps::registerScaleDefs(f2, m2);
  for (trace::ProcessId p = 0; p < cfg.ranks; ++p) {
    EXPECT_EQ(apps::scaleRankEvents(cfg, p, d1),
              apps::scaleRankEvents(cfg, p, d2));
  }
}

/// The tentpole guarantee: every report is byte-identical between the
/// eager and the out-of-core backend, at every thread count.
TEST(TraceViewDifferential, LazyReportsMatchEagerByteForByte) {
  const apps::ScaleConfig cfg = smallConfig();
  const FileGuard file(uniquePath("view_diff"));
  apps::writeScaleTrace(file.path, cfg);

  const trace::Trace eagerTrace = apps::buildScaleTrace(cfg);
  const trace::TraceView eager(eagerTrace);
  const trace::TraceView lazy = trace::TraceView::openFile(file.path);
  ASSERT_TRUE(lazy.valid());
  EXPECT_EQ(lazy.processCount(), eager.processCount());
  EXPECT_EQ(lazy.eventCount(), eager.eventCount());
  EXPECT_EQ(lazy.startTime(), eager.startTime());
  EXPECT_EQ(lazy.endTime(), eager.endTime());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    analysis::PipelineOptions opts;
    opts.threads = threads;
    const auto eagerResult = analysis::analyzeTrace(eager, opts);
    const auto lazyResult = analysis::analyzeTrace(lazy, opts);
    EXPECT_EQ(analysis::formatAnalysis(eager, eagerResult),
              analysis::formatAnalysis(lazy, lazyResult));
    EXPECT_EQ(analysis::exportReportString(eager, eagerResult,
                                           analysis::ExportFormat::Json),
              analysis::exportReportString(lazy, lazyResult,
                                           analysis::ExportFormat::Json));
    EXPECT_EQ(analysis::exportReportString(eager, eagerResult,
                                           analysis::ExportFormat::Csv),
              analysis::exportReportString(lazy, lazyResult,
                                           analysis::ExportFormat::Csv));

    lint::LintOptions lintOpts;
    lintOpts.threads = threads;
    EXPECT_EQ(lint::formatLintReport(lint::lintTrace(eager, lintOpts)),
              lint::formatLintReport(lint::lintTrace(lazy, lintOpts)));
  }

  EXPECT_EQ(trace::formatStats(trace::computeStats(eager)),
            trace::formatStats(trace::computeStats(lazy)));
  EXPECT_TRUE(lint::validateStructure(lazy).empty());
}

TEST(TraceViewDifferential, SubViewsMatchEagerSelect) {
  const apps::ScaleConfig cfg = smallConfig();
  const FileGuard file(uniquePath("view_select"));
  apps::writeScaleTrace(file.path, cfg);

  const trace::Trace eagerTrace = apps::buildScaleTrace(cfg);
  const std::vector<trace::ProcessId> keep{3, 5, 7, 11};
  const trace::Trace eagerSel = trace::selectProcesses(eagerTrace, keep);
  const trace::TraceView lazySel =
      trace::TraceView::openFile(file.path).selectProcesses(keep);

  ASSERT_EQ(lazySel.processCount(), eagerSel.processCount());
  for (trace::ProcessId p = 0; p < lazySel.processCount(); ++p) {
    EXPECT_EQ(lazySel.processName(p), eagerSel.processes[p].name);
    const trace::RankPin pin = lazySel.rank(p);
    const trace::EventSpan events = pin.events();
    ASSERT_EQ(events.size(), eagerSel.processes[p].events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i], eagerSel.processes[p].events[i]);
    }
  }
  EXPECT_EQ(trace::formatStats(trace::computeStats(trace::TraceView(eagerSel))),
            trace::formatStats(trace::computeStats(lazySel)));
}

TEST(TraceViewLru, EvictionStaysWithinBudgetAndPinsSurvive) {
  apps::ScaleConfig cfg = smallConfig();
  cfg.ranks = 32;
  const FileGuard file(uniquePath("view_lru"));
  apps::writeScaleTrace(file.path, cfg);

  // Budget of roughly two decoded shards, so a sequential sweep of the
  // 32 ranks must evict.
  const trace::Trace eagerTrace = apps::buildScaleTrace(cfg);
  const std::size_t shardBytes =
      eagerTrace.processes[0].events.size() * sizeof(trace::Event);
  trace::TraceViewOptions opts;
  opts.shardBudgetBytes = 2 * shardBytes;
  const trace::TraceView lazy = trace::TraceView::openFile(file.path, opts);

  // Hold rank 0 pinned across the sweep: eviction must not invalidate it.
  const trace::RankPin pinned = lazy.rank(0);
  for (trace::ProcessId p = 0; p < cfg.ranks; ++p) {
    const trace::RankPin pin = lazy.rank(p);
    ASSERT_EQ(pin.events().size(), eagerTrace.processes[p].events.size());
  }
  const trace::TraceViewStats stats = lazy.stats();
  EXPECT_GT(stats.shardEvictions, 0u) << "sweep must exceed the budget";
  EXPECT_GE(stats.shardDecodes, static_cast<std::uint64_t>(cfg.ranks));
  // The cache may overshoot by at most the shard being brought in (plus
  // the held pin, whose shard no longer counts once evicted).
  EXPECT_LE(stats.residentBytes, opts.shardBudgetBytes + shardBytes);
  EXPECT_LE(stats.peakResidentBytes, opts.shardBudgetBytes + 2 * shardBytes);

  // The held pin still reads the right data after its shard was evicted.
  const trace::EventSpan span = pinned.events();
  ASSERT_EQ(span.size(), eagerTrace.processes[0].events.size());
  for (std::size_t i = 0; i < span.size(); ++i) {
    ASSERT_EQ(span[i], eagerTrace.processes[0].events[i]);
  }

  // Re-pinning a cached rank is a hit, not a decode.
  const std::uint64_t decodesBefore = lazy.stats().shardDecodes;
  const trace::ProcessId last = static_cast<trace::ProcessId>(cfg.ranks - 1);
  const trace::RankPin again = lazy.rank(last);
  EXPECT_EQ(lazy.stats().shardDecodes, decodesBefore);
  EXPECT_GT(lazy.stats().shardHits, 0u);
  (void)again;
}

TEST(TraceViewSalvage, CorruptBlocksQuarantineIdenticallyToEagerSalvage) {
  const apps::ScaleConfig cfg = smallConfig();
  const trace::Trace built = apps::buildScaleTrace(cfg);
  const ft::Image clean = ft::encodeImage(built, trace::kBinaryFormatV2);

  // Three distinct faults on three ranks: a zeroed table entry, a lying
  // event count, and flipped bits inside a block payload.
  ft::FaultInjector inj(2026);
  ft::Image corrupt = ft::FaultInjector::zeroTableEntry(clean, 1);
  corrupt = ft::FaultInjector::oversizeCount(corrupt, 2);
  {
    const trace::BinaryFileInfo info = [&] {
      const FileGuard probe(uniquePath("view_salvage_probe"));
      writeFile(probe.path, clean);
      return trace::inspectBinaryFile(probe.path);
    }();
    const trace::BinaryBlockInfo& b3 = info.blocks[3];
    corrupt = inj.bitFlip(corrupt, static_cast<std::size_t>(b3.offset),
                          static_cast<std::size_t>(b3.offset + b3.bytes), 4);
  }
  const FileGuard file(uniquePath("view_salvage"));
  writeFile(file.path, corrupt);

  // Strict lazy open must refuse the file (at open or first access).
  EXPECT_THROW(
      {
        const trace::TraceView strict =
            trace::TraceView::openFile(file.path);
        for (trace::ProcessId p = 0; p < strict.processCount(); ++p) {
          (void)strict.rank(p);
        }
      },
      Error);

  // Salvage: the lazy open quarantines exactly what the eager load does.
  trace::LoadReport eagerReport;
  trace::BinaryReadOptions readOpts;
  readOpts.recovery = trace::RecoveryMode::Salvage;
  readOpts.report = &eagerReport;
  const trace::Trace eagerTrace = trace::loadBinaryFile(file.path, readOpts);

  trace::LoadReport lazyReport;
  trace::TraceViewOptions viewOpts;
  viewOpts.recovery = trace::RecoveryMode::Salvage;
  viewOpts.report = &lazyReport;
  const trace::TraceView lazy =
      trace::TraceView::openFile(file.path, viewOpts);

  EXPECT_EQ(lazyReport.quarantinedCount(), eagerReport.quarantinedCount());
  ASSERT_EQ(lazy.quarantined().size(), eagerTrace.quarantined.size());
  for (std::size_t i = 0; i < lazy.quarantined().size(); ++i) {
    EXPECT_EQ(lazy.quarantined()[i].process,
              eagerTrace.quarantined[i].process);
    EXPECT_EQ(lazy.quarantined()[i].error, eagerTrace.quarantined[i].error);
  }

  // Analysis over the degraded trace is byte-identical too.
  const trace::TraceView eager(eagerTrace);
  analysis::PipelineOptions opts;
  EXPECT_EQ(analysis::formatAnalysis(eager, analysis::analyzeTrace(eager, opts)),
            analysis::formatAnalysis(lazy, analysis::analyzeTrace(lazy, opts)));
  EXPECT_EQ(lint::formatLintReport(lint::lintTrace(eager)),
            lint::formatLintReport(lint::lintTrace(lazy)));
}

TEST(TraceViewSemantics, InvalidViewAndOwnership) {
  const trace::TraceView invalid;
  EXPECT_FALSE(invalid.valid());

  trace::Trace tr = apps::buildScaleTrace([] {
    apps::ScaleConfig c;
    c.ranks = 2;
    c.iterations = 2;
    return c;
  }());
  const std::size_t events = tr.eventCount();
  const trace::TraceView owned = trace::TraceView::owned(std::move(tr));
  EXPECT_TRUE(owned.valid());
  EXPECT_EQ(owned.eventCount(), events);
  EXPECT_NE(owned.eagerOrNull(), nullptr);

  // Copies share one backend (cache keying depends on this).
  const trace::TraceView copy = owned;
  EXPECT_EQ(copy.backendIdentity(), owned.backendIdentity());

  const trace::Trace materialized = owned.materialize();
  EXPECT_EQ(materialized.eventCount(), events);
}

}  // namespace
