/// Randomized whole-stack property tests: generate random (but valid)
/// message-passing programs, simulate them, and check cross-cutting
/// invariants of the produced traces and of the full analysis pipeline.

#include <cmath>
#include <gtest/gtest.h>

#include "analysis/overlay.hpp"
#include "analysis/pipeline.hpp"
#include "profile/profile.hpp"
#include "sim/program.hpp"
#include "sim/simulator.hpp"
#include "trace/binary_io.hpp"
#include "trace/stats.hpp"
#include "util/rng.hpp"
#include "lint/lint.hpp"

#include <sstream>

namespace perfvar {
namespace {

struct GeneratedRun {
  trace::Trace tr;
  trace::FunctionId stepFunction;
  std::size_t iterations;
};

/// Random SPMD program: `ranks` ranks run `iters` iterations of
/// enter(step) { compute; [maybe p2p ring exchange]; collective } leave.
GeneratedRun generate(std::uint64_t seed) {
  Rng rng(seed);
  const auto ranks = static_cast<std::uint32_t>(rng.uniformInt(2, 12));
  const auto iters = static_cast<std::size_t>(rng.uniformInt(3, 25));
  const bool useRing = rng.uniform() < 0.5;
  const bool useAllreduce = rng.uniform() < 0.5;

  sim::ProgramBuilder b(ranks);
  const auto fStep = b.function("step", "APP");
  const auto fWork = b.function("work", "APP");
  for (std::size_t i = 0; i < iters; ++i) {
    // Per-iteration per-rank base times, same for all iterations of a
    // rank except random spikes.
    for (std::uint32_t r = 0; r < ranks; ++r) {
      b.enter(r, fStep);
      double work = 1e-4 * static_cast<double>(1 + (r * 7 + i * 3) % 9);
      sim::ComputeAttrs attrs;
      if (rng.uniform() < 0.05) {
        attrs.osDelay = rng.uniform(1e-4, 5e-3);  // random interruption
      }
      b.compute(r, fWork, work, attrs);
      if (useRing && ranks >= 2) {
        const std::uint32_t next = (r + 1) % ranks;
        const std::uint32_t prev = (r + ranks - 1) % ranks;
        b.send(r, next, static_cast<std::uint32_t>(i), 512);
        b.recv(r, prev, static_cast<std::uint32_t>(i));
      }
      if (useAllreduce) {
        b.allreduce(r, 64);
      } else {
        b.barrier(r);
      }
      b.leave(r, fStep);
    }
  }
  GeneratedRun run;
  sim::SimOptions opts;
  opts.noise.sigma = rng.uniform(0.0, 0.2);
  opts.noise.seed = seed * 977;
  run.tr = sim::simulate(b.finish(), opts);
  run.stepFunction = fStep;
  run.iterations = iters;
  return run;
}

class PipelineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSweep, TraceIsStructurallyValid) {
  const GeneratedRun run = generate(GetParam());
  EXPECT_TRUE(lint::validateStructure(run.tr).empty());
}

TEST_P(PipelineSweep, PipelineInvariantsHold) {
  const GeneratedRun run = generate(GetParam());
  const analysis::AnalysisResult result = analysis::analyzeTrace(run.tr);

  // The step wrapper dominates by construction.
  EXPECT_EQ(result.segmentFunction, run.stepFunction);

  // Exactly `iterations` segments per process.
  for (std::size_t p = 0; p < run.tr.processCount(); ++p) {
    EXPECT_EQ(result.sos->process(static_cast<trace::ProcessId>(p)).size(),
              run.iterations);
  }

  // Per-segment invariants.
  for (const auto& per : result.sos->all()) {
    for (const auto& seg : per) {
      EXPECT_LE(seg.syncTime, seg.segment.inclusive());
      EXPECT_EQ(seg.sosTime + seg.syncTime, seg.segment.inclusive());
      // MPI paradigm time within the segment >= subtracted sync time is an
      // equality here (default classifier == MPI paradigm).
      EXPECT_EQ(seg.paradigmTime[static_cast<std::size_t>(
                    trace::Paradigm::MPI)],
                seg.syncTime);
    }
  }

  // Report totals are consistent with the SOS matrix.
  const auto totals = result.sos->totalSosPerProcess();
  for (std::size_t p = 0; p < totals.size(); ++p) {
    EXPECT_NEAR(result.variation.processes[p].totalSos, totals[p], 1e-9);
  }

  // Hotspots reference existing segments and meet the threshold.
  for (const auto& h : result.variation.hotspots) {
    ASSERT_LT(h.process, run.tr.processCount());
    ASSERT_LT(h.iteration,
              result.sos->process(h.process).size());
    EXPECT_GE(h.globalZ, 3.5);
    EXPECT_NEAR(h.sosSeconds, result.sos->sosSeconds(h.process, h.iteration),
                1e-12);
  }

  // Iteration stats: min <= mean <= max, imbalance >= 0.
  for (const auto& it : result.variation.iterations) {
    EXPECT_LE(it.minSos, it.meanSos + 1e-12);
    EXPECT_LE(it.meanSos, it.maxSos + 1e-12);
    EXPECT_GE(it.imbalance, 0.0);
    EXPECT_LT(it.slowestProcess, run.tr.processCount());
  }
}

TEST_P(PipelineSweep, SosNeverExceedsComputeSideOfTheProgram) {
  // Global conservation: summed SOS == summed duration - summed sync.
  const GeneratedRun run = generate(GetParam());
  const auto sos = analysis::analyzeSos(run.tr, run.stepFunction);
  long double sumSos = 0;
  long double sumDur = 0;
  long double sumSync = 0;
  for (const auto& per : sos.all()) {
    for (const auto& seg : per) {
      sumSos += static_cast<long double>(seg.sosTime);
      sumDur += static_cast<long double>(seg.segment.inclusive());
      sumSync += static_cast<long double>(seg.syncTime);
    }
  }
  EXPECT_EQ(sumSos + sumSync, sumDur);
}

/// Checks the SOS bound/count invariants on one pipeline result:
///  * every segment's SOS-time is >= 0 and <= its inclusive duration,
///  * the per-rank segment counts sum to the totals the SosResult and the
///    variation report advertise.
void expectSosInvariants(const analysis::AnalysisResult& result) {
  std::size_t perRankSum = 0;
  for (const auto& per : result.sos->all()) {
    perRankSum += per.size();
    for (const auto& seg : per) {
      EXPECT_GE(seg.sosTime, 0u);
      EXPECT_LE(seg.sosTime, seg.segment.inclusive());
    }
  }
  EXPECT_EQ(perRankSum, result.sos->allSosSeconds().size());
  EXPECT_EQ(perRankSum, result.variation.sosSummary.count);
  std::size_t reportedSum = 0;
  for (const auto& ps : result.variation.processes) {
    reportedSum += ps.segments;
  }
  EXPECT_EQ(perRankSum, reportedSum);
}

TEST_P(PipelineSweep, SosBoundsAndSegmentCountsHold) {
  const GeneratedRun run = generate(GetParam());
  expectSosInvariants(analysis::analyzeTrace(run.tr));
}

TEST_P(PipelineSweep, SosInvariantsHoldUnderTheParallelPipeline) {
  const GeneratedRun run = generate(GetParam());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    analysis::PipelineOptions opts;
    opts.threads = threads;
    const auto result = analysis::analyzeTrace(run.tr, opts);
    expectSosInvariants(result);
    // And the parallel engine's SOS values equal the serial ones.
    const auto serial = analysis::analyzeSos(run.tr, run.stepFunction);
    EXPECT_EQ(serial.allSosSeconds(), result.sos->allSosSeconds());
  }
}

TEST_P(PipelineSweep, SerializationPreservesTheAnalysis) {
  const GeneratedRun run = generate(GetParam());
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  trace::writeBinary(run.tr, buf);
  const trace::Trace loaded = trace::readBinary(buf);
  const auto a = analysis::analyzeSos(run.tr, run.stepFunction);
  const auto b = analysis::analyzeSos(loaded, run.stepFunction);
  EXPECT_EQ(a.allSosSeconds(), b.allSosSeconds());
}

TEST_P(PipelineSweep, OverlayAgreesWithSegments) {
  const GeneratedRun run = generate(GetParam());
  const auto sos = analysis::analyzeSos(run.tr, run.stepFunction);
  const auto overlay = analysis::MetricOverlay::build(sos);
  for (std::size_t p = 0; p < sos.processCount(); ++p) {
    for (const auto& seg : sos.process(static_cast<trace::ProcessId>(p))) {
      if (seg.segment.inclusive() == 0) {
        continue;
      }
      const trace::Timestamp mid =
          seg.segment.enter + seg.segment.inclusive() / 2;
      const double value = overlay.at(static_cast<trace::ProcessId>(p), mid);
      EXPECT_NEAR(value, run.tr.toSeconds(seg.sosTime), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010, 1111, 1212));

}  // namespace
}  // namespace perfvar
