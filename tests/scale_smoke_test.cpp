/// \file scale_smoke_test.cpp
/// 10k-rank out-of-core smoke (ctest label: scale). Streams a five-figure
/// -rank trace to disk, analyzes it through the lazy backend under a
/// deliberately small shard budget, and checks that resident memory
/// stayed bounded while the report still names the planted culprits.
/// This is the CI-sized stand-in for the 100k-rank walkthrough in the
/// README; the BM_Scale bench family covers the full sizes.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "analysis/pipeline.hpp"
#include "apps/scale_synthetic.hpp"
#include "trace/stats.hpp"
#include "trace/view.hpp"

namespace {

using namespace perfvar;

TEST(ScaleSmoke, TenThousandRanksAnalyzeUnderBoundedMemory) {
  apps::ScaleConfig cfg;
  cfg.ranks = 10'000;
  cfg.iterations = 3;
  const std::string path =
      "scale_smoke_10k_" + std::to_string(getpid()) + ".pvt";

  const apps::ScaleWriteResult written = apps::writeScaleTrace(path, cfg);
  EXPECT_EQ(written.ranks, 10'000u);
  EXPECT_GT(written.culpritRanks, 0u);

  // 4 MiB decoded-shard budget: ~23 events/rank * 10k ranks would be
  // several MiB decoded at once eagerly; the sweep must stay under
  // budget + one shard.
  trace::TraceViewOptions opts;
  opts.shardBudgetBytes = 4ull << 20;
  const trace::TraceView view = trace::TraceView::openFile(path, opts);
  ASSERT_EQ(view.processCount(), cfg.ranks);
  ASSERT_EQ(view.eventCount(), written.events);

  const trace::TraceStats stats = trace::computeStats(view);
  EXPECT_EQ(stats.eventCount, written.events);

  analysis::PipelineOptions pipeline;
  pipeline.threads = 0;  // all hardware threads
  const analysis::AnalysisResult result =
      analysis::analyzeTrace(view, pipeline);
  EXPECT_EQ(view.functions().name(result.segmentFunction), "compute");
  EXPECT_FALSE(result.variation.culpritProcesses.empty());

  const trace::TraceViewStats cache = view.stats();
  EXPECT_GT(cache.shardDecodes, 0u);
  const std::uint64_t maxShardBytes =
      (2 + cfg.iterations * 7) * sizeof(trace::Event) + 4096;
  EXPECT_LE(cache.peakResidentBytes, opts.shardBudgetBytes + maxShardBytes)
      << "lazy analysis exceeded the decoded-shard budget";

  std::remove(path.c_str());
}

}  // namespace
