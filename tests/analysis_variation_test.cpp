#include <gtest/gtest.h>

#include "analysis/pipeline.hpp"
#include "analysis/variation.hpp"
#include "apps/paper_examples.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"

namespace perfvar::analysis {
namespace {

/// Synthetic iterative trace: `procs` processes x `iters` iterations of a
/// `step` function with per-(process, iteration) SOS-time supplied by a
/// callback, plus a barrier absorbing the imbalance.
template <typename WorkFn>
trace::Trace iterativeTrace(std::size_t procs, std::size_t iters,
                            WorkFn&& work) {
  trace::TraceBuilder b(procs);
  const auto fStep = b.defineFunction("step");
  const auto fWork = b.defineFunction("work");
  const auto fMpi =
      b.defineFunction("MPI_Barrier", "MPI", trace::Paradigm::MPI);
  for (std::size_t i = 0; i < iters; ++i) {
    trace::Timestamp slowest = 0;
    for (std::size_t p = 0; p < procs; ++p) {
      slowest = std::max(slowest, work(p, i));
    }
    for (std::size_t p = 0; p < procs; ++p) {
      const trace::Timestamp t0 = static_cast<trace::Timestamp>(i) * 1000;
      const trace::Timestamp w = work(p, i);
      b.enter(p, t0, fStep);
      b.enter(p, t0, fWork);
      b.leave(p, t0 + w, fWork);
      b.enter(p, t0 + w, fMpi);
      b.leave(p, t0 + slowest + 1, fMpi);
      b.leave(p, t0 + slowest + 1, fStep);
    }
  }
  return b.finish();
}

TEST(Variation, DetectsPersistentlySlowProcess) {
  const trace::Trace tr = iterativeTrace(8, 30, [](std::size_t p, std::size_t) {
    return static_cast<trace::Timestamp>(p == 5 ? 160 : 100);
  });
  const auto fStep = *tr.functions.find("step");
  const SosResult sos = analyzeSos(tr, fStep);
  const VariationReport report = analyzeVariation(sos);
  EXPECT_EQ(report.slowestProcess(), 5u);
  ASSERT_FALSE(report.culpritProcesses.empty());
  EXPECT_EQ(report.culpritProcesses[0], 5u);
  EXPECT_GT(report.processes[5].totalZ, 3.0);
  // Every iteration blames process 5.
  for (const auto& it : report.iterations) {
    EXPECT_EQ(it.slowestProcess, 5u);
    EXPECT_NEAR(it.imbalance, 160.0 / 107.5 - 1.0, 1e-9);
  }
}

TEST(Variation, DetectsSingleSlowIteration) {
  const trace::Trace tr =
      iterativeTrace(6, 40, [](std::size_t p, std::size_t i) {
        // Baseline with mild deterministic jitter (real traces are never
        // exactly constant) plus one extreme segment.
        const auto jitter = static_cast<trace::Timestamp>((p * 13 + i * 7) % 9);
        return (p == 2 && i == 17) ? trace::Timestamp{500} : 100 + jitter;
      });
  const auto fStep = *tr.functions.find("step");
  const SosResult sos = analyzeSos(tr, fStep);
  const VariationReport report = analyzeVariation(sos);
  ASSERT_FALSE(report.hotspots.empty());
  EXPECT_EQ(report.hotspots[0].process, 2u);
  EXPECT_EQ(report.hotspots[0].iteration, 17u);
  EXPECT_GT(report.hotspots[0].globalZ, 3.5);
  EXPECT_GT(report.hotspots[0].iterationZ, 3.5);
}

TEST(Variation, DetectsGradualSlowdownTrend) {
  const trace::Trace tr =
      iterativeTrace(4, 50, [](std::size_t, std::size_t i) {
        return static_cast<trace::Timestamp>(100 + 4 * i);
      });
  const auto fStep = *tr.functions.find("step");
  const SosResult sos = analyzeSos(tr, fStep);
  const VariationReport report = analyzeVariation(sos);
  // ~4 ticks/iteration; slopes are reported in seconds (resolution 1e9).
  EXPECT_NEAR(report.sosTrend.slope, 4e-9, 1e-10);
  EXPECT_GT(report.sosTrend.r2, 0.99);
  EXPECT_NEAR(report.durationTrend.slope, 4e-9, 1e-10);
}

TEST(Variation, BalancedRunHasNoCulpritsOrHotspots) {
  const trace::Trace tr =
      iterativeTrace(8, 30, [](std::size_t p, std::size_t i) {
        // Tiny deterministic jitter, no structure.
        return static_cast<trace::Timestamp>(100 + (p * 7 + i * 3) % 5);
      });
  const auto fStep = *tr.functions.find("step");
  const SosResult sos = analyzeSos(tr, fStep);
  const VariationReport report = analyzeVariation(sos);
  EXPECT_TRUE(report.culpritProcesses.empty());
  EXPECT_TRUE(report.hotspots.empty());
}

TEST(Variation, HotspotsAreRankedAndCapped) {
  const trace::Trace tr =
      iterativeTrace(4, 50, [](std::size_t p, std::size_t i) {
        if (i % 5 == 0) {
          return static_cast<trace::Timestamp>(300 + 10 * p);
        }
        return static_cast<trace::Timestamp>(100 + (p * 11 + i * 5) % 7);
      });
  const auto fStep = *tr.functions.find("step");
  const SosResult sos = analyzeSos(tr, fStep);
  VariationOptions opts;
  opts.maxHotspots = 7;
  const VariationReport report = analyzeVariation(sos, opts);
  EXPECT_EQ(report.hotspots.size(), 7u);
  for (std::size_t i = 1; i < report.hotspots.size(); ++i) {
    EXPECT_GE(report.hotspots[i - 1].globalZ, report.hotspots[i].globalZ);
  }
}

TEST(Variation, ProcessesBySosIsSortedDescending) {
  const trace::Trace tr =
      iterativeTrace(5, 10, [](std::size_t p, std::size_t) {
        return static_cast<trace::Timestamp>(100 + 10 * p);
      });
  const auto fStep = *tr.functions.find("step");
  const SosResult sos = analyzeSos(tr, fStep);
  const VariationReport report = analyzeVariation(sos);
  ASSERT_EQ(report.processesBySos.size(), 5u);
  EXPECT_EQ(report.processesBySos.front(), 4u);
  EXPECT_EQ(report.processesBySos.back(), 0u);
  const auto totals = sos.totalSosPerProcess();
  for (std::size_t i = 1; i < report.processesBySos.size(); ++i) {
    EXPECT_GE(totals[report.processesBySos[i - 1]],
              totals[report.processesBySos[i]]);
  }
}

TEST(Variation, ReportFormatsKeyFacts) {
  const trace::Trace tr =
      iterativeTrace(4, 20, [](std::size_t p, std::size_t i) {
        return static_cast<trace::Timestamp>(
            (p == 1 && i == 5) ? 900 : 100);
      });
  const auto fStep = *tr.functions.find("step");
  const SosResult sos = analyzeSos(tr, fStep);
  const VariationReport report = analyzeVariation(sos);
  const std::string text = formatVariationReport(sos, report);
  EXPECT_NE(text.find("segmentation function: step"), std::string::npos);
  EXPECT_NE(text.find("Rank 1"), std::string::npos);
  EXPECT_NE(text.find("top hotspots"), std::string::npos);
}

// --- pipeline ----------------------------------------------------------------

TEST(Pipeline, EndToEndOnFigure3) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const AnalysisResult result = analyzeTrace(tr);
  EXPECT_EQ(tr.functions.name(result.segmentFunction), "a");
  EXPECT_EQ(result.sos->maxSegmentsPerProcess(), 3u);
  const std::string text = formatAnalysis(tr, result);
  EXPECT_NE(text.find("dominant"), std::string::npos);
}

TEST(Pipeline, CandidateIndexSelectsFinerSegmentation) {
  const trace::Trace tr = apps::buildFigure3Trace();
  PipelineOptions opts;
  opts.candidateIndex = 1;
  const AnalysisResult result = analyzeTrace(tr, opts);
  EXPECT_EQ(tr.functions.name(result.segmentFunction), "calc");
}

TEST(Pipeline, OutOfRangeCandidateThrows) {
  const trace::Trace tr = apps::buildFigure3Trace();
  PipelineOptions opts;
  opts.candidateIndex = 99;
  EXPECT_THROW(analyzeTrace(tr, opts), Error);
}

TEST(Pipeline, ThrowsWhenNothingQualifies) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("main");
  b.enter(0, 0, f);
  b.leave(0, 10, f);
  b.enter(1, 0, f);
  b.leave(1, 10, f);
  const trace::Trace tr = b.finish();
  EXPECT_THROW(analyzeTrace(tr), Error);
}

}  // namespace
}  // namespace perfvar::analysis
