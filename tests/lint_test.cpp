/// Lint engine tests: rule-by-rule triggering, the determinism guarantee
/// (byte-identical reports at 1/2/8 threads), options handling
/// (suppression, severity floor, truncation), renderers, the structural
/// forwarder equivalence, and the engine's lint-on-load gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/cosmo_specs.hpp"
#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace perfvar::lint {
namespace {

using trace::Event;
using trace::Trace;

/// Rule ids of all findings, in report order.
std::vector<std::string> ruleIds(const LintReport& report) {
  std::vector<std::string> ids;
  for (const Finding& f : report.findings) {
    ids.push_back(f.rule);
  }
  return ids;
}

bool hasRule(const LintReport& report, const std::string& rule) {
  const auto ids = ruleIds(report);
  return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

/// Options running a single rule in isolation.
LintOptions only(const std::string& rule) {
  LintOptions options;
  options.onlyRules = {rule};
  return options;
}

/// A structurally clean 4-rank trace with messages, metrics and a
/// dominant function (8 invocations per rank >= 2 * 4 ranks).
Trace cleanTrace() {
  trace::TraceBuilder b(4);
  const auto work = b.defineFunction("work", "APP");
  const auto send = b.defineFunction("MPI_Send", "MPI", trace::Paradigm::MPI);
  const auto m = b.defineMetric("cycles", "count");
  for (trace::ProcessId p = 0; p < 4; ++p) {
    trace::Timestamp t = 10 * (p + 1);
    for (std::size_t it = 0; it < 8; ++it) {
      b.enter(p, t, work);
      t += 50 + p;
      b.metric(p, t, m, static_cast<double>(it));
      b.enter(p, t, send);
      const auto peer = static_cast<trace::ProcessId>((p + 1) % 4);
      b.mpiSend(p, t + 1, peer, 0, 64);
      const auto src = static_cast<trace::ProcessId>((p + 3) % 4);
      b.mpiRecv(p, t + 2, src, 0, 64);
      t += 10;
      b.leave(p, t, send);
      t += 5;
      b.leave(p, t, work);
      t += 3;
    }
  }
  return b.finish();
}

/// A trace violating many rules at once, spread over several ranks, used
/// by the determinism tests. Built by hand: TraceBuilder refuses most of
/// these pathologies.
Trace dirtyTrace(std::size_t ranks = 8) {
  Trace tr;
  const auto f = tr.functions.intern("f", "APP");
  const auto g = tr.functions.intern("g", "APP");
  tr.functions.intern("never-called", "APP");
  tr.functions.intern("MPI_Wait", "APP");  // wrong paradigm: sync-coverage
  tr.metrics.intern("cycles", "count");
  for (std::size_t p = 0; p < ranks; ++p) {
    trace::ProcessTrace proc;
    proc.name = "Rank " + std::to_string(p);
    proc.events.push_back(Event::enter(10, f));
    proc.events.push_back(Event::enter(20, g));
    proc.events.push_back(Event::leave(20, g));     // zero-duration
    proc.events.push_back(Event::leave(15, f));     // timestamp decreases
    proc.events.push_back(Event::enter(30, 99));    // undefined function
    proc.events.push_back(Event::leave(35, g));     // mismatched leave
    proc.events.push_back(Event::metric(40, 7, 1)); // undefined metric
    proc.events.push_back(
        Event::mpiSend(45, static_cast<trace::ProcessId>(p), 0, 8));  // self
    proc.events.push_back(Event::mpiSend(50, 1000, 0, 8));  // bad peer
    proc.events.push_back(Event::enter(60, f));     // left unclosed
    tr.processes.push_back(std::move(proc));
  }
  return tr;
}

// ---- clean traces ----------------------------------------------------------

TEST(Lint, CleanTraceHasNoFindings) {
  const Trace tr = cleanTrace();
  const LintReport report = lintTrace(tr);
  EXPECT_TRUE(report.clean()) << formatLintReport(report);
  EXPECT_EQ(report.processCount, 4u);
  EXPECT_EQ(report.rulesRun.size(),
            RuleRegistry::builtin().rules().size());
}

TEST(Lint, CleanScenarioTraceHasNoFindings) {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 12;
  const auto scenario = apps::buildCosmoSpecs(cfg);
  const Trace tr = sim::simulate(scenario.program, scenario.simOptions);
  const LintReport report = lintTrace(tr);
  EXPECT_TRUE(report.clean()) << formatLintReport(report);
}

// ---- per-rule triggering ---------------------------------------------------

TEST(LintRules, ClockMonotonicity) {
  Trace tr;
  const auto f = tr.functions.intern("f");
  tr.processes.push_back(
      {"p0", {Event::enter(10, f), Event::leave(5, f)}});
  const LintReport report = lintTrace(tr);
  ASSERT_TRUE(hasRule(report, "clock-monotonicity"));
  const Finding& finding = report.findings.front();
  EXPECT_EQ(finding.rule, "clock-monotonicity");
  EXPECT_EQ(finding.severity, Severity::Error);
  EXPECT_EQ(finding.process, 0);
  EXPECT_EQ(finding.eventIndex, 1);
  EXPECT_EQ(finding.message, "timestamp decreases");
}

TEST(LintRules, StackBalanceVariants) {
  Trace tr;
  const auto f = tr.functions.intern("f");
  const auto g = tr.functions.intern("g");
  tr.processes.push_back({"p0", {Event::leave(1, f)}});
  tr.processes.push_back(
      {"p1", {Event::enter(1, f), Event::leave(2, g), Event::leave(3, f)}});
  tr.processes.push_back({"p2", {Event::enter(1, f)}});
  const LintReport report = lintTrace(tr, only("stack-balance"));
  ASSERT_EQ(report.findings.size(), 3u);
  EXPECT_EQ(report.findings[0].message, "leave without matching enter");
  EXPECT_EQ(report.findings[1].message,
            "leave of 'g' does not match innermost enter 'f'");
  EXPECT_EQ(report.findings[2].message,
            "1 unclosed enter frame(s), innermost 'f'");
  EXPECT_EQ(report.findings[2].eventIndex, 1);  // == events.size()
}

TEST(LintRules, UndefinedRefsAndEndpoints) {
  Trace tr;
  tr.functions.intern("f");
  tr.metrics.intern("m");
  tr.processes.push_back({"p0",
                          {Event::enter(1, 5), Event::leave(2, 5),
                           Event::metric(3, 9, 1.0), Event::mpiSend(4, 7, 0, 1),
                           Event::mpiRecv(5, 0, 0, 1)}});
  const LintReport report = lintTrace(tr);
  EXPECT_TRUE(hasRule(report, "undefined-function-ref"));
  EXPECT_TRUE(hasRule(report, "undefined-metric-ref"));
  EXPECT_TRUE(hasRule(report, "message-endpoints"));
  // The self-recv at event 4 (process 0 receiving from process 0).
  bool foundSelf = false;
  for (const Finding& f : report.findings) {
    foundSelf |= f.message == "message to/from self";
  }
  EXPECT_TRUE(foundSelf);
}

TEST(LintRules, MessagePairingCountsMismatch) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("work");
  for (trace::ProcessId p = 0; p < 2; ++p) {
    for (int i = 0; i < 4; ++i) {
      b.enter(p, 10 * i + p, f);
      b.leave(p, 10 * i + 5 + p, f);
    }
  }
  b.mpiSend(0, 100, 1, 0, 8);
  b.mpiSend(0, 101, 1, 0, 8);
  b.mpiRecv(1, 102, 0, 0, 8);  // only one of the two sends is received
  const Trace tr = b.finish();
  const LintReport report = lintTrace(tr);
  ASSERT_TRUE(hasRule(report, "message-pairing"));
  bool found = false;
  for (const Finding& finding : report.findings) {
    if (finding.rule == "message-pairing") {
      EXPECT_EQ(finding.message,
                "rank 0 sent 2 message(s) to rank 1, which received 1");
      EXPECT_EQ(finding.severity, Severity::Warning);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintRules, DefinitionIntegrityUnreferencedFunction) {
  Trace tr = cleanTrace();
  tr.functions.intern("dead-code", "APP");
  const LintReport report = lintTrace(tr);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "definition-integrity");
  EXPECT_EQ(report.findings[0].severity, Severity::Info);
  EXPECT_NE(report.findings[0].message.find("dead-code"), std::string::npos);
}

TEST(LintRules, SyncCoverageFlagsMisparadigmedNames) {
  Trace tr = cleanTrace();
  // An MPI-named function with Compute paradigm: the Paradigm classifier
  // will not subtract its wait time.
  tr.functions.intern("MPI_Allreduce", "APP", trace::Paradigm::Compute);
  const LintReport report = lintTrace(tr, only("sync-coverage"));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_NE(report.findings[0].message.find("MPI_Allreduce"),
            std::string::npos);
  EXPECT_EQ(report.findings[0].severity, Severity::Warning);
}

TEST(LintRules, DominantEligibilityWarnsWithoutCandidate) {
  // Every rank calls `main` once: nothing reaches 2 * p invocations.
  trace::TraceBuilder b(4);
  const auto f = b.defineFunction("main");
  for (trace::ProcessId p = 0; p < 4; ++p) {
    b.enter(p, 1, f);
    b.leave(p, 100, f);
  }
  const Trace tr = b.finish();
  const LintReport report = lintTrace(tr);
  ASSERT_TRUE(hasRule(report, "dominant-eligibility"));
}

TEST(LintRules, SegmentSkewWarnsOnNonUniformCounts) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("step");
  for (int i = 0; i < 6; ++i) {  // rank 0: 6 segments
    b.enter(0, 10 * i, f);
    b.leave(0, 10 * i + 5, f);
  }
  for (int i = 0; i < 4; ++i) {  // rank 1: 4 segments
    b.enter(1, 10 * i, f);
    b.leave(1, 10 * i + 5, f);
  }
  const Trace tr = b.finish();
  const LintReport report = lintTrace(tr);
  ASSERT_TRUE(hasRule(report, "segment-skew"));
}

TEST(LintRules, ZeroDurationInvocation) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("work");
  const auto g = b.defineFunction("instant");
  for (int i = 0; i < 3; ++i) {
    b.enter(0, 10 * i, f);
    b.leave(0, 10 * i + 5, f);
  }
  b.enter(0, 40, g);
  b.leave(0, 40, g);
  const Trace tr = b.finish();
  const LintReport report = lintTrace(tr, only("zero-duration"));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].severity, Severity::Info);
  EXPECT_EQ(report.findings[0].message, "zero-duration invocation of 'instant'");
}

TEST(LintRules, QuarantineInteraction) {
  Trace tr = cleanTrace();
  trace::QuarantinedRank q;
  q.process = 2;
  q.name = tr.processes[2].name;
  q.error = ErrorCode::ChecksumMismatch;
  q.eventsSalvaged = 5;
  q.eventsDropped = 7;
  tr.quarantined.push_back(q);
  tr.processes[2].events.clear();  // as a salvage load may leave it
  const LintReport report = lintTrace(tr);
  ASSERT_TRUE(hasRule(report, "quarantine-interaction"));
  bool found = false;
  for (const Finding& f : report.findings) {
    if (f.rule == "quarantine-interaction") {
      EXPECT_EQ(f.severity, Severity::Warning);
      EXPECT_EQ(f.process, 2);
      EXPECT_NE(f.message.find("checksum-mismatch"), std::string::npos);
      EXPECT_NE(f.message.find("5 event(s) salvaged"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LintRules, AllRanksQuarantinedIsAnError) {
  Trace tr = cleanTrace();
  for (trace::ProcessId p = 0; p < 4; ++p) {
    trace::QuarantinedRank q;
    q.process = p;
    q.error = ErrorCode::TruncatedInput;
    tr.quarantined.push_back(q);
  }
  const LintReport report = lintTrace(tr);
  EXPECT_TRUE(report.hasAtLeast(Severity::Error));
  bool found = false;
  for (const Finding& f : report.findings) {
    found |= f.rule == "quarantine-interaction" &&
             f.severity == Severity::Error &&
             f.message.find("nothing left to analyze") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

// ---- determinism -----------------------------------------------------------

TEST(LintDeterminism, ReportsAreByteIdenticalAcrossThreadCounts) {
  const Trace tr = dirtyTrace(8);
  LintOptions serial;
  serial.threads = 1;
  const LintReport reference = lintTrace(tr, serial);
  EXPECT_FALSE(reference.clean());
  for (const std::size_t threads : {2ul, 8ul}) {
    LintOptions options;
    options.threads = threads;
    const LintReport report = lintTrace(tr, options);
    // Structured equality...
    EXPECT_EQ(report.findings, reference.findings) << threads << " threads";
    EXPECT_EQ(report.rulesRun, reference.rulesRun);
    EXPECT_EQ(report.truncated, reference.truncated);
    // ... and byte-identical renderings in every format.
    for (const auto format :
         {analysis::ExportFormat::Text, analysis::ExportFormat::Json,
          analysis::ExportFormat::Csv}) {
      EXPECT_EQ(exportLintReportString(report, format),
                exportLintReportString(reference, format))
          << threads << " threads";
    }
  }
}

TEST(LintDeterminism, ExternalPoolMatchesSerial) {
  const Trace tr = dirtyTrace(5);
  const LintReport reference = lintTrace(tr);
  util::ThreadPool pool(3);
  LintOptions options;
  options.pool = &pool;
  options.grainSizeRanks = 2;
  const LintReport report = lintTrace(tr, options);
  EXPECT_EQ(report.findings, reference.findings);
}

TEST(LintDeterminism, CleanScenarioIdenticalAcrossThreads) {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 12;
  const auto scenario = apps::buildCosmoSpecs(cfg);
  const Trace tr = sim::simulate(scenario.program, scenario.simOptions);
  const std::string reference =
      exportLintReportString(lintTrace(tr), analysis::ExportFormat::Json);
  for (const std::size_t threads : {2ul, 8ul}) {
    LintOptions options;
    options.threads = threads;
    EXPECT_EQ(exportLintReportString(lintTrace(tr, options),
                                     analysis::ExportFormat::Json),
              reference);
  }
}

// ---- options ---------------------------------------------------------------

TEST(LintOptionsTest, DisabledRulesAreSkipped) {
  const Trace tr = dirtyTrace(2);
  LintOptions options;
  options.disabledRules = {"clock-monotonicity", "zero-duration"};
  const LintReport report = lintTrace(tr, options);
  EXPECT_FALSE(hasRule(report, "clock-monotonicity"));
  EXPECT_FALSE(hasRule(report, "zero-duration"));
  EXPECT_TRUE(hasRule(report, "undefined-function-ref"));
  EXPECT_EQ(std::find(report.rulesRun.begin(), report.rulesRun.end(),
                      "clock-monotonicity"),
            report.rulesRun.end());
}

TEST(LintOptionsTest, UnknownSuppressedRuleIsAnInfoFinding) {
  const Trace tr = cleanTrace();
  LintOptions options;
  options.disabledRules = {"no-such-rule"};
  const LintReport report = lintTrace(tr, options);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "lint-config");
  EXPECT_EQ(report.findings[0].severity, Severity::Info);
  EXPECT_NE(report.findings[0].message.find("no-such-rule"),
            std::string::npos);
}

TEST(LintOptionsTest, MinSeverityFiltersAtTheSource) {
  Trace tr = cleanTrace();
  tr.functions.intern("dead-code");  // Info finding
  LintOptions options;
  options.minSeverity = Severity::Warning;
  const LintReport report = lintTrace(tr, options);
  EXPECT_TRUE(report.clean());
}

TEST(LintOptionsTest, MaxFindingsPerRuleTruncates) {
  const Trace tr = dirtyTrace(6);  // 6 ranks x 1 decreasing timestamp
  LintOptions options;
  options.maxFindingsPerRule = 2;
  const LintReport report = lintTrace(tr, options);
  std::size_t clock = 0;
  for (const Finding& f : report.findings) {
    clock += f.rule == "clock-monotonicity" ? 1 : 0;
  }
  EXPECT_EQ(clock, 2u);
  bool noted = false;
  for (const TruncatedRule& t : report.truncated) {
    if (t.rule == "clock-monotonicity") {
      EXPECT_EQ(t.dropped, 4u);
      noted = true;
    }
  }
  EXPECT_TRUE(noted);
}

TEST(LintSeverity, NamesRoundTrip) {
  for (const Severity s :
       {Severity::Info, Severity::Warning, Severity::Error}) {
    EXPECT_EQ(severityFromName(severityName(s)), s);
  }
  EXPECT_THROW(severityFromName("fatal"), Error);
}

// ---- registry --------------------------------------------------------------

class TestRule final : public Rule {
public:
  explicit TestRule(std::string id) : id_(std::move(id)) {}
  std::string_view id() const override { return id_; }
  std::string_view description() const override { return "test rule"; }
  void checkTrace(const RuleContext&, Sink& sink) const override {
    sink.report(Severity::Info, "custom rule ran");
  }

private:
  std::string id_;
};

TEST(LintRegistry, RejectsDuplicateAndMalformedIds) {
  RuleRegistry registry;
  registry.add(std::make_shared<TestRule>("my-rule"));
  EXPECT_THROW(registry.add(std::make_shared<TestRule>("my-rule")), Error);
  EXPECT_THROW(registry.add(std::make_shared<TestRule>("My-Rule")), Error);
  EXPECT_THROW(registry.add(std::make_shared<TestRule>("has spaces")), Error);
  EXPECT_THROW(registry.add(std::make_shared<TestRule>("")), Error);
  EXPECT_THROW(registry.add(nullptr), Error);
  EXPECT_NE(registry.find("my-rule"), nullptr);
  EXPECT_EQ(registry.find("other"), nullptr);
}

TEST(LintRegistry, BuiltinCanBeExtendedByCopy) {
  RuleRegistry registry = RuleRegistry::builtin();
  registry.add(std::make_shared<TestRule>("custom-check"));
  const Trace tr = cleanTrace();
  const LintReport report = lintTrace(tr, {}, registry);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "custom-check");
  EXPECT_EQ(report.findings[0].message, "custom rule ran");
}

TEST(LintRegistry, ThrowingRuleBecomesAFindingNotACrash) {
  class ThrowingRule final : public Rule {
  public:
    std::string_view id() const override { return "throwing-rule"; }
    std::string_view description() const override { return "always throws"; }
    void checkProcess(const RuleContext&, trace::ProcessId,
                      Sink&) const override {
      throw std::runtime_error("per-rank boom");
    }
    void checkTrace(const RuleContext&, Sink&) const override {
      throw std::runtime_error("global boom");
    }
  };
  RuleRegistry registry;
  registry.add(std::make_shared<ThrowingRule>());
  const Trace clean = cleanTrace();
  const LintReport report = lintTrace(clean, {}, registry);
  // One aborted finding per rank plus one for the global phase.
  ASSERT_EQ(report.findings.size(), 5u);
  EXPECT_EQ(report.findings[0].message, "rule aborted: per-rank boom");
  EXPECT_EQ(report.findings[4].message, "rule aborted: global boom");
}

// ---- renderers -------------------------------------------------------------

TEST(LintExport, TextJsonCsvRender) {
  const Trace tr = dirtyTrace(1);
  const LintReport report = lintTrace(tr);
  const std::string text =
      exportLintReportString(report, analysis::ExportFormat::Text);
  EXPECT_NE(text.find("lint: "), std::string::npos);
  EXPECT_NE(text.find("error ["), std::string::npos);
  const std::string json =
      exportLintReportString(report, analysis::ExportFormat::Json);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"lint\":"), std::string::npos);
  EXPECT_NE(json.find("\"findings\":["), std::string::npos);
  const std::string csv =
      exportLintReportString(report, analysis::ExportFormat::Csv);
  EXPECT_EQ(csv.rfind("severity,rule,process,event,message\n", 0), 0u);
  EXPECT_THROW(
      exportLintReportString(report, analysis::ExportFormat::CsvIterations),
      Error);
  EXPECT_THROW(
      exportLintReportString(report, analysis::ExportFormat::CsvHotspots),
      Error);
}

TEST(LintExport, CsvEscapesQuotes) {
  Trace tr;
  tr.functions.intern("fn\"quoted");
  tr.processes.push_back({"p0", {}});
  const LintReport report = lintTrace(tr);  // unreferenced function Info
  const std::string csv =
      exportLintReportString(report, analysis::ExportFormat::Csv);
  EXPECT_NE(csv.find("fn\"\"quoted"), std::string::npos);
}

// ---- structural validation --------------------------------------------------

TEST(ValidateStructure, CleanTraceStaysClean) {
  const Trace tr = cleanTrace();
  EXPECT_TRUE(validateStructure(tr).empty());
  EXPECT_NO_THROW(requireStructurallyValid(tr));
}

TEST(ValidateStructure, IssueOrderMatchesHistoricalValidator) {
  // The historical validator walked each rank once, reporting the
  // timestamp check before the kind checks; it skipped the stack
  // manipulation for undefined function refs. Reproduce its exact issue
  // sequence on a trace hitting every message.
  Trace tr;
  const auto f = tr.functions.intern("f");
  const auto g = tr.functions.intern("g");
  tr.processes.push_back({"p0",
                          {Event::enter(10, f),        // 0
                           Event::leave(5, 99),        // 1: decreases + undef
                           Event::leave(6, g),         // 2: mismatch
                           Event::metric(7, 9, 0.0),   // 3: undef metric
                           Event::mpiSend(8, 0, 0, 1), // 4: self message
                           Event::mpiRecv(9, 42, 0, 1)}});  // 5: bad peer
  const auto issues = validateStructure(tr);
  ASSERT_EQ(issues.size(), 7u);
  EXPECT_EQ(issues[0].eventIndex, 1u);
  EXPECT_EQ(issues[0].message, "timestamp decreases");
  EXPECT_EQ(issues[1].eventIndex, 1u);
  EXPECT_EQ(issues[1].message, "leave references undefined function");
  EXPECT_EQ(issues[2].message,
            "leave of 'g' does not match innermost enter 'f'");
  EXPECT_EQ(issues[3].message, "metric sample references undefined metric");
  EXPECT_EQ(issues[4].message, "message to/from self");
  EXPECT_EQ(issues[5].message, "message references undefined peer process");
  EXPECT_EQ(issues[6].eventIndex, 6u);  // events.size()
  EXPECT_EQ(issues[6].message, "1 unclosed enter frame(s), innermost 'f'");
}

TEST(ValidateStructure, RequireValidThrowsWithContext) {
  Trace tr;
  const auto f = tr.functions.intern("f");
  tr.processes.push_back({"p0", {}});
  tr.processes.push_back({"p1", {Event::leave(1, f)}});
  try {
    requireStructurallyValid(tr);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::MalformedEvent);
    EXPECT_EQ(e.context().rank, 1);
    EXPECT_NE(std::string(e.what()).find("invalid trace (1 issue(s))"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("leave without matching enter"),
              std::string::npos);
  }
}

TEST(ValidateStructure, SemanticRulesDoNotLeakIntoValidate) {
  // A trace with only semantic findings (no dominant candidate, zero
  // durations, unreferenced defs) must still validate cleanly.
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("main");
  b.defineFunction("unused");
  for (trace::ProcessId p = 0; p < 2; ++p) {
    b.enter(p, 0, f);
    b.leave(p, 0, f);  // zero-duration
  }
  const Trace tr = b.finish();
  EXPECT_FALSE(lintTrace(tr).clean());
  EXPECT_TRUE(validateStructure(tr).empty());
}

// ---- engine integration ----------------------------------------------------

TEST(EngineLint, ReportIsCachedLikeTheProfile) {
  engine::AnalysisEngine eng(cleanTrace());
  const auto first = eng.lintReport();
  EXPECT_TRUE(first->clean());
  const auto stats0 = eng.cacheStats();
  const auto second = eng.lintReport();
  EXPECT_EQ(first.get(), second.get());  // same cached instance
  const auto stats1 = eng.cacheStats();
  EXPECT_EQ(stats1.hits, stats0.hits + 1);
  EXPECT_EQ(stats1.misses, stats0.misses);
  EXPECT_GT(stats1.bytes, 0u);
}

TEST(EngineLint, LintOnLoadGateRejectsBrokenTraces) {
  engine::EngineOptions options;
  options.lintOnLoad = true;
  try {
    engine::AnalysisEngine eng(dirtyTrace(2), options);
    FAIL() << "expected the lint gate to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("lint-on-load gate"),
              std::string::npos);
  }
}

TEST(EngineLint, LintOnLoadGateAcceptsCleanAndWarningTraces) {
  engine::EngineOptions options;
  options.lintOnLoad = true;
  EXPECT_NO_THROW(engine::AnalysisEngine eng(cleanTrace(), options));

  // Warnings pass the default Error gate but fail a Warning gate.
  Trace warned = cleanTrace();
  warned.functions.intern("MPI_Bcast", "APP", trace::Paradigm::Compute);
  warned.processes[0].events.insert(
      warned.processes[0].events.begin(),
      {Event::enter(0, 2), Event::leave(1, 2)});
  EXPECT_NO_THROW(engine::AnalysisEngine eng(Trace(warned), options));
  options.lintGateSeverity = Severity::Warning;
  EXPECT_THROW(engine::AnalysisEngine eng(Trace(warned), options), Error);
}

TEST(EngineLint, GateRespectsDisabledRules) {
  Trace warned = cleanTrace();
  warned.functions.intern("MPI_Bcast", "APP", trace::Paradigm::Compute);
  warned.processes[0].events.insert(
      warned.processes[0].events.begin(),
      {Event::enter(0, 2), Event::leave(1, 2)});
  engine::EngineOptions options;
  options.lintOnLoad = true;
  options.lintGateSeverity = Severity::Warning;
  options.lintDisabledRules = {"sync-coverage"};
  EXPECT_NO_THROW(engine::AnalysisEngine eng(Trace(warned), options));
}

TEST(EngineLint, ParallelEngineLintMatchesSerial) {
  const Trace tr = dirtyTrace(6);
  engine::AnalysisEngine serial{Trace(tr)};
  engine::EngineOptions parallelOptions;
  parallelOptions.threads = 4;
  engine::AnalysisEngine parallel{Trace(tr), parallelOptions};
  EXPECT_EQ(serial.lintReport()->findings, parallel.lintReport()->findings);
}

}  // namespace
}  // namespace perfvar::lint
