#include <gtest/gtest.h>

#include "apps/paper_examples.hpp"
#include "profile/calltree.hpp"
#include "profile/profile.hpp"
#include "trace/builder.hpp"
#include "trace/replay.hpp"
#include "util/error.hpp"

namespace perfvar {
namespace {

using trace::Frame;
using trace::ProcessId;
using trace::Timestamp;

trace::Trace nestedTrace() {
  trace::TraceBuilder b(1);
  const auto a = b.defineFunction("a");
  const auto c = b.defineFunction("c");
  const auto d = b.defineFunction("d");
  // a [0,100] { c [10,30] { d [15,25] }, c [40,80] }
  b.enter(0, 0, a);
  b.enter(0, 10, c);
  b.enter(0, 15, d);
  b.leave(0, 25, d);
  b.leave(0, 30, c);
  b.enter(0, 40, c);
  b.leave(0, 80, c);
  b.leave(0, 100, a);
  return b.finish();
}

TEST(Replay, FramesCarryCorrectTimesAndDepths) {
  const trace::Trace tr = nestedTrace();
  const auto frames = trace::collectFrames(tr.processes[0]);
  ASSERT_EQ(frames.size(), 4u);  // leave order: d, c, c, a
  EXPECT_EQ(tr.functions.name(frames[0].function), "d");
  EXPECT_EQ(frames[0].inclusive(), 10u);
  EXPECT_EQ(frames[0].exclusive(), 10u);
  EXPECT_EQ(frames[0].depth, 2u);
  EXPECT_EQ(tr.functions.name(frames[1].function), "c");
  EXPECT_EQ(frames[1].inclusive(), 20u);
  EXPECT_EQ(frames[1].exclusive(), 10u);  // minus d
  EXPECT_EQ(tr.functions.name(frames[3].function), "a");
  EXPECT_EQ(frames[3].inclusive(), 100u);
  EXPECT_EQ(frames[3].exclusive(), 100u - 20u - 40u);
  EXPECT_EQ(frames[3].parent, trace::kInvalidFunction);
  EXPECT_EQ(frames[1].parent, frames[3].function);
}

TEST(Replay, ThrowsOnUnbalancedStream) {
  trace::Trace tr;
  const auto f = tr.functions.intern("f");
  tr.processes.resize(1);
  tr.processes[0].events.push_back(trace::Event::enter(0, f));
  EXPECT_THROW(trace::collectFrames(tr.processes[0]), Error);
}

TEST(Replay, VisitsMessagesAndMetrics) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("f");
  const auto m = b.defineMetric("m");
  b.enter(0, 0, f);
  b.mpiSend(0, 1, 1, 3, 64);
  b.metric(0, 2, m, 7.0);
  b.leave(0, 9, f);
  b.enter(1, 0, f);
  b.leave(1, 1, f);
  const trace::Trace tr = b.finish();

  int messages = 0;
  int metrics = 0;
  trace::ReplayVisitor v;
  v.onMessage = [&](bool isSend, const trace::Event& e) {
    EXPECT_TRUE(isSend);
    EXPECT_EQ(e.size, 64u);
    ++messages;
  };
  v.onMetric = [&](const trace::Event& e, std::size_t depth) {
    EXPECT_EQ(e.value, 7.0);
    EXPECT_EQ(depth, 1u);
    ++metrics;
  };
  trace::replayProcess(tr.processes[0], v);
  EXPECT_EQ(messages, 1);
  EXPECT_EQ(metrics, 1);
}

// --- Figure 1: inclusive vs exclusive time ---------------------------------

TEST(Profile, Figure1InclusiveExclusive) {
  const trace::Trace tr = apps::buildFigure1Trace();
  const auto profile = profile::FlatProfile::build(tr);
  const auto foo = *tr.functions.find("foo");
  const auto bar = *tr.functions.find("bar");
  EXPECT_EQ(profile.aggregated(foo).inclusive, 6u);
  EXPECT_EQ(profile.aggregated(foo).exclusive, 4u);
  EXPECT_EQ(profile.aggregated(bar).inclusive, 2u);
  EXPECT_EQ(profile.aggregated(bar).exclusive, 2u);
  EXPECT_EQ(profile.aggregated(foo).invocations, 1u);
}

TEST(Profile, AggregatesAcrossProcesses) {
  const trace::Trace tr = apps::buildFigure2Trace();
  const auto profile = profile::FlatProfile::build(tr);
  const auto fMain = *tr.functions.find("main");
  const auto fA = *tr.functions.find("a");
  EXPECT_EQ(profile.aggregated(fMain).inclusive, 54u);
  EXPECT_EQ(profile.aggregated(fMain).invocations, 3u);
  EXPECT_EQ(profile.aggregated(fA).inclusive, 36u);
  EXPECT_EQ(profile.aggregated(fA).invocations, 9u);
  // Per-process share.
  EXPECT_EQ(profile.process(0, fA).inclusive, 12u);
  EXPECT_EQ(profile.process(0, fA).invocations, 3u);
}

TEST(Profile, SortingIsByTimeThenId) {
  const trace::Trace tr = apps::buildFigure2Trace();
  const auto profile = profile::FlatProfile::build(tr);
  const auto byInc = profile.byInclusiveTime();
  ASSERT_GE(byInc.size(), 2u);
  EXPECT_EQ(tr.functions.name(byInc[0].function), "main");
  EXPECT_EQ(tr.functions.name(byInc[1].function), "a");
  for (std::size_t i = 1; i < byInc.size(); ++i) {
    EXPECT_GE(byInc[i - 1].inclusive, byInc[i].inclusive);
  }
}

TEST(Profile, MinMaxInclusiveTracked) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  b.enter(0, 0, f);
  b.leave(0, 10, f);
  b.enter(0, 10, f);
  b.leave(0, 50, f);
  const trace::Trace tr = b.finish();
  const auto profile = profile::FlatProfile::build(tr);
  EXPECT_EQ(profile.aggregated(f).minInclusive, 10u);
  EXPECT_EQ(profile.aggregated(f).maxInclusive, 40u);
}

TEST(Profile, ExclusivePerProcessMask) {
  const trace::Trace tr = nestedTrace();
  const auto profile = profile::FlatProfile::build(tr);
  std::vector<bool> all(tr.functions.size(), true);
  const auto totals = profile.exclusiveTimePerProcess(all);
  ASSERT_EQ(totals.size(), 1u);
  // Total exclusive time equals the root's inclusive time (full coverage).
  EXPECT_EQ(totals[0], 100u);
}

TEST(Profile, RecursionCountsEachInvocation) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("rec");
  b.enter(0, 0, f);
  b.enter(0, 10, f);
  b.leave(0, 20, f);
  b.leave(0, 40, f);
  const trace::Trace tr = b.finish();
  const auto profile = profile::FlatProfile::build(tr);
  EXPECT_EQ(profile.aggregated(f).invocations, 2u);
  EXPECT_EQ(profile.aggregated(f).inclusive, 50u);  // 40 + 10
  EXPECT_EQ(profile.aggregated(f).exclusive, 40u);  // (40-10) + 10
}

TEST(Profile, FormatTopFunctionsContainsNames) {
  const trace::Trace tr = apps::buildFigure2Trace();
  const auto profile = profile::FlatProfile::build(tr);
  const std::string text = profile::formatTopFunctions(tr, profile, 3);
  EXPECT_NE(text.find("main"), std::string::npos);
  EXPECT_NE(text.find("invocations"), std::string::npos);
}

// --- call trees -------------------------------------------------------------

TEST(CallTree, BuildsPathsWithStats) {
  const trace::Trace tr = nestedTrace();
  const auto tree = profile::CallTree::build(tr.processes[0]);
  const auto a = *tr.functions.find("a");
  const auto c = *tr.functions.find("c");
  const auto d = *tr.functions.find("d");
  EXPECT_EQ(tree.nodeCount(), 3u);  // a, a/c, a/c/d
  const auto* nodeC = tree.findPath({a, c});
  ASSERT_NE(nodeC, nullptr);
  EXPECT_EQ(nodeC->invocations, 2u);
  EXPECT_EQ(nodeC->inclusive, 60u);
  EXPECT_EQ(nodeC->exclusive, 50u);
  const auto* nodeD = tree.findPath({a, c, d});
  ASSERT_NE(nodeD, nullptr);
  EXPECT_EQ(nodeD->invocations, 1u);
  EXPECT_EQ(tree.findPath({c}), nullptr);
}

TEST(CallTree, MergeAcrossProcesses) {
  const trace::Trace tr = apps::buildFigure2Trace();
  const auto merged = profile::CallTree::buildMerged(tr);
  const auto fMain = *tr.functions.find("main");
  const auto fA = *tr.functions.find("a");
  const auto* node = merged.findPath({fMain, fA});
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->invocations, 9u);
  EXPECT_EQ(node->inclusive, 36u);
  EXPECT_EQ(merged.root().maxDepth(), 4u);  // root -> main -> a -> b/c
}

TEST(CallTree, FormatShowsHierarchy) {
  const trace::Trace tr = nestedTrace();
  const auto tree = profile::CallTree::build(tr.processes[0]);
  const std::string text = profile::formatCallTree(tr, tree, 10);
  EXPECT_NE(text.find("a  [calls 1"), std::string::npos);
  EXPECT_NE(text.find("  c  [calls 2"), std::string::npos);
}

}  // namespace
}  // namespace perfvar
