/// The PVTJ write-ahead journal, attacked at the byte level: codec round
/// trips, the writer/scanner contract, and the torn-tail tolerance the
/// crash-recovery path depends on. The per-byte truncation sweep is the
/// core guarantee — a journal cut at ANY length must scan to a clean
/// prefix of the full record sequence (or fail with a structured header
/// error), never crash, and never yield a record that was not fully
/// written.

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "server/journal.hpp"
#include "util/error.hpp"

namespace perfvar::server {
namespace {

/// Per-process scratch dir (tests in one binary run sequentially, but
/// ctest runs binaries concurrently from one working directory).
std::string scratchDir(const std::string& stem) {
  const std::string dir = stem + "_" + std::to_string(getpid());
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---- payload codecs --------------------------------------------------------

TEST(ServerJournal, OpenPayloadRoundTrips) {
  JournalOpen open;
  open.segmentFunction = "compute_step";
  open.threshold = 3.75;
  open.warmup = 12;
  const JournalOpen back = decodeJournalOpen(encodeJournalOpen(open));
  EXPECT_EQ(back.segmentFunction, open.segmentFunction);
  EXPECT_EQ(back.threshold, open.threshold);
  EXPECT_EQ(back.warmup, open.warmup);
}

TEST(ServerJournal, OpenPayloadRejectsInconsistentLengths) {
  const std::string good = encodeJournalOpen({"f", 1.0, 0});
  EXPECT_THROW(decodeJournalOpen(good.substr(0, good.size() - 1)), Error);
  EXPECT_THROW(decodeJournalOpen(good + "x"), Error);
  EXPECT_THROW(decodeJournalOpen(""), Error);
}

TEST(ServerJournal, AppendPayloadRoundTripsBothModes) {
  const std::string image = "\x01\x02raw chunk bytes\xff";
  for (const bool buffered : {false, true}) {
    const std::string payload = encodeJournalAppend(buffered, image);
    const JournalAppend back = decodeJournalAppend(payload);
    EXPECT_EQ(back.buffered, buffered);
    EXPECT_EQ(back.image, image);
  }
  EXPECT_THROW(decodeJournalAppend(""), Error);
  EXPECT_THROW(decodeJournalAppend("\x02oops"), Error);
}

TEST(ServerJournal, FlushPayloadRoundTrips) {
  EXPECT_EQ(decodeJournalFlush(encodeJournalFlush(0)), 0u);
  EXPECT_EQ(decodeJournalFlush(encodeJournalFlush(0xdeadbeefcafe)),
            0xdeadbeefcafeull);
  EXPECT_THROW(decodeJournalFlush("1234567"), Error);
}

TEST(ServerJournal, FileNamesAreSanitizedAndCollisionFree) {
  const std::string a = journalFileName("trace/one");
  const std::string b = journalFileName("trace_one");
  EXPECT_NE(a, b);  // sanitize to the same stem, hash disambiguates
  EXPECT_EQ(a.substr(0, 10), "trace_one-");
  EXPECT_EQ(a.substr(a.size() - 4), ".pvj");
  EXPECT_EQ(journalFileName("trace/one"), a);  // deterministic
}

// ---- writer / scanner contract ---------------------------------------------

/// A journal with one Open, three Appends and one Flush record.
std::string writeFixtureJournal(const std::string& dir,
                                const std::string& name) {
  JournalWriter writer = JournalWriter::create(dir, name, false);
  writer.append(JournalRecordType::Open,
                encodeJournalOpen({"step", 2.5, 3}));
  writer.append(JournalRecordType::Append,
                encodeJournalAppend(false, "first-chunk-image"));
  writer.append(JournalRecordType::Append,
                encodeJournalAppend(true, std::string(100, 'x')));
  writer.append(JournalRecordType::Append,
                encodeJournalAppend(true, "third"));
  writer.append(JournalRecordType::Flush, encodeJournalFlush(2));
  writer.sync();
  return writer.path();
}

TEST(ServerJournal, WriterScanRoundTrip) {
  const std::string dir = scratchDir("journal_roundtrip");
  const std::string path = writeFixtureJournal(dir, "live-trace");
  const JournalScan scan = scanJournal(path);
  EXPECT_EQ(scan.traceName, "live-trace");
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.validBytes, std::filesystem::file_size(path));
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.records[0].type, JournalRecordType::Open);
  EXPECT_EQ(decodeJournalOpen(scan.records[0].payload).segmentFunction,
            "step");
  EXPECT_EQ(scan.records[1].type, JournalRecordType::Append);
  EXPECT_FALSE(decodeJournalAppend(scan.records[1].payload).buffered);
  EXPECT_EQ(decodeJournalAppend(scan.records[1].payload).image,
            "first-chunk-image");
  EXPECT_TRUE(decodeJournalAppend(scan.records[2].payload).buffered);
  EXPECT_EQ(scan.records[4].type, JournalRecordType::Flush);
  EXPECT_EQ(decodeJournalFlush(scan.records[4].payload), 2u);
  std::filesystem::remove_all(dir);
}

TEST(ServerJournal, OpenExistingExtendsTheRecordSequence) {
  const std::string dir = scratchDir("journal_extend");
  const std::string path = writeFixtureJournal(dir, "live-trace");
  {
    JournalWriter more = JournalWriter::openExisting(path, true);
    more.append(JournalRecordType::Append,
                encodeJournalAppend(false, "post-recovery"));
  }
  const JournalScan scan = scanJournal(path);
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), 6u);
  EXPECT_EQ(decodeJournalAppend(scan.records[5].payload).image,
            "post-recovery");
  std::filesystem::remove_all(dir);
}

TEST(ServerJournal, CreateTruncatesAPreviousJournal) {
  const std::string dir = scratchDir("journal_trunc_create");
  writeFixtureJournal(dir, "live-trace");
  JournalWriter fresh = JournalWriter::create(dir, "live-trace", false);
  fresh.append(JournalRecordType::Open, encodeJournalOpen({"g", 1.0, 0}));
  const JournalScan scan = scanJournal(fresh.path());
  ASSERT_EQ(scan.records.size(), 1u);  // the five old records are gone
  EXPECT_EQ(decodeJournalOpen(scan.records[0].payload).segmentFunction, "g");
  std::filesystem::remove_all(dir);
}

TEST(ServerJournal, ListJournalsFindsOnlyPvjFilesSorted) {
  const std::string dir = scratchDir("journal_list");
  writeFixtureJournal(dir, "bbb");
  writeFixtureJournal(dir, "aaa");
  spit(dir + "/not-a-journal.txt", "hello");
  const std::vector<std::string> paths = listJournals(dir);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_LT(paths[0], paths[1]);
  EXPECT_TRUE(listJournals(dir + "/missing-subdir").empty());
  std::filesystem::remove_all(dir);
}

// ---- torn-tail tolerance ---------------------------------------------------

TEST(ServerJournal, PerByteTruncationSweepAlwaysYieldsACleanPrefix) {
  const std::string dir = scratchDir("journal_truncation_sweep");
  const std::string path = writeFixtureJournal(dir, "live-trace");
  const std::string full = slurp(path);
  const JournalScan reference = scanJournal(path);
  ASSERT_EQ(reference.records.size(), 5u);

  // header = magic(4) | version(4) | nameLen(4) | name | checksum(8)
  const std::size_t headerEnd = 12 + std::string("live-trace").size() + 8;
  const std::string cutPath = dir + "/cut.pvj";
  std::size_t lastCount = 0;
  for (std::size_t len = 0; len <= full.size(); ++len) {
    spit(cutPath, full.substr(0, len));
    JournalScan scan;
    try {
      scan = scanJournal(cutPath);
    } catch (const Error&) {
      // Only a truncated header may throw: the file identifies no trace.
      // Any cut at or past the full header must scan.
      EXPECT_LT(len, headerEnd) << "scan threw at length " << len;
      continue;
    }
    // The scan is a clean prefix of the uncut journal's records.
    ASSERT_LE(scan.records.size(), reference.records.size());
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      EXPECT_EQ(scan.records[i].type, reference.records[i].type);
      EXPECT_EQ(scan.records[i].payload, reference.records[i].payload);
    }
    EXPECT_LE(scan.validBytes, len);
    EXPECT_EQ(scan.torn, scan.validBytes != len);
    // Record count is monotone in the cut length: truncating later never
    // loses an earlier record.
    EXPECT_GE(scan.records.size(), lastCount);
    lastCount = scan.records.size();
  }
  EXPECT_EQ(lastCount, reference.records.size());
  std::filesystem::remove_all(dir);
}

TEST(ServerJournal, CorruptedRecordStopsTheScanBeforeIt) {
  const std::string dir = scratchDir("journal_bitflip");
  const std::string path = writeFixtureJournal(dir, "live-trace");
  const std::string full = slurp(path);
  const JournalScan reference = scanJournal(path);

  // The header ends where record 0 starts; find it by rescanning a
  // header-only cut (every record is ahead of reference.validBytes of a
  // file holding just the header — compute from the name).
  const std::size_t headerEnd = 4 + 4 + 4 + std::string("live-trace").size() + 8;

  const std::string hurtPath = dir + "/hurt.pvj";
  // Flip one byte in the middle of the file body, at several positions:
  // the scan must stop at (or before) the damaged record, keep every
  // record before it, and never throw.
  for (std::size_t pos = headerEnd; pos < full.size();
       pos += 7) {  // stride keeps the sweep fast; covers every record
    std::string hurt = full;
    hurt[pos] = static_cast<char>(hurt[pos] ^ 0x40);
    spit(hurtPath, hurt);
    const JournalScan scan = scanJournal(hurtPath);
    EXPECT_LT(scan.records.size(), reference.records.size())
        << "a flipped byte at " << pos << " went unnoticed";
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      EXPECT_EQ(scan.records[i].payload, reference.records[i].payload);
    }
  }

  // Header damage is a structured error, not a crash.
  for (const std::size_t pos : {0u, 5u, 9u, 13u}) {
    std::string hurt = full;
    hurt[pos] = static_cast<char>(hurt[pos] ^ 0x01);
    spit(hurtPath, hurt);
    EXPECT_THROW(scanJournal(hurtPath), Error) << "header byte " << pos;
  }
  std::filesystem::remove_all(dir);
}

TEST(ServerJournal, ScanRejectsForeignAndMissingFiles) {
  const std::string dir = scratchDir("journal_foreign");
  std::filesystem::create_directories(dir);
  spit(dir + "/foreign.pvj", "PVTXnot a journal at all");
  EXPECT_THROW(scanJournal(dir + "/foreign.pvj"), Error);
  EXPECT_THROW(scanJournal(dir + "/missing.pvj"), Error);
  spit(dir + "/empty.pvj", "");
  EXPECT_THROW(scanJournal(dir + "/empty.pvj"), Error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace perfvar::server
