/// Deterministic fault-injection matrix over the PVTF readers
/// (perfvar::testing::FaultInjector): for every corruption class and both
/// on-disk formats, Strict mode must throw the right ErrorCode, Salvage
/// mode must never throw on block-local faults and must return every
/// healthy rank bit-exactly, and analyzing a salvaged trace must equal
/// analyzing the original with the quarantined ranks filtered out — at 1
/// and 8 decode threads. An exhaustive truncation sweep closes the
/// matrix: a load of every possible prefix either succeeds or throws
/// perfvar::Error (no crash, no hang, no foreign exception).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "sim/simulator.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/fault_injection.hpp"
#include "trace/filter.hpp"
#include "util/error.hpp"
#include "lint/lint.hpp"

namespace perfvar::trace {
namespace {

namespace ft = perfvar::testing;
using ft::FaultInjector;
using ft::Image;

/// A small multi-rank trace exercising every event kind, multi-byte
/// timestamp deltas, escape-coded function ids and neighbor messaging.
Trace syntheticTrace(std::size_t ranks, std::size_t iterations) {
  TraceBuilder b(ranks);
  std::vector<FunctionId> fns;
  for (std::size_t i = 0; i < 40; ++i) {
    fns.push_back(b.defineFunction("fn" + std::to_string(i),
                                   i % 3 ? "APP" : "MPI",
                                   i % 3 ? Paradigm::Compute : Paradigm::MPI));
  }
  const auto m = b.defineMetric("cycles", "count");
  for (ProcessId p = 0; p < ranks; ++p) {
    Timestamp t = 17 * (p + 1);
    for (std::size_t it = 0; it < iterations; ++it) {
      const auto f = fns[(p + it) % fns.size()];
      b.enter(p, t, f);
      t += 3 + ((p * 31 + it * 7) % 5000);
      b.metric(p, t, m, static_cast<double>(p) * 1e6 + it);
      if (ranks > 1) {
        const auto peer = static_cast<ProcessId>((p + 1) % ranks);
        b.mpiSend(p, t, peer, static_cast<std::uint32_t>(it), 64 * (it + 1));
        const auto src = static_cast<ProcessId>((p + ranks - 1) % ranks);
        b.mpiRecv(p, t + 1, src, static_cast<std::uint32_t>(it), 64);
      }
      t += 2;
      b.leave(p, t, f);
      ++t;
    }
  }
  return b.finish();
}

void expectTracesEqual(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.resolution, b.resolution);
  ASSERT_EQ(a.processes.size(), b.processes.size());
  for (std::size_t p = 0; p < a.processes.size(); ++p) {
    EXPECT_EQ(a.processes[p].name, b.processes[p].name);
    ASSERT_EQ(a.processes[p].events.size(), b.processes[p].events.size())
        << "rank " << p;
    for (std::size_t i = 0; i < a.processes[p].events.size(); ++i) {
      ASSERT_EQ(a.processes[p].events[i], b.processes[p].events[i])
          << "rank " << p << ", event " << i;
    }
  }
}

BinaryFileInfo inspect(const Image& image) {
  return inspectBinaryBuffer(image.data(), image.size());
}

Trace load(const Image& image, RecoveryMode mode, std::size_t threads,
           LoadReport* report = nullptr) {
  BinaryReadOptions options;
  options.recovery = mode;
  options.threads = threads;
  options.report = report;
  return readBinaryBuffer(image.data(), image.size(), options);
}

/// ErrorCode of a Strict load of `image`; None if the load succeeds.
ErrorCode strictCode(const Image& image, std::size_t threads) {
  try {
    load(image, RecoveryMode::Strict, threads);
  } catch (const Error& e) {
    return e.code();
  }
  return ErrorCode::None;
}

std::vector<std::size_t> quarantinedRanks(const Trace& tr) {
  std::vector<std::size_t> ranks;
  for (const QuarantinedRank& q : tr.quarantined) {
    ranks.push_back(q.process);
  }
  std::sort(ranks.begin(), ranks.end());
  return ranks;
}

/// One corrupted image plus what the readers must do with it.
struct Fault {
  std::string name;
  Image image;
  std::vector<std::size_t> expectQuarantined;
  ErrorCode expectStrict = ErrorCode::None;
};

/// The v2 fault matrix: every fault is block-local, so Salvage must
/// quarantine exactly `expectQuarantined` and keep the rest.
std::vector<Fault> v2Faults(const Image& clean, FaultInjector& inj) {
  const BinaryFileInfo info = inspect(clean);
  const std::size_t n = info.blocks.size();
  const BinaryBlockInfo& mid = info.blocks[n / 2];
  const BinaryBlockInfo& last = info.blocks.back();
  std::vector<Fault> faults;
  faults.push_back({"truncate-mid-last-block",
                    FaultInjector::truncateAt(
                        clean, static_cast<std::size_t>(last.offset) +
                                   static_cast<std::size_t>(last.bytes) / 2),
                    {n - 1},
                    ErrorCode::TruncatedInput});
  faults.push_back({"bit-flip-in-block",
                    inj.bitFlip(clean, static_cast<std::size_t>(mid.offset),
                                static_cast<std::size_t>(mid.offset) +
                                    static_cast<std::size_t>(mid.bytes),
                                3),
                    {n / 2},
                    ErrorCode::ChecksumMismatch});
  faults.push_back({"torn-tail",
                    FaultInjector::tornTail(
                        clean, static_cast<std::size_t>(last.bytes) / 2),
                    {n - 1},
                    ErrorCode::ChecksumMismatch});
  faults.push_back({"zero-table-entry",
                    FaultInjector::zeroTableEntry(clean, 1),
                    {1},
                    ErrorCode::MalformedEvent});
  faults.push_back({"oversize-count",
                    FaultInjector::oversizeCount(clean, 2),
                    {2},
                    ErrorCode::MalformedEvent});
  return faults;
}

// ---- clean images: Salvage is a no-op --------------------------------------

TEST(FaultMatrix, CleanImagesLoadIdenticallyInBothModes) {
  const Trace original = syntheticTrace(6, 30);
  for (const std::uint32_t version : {kBinaryFormatV1, kBinaryFormatV2}) {
    const Image clean = ft::encodeImage(original, version);
    for (const std::size_t threads : {1ul, 8ul}) {
      const Trace strict = load(clean, RecoveryMode::Strict, threads);
      LoadReport report;
      const Trace salvage =
          load(clean, RecoveryMode::Salvage, threads, &report);
      expectTracesEqual(strict, original);
      expectTracesEqual(salvage, original);
      EXPECT_TRUE(salvage.quarantined.empty());
      EXPECT_TRUE(report.clean());
      EXPECT_EQ(report.version, version);
      ASSERT_EQ(report.ranks.size(), original.processes.size());
      for (const RankLoadStatus& st : report.ranks) {
        EXPECT_TRUE(st.ok);
        EXPECT_EQ(st.error, ErrorCode::None);
        EXPECT_EQ(st.eventsSalvaged, st.eventsDeclared);
      }
    }
  }
}

// ---- the v2 matrix ---------------------------------------------------------

TEST(FaultMatrix, StrictV2ThrowsTheRightCode) {
  const Trace original = syntheticTrace(6, 30);
  const Image clean = ft::encodeImage(original, kBinaryFormatV2);
  FaultInjector inj(1);
  for (const Fault& f : v2Faults(clean, inj)) {
    for (const std::size_t threads : {1ul, 8ul}) {
      EXPECT_EQ(strictCode(f.image, threads), f.expectStrict)
          << f.name << " @" << threads << " threads";
    }
  }
}

TEST(FaultMatrix, SalvageV2QuarantinesExactlyTheFaultyRank) {
  const Trace original = syntheticTrace(6, 30);
  const Image clean = ft::encodeImage(original, kBinaryFormatV2);
  FaultInjector inj(2);
  for (const Fault& f : v2Faults(clean, inj)) {
    for (const std::size_t threads : {1ul, 8ul}) {
      SCOPED_TRACE(f.name + " @" + std::to_string(threads) + " threads");
      LoadReport report;
      Trace tr;
      ASSERT_NO_THROW(
          tr = load(f.image, RecoveryMode::Salvage, threads, &report));
      EXPECT_EQ(quarantinedRanks(tr), f.expectQuarantined);
      ASSERT_EQ(report.ranks.size(), original.processes.size());
      for (std::size_t p = 0; p < report.ranks.size(); ++p) {
        const bool expectOk =
            std::find(f.expectQuarantined.begin(), f.expectQuarantined.end(),
                      p) == f.expectQuarantined.end();
        EXPECT_EQ(report.ranks[p].ok, expectOk) << "rank " << p;
        if (expectOk) {
          // Healthy ranks survive bit-exactly.
          const auto& got = tr.processes[p].events;
          const auto& want = original.processes[p].events;
          ASSERT_EQ(got.size(), want.size()) << "rank " << p;
          for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], want[i]) << "rank " << p << ", event " << i;
          }
        }
      }
      // Salvaged prefixes are balanced: the whole trace still validates.
      EXPECT_TRUE(lint::validateStructure(tr).empty());
      // The same faulty image quarantines the same ranks every time.
      LoadReport again;
      const Trace tr2 =
          load(f.image, RecoveryMode::Salvage, threads, &again);
      EXPECT_EQ(quarantinedRanks(tr2), quarantinedRanks(tr));
    }
  }
}

// ---- the v1 matrix ---------------------------------------------------------

TEST(FaultMatrix, StrictV1ThrowsAClassifiedError) {
  const Trace original = syntheticTrace(6, 30);
  const Image clean = ft::encodeImage(original, kBinaryFormatV1);
  const BinaryFileInfo info = inspect(clean);
  FaultInjector inj(3);
  const BinaryBlockInfo& b3 = info.blocks[3];
  const std::vector<Image> faulty = {
      FaultInjector::truncateAt(clean,
                                static_cast<std::size_t>(b3.offset) +
                                    static_cast<std::size_t>(b3.bytes) / 2),
      inj.bitFlip(clean, static_cast<std::size_t>(b3.offset),
                  static_cast<std::size_t>(b3.offset) +
                      static_cast<std::size_t>(b3.bytes),
                  3),
      FaultInjector::tornTail(clean, 32),
  };
  for (std::size_t i = 0; i < faulty.size(); ++i) {
    for (const std::size_t threads : {1ul, 8ul}) {
      const ErrorCode code = strictCode(faulty[i], threads);
      // v1 is one checksummed stream: depending on where the damage
      // lands, the decoder sees a short read, a structurally invalid
      // event, or a trailer mismatch — but always a classified fault.
      EXPECT_TRUE(code == ErrorCode::TruncatedInput ||
                  code == ErrorCode::MalformedEvent ||
                  code == ErrorCode::ChecksumMismatch)
          << "fault " << i << ": code " << errorCodeName(code);
    }
  }
}

TEST(FaultMatrix, SalvageV1KeepsThePrefixOnTruncation) {
  const Trace original = syntheticTrace(6, 30);
  const Image clean = ft::encodeImage(original, kBinaryFormatV1);
  const BinaryFileInfo info = inspect(clean);
  // Cut in the middle of rank 3's stream: ranks 0-2 decode fully before
  // the cut and are trusted; 3 keeps its salvaged prefix; 4-5 are gone.
  const BinaryBlockInfo& b3 = info.blocks[3];
  const Image cut = FaultInjector::truncateAt(
      clean, static_cast<std::size_t>(b3.offset) +
                 static_cast<std::size_t>(b3.bytes) / 2);
  LoadReport report;
  Trace tr;
  ASSERT_NO_THROW(tr = load(cut, RecoveryMode::Salvage, 1, &report));
  EXPECT_EQ(quarantinedRanks(tr), (std::vector<std::size_t>{3, 4, 5}));
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(report.ranks[p].ok) << "rank " << p;
    const auto& got = tr.processes[p].events;
    const auto& want = original.processes[p].events;
    ASSERT_EQ(got.size(), want.size()) << "rank " << p;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "rank " << p << ", event " << i;
    }
  }
  for (std::size_t p = 3; p < 6; ++p) {
    EXPECT_FALSE(report.ranks[p].ok) << "rank " << p;
    EXPECT_EQ(report.ranks[p].error, ErrorCode::TruncatedInput);
  }
  EXPECT_TRUE(lint::validateStructure(tr).empty());
}

TEST(FaultMatrix, SalvageV1QuarantinesEverythingOnContentDamage) {
  // A bit flip inside the single v1 checksum domain leaves no rank
  // trustworthy: the load must survive but quarantine all of them.
  const Trace original = syntheticTrace(4, 20);
  const Image clean = ft::encodeImage(original, kBinaryFormatV1);
  const BinaryFileInfo info = inspect(clean);
  FaultInjector inj(4);
  const BinaryBlockInfo& b1 = info.blocks[1];
  const Image bad =
      inj.bitFlip(clean, static_cast<std::size_t>(b1.offset),
                  static_cast<std::size_t>(b1.offset) +
                      static_cast<std::size_t>(b1.bytes),
                  1);
  LoadReport report;
  Trace tr;
  ASSERT_NO_THROW(tr = load(bad, RecoveryMode::Salvage, 1, &report));
  EXPECT_EQ(report.quarantinedCount(), original.processes.size());
  EXPECT_EQ(tr.quarantined.size(), original.processes.size());
}

// ---- analysis equivalence --------------------------------------------------

TEST(FaultMatrix, SalvagedAnalysisEqualsFilteredAnalysis) {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 12;
  const auto scenario = apps::buildCosmoSpecs(cfg);
  const Trace original = sim::simulate(scenario.program, scenario.simOptions);
  const Image clean = ft::encodeImage(original, kBinaryFormatV2);
  const BinaryFileInfo info = inspect(clean);
  FaultInjector inj(5);
  const std::size_t victim = info.blocks.size() / 2;
  const BinaryBlockInfo& vb = info.blocks[victim];
  const Image bad =
      inj.bitFlip(clean, static_cast<std::size_t>(vb.offset),
                  static_cast<std::size_t>(vb.offset) +
                      static_cast<std::size_t>(vb.bytes),
                  1);
  std::vector<ProcessId> healthy;
  for (std::size_t p = 0; p < original.processes.size(); ++p) {
    if (p != victim) {
      healthy.push_back(static_cast<ProcessId>(p));
    }
  }
  const Trace filtered = selectProcesses(original, healthy);
  for (const std::size_t threads : {1ul, 8ul}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    LoadReport report;
    const Trace salvaged =
        load(bad, RecoveryMode::Salvage, threads, &report);
    ASSERT_EQ(report.quarantinedCount(), 1u);
    // Dropping the quarantined rank reproduces the filtered trace.
    expectTracesEqual(dropQuarantined(salvaged), filtered);
    // ... and the analysis agrees, at every thread count.
    analysis::PipelineOptions opts;
    opts.threads = threads;
    const auto fromSalvaged = analysis::analyzeTrace(salvaged, opts);
    const auto fromFiltered = analysis::analyzeTrace(filtered, opts);
    EXPECT_EQ(analysis::formatAnalysis(filtered, fromSalvaged),
              analysis::formatAnalysis(filtered, fromFiltered));
    // The degraded-input section names the quarantined rank.
    const std::string degraded =
        analysis::formatAnalysis(salvaged, fromSalvaged);
    EXPECT_NE(degraded.find("degraded input"), std::string::npos);
    EXPECT_NE(degraded.find("checksum-mismatch"), std::string::npos);
  }
}

// ---- exhaustive truncation sweep -------------------------------------------

TEST(TruncationSweep, EveryPrefixLoadsOrThrowsError) {
  const Trace small = syntheticTrace(2, 5);
  for (const std::uint32_t version : {kBinaryFormatV1, kBinaryFormatV2}) {
    const Image image = ft::encodeImage(small, version);
    for (std::size_t n = 0; n < image.size(); ++n) {
      const Image cut = FaultInjector::truncateAt(image, n);
      for (const RecoveryMode mode :
           {RecoveryMode::Strict, RecoveryMode::Salvage}) {
        try {
          load(cut, mode, 1);
        } catch (const Error&) {
          // A classified failure is the only acceptable outcome besides
          // success; anything else (std::bad_alloc, a segfault under
          // ASan, a foreign exception) fails the test.
        }
      }
    }
  }
}

// ---- injector determinism --------------------------------------------------

TEST(FaultInjectorTest, SeededFlipsAreReproducible) {
  const Trace tr = syntheticTrace(3, 8);
  const Image image = ft::encodeImage(tr, kBinaryFormatV2);
  FaultInjector a(7);
  FaultInjector b(7);
  FaultInjector c(8);
  const Image fa = a.bitFlip(image, 8, image.size(), 4);
  const Image fb = b.bitFlip(image, 8, image.size(), 4);
  const Image fc = c.bitFlip(image, 8, image.size(), 4);
  EXPECT_EQ(fa, fb);
  EXPECT_NE(fa, fc);
  EXPECT_NE(fa, image);  // distinct-bit flips cannot cancel out
}

}  // namespace
}  // namespace perfvar::trace
