/// End-to-end reproductions of the paper's three case studies at reduced
/// (CI-friendly) scale plus one full-scale sanity pass per study: simulate
/// the workload, run the complete pipeline, and check that the analysis
/// reaches the paper's conclusions.

#include <gtest/gtest.h>

#include "analysis/baselines.hpp"
#include "analysis/correlate.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "apps/wrf.hpp"
#include "trace/binary_io.hpp"
#include "vis/timeline.hpp"
#include "lint/lint.hpp"

#include <sstream>

namespace perfvar {
namespace {

TEST(CaseStudyA, CosmoSpecsFullScale) {
  const apps::CosmoSpecsScenario scenario = apps::buildCosmoSpecs();
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);
  lint::requireStructurallyValid(tr);

  const analysis::AnalysisResult result = analysis::analyzeTrace(tr);
  // The heuristic picks the per-timestep wrapper as dominant.
  EXPECT_EQ(result.segmentFunction, scenario.iterationFunction);

  // Paper: "Several processes (middle) exhibit higher runtimes" - the six
  // cloud ranks are the top culprits and 54 is the worst.
  ASSERT_GE(result.variation.culpritProcesses.size(), 6u);
  EXPECT_EQ(result.variation.slowestProcess(), scenario.hottestRank);
  std::vector<trace::ProcessId> top6(
      result.variation.processesBySos.begin(),
      result.variation.processesBySos.begin() + 6);
  std::sort(top6.begin(), top6.end());
  EXPECT_EQ(top6, (std::vector<trace::ProcessId>{44, 45, 54, 55, 64, 65}));

  // Paper: "the fraction of MPI increases" - sync share grows monotonically
  // in a smoothed sense (last quarter > first quarter).
  const auto sync = result.sos->syncFractionPerIteration();
  double early = 0.0;
  double late = 0.0;
  const std::size_t q = sync.size() / 4;
  for (std::size_t i = 0; i < q; ++i) {
    early += sync[i];
    late += sync[sync.size() - 1 - i];
  }
  EXPECT_GT(late, 1.5 * early);

  // Paper: segment durations increase over the run.
  EXPECT_GT(result.variation.durationTrend.slope, 0.0);
  EXPECT_GT(result.variation.durationTrend.r2, 0.8);
}

TEST(CaseStudyA, SosLocalizesWhereDurationCannot) {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 6;
  cfg.gridY = 6;
  cfg.timesteps = 25;
  const apps::CosmoSpecsScenario scenario = apps::buildCosmoSpecs(cfg);
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);
  const analysis::AnalysisResult result = analysis::analyzeTrace(tr);

  const auto sos = analysis::outcomeFromSos(*result.sos, "sos-time");
  const auto duration =
      analysis::detectBySegmentDuration(tr, result.segmentFunction);
  EXPECT_EQ(sos.rankOf(scenario.hottestRank), 0u);
  // Barriers equalize durations: separation of the duration ranking is
  // meaningless (orders of magnitude below the SOS separation).
  EXPECT_GT(sos.topSeparation(), 10.0 * std::abs(duration.topSeparation()));
}

TEST(CaseStudyB, Fd4InterruptionDrilldown) {
  apps::CosmoSpecsFd4Config cfg;
  cfg.ranks = 32;
  cfg.blocksX = 16;
  cfg.blocksY = 16;
  cfg.iterations = 10;
  cfg.innerTimesteps = 5;
  cfg.interruptRank = 20;
  cfg.interruptIteration = 6;
  cfg.interruptInnerStep = 2;
  const apps::CosmoSpecsFd4Scenario scenario = apps::buildCosmoSpecsFd4(cfg);
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);
  lint::requireStructurallyValid(tr);

  // Coarse: the dominant function is the coupling iteration; the top
  // hotspot is (rank 20, iteration 6).
  const analysis::AnalysisResult coarse = analysis::analyzeTrace(tr);
  EXPECT_EQ(coarse.segmentFunction, scenario.iterationFunction);
  ASSERT_FALSE(coarse.variation.hotspots.empty());
  EXPECT_EQ(coarse.variation.hotspots[0].process, scenario.culpritRank);
  EXPECT_EQ(coarse.variation.hotspots[0].iteration,
            scenario.culpritIteration);

  // Fine: candidate 1 segments by specs_timestep and isolates the single
  // interrupted invocation.
  analysis::PipelineOptions fineOpts;
  fineOpts.candidateIndex = 1;
  const analysis::AnalysisResult fine = analysis::analyzeTrace(tr, fineOpts);
  EXPECT_EQ(fine.segmentFunction, scenario.specsStepFunction);
  ASSERT_FALSE(fine.variation.hotspots.empty());
  EXPECT_EQ(fine.variation.hotspots[0].process, scenario.culpritRank);
  EXPECT_EQ(fine.variation.hotspots[0].iteration,
            scenario.culpritFineSegment);

  // Root cause: the interrupted invocation has far fewer cycles than its
  // wall time implies (PAPI_TOT_CYC low - paper Section VII-B).
  const auto cycles = tr.metrics.find("PAPI_TOT_CYC");
  ASSERT_TRUE(cycles.has_value());
  const auto& seg =
      fine.sos->process(scenario.culpritRank)[scenario.culpritFineSegment];
  const double wall = tr.toSeconds(seg.segment.inclusive());
  const double cycleTime = seg.metricDelta[*cycles] / 2.5e9;
  EXPECT_LT(cycleTime, 0.2 * wall);

  // The interruption is invisible to the aggregated profile baseline: the
  // one-off delay is diluted across the whole run, so rank 20 does not
  // stand out anywhere near as clearly.
  const auto profile = analysis::detectByProfile(tr);
  const auto sosOutcome = analysis::outcomeFromSos(*fine.sos, "sos");
  EXPECT_EQ(sosOutcome.rankedProcesses[0], scenario.culpritRank);
  EXPECT_GT(fine.variation.hotspots[0].globalZ, 50.0);
}

TEST(CaseStudyC, WrfFpeCounterCorrelation) {
  apps::WrfConfig cfg;
  cfg.gridX = 8;
  cfg.gridY = 8;
  cfg.timesteps = 30;
  const apps::WrfScenario scenario = apps::buildWrf(cfg);
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);
  lint::requireStructurallyValid(tr);

  const analysis::AnalysisResult result = analysis::analyzeTrace(tr);
  EXPECT_EQ(result.segmentFunction, scenario.iterationFunction);
  EXPECT_EQ(result.variation.slowestProcess(), scenario.culpritRank);
  ASSERT_EQ(result.variation.culpritProcesses.size(), 1u);
  EXPECT_EQ(result.variation.culpritProcesses[0], scenario.culpritRank);

  // Paper: ~25% MPI share during iterations.
  const auto sync = result.sos->syncFractionPerIteration();
  double avg = 0.0;
  for (const double s : sync) {
    avg += s;
  }
  avg /= static_cast<double>(sync.size());
  EXPECT_GT(avg, 0.10);
  EXPECT_LT(avg, 0.40);

  // Paper: the FPU-exception counter "perfectly matches" the SOS map.
  const auto fpe = tr.metrics.find(scenario.fpExceptionMetricName);
  ASSERT_TRUE(fpe.has_value());
  const auto correlation = analysis::correlateMetric(*result.sos, *fpe);
  EXPECT_GT(correlation.processPearson, 0.95);
  EXPECT_GT(correlation.segmentPearson, 0.8);
  EXPECT_TRUE(correlation.topProcessMatches);
}

TEST(Integration, CaseStudyTraceSurvivesSerialization) {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 10;
  const apps::CosmoSpecsScenario scenario = apps::buildCosmoSpecs(cfg);
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);

  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  trace::writeBinary(tr, buf);
  const trace::Trace loaded = trace::readBinary(buf);

  // Identical analysis results on the round-tripped trace.
  const auto a = analysis::analyzeTrace(tr);
  const auto b = analysis::analyzeTrace(loaded);
  EXPECT_EQ(a.segmentFunction, b.segmentFunction);
  EXPECT_EQ(a.variation.slowestProcess(), b.variation.slowestProcess());
  EXPECT_EQ(a.sos->allSosSeconds(), b.sos->allSosSeconds());
}

TEST(Integration, TimelineRendersForAllCaseStudies) {
  apps::WrfConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 6;
  cfg.fpeRank = 9;
  const apps::WrfScenario scenario = apps::buildWrf(cfg);
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);
  const auto colors = vis::FunctionColors::standard(tr);
  vis::TimelineOptions opts;
  opts.bins = 200;
  const vis::Image img = vis::renderTimelineImage(tr, colors, opts);
  EXPECT_GT(img.width(), 200u);
  const auto shares = vis::paradigmShareOverTime(tr, 50);
  // Somewhere in the run MPI occupies a visible share.
  const auto& mpi = shares[static_cast<std::size_t>(trace::Paradigm::MPI)];
  EXPECT_GT(*std::max_element(mpi.begin(), mpi.end()), 0.05);
}

}  // namespace
}  // namespace perfvar
