#include <cmath>
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace perfvar {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntStaysInRangeAndHitsEnds) {
  Rng rng(5);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    sawLo |= v == 3;
    sawHi |= v == 9;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniformInt(5, 4), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) {
    xs.push_back(rng.normal(2.0, 3.0));
  }
  EXPECT_NEAR(stats::mean(xs), 2.0, 0.1);
  EXPECT_NEAR(stats::stddev(xs), 3.0, 0.1);
}

TEST(Rng, LognormalFactorMedianNearOne) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.lognormalFactor(0.3));
  }
  EXPECT_NEAR(stats::median(xs), 1.0, 0.03);
  for (const double x : xs) {
    EXPECT_GT(x, 0.0);
  }
}

TEST(Rng, LognormalFactorZeroSigmaIsExactlyOne) {
  Rng rng(23);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.lognormalFactor(0.0), 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  // Child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Format, Seconds) {
  EXPECT_EQ(fmt::seconds(1.5), "1.500 s");
  EXPECT_EQ(fmt::seconds(0.0123), "12.30 ms");
  EXPECT_EQ(fmt::seconds(45e-6), "45.00 us");
  EXPECT_EQ(fmt::seconds(7e-9), "7.0 ns");
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt::bytes(512), "512 B");
  EXPECT_EQ(fmt::bytes(2048), "2.0 KiB");
  EXPECT_EQ(fmt::bytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt::percent(0.25), "25.0%");
  EXPECT_EQ(fmt::percent(1.0), "100.0%");
}

TEST(Format, PadBothDirections) {
  EXPECT_EQ(fmt::pad("ab", 5), "ab   ");
  EXPECT_EQ(fmt::pad("ab", -5), "   ab");
  EXPECT_EQ(fmt::pad("abcdef", 3), "abcdef");
}

TEST(Format, JoinStrings) {
  const std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(fmt::join(parts, ", "), "a, b, c");
  EXPECT_EQ(fmt::join({}, ", "), "");
}

TEST(Format, TableAlignsColumns) {
  const std::string t = fmt::table({{"name", "value"}, {"x", "10"},
                                    {"longer", "2"}});
  EXPECT_NE(t.find("name    value"), std::string::npos);
  EXPECT_NE(t.find("------"), std::string::npos);
}

TEST(Format, SparklineLengthMatchesInput) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::string s = fmt::sparkline(xs);
  // Each block glyph is 3 UTF-8 bytes.
  EXPECT_EQ(s.size(), 9u);
  EXPECT_TRUE(fmt::sparkline({}).empty());
}

TEST(Error, RequireThrowsWithContext) {
  try {
    PERFVAR_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace perfvar
