/// Tests of the nonblocking point-to-point operations (Isend/Irecv/Wait)
/// and their interaction with the SOS synchronization policies.

#include <gtest/gtest.h>

#include "analysis/sos.hpp"
#include "sim/program.hpp"
#include "sim/simulator.hpp"
#include "trace/replay.hpp"
#include "util/error.hpp"
#include "lint/lint.hpp"

namespace perfvar::sim {
namespace {

SimOptions quietOptions() {
  SimOptions opts;
  opts.noise.sigma = 0.0;
  return opts;
}

TEST(Nonblocking, BuilderEnforcesWaitForEveryRequest) {
  ProgramBuilder b(2);
  b.isend(0, 1, 0, 64);
  b.irecv(1, 0, 0);
  EXPECT_THROW(b.finish(), Error);  // two unwaited requests
}

TEST(Nonblocking, WaitOnUnknownRequestRejected) {
  ProgramBuilder b(2);
  const auto req = b.isend(0, 1, 0, 64);
  b.wait(0, req);
  EXPECT_THROW(b.wait(0, req), Error);   // double wait
  EXPECT_THROW(b.wait(0, 99), Error);    // never posted
}

TEST(Nonblocking, IsendCompletesImmediatelyAtWait) {
  ProgramBuilder b(2);
  const auto req = b.isend(0, 1, 7, 1024);
  b.wait(0, req);
  b.recv(1, 0, 7);
  SimReport report;
  const trace::Trace tr = simulate(b.finish(), quietOptions(), &report);
  lint::requireStructurallyValid(tr);
  EXPECT_EQ(report.messages, 1u);
  // The sender's MPI_Wait frame has zero width (eager completion).
  const auto fWait = *tr.functions.find("MPI_Wait");
  for (const auto& frame : trace::collectFrames(tr.processes[0])) {
    if (frame.function == fWait) {
      EXPECT_EQ(frame.inclusive(), 0u);
    }
  }
}

TEST(Nonblocking, IrecvWaitBlocksUntilMessageArrives) {
  ProgramBuilder b(2);
  const auto f = b.function("work");
  const auto req = b.irecv(1, 0, 3);  // posted at t ~ 0
  b.compute(0, f, 0.25);              // sender busy first
  b.send(0, 1, 3, 2048);
  b.wait(1, req);
  const trace::Trace tr = simulate(b.finish(), quietOptions());
  const auto fWait = *tr.functions.find("MPI_Wait");
  bool sawWait = false;
  for (const auto& frame : trace::collectFrames(tr.processes[1])) {
    if (frame.function == fWait) {
      sawWait = true;
      EXPECT_GE(frame.leaveTime, 250'000'000u);  // waited for the sender
    }
  }
  EXPECT_TRUE(sawWait);
}

TEST(Nonblocking, OverlapHidesCommunicationTime) {
  // Rank 1 posts the receive, computes 0.3 s while the (slow, large)
  // message is in flight, then waits. With overlap the wait is short; a
  // blocking receive before the compute would waste the full transfer.
  SimOptions opts = quietOptions();
  opts.network.bandwidth = 1.0e8;  // 100 MB/s -> 0.1 s for 10 MB
  constexpr std::uint64_t kBytes = 10'000'000;

  const auto makeProgram = [&](bool overlap) {
    ProgramBuilder b(2);
    const auto f = b.function("work");
    b.send(0, 1, 1, kBytes);
    if (overlap) {
      const auto req = b.irecv(1, 0, 1);
      b.compute(1, f, 0.3);
      b.wait(1, req);
    } else {
      b.recv(1, 0, 1);
      b.compute(1, f, 0.3);
    }
    return b.finish();
  };

  SimReport withOverlap;
  simulate(makeProgram(true), opts, &withOverlap);
  SimReport without;
  simulate(makeProgram(false), opts, &without);
  // Overlapped: ~0.3 s. Blocking-first: ~0.1 + 0.3 = 0.4 s.
  EXPECT_LT(withOverlap.makespan, 0.32);
  EXPECT_GT(without.makespan, 0.39);
}

TEST(Nonblocking, WaitAllCompletesInPostingOrder) {
  ProgramBuilder b(3);
  b.irecv(0, 1, 0);
  b.irecv(0, 2, 0);
  b.waitAll(0);
  b.send(1, 0, 0, 64);
  b.send(2, 0, 0, 64);
  SimReport report;
  const trace::Trace tr = simulate(b.finish(), quietOptions(), &report);
  lint::requireStructurallyValid(tr);
  EXPECT_EQ(report.messages, 2u);
  // Two MPI_Wait frames on rank 0.
  const auto fWait = *tr.functions.find("MPI_Wait");
  std::size_t waits = 0;
  for (const auto& frame : trace::collectFrames(tr.processes[0])) {
    waits += frame.function == fWait;
  }
  EXPECT_EQ(waits, 2u);
}

TEST(Nonblocking, MissingSenderDeadlocks) {
  ProgramBuilder b(2);
  const auto f = b.function("work");
  const auto req = b.irecv(0, 1, 5);
  b.wait(0, req);
  b.compute(1, f, 0.01);
  EXPECT_THROW(simulate(b.finish(), quietOptions()), Error);
}

TEST(Nonblocking, BlockingOnlyPolicyChargesWaitNotPost) {
  // An iteration does: irecv + isend (cheap posts), compute, wait.
  // Under the Paradigm policy all four MPI calls are subtracted; under
  // BlockingOnly only MPI_Wait is - nonblocking posts keep their cost.
  ProgramBuilder b(2);
  const auto fStep = b.function("step");
  const auto fWork = b.function("work");
  for (std::uint32_t r = 0; r < 2; ++r) {
    const std::uint32_t peer = 1 - r;
    b.enter(r, fStep);
    const auto rr = b.irecv(r, peer, 0);
    b.compute(r, fWork, r == 0 ? 0.05 : 0.01);  // rank 0 sends late
    const auto rs = b.isend(r, peer, 0, 1024);
    b.wait(r, rr);
    b.wait(r, rs);
    b.leave(r, fStep);
  }
  const trace::Trace tr = simulate(b.finish(), quietOptions());
  const auto step = *tr.functions.find("step");

  const analysis::SosResult paradigm =
      analysis::analyzeSos(tr, step, analysis::SyncClassifier{});
  const analysis::SosResult blocking = analysis::analyzeSos(
      tr, step, analysis::SyncClassifier(analysis::SyncPolicy::BlockingOnly));

  for (trace::ProcessId p = 0; p < 2; ++p) {
    // BlockingOnly subtracts less (the post overheads stay in SOS).
    EXPECT_LE(blocking.process(p)[0].syncTime,
              paradigm.process(p)[0].syncTime);
  }
  // Rank 1's wait dominates and is charged under both policies.
  EXPECT_GT(blocking.process(1)[0].syncTime, 0u);
  const double waitSeconds =
      tr.toSeconds(blocking.process(1)[0].syncTime);
  EXPECT_NEAR(waitSeconds, 0.04, 0.005);  // ~the 0.05 - 0.01 gap
}

}  // namespace
}  // namespace perfvar::sim
