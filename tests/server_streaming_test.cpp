/// Streaming-equivalence differential over the analysis server: a trace
/// fed block-by-block through `append` must yield the same final analysis
/// report — byte for byte — and the same SOS alert sequence as (a) the
/// whole trace appended in one shot and (b) the same trace loaded from a
/// file into an engine entry. Plus the memory-budget contract: exceeding
/// a budget evicts LRU entries, evicted names answer Evicted frames, and
/// re-loading resurrects them.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "server/client.hpp"
#include "server/server.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/filter.hpp"
#include "util/socket.hpp"

namespace perfvar::server {
namespace {

/// Client connected to its own in-process server.
struct Rig {
  Server server;
  Client client;

  explicit Rig(ServerOptions options = {})
      : server(options), client(connect(server)) {}

  static Client connect(Server& server) {
    auto [serverEnd, clientEnd] = util::socketPair();
    server.serveConnection(std::move(serverEnd));
    return Client{std::move(clientEnd)};
  }
};

/// Two ranks, 100 iterations, one 10x outlier on rank 1 iteration 70 —
/// late enough that the default streaming warmup has history to flag it.
trace::Trace outlierTrace() {
  trace::TraceBuilder b(2);
  const auto fStep = b.defineFunction("step");
  const auto fSync = b.defineFunction("MPI_Barrier", "MPI",
                                      trace::Paradigm::MPI);
  for (std::size_t i = 0; i < 100; ++i) {
    for (trace::ProcessId p = 0; p < 2; ++p) {
      const auto t0 = static_cast<trace::Timestamp>(i) * 1000 + p;
      const trace::Timestamp w =
          (p == 1 && i == 70) ? 900 : 90 + (p * 5 + i * 3) % 7;
      b.enter(p, t0, fStep);
      b.enter(p, t0 + 2, fSync);
      b.leave(p, t0 + 4 + (p + i) % 3, fSync);
      b.leave(p, t0 + w, fStep);
    }
  }
  return b.finish();
}

std::string imageOf(const trace::Trace& tr) {
  std::ostringstream os;
  trace::writeBinary(tr, os);
  return os.str();
}

/// Outcome of streaming one trace into a server: the final report and
/// export plus every alert in arrival order.
struct StreamOutcome {
  std::string report;
  std::string exported;
  std::vector<std::string> alerts;
};

StreamOutcome streamInChunks(Client& c, const trace::Trace& tr,
                             std::size_t chunks) {
  EXPECT_TRUE(c.open("live", "step threshold 6.0").ok());
  EXPECT_TRUE(c.subscribe("live").ok());
  StreamOutcome out;
  for (const trace::Trace& chunk : trace::splitByTime(tr, chunks)) {
    const ClientResponse r = c.append("live", imageOf(chunk));
    EXPECT_TRUE(r.ok()) << r.payload;
    out.alerts.insert(out.alerts.end(), r.alerts.begin(), r.alerts.end());
  }
  const ClientResponse report = c.analyze("live");
  EXPECT_EQ(report.type, FrameType::Data);
  out.report = report.payload;
  const ClientResponse exported = c.exportReport("live json");
  EXPECT_EQ(exported.type, FrameType::Data);
  out.exported = exported.payload;
  return out;
}

TEST(ServerStreaming, ChunkedAppendEqualsOneShotAppend) {
  const trace::Trace tr = outlierTrace();
  Rig oneShot;
  Rig chunked;
  const StreamOutcome a = streamInChunks(oneShot.client, tr, 1);
  const StreamOutcome b = streamInChunks(chunked.client, tr, 7);
  EXPECT_FALSE(a.report.empty());
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.exported, b.exported);
  ASSERT_FALSE(a.alerts.empty());  // the outlier must be flagged at all
  EXPECT_EQ(a.alerts, b.alerts);
  EXPECT_NE(a.alerts.front().find("process 1"), std::string::npos);
  EXPECT_NE(a.alerts.front().find("segment 70"), std::string::npos);
}

TEST(ServerStreaming, StreamedTraceEqualsFileLoadedEngine) {
  const trace::Trace tr = outlierTrace();
  const std::string path = "server_streaming_test.pvt";
  trace::saveBinaryFile(tr, path);

  Rig streamed;
  const StreamOutcome live = streamInChunks(streamed.client, tr, 5);

  Rig fileBacked;
  ASSERT_TRUE(fileBacked.client.load("disk", path).ok());
  const ClientResponse report = fileBacked.client.analyze("disk");
  ASSERT_EQ(report.type, FrameType::Data);
  EXPECT_EQ(report.payload, live.report);
  const ClientResponse exported = fileBacked.client.exportReport("disk json");
  ASSERT_EQ(exported.type, FrameType::Data);
  EXPECT_EQ(exported.payload, live.exported);
  // The lint view agrees too (live lints on demand, engines cache it).
  const ClientResponse lintLive = streamed.client.lint("live");
  const ClientResponse lintDisk = fileBacked.client.lint("disk");
  ASSERT_EQ(lintLive.type, FrameType::Data);
  EXPECT_EQ(lintLive.payload, lintDisk.payload);
}

TEST(ServerStreaming, ChunkCountsAreReportedPerAppend) {
  const trace::Trace tr = outlierTrace();
  Rig rig;
  ASSERT_TRUE(rig.client.open("live", "step").ok());
  std::size_t events = 0;
  for (const trace::Trace& chunk : trace::splitByTime(tr, 4)) {
    const ClientResponse r = rig.client.append("live", imageOf(chunk));
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r.payload.find(std::to_string(chunk.eventCount()) + " events"),
              std::string::npos)
        << r.payload;
    events += chunk.eventCount();
  }
  EXPECT_EQ(events, tr.eventCount());
  const ClientResponse stats = rig.client.stats("live");
  ASSERT_EQ(stats.type, FrameType::Data);
  EXPECT_NE(stats.payload.find("appends: 4"), std::string::npos);
  EXPECT_NE(stats.payload.find("segments: 200"), std::string::npos);
}

// ---- memory budgets --------------------------------------------------------

TEST(ServerStreaming, GlobalBudgetEvictsLeastRecentlyUsed) {
  const trace::Trace tr = outlierTrace();
  const std::string path = "server_streaming_budget.pvt";
  trace::saveBinaryFile(tr, path);

  ServerOptions options;
  options.maxResidentBytes = 1;  // nothing fits: every new load evicts
  Rig rig(options);
  ASSERT_TRUE(rig.client.load("a", path).ok());
  ASSERT_TRUE(rig.client.load("b", path).ok());
  // "a" was least recently used and had to go.
  EXPECT_EQ(rig.client.analyze("a").type, FrameType::Evicted);
  EXPECT_EQ(rig.client.evict("a").type, FrameType::Evicted);
  // "b" is the entry just touched; it may exceed the budget alone and
  // must NOT be evicted to make room for nothing.
  EXPECT_TRUE(rig.client.analyze("b").ok());
  const ClientResponse stats = rig.client.stats();
  ASSERT_EQ(stats.type, FrameType::Data);
  EXPECT_NE(stats.payload.find("evictions: 1"), std::string::npos)
      << stats.payload;
  // Re-loading resurrects the name.
  ASSERT_TRUE(rig.client.load("a", path).ok());
  EXPECT_TRUE(rig.client.analyze("a").ok());
}

TEST(ServerStreaming, SessionBudgetDoesNotEvictOtherSessions) {
  const trace::Trace tr = outlierTrace();
  const std::string path = "server_streaming_budget.pvt";
  trace::saveBinaryFile(tr, path);

  ServerOptions options;
  options.maxSessionBytes = 1;  // one resident trace per session, at most
  Server server(options);
  Client one = Rig::connect(server);
  Client two = Rig::connect(server);
  ASSERT_TRUE(two.load("other", path).ok());
  ASSERT_TRUE(one.load("a", path).ok());
  ASSERT_TRUE(one.load("b", path).ok());
  // Session one's older trace was evicted; session two's is untouched.
  EXPECT_EQ(one.analyze("a").type, FrameType::Evicted);
  EXPECT_TRUE(one.analyze("b").ok());
  EXPECT_TRUE(two.analyze("other").ok());
}

TEST(ServerStreaming, ExplicitEvictionFreesTheName) {
  const trace::Trace tr = outlierTrace();
  Rig rig;
  ASSERT_TRUE(rig.client.open("live", "step").ok());
  ASSERT_TRUE(rig.client.append("live", imageOf(tr)).ok());
  EXPECT_EQ(rig.client.evict("live").type, FrameType::Ok);
  EXPECT_EQ(rig.client.analyze("live").type, FrameType::Evicted);
  EXPECT_EQ(rig.client.append("live", imageOf(tr)).type, FrameType::Evicted);
  // Reopening clears the tombstone and starts a fresh stream.
  ASSERT_TRUE(rig.client.open("live", "step").ok());
  const ClientResponse r = rig.client.append("live", imageOf(tr));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.payload.find("200 segments"), std::string::npos) << r.payload;
}

// ---- the reorder window ----------------------------------------------------

TEST(ServerStreaming, ReorderWindowMakesScrambledDeliveryEqualOrdered) {
  const trace::Trace tr = outlierTrace();
  const std::vector<trace::Trace> chunks = trace::splitByTime(tr, 7);
  const std::size_t scrambled[] = {3, 0, 2, 1, 6, 4, 5};

  // Ordered delivery through a window-less server: the baseline.
  Rig ordered;
  const StreamOutcome a = streamInChunks(ordered.client, tr, 7);

  // Scrambled delivery through a generous window.
  ServerOptions options;
  options.reorderWindowBytes = 64 * 1024 * 1024;
  Rig rig(options);
  ASSERT_TRUE(rig.client.open("live", "step threshold 6.0").ok());
  ASSERT_TRUE(rig.client.subscribe("live").ok());
  for (const std::size_t i : scrambled) {
    const ClientResponse r = rig.client.append("live", imageOf(chunks[i]));
    ASSERT_TRUE(r.ok()) << r.payload;
    EXPECT_NE(r.payload.find("buffered live:"), std::string::npos)
        << r.payload;
  }
  // Reads flush the window in time order: analysis and export are
  // byte-identical to the time-ordered, unbuffered delivery.
  const ClientResponse report = rig.client.analyze("live");
  ASSERT_EQ(report.type, FrameType::Data);
  EXPECT_EQ(report.payload, a.report);
  const ClientResponse exported = rig.client.exportReport("live json");
  ASSERT_EQ(exported.type, FrameType::Data);
  EXPECT_EQ(exported.payload, a.exported);
  // The flush delivered the same alert sequence to the subscriber (they
  // ride the read's response stream, Alert frames before the Data).
  ASSERT_FALSE(a.alerts.empty());
  EXPECT_EQ(report.alerts, a.alerts);
}

TEST(ServerStreaming, WindowOverflowFlushesEarliestChunksFirst) {
  const trace::Trace tr = outlierTrace();
  const std::vector<trace::Trace> chunks = trace::splitByTime(tr, 4);

  ServerOptions options;
  options.reorderWindowBytes = 1;  // every event-carrying chunk overflows
  Rig rig(options);
  ASSERT_TRUE(rig.client.open("live", "step threshold 6.0").ok());
  for (const trace::Trace& chunk : chunks) {
    const ClientResponse r = rig.client.append("live", imageOf(chunk));
    ASSERT_TRUE(r.ok()) << r.payload;
    // The chunk enters the window, immediately overflows the 1-byte
    // bound, and is flushed (committed) right back out.
    EXPECT_NE(r.payload.find("flushed 1 chunks"), std::string::npos)
        << r.payload;
  }
  const ClientResponse stats = rig.client.stats("live");
  ASSERT_EQ(stats.type, FrameType::Data);
  EXPECT_NE(stats.payload.find("window: 0 chunks, 0 bytes"),
            std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find("segments: 200"), std::string::npos);
}

TEST(ServerStreaming, ChunkBehindTheCommittedTailIsAStructuredError) {
  const trace::Trace tr = outlierTrace();
  const std::vector<trace::Trace> chunks = trace::splitByTime(tr, 4);

  ServerOptions options;
  options.reorderWindowBytes = 1;  // tiny: every append commits at once
  Rig rig(options);
  ASSERT_TRUE(rig.client.open("live", "step threshold 6.0").ok());
  ASSERT_TRUE(rig.client.append("live", imageOf(chunks[2])).ok());
  // chunks[0] starts before the committed tail: the window has already
  // flushed past it, and the error says so deterministically.
  const ClientResponse r = rig.client.append("live", imageOf(chunks[0]));
  ASSERT_EQ(r.type, FrameType::Error);
  EXPECT_EQ(r.error().code, ErrorCode::ChunkOutOfWindow) << r.error().message;
  EXPECT_NE(r.error().message.find("reorder window"), std::string::npos);
  // The stream is still healthy for in-order progress.
  EXPECT_TRUE(rig.client.append("live", imageOf(chunks[3])).ok());
}

TEST(ServerStreaming, StatsObserveTheWindowWithoutFlushingIt) {
  const trace::Trace tr = outlierTrace();
  const std::vector<trace::Trace> chunks = trace::splitByTime(tr, 3);

  ServerOptions options;
  options.reorderWindowBytes = 64 * 1024 * 1024;
  Rig rig(options);
  ASSERT_TRUE(rig.client.open("live", "step threshold 6.0").ok());
  ASSERT_TRUE(rig.client.append("live", imageOf(chunks[1])).ok());
  const ClientResponse stats = rig.client.stats("live");
  ASSERT_EQ(stats.type, FrameType::Data);
  EXPECT_NE(stats.payload.find("window: 1 chunks"), std::string::npos)
      << stats.payload;
  EXPECT_NE(stats.payload.find("journal: off"), std::string::npos);
  // stats did not flush: a second stats still sees the buffered chunk.
  const ClientResponse again = rig.client.stats("live");
  EXPECT_NE(again.payload.find("window: 1 chunks"), std::string::npos);
  // Complete the stream (still buffered), then read: a read does flush,
  // committing all three chunks in time order.
  ASSERT_TRUE(rig.client.append("live", imageOf(chunks[0])).ok());
  ASSERT_TRUE(rig.client.append("live", imageOf(chunks[2])).ok());
  const ClientResponse full = rig.client.stats("live");
  EXPECT_NE(full.payload.find("window: 3 chunks"), std::string::npos)
      << full.payload;
  const ClientResponse analyzed = rig.client.analyze("live");
  ASSERT_EQ(analyzed.type, FrameType::Data) << analyzed.payload;
  const ClientResponse after = rig.client.stats("live");
  EXPECT_NE(after.payload.find("window: 0 chunks"), std::string::npos);
}

}  // namespace
}  // namespace perfvar::server
