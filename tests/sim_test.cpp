#include <gtest/gtest.h>

#include "analysis/sos.hpp"
#include "sim/network.hpp"
#include "sim/program.hpp"
#include "sim/simulator.hpp"
#include "trace/replay.hpp"
#include "util/error.hpp"
#include "lint/lint.hpp"

namespace perfvar::sim {
namespace {

SimOptions quietOptions() {
  SimOptions opts;
  opts.noise.sigma = 0.0;
  return opts;
}

// --- network model ------------------------------------------------------------

TEST(Network, TreeStages) {
  EXPECT_EQ(treeStages(1), 1u);
  EXPECT_EQ(treeStages(2), 1u);
  EXPECT_EQ(treeStages(3), 2u);
  EXPECT_EQ(treeStages(64), 6u);
  EXPECT_EQ(treeStages(100), 7u);
}

TEST(Network, CostsScaleWithBytesAndRanks) {
  const NetworkModel net;
  EXPECT_GT(net.messageDelay(1 << 20), net.messageDelay(64));
  EXPECT_GT(net.allreduceCost(64, 1024), net.barrierCost(64));
  EXPECT_GT(net.barrierCost(128), net.barrierCost(4));
  EXPECT_DOUBLE_EQ(net.transferTime(0), 0.0);
}

// --- program builder ------------------------------------------------------------

TEST(Program, BuilderValidatesStructure) {
  ProgramBuilder b(2);
  const auto f = b.function("f");
  b.enter(0, f);
  EXPECT_THROW(b.finish(), Error);  // unclosed region
}

TEST(Program, BuilderValidatesArguments) {
  ProgramBuilder b(2);
  const auto f = b.function("f");
  EXPECT_THROW(b.compute(0, f, -1.0), Error);
  EXPECT_THROW(b.compute(5, f, 1.0), Error);
  EXPECT_THROW(b.send(0, 0, 0, 8), Error);   // self-send
  EXPECT_THROW(b.recv(1, 1, 0), Error);      // self-recv
  EXPECT_THROW(b.bcast(0, 7, 8), Error);     // bad root
  EXPECT_THROW(b.leave(0, f), Error);        // leave without enter
}

TEST(Program, AutoDefinesMpiFunctions) {
  ProgramBuilder b(2);
  b.barrierAll();
  const Program p = b.finish();
  ASSERT_NE(p.fnBarrier, trace::kInvalidFunction);
  EXPECT_EQ(p.functions.at(p.fnBarrier).name, "MPI_Barrier");
  EXPECT_EQ(p.functions.at(p.fnBarrier).paradigm, trace::Paradigm::MPI);
  EXPECT_EQ(p.totalOps(), 2u);
}

// --- compute & counters -----------------------------------------------------------

TEST(Simulate, ComputeProducesMatchingEnterLeave) {
  ProgramBuilder b(1);
  const auto f = b.function("work");
  b.compute(0, f, 0.5);
  b.compute(0, f, 0.25);
  SimReport report;
  const trace::Trace tr = simulate(b.finish(), quietOptions(), &report);
  lint::requireStructurallyValid(tr);
  EXPECT_NEAR(report.makespan, 0.75, 1e-9);
  const auto frames = trace::collectFrames(tr.processes[0]);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].inclusive(), 500'000'000u);
  EXPECT_EQ(frames[1].inclusive(), 250'000'000u);
}

TEST(Simulate, CyclesCounterTracksBusyTimeNotOsDelay) {
  ProgramBuilder b(1);
  const auto f = b.function("work");
  ComputeAttrs interrupted;
  interrupted.osDelay = 0.4;
  b.compute(0, f, 0.1, interrupted);
  SimOptions opts = quietOptions();
  opts.counters.clockGhz = 2.0;
  const trace::Trace tr = simulate(b.finish(), opts);
  const auto cycles = *tr.metrics.find("PAPI_TOT_CYC");
  // Wall time 0.5 s, but only 0.1 s of cycles at 2 GHz.
  const auto frames = trace::collectFrames(tr.processes[0]);
  EXPECT_EQ(frames[0].inclusive(), 500'000'000u);
  double lastValue = 0.0;
  for (const auto& e : tr.processes[0].events) {
    if (e.kind == trace::EventKind::Metric && e.ref == cycles) {
      lastValue = e.value;
    }
  }
  EXPECT_NEAR(lastValue, 0.1 * 2.0e9, 1.0);
}

TEST(Simulate, FpExceptionCounterAccumulates) {
  ProgramBuilder b(1);
  const auto f = b.function("work");
  ComputeAttrs attrs;
  attrs.fpExceptions = 123.0;
  b.compute(0, f, 0.01, attrs);
  b.compute(0, f, 0.01, attrs);
  const trace::Trace tr = simulate(b.finish(), quietOptions());
  const auto fpe = *tr.metrics.find("FR_FPU_EXCEPTIONS_SSE_MICROTRAPS");
  double lastValue = 0.0;
  for (const auto& e : tr.processes[0].events) {
    if (e.kind == trace::EventKind::Metric && e.ref == fpe) {
      lastValue = e.value;
    }
  }
  EXPECT_DOUBLE_EQ(lastValue, 246.0);
}

TEST(Simulate, NoiseIsDeterministicPerSeed) {
  const auto build = [] {
    ProgramBuilder b(2);
    const auto f = b.function("work");
    for (int i = 0; i < 5; ++i) {
      b.compute(0, f, 0.01);
      b.compute(1, f, 0.01);
    }
    return b.finish();
  };
  SimOptions opts;
  opts.noise.sigma = 0.2;
  opts.noise.seed = 99;
  const trace::Trace a = simulate(build(), opts);
  const trace::Trace b2 = simulate(build(), opts);
  ASSERT_EQ(a.processes[0].events.size(), b2.processes[0].events.size());
  for (std::size_t i = 0; i < a.processes[0].events.size(); ++i) {
    EXPECT_EQ(a.processes[0].events[i], b2.processes[0].events[i]);
  }
  opts.noise.seed = 100;
  const trace::Trace c = simulate(build(), opts);
  EXPECT_NE(a.processes[0].events.back().time,
            c.processes[0].events.back().time);
}

// --- collectives --------------------------------------------------------------------

TEST(Simulate, BarrierReleasesAllAtLastArrival) {
  ProgramBuilder b(3);
  const auto f = b.function("work");
  b.compute(0, f, 0.10);
  b.compute(1, f, 0.30);
  b.compute(2, f, 0.20);
  b.barrierAll();
  const trace::Trace tr = simulate(b.finish(), quietOptions());
  const auto fBarrier = *tr.functions.find("MPI_Barrier");
  std::vector<trace::Timestamp> leaves;
  std::vector<trace::Timestamp> waits;
  for (const auto& proc : tr.processes) {
    for (const auto& frame : trace::collectFrames(proc)) {
      if (frame.function == fBarrier) {
        leaves.push_back(frame.leaveTime);
        waits.push_back(frame.inclusive());
      }
    }
  }
  ASSERT_EQ(leaves.size(), 3u);
  EXPECT_EQ(leaves[0], leaves[1]);
  EXPECT_EQ(leaves[1], leaves[2]);
  // Fastest rank waits the longest; slowest the shortest.
  EXPECT_GT(waits[0], waits[2]);
  EXPECT_GT(waits[2], waits[1]);
  // Completion is after the last arrival (0.30 s).
  EXPECT_GE(leaves[0], 300'000'000u);
}

TEST(Simulate, BcastWaitsForRootOnly) {
  ProgramBuilder b(3);
  const auto f = b.function("work");
  b.compute(0, f, 0.5);  // root arrives last
  b.compute(1, f, 0.1);
  b.compute(2, f, 0.2);
  for (std::uint32_t r = 0; r < 3; ++r) {
    b.bcast(r, 0, 1024);
  }
  const trace::Trace tr = simulate(b.finish(), quietOptions());
  const auto fBcast = *tr.functions.find("MPI_Bcast");
  for (trace::ProcessId p = 1; p < 3; ++p) {
    for (const auto& frame : trace::collectFrames(tr.processes[p])) {
      if (frame.function == fBcast) {
        EXPECT_GE(frame.leaveTime, 500'000'000u);  // waited for the root
      }
    }
  }
}

TEST(Simulate, MismatchedCollectivesThrow) {
  ProgramBuilder b(2);
  b.barrier(0);
  b.allreduce(1, 64);
  EXPECT_THROW(simulate(b.finish(), quietOptions()), Error);
}

TEST(Simulate, MissingCollectiveParticipantDeadlocks) {
  ProgramBuilder b(2);
  b.barrier(0);  // rank 1 never joins
  EXPECT_THROW(simulate(b.finish(), quietOptions()), Error);
}

// --- point-to-point -----------------------------------------------------------------

TEST(Simulate, RecvBlocksUntilMessageArrives) {
  ProgramBuilder b(2);
  const auto f = b.function("work");
  b.compute(0, f, 0.2);     // sender is slow
  b.send(0, 1, 7, 1024);
  b.recv(1, 0, 7);          // receiver posts immediately
  const trace::Trace tr = simulate(b.finish(), quietOptions());
  const auto fRecv = *tr.functions.find("MPI_Recv");
  const auto frames = trace::collectFrames(tr.processes[1]);
  ASSERT_FALSE(frames.empty());
  const auto& recvFrame = frames.front();
  EXPECT_EQ(recvFrame.function, fRecv);
  EXPECT_EQ(recvFrame.enterTime, 0u);
  EXPECT_GE(recvFrame.leaveTime, 200'000'000u);  // waited for the sender
}

TEST(Simulate, MessagesMatchFifoPerTag) {
  ProgramBuilder b(2);
  const auto f = b.function("work");
  b.send(0, 1, 1, 100);
  b.send(0, 1, 1, 200);
  b.send(0, 1, 2, 300);
  b.compute(1, f, 0.01);
  b.recv(1, 0, 2);  // tag 2 first: gets the 300-byte message
  b.recv(1, 0, 1);  // then FIFO on tag 1: 100 before 200
  b.recv(1, 0, 1);
  const trace::Trace tr = simulate(b.finish(), quietOptions());
  std::vector<std::uint64_t> recvSizes;
  for (const auto& e : tr.processes[1].events) {
    if (e.kind == trace::EventKind::MpiRecv) {
      recvSizes.push_back(e.size);
    }
  }
  ASSERT_EQ(recvSizes.size(), 3u);
  EXPECT_EQ(recvSizes[0], 300u);
  EXPECT_EQ(recvSizes[1], 100u);
  EXPECT_EQ(recvSizes[2], 200u);
}

TEST(Simulate, SendRecvEventsCarryPeerAndBytes) {
  ProgramBuilder b(2);
  b.send(0, 1, 9, 4096);
  b.recv(1, 0, 9);
  SimReport report;
  const trace::Trace tr = simulate(b.finish(), quietOptions(), &report);
  EXPECT_EQ(report.messages, 1u);
  bool sawSend = false;
  for (const auto& e : tr.processes[0].events) {
    if (e.kind == trace::EventKind::MpiSend) {
      sawSend = true;
      EXPECT_EQ(e.ref, 1u);
      EXPECT_EQ(e.aux, 9u);
      EXPECT_EQ(e.size, 4096u);
    }
  }
  EXPECT_TRUE(sawSend);
}

TEST(Simulate, RecvWithoutSendDeadlocks) {
  ProgramBuilder b(2);
  const auto f = b.function("work");
  b.compute(0, f, 0.01);
  b.recv(1, 0, 5);
  try {
    simulate(b.finish(), quietOptions());
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos);
  }
}

TEST(Simulate, CrossedSendsDoNotDeadlock) {
  // Eager sends: both ranks send first, then receive - legal here.
  ProgramBuilder b(2);
  b.send(0, 1, 0, 1024);
  b.send(1, 0, 0, 1024);
  b.recv(0, 1, 0);
  b.recv(1, 0, 0);
  SimReport report;
  const trace::Trace tr = simulate(b.finish(), quietOptions(), &report);
  lint::requireStructurallyValid(tr);
  EXPECT_EQ(report.messages, 2u);
}

// --- integration with the analysis layer ---------------------------------------------

TEST(Simulate, WaitTimesAppearAsSyncTimeInSosAnalysis) {
  ProgramBuilder b(2);
  const auto fStep = b.function("step");
  const auto fWork = b.function("work");
  for (int i = 0; i < 4; ++i) {
    for (std::uint32_t r = 0; r < 2; ++r) {
      b.enter(r, fStep);
      b.compute(r, fWork, r == 0 ? 0.10 : 0.02);
      b.barrier(r);
      b.leave(r, fStep);
    }
  }
  const trace::Trace tr = simulate(b.finish(), quietOptions());
  const analysis::SosResult sos = analysis::analyzeSos(tr, fStep);
  for (std::size_t i = 0; i < 4; ++i) {
    // Durations nearly equal; SOS exposes the 5x difference.
    EXPECT_NEAR(sos.durationSeconds(0, i), sos.durationSeconds(1, i), 1e-3);
    EXPECT_NEAR(sos.sosSeconds(0, i), 0.10, 1e-3);
    EXPECT_NEAR(sos.sosSeconds(1, i), 0.02, 1e-3);
  }
}

}  // namespace
}  // namespace perfvar::sim
