/// End-to-end integration tests for the trace_tool CLI: exit-code
/// contract (0 success, 1 runtime error, 2 usage error), rejection of
/// unknown flags/commands, and the `query` session answering from one
/// loaded trace. The binary path comes in via PERFVAR_TRACE_TOOL_BIN.

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <fstream>
#include <string>

#include <sys/wait.h>

#include "apps/cosmo_specs.hpp"
#include "sim/simulator.hpp"
#include "trace/binary_io.hpp"
#include "trace/fault_injection.hpp"

#ifndef PERFVAR_TRACE_TOOL_BIN
#error "PERFVAR_TRACE_TOOL_BIN must point at the trace_tool executable"
#endif

namespace perfvar {
namespace {

struct RunResult {
  int exitCode = -1;
  std::string out;
};

/// Run a shell command, capture stdout and the exit code. stderr is left
/// alone (it shows up in the test log, which is where diagnostics belong).
RunResult run(const std::string& command) {
  RunResult r;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return r;
  }
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) {
    r.out.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) {
    r.exitCode = WEXITSTATUS(status);
  }
  return r;
}

std::string tool() { return std::string(PERFVAR_TRACE_TOOL_BIN); }

/// Per-process fixture file name: ctest runs each test in its own
/// process from one working directory, so a fixed name would let two
/// concurrently-starting tests race on writing the same file.
std::string uniqueName(const std::string& stem) {
  return stem + "_" + std::to_string(getpid()) + ".pvt";
}

/// Shared fixture trace on disk (written once per test binary).
const std::string& tracePath() {
  static const std::string path = [] {
    apps::CosmoSpecsConfig cfg;
    cfg.gridX = 4;
    cfg.gridY = 4;
    cfg.timesteps = 12;
    const auto scenario = apps::buildCosmoSpecs(cfg);
    const trace::Trace tr =
        sim::simulate(scenario.program, scenario.simOptions);
    const std::string p = uniqueName("tool_cli_test");
    trace::saveBinaryFile(tr, p);
    return p;
  }();
  return path;
}

/// A copy of the fixture trace with one rank's v2 block corrupted
/// (written once per test binary).
const std::string& corruptTracePath() {
  static const std::string path = [] {
    tracePath();  // ensure the clean fixture exists
    const trace::Trace tr = trace::loadBinaryFile(tracePath());
    const perfvar::testing::Image clean =
        perfvar::testing::encodeImage(tr, trace::kBinaryFormatV2);
    const trace::BinaryFileInfo info =
        trace::inspectBinaryBuffer(clean.data(), clean.size());
    const trace::BinaryBlockInfo& block = info.blocks.back();
    perfvar::testing::FaultInjector injector(11);
    const perfvar::testing::Image bad = injector.bitFlip(
        clean, static_cast<std::size_t>(block.offset),
        static_cast<std::size_t>(block.offset) +
            static_cast<std::size_t>(block.bytes));
    const std::string p = uniqueName("tool_cli_test_corrupt");
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bad.data()),
              static_cast<std::streamsize>(bad.size()));
    return p;
  }();
  return path;
}

// ---- exit-code contract --------------------------------------------------

TEST(ToolCli, HelpPrintsUsageAndExitsZero) {
  const RunResult r = run(tool() + " --help");
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_NE(r.out.find("usage: trace_tool"), std::string::npos);
  EXPECT_NE(r.out.find("exit codes:"), std::string::npos);
}

TEST(ToolCli, UnknownOptionIsAUsageError) {
  const RunResult r = run(tool() + " --frobnicate 2>/dev/null");
  EXPECT_EQ(r.exitCode, 2);
}

TEST(ToolCli, UnknownCommandIsAUsageError) {
  const RunResult r = run(tool() + " frobnicate 2>/dev/null");
  EXPECT_EQ(r.exitCode, 2);
}

TEST(ToolCli, MissingArgumentsAreAUsageError) {
  EXPECT_EQ(run(tool() + " analyze 2>/dev/null").exitCode, 2);
  EXPECT_EQ(run(tool() + " slice a b 2>/dev/null").exitCode, 2);
  EXPECT_EQ(run(tool() + " --threads 2>/dev/null").exitCode, 2);
  EXPECT_EQ(run(tool() + " --threads x analyze t.pvt 2>/dev/null").exitCode,
            2);
}

TEST(ToolCli, UnreadableTraceIsARuntimeError) {
  const RunResult r =
      run(tool() + " stats definitely_missing.pvt 2>/dev/null");
  EXPECT_EQ(r.exitCode, 1);
}

TEST(ToolCli, UnknownScenarioIsARuntimeError) {
  const RunResult r =
      run(tool() + " generate no-such-scenario out.pvt 2>/dev/null");
  EXPECT_EQ(r.exitCode, 1);
}

// ---- file inspection and format selection --------------------------------

TEST(ToolCli, InfoPrintsV2LayoutSummary) {
  const RunResult r = run(tool() + " info " + tracePath());
  ASSERT_EQ(r.exitCode, 0);
  EXPECT_NE(r.out.find("format: v2"), std::string::npos);
  EXPECT_NE(r.out.find("size: "), std::string::npos);
  EXPECT_NE(r.out.find("events: "), std::string::npos);
  EXPECT_NE(r.out.find("rank blocks:"), std::string::npos);
  EXPECT_NE(r.out.find("events, "), std::string::npos);  // per-rank line
}

TEST(ToolCli, FormatFlagSelectsTheOnDiskLayout) {
  const std::string v1 = uniqueName("tool_cli_fmt_v1");
  const std::string v2 = uniqueName("tool_cli_fmt_v2");
  // A full-range slice is a copy; --format picks the output layout.
  ASSERT_EQ(run(tool() + " --format v1 slice " + tracePath() + " " + v1 +
                " 0 1e6").exitCode,
            0);
  ASSERT_EQ(run(tool() + " --format v2 slice " + tracePath() + " " + v2 +
                " 0 1e6").exitCode,
            0);

  const RunResult infoV1 = run(tool() + " info " + v1);
  ASSERT_EQ(infoV1.exitCode, 0);
  EXPECT_NE(infoV1.out.find("format: v1"), std::string::npos);
  const RunResult infoV2 = run(tool() + " info " + v2);
  ASSERT_EQ(infoV2.exitCode, 0);
  EXPECT_NE(infoV2.out.find("format: v2"), std::string::npos);

  // Both layouts hold the same trace: the analysis output is identical.
  const RunResult a1 = run(tool() + " analyze " + v1);
  const RunResult a2 = run(tool() + " analyze " + v2);
  ASSERT_EQ(a1.exitCode, 0);
  ASSERT_EQ(a2.exitCode, 0);
  EXPECT_EQ(a1.out, a2.out);

  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

TEST(ToolCli, BadFormatValueIsAUsageError) {
  EXPECT_EQ(run(tool() + " --format v3 info " + tracePath() +
                " 2>/dev/null").exitCode,
            2);
  EXPECT_EQ(run(tool() + " --format 2>/dev/null").exitCode, 2);
}

TEST(ToolCli, InfoOnMissingFileIsARuntimeError) {
  EXPECT_EQ(run(tool() + " info definitely_missing.pvt 2>/dev/null").exitCode,
            1);
}

// ---- structured error lines ----------------------------------------------

TEST(ToolCli, MissingInputPrintsTheStructuredErrorLine) {
  // Swap the streams so the pipe captures stderr: load failures must be
  // one greppable `error: <code>: <path>` line.
  for (const std::string cmd : {"stats", "info", "analyze", "salvage"}) {
    const std::string trailing = cmd == "salvage" ? " out.pvt" : "";
    const RunResult r = run(tool() + " " + cmd + " definitely_missing.pvt" +
                            trailing + " 2>&1 1>/dev/null");
    EXPECT_EQ(r.exitCode, 1) << cmd;
    EXPECT_NE(r.out.find("error: io-failure: definitely_missing.pvt"),
              std::string::npos)
        << cmd << " stderr: " << r.out;
  }
}

TEST(ToolCli, CorruptInputPrintsTheStructuredErrorLine) {
  const RunResult r =
      run(tool() + " stats " + corruptTracePath() + " 2>&1 1>/dev/null");
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.out.find("error: checksum-mismatch: " + corruptTracePath()),
            std::string::npos)
      << "stderr: " << r.out;
}

// ---- salvage and verification --------------------------------------------

TEST(ToolCli, InfoVerifyReportsCleanFilesAsOk) {
  const RunResult r = run(tool() + " info --verify " + tracePath());
  ASSERT_EQ(r.exitCode, 0);
  EXPECT_NE(r.out.find("salvage mode"), std::string::npos);
  EXPECT_NE(r.out.find("ranks ok"), std::string::npos);
  EXPECT_EQ(r.out.find("quarantined"), std::string::npos);
}

TEST(ToolCli, InfoVerifyFlagsACorruptFile) {
  const RunResult r = run(tool() + " info --verify " + corruptTracePath());
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.out.find("quarantined: checksum-mismatch"), std::string::npos)
      << r.out;
}

TEST(ToolCli, SalvageRecoversACorruptFileIntoACleanOne) {
  const std::string recovered = uniqueName("tool_cli_test_recovered");
  const RunResult r =
      run(tool() + " salvage " + corruptTracePath() + " " + recovered);
  ASSERT_EQ(r.exitCode, 0) << r.out;
  EXPECT_NE(r.out.find("quarantined"), std::string::npos);
  EXPECT_NE(r.out.find("wrote " + recovered), std::string::npos);

  // The rewritten file is clean: strict loads and validation succeed.
  EXPECT_EQ(run(tool() + " validate " + recovered).exitCode, 0);
  const RunResult verify = run(tool() + " info --verify " + recovered);
  EXPECT_EQ(verify.exitCode, 0);
  std::remove(recovered.c_str());
}

TEST(ToolCli, SalvageFlagLetsAnalyzeRunOnACorruptFile) {
  // Without --salvage the analysis refuses the damaged input ...
  EXPECT_EQ(run(tool() + " analyze " + corruptTracePath() +
                " 2>/dev/null").exitCode,
            1);
  // ... with it the healthy ranks are analyzed and the report says so.
  const RunResult r =
      run(tool() + " --salvage analyze " + corruptTracePath());
  ASSERT_EQ(r.exitCode, 0) << r.out;
  EXPECT_NE(r.out.find("degraded input"), std::string::npos);
  EXPECT_NE(r.out.find("checksum-mismatch"), std::string::npos);
}

// ---- one-shot analysis ---------------------------------------------------

TEST(ToolCli, AnalyzeSucceedsAndThreadsDoNotChangeTheOutput) {
  const RunResult serial = run(tool() + " analyze " + tracePath());
  ASSERT_EQ(serial.exitCode, 0);
  EXPECT_NE(serial.out.find("dominant"), std::string::npos);

  const RunResult parallel =
      run(tool() + " --threads 4 analyze " + tracePath());
  ASSERT_EQ(parallel.exitCode, 0);
  EXPECT_EQ(parallel.out, serial.out);
}

// ---- lint ----------------------------------------------------------------
// The lint subcommand has its own exit-code contract: 0 = clean (below
// --fail-on), 1 = findings at/above --fail-on, 2 = trace unloadable.

TEST(ToolCli, LintCleanTraceExitsZeroWithNoFindings) {
  const RunResult r = run(tool() + " lint " + tracePath());
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_NE(r.out.find("no findings"), std::string::npos) << r.out;
}

TEST(ToolCli, LintUnloadableTraceExitsTwo) {
  // Without --salvage the corrupt file cannot be loaded at all: that is a
  // load error (2), distinct from "loaded but has findings" (1).
  const RunResult r =
      run(tool() + " lint " + corruptTracePath() + " 2>&1 1>/dev/null");
  EXPECT_EQ(r.exitCode, 2);
  EXPECT_NE(r.out.find("error: checksum-mismatch: " + corruptTracePath()),
            std::string::npos)
      << "stderr: " << r.out;
  EXPECT_EQ(run(tool() + " lint definitely_missing.pvt 2>/dev/null").exitCode,
            2);
}

TEST(ToolCli, LintSalvagedTraceExitsOneNamingQuarantineInteraction) {
  const RunResult r = run(tool() + " --salvage lint " + corruptTracePath());
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.out.find("[quarantine-interaction]"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("rank quarantined by salvage load"), std::string::npos);
}

TEST(ToolCli, LintFailOnThresholdControlsTheExitCode) {
  // The salvaged trace's findings are warnings: a warning threshold
  // (default) fails, an error threshold passes.
  EXPECT_EQ(run(tool() + " --salvage lint --fail-on warning " +
                corruptTracePath() + " > /dev/null").exitCode,
            1);
  EXPECT_EQ(run(tool() + " --salvage lint --fail-on error " +
                corruptTracePath() + " > /dev/null").exitCode,
            0);
  // Unknown severity names are usage errors.
  EXPECT_EQ(run(tool() + " lint --fail-on fatal " + tracePath() +
                " 2>/dev/null").exitCode,
            2);
  EXPECT_EQ(run(tool() + " lint --fail-on 2>/dev/null").exitCode, 2);
}

TEST(ToolCli, LintDisableSuppressesARule) {
  const RunResult full = run(tool() + " --salvage lint " + corruptTracePath());
  ASSERT_NE(full.out.find("[quarantine-interaction]"), std::string::npos);
  const RunResult suppressed =
      run(tool() + " --salvage lint --disable quarantine-interaction " +
          corruptTracePath());
  EXPECT_EQ(suppressed.out.find("[quarantine-interaction]"),
            std::string::npos)
      << suppressed.out;
}

TEST(ToolCli, LintJsonIsDeterministicAcrossThreads) {
  const RunResult serial =
      run(tool() + " --salvage lint --json " + corruptTracePath());
  EXPECT_EQ(serial.exitCode, 1);
  EXPECT_EQ(serial.out.rfind("{\"lint\":", 0), 0u) << serial.out;
  const RunResult parallel = run(tool() + " --threads 4 --salvage lint --json " +
                                 corruptTracePath());
  EXPECT_EQ(parallel.exitCode, 1);
  EXPECT_EQ(parallel.out, serial.out);
}

TEST(ToolCli, LintOnlyRestrictsTheRunToTheListedRules) {
  // The salvaged trace has quarantine-interaction findings; restricting
  // the run to an unrelated rule must come back clean (exit 0).
  const RunResult restricted =
      run(tool() + " --salvage lint --only zero-duration " +
          corruptTracePath());
  EXPECT_EQ(restricted.exitCode, 0) << restricted.out;
  EXPECT_EQ(restricted.out.find("[quarantine-interaction]"),
            std::string::npos);
  // Selecting the firing rule preserves the findings exit code.
  const RunResult selected =
      run(tool() + " --salvage lint --only quarantine-interaction " +
          corruptTracePath());
  EXPECT_EQ(selected.exitCode, 1);
  EXPECT_NE(selected.out.find("[quarantine-interaction]"),
            std::string::npos);
}

TEST(ToolCli, LintExcludeSuppressesLikeDisable) {
  const RunResult r =
      run(tool() + " --salvage lint --exclude quarantine-interaction " +
          corruptTracePath());
  EXPECT_EQ(r.out.find("[quarantine-interaction]"), std::string::npos)
      << r.out;
}

TEST(ToolCli, LintUnknownRuleIdsAreUsageErrors) {
  // --only and --exclude are validated against the registry before any
  // trace is loaded: a typo exits 2, it does not silently run nothing.
  EXPECT_EQ(run(tool() + " lint --only no-such-rule " + tracePath() +
                " 2>/dev/null").exitCode,
            2);
  EXPECT_EQ(run(tool() + " lint --exclude no-such-rule " + tracePath() +
                " 2>/dev/null").exitCode,
            2);
  EXPECT_EQ(run(tool() + " lint --only zero-duration,no-such-rule " +
                tracePath() + " 2>/dev/null").exitCode,
            2);
  // Malformed lists (empty segments) are rejected by the parser itself.
  EXPECT_EQ(run(tool() + " lint --only zero-duration, " + tracePath() +
                " 2>/dev/null").exitCode,
            2);
}

// ---- critpath ------------------------------------------------------------

/// Fixture trace with planted cross-rank structure (written once per
/// test binary): the pipeline scenario with its serializing rank.
const std::string& pipelinePath() {
  static const std::string path = [] {
    const std::string p = uniqueName("tool_cli_pipeline");
    const RunResult r = run(tool() + " generate pipeline " + p);
    EXPECT_EQ(r.exitCode, 0) << r.out;
    return p;
  }();
  return path;
}

TEST(ToolCli, CritpathReportsTheSerializingRank) {
  const RunResult r = run(tool() + " critpath " + pipelinePath());
  ASSERT_EQ(r.exitCode, 0);
  EXPECT_NE(r.out.find("dependency analysis:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("dominated rank 4"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("'stage_compute'"), std::string::npos) << r.out;
}

TEST(ToolCli, CritpathFormatsAndArgumentValidation) {
  const RunResult json = run(tool() + " critpath " + pipelinePath() + " json");
  ASSERT_EQ(json.exitCode, 0);
  EXPECT_EQ(json.out.rfind("{\"dependency_analysis\":", 0), 0u) << json.out;
  const RunResult csv = run(tool() + " critpath " + pipelinePath() + " csv");
  ASSERT_EQ(csv.exitCode, 0);
  EXPECT_EQ(csv.out.rfind("step,kind,", 0), 0u) << csv.out;
  // Unsupported formats and missing operands are usage errors.
  EXPECT_EQ(run(tool() + " critpath " + pipelinePath() +
                " csv-iterations 2>/dev/null").exitCode,
            2);
  EXPECT_EQ(run(tool() + " critpath 2>/dev/null").exitCode, 2);
}

TEST(ToolCli, CritpathIsDeterministicAcrossThreadsAndLazyLoads) {
  const RunResult serial = run(tool() + " critpath " + pipelinePath());
  ASSERT_EQ(serial.exitCode, 0);
  const RunResult threaded =
      run(tool() + " --threads 4 critpath " + pipelinePath());
  ASSERT_EQ(threaded.exitCode, 0);
  EXPECT_EQ(threaded.out, serial.out);
  const RunResult lazy = run(tool() + " --lazy critpath " + pipelinePath());
  ASSERT_EQ(lazy.exitCode, 0);
  EXPECT_EQ(lazy.out, serial.out);
}

// ---- the query session ---------------------------------------------------

TEST(ToolCli, QuerySessionMatchesOneShotAnalyze) {
  const RunResult oneShot = run(tool() + " analyze " + tracePath());
  ASSERT_EQ(oneShot.exitCode, 0);

  // Two analyzes: the second is served from the engine's stage cache and
  // must render byte-identically.
  const RunResult session =
      run("printf 'analyze\\nanalyze\\nquit\\n' | " + tool() + " query " +
          tracePath());
  ASSERT_EQ(session.exitCode, 0);
  EXPECT_EQ(session.out, oneShot.out + oneShot.out);
}

TEST(ToolCli, QueryCacheReportsHitsAfterARepeatedAnalyze) {
  const RunResult session =
      run("printf 'analyze\\nanalyze\\ncache\\nquit\\n' | " + tool() +
          " query " + tracePath() + " > /dev/null; echo done");
  // Re-run capturing only the cache line.
  const RunResult cacheLine =
      run("printf 'analyze\\nanalyze\\ncache\\nquit\\n' | " + tool() +
          " query " + tracePath() + " | grep '^cache:'");
  ASSERT_EQ(session.exitCode, 0);
  ASSERT_NE(cacheLine.out.find("cache: hits="), std::string::npos);
  EXPECT_EQ(cacheLine.out.find("cache: hits=0 "), std::string::npos)
      << "the repeated analyze should have produced cache hits: "
      << cacheLine.out;
}

TEST(ToolCli, QueryDrilldownOptionsChangeTheReport) {
  const RunResult session =
      run("printf 'analyze\\nanalyze threshold 2.0 max-hotspots 3\\nquit\\n'"
          " | " + tool() + " query " + tracePath());
  ASSERT_EQ(session.exitCode, 0);
  EXPECT_NE(session.out.find("dominant"), std::string::npos);
}

TEST(ToolCli, QueryExportJsonMatchesOneShotExport) {
  const RunResult oneShot = run(tool() + " export-json " + tracePath());
  ASSERT_EQ(oneShot.exitCode, 0);
  const RunResult session = run("printf 'export json\\nquit\\n' | " + tool() +
                                " query " + tracePath());
  ASSERT_EQ(session.exitCode, 0);
  EXPECT_EQ(session.out, oneShot.out);
}

TEST(ToolCli, QueryCritpathMatchesTheOneShotCommand) {
  const RunResult oneShot = run(tool() + " critpath " + pipelinePath());
  ASSERT_EQ(oneShot.exitCode, 0);
  // Two critpath queries: the second is a dep stage cache hit and must
  // render byte-identically.
  const RunResult session =
      run("printf 'critpath\\ncritpath\\nquit\\n' | " + tool() + " query " +
          pipelinePath());
  ASSERT_EQ(session.exitCode, 0);
  EXPECT_EQ(session.out, oneShot.out + oneShot.out);
}

TEST(ToolCli, QueryUnknownCommandIsAUsageError) {
  const RunResult r = run("printf 'frobnicate\\n' | " + tool() + " query " +
                          tracePath() + " 2>/dev/null");
  EXPECT_EQ(r.exitCode, 2);
}

TEST(ToolCli, QueryBadOptionValueIsAUsageError) {
  const RunResult r = run("printf 'analyze candidate x\\n' | " + tool() +
                          " query " + tracePath() + " 2>/dev/null");
  EXPECT_EQ(r.exitCode, 2);
}

// The session input grammar, pinned: EOF is a normal way to end the
// session (0), blank/comment lines are skipped, and a final line without
// a trailing newline is still a complete command.

TEST(ToolCli, QueryImmediateEofIsACleanExit) {
  const RunResult r = run("printf '' | " + tool() + " query " + tracePath());
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST(ToolCli, QueryBlankAndCommentLinesAreSkipped) {
  const RunResult r = run("printf '\\n   \\n\\t\\n# note\\n' | " + tool() +
                          " query " + tracePath());
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST(ToolCli, QueryEofMidCommandStillRunsTheCommand) {
  const RunResult oneShot = run(tool() + " analyze " + tracePath());
  ASSERT_EQ(oneShot.exitCode, 0);
  // No trailing newline: getline delivers the partial last line, the
  // command runs, then EOF ends the session with 0.
  const RunResult r =
      run("printf 'analyze' | " + tool() + " query " + tracePath());
  EXPECT_EQ(r.exitCode, 0);
  EXPECT_EQ(r.out, oneShot.out);
}

TEST(ToolCli, QueryOptionWithoutValueIsAUsageError) {
  EXPECT_EQ(run("printf 'analyze threshold\\n' | " + tool() + " query " +
                tracePath() + " 2>/dev/null").exitCode,
            2);
  EXPECT_EQ(run("printf 'export\\n' | " + tool() + " query " + tracePath() +
                " 2>/dev/null").exitCode,
            2);
}

TEST(ToolCli, QueryArgumentCountIsValidated) {
  EXPECT_EQ(run(tool() + " query 2>/dev/null").exitCode, 2);
  EXPECT_EQ(run(tool() + " query a.pvt extra 2>/dev/null").exitCode, 2);
  EXPECT_EQ(run(tool() + " query definitely_missing.pvt </dev/null"
                " 2>/dev/null").exitCode,
            1);
}

// ---- the serve daemon and the connect client -----------------------------

TEST(ToolCli, ServeAndConnectExpectExactlyOneSocket) {
  EXPECT_EQ(run(tool() + " serve 2>/dev/null").exitCode, 2);
  EXPECT_EQ(run(tool() + " serve a.sock b.sock 2>/dev/null").exitCode, 2);
  EXPECT_EQ(run(tool() + " connect 2>/dev/null").exitCode, 2);
}

TEST(ToolCli, ConnectToAMissingSocketIsARuntimeError) {
  const RunResult r = run(tool() + " connect definitely_missing.sock"
                          " </dev/null 2>/dev/null");
  EXPECT_EQ(r.exitCode, 1);
}

/// The CI smoke scenario as a test: daemon in the background, a scripted
/// connect session loads a trace, analyzes it twice (the second answer
/// comes from the warm stage cache), reads the per-trace stats, and shuts
/// the daemon down.
TEST(ToolCli, ServeConnectSessionMatchesOneShotAnalyze) {
  const RunResult oneShot = run(tool() + " analyze " + tracePath());
  ASSERT_EQ(oneShot.exitCode, 0);

  const std::string sock = "tool_cli_serve.sock";
  const RunResult session = run(
      "rm -f " + sock + "; " +
      tool() + " serve " + sock + " >/dev/null 2>&1 & srv=$!; " +
      "printf 'load t " + tracePath() +
      "\\nanalyze t\\nanalyze t\\nstats t\\nshutdown\\n' | " +
      tool() + " connect " + sock + "; code=$?; wait $srv; exit $code");
  ASSERT_EQ(session.exitCode, 0) << session.out;
  EXPECT_NE(session.out.find("loaded t: "), std::string::npos);
  // The analysis crossed the wire byte-identically, twice.
  const std::size_t first = session.out.find(oneShot.out);
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(session.out.find(oneShot.out, first + 1), std::string::npos);
  // The repeated analyze hit the resident engine's warm stage cache.
  EXPECT_NE(session.out.find("cache: hits="), std::string::npos)
      << session.out;
  EXPECT_EQ(session.out.find("cache: hits=0 "), std::string::npos)
      << session.out;
}

TEST(ToolCli, ConnectServerErrorsMakeTheSessionExitNonzero) {
  const std::string sock = "tool_cli_serve_err.sock";
  const RunResult session = run(
      "rm -f " + sock + "; " +
      tool() + " serve " + sock + " >/dev/null 2>&1 & srv=$!; " +
      "printf 'analyze ghost\\nshutdown\\n' | " +
      tool() + " connect " + sock + " 2>&1 1>/dev/null;"
      " code=$?; wait $srv; exit $code");
  EXPECT_EQ(session.exitCode, 1);
  // The failure is a structured server error, not a dead connection.
  EXPECT_NE(session.out.find("server error:"), std::string::npos)
      << session.out;
}

// ---- durability: journals, SIGKILL recovery, SIGTERM drain ---------------

TEST(ToolCli, RecoverWithoutJournalDirIsAUsageError) {
  EXPECT_EQ(run(tool() + " --recover serve a.sock 2>/dev/null").exitCode, 2);
}

/// The crash-recovery smoke: a journaled daemon is fed a live stream and
/// SIGKILLed with no warning; a second daemon started with --recover must
/// answer `analyze` byte-identically to a daemon that never died.
TEST(ToolCli, SigkilledJournaledDaemonRecoversByteIdentical) {
  const std::string pid = std::to_string(getpid());
  const std::string dir = "tool_cli_journal_" + pid;
  const std::string sock = "tool_cli_kill_" + pid + ".sock";
  run("rm -rf " + dir + " " + sock);

  // Reference: journaled daemon, stream, analyze, clean shutdown.
  const RunResult reference = run(
      tool() + " serve " + sock + " --journal-dir " + dir +
      " >/dev/null 2>&1 & srv=$!; " +
      "printf 'open live cosmo_dynamics\\nappend live " + tracePath() +
      "\\nanalyze live\\nshutdown\\n' | " + tool() + " connect " + sock +
      "; code=$?; wait $srv; exit $code");
  ASSERT_EQ(reference.exitCode, 0) << reference.out;
  const std::size_t reportAt = reference.out.find("dominant");
  ASSERT_NE(reportAt, std::string::npos) << reference.out;

  // Crash run: same stream, then SIGKILL — no drain, no goodbye.
  run("rm -rf " + dir);
  const RunResult crashed = run(
      tool() + " serve " + sock + " --journal-dir " + dir +
      " >/dev/null 2>&1 & srv=$!; " +
      "printf 'open live cosmo_dynamics\\nappend live " + tracePath() +
      "\\n' | " + tool() + " connect " + sock + " >/dev/null; " +
      "kill -9 $srv; wait $srv 2>/dev/null; exit 0");
  ASSERT_EQ(crashed.exitCode, 0);

  // Recovery run: replay the journal, analyze, compare.
  const RunResult recovered = run(
      tool() + " serve " + sock + " --journal-dir " + dir +
      " --recover >/dev/null 2>&1 & srv=$!; " +
      "printf 'analyze live\\nshutdown\\n' | " + tool() + " connect " +
      sock + "; code=$?; wait $srv; exit $code");
  ASSERT_EQ(recovered.exitCode, 0) << recovered.out;
  // The recovered analyze equals the reference's analyze output, byte
  // for byte, from the report head to the end of the session.
  const std::size_t recoveredAt = recovered.out.find("dominant");
  ASSERT_NE(recoveredAt, std::string::npos) << recovered.out;
  EXPECT_EQ(recovered.out.substr(recoveredAt),
            reference.out.substr(reportAt));
  run("rm -rf " + dir + " " + sock);
}

TEST(ToolCli, SigtermDrainsTheDaemonGracefully) {
  const std::string pid = std::to_string(getpid());
  const std::string dir = "tool_cli_drain_" + pid;
  const std::string sock = "tool_cli_drain_" + pid + ".sock";
  run("rm -rf " + dir + " " + sock);

  const RunResult r = run(
      tool() + " serve " + sock + " --journal-dir " + dir +
      " > drain_out_" + pid + ".txt 2>&1 & srv=$!; " +
      "printf 'open live cosmo_dynamics\\nappend live " + tracePath() +
      "\\nquit\\n' | " + tool() + " connect " + sock + " >/dev/null; " +
      "kill -TERM $srv; wait $srv; code=$?; cat drain_out_" + pid +
      ".txt; rm -f drain_out_" + pid + ".txt; exit $code");
  EXPECT_EQ(r.exitCode, 0) << r.out;
  EXPECT_NE(r.out.find("draining (SIGTERM)"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("server stopped"), std::string::npos) << r.out;

  // The drain fsynced the journal: a recovery pass serves the trace.
  const RunResult recovered = run(
      tool() + " serve " + sock + " --journal-dir " + dir +
      " --recover >/dev/null 2>&1 & srv=$!; " +
      "printf 'stats live\\nshutdown\\n' | " + tool() + " connect " + sock +
      "; code=$?; wait $srv; exit $code");
  EXPECT_EQ(recovered.exitCode, 0) << recovered.out;
  EXPECT_NE(recovered.out.find("journal: on"), std::string::npos)
      << recovered.out;
  run("rm -rf " + dir + " " + sock);
}

TEST(ToolCli, ConnectRetryGivesUpAfterTheConfiguredAttempts) {
  // 2 attempts x 10 ms: fails fast instead of the default ~5 s.
  const RunResult r = run(tool() +
                          " connect --retry 2 --retry-delay-ms 10 "
                          "definitely_missing.sock </dev/null 2>/dev/null");
  EXPECT_EQ(r.exitCode, 1);
}

}  // namespace
}  // namespace perfvar
