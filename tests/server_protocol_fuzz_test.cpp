/// Robustness matrix over the analysis-server protocol: malformed and
/// truncated frames, oversized declared lengths, junk handshakes, unknown
/// frame types, and FaultInjector-corrupted append chunks must all come
/// back as structured Error frames (or a clean connection drop) — the
/// server must never crash, and must keep serving new connections after
/// every abuse. Runs under the ASan job like every test and under the
/// TSan job via the `robustness` label.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "server/client.hpp"
#include "server/server.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/fault_injection.hpp"
#include "util/framing.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace perfvar::server {
namespace {

namespace ft = perfvar::testing;

/// One in-process server plus a helper to mint raw (pre-handshake)
/// connections against it.
struct Harness {
  Server server;

  util::FileDescriptor rawConnection() {
    auto [serverEnd, clientEnd] = util::socketPair();
    server.serveConnection(std::move(serverEnd));
    return std::move(clientEnd);
  }

  Client client() { return Client{rawConnection()}; }
};

/// A small multi-rank trace with nested segments and metrics.
trace::Trace syntheticTrace(std::size_t ranks = 4,
                            std::size_t iterations = 24) {
  trace::TraceBuilder b(ranks);
  const auto fStep = b.defineFunction("step");
  const auto fSync = b.defineFunction("MPI_Barrier", "MPI",
                                      trace::Paradigm::MPI);
  const auto m = b.defineMetric("flops", "count");
  for (trace::ProcessId p = 0; p < ranks; ++p) {
    trace::Timestamp t = 10 * (p + 1);
    for (std::size_t i = 0; i < iterations; ++i) {
      b.enter(p, t, fStep);
      b.metric(p, t + 1, m, static_cast<double>(i));
      b.enter(p, t + 2, fSync);
      b.leave(p, t + 5 + (p + i) % 3, fSync);
      b.leave(p, t + 40 + (p * 7 + i * 3) % 11, fStep);
      t += 100;
    }
  }
  return b.finish();
}

std::string imageOf(const trace::Trace& tr, std::uint32_t version) {
  const ft::Image image = ft::encodeImage(tr, version);
  return std::string(reinterpret_cast<const char*>(image.data()),
                     image.size());
}

/// Read one frame, expecting it to be there.
util::Frame mustRead(int fd) {
  util::Frame f;
  EXPECT_TRUE(util::readFrame(fd, f));
  return f;
}

// ---- handshake abuse -------------------------------------------------------

TEST(ServerProtocolFuzz, FirstFrameNotHelloIsRejected) {
  Harness h;
  util::FileDescriptor fd = h.rawConnection();
  util::writeFrame(fd.get(), static_cast<std::uint8_t>(FrameType::Stats), "");
  const util::Frame f = mustRead(fd.get());
  EXPECT_EQ(static_cast<FrameType>(f.type), FrameType::Error);
  EXPECT_EQ(decodeErrorPayload(f.payload).code, ErrorCode::MalformedEvent);
  // The connection is dropped after a failed handshake.
  util::Frame next;
  EXPECT_FALSE(util::readFrame(fd.get(), next));
  // ... but the server keeps serving fresh connections.
  Client ok = h.client();
  EXPECT_TRUE(ok.stats().ok());
}

TEST(ServerProtocolFuzz, BadHelloMagicIsABadMagicError) {
  Harness h;
  util::FileDescriptor fd = h.rawConnection();
  util::writeFrame(fd.get(), static_cast<std::uint8_t>(FrameType::Hello),
                   std::string("XXXX\x01\x00\x00\x00", 8));
  const util::Frame f = mustRead(fd.get());
  EXPECT_EQ(static_cast<FrameType>(f.type), FrameType::Error);
  EXPECT_EQ(decodeErrorPayload(f.payload).code, ErrorCode::BadMagic);
}

TEST(ServerProtocolFuzz, WrongHelloVersionIsAnUnsupportedVersionError) {
  Harness h;
  util::FileDescriptor fd = h.rawConnection();
  std::string hello = encodeHello();
  hello[4] = 99;  // absurd protocol version
  util::writeFrame(fd.get(), static_cast<std::uint8_t>(FrameType::Hello),
                   hello);
  const util::Frame f = mustRead(fd.get());
  EXPECT_EQ(static_cast<FrameType>(f.type), FrameType::Error);
  EXPECT_EQ(decodeErrorPayload(f.payload).code,
            ErrorCode::UnsupportedVersion);
}

TEST(ServerProtocolFuzz, TruncatedHelloIsATruncatedInputError) {
  Harness h;
  util::FileDescriptor fd = h.rawConnection();
  util::writeFrame(fd.get(), static_cast<std::uint8_t>(FrameType::Hello),
                   "PVTS\x01");  // version cut short
  const util::Frame f = mustRead(fd.get());
  EXPECT_EQ(static_cast<FrameType>(f.type), FrameType::Error);
  EXPECT_EQ(decodeErrorPayload(f.payload).code, ErrorCode::TruncatedInput);
}

// ---- framing abuse ---------------------------------------------------------

TEST(ServerProtocolFuzz, OversizedDeclaredLengthGetsAnErrorFrame) {
  Harness h;
  util::FileDescriptor fd = h.rawConnection();
  // Header declaring a payload far past kMaxFramePayload; no payload sent.
  const std::uint32_t absurd = 0xFFFFFFFFu;
  unsigned char header[5];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<unsigned char>((absurd >> (8 * i)) & 0xFF);
  }
  header[4] = static_cast<unsigned char>(FrameType::Hello);
  util::writeFull(fd.get(), header, sizeof header);
  const util::Frame f = mustRead(fd.get());
  EXPECT_EQ(static_cast<FrameType>(f.type), FrameType::Error);
  EXPECT_EQ(decodeErrorPayload(f.payload).code, ErrorCode::MalformedEvent);
  Client ok = h.client();
  EXPECT_TRUE(ok.stats().ok());
}

TEST(ServerProtocolFuzz, TruncatedFramesNeverKillTheServer) {
  Harness h;
  // Cut a valid hello frame at every possible byte boundary.
  const std::string wire = util::encodeFrame(
      static_cast<std::uint8_t>(FrameType::Hello), encodeHello());
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    util::FileDescriptor fd = h.rawConnection();
    if (cut > 0) {
      util::writeFull(fd.get(), wire.data(), cut);
    }
    fd.close();  // mid-frame EOF on the server side
  }
  Client ok = h.client();
  EXPECT_TRUE(ok.stats().ok());
}

TEST(ServerProtocolFuzz, RandomJunkStreamsNeverKillTheServer) {
  Harness h;
  Rng rng(2026);
  for (int round = 0; round < 32; ++round) {
    util::FileDescriptor fd = h.rawConnection();
    std::string junk(static_cast<std::size_t>(rng.uniformInt(1, 64)), '\0');
    for (char& c : junk) {
      c = static_cast<char>(rng.uniformInt(0, 255));
    }
    try {
      util::writeFull(fd.get(), junk.data(), junk.size());
    } catch (const Error&) {
      // The server may already have dropped the connection (EPIPE) —
      // that is a valid reaction to junk, not a failure.
    }
    fd.close();
  }
  Client ok = h.client();
  EXPECT_TRUE(ok.stats().ok());
}

TEST(ServerProtocolFuzz, UnknownFrameTypeAfterHandshakeKeepsSessionAlive) {
  Harness h;
  util::FileDescriptor fd = h.rawConnection();
  util::writeFrame(fd.get(), static_cast<std::uint8_t>(FrameType::Hello),
                   encodeHello());
  EXPECT_EQ(static_cast<FrameType>(mustRead(fd.get()).type),
            FrameType::HelloOk);
  util::writeFrame(fd.get(), 42, "whatever");
  util::Frame f = mustRead(fd.get());
  EXPECT_EQ(static_cast<FrameType>(f.type), FrameType::Error);
  EXPECT_EQ(decodeErrorPayload(f.payload).code, ErrorCode::MalformedEvent);
  // Same connection still answers real requests.
  util::writeFrame(fd.get(), static_cast<std::uint8_t>(FrameType::Stats), "");
  f = mustRead(fd.get());
  EXPECT_EQ(static_cast<FrameType>(f.type), FrameType::Data);
}

TEST(ServerProtocolFuzz, SecondHelloMidSessionIsAnError) {
  Harness h;
  Client c = h.client();
  const ClientResponse r = c.request(FrameType::Hello, encodeHello());
  EXPECT_EQ(r.type, FrameType::Error);
  EXPECT_EQ(r.error().code, ErrorCode::MalformedEvent);
  EXPECT_TRUE(c.stats().ok());
}

// ---- request-payload abuse -------------------------------------------------

TEST(ServerProtocolFuzz, MalformedTextRequestsAreStructuredErrors) {
  Harness h;
  Client c = h.client();
  const std::vector<std::pair<FrameType, std::string>> bad = {
      {FrameType::Load, ""},                        // missing tokens
      {FrameType::Load, "onlyname"},                // missing path
      {FrameType::Open, "live"},                    // missing function
      {FrameType::Open, "live step threshold"},     // option without value
      {FrameType::Open, "live step threshold x"},   // non-numeric value
      {FrameType::Open, "live step frobnicate 3"},  // unknown option
      {FrameType::Analyze, ""},                     // missing name
      {FrameType::Export, "name"},                  // missing format
      {FrameType::Evict, ""},                       // missing name
      {FrameType::Evict, "a b"},                    // too many tokens
      {FrameType::Lint, ""},                        // missing name
      {FrameType::Stats, "a b"},                    // too many tokens
      {FrameType::Subscribe, ""},                   // missing name
  };
  for (const auto& [type, payload] : bad) {
    const ClientResponse r = c.request(type, payload);
    EXPECT_EQ(r.type, FrameType::Error)
        << frameTypeName(type) << " '" << payload << "'";
    EXPECT_EQ(r.error().code, ErrorCode::MalformedEvent)
        << frameTypeName(type) << " '" << payload << "'";
  }
  EXPECT_TRUE(c.stats().ok());
}

TEST(ServerProtocolFuzz, UnknownNamesAndWrongKindsAreErrors) {
  Harness h;
  Client c = h.client();
  EXPECT_EQ(c.analyze("ghost").type, FrameType::Error);
  EXPECT_EQ(c.lint("ghost").type, FrameType::Error);
  EXPECT_EQ(c.evict("ghost").type, FrameType::Error);
  EXPECT_EQ(c.subscribe("ghost").type, FrameType::Error);
  EXPECT_EQ(c.append("ghost", "junk").type, FrameType::Error);
  EXPECT_EQ(c.load("t", "definitely_missing.pvt").type, FrameType::Error);
  // A live name cannot be re-opened as an engine, and engine-only verbs
  // reject live traces gracefully.
  EXPECT_TRUE(c.open("live", "step").ok());
  EXPECT_EQ(c.load("live", "whatever.pvt").type, FrameType::Error);
  EXPECT_EQ(c.subscribe("live").type, FrameType::Ok);
}

TEST(ServerProtocolFuzz, MalformedAppendPayloadsAreStructuredErrors) {
  Harness h;
  Client c = h.client();
  ASSERT_TRUE(c.open("live", "step").ok());
  // Too short for the name-length prefix.
  ClientResponse r = c.request(FrameType::Append, "ab");
  EXPECT_EQ(r.type, FrameType::Error);
  EXPECT_EQ(r.error().code, ErrorCode::MalformedEvent);
  // Declared name length overruns the payload.
  std::string overrun = encodeAppendPayload("live", "");
  overrun[0] = 100;  // name length 100 in a payload of 8 bytes
  r = c.request(FrameType::Append, overrun);
  EXPECT_EQ(r.type, FrameType::Error);
  EXPECT_EQ(r.error().code, ErrorCode::MalformedEvent);
  // Image that is no PVTF file at all.
  r = c.append("live", "this is not a trace");
  EXPECT_EQ(r.type, FrameType::Error);
  EXPECT_EQ(r.error().code, ErrorCode::BadMagic);
  // v1 images have no independently decodable blocks to append.
  const trace::Trace tr = syntheticTrace();
  r = c.append("live", imageOf(tr, trace::kBinaryFormatV1));
  EXPECT_EQ(r.type, FrameType::Error);
  EXPECT_EQ(r.error().code, ErrorCode::UnsupportedVersion);
  // After all that abuse, a clean chunk still streams in fine.
  EXPECT_TRUE(c.append("live", imageOf(tr, trace::kBinaryFormatV2)).ok());
  EXPECT_TRUE(c.analyze("live").ok());
}

TEST(ServerProtocolFuzz, CorruptedAppendChunksAreRejectedAtomically) {
  const trace::Trace tr = syntheticTrace();
  const ft::Image clean = ft::encodeImage(tr, trace::kBinaryFormatV2);
  ft::FaultInjector injector(7);

  std::vector<std::pair<std::string, ft::Image>> faults;
  for (std::size_t cut : {std::size_t{1}, std::size_t{5}, clean.size() / 3,
                          clean.size() - 1}) {
    faults.emplace_back("truncateAt(" + std::to_string(cut) + ")",
                        ft::FaultInjector::truncateAt(clean, cut));
  }
  faults.emplace_back("tornTail", ft::FaultInjector::tornTail(clean, 64));
  faults.emplace_back("zeroTableEntry",
                      ft::FaultInjector::zeroTableEntry(clean, 1));
  faults.emplace_back("oversizeCount",
                      ft::FaultInjector::oversizeCount(clean, 2));
  for (int i = 0; i < 8; ++i) {
    faults.emplace_back("bitFlip#" + std::to_string(i),
                        injector.bitFlip(clean, 48, clean.size()));
  }

  Harness h;
  Client c = h.client();
  for (const auto& [label, image] : faults) {
    ASSERT_TRUE(c.open("live_" + label, "step").ok()) << label;
    const ClientResponse r = c.append(
        "live_" + label,
        std::string(reinterpret_cast<const char*>(image.data()),
                    image.size()));
    EXPECT_EQ(r.type, FrameType::Error) << label;
    EXPECT_NE(r.error().code, ErrorCode::None) << label;
    // The failed append left the live trace untouched: the pristine
    // chunk must still be acceptable as the FIRST chunk.
    const ClientResponse ok = c.append(
        "live_" + label,
        std::string(reinterpret_cast<const char*>(clean.data()),
                    clean.size()));
    EXPECT_TRUE(ok.ok()) << label << ": " << ok.payload;
  }
  EXPECT_TRUE(c.stats().ok());
}

TEST(ServerProtocolFuzz, ChunkWithoutSegmentFunctionRollsBackTheTrace) {
  Harness h;
  Client c = h.client();
  ASSERT_TRUE(c.open("live", "no_such_function").ok());
  const trace::Trace tr = syntheticTrace();
  const std::string image = imageOf(tr, trace::kBinaryFormatV2);
  const ClientResponse r = c.append("live", image);
  EXPECT_EQ(r.type, FrameType::Error);
  EXPECT_EQ(r.error().code, ErrorCode::MalformedEvent);
  // The name is still usable: evict it and reopen with a function the
  // chunks actually define.
  EXPECT_EQ(c.evict("live").type, FrameType::Ok);
  ASSERT_TRUE(c.open("live", "step").ok());
  EXPECT_TRUE(c.append("live", image).ok());
}

}  // namespace
}  // namespace perfvar::server
