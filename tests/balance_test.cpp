#include <gtest/gtest.h>

#include <set>

#include "balance/fd4.hpp"
#include "balance/hilbert.hpp"
#include "balance/partition.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace perfvar::balance {
namespace {

// --- Hilbert curve -----------------------------------------------------------

class HilbertSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HilbertSweep, BijectionOverTheWholeGrid) {
  const HilbertCurve curve(GetParam());
  std::set<std::uint64_t> seen;
  for (std::uint32_t y = 0; y < curve.side(); ++y) {
    for (std::uint32_t x = 0; x < curve.side(); ++x) {
      const std::uint64_t d = curve.toIndex(x, y);
      EXPECT_LT(d, curve.cells());
      EXPECT_TRUE(seen.insert(d).second) << "duplicate index " << d;
      const auto [rx, ry] = curve.toXY(d);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  EXPECT_EQ(seen.size(), curve.cells());
}

TEST_P(HilbertSweep, ConsecutiveIndicesAreGridNeighbors) {
  const HilbertCurve curve(GetParam());
  auto [px, py] = curve.toXY(0);
  for (std::uint64_t d = 1; d < curve.cells(); ++d) {
    const auto [x, y] = curve.toXY(d);
    const auto dx = x > px ? x - px : px - x;
    const auto dy = y > py ? y - py : py - y;
    EXPECT_EQ(dx + dy, 1u) << "jump at index " << d;
    px = x;
    py = y;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, HilbertSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(Hilbert, OrderForSide) {
  EXPECT_EQ(hilbertOrderFor(1), 1u);
  EXPECT_EQ(hilbertOrderFor(2), 1u);
  EXPECT_EQ(hilbertOrderFor(3), 2u);
  EXPECT_EQ(hilbertOrderFor(40), 6u);
  EXPECT_THROW(HilbertCurve(0), Error);
  EXPECT_THROW(HilbertCurve(16), Error);
}

TEST(Hilbert, TraversalMatchesToXY) {
  const HilbertCurve curve(2);
  const auto order = curve.traversal();
  ASSERT_EQ(order.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(order[i], curve.toXY(i));
  }
}

// --- chain partitioning --------------------------------------------------------

TEST(Partition, UniformWeightsSplitEvenly) {
  const std::vector<double> w(12, 1.0);
  const ChainPartition p = partitionOptimal(w, 4);
  EXPECT_EQ(p.parts(), 4u);
  EXPECT_DOUBLE_EQ(p.bottleneck(w), 3.0);
  EXPECT_NEAR(partitionImbalance(p, w), 0.0, 1e-9);
}

TEST(Partition, OwnersAreContiguousAndComplete) {
  const std::vector<double> w = {5, 1, 1, 1, 4, 2, 2, 8};
  const ChainPartition p = partitionOptimal(w, 3);
  const auto owners = p.owners(w.size());
  for (std::size_t i = 1; i < owners.size(); ++i) {
    EXPECT_GE(owners[i], owners[i - 1]);  // non-decreasing = contiguous
  }
  EXPECT_EQ(p.ownerOf(0), 0u);
  EXPECT_EQ(p.ownerOf(w.size() - 1), p.parts() - 1);
}

TEST(Partition, OptimalMatchesBruteForceOnSmallInputs) {
  Rng rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniformInt(1, 9));
    const auto parts = static_cast<std::size_t>(rng.uniformInt(1, 4));
    std::vector<double> w(n);
    for (auto& x : w) {
      x = static_cast<double>(rng.uniformInt(0, 20));
    }
    // Brute force: enumerate all cut placements.
    double best = std::numeric_limits<double>::infinity();
    const std::size_t cutsNeeded = parts - 1;
    std::vector<std::size_t> cuts(cutsNeeded, 0);
    const std::function<void(std::size_t, std::size_t)> rec =
        [&](std::size_t k, std::size_t from) {
          if (k == cutsNeeded) {
            ChainPartition cand;
            cand.cuts.push_back(0);
            for (const auto c : cuts) {
              cand.cuts.push_back(c);
            }
            cand.cuts.push_back(n);
            best = std::min(best, cand.bottleneck(w));
            return;
          }
          for (std::size_t c = from; c <= n; ++c) {
            cuts[k] = c;
            rec(k + 1, c);
          }
        };
    rec(0, 0);
    const ChainPartition p = partitionOptimal(w, parts);
    EXPECT_NEAR(p.bottleneck(w), best, 1e-6)
        << "n=" << n << " parts=" << parts;
  }
}

TEST(Partition, GreedyIsNeverBetterThanOptimal) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> w(50);
    for (auto& x : w) {
      x = rng.uniform(0.0, 10.0);
    }
    const double greedy = partitionGreedy(w, 8).bottleneck(w);
    const double optimal = partitionOptimal(w, 8).bottleneck(w);
    EXPECT_GE(greedy, optimal - 1e-9);
  }
}

TEST(Partition, MorePartsThanItemsLeavesEmptyParts) {
  const std::vector<double> w = {1.0, 2.0};
  const ChainPartition p = partitionOptimal(w, 5);
  EXPECT_EQ(p.parts(), 5u);
  EXPECT_DOUBLE_EQ(p.bottleneck(w), 2.0);
}

TEST(Partition, NegativeWeightsRejected) {
  const std::vector<double> w = {1.0, -2.0};
  EXPECT_THROW(partitionOptimal(w, 2), Error);
}

TEST(Partition, MigrationCountsChangedOwners) {
  const std::vector<double> w = {1, 1, 1, 1};
  ChainPartition a;
  a.cuts = {0, 2, 4};
  ChainPartition b;
  b.cuts = {0, 3, 4};
  EXPECT_EQ(migrationCount(a, b, 4), 1u);  // item 2 moves from part 1 to 0
  EXPECT_EQ(migrationCount(a, a, 4), 0u);
}

// --- FD4 balancer -----------------------------------------------------------------

TEST(Fd4, BalancesSkewedLoadBelowThreshold) {
  Fd4Balancer balancer(8, 8, 4);
  std::vector<double> weights(64, 1.0);
  // Pile load onto one corner.
  for (std::size_t i = 0; i < 8; ++i) {
    weights[i] = 20.0;
  }
  const double before = balancer.imbalance(weights);
  EXPECT_GT(before, 0.05);
  const Fd4StepResult step = balancer.update(weights);
  EXPECT_TRUE(step.rebalanced);
  EXPECT_GT(step.migratedBlocks, 0u);
  EXPECT_LT(step.imbalanceAfter, before);
  EXPECT_LT(balancer.imbalance(weights), 0.3);
}

TEST(Fd4, NoRebalanceWhenAlreadyBalanced) {
  Fd4Balancer balancer(8, 8, 4);
  const std::vector<double> weights(64, 1.0);
  const Fd4StepResult step = balancer.update(weights);
  EXPECT_FALSE(step.rebalanced);
  EXPECT_EQ(step.migratedBlocks, 0u);
}

TEST(Fd4, EveryBlockHasExactlyOneOwner) {
  Fd4Balancer balancer(5, 7, 6);  // non-power-of-two grid
  std::vector<double> weights(35, 1.0);
  weights[17] = 50.0;
  balancer.update(weights);
  std::set<std::size_t> seen;
  for (std::size_t r = 0; r < balancer.ranks(); ++r) {
    for (const std::size_t blockId : balancer.blocksOf(r)) {
      EXPECT_TRUE(seen.insert(blockId).second);
    }
  }
  EXPECT_EQ(seen.size(), 35u);
  // ownerOf agrees with blocksOf.
  EXPECT_EQ(balancer.ownerOf(2, 3),
            [&] {
              const std::size_t blockId = 3 * 5 + 2;
              for (std::size_t r = 0; r < balancer.ranks(); ++r) {
                for (const auto id : balancer.blocksOf(r)) {
                  if (id == blockId) {
                    return r;
                  }
                }
              }
              return std::size_t{9999};
            }());
}

TEST(Fd4, RankLoadsSumToTotalWeight) {
  Fd4Balancer balancer(8, 8, 5);
  Rng rng(2);
  std::vector<double> weights(64);
  for (auto& w : weights) {
    w = rng.uniform(0.1, 5.0);
  }
  balancer.update(weights);
  const auto loads = balancer.rankLoads(weights);
  double total = 0.0;
  for (const double l : loads) {
    total += l;
  }
  double expected = 0.0;
  for (const double w : weights) {
    expected += w;
  }
  EXPECT_NEAR(total, expected, 1e-9);
}

TEST(Fd4, TracksAMovingHotspotOverTime) {
  Fd4Balancer balancer(16, 16, 8);
  for (int t = 0; t < 10; ++t) {
    std::vector<double> weights(256, 1.0);
    // Hotspot moves along the diagonal.
    const std::size_t hot = static_cast<std::size_t>(t) * 17;
    for (std::size_t i = 0; i < 256; ++i) {
      weights[i] += (i == hot) ? 40.0 : 0.0;
    }
    balancer.update(weights);
    EXPECT_LT(balancer.imbalance(weights), 0.6) << "step " << t;
  }
}

TEST(Fd4, RequiresBlocksPerRank) {
  EXPECT_THROW(Fd4Balancer(2, 2, 10), Error);
}

}  // namespace
}  // namespace perfvar::balance
