/// Lint robustness fuzz: every lint rule must survive hostile inputs —
/// FaultInjector-corrupted v1/v2 images loaded in Salvage mode, and
/// in-memory traces with deterministically scrambled event fields — by
/// reporting findings, never by crashing, hanging or throwing out of
/// lintTrace() (its documented robustness contract). Each salvaged or
/// mutated trace is linted with the full registry and once per rule in
/// isolation, serially and on 4 threads, and every report must render in
/// all three export formats.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/fault_injection.hpp"
#include "util/error.hpp"

namespace perfvar::lint {
namespace {

namespace ft = perfvar::testing;
using ft::FaultInjector;
using ft::Image;
using trace::Trace;

/// Same shape as the fault-injection matrix's synthetic trace: every
/// event kind, escape-coded ids, neighbor messaging.
Trace syntheticTrace(std::size_t ranks, std::size_t iterations) {
  trace::TraceBuilder b(ranks);
  std::vector<trace::FunctionId> fns;
  for (std::size_t i = 0; i < 40; ++i) {
    fns.push_back(
        b.defineFunction("fn" + std::to_string(i), i % 3 ? "APP" : "MPI",
                         i % 3 ? trace::Paradigm::Compute
                               : trace::Paradigm::MPI));
  }
  const auto m = b.defineMetric("cycles", "count");
  for (trace::ProcessId p = 0; p < ranks; ++p) {
    trace::Timestamp t = 17 * (p + 1);
    for (std::size_t it = 0; it < iterations; ++it) {
      const auto f = fns[(p + it) % fns.size()];
      b.enter(p, t, f);
      t += 3 + ((p * 31 + it * 7) % 5000);
      b.metric(p, t, m, static_cast<double>(p) * 1e6 + it);
      if (ranks > 1) {
        const auto peer = static_cast<trace::ProcessId>((p + 1) % ranks);
        b.mpiSend(p, t, peer, static_cast<std::uint32_t>(it), 64 * (it + 1));
        const auto src =
            static_cast<trace::ProcessId>((p + ranks - 1) % ranks);
        b.mpiRecv(p, t + 1, src, static_cast<std::uint32_t>(it), 64);
      }
      t += 2;
      b.leave(p, t, f);
      ++t;
    }
  }
  return b.finish();
}

/// Lint `tr` with the full registry and once per rule in isolation, at 1
/// and 4 threads. Any exception escaping lintTrace() (or a renderer)
/// fails the test; findings are the expected outcome.
void lintMustSurvive(const Trace& tr, const std::string& what) {
  SCOPED_TRACE(what);
  for (const std::size_t threads : {1ul, 4ul}) {
    LintOptions options;
    options.threads = threads;
    LintReport report;
    ASSERT_NO_THROW(report = lintTrace(tr, options))
        << "full registry @" << threads << " threads";
    for (const auto format :
         {analysis::ExportFormat::Text, analysis::ExportFormat::Json,
          analysis::ExportFormat::Csv}) {
      ASSERT_NO_THROW(exportLintReportString(report, format));
    }
  }
  for (const auto& rule : RuleRegistry::builtin().rules()) {
    LintOptions solo;
    solo.onlyRules = {std::string(rule->id())};
    ASSERT_NO_THROW(lintTrace(tr, solo)) << "rule " << rule->id();
  }
}

/// Salvage-load `image`; true (with `out` filled) when the load itself
/// survived. A classified Error is acceptable — global damage (header,
/// definition table) is not salvageable — but then there is nothing to
/// lint.
bool salvage(const Image& image, Trace& out) {
  trace::BinaryReadOptions options;
  options.recovery = trace::RecoveryMode::Salvage;
  try {
    out = trace::readBinaryBuffer(image.data(), image.size(), options);
    return true;
  } catch (const Error&) {
    return false;
  }
}

// ---- salvaged corrupted images ---------------------------------------------

TEST(LintFuzz, SurvivesSalvagedBitFlips) {
  const Trace original = syntheticTrace(5, 24);
  for (const std::uint32_t version :
       {trace::kBinaryFormatV1, trace::kBinaryFormatV2}) {
    const Image clean = ft::encodeImage(original, version);
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
      FaultInjector inj(seed);
      // Flip 1..4 bits anywhere in the image, header included.
      const Image bad =
          inj.bitFlip(clean, 0, clean.size(), 1 + seed % 4);
      Trace tr;
      if (salvage(bad, tr)) {
        lintMustSurvive(tr, "v" + std::to_string(version) + " bit-flip seed " +
                                std::to_string(seed));
      }
    }
  }
}

TEST(LintFuzz, SurvivesSalvagedTruncationsAndTornTails) {
  const Trace original = syntheticTrace(4, 16);
  for (const std::uint32_t version :
       {trace::kBinaryFormatV1, trace::kBinaryFormatV2}) {
    const Image clean = ft::encodeImage(original, version);
    const std::size_t step = clean.size() / 23 + 1;
    for (std::size_t cut = 0; cut < clean.size(); cut += step) {
      Trace tr;
      if (salvage(FaultInjector::truncateAt(clean, cut), tr)) {
        lintMustSurvive(tr, "v" + std::to_string(version) + " truncate@" +
                                std::to_string(cut));
      }
    }
    for (const std::size_t torn : {1ul, 7ul, 64ul}) {
      Trace tr;
      if (salvage(FaultInjector::tornTail(clean, torn), tr)) {
        lintMustSurvive(tr, "v" + std::to_string(version) + " torn-tail " +
                                std::to_string(torn));
      }
    }
  }
}

TEST(LintFuzz, SurvivesSalvagedTableDamage) {
  const Trace original = syntheticTrace(5, 24);
  const Image clean = ft::encodeImage(original, trace::kBinaryFormatV2);
  for (std::size_t rank = 0; rank < 5; ++rank) {
    Trace zeroed;
    if (salvage(FaultInjector::zeroTableEntry(clean, rank), zeroed)) {
      lintMustSurvive(zeroed, "zero-table-entry " + std::to_string(rank));
    }
    Trace oversized;
    if (salvage(FaultInjector::oversizeCount(clean, rank), oversized)) {
      lintMustSurvive(oversized, "oversize-count " + std::to_string(rank));
    }
  }
}

TEST(LintFuzz, SalvagedTraceAlwaysNamesQuarantineInteraction) {
  // When a salvage load quarantined ranks, the lint report must say so.
  const Trace original = syntheticTrace(6, 30);
  const Image clean = ft::encodeImage(original, trace::kBinaryFormatV2);
  FaultInjector inj(42);
  const Image bad = inj.bitFlip(clean, clean.size() / 2, clean.size(), 3);
  Trace tr;
  ASSERT_TRUE(salvage(bad, tr));
  if (!tr.quarantined.empty()) {
    const LintReport report = lintTrace(tr);
    bool named = false;
    for (const Finding& f : report.findings) {
      named |= f.rule == "quarantine-interaction";
    }
    EXPECT_TRUE(named);
  }
}

// ---- scrambled in-memory traces --------------------------------------------

/// xorshift64: deterministic, seed-stable across platforms.
std::uint64_t nextRand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// Scramble `mutations` random event fields of a copy of `tr`.
Trace scramble(const Trace& tr, std::uint64_t seed, std::size_t mutations) {
  Trace out = tr;
  std::uint64_t state = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < mutations; ++i) {
    auto& proc = out.processes[nextRand(state) % out.processes.size()];
    if (proc.events.empty()) {
      continue;
    }
    trace::Event& e = proc.events[nextRand(state) % proc.events.size()];
    switch (nextRand(state) % 5) {
      case 0:
        e.time = nextRand(state);  // breaks monotonicity
        break;
      case 1:
        // Out-of-range kinds included: rules must not choke on them.
        e.kind = static_cast<trace::EventKind>(nextRand(state) % 8);
        break;
      case 2:
        e.ref = static_cast<std::uint32_t>(nextRand(state));
        break;
      case 3:
        e.size = nextRand(state);
        break;
      case 4:
        e.value = static_cast<double>(nextRand(state));
        break;
    }
  }
  return out;
}

TEST(LintFuzz, SurvivesScrambledEventFields) {
  const Trace original = syntheticTrace(4, 16);
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const Trace mutated = scramble(original, seed, 1 + seed % 40);
    lintMustSurvive(mutated, "scramble seed " + std::to_string(seed));
  }
}

TEST(LintFuzz, SurvivesDegenerateShapes) {
  // Empty trace, definition-only trace, event-only (no definitions),
  // single empty process, bogus quarantine metadata.
  Trace empty;
  lintMustSurvive(empty, "empty trace");

  Trace defsOnly;
  defsOnly.functions.intern("f");
  defsOnly.metrics.intern("m");
  lintMustSurvive(defsOnly, "definitions only");

  Trace noDefs;
  noDefs.processes.push_back(
      {"p0",
       {trace::Event::enter(1, 0), trace::Event::leave(2, 0),
        trace::Event::metric(3, 0, 1.0), trace::Event::mpiSend(4, 1, 0, 8)}});
  lintMustSurvive(noDefs, "events without definitions");

  Trace bogusQuarantine = syntheticTrace(2, 4);
  trace::QuarantinedRank q;
  q.process = 57;  // out of range
  q.error = ErrorCode::ChecksumMismatch;
  bogusQuarantine.quarantined.push_back(q);
  lintMustSurvive(bogusQuarantine, "bogus quarantine metadata");
  const LintReport report = lintTrace(bogusQuarantine);
  EXPECT_TRUE(report.hasAtLeast(Severity::Error));  // nonexistent process
}

TEST(LintFuzz, SurvivesDependencyGraphPathologies) {
  // Shapes aimed at the happens-before builder behind the dependency
  // rules: cyclic timestamps across matched pairs (the backward walk must
  // hit its visited guard, not loop), floods of unmatched sends, and
  // self/out-of-range endpoints. The graph builder documents that it
  // never throws; these entries keep the full lint pipeline honest.
  Trace cyclic;
  cyclic.functions.intern("f", "APP");
  for (int p = 0; p < 3; ++p) {
    trace::ProcessTrace proc;
    proc.name = "p" + std::to_string(p);
    const auto peer = static_cast<trace::ProcessId>((p + 1) % 3);
    const auto src = static_cast<trace::ProcessId>((p + 2) % 3);
    // Receives complete before the matching sends depart: time runs
    // backward over every cross edge.
    proc.events.push_back(trace::Event::mpiRecv(5, src, 0, 8));
    proc.events.push_back(trace::Event::mpiSend(100, peer, 0, 8));
    proc.events.push_back(trace::Event::mpiRecv(3, src, 1, 8));
    proc.events.push_back(trace::Event::mpiSend(90, peer, 1, 8));
    cyclic.processes.push_back(std::move(proc));
  }
  lintMustSurvive(cyclic, "cyclic timestamps across matched pairs");

  Trace unmatched;
  unmatched.functions.intern("f", "APP");
  for (int p = 0; p < 4; ++p) {
    trace::ProcessTrace proc;
    proc.name = "p" + std::to_string(p);
    for (trace::Timestamp t = 0; t < 64; ++t) {
      // Every send targets rank 0 on its own tag; nothing ever receives.
      proc.events.push_back(trace::Event::mpiSend(
          t, 0, static_cast<std::uint32_t>(t), 8));
    }
    // Self-sends and out-of-range endpoints ride along.
    proc.events.push_back(
        trace::Event::mpiSend(100, static_cast<trace::ProcessId>(p), 0, 8));
    proc.events.push_back(trace::Event::mpiSend(101, 10000, 0, 8));
    unmatched.processes.push_back(std::move(proc));
  }
  lintMustSurvive(unmatched, "unmatched send flood");
}

TEST(LintFuzz, ScrambledReportsAreDeterministic) {
  // Determinism must hold on hostile inputs too, not just clean traces.
  const Trace original = syntheticTrace(4, 16);
  for (std::uint64_t seed = 3; seed <= 12; seed += 3) {
    const Trace mutated = scramble(original, seed, 25);
    LintOptions serial;
    const LintReport reference = lintTrace(mutated, serial);
    LintOptions threaded;
    threaded.threads = 4;
    const LintReport report = lintTrace(mutated, threaded);
    EXPECT_EQ(report.findings, reference.findings)
        << "scramble seed " << seed;
    EXPECT_EQ(exportLintReportString(report, analysis::ExportFormat::Json),
              exportLintReportString(reference, analysis::ExportFormat::Json));
  }
}

}  // namespace
}  // namespace perfvar::lint
