#include <cmath>
#include <gtest/gtest.h>

#include "analysis/segments.hpp"
#include "analysis/sos.hpp"
#include "apps/paper_examples.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace perfvar::analysis {
namespace {

// --- segmentation ------------------------------------------------------------

TEST(Segments, Figure2SegmentsPerProcess) {
  const trace::Trace tr = apps::buildFigure2Trace();
  const auto fA = *tr.functions.find("a");
  const auto segments = extractSegments(tr, fA);
  ASSERT_EQ(segments.size(), 3u);
  for (const auto& per : segments) {
    ASSERT_EQ(per.size(), 3u);
    EXPECT_EQ(per[0].enter, 2u);
    EXPECT_EQ(per[0].leave, 6u);
    EXPECT_EQ(per[0].inclusive(), 4u);
    EXPECT_EQ(per[1].index, 1u);
  }
  const auto info = describeSegmentation(segments);
  EXPECT_EQ(info.totalSegments, 9u);
  EXPECT_TRUE(info.uniform);
  EXPECT_EQ(info.minPerProcess, 3u);
}

TEST(Segments, RecursiveInvocationsFormOneSegment) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("rec");
  b.enter(0, 0, f);
  b.enter(0, 10, f);
  b.leave(0, 20, f);
  b.leave(0, 30, f);
  b.enter(0, 40, f);
  b.leave(0, 50, f);
  const trace::Trace tr = b.finish();
  const auto segments = extractSegments(tr, f);
  ASSERT_EQ(segments[0].size(), 2u);  // outermost only
  EXPECT_EQ(segments[0][0].inclusive(), 30u);
  EXPECT_EQ(segments[0][1].inclusive(), 10u);
}

TEST(Segments, ProcessWithoutFunctionGetsNoSegments) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("f");
  const auto g = b.defineFunction("g");
  b.enter(0, 0, f);
  b.leave(0, 5, f);
  b.enter(1, 0, g);
  b.leave(1, 5, g);
  const trace::Trace tr = b.finish();
  const auto segments = extractSegments(tr, f);
  EXPECT_EQ(segments[0].size(), 1u);
  EXPECT_TRUE(segments[1].empty());
}

TEST(Segments, UndefinedFunctionRejected) {
  const trace::Trace tr = apps::buildFigure2Trace();
  EXPECT_THROW(extractSegments(tr, 1000), Error);
}

// --- Figure 3: SOS-times ------------------------------------------------------

TEST(Sos, Figure3SegmentDurationsAreEqualAcrossProcesses) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  const SosResult durations = analyzeSegmentDurations(tr, fA);
  // Durations 6, 3, 5 on every process: the MPI wait hides the imbalance.
  for (trace::ProcessId p = 0; p < 3; ++p) {
    const auto& segs = durations.process(p);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0].segment.inclusive(), 6u);
    EXPECT_EQ(segs[1].segment.inclusive(), 3u);
    EXPECT_EQ(segs[2].segment.inclusive(), 5u);
    for (const auto& s : segs) {
      EXPECT_EQ(s.syncTime, 0u);  // duration baseline subtracts nothing
      EXPECT_EQ(s.sosTime, s.segment.inclusive());
    }
  }
}

TEST(Sos, Figure3SosTimesExposeTheImbalance) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  const SosResult sos = analyzeSos(tr, fA);
  const auto& calc = apps::figure3CalcTimes();
  for (trace::ProcessId p = 0; p < 3; ++p) {
    const auto& segs = sos.process(p);
    ASSERT_EQ(segs.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(static_cast<double>(segs[i].sosTime), calc[i][p])
          << "iteration " << i << " process " << p;
    }
  }
  // The prose's headline numbers: iteration 0 SOS 5 (P0) vs 1 (P2).
  EXPECT_EQ(sos.process(0)[0].sosTime, 5u);
  EXPECT_EQ(sos.process(2)[0].sosTime, 1u);
}

TEST(Sos, Figure3SyncTimeComplementsSos) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  const SosResult sos = analyzeSos(tr, fA);
  for (trace::ProcessId p = 0; p < 3; ++p) {
    for (const auto& seg : sos.process(p)) {
      EXPECT_EQ(seg.syncTime + seg.sosTime, seg.segment.inclusive());
      EXPECT_EQ(seg.paradigmTime[static_cast<std::size_t>(
                    trace::Paradigm::MPI)],
                seg.syncTime);
    }
  }
}

TEST(Sos, MatrixAndSeriesAccessors) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  const SosResult sos = analyzeSos(tr, fA);
  EXPECT_EQ(sos.maxSegmentsPerProcess(), 3u);
  EXPECT_EQ(sos.minSegmentsPerProcess(), 3u);
  const auto matrix = sos.sosMatrixSeconds();
  ASSERT_EQ(matrix.size(), 3u);
  EXPECT_DOUBLE_EQ(matrix[0][0], 5.0);  // resolution 1 -> seconds == ticks
  EXPECT_DOUBLE_EQ(sos.sosSeconds(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(sos.durationSeconds(1, 1), 3.0);

  const auto meanDur = sos.meanDurationPerIteration();
  ASSERT_EQ(meanDur.size(), 3u);
  EXPECT_DOUBLE_EQ(meanDur[0], 6.0);
  EXPECT_DOUBLE_EQ(meanDur[1], 3.0);

  const auto meanSos = sos.meanSosPerIteration();
  EXPECT_DOUBLE_EQ(meanSos[0], 3.0);  // (5+3+1)/3

  const auto syncFrac = sos.syncFractionPerIteration();
  EXPECT_DOUBLE_EQ(syncFrac[0], 0.5);       // 9 of 18 ticks waiting
  EXPECT_NEAR(syncFrac[1], 1.0 / 3.0, 1e-12);

  const auto totals = sos.totalSosPerProcess();
  EXPECT_DOUBLE_EQ(totals[0], 8.0);  // 5+2+1
  EXPECT_DOUBLE_EQ(totals[2], 7.0);  // 1+2+4

  const auto flat = sos.allSosSeconds();
  EXPECT_EQ(flat.size(), 9u);
}

TEST(Sos, RaggedProcessesYieldNaNCells) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("f");
  b.enter(0, 0, f);
  b.leave(0, 10, f);
  b.enter(0, 10, f);
  b.leave(0, 20, f);
  b.enter(1, 0, f);
  b.leave(1, 10, f);
  const trace::Trace tr = b.finish();
  const SosResult sos = analyzeSos(tr, f);
  EXPECT_EQ(sos.maxSegmentsPerProcess(), 2u);
  EXPECT_EQ(sos.minSegmentsPerProcess(), 1u);
  const auto matrix = sos.sosMatrixSeconds();
  EXPECT_FALSE(std::isnan(matrix[0][1]));
  EXPECT_TRUE(std::isnan(matrix[1][1]));
}

TEST(Sos, BlockingOnlyPolicyKeepsNonblockingCost) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("step");
  const auto isend =
      b.defineFunction("MPI_Isend", "MPI", trace::Paradigm::MPI);
  const auto wait = b.defineFunction("MPI_Wait", "MPI", trace::Paradigm::MPI);
  b.enter(0, 0, f);
  b.enter(0, 10, isend);
  b.leave(0, 12, isend);
  b.enter(0, 20, wait);
  b.leave(0, 50, wait);
  b.leave(0, 100, f);
  const trace::Trace tr = b.finish();

  const SosResult paradigm = analyzeSos(tr, f, SyncClassifier{});
  EXPECT_EQ(paradigm.process(0)[0].syncTime, 32u);  // Isend + Wait

  const SosResult blocking =
      analyzeSos(tr, f, SyncClassifier(SyncPolicy::BlockingOnly));
  EXPECT_EQ(blocking.process(0)[0].syncTime, 30u);  // Wait only
}

TEST(Sos, NestedSyncCallsCountOnce) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("step");
  const auto outer =
      b.defineFunction("MPI_Allreduce", "MPI", trace::Paradigm::MPI);
  const auto inner =
      b.defineFunction("MPI_Send", "MPI", trace::Paradigm::MPI);
  b.enter(0, 0, f);
  b.enter(0, 10, outer);
  b.enter(0, 12, inner);  // implementation-internal send
  b.leave(0, 18, inner);
  b.leave(0, 40, outer);
  b.leave(0, 50, f);
  const trace::Trace tr = b.finish();
  const SosResult sos = analyzeSos(tr, f);
  // Only the maximal MPI frame [10,40] is subtracted, not 30+6.
  EXPECT_EQ(sos.process(0)[0].syncTime, 30u);
  EXPECT_EQ(sos.process(0)[0].sosTime, 20u);
}

TEST(Sos, MetricDeltasAttributeToSegments) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("step");
  const auto m = b.defineMetric("PAPI_TOT_CYC", "cycles");
  // Cumulative samples: 100 within segment 0; 250 within segment 1.
  b.enter(0, 0, f);
  b.metric(0, 5, m, 100.0);
  b.leave(0, 10, f);
  b.enter(0, 10, f);
  b.metric(0, 15, m, 250.0);
  b.leave(0, 20, f);
  const trace::Trace tr = b.finish();
  const SosResult sos = analyzeSos(tr, f);
  EXPECT_DOUBLE_EQ(sos.process(0)[0].metricDelta[m], 100.0);
  EXPECT_DOUBLE_EQ(sos.process(0)[1].metricDelta[m], 150.0);
  const auto totals = sos.totalMetricPerProcess(m);
  EXPECT_DOUBLE_EQ(totals[0], 250.0);
}

TEST(Sos, AbsoluteMetricsKeepLastValue) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("step");
  const auto m = b.defineMetric("mem", "bytes", trace::MetricMode::Absolute);
  b.enter(0, 0, f);
  b.metric(0, 2, m, 10.0);
  b.metric(0, 8, m, 30.0);
  b.leave(0, 10, f);
  const trace::Trace tr = b.finish();
  const SosResult sos = analyzeSos(tr, f);
  EXPECT_DOUBLE_EQ(sos.process(0)[0].metricDelta[m], 30.0);
}

// Property: SOS <= duration, sync >= 0, and the NONE classifier gives
// exactly the durations - over randomized traces.
class SosInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SosInvariantSweep, InvariantsHoldOnRandomTraces) {
  Rng rng(GetParam());
  const auto nProcs = static_cast<std::size_t>(rng.uniformInt(1, 4));
  trace::TraceBuilder b(nProcs);
  const auto fStep = b.defineFunction("step");
  const auto fWork = b.defineFunction("work");
  const auto fMpi =
      b.defineFunction("MPI_Allreduce", "MPI", trace::Paradigm::MPI);
  for (trace::ProcessId p = 0; p < nProcs; ++p) {
    trace::Timestamp t = 0;
    const auto iters = rng.uniformInt(1, 20);
    for (std::int64_t i = 0; i < iters; ++i) {
      b.enter(p, t, fStep);
      const auto work = static_cast<trace::Timestamp>(rng.uniformInt(0, 50));
      b.enter(p, t, fWork);
      b.leave(p, t + work, fWork);
      const auto wait = static_cast<trace::Timestamp>(rng.uniformInt(0, 30));
      b.enter(p, t + work, fMpi);
      b.leave(p, t + work + wait, fMpi);
      const auto tail = static_cast<trace::Timestamp>(rng.uniformInt(0, 5));
      b.leave(p, t + work + wait + tail, fStep);
      t += work + wait + tail + static_cast<trace::Timestamp>(
                                    rng.uniformInt(0, 10));
    }
  }
  const trace::Trace tr = b.finish();
  const SosResult sos = analyzeSos(tr, fStep);
  const SosResult dur = analyzeSegmentDurations(tr, fStep);
  for (trace::ProcessId p = 0; p < nProcs; ++p) {
    ASSERT_EQ(sos.process(p).size(), dur.process(p).size());
    for (std::size_t i = 0; i < sos.process(p).size(); ++i) {
      const auto& s = sos.process(p)[i];
      EXPECT_LE(s.sosTime, s.segment.inclusive());
      EXPECT_EQ(s.sosTime + s.syncTime, s.segment.inclusive());
      EXPECT_EQ(dur.process(p)[i].sosTime,
                dur.process(p)[i].segment.inclusive());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SosInvariantSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace perfvar::analysis
