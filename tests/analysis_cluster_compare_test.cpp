#include <gtest/gtest.h>

#include "analysis/cluster.hpp"
#include "analysis/compare.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"
#include "vis/chart.hpp"

namespace perfvar::analysis {
namespace {

/// Iterative trace whose SOS-time per (process, iteration) comes from a
/// callback; barrier absorbs the imbalance.
template <typename WorkFn>
trace::Trace iterativeTrace(std::size_t procs, std::size_t iters,
                            WorkFn&& work) {
  trace::TraceBuilder b(procs);
  const auto fStep = b.defineFunction("step");
  const auto fWork = b.defineFunction("work");
  const auto fMpi =
      b.defineFunction("MPI_Barrier", "MPI", trace::Paradigm::MPI);
  for (std::size_t i = 0; i < iters; ++i) {
    trace::Timestamp slowest = 0;
    for (std::size_t p = 0; p < procs; ++p) {
      slowest = std::max(slowest, work(p, i));
    }
    for (std::size_t p = 0; p < procs; ++p) {
      const trace::Timestamp t0 = static_cast<trace::Timestamp>(i) * 1000;
      const trace::Timestamp w = work(p, i);
      b.enter(p, t0, fStep);
      b.enter(p, t0, fWork);
      b.leave(p, t0 + w, fWork);
      b.enter(p, t0 + w, fMpi);
      b.leave(p, t0 + slowest + 1, fMpi);
      b.leave(p, t0 + slowest + 1, fStep);
    }
  }
  return b.finish();
}

SosResult sosOf(const trace::Trace& tr) {
  return analyzeSos(tr, *tr.functions.find("step"));
}

// --- clustering ------------------------------------------------------------------

TEST(Cluster, SeparatesTwoClearPhases) {
  // Odd iterations are 3x slower than even ones (two phase populations).
  const trace::Trace tr =
      iterativeTrace(4, 20, [](std::size_t p, std::size_t i) {
        const auto jitter = static_cast<trace::Timestamp>((p + i) % 3);
        return (i % 2 == 1 ? trace::Timestamp{300} : trace::Timestamp{100}) +
               jitter;
      });
  const SosResult sos = sosOf(tr);
  ClusterOptions opts;
  opts.clusters = 2;
  const ClusterResult result = clusterSegments(sos, opts);
  ASSERT_EQ(result.clusters.size(), 2u);
  // Clusters are ordered by ascending mean SOS.
  EXPECT_LT(result.clusters[0].meanSos, result.clusters[1].meanSos);
  EXPECT_EQ(result.clusters[0].size, result.clusters[1].size);
  // Every even iteration lands in cluster 0, every odd in cluster 1.
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t i = 0; i < 20; ++i) {
      EXPECT_EQ(result.assignment[p][i], i % 2 == 1 ? 1u : 0u)
          << "p=" << p << " i=" << i;
    }
  }
  EXPECT_EQ(result.slowestCluster(), 1u);
  EXPECT_DOUBLE_EQ(result.fraction(0), 0.5);
}

TEST(Cluster, SingleClusterSwallowsEverything) {
  const trace::Trace tr = iterativeTrace(
      3, 10, [](std::size_t, std::size_t) { return trace::Timestamp{100}; });
  const SosResult sos = sosOf(tr);
  ClusterOptions opts;
  opts.clusters = 1;
  const ClusterResult result = clusterSegments(sos, opts);
  EXPECT_EQ(result.clusters[0].size, 30u);
  EXPECT_DOUBLE_EQ(result.fraction(0), 1.0);
}

TEST(Cluster, CannotLocalizeTheProcessTheWayHotspotsDo) {
  // The related-work limitation: clustering classifies phases, but the
  // slow cluster of a persistent single-rank imbalance contains ONLY the
  // culprit's segments - it reveals "a slow class exists", yet the
  // temporal hotspot list still pinpoints (process, iteration) directly.
  const trace::Trace tr =
      iterativeTrace(6, 15, [](std::size_t p, std::size_t i) {
        const auto jitter = static_cast<trace::Timestamp>((p * 3 + i) % 5);
        return (p == 4 ? trace::Timestamp{200} : trace::Timestamp{100}) +
               jitter;
      });
  const SosResult sos = sosOf(tr);
  ClusterOptions opts;
  opts.clusters = 2;
  const ClusterResult result = clusterSegments(sos, opts);
  const auto slow = result.slowestCluster();
  for (std::size_t p = 0; p < 6; ++p) {
    for (std::size_t i = 0; i < 15; ++i) {
      EXPECT_EQ(result.assignment[p][i] == slow, p == 4);
    }
  }
}

TEST(Cluster, RateMetricSplitsEqualDurationPhases) {
  // Two phases with identical SOS but different counter rates are only
  // separable with the rate feature (the Paraver use case: IPC classes).
  trace::TraceBuilder b(1);
  const auto fStep = b.defineFunction("step");
  const auto m = b.defineMetric("instructions");
  double cumulative = 0.0;
  for (std::size_t i = 0; i < 20; ++i) {
    const trace::Timestamp t0 = static_cast<trace::Timestamp>(i) * 100;
    b.enter(0, t0, fStep);
    cumulative += i % 2 == 0 ? 1000.0 : 100.0;  // high vs low rate
    b.metric(0, t0 + 50, m, cumulative);
    b.leave(0, t0 + 100, fStep);
  }
  const trace::Trace tr = b.finish();
  const SosResult sos = analyzeSos(tr, fStep);
  ClusterOptions opts;
  opts.clusters = 2;
  opts.rateMetric = m;
  const ClusterResult result = clusterSegments(sos, opts);
  EXPECT_EQ(result.clusters[0].size, 10u);
  EXPECT_EQ(result.clusters[1].size, 10u);
  EXPECT_NE(result.clusters[0].meanRate, result.clusters[1].meanRate);
}

TEST(Cluster, MoreClustersThanSegmentsRejected) {
  const trace::Trace tr = iterativeTrace(
      1, 2, [](std::size_t, std::size_t) { return trace::Timestamp{10}; });
  const SosResult sos = sosOf(tr);
  ClusterOptions opts;
  opts.clusters = 5;
  EXPECT_THROW(clusterSegments(sos, opts), Error);
}

TEST(Cluster, FormatListsAllClusters) {
  const trace::Trace tr =
      iterativeTrace(2, 10, [](std::size_t, std::size_t i) {
        return static_cast<trace::Timestamp>(100 + 10 * i);
      });
  const SosResult sos = sosOf(tr);
  const ClusterResult result = clusterSegments(sos);
  const std::string text = formatClusters(result);
  EXPECT_NE(text.find("cluster"), std::string::npos);
  EXPECT_NE(text.find("mean SOS"), std::string::npos);
}

// --- run comparison -----------------------------------------------------------------

TEST(Compare, DetectsTheFix) {
  // Baseline: rank 2 overloaded (3x). Candidate: balanced, same total work.
  const trace::Trace broken =
      iterativeTrace(4, 12, [](std::size_t p, std::size_t) {
        return static_cast<trace::Timestamp>(p == 2 ? 300 : 100);
      });
  const trace::Trace fixed =
      iterativeTrace(4, 12, [](std::size_t, std::size_t) {
        return trace::Timestamp{150};  // (300+3*100)/4
      });
  const SosResult a = sosOf(broken);
  const SosResult b = sosOf(fixed);
  const RunComparison cmp = compareRuns(a, b);
  EXPECT_EQ(cmp.iterationsCompared, 12u);
  EXPECT_GT(cmp.overallSpeedup, 1.5);  // 301 vs 151 per iteration
  EXPECT_GT(cmp.meanImbalanceA, 0.5);
  EXPECT_NEAR(cmp.meanImbalanceB, 0.0, 1e-9);
  EXPECT_GT(cmp.syncShareA, cmp.syncShareB);
  for (const double s : cmp.speedupPerIteration) {
    EXPECT_GT(s, 1.0);
  }
}

TEST(Compare, HandlesDifferentIterationCounts) {
  const trace::Trace a = iterativeTrace(
      2, 10, [](std::size_t, std::size_t) { return trace::Timestamp{100}; });
  const trace::Trace b = iterativeTrace(
      2, 7, [](std::size_t, std::size_t) { return trace::Timestamp{100}; });
  const RunComparison cmp = compareRuns(sosOf(a), sosOf(b));
  EXPECT_EQ(cmp.iterationsCompared, 7u);
  EXPECT_NEAR(cmp.overallSpeedup, 1.0, 1e-9);
}

TEST(Compare, FormatNamesBothRuns) {
  const trace::Trace a = iterativeTrace(
      2, 5, [](std::size_t, std::size_t) { return trace::Timestamp{100}; });
  const RunComparison cmp = compareRuns(sosOf(a), sosOf(a));
  const std::string text = formatComparison(cmp, "static", "fd4");
  EXPECT_NE(text.find("static"), std::string::npos);
  EXPECT_NE(text.find("fd4"), std::string::npos);
  EXPECT_NE(text.find("1.00x"), std::string::npos);
}

// --- chart renderer --------------------------------------------------------------------

TEST(Chart, RendersSeriesWithAxesAndLegend) {
  vis::Series s1;
  s1.label = "mpi share";
  s1.ys = {0.1, 0.2, 0.35, 0.5, 0.7};
  s1.filled = true;
  vis::Series s2;
  s2.label = "compute";
  s2.ys = {0.9, 0.8, 0.65, 0.5, 0.3};
  s2.color = vis::seriesColor(1);
  vis::ChartOptions opts;
  opts.title = "shares over run";
  opts.percentY = true;
  opts.yMin = 0.0;
  opts.yMax = 1.0;
  const std::string doc =
      vis::renderLineChart({s1, s2}, opts).finalize();
  EXPECT_NE(doc.find("<path"), std::string::npos);
  EXPECT_NE(doc.find("mpi share"), std::string::npos);
  EXPECT_NE(doc.find("100.0%"), std::string::npos);
  EXPECT_NE(doc.find("fill-opacity"), std::string::npos);  // filled area
}

TEST(Chart, NaNBreaksTheLine) {
  vis::Series s;
  s.ys = {1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
  const std::string doc =
      vis::renderLineChart({s}, vis::ChartOptions{}).finalize();
  // Two separate moveto commands (one per line fragment).
  std::size_t moves = 0;
  for (std::size_t pos = doc.find(" M "); pos != std::string::npos;
       pos = doc.find(" M ", pos + 1)) {
    ++moves;
  }
  EXPECT_GE(moves, 2u);
}

TEST(Chart, RejectsEmptyInput) {
  EXPECT_THROW(vis::renderLineChart({}, vis::ChartOptions{}), Error);
  vis::Series empty;
  EXPECT_THROW(vis::renderLineChart({empty}, vis::ChartOptions{}), Error);
}

}  // namespace
}  // namespace perfvar::analysis
