#include <gtest/gtest.h>

#include <sstream>

#include "analysis/export.hpp"
#include "analysis/patterns.hpp"
#include "analysis/pipeline.hpp"
#include "apps/paper_examples.hpp"
#include "sim/program.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"
#include "vis/timeline.hpp"

namespace perfvar::analysis {
namespace {

// --- wait-state patterns --------------------------------------------------------

trace::Trace collectiveImbalanceTrace() {
  // 3 ranks, 2 barrier rounds. Rank 2 is slow: it arrives last, so ranks
  // 0 and 1 accumulate Wait-at-Collective severity.
  trace::TraceBuilder b(3);
  const auto fWork = b.defineFunction("work", "APP");
  const auto fBarrier =
      b.defineFunction("MPI_Barrier", "MPI", trace::Paradigm::MPI);
  for (int round = 0; round < 2; ++round) {
    const trace::Timestamp base = static_cast<trace::Timestamp>(round) * 1000;
    const trace::Timestamp arrive[3] = {base + 100, base + 200, base + 500};
    for (trace::ProcessId p = 0; p < 3; ++p) {
      b.enter(p, base, fWork);
      b.leave(p, arrive[p], fWork);
      b.enter(p, arrive[p], fBarrier);
      b.leave(p, base + 510, fBarrier);
    }
  }
  return b.finish();
}

TEST(Patterns, WaitAtCollectiveBlamesTheVictims) {
  const trace::Trace tr = collectiveImbalanceTrace();
  const PatternReport report = findWaitStates(tr);
  const auto idx =
      static_cast<std::size_t>(PatternKind::WaitAtCollective);
  // Rank 0 waits 400 per round, rank 1 waits 300, rank 2 (the culprit)
  // waits 0. Resolution is ns -> severities in seconds.
  EXPECT_NEAR(report.severityByProcess[idx][0], 800e-9, 1e-12);
  EXPECT_NEAR(report.severityByProcess[idx][1], 600e-9, 1e-12);
  EXPECT_NEAR(report.severityByProcess[idx][2], 0.0, 1e-15);
  // The worst VICTIM is rank 0 - not the culprit rank 2. This is the
  // structural blind spot the paper's SOS analysis removes.
  EXPECT_EQ(report.worstVictim(), 0u);
  EXPECT_NEAR(report.totalSeverity, 1400e-9, 1e-12);
}

TEST(Patterns, LateSenderMeasuresRecvBlocking) {
  sim::ProgramBuilder b(2);
  const auto f = b.function("work");
  b.compute(0, f, 0.3);  // sender busy for 0.3 s
  b.send(0, 1, 1, 1024);
  b.recv(1, 0, 1);  // receiver posts at t = 0
  const trace::Trace tr = sim::simulate(b.finish(), sim::SimOptions{});
  const PatternReport report = findWaitStates(tr);
  const auto idx = static_cast<std::size_t>(PatternKind::LateSender);
  EXPECT_NEAR(report.severityByProcess[idx][1], 0.3, 0.01);
  EXPECT_NEAR(report.severityByProcess[idx][0], 0.0, 1e-12);
  ASSERT_FALSE(report.instances.empty());
  EXPECT_EQ(report.instances.front().kind, PatternKind::LateSender);
  EXPECT_EQ(report.instances.front().process, 1u);
}

TEST(Patterns, InstancesAreRankedBySeverity) {
  const trace::Trace tr = collectiveImbalanceTrace();
  const PatternReport report = findWaitStates(tr);
  for (std::size_t i = 1; i < report.instances.size(); ++i) {
    EXPECT_GE(report.instances[i - 1].severitySeconds,
              report.instances[i].severitySeconds);
  }
}

TEST(Patterns, BalancedRunHasNoSeverity) {
  trace::TraceBuilder b(2);
  const auto fWork = b.defineFunction("work", "APP");
  const auto fBarrier =
      b.defineFunction("MPI_Barrier", "MPI", trace::Paradigm::MPI);
  for (trace::ProcessId p = 0; p < 2; ++p) {
    b.enter(p, 0, fWork);
    b.leave(p, 100, fWork);
    b.enter(p, 100, fBarrier);
    b.leave(p, 110, fBarrier);
  }
  const trace::Trace tr = b.finish();
  const PatternReport report = findWaitStates(tr);
  EXPECT_EQ(report.totalSeverity, 0.0);
  EXPECT_TRUE(report.instances.empty());
}

TEST(Patterns, FormatListsPatternsAndSeverity) {
  const trace::Trace tr = collectiveImbalanceTrace();
  PatternOptions opts;
  opts.minListedSeverity = 1e-12;  // the toy trace is nanoseconds long
  const PatternReport report = findWaitStates(tr, opts);
  const std::string text = formatPatternReport(tr, report);
  EXPECT_NE(text.find("Wait at Collective"), std::string::npos);
  EXPECT_NE(text.find("Rank 0"), std::string::npos);
}

TEST(Patterns, OnWaitHiddenImbalanceSosFindsCulpritPatternsFindVictims) {
  const trace::Trace tr = collectiveImbalanceTrace();
  const PatternReport patterns = findWaitStates(tr);
  const AnalysisResult sos = analyzeTrace(tr);
  EXPECT_EQ(sos.variation.slowestProcess(), 2u);  // the actual culprit
  EXPECT_EQ(patterns.worstVictim(), 0u);          // the waiting rank
}

// --- export -----------------------------------------------------------------------

const trace::Trace& figureTrace() {
  // Kept alive for the whole test binary: AnalysisResult references the
  // analyzed trace (documented in pipeline.hpp).
  static const trace::Trace tr = apps::buildFigure3Trace();
  return tr;
}

AnalysisResult figureResult() {
  return analyzeTrace(figureTrace());
}

TEST(Export, SosMatrixCsvShape) {
  const AnalysisResult result = figureResult();
  const std::string csv =
      exportReportString(figureTrace(), result, ExportFormat::Csv);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "process,iter0,iter1,iter2");
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    ++rows;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3);
  }
  EXPECT_EQ(rows, 3u);
  EXPECT_NE(csv.find("Rank 0,5,2,1"), std::string::npos);
}

TEST(Export, IterationStatsCsvHasHeaderAndRows) {
  const AnalysisResult result = figureResult();
  std::ostringstream os;
  exportReport(figureTrace(), result, ExportFormat::CsvIterations, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("iteration,processes,minSos", 0), 0u);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3
}

TEST(Export, HotspotsCsvQuotesNames) {
  const AnalysisResult result = figureResult();
  std::ostringstream os;
  exportReport(figureTrace(), result, ExportFormat::CsvHotspots, os);
  EXPECT_EQ(os.str().rfind("process,processName", 0), 0u);
}

TEST(Export, JsonIsBalancedAndCarriesKeyFacts) {
  const AnalysisResult result = figureResult();
  const std::string json =
      exportReportString(figureTrace(), result, ExportFormat::Json);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"dominant\""), std::string::npos);
  EXPECT_NE(json.find("\"function\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"hotspots\""), std::string::npos);
  EXPECT_NE(json.find("\"trend\""), std::string::npos);
  // No trailing commas (the classic hand-rolled-JSON bug).
  EXPECT_EQ(json.find(",}"), std::string::npos);
  EXPECT_EQ(json.find(",]"), std::string::npos);
}

TEST(Export, JsonEscapesSpecialCharacters) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("solve \"fast\"\npath\\x");
  for (int i = 0; i < 3; ++i) {
    b.enter(0, static_cast<trace::Timestamp>(i) * 10, f);
    b.leave(0, static_cast<trace::Timestamp>(i) * 10 + 5, f);
  }
  const trace::Trace tr = b.finish();
  const AnalysisResult result = analyzeTrace(tr);
  const std::string json = exportReportString(tr, result, ExportFormat::Json);
  EXPECT_NE(json.find("\\\"fast\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\\x"), std::string::npos);
}

TEST(Export, TextFormatMatchesFormatAnalysis) {
  const AnalysisResult result = figureResult();
  EXPECT_EQ(exportReportString(figureTrace(), result, ExportFormat::Text),
            formatAnalysis(figureTrace(), result));
}

// The per-format writers (now internal) are exactly what exportReport
// dispatches to — the format-selection layer adds nothing.
TEST(Export, PerFormatWritersMatchExportReport) {
  const AnalysisResult result = figureResult();
  const trace::Trace& tr = figureTrace();

  std::ostringstream direct;
  detail::writeSosMatrixCsv(*result.sos, direct);
  detail::writeIterationStatsCsv(result.variation, direct);
  detail::writeHotspotsCsv(tr, result.variation, direct);
  detail::writeAnalysisJson(tr, result.selection, *result.sos,
                            result.variation, direct);

  std::ostringstream dispatched;
  exportReport(tr, result, ExportFormat::Csv, dispatched);
  exportReport(tr, result, ExportFormat::CsvIterations, dispatched);
  exportReport(tr, result, ExportFormat::CsvHotspots, dispatched);
  exportReport(tr, result, ExportFormat::Json, dispatched);

  EXPECT_EQ(direct.str(), dispatched.str());
}

// --- ASCII timeline ------------------------------------------------------------------

TEST(AsciiTimeline, RendersRowsAndLegend) {
  const trace::Trace tr = apps::buildFigure3Trace();
  vis::TimelineOptions opts;
  opts.bins = 14;
  opts.title = "fig3";
  const std::string text = vis::renderTimelineAscii(tr, opts);
  EXPECT_NE(text.find("fig3"), std::string::npos);
  EXPECT_NE(text.find("legend: # = MPI"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);  // MPI wait is visible
  // 1 title + 3 process rows + 1 legend.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

}  // namespace
}  // namespace perfvar::analysis
