/// Parameterized edge sweeps of the serialization and rendering layers:
/// BMP row padding across widths, PPM size law, text-format fuzz lines,
/// and referenceZ fallback behaviour.

#include <gtest/gtest.h>

#include <sstream>

#include "trace/text_io.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "vis/image.hpp"

namespace perfvar {
namespace {

// --- BMP padding law across widths ------------------------------------------

class BmpWidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BmpWidthSweep, FileSizeMatchesPaddingLaw) {
  const std::size_t width = GetParam();
  vis::Image img(width, 3, vis::Rgb{1, 2, 3});
  std::ostringstream os;
  img.writeBmp(os);
  const std::size_t rowBytes = (width * 3 + 3) & ~std::size_t{3};
  EXPECT_EQ(os.str().size(), 54u + rowBytes * 3u);
}

INSTANTIATE_TEST_SUITE_P(Widths, BmpWidthSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 127, 128));

// --- PPM size law --------------------------------------------------------------

class PpmSizeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PpmSizeSweep, SizeIsHeaderPlusPixels) {
  const auto [w, h] = GetParam();
  vis::Image img(w, h);
  std::ostringstream os;
  img.writePpm(os);
  const std::string header =
      "P6\n" + std::to_string(w) + ' ' + std::to_string(h) + "\n255\n";
  EXPECT_EQ(os.str().size(), header.size() + w * h * 3);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PpmSizeSweep,
    ::testing::Values(std::make_pair(1ul, 1ul), std::make_pair(10ul, 1ul),
                      std::make_pair(1ul, 10ul), std::make_pair(33ul, 17ul)));

// --- PVTX parser rejects malformed records --------------------------------------

class PvtxFuzzSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(PvtxFuzzSweep, MalformedInputThrows) {
  const std::string prefix =
      "PVTX 1\nresolution 1000\nfunction 0 \"f\" \"\" COMPUTE\n"
      "process 0 \"Rank 0\"\n";
  EXPECT_THROW(trace::fromText(prefix + GetParam() + "\n"), Error);
}

INSTANTIATE_TEST_SUITE_P(
    Lines, PvtxFuzzSweep,
    ::testing::Values("E",                    // missing fields
                      "E ten 0",              // non-numeric time
                      "E 0 0 trailing",       // trailing tokens
                      "M 0 0",                // metric without value
                      "function 5 \"g\" \"\" COMPUTE",  // id mismatch
                      "function 1 \"g\" \"\" NOPE",     // bad paradigm
                      "metric 0 \"m\" \"\" SOMETIMES",  // bad mode
                      "process 5 \"Rank 5\"",           // id gap
                      "S 0 1 2",               // send missing bytes
                      "E 0 \"quoted\"",        // quoted where int expected
                      "resolution 0"));        // zero resolution

// --- referenceZ fallback chain ------------------------------------------------------

TEST(ReferenceZ, MadPath) {
  const std::vector<double> ref = {1.0, 2.0, 3.0, 4.0, 100.0};
  EXPECT_GT(stats::referenceZ(50.0, ref), 3.0);
}

TEST(ReferenceZ, StddevFallbackWhenMadZero) {
  // Majority identical -> MAD 0; stddev > 0 takes over.
  const std::vector<double> ref = {5.0, 5.0, 5.0, 5.0, 9.0};
  const double z = stats::referenceZ(7.0, ref);
  EXPECT_GT(z, 0.0);
  EXPECT_LT(z, 100.0);
}

TEST(ReferenceZ, RelativeFallbackForConstantReference) {
  const std::vector<double> ref(8, 10.0);
  EXPECT_EQ(stats::referenceZ(10.0, ref), 0.0);
  EXPECT_GT(stats::referenceZ(10.5, ref), 3.5);
  EXPECT_LT(stats::referenceZ(9.5, ref), -3.5);
}

TEST(ReferenceZ, EmptyReferenceIsZero) {
  EXPECT_EQ(stats::referenceZ(1.0, {}), 0.0);
}

TEST(ReferenceZ, ConstantZeroReferenceUsesAbsoluteEpsilon) {
  const std::vector<double> ref(5, 0.0);
  EXPECT_GT(stats::referenceZ(1e-6, ref), 0.0);
}

}  // namespace
}  // namespace perfvar
