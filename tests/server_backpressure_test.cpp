/// The Sender's backpressure contract, exercised against real sockets
/// with shrunken kernel buffers: alert fan-out to a slow subscriber
/// never blocks, overflowing alerts coalesce into one `dropped=N`
/// marker frame, and a peer that stops reading entirely trips the
/// per-send poll timeout and is deactivated like a dead peer — while a
/// merely slow reader is waited for and still gets its bytes.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/service.hpp"
#include "util/framing.hpp"
#include "util/socket.hpp"

namespace perfvar::server {
namespace {

/// Shrink both kernel buffers so a few KB of payload is enough to make
/// send(2) push back. The kernel clamps to its minimum; that is fine —
/// the tests size their payloads well past it.
void shrinkBuffers(int fd) {
  const int tiny = 4096;
  ASSERT_EQ(setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny)), 0);
  ASSERT_EQ(setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny)), 0);
}

/// Read every frame until EOF.
std::vector<util::Frame> drainFrames(int fd) {
  std::vector<util::Frame> frames;
  util::Frame frame;
  while (util::readFrame(fd, frame)) {
    frames.push_back(frame);
  }
  return frames;
}

TEST(ServerBackpressure, EnqueueAlertNeverBlocksAndCoalescesDrops) {
  auto [a, b] = util::socketPair();
  shrinkBuffers(a.get());
  shrinkBuffers(b.get());

  SenderOptions options;
  options.alertQueueBytes = 2048;  // tiny bound: drops are certain
  options.sendTimeoutMs = 200;
  Sender sender(a.get(), options);

  // Nobody reads from `b`: the kernel buffer fills, then the queue
  // fills, then alerts start dropping. enqueueAlert must return without
  // ever blocking (the test would hang here if it did).
  const std::string line(512, 'A');
  for (int i = 0; i < 200; ++i) {
    sender.enqueueAlert(line);
  }
  EXPECT_TRUE(sender.active());
  EXPECT_GT(sender.alertsDropped(), 0u);
  const std::uint64_t dropped = sender.alertsDropped();

  // Start reading: a response send flushes the queued alerts, then the
  // coalesced dropped=N marker, then the response frame itself.
  std::thread reader([fd = b.get(), &sender] {
    // Give send() a moment to queue the final frame, then drain.
    std::vector<util::Frame> frames = drainFrames(fd);
    std::size_t alerts = 0;
    bool sawMarker = false;
    bool sawFinal = false;
    for (const util::Frame& f : frames) {
      if (static_cast<FrameType>(f.type) == FrameType::Alert) {
        if (f.payload.rfind("dropped=", 0) == 0) {
          sawMarker = true;
          EXPECT_EQ(f.payload, "dropped=" +
                                   std::to_string(sender.alertsDropped()));
        } else {
          ++alerts;
        }
      } else if (static_cast<FrameType>(f.type) == FrameType::Ok) {
        sawFinal = true;
      }
    }
    EXPECT_GT(alerts, 0u);        // the queued alerts got through
    EXPECT_TRUE(sawMarker);       // the drops were reported
    EXPECT_TRUE(sawFinal);        // the response still arrived, last
  });
  EXPECT_TRUE(sender.send(FrameType::Ok, "done"));
  EXPECT_EQ(sender.alertsDropped(), dropped);  // marker cleared pending
  sender.deactivate();
  a.close();  // EOF for the reader
  reader.join();
}

TEST(ServerBackpressure, StalledPeerTripsTheSendTimeoutAndDeactivates) {
  auto [a, b] = util::socketPair();
  shrinkBuffers(a.get());
  shrinkBuffers(b.get());

  SenderOptions options;
  options.sendTimeoutMs = 100;
  Sender sender(a.get(), options);

  // A payload far beyond both kernel buffers; the peer never reads.
  const std::string huge(1 << 20, 'Z');
  EXPECT_FALSE(sender.send(FrameType::Data, huge));
  EXPECT_FALSE(sender.active());
  // Dead-peer semantics: every later send is a cheap no-op failure.
  EXPECT_FALSE(sender.send(FrameType::Ok, "late"));
}

TEST(ServerBackpressure, SlowButLivePeerStillGetsEveryByte) {
  auto [a, b] = util::socketPair();
  shrinkBuffers(a.get());
  shrinkBuffers(b.get());

  SenderOptions options;
  options.sendTimeoutMs = 5000;  // patient: the reader IS making progress
  Sender sender(a.get(), options);

  const std::string big(256 * 1024, 'Q');
  std::string received;
  std::thread reader([fd = b.get(), &received, &big] {
    util::Frame frame;
    while (util::readFrame(fd, frame)) {
      if (static_cast<FrameType>(frame.type) == FrameType::Data) {
        received = frame.payload;
      }
      if (received.size() == big.size()) {
        break;
      }
    }
  });
  EXPECT_TRUE(sender.send(FrameType::Data, big));
  EXPECT_TRUE(sender.active());
  reader.join();
  EXPECT_EQ(received, big);
}

TEST(ServerBackpressure, DeactivatedSenderDropsAlertsQuietly) {
  auto [a, b] = util::socketPair();
  Sender sender(a.get());
  sender.deactivate();
  EXPECT_FALSE(sender.enqueueAlert("into the void"));
  EXPECT_FALSE(sender.pumpAlerts());
  EXPECT_FALSE(sender.send(FrameType::Ok, "gone"));
}

}  // namespace
}  // namespace perfvar::server
