/// Differential harness for the parallel analysis engine: for a matrix of
/// trace shapes (uniform, imbalanced, interrupted-rank, zero-segment,
/// single-rank, simulated) and thread counts {1, 2, 4, hardware},
/// analyzeTrace() with PipelineOptions::threads != 1 must produce output
/// that is field-for-field
/// identical to the serial analyzeTrace() — same DominantSelection, same
/// SOS vectors (including paradigm breakdown and metric deltas), same
/// VariationReport. Exact double comparisons throughout: the guarantee is
/// bit-identical, not approximately equal.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "analysis/parallel.hpp"
#include "analysis/pipeline.hpp"
#include "sim/program.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace perfvar {
namespace {

enum class Shape {
  Uniform,      ///< every rank does identical work
  Imbalanced,   ///< one rank persistently overloaded
  Interrupted,  ///< one rank has a single stretched iteration
};

/// Hand-built iterative trace: `step` wraps `calc` + `MPI_Allreduce` per
/// iteration, plus an accumulated and an absolute metric. Tick math only,
/// so all analysis inputs are exact.
trace::Trace buildSynthetic(std::size_t ranks, std::size_t iters,
                            Shape shape) {
  trace::TraceBuilder b(ranks, 1'000'000);
  const auto fStep = b.defineFunction("step", "APP", trace::Paradigm::Compute);
  const auto fCalc = b.defineFunction("calc", "APP", trace::Paradigm::Compute);
  const auto fMpi =
      b.defineFunction("MPI_Allreduce", "MPI", trace::Paradigm::MPI);
  const auto mFlop = b.defineMetric("FLOP", "", trace::MetricMode::Accumulated);
  const auto mUtil =
      b.defineMetric("UTILIZATION", "%", trace::MetricMode::Absolute);

  for (trace::ProcessId r = 0; r < ranks; ++r) {
    trace::Timestamp t = 0;
    double flop = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
      trace::Timestamp calcTicks = 100 + 7 * ((r + i) % 5);
      if (shape == Shape::Imbalanced && r == ranks / 2) {
        calcTicks += 150;
      }
      if (shape == Shape::Interrupted && r == ranks - 1 && i == iters / 2) {
        calcTicks += 900;
      }
      const trace::Timestamp mpiTicks = 40 + 3 * (i % 4);
      b.enter(r, t, fStep);
      b.enter(r, t, fCalc);
      flop += static_cast<double>(calcTicks) * 2.0;
      b.metric(r, t + calcTicks / 2, mFlop, flop);
      b.metric(r, t + calcTicks / 2, mUtil,
               90.0 - static_cast<double>((r + i) % 7));
      b.leave(r, t + calcTicks, fCalc);
      b.enter(r, t + calcTicks, fMpi);
      b.leave(r, t + calcTicks + mpiTicks, fMpi);
      b.leave(r, t + calcTicks + mpiTicks, fStep);
      t += calcTicks + mpiTicks + 10;  // small gap between iterations
    }
  }
  return b.finish();
}

/// One rank never invokes the step function: its timeline is a single long
/// `idle` invocation (1 invocation < 2p, so it is rejected from candidacy
/// like `main` in the paper's Figure 2, and its segment row stays empty).
trace::Trace buildZeroSegmentRank() {
  const std::size_t ranks = 4;
  const std::size_t iters = 10;
  trace::TraceBuilder b(ranks, 1'000'000);
  const auto fStep = b.defineFunction("step", "APP", trace::Paradigm::Compute);
  const auto fMpi = b.defineFunction("MPI_Barrier", "MPI", trace::Paradigm::MPI);
  const auto fIdle = b.defineFunction("idle", "APP", trace::Paradigm::Compute);
  for (trace::ProcessId r = 0; r + 1 < ranks; ++r) {
    trace::Timestamp t = 0;
    for (std::size_t i = 0; i < iters; ++i) {
      b.enter(r, t, fStep);
      b.enter(r, t + 80 + 5 * (i % 3), fMpi);
      b.leave(r, t + 100 + 5 * (i % 3), fMpi);
      b.leave(r, t + 110, fStep);
      t += 120;
    }
  }
  b.enter(ranks - 1, 0, fIdle);
  b.leave(ranks - 1, 120 * iters, fIdle);
  return b.finish();
}

trace::Trace buildSingleRank() {
  trace::TraceBuilder b(1, 1'000'000);
  const auto fStep = b.defineFunction("step", "APP", trace::Paradigm::Compute);
  const auto fMpi = b.defineFunction("MPI_Wait", "MPI", trace::Paradigm::MPI);
  trace::Timestamp t = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    b.enter(0, t, fStep);
    b.enter(0, t + 50 + 20 * (i % 2), fMpi);
    b.leave(0, t + 60 + 20 * (i % 2), fMpi);
    b.leave(0, t + 100, fStep);
    t += 100;
  }
  return b.finish();
}

/// Simulated run: 12-rank ring exchange with one overloaded rank and OS
/// noise, so hotspots, culprits and metric paths are all populated by a
/// realistic (simulator-timed) trace, not just hand-placed ticks.
trace::Trace buildSimulated() {
  const std::uint32_t ranks = 12;
  const std::size_t iters = 15;
  sim::ProgramBuilder b(ranks);
  const auto fStep = b.function("step", "APP");
  const auto fWork = b.function("work", "APP");
  for (std::size_t i = 0; i < iters; ++i) {
    for (std::uint32_t r = 0; r < ranks; ++r) {
      b.enter(r, fStep);
      double work = 1e-4 * static_cast<double>(1 + (r * 5 + i) % 7);
      if (r == 3) {
        work *= 2.5;  // persistent overload
      }
      sim::ComputeAttrs attrs;
      if (r == 7 && i == 9) {
        attrs.osDelay = 4e-3;  // one stretched invocation
      }
      b.compute(r, fWork, work, attrs);
      b.send(r, (r + 1) % ranks, static_cast<std::uint32_t>(i), 256);
      b.recv(r, (r + ranks - 1) % ranks, static_cast<std::uint32_t>(i));
      b.allreduce(r, 64);
      b.leave(r, fStep);
    }
  }
  sim::SimOptions opts;
  opts.noise.sigma = 0.05;
  opts.noise.seed = 424242;
  return sim::simulate(b.finish(), opts);
}

struct Case {
  const char* name;
  trace::Trace tr;
};

std::vector<Case> buildMatrix() {
  std::vector<Case> cases;
  cases.push_back({"uniform", buildSynthetic(8, 12, Shape::Uniform)});
  cases.push_back({"imbalanced", buildSynthetic(8, 12, Shape::Imbalanced)});
  cases.push_back({"interrupted", buildSynthetic(6, 14, Shape::Interrupted)});
  cases.push_back({"zero_segment_rank", buildZeroSegmentRank()});
  cases.push_back({"single_rank", buildSingleRank()});
  cases.push_back({"simulated", buildSimulated()});
  return cases;
}

std::vector<std::size_t> threadMatrix() {
  return {1, 2, 4, util::ThreadPool::resolveThreadCount(0)};
}

// ---- field-for-field comparison helpers ----------------------------------

void expectSelectionEqual(const analysis::DominantSelection& a,
                          const analysis::DominantSelection& b) {
  const auto eq = [](const analysis::DominantCandidate& x,
                     const analysis::DominantCandidate& y) {
    EXPECT_EQ(x.function, y.function);
    EXPECT_EQ(x.invocations, y.invocations);
    EXPECT_EQ(x.aggregatedInclusive, y.aggregatedInclusive);
  };
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    eq(a.candidates[i], b.candidates[i]);
  }
  ASSERT_EQ(a.rejectedTopLevel.size(), b.rejectedTopLevel.size());
  for (std::size_t i = 0; i < a.rejectedTopLevel.size(); ++i) {
    eq(a.rejectedTopLevel[i], b.rejectedTopLevel[i]);
  }
}

void expectSosEqual(const analysis::SosResult& a,
                    const analysis::SosResult& b) {
  EXPECT_EQ(a.segmentFunction(), b.segmentFunction());
  ASSERT_EQ(a.processCount(), b.processCount());
  for (std::size_t p = 0; p < a.processCount(); ++p) {
    const auto& pa = a.process(static_cast<trace::ProcessId>(p));
    const auto& pb = b.process(static_cast<trace::ProcessId>(p));
    ASSERT_EQ(pa.size(), pb.size()) << "process " << p;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      const auto& sa = pa[i];
      const auto& sb = pb[i];
      EXPECT_EQ(sa.segment.process, sb.segment.process);
      EXPECT_EQ(sa.segment.index, sb.segment.index);
      EXPECT_EQ(sa.segment.enter, sb.segment.enter);
      EXPECT_EQ(sa.segment.leave, sb.segment.leave);
      EXPECT_EQ(sa.syncTime, sb.syncTime);
      EXPECT_EQ(sa.sosTime, sb.sosTime);
      EXPECT_EQ(sa.paradigmTime, sb.paradigmTime);
      EXPECT_EQ(sa.metricDelta, sb.metricDelta);  // exact doubles
    }
  }
}

void expectVariationEqual(const analysis::VariationReport& a,
                          const analysis::VariationReport& b) {
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const auto& ia = a.iterations[i];
    const auto& ib = b.iterations[i];
    EXPECT_EQ(ia.iteration, ib.iteration);
    EXPECT_EQ(ia.processCount, ib.processCount);
    EXPECT_EQ(ia.minSos, ib.minSos);
    EXPECT_EQ(ia.maxSos, ib.maxSos);
    EXPECT_EQ(ia.meanSos, ib.meanSos);
    EXPECT_EQ(ia.stddevSos, ib.stddevSos);
    EXPECT_EQ(ia.meanDuration, ib.meanDuration);
    EXPECT_EQ(ia.imbalance, ib.imbalance);
    EXPECT_EQ(ia.slowestProcess, ib.slowestProcess);
  }
  ASSERT_EQ(a.processes.size(), b.processes.size());
  for (std::size_t p = 0; p < a.processes.size(); ++p) {
    const auto& pa = a.processes[p];
    const auto& pb = b.processes[p];
    EXPECT_EQ(pa.process, pb.process);
    EXPECT_EQ(pa.segments, pb.segments);
    EXPECT_EQ(pa.totalSos, pb.totalSos);
    EXPECT_EQ(pa.meanSos, pb.meanSos);
    EXPECT_EQ(pa.maxSos, pb.maxSos);
    EXPECT_EQ(pa.totalZ, pb.totalZ);
  }
  EXPECT_EQ(a.processesBySos, b.processesBySos);
  EXPECT_EQ(a.culpritProcesses, b.culpritProcesses);
  ASSERT_EQ(a.hotspots.size(), b.hotspots.size());
  for (std::size_t i = 0; i < a.hotspots.size(); ++i) {
    const auto& ha = a.hotspots[i];
    const auto& hb = b.hotspots[i];
    EXPECT_EQ(ha.process, hb.process);
    EXPECT_EQ(ha.iteration, hb.iteration);
    EXPECT_EQ(ha.sosSeconds, hb.sosSeconds);
    EXPECT_EQ(ha.durationSeconds, hb.durationSeconds);
    EXPECT_EQ(ha.globalZ, hb.globalZ);
    EXPECT_EQ(ha.iterationZ, hb.iterationZ);
  }
  EXPECT_EQ(a.durationTrend.slope, b.durationTrend.slope);
  EXPECT_EQ(a.durationTrend.intercept, b.durationTrend.intercept);
  EXPECT_EQ(a.durationTrend.r2, b.durationTrend.r2);
  EXPECT_EQ(a.sosTrend.slope, b.sosTrend.slope);
  EXPECT_EQ(a.sosTrend.intercept, b.sosTrend.intercept);
  EXPECT_EQ(a.sosTrend.r2, b.sosTrend.r2);
  EXPECT_EQ(a.sosMedian, b.sosMedian);
  EXPECT_EQ(a.sosMad, b.sosMad);
  EXPECT_EQ(a.sosSummary.count, b.sosSummary.count);
  EXPECT_EQ(a.sosSummary.min, b.sosSummary.min);
  EXPECT_EQ(a.sosSummary.max, b.sosSummary.max);
  EXPECT_EQ(a.sosSummary.mean, b.sosSummary.mean);
  EXPECT_EQ(a.sosSummary.stddev, b.sosSummary.stddev);
  EXPECT_EQ(a.sosSummary.sum, b.sosSummary.sum);
}

void expectProfileEqual(const profile::FlatProfile& a,
                        const profile::FlatProfile& b,
                        const trace::Trace& tr) {
  ASSERT_EQ(a.processCount(), b.processCount());
  ASSERT_EQ(a.functionCount(), b.functionCount());
  for (std::size_t p = 0; p < a.processCount(); ++p) {
    for (std::size_t f = 0; f < tr.functions.size(); ++f) {
      const auto& sa = a.process(static_cast<trace::ProcessId>(p),
                                 static_cast<trace::FunctionId>(f));
      const auto& sb = b.process(static_cast<trace::ProcessId>(p),
                                 static_cast<trace::FunctionId>(f));
      EXPECT_EQ(sa.invocations, sb.invocations);
      EXPECT_EQ(sa.inclusive, sb.inclusive);
      EXPECT_EQ(sa.exclusive, sb.exclusive);
      EXPECT_EQ(sa.minInclusive, sb.minInclusive);
      EXPECT_EQ(sa.maxInclusive, sb.maxInclusive);
    }
  }
  for (std::size_t f = 0; f < tr.functions.size(); ++f) {
    const auto& sa = a.aggregated(static_cast<trace::FunctionId>(f));
    const auto& sb = b.aggregated(static_cast<trace::FunctionId>(f));
    EXPECT_EQ(sa.invocations, sb.invocations);
    EXPECT_EQ(sa.inclusive, sb.inclusive);
    EXPECT_EQ(sa.exclusive, sb.exclusive);
    EXPECT_EQ(sa.minInclusive, sb.minInclusive);
    EXPECT_EQ(sa.maxInclusive, sb.maxInclusive);
  }
}

// ---- the differential matrix ---------------------------------------------

TEST(ParallelDifferential, FullPipelineMatchesSerialAcrossMatrix) {
  const auto cases = buildMatrix();
  for (const auto& c : cases) {
    const analysis::AnalysisResult serial = analysis::analyzeTrace(c.tr);
    for (const std::size_t threads : threadMatrix()) {
      SCOPED_TRACE(std::string(c.name) + ", threads=" +
                   std::to_string(threads));
      analysis::PipelineOptions opts;
      opts.threads = threads;
      const analysis::AnalysisResult par = analysis::analyzeTrace(c.tr, opts);
      expectProfileEqual(serial.profile, par.profile, c.tr);
      expectSelectionEqual(serial.selection, par.selection);
      EXPECT_EQ(serial.segmentFunction, par.segmentFunction);
      expectSosEqual(*serial.sos, *par.sos);
      expectVariationEqual(serial.variation, par.variation);
      // The rendered report is a function of the above, but diff it too:
      // it is what users actually read.
      EXPECT_EQ(analysis::formatAnalysis(c.tr, serial),
                analysis::formatAnalysis(c.tr, par));
    }
  }
}

TEST(ParallelDifferential, GrainSizeDoesNotChangeTheResult) {
  const trace::Trace tr = buildSynthetic(8, 12, Shape::Imbalanced);
  const analysis::AnalysisResult serial = analysis::analyzeTrace(tr);
  for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                  std::size_t{8}, std::size_t{100}}) {
    SCOPED_TRACE("grain=" + std::to_string(grain));
    analysis::PipelineOptions opts;
    opts.threads = 4;
    opts.grainSizeRanks = grain;
    const analysis::AnalysisResult par = analysis::analyzeTrace(tr, opts);
    expectSosEqual(*serial.sos, *par.sos);
    expectVariationEqual(serial.variation, par.variation);
  }
}

TEST(ParallelDifferential, StageEntryPointsMatchSerial) {
  const trace::Trace tr = buildSimulated();
  util::ThreadPool pool(4);
  const auto selection = analysis::selectDominantFunction(tr);
  ASSERT_TRUE(selection.hasDominant());
  const auto f = selection.dominant().function;

  const auto segSerial = analysis::extractSegments(tr, f);
  const auto segPar = analysis::extractSegmentsParallel(tr, f, pool, 2);
  ASSERT_EQ(segSerial.size(), segPar.size());
  for (std::size_t p = 0; p < segSerial.size(); ++p) {
    ASSERT_EQ(segSerial[p].size(), segPar[p].size());
    for (std::size_t i = 0; i < segSerial[p].size(); ++i) {
      EXPECT_EQ(segSerial[p][i].enter, segPar[p][i].enter);
      EXPECT_EQ(segSerial[p][i].leave, segPar[p][i].leave);
      EXPECT_EQ(segSerial[p][i].index, segPar[p][i].index);
      EXPECT_EQ(segSerial[p][i].process, segPar[p][i].process);
    }
  }

  const auto sosSerial = analysis::analyzeSos(tr, f);
  const auto sosPar =
      analysis::analyzeSosParallel(tr, f, analysis::SyncClassifier{}, pool);
  expectSosEqual(sosSerial, sosPar);

  expectVariationEqual(
      analysis::analyzeVariation(sosSerial),
      analysis::analyzeVariationParallel(sosPar, {}, pool));

  expectProfileEqual(profile::FlatProfile::build(tr),
                     analysis::buildProfileParallel(tr, pool), tr);
}

// ---- thread pool unit coverage -------------------------------------------

TEST(ThreadPool, RunsAllSubmittedTasksAndIsReusable) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  for (int round = 0; round < 3; ++round) {
    std::vector<int> hits(100, 0);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      pool.submit([&hits, i] { hits[i] = 1; });
    }
    pool.wait();
    for (const int h : hits) {
      EXPECT_EQ(h, 1);
    }
  }
}

TEST(ThreadPool, PropagatesTheFirstExceptionAndRecovers) {
  util::ThreadPool pool(2);
  pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(pool.wait(), Error);
  // The pool stays usable after an exception.
  int ok = 0;
  pool.submit([&ok] { ok = 1; });
  pool.wait();
  EXPECT_EQ(ok, 1);
}

TEST(ThreadPool, ParallelChunksCoversTheIndexSpaceExactlyOnce) {
  util::ThreadPool pool(4);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
    for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                    std::size_t{64}}) {
      std::vector<int> hits(n, 0);
      util::parallelChunks(&pool, n, grain,
                           [&](std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               ++hits[i];
                             }
                           });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i], 1) << "n=" << n << " grain=" << grain;
      }
    }
  }
  // Null pool: runs inline.
  std::vector<int> hits(10, 0);
  util::parallelChunks(nullptr, hits.size(), 4,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           ++hits[i];
                         }
                       });
  for (const int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_GE(util::ThreadPool::resolveThreadCount(0), 1u);
  EXPECT_EQ(util::ThreadPool::resolveThreadCount(3), 3u);
}

// ---- lifetime guard (satellite: dangling-trace fix) ----------------------

// Passing a temporary trace to the pipeline or SOS analyzers used to
// compile and dangle (AnalysisResult/SosResult keep a pointer into the
// trace); the rvalue overloads are deleted now. The lvalue path is
// exercised by every other test in this file.
template <typename T>
concept AnalyzableAsTemporary = requires(T t) {
  analysis::analyzeTrace(std::move(t));
};
template <typename T>
concept SosAnalyzableAsTemporary = requires(T t) {
  analysis::analyzeSos(std::move(t), trace::FunctionId{0});
};
static_assert(!AnalyzableAsTemporary<trace::Trace>,
              "analyzeTrace must reject temporary traces");
static_assert(!SosAnalyzableAsTemporary<trace::Trace>,
              "analyzeSos must reject temporary traces");
template <typename T>
concept AnalyzableAsLvalue = requires(T& t) { analysis::analyzeTrace(t); };
static_assert(AnalyzableAsLvalue<trace::Trace>,
              "lvalue traces must still be accepted");

}  // namespace
}  // namespace perfvar
