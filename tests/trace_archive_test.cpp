#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/pipeline.hpp"
#include "apps/paper_examples.hpp"
#include "sim/simulator.hpp"
#include "apps/cosmo_specs.hpp"
#include "trace/archive.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"
#include "lint/lint.hpp"

namespace perfvar::trace {
namespace {

std::string tempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/perfvar_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Trace sampleTrace() {
  TraceBuilder b(4);
  const auto f = b.defineFunction("solve", "APP");
  const auto mpi = b.defineFunction("MPI_Barrier", "MPI", Paradigm::MPI);
  const auto m = b.defineMetric("ctr");
  for (ProcessId p = 0; p < 4; ++p) {
    b.enter(p, p, f);
    b.metric(p, p + 1, m, 10.0 * p);
    b.enter(p, p + 2, mpi);
    b.leave(p, p + 6, mpi);
    b.leave(p, p + 9, f);
  }
  b.mpiSend(0, 20, 2, 5, 256);
  b.mpiRecv(2, 25, 0, 5, 256);
  b.mpiSend(1, 21, 3, 5, 128);
  return b.finish();
}

TEST(Archive, RoundTripsFullTrace) {
  const Trace original = sampleTrace();
  const std::string dir = tempDir("roundtrip");
  saveArchive(original, dir);

  const ArchiveInfo info = readArchiveInfo(dir);
  EXPECT_EQ(info.ranks, 4u);
  EXPECT_EQ(info.resolution, original.resolution);

  const Trace loaded = loadArchive(dir);
  ASSERT_EQ(loaded.processCount(), 4u);
  EXPECT_EQ(loaded.functions.size(), original.functions.size());
  EXPECT_EQ(loaded.metrics.size(), original.metrics.size());
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(loaded.processes[p].name, original.processes[p].name);
    ASSERT_EQ(loaded.processes[p].events.size(),
              original.processes[p].events.size());
    for (std::size_t i = 0; i < loaded.processes[p].events.size(); ++i) {
      EXPECT_EQ(loaded.processes[p].events[i],
                original.processes[p].events[i]);
    }
  }
  EXPECT_TRUE(lint::validateStructure(loaded).empty());
}

TEST(Archive, LayoutHasAnchorDefinitionsAndRankFiles) {
  const Trace original = sampleTrace();
  const std::string dir = tempDir("layout");
  saveArchive(original, dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/anchor.pva"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/definitions.pvt"));
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/rank" + std::to_string(r) +
                                        ".pvt"));
  }
}

TEST(Archive, SelectiveLoadRemapsPeers) {
  const Trace original = sampleTrace();
  const std::string dir = tempDir("selective");
  saveArchive(original, dir);

  // Load ranks 2 and 0 (in that order): the 0->2 message survives with
  // remapped ids; the 1->3 message's endpoints are absent entirely.
  const Trace subset = loadArchiveRanks(dir, {2, 0});
  ASSERT_EQ(subset.processCount(), 2u);
  EXPECT_EQ(subset.processes[0].name, "Rank 2");
  EXPECT_EQ(subset.processes[1].name, "Rank 0");
  bool sawSend = false;
  for (const auto& e : subset.processes[1].events) {
    if (e.kind == EventKind::MpiSend) {
      sawSend = true;
      EXPECT_EQ(e.ref, 0u);  // old rank 2 -> new process 0
    }
  }
  EXPECT_TRUE(sawSend);
  bool sawRecv = false;
  for (const auto& e : subset.processes[0].events) {
    if (e.kind == EventKind::MpiRecv) {
      sawRecv = true;
      EXPECT_EQ(e.ref, 1u);  // old rank 0 -> new process 1
    }
  }
  EXPECT_TRUE(sawRecv);
  EXPECT_TRUE(lint::validateStructure(subset).empty());
}

TEST(Archive, SelectiveLoadValidatesInput) {
  const Trace original = sampleTrace();
  const std::string dir = tempDir("badsel");
  saveArchive(original, dir);
  EXPECT_THROW(loadArchiveRanks(dir, {}), Error);
  EXPECT_THROW(loadArchiveRanks(dir, {9}), Error);
  EXPECT_THROW(loadArchiveRanks(dir, {1, 1}), Error);
}

TEST(Archive, MissingOrCorruptArchiveThrows) {
  EXPECT_THROW(loadArchive("/nonexistent/archive"), Error);
  const std::string dir = tempDir("corrupt");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/anchor.pva") << "NOTANARCHIVE 1\n";
  EXPECT_THROW(readArchiveInfo(dir), Error);
}

TEST(Archive, AnalysisOnArchiveSubsetMatchesFullTrace) {
  // The hotspot-guided workflow: detect the culprit on the full run, then
  // reload only the interesting ranks from the archive for deep analysis.
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 12;
  const auto scenario = apps::buildCosmoSpecs(cfg);
  const Trace full = sim::simulate(scenario.program, scenario.simOptions);
  const std::string dir = tempDir("workflow");
  saveArchive(full, dir);

  const auto fullResult = analysis::analyzeTrace(full);
  const ProcessId culprit = fullResult.variation.slowestProcess();

  const Trace subset = loadArchiveRanks(dir, {culprit});
  const analysis::SosResult sos =
      analysis::analyzeSos(subset, fullResult.segmentFunction);
  ASSERT_EQ(sos.processCount(), 1u);
  // Per-rank SOS values are identical to the full-trace analysis.
  const auto& fullSegs = fullResult.sos->process(culprit);
  const auto& subsetSegs = sos.process(0);
  ASSERT_EQ(subsetSegs.size(), fullSegs.size());
  for (std::size_t i = 0; i < subsetSegs.size(); ++i) {
    EXPECT_EQ(subsetSegs[i].sosTime, fullSegs[i].sosTime);
  }
}

}  // namespace
}  // namespace perfvar::trace
