#include <cmath>
#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>

#include "apps/paper_examples.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"
#include "vis/color.hpp"
#include "vis/heatmap.hpp"
#include "vis/image.hpp"
#include "vis/svg.hpp"
#include "vis/timeline.hpp"

namespace perfvar::vis {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// --- color -----------------------------------------------------------------

TEST(Color, HexFormatting) {
  EXPECT_EQ((Rgb{255, 0, 128}.hex()), "#ff0080");
  EXPECT_EQ((Rgb{0, 0, 0}.hex()), "#000000");
}

TEST(Color, LerpEndpointsAndMidpoint) {
  const Rgb a{0, 0, 0};
  const Rgb b{100, 200, 50};
  EXPECT_EQ(Rgb::lerp(a, b, 0.0), a);
  EXPECT_EQ(Rgb::lerp(a, b, 1.0), b);
  const Rgb mid = Rgb::lerp(a, b, 0.5);
  EXPECT_EQ(mid.r, 50);
  EXPECT_EQ(mid.g, 100);
  EXPECT_EQ(mid.b, 25);
}

TEST(Color, ColdHotEndpointsAreBlueAndRed) {
  const ColorMap map = ColorMap::coldHot();
  const Rgb cold = map.at(0.0);
  const Rgb hot = map.at(1.0);
  EXPECT_GT(cold.b, cold.r);  // blue end
  EXPECT_GT(hot.r, hot.b);    // red end
}

TEST(Color, MapClampsAndHandlesNaN) {
  const ColorMap map = ColorMap::coldHot();
  EXPECT_EQ(map.at(-5.0), map.at(0.0));
  EXPECT_EQ(map.at(5.0), map.at(1.0));
  EXPECT_EQ(map.at(kNaN), map.missing());
}

TEST(Color, ValueScaleLinear) {
  const ValueScale s = ValueScale::linear(10.0, 20.0);
  EXPECT_DOUBLE_EQ(s.normalize(10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.normalize(20.0), 1.0);
  EXPECT_DOUBLE_EQ(s.normalize(15.0), 0.5);
  EXPECT_DOUBLE_EQ(s.normalize(0.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(s.normalize(99.0), 1.0);  // clamped
  EXPECT_TRUE(std::isnan(s.normalize(kNaN)));
}

TEST(Color, ValueScaleDegenerateRange) {
  const ValueScale s = ValueScale::linear(5.0, 5.0);
  EXPECT_DOUBLE_EQ(s.normalize(5.0), 0.5);
}

TEST(Color, RobustScaleIgnoresExtremes) {
  std::vector<double> values(100, 1.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 + 0.01 * static_cast<double>(i);
  }
  values.push_back(1000.0);  // one extreme outlier
  const ValueScale robust = ValueScale::robust(values);
  EXPECT_LT(robust.high(), 10.0);  // outlier clipped
  const ValueScale naive = ValueScale::fromData(values);
  EXPECT_DOUBLE_EQ(naive.high(), 1000.0);
}

TEST(Color, FromDataSkipsNaN) {
  const std::vector<double> values = {kNaN, 2.0, 8.0, kNaN};
  const ValueScale s = ValueScale::fromData(values);
  EXPECT_DOUBLE_EQ(s.low(), 2.0);
  EXPECT_DOUBLE_EQ(s.high(), 8.0);
}

// --- image -------------------------------------------------------------------

TEST(Image, PixelAccessAndClipping) {
  Image img(10, 5);
  img.set(2, 3, Rgb{9, 8, 7});
  EXPECT_EQ(img.at(2, 3), (Rgb{9, 8, 7}));
  img.set(100, 100, Rgb{1, 1, 1});  // silently clipped
  EXPECT_THROW(img.at(100, 100), Error);
}

TEST(Image, FillRectClipsToBounds) {
  Image img(4, 4, Rgb{0, 0, 0});
  img.fillRect(2, 2, 10, 10, Rgb{255, 0, 0});
  EXPECT_EQ(img.at(3, 3), (Rgb{255, 0, 0}));
  EXPECT_EQ(img.at(1, 1), (Rgb{0, 0, 0}));
}

TEST(Image, PpmHeaderAndSize) {
  Image img(3, 2, Rgb{1, 2, 3});
  std::ostringstream os;
  img.writePpm(os);
  const std::string data = os.str();
  EXPECT_EQ(data.rfind("P6\n3 2\n255\n", 0), 0u);
  EXPECT_EQ(data.size(), 11u + 3u * 2u * 3u);
  EXPECT_EQ(static_cast<unsigned char>(data[11]), 1);
}

TEST(Image, BmpSizeMatchesHeader) {
  Image img(5, 3);  // row stride 15 -> padded to 16
  std::ostringstream os;
  img.writeBmp(os);
  const std::string data = os.str();
  EXPECT_EQ(data.size(), 54u + 16u * 3u);
  EXPECT_EQ(data[0], 'B');
  EXPECT_EQ(data[1], 'M');
}

TEST(Image, TextRendersSomething) {
  Image img(100, 12, Rgb{255, 255, 255});
  img.text(0, 0, "ABC 123", Rgb{0, 0, 0});
  std::size_t darkPixels = 0;
  for (std::size_t y = 0; y < img.height(); ++y) {
    for (std::size_t x = 0; x < img.width(); ++x) {
      if (img.at(x, y) == (Rgb{0, 0, 0})) {
        ++darkPixels;
      }
    }
  }
  EXPECT_GT(darkPixels, 20u);
  EXPECT_EQ(Image::textWidth("ABC"), 18u);
  EXPECT_EQ(Image::textHeight(2), 14u);
}

TEST(Image, RejectsZeroDimensions) {
  EXPECT_THROW(Image(0, 5), Error);
}

// --- svg ----------------------------------------------------------------------

TEST(Svg, ProducesWellFormedDocument) {
  SvgDocument svg(200, 100);
  svg.rect(10, 10, 50, 20, Rgb{255, 0, 0});
  svg.line(0, 0, 200, 100, Rgb{0, 0, 0}, 2.0);
  svg.text(5, 95, "hello <world> & \"friends\"", Rgb{0, 0, 255});
  const std::string doc = svg.finalize();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("#ff0000"), std::string::npos);
  EXPECT_NE(doc.find("&lt;world&gt; &amp; &quot;friends&quot;"),
            std::string::npos);
  EXPECT_EQ(doc.find("<world>"), std::string::npos);
}

TEST(Svg, EscapeCoversSpecials) {
  EXPECT_EQ(SvgDocument::escape("a<b>&\"c"), "a&lt;b&gt;&amp;&quot;c");
}

// --- heatmap --------------------------------------------------------------------

TEST(Heatmap, ImageDimensionsFollowMatrix) {
  const Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  HeatmapOptions opts;
  opts.legend = false;
  opts.cellWidth = 10;
  opts.cellHeight = 8;
  const Image img = renderHeatmapImage(m, opts);
  EXPECT_EQ(img.width(), 3u * 10u + 2u);
  EXPECT_EQ(img.height(), 2u * 8u + 2u);
}

TEST(Heatmap, HotCellIsRedderThanColdCell) {
  const Matrix m = {{0.0, 1.0}};
  HeatmapOptions opts;
  opts.legend = false;
  opts.robustScale = false;
  opts.cellWidth = 4;
  opts.cellHeight = 4;
  const Image img = renderHeatmapImage(m, opts);
  const Rgb cold = img.at(2, 2);
  const Rgb hot = img.at(6, 2);
  EXPECT_GT(cold.b, cold.r);
  EXPECT_GT(hot.r, hot.b);
}

TEST(Heatmap, ExplicitScaleOverridesData) {
  const Matrix m = {{5.0}};
  HeatmapOptions opts;
  opts.scaleLow = 0.0;
  opts.scaleHigh = 10.0;
  const ValueScale s = heatmapScale(m, opts);
  EXPECT_DOUBLE_EQ(s.normalize(5.0), 0.5);
}

TEST(Heatmap, AsciiRenderHasRowsAndScale) {
  const Matrix m = {{0.0, 1.0, 2.0}, {2.0, 1.0, 0.0}};
  HeatmapOptions opts;
  opts.title = "demo";
  opts.rowLabels = {"p0", "p1"};
  const std::string text = renderHeatmapAscii(m, opts, 10);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("p0"), std::string::npos);
  EXPECT_NE(text.find("scale:"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Heatmap, AnsiRenderContainsEscapes) {
  const Matrix m = {{0.0, 1.0}};
  HeatmapOptions opts;
  opts.legend = false;
  const std::string text = renderHeatmapAnsi(m, opts, 10);
  EXPECT_NE(text.find("\x1b[48;2;"), std::string::npos);
}

TEST(Heatmap, SvgRenderHandlesNaNAndRagged) {
  const Matrix m = {{1.0, kNaN, 3.0}, {2.0}};
  HeatmapOptions opts;
  const std::string doc = renderHeatmapSvg(m, opts).finalize();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  // Missing color (light gray) appears for the NaN / padded cells.
  EXPECT_NE(doc.find("#dcdcdc"), std::string::npos);
}

TEST(Heatmap, EmptyMatrixRejected) {
  EXPECT_THROW(renderHeatmapImage({}, HeatmapOptions{}), Error);
}

// --- timeline ---------------------------------------------------------------------

TEST(Timeline, BinsReflectDominantStackTop) {
  const trace::Trace tr = apps::buildFigure3Trace();
  TimelineOptions opts;
  opts.bins = 14;  // trace spans t = 0..14, one bin per tick
  const auto bins = timelineBins(tr, opts);
  ASSERT_EQ(bins.size(), 3u);
  const auto fCalc = *tr.functions.find("calc");
  const auto fMpi = *tr.functions.find("MPI");
  // Process 0 computes for 5 ticks, then waits 1 in iteration 0.
  EXPECT_EQ(bins[0][0], fCalc);
  EXPECT_EQ(bins[0][4], fCalc);
  EXPECT_EQ(bins[0][5], fMpi);
  // Process 2 computes only the first tick of iteration 0.
  EXPECT_EQ(bins[2][0], fCalc);
  EXPECT_EQ(bins[2][2], fMpi);
}

TEST(Timeline, WindowRestrictsRendering) {
  const trace::Trace tr = apps::buildFigure3Trace();
  TimelineOptions opts;
  opts.bins = 3;
  opts.windowStart = 6;  // iteration 1 only
  opts.windowEnd = 9;
  const auto bins = timelineBins(tr, opts);
  const auto fCalc = *tr.functions.find("calc");
  EXPECT_EQ(bins[0][0], fCalc);  // all processes compute 2 of 3 ticks
}

TEST(Timeline, FunctionColorsMpiIsRed) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const FunctionColors colors = FunctionColors::standard(tr);
  const Rgb mpi = colors.color(*tr.functions.find("MPI"));
  EXPECT_GT(mpi.r, 150);
  EXPECT_LT(mpi.b, 100);
  // Distinct application functions get distinct colors.
  EXPECT_NE(colors.color(*tr.functions.find("calc")),
            colors.color(*tr.functions.find("a")));
  EXPECT_FALSE(colors.legend().empty());
}

TEST(Timeline, ImageAndSvgRender) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const FunctionColors colors = FunctionColors::standard(tr);
  TimelineOptions opts;
  opts.bins = 50;
  opts.title = "fig3";
  const Image img = renderTimelineImage(tr, colors, opts);
  EXPECT_GT(img.width(), 50u);
  const std::string doc = renderTimelineSvg(tr, colors, opts).finalize();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
}

TEST(Timeline, ParadigmShareSumsToOneWhereBusy) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto shares = paradigmShareOverTime(tr, 7);
  for (std::size_t bin = 0; bin < 7; ++bin) {
    double total = 0.0;
    for (const auto& series : shares) {
      total += series[bin];
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "bin " << bin;
  }
  // MPI share in the first bin (t = 0..2): process 2 already waits.
  const auto& mpi = shares[static_cast<std::size_t>(trace::Paradigm::MPI)];
  EXPECT_GT(mpi[2], mpi[0]);
}

TEST(Timeline, MessageLinesAppearInSvg) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("MPI_Send", "MPI", trace::Paradigm::MPI);
  const auto g = b.defineFunction("MPI_Recv", "MPI", trace::Paradigm::MPI);
  b.enter(0, 0, f);
  b.mpiSend(0, 0, 1, 5, 100);
  b.leave(0, 10, f);
  b.enter(1, 0, g);
  b.mpiRecv(1, 50, 0, 5, 100);
  b.leave(1, 50, g);
  const trace::Trace tr = b.finish();
  TimelineOptions opts;
  opts.bins = 10;
  opts.legend = false;
  const std::string doc =
      renderTimelineSvg(tr, FunctionColors::standard(tr), opts).finalize();
  EXPECT_NE(doc.find("<line"), std::string::npos);
}

}  // namespace
}  // namespace perfvar::vis
