#include <cmath>
#include <gtest/gtest.h>

#include "analysis/baselines.hpp"
#include "analysis/correlate.hpp"
#include "analysis/overlay.hpp"
#include "analysis/sync.hpp"
#include "apps/paper_examples.hpp"
#include "trace/builder.hpp"

namespace perfvar::analysis {
namespace {

// --- SyncClassifier -----------------------------------------------------------

TEST(SyncClassifier, ParadigmPolicyFlagsAllMpi) {
  const SyncClassifier c;
  EXPECT_TRUE(c.isSync({"MPI_Isend", "MPI", trace::Paradigm::MPI}));
  EXPECT_TRUE(c.isSync({"MPI_Barrier", "MPI", trace::Paradigm::MPI}));
  EXPECT_FALSE(c.isSync({"solve", "APP", trace::Paradigm::Compute}));
  EXPECT_FALSE(c.isSync({"fwrite", "IO", trace::Paradigm::IO}));
}

TEST(SyncClassifier, ParadigmPolicyFlagsOnlyOpenMpSyncConstructs) {
  const SyncClassifier c;
  EXPECT_TRUE(c.isSync({"omp barrier", "OMP", trace::Paradigm::OpenMP}));
  EXPECT_TRUE(c.isSync({"omp critical", "OMP", trace::Paradigm::OpenMP}));
  EXPECT_FALSE(
      c.isSync({"omp parallel for", "OMP", trace::Paradigm::OpenMP}));
}

TEST(SyncClassifier, BlockingOnlyDistinguishesVariants) {
  EXPECT_TRUE(SyncClassifier::isBlockingMpiName("MPI_Wait"));
  EXPECT_TRUE(SyncClassifier::isBlockingMpiName("MPI_Waitall"));
  EXPECT_TRUE(SyncClassifier::isBlockingMpiName("MPI_Allreduce"));
  EXPECT_TRUE(SyncClassifier::isBlockingMpiName("MPI_Recv"));
  EXPECT_TRUE(SyncClassifier::isBlockingMpiName("MPI_Send"));
  EXPECT_FALSE(SyncClassifier::isBlockingMpiName("MPI_Isend"));
  EXPECT_FALSE(SyncClassifier::isBlockingMpiName("MPI_Irecv"));
  EXPECT_FALSE(SyncClassifier::isBlockingMpiName("MPI_Comm_rank"));
}

TEST(SyncClassifier, CustomPredicate) {
  const SyncClassifier c(
      [](const trace::FunctionDef& def) { return def.group == "SYNC"; });
  EXPECT_TRUE(c.isSync({"anything", "SYNC", trace::Paradigm::Compute}));
  EXPECT_FALSE(c.isSync({"MPI_Barrier", "MPI", trace::Paradigm::MPI}));
}

TEST(SyncClassifier, NoneNeverMatches) {
  const SyncClassifier c = SyncClassifier::none();
  EXPECT_FALSE(c.isSync({"MPI_Barrier", "MPI", trace::Paradigm::MPI}));
}

TEST(SyncClassifier, MaskMatchesPerFunctionDecision) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const SyncClassifier c;
  const auto mask = c.mask(tr);
  ASSERT_EQ(mask.size(), tr.functions.size());
  EXPECT_TRUE(mask[*tr.functions.find("MPI")]);
  EXPECT_FALSE(mask[*tr.functions.find("calc")]);
}

// --- MetricOverlay --------------------------------------------------------------

TEST(Overlay, StepValuesMatchSegments) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  const SosResult sos = analyzeSos(tr, fA);
  const MetricOverlay overlay = MetricOverlay::build(sos);
  // Iteration 0 spans [0,6): SOS of process 0 is 5.
  EXPECT_DOUBLE_EQ(overlay.at(0, 3), 5.0);
  EXPECT_DOUBLE_EQ(overlay.at(2, 3), 1.0);
  // Iteration 1 spans [6,9).
  EXPECT_DOUBLE_EQ(overlay.at(1, 7), 2.0);
  // After the last segment: NaN.
  EXPECT_TRUE(std::isnan(overlay.at(0, 999)));
}

TEST(Overlay, DurationAndSyncVariants) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  const SosResult sos = analyzeSos(tr, fA);
  const auto duration =
      MetricOverlay::build(sos, MetricOverlay::Value::DurationSeconds);
  const auto sync =
      MetricOverlay::build(sos, MetricOverlay::Value::SyncSeconds);
  EXPECT_DOUBLE_EQ(duration.at(0, 3), 6.0);
  EXPECT_DOUBLE_EQ(sync.at(2, 3), 5.0);  // process 2 waits 5 of 6
}

TEST(Overlay, SampleGridShapesAndValues) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  const SosResult sos = analyzeSos(tr, fA);
  const MetricOverlay overlay = MetricOverlay::build(sos);
  const auto grid = overlay.sampleGrid(14);
  ASSERT_EQ(grid.size(), 3u);
  ASSERT_EQ(grid[0].size(), 14u);
  EXPECT_DOUBLE_EQ(grid[0][0], 5.0);   // early bins in iteration 0
  EXPECT_DOUBLE_EQ(grid[0][13], 1.0);  // last bin in iteration 2
}

// --- correlation -----------------------------------------------------------------

trace::Trace traceWithCounter(double scale) {
  trace::TraceBuilder b(4);
  const auto f = b.defineFunction("step");
  const auto m = b.defineMetric("ctr");
  for (trace::ProcessId p = 0; p < 4; ++p) {
    trace::Timestamp t = 0;
    double cumulative = 0.0;
    for (int i = 0; i < 10; ++i) {
      const trace::Timestamp w = 100 + 50 * p;
      b.enter(p, t, f);
      cumulative += scale * static_cast<double>(w);
      b.metric(p, t + w / 2, m, cumulative);
      b.leave(p, t + w, f);
      t += w + 10;
    }
  }
  return b.finish();
}

TEST(Correlate, PerfectlyCorrelatedCounter) {
  const trace::Trace tr = traceWithCounter(3.0);
  const auto f = *tr.functions.find("step");
  const auto m = *tr.metrics.find("ctr");
  const SosResult sos = analyzeSos(tr, f);
  const MetricCorrelation c = correlateMetric(sos, m);
  EXPECT_NEAR(c.processPearson, 1.0, 1e-9);
  EXPECT_NEAR(c.processSpearman, 1.0, 1e-9);
  EXPECT_NEAR(c.segmentPearson, 1.0, 1e-9);
  EXPECT_TRUE(c.topProcessMatches);
  EXPECT_EQ(c.segmentPairs, 40u);
}

TEST(Correlate, AntiCorrelatedCounter) {
  const trace::Trace tr = traceWithCounter(-2.0);
  const auto f = *tr.functions.find("step");
  const auto m = *tr.metrics.find("ctr");
  const SosResult sos = analyzeSos(tr, f);
  const MetricCorrelation c = correlateMetric(sos, m);
  EXPECT_NEAR(c.processPearson, -1.0, 1e-9);
  EXPECT_FALSE(c.topProcessMatches);
}

TEST(Correlate, AllMetricsSkipsUnsampled) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("step");
  b.defineMetric("never_sampled");
  b.enter(0, 0, f);
  b.leave(0, 10, f);
  b.enter(1, 0, f);
  b.leave(1, 10, f);
  const trace::Trace tr = b.finish();
  const SosResult sos = analyzeSos(tr, f);
  EXPECT_TRUE(correlateAllMetrics(sos).empty());
}

TEST(Correlate, FormatMentionsMetricName) {
  const trace::Trace tr = traceWithCounter(1.0);
  const auto f = *tr.functions.find("step");
  const auto m = *tr.metrics.find("ctr");
  const SosResult sos = analyzeSos(tr, f);
  const std::string text = formatCorrelation(tr, correlateMetric(sos, m));
  EXPECT_NE(text.find("ctr"), std::string::npos);
  EXPECT_NE(text.find("Pearson"), std::string::npos);
}

// --- baselines -------------------------------------------------------------------

TEST(Baselines, SegmentDurationCannotLocalizeBarrierHiddenImbalance) {
  // Figure 3 situation: durations equal across ranks, SOS differs.
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  const auto duration = detectBySegmentDuration(tr, fA);
  const auto sosOutcome = detectBySos(tr, fA);
  // Total SOS: P0 = 8, P1 = 8, P2 = 7 -> baselines tie on durations
  // (14 everywhere), so the duration method has zero separation.
  EXPECT_EQ(duration.scores[0], duration.scores[1]);
  EXPECT_EQ(duration.scores[1], duration.scores[2]);
  EXPECT_NEAR(duration.topSeparation(), 0.0, 1e-12);
  EXPECT_EQ(sosOutcome.method, "sos-time");
  EXPECT_GT(sosOutcome.scores[0], sosOutcome.scores[2]);
}

TEST(Baselines, ProfileDetectorRanksByExclusiveComputeTime) {
  trace::TraceBuilder b(3);
  const auto f = b.defineFunction("work");
  const auto mpi = b.defineFunction("MPI_Barrier", "MPI",
                                    trace::Paradigm::MPI);
  for (trace::ProcessId p = 0; p < 3; ++p) {
    const trace::Timestamp w = 100 + 100 * p;
    b.enter(p, 0, f);
    b.leave(p, w, f);
    b.enter(p, w, mpi);
    b.leave(p, 300, mpi);  // equalizing barrier
  }
  const trace::Trace tr = b.finish();
  const auto outcome = detectByProfile(tr);
  EXPECT_EQ(outcome.method, "profile-only");
  EXPECT_EQ(outcome.rankedProcesses[0], 2u);
  EXPECT_EQ(outcome.rankedProcesses[2], 0u);
  EXPECT_FALSE(outcome.suspiciousIteration.has_value());
}

TEST(Baselines, RankOfAbsentProcess) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  const auto outcome = detectBySos(tr, fA);
  EXPECT_EQ(outcome.rankOf(99), outcome.rankedProcesses.size());
}

}  // namespace
}  // namespace perfvar::analysis
