/// Additional edge-case coverage across modules: varint boundaries,
/// degenerate charts, greedy partitioning, overlay variants, custom
/// classifiers in the dominant selection, and renderer geometry.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "analysis/dominant.hpp"
#include "analysis/overlay.hpp"
#include "analysis/pipeline.hpp"
#include "apps/paper_examples.hpp"
#include "balance/partition.hpp"
#include "sim/network.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"
#include "vis/chart.hpp"
#include "vis/heatmap.hpp"

namespace perfvar {
namespace {

// --- trace: extreme values through the binary format -------------------------

TEST(BinaryEdge, HugeTimestampsAndValuesRoundTrip) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  const auto m = b.defineMetric("m");
  const trace::Timestamp huge =
      std::numeric_limits<trace::Timestamp>::max() / 2;
  b.enter(0, 0, f);
  b.metric(0, 1, m, 1.7976931348623157e308);
  b.metric(0, 2, m, -0.0);
  b.metric(0, 3, m, 4.9e-324);  // denormal min
  b.leave(0, huge, f);
  const trace::Trace tr = b.finish();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  trace::writeBinary(tr, buf);
  const trace::Trace loaded = trace::readBinary(buf);
  EXPECT_EQ(loaded.processes[0].events.back().time, huge);
  EXPECT_EQ(loaded.processes[0].events[1].value, 1.7976931348623157e308);
  EXPECT_EQ(loaded.processes[0].events[3].value, 4.9e-324);
}

TEST(BinaryEdge, ManySmallProcessesRoundTrip) {
  trace::TraceBuilder b(64);
  const auto f = b.defineFunction("f");
  for (trace::ProcessId p = 0; p < 64; ++p) {
    b.enter(p, p, f);
    b.leave(p, p + 1, f);
  }
  const trace::Trace tr = b.finish();
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  trace::writeBinary(tr, buf);
  EXPECT_EQ(trace::readBinary(buf).processCount(), 64u);
}

// --- charts with explicit x values --------------------------------------------

TEST(ChartEdge, ExplicitXsAreRespected) {
  vis::Series s;
  s.label = "sparse";
  s.xs = {0.0, 10.0, 100.0};
  s.ys = {1.0, 2.0, 3.0};
  vis::ChartOptions opts;
  const std::string doc = vis::renderLineChart({s}, opts).finalize();
  EXPECT_NE(doc.find("<path"), std::string::npos);
}

TEST(ChartEdge, ConstantSeriesDoesNotDivideByZero) {
  vis::Series s;
  s.ys = {5.0, 5.0, 5.0};
  const std::string doc =
      vis::renderLineChart({s}, vis::ChartOptions{}).finalize();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
}

TEST(ChartEdge, AllNaNSeriesRejected) {
  vis::Series s;
  s.ys = {std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(vis::renderLineChart({s}, vis::ChartOptions{}), Error);
}

// --- partitioning edge cases -----------------------------------------------------

TEST(PartitionEdge, AllZeroWeights) {
  const std::vector<double> w(10, 0.0);
  const auto p = balance::partitionOptimal(w, 3);
  EXPECT_EQ(p.parts(), 3u);
  EXPECT_DOUBLE_EQ(p.bottleneck(w), 0.0);
  EXPECT_DOUBLE_EQ(balance::partitionImbalance(p, w), 0.0);
}

TEST(PartitionEdge, SingleGiantItemDominates) {
  const std::vector<double> w = {1.0, 1.0, 100.0, 1.0};
  const auto p = balance::partitionOptimal(w, 3);
  EXPECT_NEAR(p.bottleneck(w), 100.0, 1e-6);
}

TEST(PartitionEdge, GreedyHandlesTrailingZeros) {
  const std::vector<double> w = {5.0, 5.0, 0.0, 0.0, 0.0};
  const auto p = balance::partitionGreedy(w, 2);
  EXPECT_EQ(p.parts(), 2u);
  EXPECT_LE(p.bottleneck(w), 10.0);
}

// --- network model monotonicity -----------------------------------------------

TEST(NetworkEdge, CostsAreMonotoneInRanks) {
  const sim::NetworkModel net;
  for (std::size_t r = 2; r < 1000; r *= 2) {
    EXPECT_LE(net.barrierCost(r), net.barrierCost(r * 2));
    EXPECT_LE(net.allreduceCost(r, 64), net.allreduceCost(r * 2, 64));
  }
}

// --- dominant selection with custom classifier ----------------------------------

TEST(DominantEdge, CustomClassifierExcludesByGroup) {
  trace::TraceBuilder b(1);
  const auto noisy = b.defineFunction("tracer_overhead", "INSTRUMENTATION");
  const auto real = b.defineFunction("solver");
  trace::Timestamp t = 0;
  for (int i = 0; i < 5; ++i) {
    b.enter(0, t, noisy);
    b.leave(0, t + 100, noisy);
    b.enter(0, t + 100, real);
    b.leave(0, t + 150, real);
    t += 150;
  }
  const trace::Trace tr = b.finish();
  analysis::DominantOptions opts;
  opts.syncClassifier =
      analysis::SyncClassifier([](const trace::FunctionDef& def) {
        return def.group == "INSTRUMENTATION";
      });
  const auto sel = analysis::selectDominantFunction(tr, opts);
  ASSERT_TRUE(sel.hasDominant());
  EXPECT_EQ(sel.dominant().function, real);
}

// --- SosResult metric matrix ------------------------------------------------------

TEST(SosEdge, MetricMatrixMatchesDeltas) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("step");
  const auto m = b.defineMetric("ctr");
  for (trace::ProcessId p = 0; p < 2; ++p) {
    double cumulative = 0.0;
    for (int i = 0; i < 3; ++i) {
      const auto t0 = static_cast<trace::Timestamp>(i) * 100;
      b.enter(p, t0, f);
      cumulative += 10.0 * (p + 1);
      b.metric(p, t0 + 50, m, cumulative);
      b.leave(p, t0 + 90, f);
    }
  }
  const trace::Trace tr = b.finish();
  const auto sos = analysis::analyzeSos(tr, f);
  const auto matrix = sos.metricMatrix(m);
  EXPECT_DOUBLE_EQ(matrix[0][0], 10.0);
  EXPECT_DOUBLE_EQ(matrix[1][2], 20.0);
  EXPECT_THROW(sos.metricMatrix(99), Error);
}

// --- overlay out-of-range process ---------------------------------------------------

TEST(OverlayEdge, InvalidProcessRejected) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto sos = analysis::analyzeSos(tr, *tr.functions.find("a"));
  const auto overlay = analysis::MetricOverlay::build(sos);
  EXPECT_THROW(overlay.at(99, 0), Error);
}

// --- heatmap row label stride -------------------------------------------------------

TEST(HeatmapEdge, ExplicitRowLabelStride) {
  vis::Matrix m(20, std::vector<double>(5, 1.0));
  vis::HeatmapOptions opts;
  for (int i = 0; i < 20; ++i) {
    opts.rowLabels.push_back("P" + std::to_string(i));
  }
  opts.rowLabelStride = 5;
  const std::string doc = vis::renderHeatmapSvg(m, opts).finalize();
  EXPECT_NE(doc.find(">P0<"), std::string::npos);
  EXPECT_NE(doc.find(">P15<"), std::string::npos);
  EXPECT_EQ(doc.find(">P3<"), std::string::npos);  // skipped by stride
}

// --- variation options -----------------------------------------------------------------

TEST(VariationEdge, ThresholdControlsHotspotCount) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("step");
  for (std::size_t i = 0; i < 30; ++i) {
    for (trace::ProcessId p = 0; p < 2; ++p) {
      const auto t0 = static_cast<trace::Timestamp>(i) * 1000;
      const trace::Timestamp w =
          (p == 1 && i == 10) ? 500 : 100 + (i * 3 + p) % 7;
      b.enter(p, t0, f);
      b.leave(p, t0 + w, f);
    }
  }
  const trace::Trace tr = b.finish();
  const auto sos = analysis::analyzeSos(tr, f);
  analysis::VariationOptions loose;
  loose.outlierThreshold = 2.0;
  analysis::VariationOptions strict;
  strict.outlierThreshold = 1000.0;
  EXPECT_GT(analysis::analyzeVariation(sos, loose).hotspots.size(),
            analysis::analyzeVariation(sos, strict).hotspots.size());
  EXPECT_TRUE(analysis::analyzeVariation(sos, strict).hotspots.empty());
}

// --- pipeline candidates format round -----------------------------------------------

TEST(PipelineEdge, FormatAnalysisIsSelfContained) {
  static const trace::Trace tr = apps::buildFigure2Trace();
  const auto result = analysis::analyzeTrace(tr);
  const std::string text = analysis::formatAnalysis(tr, result);
  EXPECT_NE(text.find("dominant-function selection"), std::string::npos);
  EXPECT_NE(text.find("runtime-variation analysis"), std::string::npos);
}

}  // namespace
}  // namespace perfvar
