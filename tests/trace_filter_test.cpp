#include <gtest/gtest.h>

#include "analysis/sos.hpp"
#include "apps/paper_examples.hpp"
#include "trace/builder.hpp"
#include "trace/filter.hpp"
#include "trace/replay.hpp"
#include "util/error.hpp"
#include "lint/lint.hpp"

namespace perfvar::trace {
namespace {

TEST(SliceTime, ProducesValidTraceWithBoundaryFrames) {
  // fig3: a-invocations at [0,6), [6,9), [9,14). Slice to iteration 1.
  const Trace tr = apps::buildFigure3Trace();
  const Trace sliced = sliceTime(tr, 6, 9);
  EXPECT_TRUE(lint::validateStructure(sliced).empty());
  EXPECT_EQ(sliced.startTime(), 6u);
  EXPECT_EQ(sliced.endTime(), 9u);
  // main is re-opened at the boundary and closed at the end on every rank.
  const auto fMain = *sliced.functions.find("main");
  for (const auto& proc : sliced.processes) {
    EXPECT_EQ(proc.events.front().ref, fMain);
    EXPECT_EQ(proc.events.front().time, 6u);
    EXPECT_EQ(proc.events.back().ref, fMain);
    EXPECT_EQ(proc.events.back().time, 9u);
  }
}

TEST(SliceTime, SlicedIterationAnalyzesStandalone) {
  const Trace tr = apps::buildFigure3Trace();
  const Trace sliced = sliceTime(tr, 6, 9);
  const auto fA = *sliced.functions.find("a");
  const analysis::SosResult sos = analysis::analyzeSos(sliced, fA);
  for (ProcessId p = 0; p < 3; ++p) {
    ASSERT_EQ(sos.process(p).size(), 1u);
    EXPECT_EQ(sos.process(p)[0].sosTime, 2u);  // iteration 1 calc = 2
  }
}

TEST(SliceTime, MidFrameCutSynthesizesEnterAndLeave) {
  TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  const auto g = b.defineFunction("g");
  b.enter(0, 0, f);
  b.enter(0, 10, g);
  b.leave(0, 30, g);
  b.leave(0, 40, f);
  const Trace sliced = sliceTime(b.finish(), 15, 25);
  EXPECT_TRUE(lint::validateStructure(sliced).empty());
  const auto frames = collectFrames(sliced.processes[0]);
  ASSERT_EQ(frames.size(), 2u);
  // g closed first (leave order): [15,25) clipped.
  EXPECT_EQ(frames[0].function, g);
  EXPECT_EQ(frames[0].enterTime, 15u);
  EXPECT_EQ(frames[0].leaveTime, 25u);
  EXPECT_EQ(frames[1].function, f);
  EXPECT_EQ(frames[1].inclusive(), 10u);
}

TEST(SliceTime, CarriesMetricBaselineAcrossTheBoundary) {
  TraceBuilder b(1);
  const auto f = b.defineFunction("f");
  const auto m = b.defineMetric("ctr");
  b.enter(0, 0, f);
  b.metric(0, 5, m, 100.0);   // before the window
  b.metric(0, 20, m, 130.0);  // inside the window
  b.leave(0, 40, f);
  const Trace sliced = sliceTime(b.finish(), 10, 30);
  // The slice carries a synthetic sample of value 100 at t=10, so the
  // in-window delta stays 30 (not 130).
  const auto fId = *sliced.functions.find("f");
  const analysis::SosResult sos = analysis::analyzeSos(sliced, fId);
  EXPECT_DOUBLE_EQ(sos.process(0)[0].metricDelta[m], 30.0);
}

TEST(SliceTime, EmptyWindowRejected) {
  const Trace tr = apps::buildFigure3Trace();
  EXPECT_THROW(sliceTime(tr, 9, 9), Error);
  EXPECT_THROW(sliceTime(tr, 9, 6), Error);
}

TEST(SliceTime, WindowBeyondTraceYieldsOnlySynthetics) {
  const Trace tr = apps::buildFigure1Trace();
  const Trace sliced = sliceTime(tr, 100, 200);
  EXPECT_TRUE(lint::validateStructure(sliced).empty());
  EXPECT_TRUE(sliced.processes[0].events.empty());  // everything closed
}

TEST(FilterFunctions, DropsFramesAndSplicesChildren) {
  TraceBuilder b(1);
  const auto a = b.defineFunction("a");
  const auto wrapper = b.defineFunction("wrapper");
  const auto leaf = b.defineFunction("leaf");
  b.enter(0, 0, a);
  b.enter(0, 10, wrapper);
  b.enter(0, 20, leaf);
  b.leave(0, 30, leaf);
  b.leave(0, 40, wrapper);
  b.leave(0, 50, a);
  const Trace filtered = filterFunctions(
      b.finish(), [&](FunctionId f) { return f == wrapper; });
  EXPECT_TRUE(lint::validateStructure(filtered).empty());
  const auto frames = collectFrames(filtered.processes[0]);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].function, leaf);
  EXPECT_EQ(frames[0].parent, a);  // child spliced into grandparent
  // a's exclusive time absorbs the dropped wrapper's exclusive time.
  EXPECT_EQ(frames[1].function, a);
  EXPECT_EQ(frames[1].exclusive(), 40u);
}

TEST(FilterFunctions, KeepsMetricsAndMessages) {
  TraceBuilder b(2);
  const auto f = b.defineFunction("f");
  const auto m = b.defineMetric("m");
  b.enter(0, 0, f);
  b.metric(0, 1, m, 7.0);
  b.mpiSend(0, 2, 1, 3, 64);
  b.leave(0, 10, f);
  b.enter(1, 0, f);
  b.leave(1, 5, f);
  const Trace filtered =
      filterFunctions(b.finish(), [&](FunctionId fn) { return fn == f; });
  EXPECT_TRUE(lint::validateStructure(filtered).empty());
  EXPECT_EQ(filtered.processes[0].events.size(), 2u);  // metric + send
}

TEST(SelectProcesses, RenumbersAndRemapsMessages) {
  TraceBuilder b(4);
  const auto f = b.defineFunction("f");
  for (ProcessId p = 0; p < 4; ++p) {
    b.enter(p, 0, f);
    b.leave(p, 10, f);
  }
  b.mpiSend(1, 11, 3, 0, 32);  // survives: both 1 and 3 are kept
  b.mpiSend(3, 12, 0, 0, 32);  // dropped: 0 is not kept
  const Trace selected = selectProcesses(b.finish(), {3, 1});
  EXPECT_EQ(selected.processCount(), 2u);
  EXPECT_EQ(selected.processes[0].name, "Rank 3");
  EXPECT_EQ(selected.processes[1].name, "Rank 1");
  EXPECT_TRUE(lint::validateStructure(selected).empty());
  // Rank 1 (now process 1) sends to rank 3 (now process 0).
  bool sawSend = false;
  for (const auto& e : selected.processes[1].events) {
    if (e.kind == EventKind::MpiSend) {
      sawSend = true;
      EXPECT_EQ(e.ref, 0u);
    }
  }
  EXPECT_TRUE(sawSend);
  // The send to removed rank 0 is gone.
  for (const auto& e : selected.processes[0].events) {
    EXPECT_NE(e.kind, EventKind::MpiSend);
  }
}

TEST(SelectProcesses, RejectsBadSelections) {
  const Trace tr = apps::buildFigure3Trace();
  EXPECT_THROW(selectProcesses(tr, {}), Error);
  EXPECT_THROW(selectProcesses(tr, {0, 0}), Error);
  EXPECT_THROW(selectProcesses(tr, {99}), Error);
}

}  // namespace
}  // namespace perfvar::trace
