/// Robustness: corrupted or truncated inputs must produce perfvar::Error,
/// never crashes or silent misreads. Randomized byte-level corruption of
/// PVTF images (both on-disk layouts) and line-level corruption of PVTX
/// texts.

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "apps/paper_examples.hpp"
#include "trace/binary_io.hpp"
#include "trace/text_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "lint/lint.hpp"

namespace perfvar::trace {
namespace {

std::string binaryImage(const Trace& tr,
                        std::uint32_t version = kBinaryFormatVersion) {
  std::ostringstream os;
  BinaryWriteOptions options;
  options.version = version;
  writeBinary(tr, os, options);
  return os.str();
}

void expectDecodeThrows(const std::string& bytes, std::size_t threads = 1) {
  BinaryReadOptions options;
  options.threads = threads;
  EXPECT_THROW(readBinaryBuffer(bytes.data(), bytes.size(), options), Error);
}

/// Sweeps run against both format versions: (seed, version).
class CorruptionSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint32_t>> {
protected:
  std::uint64_t seed() const { return std::get<0>(GetParam()); }
  std::uint32_t version() const { return std::get<1>(GetParam()); }
};

TEST_P(CorruptionSweep, SingleByteFlipsNeverCrashAndNeverPassSilently) {
  const Trace original = apps::buildFigure3Trace();
  const std::string clean = binaryImage(original, version());
  Rng rng(seed());
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = clean;
    const auto pos = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(clean.size()) - 1));
    const auto mask = static_cast<char>(rng.uniformInt(1, 255));
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ mask);
    std::istringstream is(corrupted);
    try {
      const Trace loaded = readBinary(is);
      // A flip in a payload byte can only be accepted if the checksum was
      // flipped to match - impossible for a single flip - or the flip hit
      // a byte whose change is structurally invisible. That never happens
      // for PVTF: in v1 every payload byte feeds the whole-file checksum,
      // and in v2 every byte is covered by exactly one of the header,
      // definitions or per-block hashes (a flip of a stored hash itself
      // mismatches the recomputed one). Reaching here means the reader
      // failed to detect corruption.
      FAIL() << "corruption at byte " << pos << " (mask "
             << static_cast<int>(mask) << ") was not detected";
    } catch (const Error&) {
      // expected
    }
  }
}

TEST_P(CorruptionSweep, RandomTruncationsAlwaysThrow) {
  const Trace original = apps::buildFigure2Trace();
  const std::string clean = binaryImage(original, version());
  Rng rng(seed() * 31);
  for (int trial = 0; trial < 40; ++trial) {
    const auto cut = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(clean.size()) - 1));
    std::istringstream is(clean.substr(0, cut));
    EXPECT_THROW(readBinary(is), Error) << "cut at " << cut;
    expectDecodeThrows(clean.substr(0, cut));
  }
}

TEST_P(CorruptionSweep, CorruptedImagesFailCleanlyUnderThreadedDecode) {
  // The parallel block decode must propagate the first worker error as a
  // perfvar::Error on the calling thread - never a crash, a hang, or a
  // partially filled trace handed back to the caller.
  const Trace original = apps::buildFigure3Trace();
  const std::string clean = binaryImage(original, version());
  Rng rng(seed() * 131);
  for (int trial = 0; trial < 30; ++trial) {
    std::string corrupted = clean;
    const auto pos = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(clean.size()) - 1));
    corrupted[pos] = static_cast<char>(
        corrupted[pos] ^ static_cast<char>(rng.uniformInt(1, 255)));
    expectDecodeThrows(corrupted, 4);
  }
  for (int trial = 0; trial < 10; ++trial) {
    const auto cut = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(clean.size()) - 1));
    expectDecodeThrows(clean.substr(0, cut), 4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CorruptionSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(kBinaryFormatV1, kBinaryFormatV2)),
    [](const auto& p) {
      return "seed" + std::to_string(std::get<0>(p.param)) + "v" +
             std::to_string(std::get<1>(p.param));
    });

TEST(CorruptionTargeted, FlippedChecksumFieldsAreRejected) {
  // Hit the stored hash fields of the v2 layout directly: the prologue
  // header hash (offset 8), the definitions hash (offset 40) and each
  // block-table checksum (last 8 bytes of a 32-byte entry from offset 48).
  const Trace original = apps::buildFigure3Trace();
  const std::string clean = binaryImage(original, kBinaryFormatV2);
  const std::size_t processCount = original.processCount();
  std::vector<std::size_t> targets = {8, 40};
  for (std::size_t p = 0; p < processCount; ++p) {
    targets.push_back(48 + 32 * p + 24);
  }
  for (const std::size_t pos : targets) {
    ASSERT_LT(pos, clean.size());
    std::string corrupted = clean;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x01);
    std::istringstream is(corrupted);
    EXPECT_THROW(readBinary(is), Error) << "hash field at " << pos;
  }
  // The v1 trailing whole-file checksum.
  const std::string v1 = binaryImage(original, kBinaryFormatV1);
  std::string corrupted = v1;
  corrupted[v1.size() - 1] = static_cast<char>(corrupted[v1.size() - 1] ^ 1);
  std::istringstream is(corrupted);
  EXPECT_THROW(readBinary(is), Error);
}

TEST(CorruptionTargeted, GarbageBytesAlwaysThrow) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    std::string garbage(static_cast<std::size_t>(rng.uniformInt(0, 200)),
                        '\0');
    for (auto& c : garbage) {
      c = static_cast<char>(rng.uniformInt(0, 255));
    }
    std::istringstream is(garbage);
    EXPECT_THROW(readBinary(is), Error);
    expectDecodeThrows(garbage);
  }
}

TEST(CorruptionTargeted, GarbageWithValidPrologueAlwaysThrows) {
  // Valid magic + version, random everything after: exercises the header
  // and table bounds checks rather than the magic check.
  Rng rng(99);
  for (const std::uint32_t version : {kBinaryFormatV1, kBinaryFormatV2}) {
    for (int trial = 0; trial < 40; ++trial) {
      std::string bytes = "PVTF";
      bytes.push_back(static_cast<char>(version));
      bytes.append(3, '\0');
      const auto n = static_cast<std::size_t>(rng.uniformInt(0, 300));
      for (std::size_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<char>(rng.uniformInt(0, 255)));
      }
      std::istringstream is(bytes);
      EXPECT_THROW(readBinary(is), Error);
      expectDecodeThrows(bytes);
      expectDecodeThrows(bytes, 4);
    }
  }
}

TEST(PvtxRobustness, LineDeletionIsDetectedOrHarmless) {
  // Removing a random line must either throw or still yield a trace that
  // fails structural validation - it must never silently produce a
  // different-but-valid trace with the same event count.
  const Trace original = apps::buildFigure3Trace();
  const std::string clean = toText(original);
  std::vector<std::string> lines;
  std::istringstream is(clean);
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  for (std::size_t skip = 0; skip < lines.size(); ++skip) {
    std::string mutated;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i != skip) {
        mutated += lines[i];
        mutated += '\n';
      }
    }
    try {
      const Trace loaded = fromText(mutated);
      const bool valid = lint::validateStructure(loaded).empty();
      const bool sameShape = loaded.eventCount() == original.eventCount();
      EXPECT_FALSE(valid && sameShape)
          << "deleting line " << skip << " went unnoticed: " << lines[skip];
    } catch (const Error&) {
      // expected for structural lines
    }
  }
}

}  // namespace
}  // namespace perfvar::trace
