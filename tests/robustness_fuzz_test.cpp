/// Robustness: corrupted or truncated inputs must produce perfvar::Error,
/// never crashes or silent misreads. Randomized byte-level corruption of
/// PVTF images and line-level corruption of PVTX texts.

#include <gtest/gtest.h>

#include <sstream>

#include "apps/paper_examples.hpp"
#include "trace/binary_io.hpp"
#include "trace/text_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace perfvar::trace {
namespace {

std::string binaryImage(const Trace& tr) {
  std::ostringstream os;
  writeBinary(tr, os);
  return os.str();
}

class CorruptionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionSweep, SingleByteFlipsNeverCrashAndNeverPassSilently) {
  const Trace original = apps::buildFigure3Trace();
  const std::string clean = binaryImage(original);
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = clean;
    const auto pos = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(clean.size()) - 1));
    const auto mask = static_cast<char>(rng.uniformInt(1, 255));
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ mask);
    std::istringstream is(corrupted);
    try {
      const Trace loaded = readBinary(is);
      // A flip in a payload byte can only be accepted if the checksum was
      // flipped to match - impossible for a single flip - or the flip hit
      // a byte whose change is structurally invisible. That never happens
      // for PVTF: every payload byte feeds the checksum, so reaching here
      // means the reader failed to detect corruption.
      FAIL() << "corruption at byte " << pos << " (mask "
             << static_cast<int>(mask) << ") was not detected";
    } catch (const Error&) {
      // expected
    }
  }
}

TEST_P(CorruptionSweep, RandomTruncationsAlwaysThrow) {
  const Trace original = apps::buildFigure2Trace();
  const std::string clean = binaryImage(original);
  Rng rng(GetParam() * 31);
  for (int trial = 0; trial < 40; ++trial) {
    const auto cut = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(clean.size()) - 1));
    std::istringstream is(clean.substr(0, cut));
    EXPECT_THROW(readBinary(is), Error) << "cut at " << cut;
  }
}

TEST_P(CorruptionSweep, GarbageBytesAlwaysThrow) {
  Rng rng(GetParam() * 77);
  for (int trial = 0; trial < 20; ++trial) {
    std::string garbage(static_cast<std::size_t>(rng.uniformInt(0, 200)),
                        '\0');
    for (auto& c : garbage) {
      c = static_cast<char>(rng.uniformInt(0, 255));
    }
    std::istringstream is(garbage);
    EXPECT_THROW(readBinary(is), Error);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionSweep, ::testing::Values(1, 2, 3));

TEST(PvtxRobustness, LineDeletionIsDetectedOrHarmless) {
  // Removing a random line must either throw or still yield a trace that
  // fails structural validation - it must never silently produce a
  // different-but-valid trace with the same event count.
  const Trace original = apps::buildFigure3Trace();
  const std::string clean = toText(original);
  std::vector<std::string> lines;
  std::istringstream is(clean);
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  for (std::size_t skip = 0; skip < lines.size(); ++skip) {
    std::string mutated;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i != skip) {
        mutated += lines[i];
        mutated += '\n';
      }
    }
    try {
      const Trace loaded = fromText(mutated);
      const bool valid = validate(loaded).empty();
      const bool sameShape = loaded.eventCount() == original.eventCount();
      EXPECT_FALSE(valid && sameShape)
          << "deleting line " << skip << " went unnoticed: " << lines[skip];
    } catch (const Error&) {
      // expected for structural lines
    }
  }
}

}  // namespace
}  // namespace perfvar::trace
