#include <gtest/gtest.h>

#include "analysis/dominant.hpp"
#include "apps/paper_examples.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"

namespace perfvar::analysis {
namespace {

// --- Figure 2: the paper's worked selection example ------------------------

TEST(Dominant, Figure2SelectsFunctionA) {
  const trace::Trace tr = apps::buildFigure2Trace();
  const DominantSelection sel = selectDominantFunction(tr);
  ASSERT_TRUE(sel.hasDominant());
  EXPECT_EQ(tr.functions.name(sel.dominant().function), "a");
  EXPECT_EQ(sel.dominant().invocations, 9u);
  EXPECT_EQ(sel.dominant().aggregatedInclusive, 36u);
}

TEST(Dominant, Figure2RejectsMainForInvocationCount) {
  const trace::Trace tr = apps::buildFigure2Trace();
  const DominantSelection sel = selectDominantFunction(tr);
  ASSERT_FALSE(sel.rejectedTopLevel.empty());
  EXPECT_EQ(tr.functions.name(sel.rejectedTopLevel[0].function), "main");
  EXPECT_EQ(sel.rejectedTopLevel[0].aggregatedInclusive, 54u);
  EXPECT_EQ(sel.rejectedTopLevel[0].invocations, 3u);  // == p, < 2p
}

TEST(Dominant, Figure2CandidateRankingIsByInclusiveTime) {
  const trace::Trace tr = apps::buildFigure2Trace();
  const DominantSelection sel = selectDominantFunction(tr);
  ASSERT_GE(sel.candidates.size(), 2u);
  for (std::size_t i = 1; i < sel.candidates.size(); ++i) {
    EXPECT_GE(sel.candidates[i - 1].aggregatedInclusive,
              sel.candidates[i].aggregatedInclusive);
  }
  // b and c qualify too (9 invocations each) but rank below a.
  EXPECT_EQ(tr.functions.name(sel.candidates[0].function), "a");
}

// --- threshold semantics -----------------------------------------------------

TEST(Dominant, MultiplierOneAcceptsMain) {
  const trace::Trace tr = apps::buildFigure2Trace();
  DominantOptions opts;
  opts.invocationMultiplier = 1;
  const DominantSelection sel = selectDominantFunction(tr, opts);
  ASSERT_TRUE(sel.hasDominant());
  // With threshold p, main (3 invocations on 3 processes) qualifies and
  // wins by inclusive time - the degenerate selection the paper avoids.
  EXPECT_EQ(tr.functions.name(sel.dominant().function), "main");
}

TEST(Dominant, HugeMultiplierLeavesNothing) {
  const trace::Trace tr = apps::buildFigure2Trace();
  DominantOptions opts;
  opts.invocationMultiplier = 100;
  const DominantSelection sel = selectDominantFunction(tr, opts);
  EXPECT_FALSE(sel.hasDominant());
  EXPECT_THROW(sel.dominant(), Error);
}

TEST(Dominant, ZeroMultiplierRejected) {
  const trace::Trace tr = apps::buildFigure2Trace();
  DominantOptions opts;
  opts.invocationMultiplier = 0;
  EXPECT_THROW(selectDominantFunction(tr, opts), Error);
}

class MultiplierSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiplierSweep, CandidatesAllMeetTheThreshold) {
  const trace::Trace tr = apps::buildFigure2Trace();
  DominantOptions opts;
  opts.invocationMultiplier = GetParam();
  const DominantSelection sel = selectDominantFunction(tr, opts);
  const std::uint64_t required = GetParam() * tr.processCount();
  for (const auto& c : sel.candidates) {
    EXPECT_GE(c.invocations, required);
  }
}

INSTANTIATE_TEST_SUITE_P(Multipliers, MultiplierSweep,
                         ::testing::Values(1, 2, 3, 4));

// --- synchronization exclusion ----------------------------------------------

TEST(Dominant, ExcludesMpiFunctionsByDefault) {
  trace::TraceBuilder b(2);
  const auto fMpi =
      b.defineFunction("MPI_Waitall", "MPI", trace::Paradigm::MPI);
  const auto fApp = b.defineFunction("step", "APP");
  for (trace::ProcessId p = 0; p < 2; ++p) {
    trace::Timestamp t = 0;
    for (int i = 0; i < 4; ++i) {
      b.enter(p, t, fApp);
      b.enter(p, t + 1, fMpi);
      b.leave(p, t + 90, fMpi);  // MPI dominates the inclusive time
      b.leave(p, t + 100, fApp);
      t += 100;
    }
  }
  const trace::Trace tr = b.finish();
  const DominantSelection sel = selectDominantFunction(tr);
  ASSERT_TRUE(sel.hasDominant());
  EXPECT_EQ(sel.dominant().function, fApp);

  DominantOptions noExclusion;
  noExclusion.excludeSynchronization = false;
  const DominantSelection raw = selectDominantFunction(tr, noExclusion);
  EXPECT_EQ(raw.dominant().function, fApp);  // step still wins (wrapper)
  // But MPI_Waitall now appears among the candidates.
  bool mpiPresent = false;
  for (const auto& c : raw.candidates) {
    mpiPresent |= c.function == fMpi;
  }
  EXPECT_TRUE(mpiPresent);
}

TEST(Dominant, FormatSelectionMentionsDominantAndRejected) {
  const trace::Trace tr = apps::buildFigure2Trace();
  const DominantSelection sel = selectDominantFunction(tr);
  const std::string text = formatSelection(tr, sel);
  EXPECT_NE(text.find("[dominant] a"), std::string::npos);
  EXPECT_NE(text.find("main"), std::string::npos);
  EXPECT_NE(text.find("rejected"), std::string::npos);
}

TEST(Dominant, TieBreaksDeterministically) {
  trace::TraceBuilder b(1);
  const auto f1 = b.defineFunction("f1");
  const auto f2 = b.defineFunction("f2");
  trace::Timestamp t = 0;
  for (int i = 0; i < 3; ++i) {
    b.enter(0, t, f1);
    b.leave(0, t + 10, f1);
    b.enter(0, t + 10, f2);
    b.leave(0, t + 20, f2);
    t += 20;
  }
  const trace::Trace tr = b.finish();
  const DominantSelection sel = selectDominantFunction(tr);
  ASSERT_TRUE(sel.hasDominant());
  EXPECT_EQ(sel.dominant().function, f1);  // equal time -> lower id wins
}

}  // namespace
}  // namespace perfvar::analysis
