#include <gtest/gtest.h>

#include "analysis/streaming.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/paper_examples.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace perfvar::analysis {
namespace {

/// Collect all segments the streaming analyzer emits, grouped by process.
std::vector<std::vector<SegmentAnalysis>> streamAll(
    const trace::Trace& tr, trace::FunctionId f,
    const StreamingOptions& opts = {}) {
  StreamingSos analyzer(tr, f, opts);
  std::vector<std::vector<SegmentAnalysis>> out(tr.processCount());
  analyzer.setSegmentCallback([&](const SegmentAnalysis& seg) {
    out[seg.segment.process].push_back(seg);
  });
  StreamingSos::replay(tr, analyzer);
  return out;
}

void expectEqualResults(const std::vector<std::vector<SegmentAnalysis>>& a,
                        const SosResult& b) {
  ASSERT_EQ(a.size(), b.processCount());
  for (std::size_t p = 0; p < a.size(); ++p) {
    const auto& batch = b.process(static_cast<trace::ProcessId>(p));
    ASSERT_EQ(a[p].size(), batch.size()) << "process " << p;
    for (std::size_t i = 0; i < a[p].size(); ++i) {
      EXPECT_EQ(a[p][i].segment.enter, batch[i].segment.enter);
      EXPECT_EQ(a[p][i].segment.leave, batch[i].segment.leave);
      EXPECT_EQ(a[p][i].sosTime, batch[i].sosTime);
      EXPECT_EQ(a[p][i].syncTime, batch[i].syncTime);
      EXPECT_EQ(a[p][i].metricDelta, batch[i].metricDelta);
      EXPECT_EQ(a[p][i].paradigmTime, batch[i].paradigmTime);
    }
  }
}

TEST(Streaming, MatchesBatchAnalysisOnFigure3) {
  const trace::Trace tr = apps::buildFigure3Trace();
  const auto fA = *tr.functions.find("a");
  expectEqualResults(streamAll(tr, fA), analyzeSos(tr, fA));
}

TEST(Streaming, MatchesBatchAnalysisOnSimulatedRun) {
  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 15;
  const auto scenario = apps::buildCosmoSpecs(cfg);
  const trace::Trace tr = sim::simulate(scenario.program, scenario.simOptions);
  expectEqualResults(streamAll(tr, scenario.iterationFunction),
                     analyzeSos(tr, scenario.iterationFunction));
}

TEST(Streaming, AlertsFireOnAnInjectedOutlierWhileRunning) {
  trace::TraceBuilder b(2);
  const auto fStep = b.defineFunction("step");
  for (std::size_t i = 0; i < 100; ++i) {
    for (trace::ProcessId p = 0; p < 2; ++p) {
      const trace::Timestamp t0 = static_cast<trace::Timestamp>(i) * 1000;
      // One 10x segment on process 1, iteration 70; mild jitter elsewhere.
      const trace::Timestamp w =
          (p == 1 && i == 70) ? 900 : 90 + (p * 5 + i * 3) % 7;
      b.enter(p, t0, fStep);
      b.leave(p, t0 + w, fStep);
    }
  }
  const trace::Trace tr = b.finish();

  StreamingOptions opts;
  opts.alertThreshold = 6.0;
  StreamingSos analyzer(tr, *tr.functions.find("step"), opts);
  std::vector<StreamingAlert> alerts;
  analyzer.setAlertCallback(
      [&](const StreamingAlert& alert) { alerts.push_back(alert); });
  StreamingSos::replay(tr, analyzer);

  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].segment.segment.process, 1u);
  EXPECT_EQ(alerts[0].segment.segment.index, 70u);
  EXPECT_GT(alerts[0].robustZ, 6.0);
  EXPECT_EQ(analyzer.segmentsCompleted(), 200u);
}

TEST(Streaming, NoAlertsDuringWarmup) {
  trace::TraceBuilder b(1);
  const auto fStep = b.defineFunction("step");
  // The very first segment is huge - but falls inside the warm-up window.
  b.enter(0, 0, fStep);
  b.leave(0, 100000, fStep);
  for (std::size_t i = 1; i < 10; ++i) {
    b.enter(0, 100000 + i * 100, fStep);
    b.leave(0, 100000 + i * 100 + 50, fStep);
  }
  const trace::Trace tr = b.finish();
  StreamingOptions opts;
  opts.warmupSegments = 32;
  StreamingSos analyzer(tr, fStep, opts);
  bool alerted = false;
  analyzer.setAlertCallback([&](const StreamingAlert&) { alerted = true; });
  StreamingSos::replay(tr, analyzer);
  EXPECT_FALSE(alerted);
}

TEST(Streaming, RejectsMalformedStreams) {
  const trace::Trace defs = apps::buildFigure1Trace();
  StreamingSos analyzer(defs, 0);
  EXPECT_THROW(analyzer.onEvent(0, trace::Event::leave(5, 0)), Error);
  StreamingSos unfinished(defs, 0);
  unfinished.onEvent(0, trace::Event::enter(0, 0));
  EXPECT_THROW(unfinished.finish(), Error);
}

// Property: streaming == batch on random traces (different interleavings
// cannot change per-process results).
class StreamingEquivalenceSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingEquivalenceSweep, StreamEqualsBatch) {
  Rng rng(GetParam());
  const auto nProcs = static_cast<std::size_t>(rng.uniformInt(1, 5));
  trace::TraceBuilder b(nProcs);
  const auto fStep = b.defineFunction("step");
  const auto fWork = b.defineFunction("work");
  const auto fMpi =
      b.defineFunction("MPI_Allreduce", "MPI", trace::Paradigm::MPI);
  const auto m = b.defineMetric("ctr");
  for (trace::ProcessId p = 0; p < nProcs; ++p) {
    trace::Timestamp t = static_cast<trace::Timestamp>(rng.uniformInt(0, 50));
    double cumulative = 0.0;
    const auto iters = rng.uniformInt(1, 15);
    for (std::int64_t i = 0; i < iters; ++i) {
      b.enter(p, t, fStep);
      const auto w = static_cast<trace::Timestamp>(rng.uniformInt(1, 40));
      b.enter(p, t, fWork);
      cumulative += rng.uniform(0.0, 100.0);
      b.metric(p, t + w / 2, m, cumulative);
      b.leave(p, t + w, fWork);
      const auto s = static_cast<trace::Timestamp>(rng.uniformInt(0, 20));
      b.enter(p, t + w, fMpi);
      b.leave(p, t + w + s, fMpi);
      b.leave(p, t + w + s, fStep);
      t += w + s + static_cast<trace::Timestamp>(rng.uniformInt(0, 9));
    }
  }
  const trace::Trace tr = b.finish();
  expectEqualResults(streamAll(tr, fStep), analyzeSos(tr, fStep));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingEquivalenceSweep,
                         ::testing::Values(7, 14, 21, 28, 35, 42));

}  // namespace
}  // namespace perfvar::analysis
