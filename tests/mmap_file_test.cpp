/// Edge coverage of util::FileView, the whole-file view behind the
/// zero-copy trace loaders: mapped and buffered paths must agree on the
/// bytes, zero-length files must yield a valid empty view, missing files
/// must raise a classified IoFailure naming the path, and moves must
/// transfer ownership of the mapping.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "util/error.hpp"
#include "util/mmap_file.hpp"

namespace perfvar::util {
namespace {

/// RAII temp file with the given contents.
class TempFile {
public:
  explicit TempFile(const std::string& name, const std::string& contents)
      : path_(name) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

private:
  std::string path_;
};

std::string bytes(const FileView& view) {
  return std::string(reinterpret_cast<const char*>(view.data()),
                     view.size());
}

TEST(FileView, MappedAndBufferedPathsSeeTheSameBytes) {
  std::string contents;
  for (int i = 0; i < 10000; ++i) {
    contents.push_back(static_cast<char>(i * 37));
  }
  const TempFile f("mmap_file_test_data.bin", contents);

  const FileView mapped = FileView::open(f.path(), /*allowMmap=*/true);
  const FileView buffered = FileView::open(f.path(), /*allowMmap=*/false);
  EXPECT_FALSE(buffered.mapped());
  EXPECT_EQ(bytes(mapped), contents);
  EXPECT_EQ(bytes(buffered), contents);
}

TEST(FileView, ZeroLengthFileYieldsAnEmptyView) {
  const TempFile f("mmap_file_test_empty.bin", "");
  for (const bool allowMmap : {true, false}) {
    const FileView view = FileView::open(f.path(), allowMmap);
    EXPECT_EQ(view.size(), 0u);
  }
}

TEST(FileView, MissingFileThrowsIoFailureWithThePath) {
  const std::string missing = "mmap_file_test_definitely_missing.bin";
  for (const bool allowMmap : {true, false}) {
    try {
      FileView::open(missing, allowMmap);
      FAIL() << "open() of a missing file must throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::IoFailure);
      EXPECT_EQ(e.path(), missing);
    }
  }
}

TEST(FileView, BufferedViewSurvivesTheFileShrinkingAfterOpen) {
  // The buffered path snapshots the file at open time: later shrinking
  // (a writer truncating the trace mid-session) must not disturb an
  // already-open view.
  const std::string contents(4096, 'x');
  const TempFile f("mmap_file_test_shrink.bin", contents);
  const FileView view = FileView::open(f.path(), /*allowMmap=*/false);
  {
    std::ofstream shrink(f.path(), std::ios::binary | std::ios::trunc);
  }
  EXPECT_EQ(bytes(view), contents);
}

TEST(FileView, MoveTransfersTheView) {
  const std::string contents = "move me";
  const TempFile f("mmap_file_test_move.bin", contents);

  FileView a = FileView::open(f.path());
  const bool wasMapped = a.mapped();
  FileView b = std::move(a);
  EXPECT_EQ(bytes(b), contents);
  EXPECT_EQ(b.mapped(), wasMapped);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.size(), 0u);

  FileView c;
  c = std::move(b);
  EXPECT_EQ(bytes(c), contents);
}

TEST(FileView, DefaultConstructedViewIsEmpty) {
  const FileView view;
  EXPECT_EQ(view.data(), nullptr);
  EXPECT_EQ(view.size(), 0u);
  EXPECT_FALSE(view.mapped());
}

}  // namespace
}  // namespace perfvar::util
