#include <algorithm>
#include <gtest/gtest.h>

#include "apps/cloud_field.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "apps/paper_examples.hpp"
#include "apps/wrf.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "lint/lint.hpp"

namespace perfvar::apps {
namespace {

// --- cloud field ---------------------------------------------------------------

TEST(CloudField, PeaksAtTheCloudCenter) {
  Cloud cloud;
  cloud.x0 = 5.5;  // center of block (5, 3)
  cloud.y0 = 3.5;
  cloud.sigma0 = 1.0;
  cloud.amp0 = 2.0;
  const CloudField field(10, 10, {cloud});
  const double peak = field.mass(5, 3, 0.0);
  EXPECT_NEAR(peak, 2.0, 1e-9);
  for (std::uint32_t y = 0; y < 10; ++y) {
    for (std::uint32_t x = 0; x < 10; ++x) {
      EXPECT_LE(field.mass(x, y, 0.0), peak + 1e-12);
      EXPECT_GE(field.mass(x, y, 0.0), 0.0);
    }
  }
}

TEST(CloudField, MovesWithVelocity) {
  Cloud cloud;
  cloud.x0 = 1.5;
  cloud.y0 = 1.5;
  cloud.vx = 1.0;
  cloud.sigma0 = 0.8;
  cloud.amp0 = 1.0;
  const CloudField field(8, 8, {cloud});
  EXPECT_GT(field.mass(1, 1, 0.0), field.mass(5, 1, 0.0));
  EXPECT_GT(field.mass(5, 1, 4.0), field.mass(1, 1, 4.0));
}

TEST(CloudField, GrowsWithAmplitudeGrowth) {
  Cloud cloud;
  cloud.x0 = 2.5;
  cloud.y0 = 2.5;
  cloud.sigma0 = 1.0;
  cloud.amp0 = 0.1;
  cloud.ampGrowth = 0.1;
  const CloudField field(5, 5, {cloud});
  EXPECT_LT(field.totalMass(0.0), field.totalMass(10.0));
}

TEST(CloudField, BlockMassesMatchPointQueries) {
  Cloud cloud;
  cloud.x0 = 1.0;
  cloud.y0 = 2.0;
  cloud.sigma0 = 1.5;
  cloud.amp0 = 1.0;
  const CloudField field(4, 3, {cloud});
  const auto masses = field.blockMasses(0.0);
  ASSERT_EQ(masses.size(), 12u);
  for (std::uint32_t y = 0; y < 3; ++y) {
    for (std::uint32_t x = 0; x < 4; ++x) {
      EXPECT_DOUBLE_EQ(masses[y * 4 + x], field.mass(x, y, 0.0));
    }
  }
}

// --- paper examples --------------------------------------------------------------

TEST(PaperExamples, AllTracesAreValid) {
  const trace::Trace fig1 = buildFigure1Trace();
  const trace::Trace fig2 = buildFigure2Trace();
  const trace::Trace fig3 = buildFigure3Trace();
  EXPECT_TRUE(lint::validateStructure(fig1).empty());
  EXPECT_TRUE(lint::validateStructure(fig2).empty());
  EXPECT_TRUE(lint::validateStructure(fig3).empty());
}

TEST(PaperExamples, Figure3NarrativeNumbers) {
  const auto& calc = figure3CalcTimes();
  // First iteration duration 6 (max calc 5 + 1 sync), middle duration 3.
  double max0 = 0.0;
  double max1 = 0.0;
  for (int p = 0; p < 3; ++p) {
    max0 = std::max(max0, calc[0][p]);
    max1 = std::max(max1, calc[1][p]);
  }
  EXPECT_EQ(max0 + 1.0, 6.0);
  EXPECT_EQ(max1 + 1.0, 3.0);
  EXPECT_EQ(calc[0][0], 5.0);
  EXPECT_EQ(calc[0][2], 1.0);
}

// --- COSMO-SPECS scenario -----------------------------------------------------------

TEST(CosmoSpecs, DefaultGroundTruthMatchesThePaper) {
  const CosmoSpecsScenario scenario = buildCosmoSpecs();
  EXPECT_EQ(scenario.program.ranks, 100u);
  EXPECT_EQ(scenario.hottestRank, 54u);
  std::vector<std::uint32_t> sorted = scenario.hotRanks;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint32_t>{44, 45, 54, 55, 64, 65}));
}

TEST(CosmoSpecs, ProducesAValidTraceWithGrowingImbalance) {
  CosmoSpecsConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 12;
  cfg.noiseSigma = 0.0;
  const CosmoSpecsScenario scenario = buildCosmoSpecs(cfg);
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);
  EXPECT_TRUE(lint::validateStructure(tr).empty());
  EXPECT_EQ(tr.processCount(), 16u);
  // Iteration function appears timesteps times per rank.
  std::size_t iterFrames = 0;
  for (const auto& proc : tr.processes) {
    for (const auto& e : proc.events) {
      if (e.kind == trace::EventKind::Enter &&
          e.ref == scenario.iterationFunction) {
        ++iterFrames;
      }
    }
  }
  EXPECT_EQ(iterFrames, 16u * 12u);
}

TEST(CosmoSpecs, CloudFieldIsStationaryAndGrowing) {
  const CosmoSpecsConfig cfg;
  const CloudField field = cosmoSpecsCloudField(cfg);
  const double early = field.mass(4, 5, 1.0);
  const double late = field.mass(4, 5, 50.0);
  EXPECT_LT(early, late);
  // The hottest block at the end is rank 54's block (4, 5).
  const auto masses = field.blockMasses(59.0);
  const auto maxIt = std::max_element(masses.begin(), masses.end());
  EXPECT_EQ(static_cast<std::size_t>(maxIt - masses.begin()), 54u);
}

// --- COSMO-SPECS+FD4 scenario ---------------------------------------------------------

TEST(CosmoSpecsFd4, BalancerKeepsLoadsEven) {
  CosmoSpecsFd4Config cfg;
  cfg.ranks = 16;
  cfg.blocksX = 16;
  cfg.blocksY = 16;
  cfg.iterations = 8;
  cfg.interruptRank = 3;
  cfg.interruptIteration = 4;
  const CosmoSpecsFd4Scenario scenario = buildCosmoSpecsFd4(cfg);
  ASSERT_EQ(scenario.balancedImbalance.size(), 8u);
  for (const double imbalance : scenario.balancedImbalance) {
    EXPECT_LT(imbalance, 0.25) << "post-balancing imbalance too high";
  }
  // The moving cloud forces at least one actual migration.
  std::size_t migrated = 0;
  for (const auto m : scenario.migratedBlocks) {
    migrated += m;
  }
  EXPECT_GT(migrated, 0u);
}

TEST(CosmoSpecsFd4, GroundTruthIndicesAreConsistent) {
  CosmoSpecsFd4Config cfg;
  cfg.ranks = 8;
  cfg.blocksX = 8;
  cfg.blocksY = 8;
  cfg.iterations = 6;
  cfg.innerTimesteps = 4;
  cfg.interruptRank = 2;
  cfg.interruptIteration = 3;
  cfg.interruptInnerStep = 1;
  const CosmoSpecsFd4Scenario scenario = buildCosmoSpecsFd4(cfg);
  EXPECT_EQ(scenario.culpritRank, 2u);
  EXPECT_EQ(scenario.culpritIteration, 3u);
  EXPECT_EQ(scenario.culpritFineSegment, 3u * 4u + 1u);
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);
  EXPECT_TRUE(lint::validateStructure(tr).empty());
}

TEST(CosmoSpecsFd4, RejectsOutOfRangePositions) {
  CosmoSpecsFd4Config cfg;
  cfg.ranks = 8;
  cfg.blocksX = 8;
  cfg.blocksY = 8;
  cfg.interruptRank = 99;
  EXPECT_THROW(buildCosmoSpecsFd4(cfg), Error);
}

// --- WRF scenario ------------------------------------------------------------------------

TEST(Wrf, ProducesValidTraceWithFpeCounter) {
  WrfConfig cfg;
  cfg.gridX = 4;
  cfg.gridY = 4;
  cfg.timesteps = 8;
  cfg.fpeRank = 9;
  cfg.noiseSigma = 0.0;
  const WrfScenario scenario = buildWrf(cfg);
  const trace::Trace tr = sim::simulate(scenario.program, scenario.simOptions);
  EXPECT_TRUE(lint::validateStructure(tr).empty());
  const auto fpe = tr.metrics.find(scenario.fpExceptionMetricName);
  ASSERT_TRUE(fpe.has_value());
  // Rank 9 accumulates far more exceptions than any other rank.
  std::vector<double> lastValue(tr.processCount(), 0.0);
  for (trace::ProcessId p = 0; p < tr.processes.size(); ++p) {
    for (const auto& e : tr.processes[p].events) {
      if (e.kind == trace::EventKind::Metric && e.ref == *fpe) {
        lastValue[p] = e.value;
      }
    }
  }
  for (trace::ProcessId p = 0; p < tr.processes.size(); ++p) {
    if (p != 9) {
      EXPECT_LT(lastValue[p], lastValue[9] / 100.0) << "rank " << p;
    }
  }
}

TEST(Wrf, InitPhasePrecedesIterations) {
  WrfConfig cfg;
  cfg.gridX = 2;
  cfg.gridY = 2;
  cfg.timesteps = 3;
  cfg.fpeRank = 1;
  const WrfScenario scenario = buildWrf(cfg);
  const trace::Trace tr = sim::simulate(scenario.program, scenario.simOptions);
  // First enter on rank 0 is the init function; wrf_timestep comes later.
  const auto fInit = *tr.functions.find("wrf_init");
  EXPECT_EQ(tr.processes[0].events.front().ref, fInit);
  EXPECT_EQ(tr.processes[0].events.front().kind, trace::EventKind::Enter);
}

}  // namespace
}  // namespace perfvar::apps
