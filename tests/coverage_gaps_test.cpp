/// Coverage for smaller API surfaces not exercised elsewhere: exclusive
/// profile ordering, color overrides, detection-outcome helpers, trace
/// time bounds, and golden PVTX texts of the paper examples.

#include <gtest/gtest.h>

#include "analysis/baselines.hpp"
#include "analysis/cluster.hpp"
#include "analysis/patterns.hpp"
#include "apps/paper_examples.hpp"
#include "profile/profile.hpp"
#include "trace/builder.hpp"
#include "trace/text_io.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "vis/timeline.hpp"

namespace perfvar {
namespace {

TEST(ProfileGaps, ByExclusiveTimeOrdersDifferentlyThanInclusive) {
  // wrapper has huge inclusive but tiny exclusive time; leaf the reverse.
  trace::TraceBuilder b(1);
  const auto wrapper = b.defineFunction("wrapper");
  const auto leaf = b.defineFunction("leaf");
  for (int i = 0; i < 3; ++i) {
    const auto t0 = static_cast<trace::Timestamp>(i) * 100;
    b.enter(0, t0, wrapper);
    b.enter(0, t0 + 1, leaf);
    b.leave(0, t0 + 99, leaf);
    b.leave(0, t0 + 100, wrapper);
  }
  const trace::Trace tr = b.finish();
  const auto profile = profile::FlatProfile::build(tr);
  EXPECT_EQ(profile.byInclusiveTime().front().function, wrapper);
  EXPECT_EQ(profile.byExclusiveTime().front().function, leaf);
}

TEST(ProfileGaps, ExclusiveMaskSizeValidated) {
  const trace::Trace tr = apps::buildFigure1Trace();
  const auto profile = profile::FlatProfile::build(tr);
  EXPECT_THROW(profile.exclusiveTimePerProcess(std::vector<bool>(99, true)),
               Error);
}

TEST(TraceGaps, TimeBoundsWithEmptyLeadingProcess) {
  trace::TraceBuilder b(3);
  const auto f = b.defineFunction("f");
  // Process 0 stays empty; 1 and 2 have events.
  b.enter(1, 50, f);
  b.leave(1, 60, f);
  b.enter(2, 10, f);
  b.leave(2, 90, f);
  const trace::Trace tr = b.finish();
  EXPECT_EQ(tr.startTime(), 10u);
  EXPECT_EQ(tr.endTime(), 90u);
  EXPECT_DOUBLE_EQ(tr.durationSeconds(), 80e-9);
}

TEST(TraceGaps, SegmentContains) {
  analysis::Segment s;
  s.enter = 10;
  s.leave = 20;
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(19));
  EXPECT_FALSE(s.contains(20));
  EXPECT_FALSE(s.contains(9));
}

TEST(TraceGaps, BuilderAccessorsValidate) {
  trace::TraceBuilder b(2);
  const auto f = b.defineFunction("f");
  b.enter(0, 0, f);
  EXPECT_EQ(b.eventCount(0), 1u);
  EXPECT_EQ(b.eventCount(1), 0u);
  EXPECT_THROW(b.eventCount(5), Error);
  EXPECT_THROW(b.setProcessName(5, "x"), Error);
  b.leave(0, 1, f);
}

TEST(VisGaps, SetGroupColorOverridesPaletteAndLegend) {
  trace::TraceBuilder b(1);
  const auto f = b.defineFunction("specs", "SPECS");
  b.enter(0, 0, f);
  b.leave(0, 10, f);
  const trace::Trace tr = b.finish();
  auto colors = vis::FunctionColors::standard(tr);
  colors.setGroupColor("SPECS", vis::Rgb{1, 2, 3});
  EXPECT_EQ(colors.color(f), (vis::Rgb{1, 2, 3}));
  bool legendUpdated = false;
  for (const auto& [label, color] : colors.legend()) {
    if (label == "SPECS") {
      legendUpdated = color == vis::Rgb{1, 2, 3};
    }
  }
  EXPECT_TRUE(legendUpdated);
}

TEST(AnalysisGaps, TopSeparationDegenerate) {
  analysis::DetectionOutcome outcome;
  outcome.scores = {5.0, 1.0};
  EXPECT_EQ(outcome.topSeparation(), 0.0);  // too few scores
}

TEST(AnalysisGaps, PatternTotalValidatesKind) {
  analysis::PatternReport report;
  EXPECT_THROW(report.patternTotal(analysis::PatternKind::LateSender), Error);
  EXPECT_THROW(report.worstVictim(), Error);
}

TEST(AnalysisGaps, ClusterAccessorsValidate) {
  analysis::ClusterResult result;
  EXPECT_THROW(result.slowestCluster(), Error);
}

TEST(FormatGaps, TableAndSparklineEdges) {
  EXPECT_TRUE(fmt::table({}).empty());
  EXPECT_EQ(fmt::sparkline(std::vector<double>{42.0}).size(), 3u);  // 1 glyph
}

// Golden texts: the paper-example traces must stay byte-stable (they are
// the ground truth of the fig1-fig3 reproductions).
TEST(Golden, Figure1PvtxText) {
  const std::string expected =
      "PVTX 1\n"
      "resolution 1\n"
      "function 0 \"foo\" \"\" COMPUTE\n"
      "function 1 \"bar\" \"\" COMPUTE\n"
      "process 0 \"Rank 0\"\n"
      "E 0 0\n"
      "E 2 1\n"
      "L 4 1\n"
      "L 6 0\n";
  EXPECT_EQ(trace::toText(apps::buildFigure1Trace()), expected);
}

TEST(Golden, Figure3FirstIterationOfProcess0) {
  const std::string text = trace::toText(apps::buildFigure3Trace());
  // Process 0's first iteration: a [0,6], calc [0,5], MPI [5,6].
  EXPECT_NE(text.find("process 0 \"Rank 0\"\n"
                      "E 0 0\n"   // main
                      "E 0 1\n"   // a
                      "E 0 2\n"   // calc
                      "L 5 2\n"
                      "E 5 3\n"   // MPI
                      "L 6 3\n"
                      "L 6 1\n"),
            std::string::npos);
}

}  // namespace
}  // namespace perfvar
