/// Concurrency stress over the analysis server: N client threads issue
/// interleaved load/analyze/append/evict sessions against one server,
/// and every per-client transcript must be byte-identical to the one the
/// same script produces against a fresh server with no other clients.
/// Any torn frame, shared-cache race, or cross-session bleed shows up as
/// a transcript diff (or as a TSan report — this test carries the
/// `parallel` label and runs under the TSan CI job).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/client.hpp"
#include "server/server.hpp"
#include "trace/binary_io.hpp"
#include "trace/builder.hpp"
#include "trace/filter.hpp"
#include "util/socket.hpp"

namespace perfvar::server {
namespace {

/// Shared fixture trace: 4 ranks, 60 iterations, one slow outlier.
trace::Trace fixtureTrace() {
  trace::TraceBuilder b(4);
  const auto fStep = b.defineFunction("step");
  const auto fSync = b.defineFunction("MPI_Barrier", "MPI",
                                      trace::Paradigm::MPI);
  for (std::size_t i = 0; i < 60; ++i) {
    for (trace::ProcessId p = 0; p < 4; ++p) {
      const auto t0 = static_cast<trace::Timestamp>(i) * 1000 + p;
      const trace::Timestamp w =
          (p == 2 && i == 40) ? 800 : 90 + (p * 7 + i * 3) % 11;
      b.enter(p, t0, fStep);
      b.enter(p, t0 + 2, fSync);
      b.leave(p, t0 + 4 + (p + i) % 3, fSync);
      b.leave(p, t0 + w, fStep);
    }
  }
  return b.finish();
}

std::string imageOf(const trace::Trace& tr) {
  std::ostringstream os;
  trace::writeBinary(tr, os);
  return os.str();
}

const std::string& fixturePath() {
  static const std::string path = [] {
    const std::string p = "server_concurrency_test.pvt";
    trace::saveBinaryFile(fixtureTrace(), p);
    return p;
  }();
  return path;
}

/// One transcript line per final frame; alerts are folded in where they
/// arrive so their count and order are part of the comparison.
void record(std::vector<std::string>& transcript, const char* step,
            const ClientResponse& r) {
  for (const std::string& alert : r.alerts) {
    transcript.push_back(std::string(step) + " alert: " + alert);
  }
  transcript.push_back(std::string(step) + " " +
                       frameTypeName(r.type) + ": " + r.payload);
}

/// The per-client script. Shared state is exercised read-only (everyone
/// loads/analyzes the same engine entry); mutation happens under private
/// names so the expected responses don't depend on interleaving.
std::vector<std::string> runScript(Client& client, std::size_t clientIndex) {
  const std::string live = "live_" + std::to_string(clientIndex);
  std::vector<std::string> t;
  record(t, "load", client.load("shared", fixturePath()));
  record(t, "analyze-shared", client.analyze("shared"));
  record(t, "export-shared", client.exportReport("shared json"));
  record(t, "lint-shared", client.lint("shared"));
  // No `stats shared` here: the shared engine's cache-hit counters count
  // every client's queries, so they are interleaving-dependent by design.
  record(t, "open", client.open(live, "step threshold 6.0 warmup 8"));
  record(t, "subscribe", client.subscribe(live));
  for (const trace::Trace& chunk : trace::splitByTime(fixtureTrace(), 3)) {
    record(t, "append", client.append(live, imageOf(chunk)));
  }
  record(t, "analyze-live", client.analyze(live));
  record(t, "stats-live", client.stats(live));
  record(t, "evict", client.evict(live));
  record(t, "analyze-evicted", client.analyze(live));
  return t;
}

Client connectTo(Server& server) {
  auto [serverEnd, clientEnd] = util::socketPair();
  server.serveConnection(std::move(serverEnd));
  return Client{std::move(clientEnd)};
}

/// Serial reference: each client's script against its own quiet server.
std::vector<std::string> serialTranscript(std::size_t clientIndex) {
  Server server;
  Client client = connectTo(server);
  return runScript(client, clientIndex);
}

void expectConcurrentMatchesSerial(std::size_t threads) {
  Server server;
  std::vector<std::vector<std::string>> got(threads);
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers.emplace_back([&server, &got, i] {
        Client client = connectTo(server);
        got[i] = runScript(client, i);
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
  }
  for (std::size_t i = 0; i < threads; ++i) {
    const std::vector<std::string> want = serialTranscript(i);
    ASSERT_EQ(got[i].size(), want.size()) << "client " << i;
    for (std::size_t line = 0; line < want.size(); ++line) {
      EXPECT_EQ(got[i][line], want[line])
          << "client " << i << " transcript line " << line;
    }
  }
}

TEST(ServerConcurrency, OneClientMatchesSerial) {
  expectConcurrentMatchesSerial(1);
}

TEST(ServerConcurrency, TwoClientsMatchSerial) {
  expectConcurrentMatchesSerial(2);
}

TEST(ServerConcurrency, EightClientsMatchSerial) {
  expectConcurrentMatchesSerial(8);
}

/// Hammer one shared live entry from many threads at once. The append
/// path enforces monotone time order, so whichever chunks lose the race
/// and arrive behind the stream head are rejected with a structured
/// Error — the invariants are that every append resolves to Ok or that
/// rejection (never a torn frame, never a dead server), the append
/// counter matches the accepted count exactly, and the entry stays
/// fully serviceable afterwards.
TEST(ServerConcurrency, SharedLiveEntrySurvivesConcurrentAppends) {
  const trace::Trace tr = fixtureTrace();
  const auto chunks = trace::splitByTime(tr, 8);
  Server server;
  Client setup = connectTo(server);
  ASSERT_TRUE(setup.open("shared_live", "step threshold 6.0").ok());

  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> rejected{0};
  std::vector<std::thread> workers;
  workers.reserve(chunks.size());
  for (const trace::Trace& chunk : chunks) {
    workers.emplace_back([&server, &accepted, &rejected,
                          image = imageOf(chunk)] {
      Client client = connectTo(server);
      const ClientResponse r = client.append("shared_live", image);
      if (r.ok()) {
        ++accepted;
      } else {
        ++rejected;
        EXPECT_EQ(r.type, FrameType::Error);
        EXPECT_NE(r.payload.find("precede the live stream"),
                  std::string::npos)
            << r.payload;
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  EXPECT_EQ(accepted + rejected, chunks.size());
  EXPECT_GE(accepted.load(), 1u);  // the race has at least one winner
  const ClientResponse stats = setup.stats("shared_live");
  ASSERT_EQ(stats.type, FrameType::Data);
  EXPECT_NE(stats.payload.find("appends: " + std::to_string(accepted)),
            std::string::npos)
      << stats.payload;
  // Rejections were atomic: the surviving stream is analyzable and the
  // entry can still be evicted, i.e. nothing was left half-updated.
  EXPECT_EQ(setup.analyze("shared_live").type, FrameType::Data);
  EXPECT_EQ(setup.evict("shared_live").type, FrameType::Ok);
}

TEST(ServerConcurrency, ShutdownWithBusyClientsNeverHangs) {
  Server server;
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < 4; ++i) {
    workers.emplace_back([&server, i] {
      try {
        Client client = connectTo(server);
        for (int round = 0; round < 50; ++round) {
          const ClientResponse r = client.load(
              "loop_" + std::to_string(i), fixturePath());
          if (r.type != FrameType::Ok) {
            break;  // server is gone; that's the point
          }
        }
      } catch (const std::exception&) {
        // Connection torn down mid-request is the expected outcome for
        // whoever loses the race with stop().
      }
    });
  }
  server.stop();
  for (std::thread& w : workers) {
    w.join();
  }
  SUCCEED();
}

}  // namespace
}  // namespace perfvar::server
