/// \file trace_tool.cpp
/// Command-line utility around the trace substrate:
///
///   trace_tool generate <scenario> <out.pvt>   write a case-study trace
///   trace_tool generate scale <out.pvt> [ranks [iters]]
///                                              stream the synthetic scale
///                                              scenario straight to disk
///                                              (never held in memory)
///   trace_tool info [--verify] <in.pvt>        format version, file size,
///                                              per-rank blocks; --verify
///                                              adds a salvage dry run
///   trace_tool salvage <in.pvt> <out.pvt>      recover a damaged trace
///   trace_tool stats <in.pvt>                  print trace statistics
///   trace_tool validate <in.pvt>               structural validation
///   trace_tool lint <in.pvt>                   rule-based diagnostics
///                                              (see --json, --fail-on,
///                                              --disable)
///   trace_tool profile <in.pvt>                top functions by time
///   trace_tool analyze <in.pvt>                full variation analysis
///   trace_tool critpath <in.pvt> [fmt]         cross-rank dependency
///                                              analysis (critical path,
///                                              serialization, idle waves)
///   trace_tool dump <in.pvt>                   PVTX text dump to stdout
///   trace_tool slice <in.pvt> <out.pvt> <startSec> <endSec>
///   trace_tool export-json <in.pvt>            analysis as JSON to stdout
///   trace_tool export-csv <in.pvt>             SOS matrix CSV to stdout
///   trace_tool archive <in.pvt> <dir>          write a PVTA archive
///   trace_tool unarchive <dir> <out.pvt>       assemble an archive
///   trace_tool query <in.pvt>                  load once, answer many
///                                              queries read from stdin
///   trace_tool serve <socket>                  long-lived analysis daemon
///                                              on a Unix socket
///   trace_tool connect <socket>                scripted client session:
///                                              commands from stdin, one
///                                              per line
///
/// Global options (see tool_options.hpp, the one shared parser):
/// --threads N runs the analysis commands — and the v2 trace decode — on
/// N worker threads (0 = all hardware threads; output is bit-identical
/// to serial); --format v1|v2 selects the binary layout written by
/// generate/slice/archive/unarchive (default v2); --salvage loads
/// damaged inputs in recovery mode (quarantined ranks are excluded from
/// analysis and reported); --lazy opens analysis inputs out-of-core
/// (mmap + per-rank lazy decode, --shard-budget-mb N caps the decoded
/// LRU) so six-figure-rank traces analyze in bounded memory with
/// byte-identical output; --budget-mb N / --session-budget-mb N cap the
/// serve daemon's resident-trace memory (LRU eviction); --help prints
/// the usage text. Unknown options are rejected.
///
/// Exit codes: 0 = success, 1 = runtime/analysis error (unreadable trace,
/// no dominant function, failed validation, ...), 2 = usage error
/// (unknown command/option, malformed arguments). Load failures print a
/// single structured line: `error: <code>: <path>`.
///
/// The `lint` command has its own contract: 0 = clean (no finding at or
/// above the --fail-on severity), 1 = findings at or above it, 2 = the
/// trace could not be loaded at all.
///
/// Scenarios: cosmo-specs | cosmo-specs-fd4 | wrf | pipeline |
/// desync-stencil.
/// Without arguments, a self-contained demo runs (generate + analyze a
/// temporary COSMO-SPECS trace).

#include <cerrno>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/export.hpp"
#include "analysis/pipeline.hpp"
#include "lint/lint.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "apps/desync_stencil.hpp"
#include "apps/pipeline_chain.hpp"
#include "apps/scale_synthetic.hpp"
#include "apps/wrf.hpp"
#include "engine/engine.hpp"
#include "profile/profile.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "trace/archive.hpp"
#include "trace/binary_io.hpp"
#include "trace/filter.hpp"
#include "trace/stats.hpp"
#include "trace/text_io.hpp"
#include "trace/view.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

#include "tool_options.hpp"

namespace {

using namespace perfvar;

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;  ///< analysis/IO errors
constexpr int kExitUsage = 2;    ///< malformed command lines
/// `lint` contract: 1 = findings at/above --fail-on, 2 = unloadable trace.
constexpr int kExitLintFindings = 1;
constexpr int kExitLintLoadError = 2;

/// Self-pipe for `serve` SIGTERM drain: the handler only writes one byte
/// (async-signal-safe); a watcher thread does the actual graceful drain.
int gSigtermPipe[2] = {-1, -1};

extern "C" void onSigterm(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(gSigtermPipe[1], &byte, 1);
}

trace::Trace generateScenario(const std::string& name) {
  if (name == "cosmo-specs") {
    const auto s = apps::buildCosmoSpecs();
    return sim::simulate(s.program, s.simOptions);
  }
  if (name == "cosmo-specs-fd4") {
    const auto s = apps::buildCosmoSpecsFd4();
    return sim::simulate(s.program, s.simOptions);
  }
  if (name == "wrf") {
    const auto s = apps::buildWrf();
    return sim::simulate(s.program, s.simOptions);
  }
  if (name == "pipeline") {
    return apps::buildPipelineTrace({});
  }
  if (name == "desync-stencil") {
    return apps::buildStencilTrace({});
  }
  throw Error("unknown scenario '" + name +
              "' (expected cosmo-specs | cosmo-specs-fd4 | wrf | "
              "pipeline | desync-stencil)");
}

void printUsage(std::ostream& out) {
  out <<
      "usage: trace_tool [--threads N] [--format v1|v2] [--salvage]\n"
      "                  [--lazy] [--verbose] <command> [args]\n"
      "  generate <scenario> <out.pvt>  scenario: cosmo-specs |\n"
      "                                 cosmo-specs-fd4 | wrf | pipeline |\n"
      "                                 desync-stencil\n"
      "  generate scale <out.pvt> [ranks [iterations]]\n"
      "                                 stream the synthetic scale scenario\n"
      "                                 to disk rank by rank (defaults:\n"
      "                                 1024 ranks, 20 iterations); built\n"
      "                                 for 100k-rank traces, pairs with\n"
      "                                 --lazy analysis\n"
      "  info [--verify] <in.pvt>       format version, file size and\n"
      "                                 per-rank block sizes/event counts;\n"
      "                                 --verify adds a salvage dry run\n"
      "                                 (per-rank load report)\n"
      "  salvage <in.pvt> <out.pvt>     recover a damaged trace: load in\n"
      "                                 salvage mode, print the per-rank\n"
      "                                 report, rewrite the recovered data\n"
      "  stats <in.pvt>                 trace statistics\n"
      "  validate <in.pvt>              structural validation\n"
      "  lint <in.pvt>                  rule-based diagnostics; exit 0 =\n"
      "                                 clean, 1 = findings at/above the\n"
      "                                 --fail-on severity, 2 = the trace\n"
      "                                 could not be loaded\n"
      "  profile <in.pvt>               flat profile (top 20)\n"
      "  analyze <in.pvt>               dominant function + SOS analysis\n"
      "  critpath <in.pvt> [text|json|csv]\n"
      "                                 cross-rank dependency analysis:\n"
      "                                 critical path, serialization\n"
      "                                 bottlenecks and idle waves\n"
      "  dump <in.pvt>                  PVTX text dump\n"
      "  slice <in.pvt> <out.pvt> <startSec> <endSec>\n"
      "  export-json <in.pvt>           analysis as JSON\n"
      "  export-csv <in.pvt>            SOS matrix as CSV\n"
      "  archive <in.pvt> <dir>         write a PVTA archive\n"
      "  unarchive <dir> <out.pvt>      assemble an archive\n"
      "  query <in.pvt>                 load the trace once, then answer\n"
      "                                 queries from stdin (one per line):\n"
      "                                   analyze [candidate K]\n"
      "                                     [threshold Z] [max-hotspots N]\n"
      "                                   export <text|json|csv|\n"
      "                                     csv-iterations|csv-hotspots>\n"
      "                                     [candidate K] [threshold Z]\n"
      "                                     [max-hotspots N]\n"
      "                                   profile | stats | cache |\n"
      "                                   help | quit\n"
      "  serve <socket>                 long-lived analysis daemon on a\n"
      "                                 Unix socket (docs/PROTOCOL.md);\n"
      "                                 stops on a client 'shutdown';\n"
      "                                 SIGTERM drains gracefully (stops\n"
      "                                 accepting, finishes in-flight\n"
      "                                 requests, fsyncs journals)\n"
      "  connect <socket>               drive a daemon from stdin (one\n"
      "                                 command per line):\n"
      "                                   load <name> <in.pvt>\n"
      "                                   open <name> <segmentFn>\n"
      "                                     [threshold Z] [warmup N]\n"
      "                                   append <name> <chunk.pvt>\n"
      "                                   analyze <name> [options]\n"
      "                                   export <name> <format> [options]\n"
      "                                   lint <name> | stats [name] |\n"
      "                                   evict <name> | subscribe <name> |\n"
      "                                   shutdown | help | quit\n"
      "\n"
      "  --threads N   run the analysis and the v2 trace decode on N\n"
      "                worker threads (0 = all hardware threads); results\n"
      "                are identical to serial\n"
      "  --format V    binary layout written by generate/slice/archive/\n"
      "                unarchive: v1 (legacy) or v2 (default)\n"
      "  --salvage     load inputs in recovery mode: damaged ranks are\n"
      "                quarantined (and excluded from analysis) instead\n"
      "                of failing the whole load\n"
      "  --lazy        open analysis inputs out-of-core (PVTF v2 only):\n"
      "                mmap + per-rank lazy decode under an LRU budget;\n"
      "                output is byte-identical to an eager load\n"
      "  --verbose     analyze only: append the thread pool's scheduling\n"
      "                counters (per-worker tasks/chunks/steals) after\n"
      "                the report; with --threads 1 notes the serial run\n"
      "  --shard-budget-mb N    --lazy only: decoded-shard LRU budget\n"
      "                         (MiB, default 256)\n"
      "  --budget-mb N          serve only: global memory budget over all\n"
      "                         resident traces (MiB, LRU eviction);\n"
      "                         0 = unlimited (default)\n"
      "  --session-budget-mb N  serve only: per-session memory budget\n"
      "                         (MiB); 0 = unlimited (default)\n"
      "  --journal-dir D        serve only: per-trace write-ahead journals\n"
      "                         for live streams; budget evictions spill\n"
      "                         to disk and fault back in on demand\n"
      "  --recover              serve only: replay --journal-dir before\n"
      "                         listening (crash recovery)\n"
      "  --journal-fsync        serve only: fsync after every journal\n"
      "                         record (durable against power loss, not\n"
      "                         just process crash)\n"
      "  --reorder-window-bytes N  serve only: buffer out-of-order stream\n"
      "                         chunks up to N bytes per trace and commit\n"
      "                         them in time order (0 = strict order,\n"
      "                         default)\n"
      "  --send-timeout-ms N    serve only: per-send timeout before a\n"
      "                         stalled client is dropped (0 = block\n"
      "                         forever; default 5000)\n"
      "  --retry N              connect only: connection attempts before\n"
      "                         giving up (default 50)\n"
      "  --retry-delay-ms N     connect only: initial retry delay;\n"
      "                         doubles per attempt up to 2s (default\n"
      "                         100)\n"
      "  --json        lint only: report as JSON instead of text\n"
      "  --fail-on S   lint only: severity that fails the run with exit\n"
      "                code 1 (info | warning | error; default warning)\n"
      "  --disable R   lint only: skip rule id R (repeatable)\n"
      "  --only I[,I...]     lint only: run exactly these rule ids\n"
      "                      (comma-separated, repeatable); unknown ids\n"
      "                      are a usage error (exit 2)\n"
      "  --exclude I[,I...]  lint only: skip these rule ids\n"
      "                      (comma-separated, repeatable); unknown ids\n"
      "                      are a usage error (exit 2)\n"
      "  --help        print this text\n"
      "\n"
      "exit codes: 0 success, 1 runtime/analysis error, 2 usage error\n";
}

int usageError(const std::string& message) {
  std::cerr << "trace_tool: " << message
            << "\n(try 'trace_tool --help')\n";
  return kExitUsage;
}

using tool::parseDouble;
using tool::parseSize;

bool parseExportFormat(const std::string& name,
                       analysis::ExportFormat& format) {
  if (name == "text") {
    format = analysis::ExportFormat::Text;
  } else if (name == "json") {
    format = analysis::ExportFormat::Json;
  } else if (name == "csv") {
    format = analysis::ExportFormat::Csv;
  } else if (name == "csv-iterations") {
    format = analysis::ExportFormat::CsvIterations;
  } else if (name == "csv-hotspots") {
    format = analysis::ExportFormat::CsvHotspots;
  } else {
    return false;
  }
  return true;
}

/// Parse `[candidate K] [threshold Z] [max-hotspots N]` pairs starting at
/// tokens[first]. Returns false (with a message on stderr) on bad input.
bool parseQueryOptions(const std::vector<std::string>& tokens,
                       std::size_t first, analysis::PipelineOptions& opts) {
  for (std::size_t i = first; i < tokens.size(); i += 2) {
    if (i + 1 >= tokens.size()) {
      std::cerr << "trace_tool: query option '" << tokens[i]
                << "' needs a value\n";
      return false;
    }
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    if (key == "candidate") {
      if (!parseSize(value, opts.candidateIndex)) {
        std::cerr << "trace_tool: candidate expects a non-negative "
                     "integer, got '" << value << "'\n";
        return false;
      }
    } else if (key == "threshold") {
      if (!parseDouble(value, opts.variation.outlierThreshold)) {
        std::cerr << "trace_tool: threshold expects a number, got '"
                  << value << "'\n";
        return false;
      }
    } else if (key == "max-hotspots") {
      if (!parseSize(value, opts.variation.maxHotspots)) {
        std::cerr << "trace_tool: max-hotspots expects a non-negative "
                     "integer, got '" << value << "'\n";
        return false;
      }
    } else {
      std::cerr << "trace_tool: unknown query option '" << key << "'\n";
      return false;
    }
  }
  return true;
}

void printQueryHelp(std::ostream& out) {
  out << "query commands:\n"
         "  analyze [candidate K] [threshold Z] [max-hotspots N]\n"
         "  export <text|json|csv|csv-iterations|csv-hotspots>"
         " [candidate K] [threshold Z] [max-hotspots N]\n"
         "  profile   top functions by inclusive time\n"
         "  critpath  cross-rank dependency analysis (critical path,\n"
         "            serialization bottlenecks, idle waves)\n"
         "  stats     trace statistics\n"
         "  cache     cache hit/miss/eviction/bytes counters\n"
         "  help      this text\n"
         "  quit      end the session\n";
}

/// The `query` session: one engine, many analyses. Commands come from
/// `in` one per line; '#'-prefixed lines are comments. Repeated queries
/// with overlapping options are served from the engine's stage cache.
int runQuerySession(engine::AnalysisEngine& eng, std::istream& in,
                    std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream split(line);
    std::vector<std::string> tokens;
    for (std::string t; split >> t;) {
      tokens.push_back(t);
    }
    if (tokens.empty() || tokens[0][0] == '#') {
      continue;
    }
    const std::string& cmd = tokens[0];
    if (cmd == "quit" || cmd == "exit") {
      break;
    }
    if (cmd == "help") {
      printQueryHelp(out);
    } else if (cmd == "cache") {
      out << engine::formatCacheStats(eng.cacheStats()) << '\n';
    } else if (cmd == "stats") {
      out << trace::formatStats(trace::computeStats(eng.trace()));
    } else if (cmd == "profile") {
      out << profile::formatTopFunctions(eng.trace(), *eng.profile(), 20);
    } else if (cmd == "critpath") {
      out << eng.formatDepReport();
    } else if (cmd == "analyze" || cmd == "export") {
      analysis::PipelineOptions opts;
      analysis::ExportFormat format = analysis::ExportFormat::Text;
      std::size_t firstOption = 1;
      if (cmd == "export") {
        if (tokens.size() < 2 || !parseExportFormat(tokens[1], format)) {
          std::cerr << "trace_tool: export needs a format (text | json | "
                       "csv | csv-iterations | csv-hotspots)\n";
          return kExitUsage;
        }
        firstOption = 2;
      }
      if (!parseQueryOptions(tokens, firstOption, opts)) {
        return kExitUsage;
      }
      if (cmd == "analyze") {
        out << eng.formatReport(opts);
      } else {
        eng.exportReport(format, out, opts);
      }
    } else {
      std::cerr << "trace_tool: unknown query command '" << cmd
                << "' (try 'help')\n";
      return kExitUsage;
    }
  }
  return kExitOk;
}

void printConnectHelp(std::ostream& out) {
  out << "connect commands:\n"
         "  load <name> <in.pvt>          open a trace file on the server\n"
         "  open <name> <segmentFn> [threshold Z] [warmup N]\n"
         "                                create a live streaming trace\n"
         "  append <name> <chunk.pvt>     stream a v2 chunk into it\n"
         "  analyze <name> [candidate K] [threshold Z] [max-hotspots N]\n"
         "  export <name> <text|json|csv|csv-iterations|csv-hotspots>"
         " [options]\n"
         "  lint <name>                   rule-based diagnostics\n"
         "  stats [name]                  server or per-trace statistics\n"
         "  evict <name>                  drop a resident trace\n"
         "  subscribe <name>              receive alerts of a live trace\n"
         "  shutdown                      stop the server and exit\n"
         "  help                          this text\n"
         "  quit                          end the session\n";
}

/// The `connect` session: drive a running daemon with the same one-line
/// command language as `query`, extended with the multi-trace verbs.
/// Data/Ok/alert payloads go to `out`; Error and Evicted responses are
/// reported on stderr and make the session exit nonzero at the end
/// (after the remaining commands still ran).
int runConnectSession(server::Client& client, std::istream& in,
                      std::ostream& out) {
  bool failed = false;
  const auto show = [&](const server::ClientResponse& response) {
    for (const std::string& alert : response.alerts) {
      out << alert << '\n';
    }
    switch (response.type) {
      case server::FrameType::Ok:
        out << response.payload << '\n';
        break;
      case server::FrameType::Data:
        out << response.payload;
        if (!response.payload.empty() && response.payload.back() != '\n') {
          out << '\n';
        }
        break;
      case server::FrameType::Evicted:
        std::cerr << "trace_tool: trace '" << response.payload
                  << "' was evicted (memory budget)\n";
        failed = true;
        break;
      case server::FrameType::Error: {
        const server::ProtocolError e = response.error();
        std::cerr << "trace_tool: server error: " << errorCodeName(e.code)
                  << ": " << e.message << '\n';
        failed = true;
        break;
      }
      default:
        break;  // Bye is handled by the callers below
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    std::istringstream split(line);
    std::vector<std::string> tokens;
    for (std::string t; split >> t;) {
      tokens.push_back(t);
    }
    if (tokens.empty() || tokens[0][0] == '#') {
      continue;
    }
    const std::string& cmd = tokens[0];
    if (cmd == "quit" || cmd == "exit" || cmd == "close") {
      client.close();
      return failed ? kExitRuntime : kExitOk;
    }
    if (cmd == "shutdown") {
      client.shutdownServer();
      return failed ? kExitRuntime : kExitOk;
    }
    if (cmd == "help") {
      printConnectHelp(out);
      continue;
    }
    // Everything else is `<verb> [args...]`; the server parses the args
    // and answers structured errors for bad ones.
    const auto rest = [&](std::size_t first) {
      std::string joined;
      for (std::size_t i = first; i < tokens.size(); ++i) {
        if (!joined.empty()) {
          joined += ' ';
        }
        joined += tokens[i];
      }
      return joined;
    };
    if (cmd == "append") {
      if (tokens.size() != 3) {
        std::cerr << "trace_tool: append expects <name> <chunk.pvt>\n";
        return kExitUsage;
      }
      std::ifstream chunk(tokens[2], std::ios::binary);
      if (!chunk) {
        std::cerr << "trace_tool: cannot read chunk file '" << tokens[2]
                  << "'\n";
        failed = true;
        continue;
      }
      std::ostringstream image;
      image << chunk.rdbuf();
      show(client.append(tokens[1], image.str()));
    } else if (cmd == "load") {
      show(client.request(server::FrameType::Load, rest(1)));
    } else if (cmd == "open") {
      show(client.request(server::FrameType::Open, rest(1)));
    } else if (cmd == "analyze") {
      show(client.request(server::FrameType::Analyze, rest(1)));
    } else if (cmd == "export") {
      show(client.request(server::FrameType::Export, rest(1)));
    } else if (cmd == "lint") {
      show(client.request(server::FrameType::Lint, rest(1)));
    } else if (cmd == "stats") {
      show(client.request(server::FrameType::Stats, rest(1)));
    } else if (cmd == "evict") {
      show(client.request(server::FrameType::Evict, rest(1)));
    } else if (cmd == "subscribe") {
      show(client.request(server::FrameType::Subscribe, rest(1)));
    } else {
      std::cerr << "trace_tool: unknown connect command '" << cmd
                << "' (try 'help')\n";
      return kExitUsage;
    }
  }
  client.close();  // EOF without quit: still say goodbye
  return failed ? kExitRuntime : kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    tool::ToolOptions options;
    std::string parseError;
    switch (tool::parseToolOptions(argc, argv, options, parseError)) {
      case tool::ParseStatus::Help:
        printUsage(std::cout);
        return kExitOk;
      case tool::ParseStatus::Error:
        return usageError(parseError);
      case tool::ParseStatus::Ok:
        break;
    }
    const std::size_t threads = options.threads;
    const bool salvage = options.salvage;
    const std::vector<std::string>& args = options.positional;
    analysis::PipelineOptions pipelineOptions;
    pipelineOptions.threads = threads;
    trace::BinaryWriteOptions writeOptions;
    writeOptions.version = options.format;
    writeOptions.threads = threads;
    trace::BinaryReadOptions readOptions;
    readOptions.threads = threads;
    if (salvage) {
      readOptions.recovery = trace::RecoveryMode::Salvage;
    }
    trace::TraceViewOptions viewOptions;
    viewOptions.shardBudgetBytes = options.shardBudgetMb * 1024 * 1024;
    if (salvage) {
      viewOptions.recovery = trace::RecoveryMode::Salvage;
    }
    // One loader for every analysis command: --lazy keeps the file on
    // disk behind the out-of-core backend, the default materializes it.
    // Both paths produce the same TraceView interface and identical
    // command output.
    const auto loadView = [&](const std::string& path) {
      if (options.lazy) {
        return trace::TraceView::openFile(path, viewOptions);
      }
      return trace::TraceView::owned(trace::loadBinaryFile(path, readOptions));
    };
    if (args.empty()) {
      // Demo mode: exercise the full round trip on a small scenario.
      std::cout << "(no arguments: running the self-contained demo)\n\n";
      apps::CosmoSpecsConfig cfg;
      cfg.gridX = 4;
      cfg.gridY = 4;
      cfg.timesteps = 20;
      const auto scenario = apps::buildCosmoSpecs(cfg);
      const trace::Trace tr =
          sim::simulate(scenario.program, scenario.simOptions);
      const std::string path = "trace_tool_demo.pvt";
      trace::saveBinaryFile(tr, path);
      const trace::Trace loaded = trace::loadBinaryFile(path);
      std::cout << trace::formatStats(trace::computeStats(loaded)) << '\n';
      const auto result = analysis::analyzeTrace(loaded, pipelineOptions);
      std::cout << analysis::formatAnalysis(loaded, result);
      std::cout << "\nwrote " << path << "; try: trace_tool analyze " << path
                << '\n';
      return kExitOk;
    }

    const std::string& cmd = args[0];
    if (cmd == "generate" && args.size() >= 2 && args[1] == "scale") {
      if (args.size() < 3 || args.size() > 5) {
        return usageError(
            "'generate scale' expects <out.pvt> [ranks [iterations]]");
      }
      if (options.format != trace::kBinaryFormatV2) {
        return usageError("'generate scale' streams PVTF v2; remove "
                          "--format v1");
      }
      apps::ScaleConfig cfg;
      if (args.size() >= 4 && !parseSize(args[3], cfg.ranks)) {
        return usageError("'generate scale' ranks expects a non-negative "
                          "integer, got '" + args[3] + "'");
      }
      if (args.size() == 5 && !parseSize(args[4], cfg.iterations)) {
        return usageError("'generate scale' iterations expects a "
                          "non-negative integer, got '" + args[4] + "'");
      }
      const apps::ScaleWriteResult written =
          apps::writeScaleTrace(args[2], cfg);
      std::cout << "wrote " << args[2] << " (" << written.ranks
                << " ranks, " << written.events << " events, "
                << written.culpritRanks
                << " culprit ranks; streamed rank by rank)\n";
      return kExitOk;
    }
    if (cmd == "generate") {
      if (args.size() != 3) {
        return usageError("'generate' expects <scenario> <out.pvt>");
      }
      const trace::Trace tr = generateScenario(args[1]);
      trace::saveBinaryFile(tr, args[2], writeOptions);
      std::cout << "wrote " << args[2] << " ("
                << trace::computeStats(tr).eventCount << " events)\n";
      return kExitOk;
    }
    if (cmd == "slice") {
      if (args.size() != 5) {
        return usageError(
            "'slice' expects <in.pvt> <out.pvt> <startSec> <endSec>");
      }
      double startSec = 0.0;
      double endSec = 0.0;
      if (!parseDouble(args[3], startSec) || !parseDouble(args[4], endSec)) {
        return usageError("'slice' expects numeric start/end seconds");
      }
      const trace::Trace tr = trace::loadBinaryFile(args[1], readOptions);
      const trace::Trace sliced = trace::sliceTime(
          tr, trace::secondsToTicks(startSec, tr.resolution),
          trace::secondsToTicks(endSec, tr.resolution));
      trace::saveBinaryFile(sliced, args[2], writeOptions);
      std::cout << "wrote " << args[2] << " (" << sliced.eventCount()
                << " of " << tr.eventCount() << " events)\n";
      return kExitOk;
    }
    if (cmd == "archive") {
      if (args.size() != 3) {
        return usageError("'archive' expects <in.pvt> <dir>");
      }
      const trace::Trace tr = trace::loadBinaryFile(args[1], readOptions);
      trace::saveArchive(tr, args[2], writeOptions);
      std::cout << "wrote PVTA archive " << args[2] << " ("
                << tr.processCount() << " rank files)\n";
      return kExitOk;
    }
    if (cmd == "unarchive") {
      if (args.size() != 3) {
        return usageError("'unarchive' expects <dir> <out.pvt>");
      }
      trace::ArchiveReadOptions archiveOptions;
      archiveOptions.threads = threads;
      const trace::Trace tr = trace::loadArchive(args[1], archiveOptions);
      trace::saveBinaryFile(tr, args[2], writeOptions);
      std::cout << "wrote " << args[2] << " (" << tr.eventCount()
                << " events)\n";
      return kExitOk;
    }
    if (cmd == "salvage") {
      if (args.size() != 3) {
        return usageError("'salvage' expects <in.pvt> <out.pvt>");
      }
      trace::BinaryReadOptions salvageOptions = readOptions;
      salvageOptions.recovery = trace::RecoveryMode::Salvage;
      trace::LoadReport report;
      salvageOptions.report = &report;
      const trace::Trace tr = trace::loadBinaryFile(args[1], salvageOptions);
      std::cout << trace::formatLoadReport(report);
      trace::saveBinaryFile(tr, args[2], writeOptions);
      std::cout << "wrote " << args[2] << " (" << tr.eventCount()
                << " events, " << report.quarantinedCount() << " of "
                << report.ranks.size() << " ranks quarantined)\n";
      return kExitOk;
    }
    if (cmd == "critpath") {
      // critpath <in.pvt> [text|json|csv] — engine-based so --lazy and
      // --threads apply; a warm re-query would hit the dep stage cache.
      if (args.size() < 2 || args.size() > 3) {
        return usageError("'critpath' expects <in.pvt> [text|json|csv]");
      }
      analysis::ExportFormat format = analysis::ExportFormat::Text;
      if (args.size() == 3) {
        if (!parseExportFormat(args[2], format) ||
            (format != analysis::ExportFormat::Text &&
             format != analysis::ExportFormat::Json &&
             format != analysis::ExportFormat::Csv)) {
          return usageError("'critpath' expects a format of text, json or "
                            "csv, got '" + args[2] + "'");
        }
      }
      engine::EngineOptions engineOptions;
      engineOptions.threads = threads;
      auto eng = options.lazy
                     ? engine::AnalysisEngine::fromFileLazy(
                           args[1], engineOptions, viewOptions)
                     : engine::AnalysisEngine::fromFile(args[1],
                                                        engineOptions);
      eng.exportDepReport(format, std::cout);
      return kExitOk;
    }
    if (args.size() != 2) {
      if (cmd == "stats" || cmd == "validate" || cmd == "lint" ||
          cmd == "profile" || cmd == "analyze" || cmd == "dump" ||
          cmd == "export-json" || cmd == "export-csv" || cmd == "query" ||
          cmd == "info") {
        return usageError("'" + cmd + "' expects exactly one <in.pvt>");
      }
      if (cmd == "serve" || cmd == "connect") {
        return usageError("'" + cmd + "' expects exactly one <socket>");
      }
      return usageError("unknown command '" + cmd + "'");
    }
    if (cmd == "serve") {
      if (options.recover && options.journalDir.empty()) {
        return usageError("--recover requires --journal-dir");
      }
      server::ServerOptions serverOptions;
      serverOptions.threads = threads;
      serverOptions.maxResidentBytes = options.budgetMb * 1024 * 1024;
      serverOptions.maxSessionBytes = options.sessionBudgetMb * 1024 * 1024;
      serverOptions.journalDir = options.journalDir;
      serverOptions.recover = options.recover;
      serverOptions.journalFsync = options.journalFsync;
      serverOptions.reorderWindowBytes = options.reorderWindowBytes;
      serverOptions.rehydrate = !options.journalDir.empty();
      serverOptions.sendTimeoutMs = static_cast<int>(options.sendTimeoutMs);
      server::Server srv(serverOptions);
      if (options.recover) {
        std::cout << "recovered " << srv.service().stats().traces
                  << " trace(s) from " << options.journalDir << '\n';
      }
      // SIGTERM = graceful drain: a self-pipe wakes a watcher thread that
      // runs the drain outside signal context (drain() joins threads and
      // takes locks, none of which is async-signal-safe).
      const bool haveDrainPipe = ::pipe(gSigtermPipe) == 0;
      std::thread drainWatcher;
      if (haveDrainPipe) {
        struct sigaction action {};
        action.sa_handler = onSigterm;
        sigemptyset(&action.sa_mask);
        ::sigaction(SIGTERM, &action, nullptr);
        drainWatcher = std::thread([&srv] {
          char byte = 0;
          while (::read(gSigtermPipe[0], &byte, 1) < 0 && errno == EINTR) {
          }
          if (byte == 1) {
            std::cout << "draining (SIGTERM)\n" << std::flush;
            srv.drain();
          }
        });
      }
      srv.listen(args[1]);
      // Scripts wait for this line before connecting; flush it.
      std::cout << "serving on " << args[1] << std::endl;
      srv.run();
      if (haveDrainPipe) {
        // Wake the watcher if the stop came from a client Shutdown frame
        // instead of a signal (byte 0 = nothing to drain).
        const char wake = 0;
        [[maybe_unused]] const ssize_t n =
            ::write(gSigtermPipe[1], &wake, 1);
        drainWatcher.join();
        ::signal(SIGTERM, SIG_DFL);
        ::close(gSigtermPipe[0]);
        ::close(gSigtermPipe[1]);
        gSigtermPipe[0] = gSigtermPipe[1] = -1;
      }
      srv.service().syncJournals();
      std::cout << "server stopped\n";
      return kExitOk;
    }
    if (cmd == "connect") {
      util::ConnectRetryPolicy retryPolicy;
      retryPolicy.retries = options.retry;
      retryPolicy.initialDelayMs = options.retryDelayMs;
      server::Client client = server::Client::connectTo(args[1], retryPolicy);
      return runConnectSession(client, std::cin, std::cout);
    }
    if (cmd == "info") {
      if (options.verify) {
        // A salvage dry run: works on damaged files the strict block
        // inspection below would reject.
        const trace::LoadReport report =
            trace::verifyBinaryFile(args[1], readOptions);
        std::cout << "file: " << args[1] << '\n'
                  << trace::formatLoadReport(report);
        return report.quarantinedCount() > 0 ? kExitRuntime : kExitOk;
      }
      const trace::BinaryFileInfo info = trace::inspectBinaryFile(args[1]);
      std::cout << "file: " << args[1] << '\n'
                << "format: v" << info.version << '\n'
                << "size: " << info.fileSize << " bytes\n"
                << "resolution: " << info.resolution << " ticks/s\n"
                << "events: " << info.eventCount << '\n'
                << "processes: " << info.blocks.size() << '\n'
                << "rank blocks:\n";
      for (std::size_t i = 0; i < info.blocks.size(); ++i) {
        const trace::BinaryBlockInfo& b = info.blocks[i];
        std::cout << "  " << i << " \"" << b.process << "\": " << b.events
                  << " events, " << b.bytes << " bytes\n";
      }
      return kExitOk;
    }
    if (cmd == "query") {
      engine::EngineOptions engineOptions;
      engineOptions.threads = threads;
      auto eng = options.lazy
                     ? engine::AnalysisEngine::fromFileLazy(
                           args[1], engineOptions, viewOptions)
                     : engine::AnalysisEngine::fromFile(args[1],
                                                        engineOptions);
      return runQuerySession(eng, std::cin, std::cout);
    }
    if (cmd == "lint") {
      // --only/--exclude are validated strictly against the built-in
      // registry: a typo'd rule id is a usage error (exit 2), not a
      // silently ineffective filter.
      const lint::RuleRegistry& registry = lint::RuleRegistry::builtin();
      for (const std::string& id : options.lintOnly) {
        if (registry.find(id) == nullptr) {
          return usageError("unknown lint rule id '" + id + "'");
        }
      }
      for (const std::string& id : options.lintExclude) {
        if (registry.find(id) == nullptr) {
          return usageError("unknown lint rule id '" + id + "'");
        }
      }
      // Own exit-code contract (see file comment): a trace that cannot be
      // loaded at all exits 2, not the generic runtime code 1 — scripts
      // can then distinguish "damaged beyond linting" from "has findings".
      trace::TraceView tr;
      try {
        tr = loadView(args[1]);
      } catch (const Error& e) {
        if (!e.path().empty()) {
          std::cerr << "error: " << errorCodeName(e.code()) << ": "
                    << e.path() << '\n';
        } else {
          std::cerr << "trace_tool: " << e.what() << '\n';
        }
        return kExitLintLoadError;
      }
      lint::LintOptions lintOptions;
      lintOptions.threads = threads;
      lintOptions.disabledRules = options.lintDisabled;
      lintOptions.onlyRules = options.lintOnly;
      lintOptions.disabledRules.insert(lintOptions.disabledRules.end(),
                                       options.lintExclude.begin(),
                                       options.lintExclude.end());
      const lint::LintReport report = lint::lintTrace(tr, lintOptions);
      lint::exportLintReport(report,
                             options.lintJson ? analysis::ExportFormat::Json
                                              : analysis::ExportFormat::Text,
                             std::cout);
      return report.hasAtLeast(options.lintFailOn) ? kExitLintFindings
                                                   : kExitOk;
    }
    const trace::TraceView tr = loadView(args[1]);
    if (cmd == "stats") {
      std::cout << trace::formatStats(trace::computeStats(tr));
    } else if (cmd == "validate") {
      const auto issues = lint::validateStructure(tr);
      if (issues.empty()) {
        std::cout << "trace is structurally valid\n";
      } else {
        for (const auto& issue : issues) {
          std::cout << "process " << issue.process << ", event "
                    << issue.eventIndex << ": " << issue.message << '\n';
        }
        return kExitRuntime;
      }
    } else if (cmd == "profile") {
      const auto profile = profile::FlatProfile::build(tr);
      std::cout << profile::formatTopFunctions(tr, profile, 20);
    } else if (cmd == "analyze") {
      // --verbose: collect the thread pool's scheduling counters for this
      // run and append them after the report (stdout, so scripted runs
      // capture both; the report itself is unchanged).
      util::ThreadPoolStats poolStats;
      if (options.verbose) {
        pipelineOptions.poolStats = &poolStats;
      }
      const auto result = analysis::analyzeTrace(tr, pipelineOptions);
      std::cout << analysis::formatAnalysis(tr, result);
      if (options.verbose) {
        if (poolStats.workers.empty()) {
          std::cout << "\nthread pool: serial run (no workers)\n";
        } else {
          std::cout << '\n' << util::formatThreadPoolStats(poolStats);
        }
      }
    } else if (cmd == "dump") {
      // PVTX dumps the whole trace anyway; a lazy view materializes here.
      if (const trace::Trace* eager = tr.eagerOrNull()) {
        trace::writeText(*eager, std::cout);
      } else {
        const trace::Trace materialized = tr.materialize();
        trace::writeText(materialized, std::cout);
      }
    } else if (cmd == "export-json") {
      const auto result = analysis::analyzeTrace(tr, pipelineOptions);
      analysis::exportReport(tr, result, analysis::ExportFormat::Json,
                             std::cout);
    } else if (cmd == "export-csv") {
      const auto result = analysis::analyzeTrace(tr, pipelineOptions);
      analysis::exportReport(tr, result, analysis::ExportFormat::Csv,
                             std::cout);
    } else {
      return usageError("unknown command '" + cmd + "'");
    }
    return kExitOk;
  } catch (const Error& e) {
    // Structured one-liner for load failures that carry a file path
    // (scripts can match on the stable error-code name).
    if (!e.path().empty()) {
      std::cerr << "error: " << errorCodeName(e.code()) << ": " << e.path()
                << '\n';
    } else {
      std::cerr << "trace_tool: " << e.what() << '\n';
    }
    return kExitRuntime;
  } catch (const std::exception& e) {
    std::cerr << "trace_tool: " << e.what() << '\n';
    return kExitRuntime;
  }
}
