/// \file trace_tool.cpp
/// Command-line utility around the trace substrate:
///
///   trace_tool generate <scenario> <out.pvt>   write a case-study trace
///   trace_tool stats <in.pvt>                  print trace statistics
///   trace_tool validate <in.pvt>               structural validation
///   trace_tool profile <in.pvt>                top functions by time
///   trace_tool analyze <in.pvt>                full variation analysis
///   trace_tool dump <in.pvt>                   PVTX text dump to stdout
///   trace_tool slice <in.pvt> <out.pvt> <startSec> <endSec>
///   trace_tool export-json <in.pvt>            analysis as JSON to stdout
///   trace_tool export-csv <in.pvt>             SOS matrix CSV to stdout
///   trace_tool archive <in.pvt> <dir>          write a PVTA archive
///   trace_tool unarchive <dir> <out.pvt>       assemble an archive
///
/// Scenarios: cosmo-specs | cosmo-specs-fd4 | wrf.
/// Without arguments, a self-contained demo runs (generate + analyze a
/// temporary COSMO-SPECS trace).

#include <iostream>
#include <string>

#include "analysis/export.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "apps/wrf.hpp"
#include "profile/profile.hpp"
#include "trace/archive.hpp"
#include "trace/binary_io.hpp"
#include "trace/filter.hpp"
#include "trace/stats.hpp"
#include "trace/text_io.hpp"
#include "util/error.hpp"

namespace {

using namespace perfvar;

trace::Trace generateScenario(const std::string& name) {
  if (name == "cosmo-specs") {
    const auto s = apps::buildCosmoSpecs();
    return sim::simulate(s.program, s.simOptions);
  }
  if (name == "cosmo-specs-fd4") {
    const auto s = apps::buildCosmoSpecsFd4();
    return sim::simulate(s.program, s.simOptions);
  }
  if (name == "wrf") {
    const auto s = apps::buildWrf();
    return sim::simulate(s.program, s.simOptions);
  }
  throw Error("unknown scenario '" + name +
              "' (expected cosmo-specs | cosmo-specs-fd4 | wrf)");
}

int usage() {
  std::cout <<
      "usage: trace_tool <command> [args]\n"
      "  generate <scenario> <out.pvt>  scenario: cosmo-specs |\n"
      "                                 cosmo-specs-fd4 | wrf\n"
      "  stats <in.pvt>                 trace statistics\n"
      "  validate <in.pvt>              structural validation\n"
      "  profile <in.pvt>               flat profile (top 20)\n"
      "  analyze <in.pvt>               dominant function + SOS analysis\n"
      "  dump <in.pvt>                  PVTX text dump\n"
      "  slice <in.pvt> <out.pvt> <startSec> <endSec>\n"
      "  export-json <in.pvt>           analysis as JSON\n"
      "  export-csv <in.pvt>            SOS matrix as CSV\n"
      "  archive <in.pvt> <dir>         write a PVTA archive\n"
      "  unarchive <dir> <out.pvt>      assemble an archive\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      // Demo mode: exercise the full round trip on a small scenario.
      std::cout << "(no arguments: running the self-contained demo)\n\n";
      apps::CosmoSpecsConfig cfg;
      cfg.gridX = 4;
      cfg.gridY = 4;
      cfg.timesteps = 20;
      const auto scenario = apps::buildCosmoSpecs(cfg);
      const trace::Trace tr =
          sim::simulate(scenario.program, scenario.simOptions);
      const std::string path = "trace_tool_demo.pvt";
      trace::saveBinaryFile(tr, path);
      const trace::Trace loaded = trace::loadBinaryFile(path);
      std::cout << trace::formatStats(trace::computeStats(loaded)) << '\n';
      const auto result = analysis::analyzeTrace(loaded);
      std::cout << analysis::formatAnalysis(loaded, result);
      std::cout << "\nwrote " << path << "; try: trace_tool analyze " << path
                << '\n';
      return 0;
    }

    const std::string cmd = argv[1];
    if (cmd == "generate") {
      if (argc != 4) {
        return usage();
      }
      const trace::Trace tr = generateScenario(argv[2]);
      trace::saveBinaryFile(tr, argv[3]);
      std::cout << "wrote " << argv[3] << " ("
                << trace::computeStats(tr).eventCount << " events)\n";
      return 0;
    }
    if (cmd == "slice") {
      if (argc != 6) {
        return usage();
      }
      const trace::Trace tr = trace::loadBinaryFile(argv[2]);
      const double startSec = std::stod(argv[4]);
      const double endSec = std::stod(argv[5]);
      const trace::Trace sliced = trace::sliceTime(
          tr, trace::secondsToTicks(startSec, tr.resolution),
          trace::secondsToTicks(endSec, tr.resolution));
      trace::saveBinaryFile(sliced, argv[3]);
      std::cout << "wrote " << argv[3] << " (" << sliced.eventCount()
                << " of " << tr.eventCount() << " events)\n";
      return 0;
    }
    if (cmd == "archive") {
      if (argc != 4) {
        return usage();
      }
      const trace::Trace tr = trace::loadBinaryFile(argv[2]);
      trace::saveArchive(tr, argv[3]);
      std::cout << "wrote PVTA archive " << argv[3] << " ("
                << tr.processCount() << " rank files)\n";
      return 0;
    }
    if (cmd == "unarchive") {
      if (argc != 4) {
        return usage();
      }
      const trace::Trace tr = trace::loadArchive(argv[2]);
      trace::saveBinaryFile(tr, argv[3]);
      std::cout << "wrote " << argv[3] << " (" << tr.eventCount()
                << " events)\n";
      return 0;
    }
    if (argc != 3) {
      return usage();
    }
    const trace::Trace tr = trace::loadBinaryFile(argv[2]);
    if (cmd == "stats") {
      std::cout << trace::formatStats(trace::computeStats(tr));
    } else if (cmd == "validate") {
      const auto issues = trace::validate(tr);
      if (issues.empty()) {
        std::cout << "trace is structurally valid\n";
      } else {
        for (const auto& issue : issues) {
          std::cout << "process " << issue.process << ", event "
                    << issue.eventIndex << ": " << issue.message << '\n';
        }
        return 1;
      }
    } else if (cmd == "profile") {
      const auto profile = profile::FlatProfile::build(tr);
      std::cout << profile::formatTopFunctions(tr, profile, 20);
    } else if (cmd == "analyze") {
      const auto result = analysis::analyzeTrace(tr);
      std::cout << analysis::formatAnalysis(tr, result);
    } else if (cmd == "dump") {
      trace::writeText(tr, std::cout);
    } else if (cmd == "export-json") {
      const auto result = analysis::analyzeTrace(tr);
      analysis::writeAnalysisJson(tr, result.selection, *result.sos,
                                  result.variation, std::cout);
    } else if (cmd == "export-csv") {
      const auto result = analysis::analyzeTrace(tr);
      analysis::writeSosMatrixCsv(*result.sos, std::cout);
    } else {
      return usage();
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "trace_tool: " << e.what() << '\n';
    return 1;
  }
}
