/// \file trace_tool.cpp
/// Command-line utility around the trace substrate:
///
///   trace_tool generate <scenario> <out.pvt>   write a case-study trace
///   trace_tool stats <in.pvt>                  print trace statistics
///   trace_tool validate <in.pvt>               structural validation
///   trace_tool profile <in.pvt>                top functions by time
///   trace_tool analyze <in.pvt>                full variation analysis
///   trace_tool dump <in.pvt>                   PVTX text dump to stdout
///   trace_tool slice <in.pvt> <out.pvt> <startSec> <endSec>
///   trace_tool export-json <in.pvt>            analysis as JSON to stdout
///   trace_tool export-csv <in.pvt>             SOS matrix CSV to stdout
///   trace_tool archive <in.pvt> <dir>          write a PVTA archive
///   trace_tool unarchive <dir> <out.pvt>       assemble an archive
///
/// Global option: --threads N runs the analysis commands (analyze,
/// export-json, export-csv and the demo) through the rank-sharded parallel
/// pipeline with N worker threads (0 = all hardware threads). Output is
/// bit-identical to the serial pipeline.
///
/// Scenarios: cosmo-specs | cosmo-specs-fd4 | wrf.
/// Without arguments, a self-contained demo runs (generate + analyze a
/// temporary COSMO-SPECS trace).

#include <iostream>
#include <string>
#include <vector>

#include "analysis/export.hpp"
#include "analysis/parallel.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "apps/wrf.hpp"
#include "profile/profile.hpp"
#include "trace/archive.hpp"
#include "trace/binary_io.hpp"
#include "trace/filter.hpp"
#include "trace/stats.hpp"
#include "trace/text_io.hpp"
#include "util/error.hpp"

namespace {

using namespace perfvar;

trace::Trace generateScenario(const std::string& name) {
  if (name == "cosmo-specs") {
    const auto s = apps::buildCosmoSpecs();
    return sim::simulate(s.program, s.simOptions);
  }
  if (name == "cosmo-specs-fd4") {
    const auto s = apps::buildCosmoSpecsFd4();
    return sim::simulate(s.program, s.simOptions);
  }
  if (name == "wrf") {
    const auto s = apps::buildWrf();
    return sim::simulate(s.program, s.simOptions);
  }
  throw Error("unknown scenario '" + name +
              "' (expected cosmo-specs | cosmo-specs-fd4 | wrf)");
}

int usage() {
  std::cout <<
      "usage: trace_tool [--threads N] <command> [args]\n"
      "  generate <scenario> <out.pvt>  scenario: cosmo-specs |\n"
      "                                 cosmo-specs-fd4 | wrf\n"
      "  stats <in.pvt>                 trace statistics\n"
      "  validate <in.pvt>              structural validation\n"
      "  profile <in.pvt>               flat profile (top 20)\n"
      "  analyze <in.pvt>               dominant function + SOS analysis\n"
      "  dump <in.pvt>                  PVTX text dump\n"
      "  slice <in.pvt> <out.pvt> <startSec> <endSec>\n"
      "  export-json <in.pvt>           analysis as JSON\n"
      "  export-csv <in.pvt>            SOS matrix as CSV\n"
      "  archive <in.pvt> <dir>         write a PVTA archive\n"
      "  unarchive <dir> <out.pvt>      assemble an archive\n"
      "\n"
      "  --threads N   run the analysis on N worker threads (0 = all\n"
      "                hardware threads); results are identical to serial\n";
  return 2;
}

/// Parallelism selected via --threads: 1 (default) = serial pipeline.
struct AnalysisRunner {
  std::size_t threads = 1;

  analysis::AnalysisResult run(const trace::Trace& tr) const {
    if (threads == 1) {
      return analysis::analyzeTrace(tr);
    }
    analysis::ParallelPipelineOptions opts;
    opts.threads = threads;
    return analysis::analyzeTraceParallel(tr, opts);
  }
};

}  // namespace

int main(int argc, char** argv) {
  try {
    AnalysisRunner runner;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--threads") {
        if (i + 1 >= argc) {
          std::cerr << "trace_tool: --threads needs a value\n";
          return usage();
        }
        const std::string value = argv[++i];
        try {
          if (value.empty() ||
              value.find_first_not_of("0123456789") != std::string::npos) {
            throw std::invalid_argument(value);
          }
          // 0 = all hardware threads (AnalysisRunner treats 1 as serial).
          runner.threads = static_cast<std::size_t>(std::stoul(value));
        } catch (const std::exception&) {
          std::cerr << "trace_tool: --threads expects a non-negative "
                       "integer, got '" << value << "'\n";
          return usage();
        }
      } else {
        args.push_back(arg);
      }
    }
    if (args.empty()) {
      // Demo mode: exercise the full round trip on a small scenario.
      std::cout << "(no arguments: running the self-contained demo)\n\n";
      apps::CosmoSpecsConfig cfg;
      cfg.gridX = 4;
      cfg.gridY = 4;
      cfg.timesteps = 20;
      const auto scenario = apps::buildCosmoSpecs(cfg);
      const trace::Trace tr =
          sim::simulate(scenario.program, scenario.simOptions);
      const std::string path = "trace_tool_demo.pvt";
      trace::saveBinaryFile(tr, path);
      const trace::Trace loaded = trace::loadBinaryFile(path);
      std::cout << trace::formatStats(trace::computeStats(loaded)) << '\n';
      const auto result = runner.run(loaded);
      std::cout << analysis::formatAnalysis(loaded, result);
      std::cout << "\nwrote " << path << "; try: trace_tool analyze " << path
                << '\n';
      return 0;
    }

    const std::string& cmd = args[0];
    if (cmd == "generate") {
      if (args.size() != 3) {
        return usage();
      }
      const trace::Trace tr = generateScenario(args[1]);
      trace::saveBinaryFile(tr, args[2]);
      std::cout << "wrote " << args[2] << " ("
                << trace::computeStats(tr).eventCount << " events)\n";
      return 0;
    }
    if (cmd == "slice") {
      if (args.size() != 5) {
        return usage();
      }
      const trace::Trace tr = trace::loadBinaryFile(args[1]);
      const double startSec = std::stod(args[3]);
      const double endSec = std::stod(args[4]);
      const trace::Trace sliced = trace::sliceTime(
          tr, trace::secondsToTicks(startSec, tr.resolution),
          trace::secondsToTicks(endSec, tr.resolution));
      trace::saveBinaryFile(sliced, args[2]);
      std::cout << "wrote " << args[2] << " (" << sliced.eventCount()
                << " of " << tr.eventCount() << " events)\n";
      return 0;
    }
    if (cmd == "archive") {
      if (args.size() != 3) {
        return usage();
      }
      const trace::Trace tr = trace::loadBinaryFile(args[1]);
      trace::saveArchive(tr, args[2]);
      std::cout << "wrote PVTA archive " << args[2] << " ("
                << tr.processCount() << " rank files)\n";
      return 0;
    }
    if (cmd == "unarchive") {
      if (args.size() != 3) {
        return usage();
      }
      const trace::Trace tr = trace::loadArchive(args[1]);
      trace::saveBinaryFile(tr, args[2]);
      std::cout << "wrote " << args[2] << " (" << tr.eventCount()
                << " events)\n";
      return 0;
    }
    if (args.size() != 2) {
      return usage();
    }
    const trace::Trace tr = trace::loadBinaryFile(args[1]);
    if (cmd == "stats") {
      std::cout << trace::formatStats(trace::computeStats(tr));
    } else if (cmd == "validate") {
      const auto issues = trace::validate(tr);
      if (issues.empty()) {
        std::cout << "trace is structurally valid\n";
      } else {
        for (const auto& issue : issues) {
          std::cout << "process " << issue.process << ", event "
                    << issue.eventIndex << ": " << issue.message << '\n';
        }
        return 1;
      }
    } else if (cmd == "profile") {
      const auto profile = profile::FlatProfile::build(tr);
      std::cout << profile::formatTopFunctions(tr, profile, 20);
    } else if (cmd == "analyze") {
      const auto result = runner.run(tr);
      std::cout << analysis::formatAnalysis(tr, result);
    } else if (cmd == "dump") {
      trace::writeText(tr, std::cout);
    } else if (cmd == "export-json") {
      const auto result = runner.run(tr);
      analysis::writeAnalysisJson(tr, result.selection, *result.sos,
                                  result.variation, std::cout);
    } else if (cmd == "export-csv") {
      const auto result = runner.run(tr);
      analysis::writeSosMatrixCsv(*result.sos, std::cout);
    } else {
      return usage();
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "trace_tool: " << e.what() << '\n';
    return 1;
  }
}
