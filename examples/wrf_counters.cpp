/// \file wrf_counters.cpp
/// Reproduction of the paper's third case study (Section VII-C): WRF on
/// 64 ranks shows ~25% MPI overhead; the SOS map blames rank 39 and the
/// FR_FPU_EXCEPTIONS_SSE_MICROTRAPS counter confirms floating-point
/// exceptions as the root cause.

#include <iostream>

#include "analysis/correlate.hpp"
#include "analysis/pipeline.hpp"
#include "apps/wrf.hpp"
#include "util/format.hpp"
#include "vis/heatmap.hpp"
#include "vis/timeline.hpp"

int main() {
  using namespace perfvar;

  std::cout << "=== WRF case study (floating-point exceptions) ===\n";
  const apps::WrfScenario scenario = apps::buildWrf();
  const trace::Trace tr = sim::simulate(scenario.program, scenario.simOptions);

  const analysis::AnalysisResult result = analysis::analyzeTrace(tr);

  // Overall MPI share of the iteration phase (paper: ~25%). Segments cover
  // exactly the timesteps, so their sync fractions exclude the init/IO
  // lead-in.
  const auto syncFractions = result.sos->syncFractionPerIteration();
  double mpiAvg = 0.0;
  for (const double f : syncFractions) {
    mpiAvg += f;
  }
  mpiAvg /= static_cast<double>(syncFractions.size());
  std::cout << "MPI share of the iteration phase: " << fmt::percent(mpiAvg)
            << "\n\n";
  std::cout << analysis::formatAnalysis(tr, result) << '\n';

  vis::HeatmapOptions heat;
  heat.title = "WRF SOS-time (rank x timestep)";
  for (const auto& p : tr.processes) {
    heat.rowLabels.push_back(p.name);
  }
  vis::renderHeatmapSvg(result.sos->sosMatrixSeconds(), heat)
      .save("wrf_sos.svg");

  // Figure 6(c): the FP-exception counter, same layout.
  const auto fpeId = tr.metrics.find(scenario.fpExceptionMetricName);
  if (fpeId) {
    vis::HeatmapOptions counterHeat;
    counterHeat.title = "WRF FP exceptions (rank x timestep)";
    counterHeat.rowLabels = heat.rowLabels;
    vis::renderHeatmapSvg(result.sos->metricMatrix(*fpeId), counterHeat)
        .save("wrf_fpe.svg");

    const auto correlation = analysis::correlateMetric(*result.sos, *fpeId);
    std::cout << "counter validation: "
              << analysis::formatCorrelation(tr, correlation) << '\n';
  }

  const trace::ProcessId culprit = result.variation.slowestProcess();
  std::cout << "slowest process: " << tr.processes[culprit].name
            << " (expected Rank " << scenario.culpritRank << ")\n"
            << "wrote wrf_{sos,fpe}.svg\n";
  return culprit == scenario.culpritRank ? 0 : 1;
}
