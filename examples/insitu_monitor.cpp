/// \file insitu_monitor.cpp
/// The paper's "in-situ analysis ... is feasible as well" extension, made
/// concrete end-to-end: an analysis server runs in this process (served
/// over an anonymous socket pair, exactly as `trace_tool serve` would
/// over a Unix socket), and a measurement-side client streams the run to
/// it in time-window chunks. The server's StreamingSos raises an alert
/// the moment the interrupted invocation completes — long before the run
/// (or a post-mortem analysis) would end — and the alert frames travel
/// back over the wire to the subscribed client.

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/cosmo_specs_fd4.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "trace/binary_io.hpp"
#include "trace/filter.hpp"

int main() {
  using namespace perfvar;

  std::cout << "=== in-situ monitoring of COSMO-SPECS+FD4 ===\n";
  apps::CosmoSpecsFd4Config cfg;
  cfg.ranks = 48;
  cfg.blocksX = 16;
  cfg.blocksY = 16;
  cfg.iterations = 16;
  cfg.interruptRank = 20;
  cfg.interruptIteration = 9;
  const apps::CosmoSpecsFd4Scenario scenario = apps::buildCosmoSpecsFd4(cfg);
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);
  const std::string segmentFn =
      tr.functions.at(scenario.iterationFunction).name;

  // The server end of the wire; resident traces live as long as `srv`.
  server::Server srv;
  auto [serverEnd, clientEnd] = util::socketPair();
  srv.serveConnection(std::move(serverEnd));
  server::Client client{std::move(clientEnd)};

  auto opened = client.open("run", segmentFn + " threshold 8.0");
  std::cout << opened.payload << '\n';
  client.subscribe("run");

  // Stream the run in 8 time windows, as a live measurement layer would
  // flush its buffers: each chunk is a self-contained v2 image.
  std::size_t alerts = 0;
  bool correct = false;
  for (const trace::Trace& chunk : trace::splitByTime(tr, 8)) {
    std::ostringstream image;
    trace::writeBinary(chunk, image);
    const server::ClientResponse response =
        client.append("run", image.str());
    if (!response.ok()) {
      std::cout << "UNEXPECTED: append failed: " << response.payload
                << '\n';
      return 1;
    }
    for (const std::string& alert : response.alerts) {
      std::cout << "  ALERT " << alert << '\n';
      ++alerts;
      // formatStreamingAlert names the process and the segment index;
      // check the culprit is the interrupted rank's iteration.
      const std::string who =
          "process " + std::to_string(scenario.culpritRank) + " ";
      const std::string which =
          "segment " + std::to_string(scenario.culpritIteration) + " ";
      correct |= alert.find(who) != std::string::npos &&
                 alert.find(which) != std::string::npos;
    }
    std::cout << response.payload << '\n';
  }

  const server::ClientResponse stats = client.stats("run");
  std::cout << stats.payload;
  client.shutdownServer();

  if (alerts > 0 && correct) {
    std::cout << "the interruption was flagged while \"running\" - no "
                 "post-mortem pass needed\n";
    return 0;
  }
  std::cout << "UNEXPECTED: the anomaly was not flagged\n";
  return 1;
}
