/// \file insitu_monitor.cpp
/// The paper's "in-situ analysis ... is feasible as well" extension, made
/// concrete: events stream into a StreamingSos analyzer the way a live
/// measurement layer would deliver them, and the online monitor raises an
/// alert the moment the interrupted invocation completes - long before
/// the run (or a post-mortem analysis) would end.

#include <iostream>

#include "analysis/streaming.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "util/format.hpp"

int main() {
  using namespace perfvar;

  std::cout << "=== in-situ monitoring of COSMO-SPECS+FD4 ===\n";
  apps::CosmoSpecsFd4Config cfg;
  cfg.ranks = 48;
  cfg.blocksX = 16;
  cfg.blocksY = 16;
  cfg.iterations = 16;
  cfg.interruptRank = 20;
  cfg.interruptIteration = 9;
  const apps::CosmoSpecsFd4Scenario scenario = apps::buildCosmoSpecsFd4(cfg);
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);

  analysis::StreamingOptions opts;
  opts.alertThreshold = 8.0;
  analysis::StreamingSos monitor(tr, scenario.iterationFunction, opts);

  std::size_t alerts = 0;
  bool correct = false;
  monitor.setAlertCallback([&](const analysis::StreamingAlert& alert) {
    ++alerts;
    const auto& seg = alert.segment.segment;
    std::cout << "  ALERT after " << monitor.segmentsCompleted()
              << " segments: " << tr.processes[seg.process].name
              << ", iteration " << seg.index << ", SOS "
              << fmt::seconds(tr.toSeconds(alert.segment.sosTime)) << " (z "
              << fmt::fixed(alert.robustZ, 1) << ")\n";
    correct |= seg.process == scenario.culpritRank &&
               seg.index == scenario.culpritIteration;
  });

  analysis::StreamingSos::replay(tr, monitor);
  std::cout << "processed " << monitor.segmentsCompleted()
            << " segments, " << alerts << " alert(s)\n";
  if (alerts > 0 && correct) {
    std::cout << "the interruption was flagged while \"running\" - no "
                 "post-mortem pass needed\n";
    return 0;
  }
  std::cout << "UNEXPECTED: the anomaly was not flagged\n";
  return 1;
}
