/// \file quickstart.cpp
/// Minimal end-to-end tour of the perfvar API:
///   1. record (here: simulate) a parallel program trace,
///   2. run the variation-analysis pipeline (dominant function -> SOS-times
///      -> hotspot report),
///   3. render the SOS heatmap that guides the analyst to the bottleneck.

#include <cstdio>
#include <iostream>

#include "analysis/pipeline.hpp"
#include "sim/program.hpp"
#include "sim/simulator.hpp"
#include "trace/stats.hpp"
#include "vis/heatmap.hpp"

int main() {
  using namespace perfvar;

  // --- 1. describe a small iterative MPI program: 8 ranks, 40 iterations,
  //        rank 5 carries 60% more load than the others. ------------------
  constexpr std::uint32_t kRanks = 8;
  constexpr std::size_t kIterations = 40;
  sim::ProgramBuilder program(kRanks);
  const auto fStep = program.function("solver_step", "SOLVER");
  const auto fCompute = program.function("stencil_update", "SOLVER");
  for (std::size_t it = 0; it < kIterations; ++it) {
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      program.enter(r, fStep);
      const double work = r == 5 ? 1.6e-3 : 1.0e-3;
      program.compute(r, fCompute, work);
      program.allreduce(r, 64);
      program.leave(r, fStep);
    }
  }

  sim::SimOptions simOptions;
  simOptions.noise.sigma = 0.02;
  const trace::Trace tr = sim::simulate(program.finish(), simOptions);
  std::cout << "--- trace ---\n" << trace::formatStats(trace::computeStats(tr));

  // --- 2. run the paper's pipeline. ---------------------------------------
  const analysis::AnalysisResult result = analysis::analyzeTrace(tr);
  std::cout << '\n' << analysis::formatAnalysis(tr, result);

  // --- 3. visualize: one row per rank, one column per iteration, color =
  //        SOS-time on the cold/hot scale. Rank 5 lights up red. -----------
  vis::HeatmapOptions heat;
  heat.title = "SOS-time per (rank, iteration)";
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    heat.rowLabels.push_back(tr.processes[r].name);
  }
  const auto matrix = result.sos->sosMatrixSeconds();
  std::cout << '\n' << vis::renderHeatmapAscii(matrix, heat, 80);

  vis::renderHeatmapSvg(matrix, heat).save("quickstart_sos.svg");
  vis::renderHeatmapImage(matrix, heat).savePpm("quickstart_sos.ppm");
  std::cout << "\nwrote quickstart_sos.svg and quickstart_sos.ppm\n";

  // The report names the culprit; assert it for good measure.
  const trace::ProcessId worst = result.variation.slowestProcess();
  std::cout << "slowest process: " << tr.processes[worst].name << '\n';
  return worst == 5 ? 0 : 1;
}
