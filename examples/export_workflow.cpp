/// \file export_workflow.cpp
/// The "focused subsequent analysis" workflow around the pipeline:
///   1. analyze a run and export the results (CSV matrices + JSON) for
///      external notebooks,
///   2. slice the trace to the hottest iteration (the paper's filtered
///      re-measurement, done post-hoc) and re-analyze it standalone,
///   3. render the spatial topology view of the per-rank SOS totals,
///      exposing the physical shape of the bottleneck (the cloud).

#include <fstream>
#include <iostream>

#include "analysis/export.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "trace/filter.hpp"
#include "util/format.hpp"
#include "vis/heatmap.hpp"

int main() {
  using namespace perfvar;

  apps::CosmoSpecsConfig cfg;
  cfg.gridX = 10;
  cfg.gridY = 10;
  cfg.timesteps = 40;
  const apps::CosmoSpecsScenario scenario = apps::buildCosmoSpecs(cfg);
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);

  // --- 1. analyze and export ------------------------------------------------
  const analysis::AnalysisResult result = analysis::analyzeTrace(tr);
  {
    std::ofstream csv("cosmo_specs_sos.csv");
    analysis::exportReport(tr, result, analysis::ExportFormat::Csv, csv);
    std::ofstream iters("cosmo_specs_iterations.csv");
    analysis::exportReport(tr, result, analysis::ExportFormat::CsvIterations,
                           iters);
    std::ofstream json("cosmo_specs_analysis.json");
    analysis::exportReport(tr, result, analysis::ExportFormat::Json, json);
  }
  std::cout << "exported cosmo_specs_{sos,iterations}.csv and "
               "cosmo_specs_analysis.json\n";

  // --- 2. slice the hottest iteration and re-analyze -------------------------
  const auto& iterations = result.variation.iterations;
  std::size_t hottest = 0;
  for (std::size_t i = 1; i < iterations.size(); ++i) {
    if (iterations[i].maxSos > iterations[hottest].maxSos) {
      hottest = i;
    }
  }
  const auto& seg =
      result.sos->process(result.variation.slowestProcess())[hottest];
  const trace::Trace sliced =
      trace::sliceTime(tr, seg.segment.enter, seg.segment.leave);
  std::cout << "sliced iteration " << hottest << " ("
            << fmt::seconds(tr.toSeconds(seg.segment.inclusive()))
            << ", " << sliced.eventCount() << " events of "
            << tr.eventCount() << ")\n";
  const analysis::SosResult slicedSos =
      analysis::analyzeSos(sliced, result.segmentFunction);
  const auto slicedReport = analysis::analyzeVariation(slicedSos);
  std::cout << "slice blames "
            << sliced.processes[slicedReport.slowestProcess()].name
            << " (full-run culprit: "
            << tr.processes[result.variation.slowestProcess()].name << ")\n";

  // --- 3. topology view --------------------------------------------------------
  vis::HeatmapOptions topo;
  topo.title = "total SOS-time on the 10x10 process grid";
  vis::renderTopologySvg(result.sos->totalSosPerProcess(), cfg.gridX,
                         cfg.gridY, topo)
      .save("cosmo_specs_topology.svg");
  vis::renderTopologyImage(result.sos->totalSosPerProcess(), cfg.gridX,
                           cfg.gridY, topo)
      .savePpm("cosmo_specs_topology.ppm");
  std::cout << "wrote cosmo_specs_topology.{svg,ppm} - the hotspot has the "
               "cloud's spatial footprint\n";

  return slicedReport.slowestProcess() ==
                 result.variation.slowestProcess()
             ? 0
             : 1;
}
