/// \file fd4_drilldown.cpp
/// Reproduction of the paper's second case study (Section VII-B):
/// COSMO-SPECS+FD4 on 200 ranks is well balanced, but one coupling
/// iteration is slow. Coarse segmentation (the dominant function) blames
/// rank 20; refining the segmentation to the next candidate isolates the
/// single interrupted invocation, whose low cycle count reveals an OS
/// interruption.

#include <iostream>

#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "util/format.hpp"
#include "vis/heatmap.hpp"

int main() {
  using namespace perfvar;

  std::cout << "=== COSMO-SPECS+FD4 case study (process interruption) ===\n";
  const apps::CosmoSpecsFd4Scenario scenario = apps::buildCosmoSpecsFd4();
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions);

  // --- coarse analysis: segments = coupling iterations --------------------
  analysis::PipelineOptions coarse;
  const analysis::AnalysisResult coarseResult =
      analysis::analyzeTrace(tr, coarse);
  std::cout << "[coarse] segmentation by "
            << tr.functions.name(coarseResult.segmentFunction) << '\n';
  const auto& top = coarseResult.variation.hotspots.front();
  std::cout << "[coarse] top hotspot: " << tr.processes[top.process].name
            << ", iteration " << top.iteration << " (z "
            << fmt::fixed(top.globalZ, 1) << ")\n";

  vis::HeatmapOptions heat;
  heat.title = "FD4 coarse SOS-time (rank x iteration)";
  vis::renderHeatmapSvg(coarseResult.sos->sosMatrixSeconds(), heat)
      .save("fd4_sos_coarse.svg");

  // --- fine analysis: next dominant candidate = specs_timestep ------------
  analysis::PipelineOptions fine;
  fine.candidateIndex = 1;
  const analysis::AnalysisResult fineResult = analysis::analyzeTrace(tr, fine);
  std::cout << "[fine]   segmentation by "
            << tr.functions.name(fineResult.segmentFunction) << '\n';
  const auto& fineTop = fineResult.variation.hotspots.front();
  std::cout << "[fine]   top hotspot: " << tr.processes[fineTop.process].name
            << ", invocation " << fineTop.iteration << " (z "
            << fmt::fixed(fineTop.globalZ, 1) << ")\n";
  vis::renderHeatmapSvg(fineResult.sos->sosMatrixSeconds(), heat)
      .save("fd4_sos_fine.svg");

  // --- root cause: the cycle counter of the interrupted invocation --------
  const auto cyclesId = tr.metrics.find("PAPI_TOT_CYC");
  if (cyclesId) {
    const auto& seg =
        fineResult.sos->process(fineTop.process)[fineTop.iteration];
    const double seconds =
        tr.toSeconds(seg.segment.inclusive());
    const double cycles = seg.metricDelta[*cyclesId];
    const double effective = cycles / 2.5e9;  // simulated 2.5 GHz clock
    std::cout << "[root cause] invocation wall time "
              << fmt::seconds(seconds) << ", cycle-backed time "
              << fmt::seconds(effective) << " -> "
              << fmt::percent(1.0 - effective / seconds)
              << " of it the process was interrupted by the OS\n";
  }

  const bool ok = top.process == scenario.culpritRank &&
                  top.iteration == scenario.culpritIteration &&
                  fineTop.process == scenario.culpritRank &&
                  fineTop.iteration == scenario.culpritFineSegment;
  std::cout << (ok ? "ground truth confirmed" : "MISMATCH vs ground truth")
            << "; wrote fd4_sos_{coarse,fine}.svg\n";
  return ok ? 0 : 1;
}
