/// \file cosmo_specs_study.cpp
/// Reproduction of the paper's first case study (Section VII-A): the
/// COSMO-SPECS weather code on 100 ranks develops a growing load
/// imbalance because the static decomposition pins the (growing) cloud
/// to six ranks. The SOS-time overlay points straight at them.

#include <iostream>

#include "analysis/baselines.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "trace/stats.hpp"
#include "util/format.hpp"
#include "vis/heatmap.hpp"
#include "vis/timeline.hpp"

int main() {
  using namespace perfvar;

  std::cout << "=== COSMO-SPECS case study (load imbalance) ===\n";
  const apps::CosmoSpecsScenario scenario = apps::buildCosmoSpecs();
  sim::SimReport simReport;
  const trace::Trace tr =
      sim::simulate(scenario.program, scenario.simOptions, &simReport);
  std::cout << "simulated " << tr.processCount() << " ranks, "
            << simReport.events << " events, makespan "
            << fmt::seconds(simReport.makespan) << "\n\n";

  // Timeline view (Figure 4(a)): purple SPECS dominates; MPI (red) grows.
  vis::TimelineOptions tl;
  tl.title = "COSMO-SPECS timeline (100 ranks)";
  tl.messageLines = false;
  auto colors = vis::FunctionColors::standard(tr);
  vis::renderTimelineImage(tr, colors, tl).savePpm("cosmo_specs_timeline.ppm");
  vis::renderTimelineSvg(tr, colors, tl).save("cosmo_specs_timeline.svg");

  const auto mpiShare = vis::paradigmShareOverTime(tr, 10);
  std::cout << "MPI share over run (10 bins): ";
  for (const double s : mpiShare[static_cast<std::size_t>(
           trace::Paradigm::MPI)]) {
    std::cout << fmt::percent(s) << ' ';
  }
  std::cout << "\n\n";

  // The paper's pipeline (Figure 4(b)).
  const analysis::AnalysisResult result = analysis::analyzeTrace(tr);
  std::cout << analysis::formatAnalysis(tr, result) << '\n';

  vis::HeatmapOptions heat;
  heat.title = "COSMO-SPECS SOS-time per (rank, iteration)";
  for (const auto& p : tr.processes) {
    heat.rowLabels.push_back(p.name);
  }
  const auto matrix = result.sos->sosMatrixSeconds();
  vis::renderHeatmapImage(matrix, heat).savePpm("cosmo_specs_sos.ppm");
  vis::renderHeatmapSvg(matrix, heat).save("cosmo_specs_sos.svg");
  std::cout << vis::renderHeatmapAscii(matrix, heat, 60) << '\n';

  // Contrast with the plain segment-duration baseline: barriers smear the
  // imbalance over all ranks, hiding the culprits.
  const auto sosOutcome = analysis::outcomeFromSos(*result.sos, "sos-time");
  const auto durOutcome =
      analysis::detectBySegmentDuration(tr, result.segmentFunction);
  std::cout << "rank of true culprit (process "
            << scenario.hottestRank << "):\n"
            << "  sos-time:         #" << sosOutcome.rankOf(
                   scenario.hottestRank)
            << " (separation z " << fmt::fixed(sosOutcome.topSeparation(), 1)
            << ")\n"
            << "  segment-duration: #" << durOutcome.rankOf(
                   scenario.hottestRank)
            << " (separation z " << fmt::fixed(durOutcome.topSeparation(), 1)
            << ")\n";
  std::cout << "wrote cosmo_specs_{timeline,sos}.{ppm,svg}\n";

  return sosOutcome.rankOf(scenario.hottestRank) == 0 ? 0 : 1;
}
