/// \file before_after_fix.cpp
/// The workflow the paper's first case study ends with: "A solution to
/// this performance problem is to introduce dynamic load balancing for
/// the SPECS model." This example verifies the fix quantitatively by
/// comparing the static-decomposition run (COSMO-SPECS) against the
/// FD4-balanced run (COSMO-SPECS+FD4) with the run-comparison module,
/// and charts both runs' synchronization share.

#include <iostream>

#include "analysis/compare.hpp"
#include "analysis/pipeline.hpp"
#include "apps/cosmo_specs.hpp"
#include "apps/cosmo_specs_fd4.hpp"
#include "util/format.hpp"
#include "vis/chart.hpp"

int main() {
  using namespace perfvar;

  std::cout << "=== before/after: static decomposition vs FD4 balancing ===\n";

  // Before: static decomposition, growing cloud (moderate scale).
  apps::CosmoSpecsConfig staticCfg;
  staticCfg.gridX = 8;
  staticCfg.gridY = 8;
  staticCfg.timesteps = 24;
  const auto staticScenario = apps::buildCosmoSpecs(staticCfg);
  const trace::Trace staticTrace =
      sim::simulate(staticScenario.program, staticScenario.simOptions);

  // After: the same rank count with FD4 dynamic balancing (and no
  // injected interruption - we want the balancing effect in isolation).
  apps::CosmoSpecsFd4Config fd4Cfg;
  fd4Cfg.ranks = 64;
  fd4Cfg.blocksX = 32;
  fd4Cfg.blocksY = 32;
  fd4Cfg.iterations = 24;
  fd4Cfg.innerTimesteps = 1;
  fd4Cfg.interruptRank = 0;
  fd4Cfg.interruptIteration = 0;
  fd4Cfg.interruptInnerStep = 0;
  fd4Cfg.interruptSeconds = 0.0;  // no anomaly
  const auto fd4Scenario = apps::buildCosmoSpecsFd4(fd4Cfg);
  const trace::Trace fd4Trace =
      sim::simulate(fd4Scenario.program, fd4Scenario.simOptions);

  const auto staticResult = analysis::analyzeTrace(staticTrace);
  const auto fd4Result = analysis::analyzeTrace(fd4Trace);

  const analysis::RunComparison cmp =
      analysis::compareRuns(*staticResult.sos, *fd4Result.sos);
  std::cout << analysis::formatComparison(cmp, "static", "fd4") << '\n';

  // Chart: sync share per iteration, both runs.
  vis::Series before;
  before.label = "static decomposition";
  before.ys = staticResult.sos->syncFractionPerIteration();
  before.color = vis::seriesColor(1);
  vis::Series after;
  after.label = "FD4 balanced";
  after.ys = fd4Result.sos->syncFractionPerIteration();
  after.color = vis::seriesColor(2);
  vis::ChartOptions chart;
  chart.title = "synchronization share per iteration";
  chart.xLabel = "iteration";
  chart.percentY = true;
  chart.yMin = 0.0;
  chart.yMax = 1.0;
  vis::renderLineChart({before, after}, chart).save("before_after_sync.svg");
  std::cout << "wrote before_after_sync.svg\n";

  const bool improved = cmp.meanImbalanceB < 0.5 * cmp.meanImbalanceA &&
                        cmp.syncShareB < cmp.syncShareA;
  std::cout << (improved
                    ? "FD4 removes the imbalance the SOS analysis exposed"
                    : "UNEXPECTED: no improvement measured")
            << '\n';
  return improved ? 0 : 1;
}
