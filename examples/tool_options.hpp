#ifndef PERFVAR_EXAMPLES_TOOL_OPTIONS_HPP
#define PERFVAR_EXAMPLES_TOOL_OPTIONS_HPP

/// \file tool_options.hpp
/// The shared command-line option parser of trace_tool.
///
/// Every trace_tool subcommand accepts the same global options; before
/// this header they were parsed by an inline loop in main() that each new
/// option grew ad hoc. parseToolOptions() is the single definition of
/// that surface: one pass over argv that fills a ToolOptions, rejects
/// unknown flags, and leaves positional arguments (command + its args) in
/// order. Header-only so scripted front ends and the unit tests exercise
/// the exact production parser.
///
/// Exit-code contract shared by every front end built on this parser:
///   0  success
///   1  runtime/analysis error (unreadable trace, failed validation, ...)
///   2  usage error (unknown command/option, malformed arguments) — the
///      caller maps ParseStatus::Error to this
/// (`lint` overloads 1/2 with its own meaning; see trace_tool.cpp.)

#include <cstdint>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "trace/binary_io.hpp"

namespace perfvar::tool {

/// All global options of trace_tool, with their defaults.
struct ToolOptions {
  /// --threads N: analysis/decode worker threads (0 = hardware, 1 = serial).
  std::size_t threads = 1;
  /// --format v1|v2: binary layout written by generate/slice/archive.
  std::uint32_t format = trace::kBinaryFormatVersion;
  /// --salvage: load damaged inputs in recovery mode.
  bool salvage = false;
  /// --verify: info only — add a salvage dry run.
  bool verify = false;
  /// --lazy: open inputs out-of-core (mmap + per-rank lazy decode)
  /// instead of materializing the whole trace up front.
  bool lazy = false;
  /// --verbose: analysis commands append scheduler diagnostics
  /// (per-worker thread-pool counters) after their report.
  bool verbose = false;
  /// --shard-budget-mb N: decoded-shard LRU budget of --lazy (MiB).
  std::size_t shardBudgetMb = 256;
  /// --budget-mb N: serve only — global resident-trace budget (MiB).
  std::size_t budgetMb = 0;
  /// --session-budget-mb N: serve only — per-session budget (MiB).
  std::size_t sessionBudgetMb = 0;
  /// --journal-dir D: serve only — write-ahead journal directory for
  /// live streaming traces (empty = journaling off).
  std::string journalDir;
  /// --recover: serve only — replay --journal-dir on startup.
  bool recover = false;
  /// --journal-fsync: serve only — fsync the journal after every record.
  bool journalFsync = false;
  /// --reorder-window-bytes N: serve only — buffer for out-of-order
  /// streamed chunks (0 = strict time-ordered appends).
  std::size_t reorderWindowBytes = 0;
  /// --send-timeout-ms N: serve only — per-send poll timeout before a
  /// slow peer is treated as dead (0 = block forever).
  std::size_t sendTimeoutMs = 5000;
  /// --retry N: connect only — connection attempts before giving up.
  std::size_t retry = 50;
  /// --retry-delay-ms N: connect only — initial backoff delay; doubles
  /// per attempt up to 2 s.
  std::size_t retryDelayMs = 100;
  /// --json: lint only — JSON report instead of text.
  bool lintJson = false;
  /// --fail-on S: lint only — severity that fails the run.
  lint::Severity lintFailOn = lint::Severity::Warning;
  /// --disable R: lint only — suppressed rule ids (repeatable).
  std::vector<std::string> lintDisabled;
  /// --only I[,I...]: lint only — run exactly these rule ids
  /// (comma-separated, repeatable; validated against the registry).
  std::vector<std::string> lintOnly;
  /// --exclude I[,I...]: lint only — skip these rule ids
  /// (comma-separated, repeatable; validated against the registry).
  std::vector<std::string> lintExclude;
  /// Non-option arguments in order: command, then its operands.
  std::vector<std::string> positional;
};

/// Outcome of parseToolOptions().
enum class ParseStatus {
  Ok,    ///< options filled in, proceed with ToolOptions::positional
  Help,  ///< --help/-h seen: print usage, exit 0
  Error, ///< bad flag/value: report `error`, exit 2
};

/// Strict non-negative integer parse (digits only, no sign/whitespace).
inline bool parseSize(const std::string& value, std::size_t& out) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  try {
    out = static_cast<std::size_t>(std::stoull(value));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

/// Append the comma-separated ids of `value` to `out`. Empty segments
/// (leading/trailing/doubled commas, or an empty value) are rejected.
inline bool parseIdList(const std::string& value,
                        std::vector<std::string>& out) {
  std::size_t begin = 0;
  while (begin <= value.size()) {
    const std::size_t comma = value.find(',', begin);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    if (end == begin) {
      return false;
    }
    out.push_back(value.substr(begin, end - begin));
    if (comma == std::string::npos) {
      return true;
    }
    begin = comma + 1;
  }
  return false;
}

/// Full-token floating-point parse.
inline bool parseDouble(const std::string& value, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(value, &pos);
    return pos == value.size();
  } catch (const std::exception&) {
    return false;
  }
}

/// Parse argv[1..argc) into `options`. On Error, `error` holds a one-line
/// message (no trailing newline). Unknown options (any other token
/// starting with '-') are rejected; everything else is positional.
inline ParseStatus parseToolOptions(int argc, const char* const* argv,
                                    ToolOptions& options,
                                    std::string& error) {
  const auto needsValue = [&](const std::string& flag, int i) {
    if (i + 1 >= argc) {
      error = flag + " needs a value";
      return false;
    }
    return true;
  };
  const auto badValue = [&](const std::string& flag,
                            const std::string& expected,
                            const std::string& value) {
    error = flag + " expects " + expected + ", got '" + value + "'";
    return ParseStatus::Error;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return ParseStatus::Help;
    }
    if (arg == "--threads") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      const std::string value = argv[++i];
      // 0 = all hardware threads; 1 = serial.
      if (!parseSize(value, options.threads)) {
        return badValue(arg, "a non-negative integer", value);
      }
    } else if (arg == "--format") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      const std::string value = argv[++i];
      if (value == "v1") {
        options.format = trace::kBinaryFormatV1;
      } else if (value == "v2") {
        options.format = trace::kBinaryFormatV2;
      } else {
        return badValue(arg, "v1 or v2", value);
      }
    } else if (arg == "--shard-budget-mb") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      const std::string value = argv[++i];
      if (!parseSize(value, options.shardBudgetMb)) {
        return badValue(arg, "a non-negative integer", value);
      }
    } else if (arg == "--budget-mb") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      const std::string value = argv[++i];
      if (!parseSize(value, options.budgetMb)) {
        return badValue(arg, "a non-negative integer", value);
      }
    } else if (arg == "--session-budget-mb") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      const std::string value = argv[++i];
      if (!parseSize(value, options.sessionBudgetMb)) {
        return badValue(arg, "a non-negative integer", value);
      }
    } else if (arg == "--journal-dir") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      options.journalDir = argv[++i];
    } else if (arg == "--reorder-window-bytes") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      const std::string value = argv[++i];
      if (!parseSize(value, options.reorderWindowBytes)) {
        return badValue(arg, "a non-negative integer", value);
      }
    } else if (arg == "--send-timeout-ms") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      const std::string value = argv[++i];
      if (!parseSize(value, options.sendTimeoutMs)) {
        return badValue(arg, "a non-negative integer", value);
      }
    } else if (arg == "--retry") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      const std::string value = argv[++i];
      if (!parseSize(value, options.retry)) {
        return badValue(arg, "a non-negative integer", value);
      }
    } else if (arg == "--retry-delay-ms") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      const std::string value = argv[++i];
      if (!parseSize(value, options.retryDelayMs)) {
        return badValue(arg, "a non-negative integer", value);
      }
    } else if (arg == "--recover") {
      options.recover = true;
    } else if (arg == "--journal-fsync") {
      options.journalFsync = true;
    } else if (arg == "--salvage") {
      options.salvage = true;
    } else if (arg == "--verify") {
      options.verify = true;
    } else if (arg == "--lazy") {
      options.lazy = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--json") {
      options.lintJson = true;
    } else if (arg == "--fail-on") {
      if (!needsValue(arg, i)) return ParseStatus::Error;
      const std::string value = argv[++i];
      if (value != "info" && value != "warning" && value != "error") {
        return badValue(arg, "info, warning or error", value);
      }
      options.lintFailOn = lint::severityFromName(value);
    } else if (arg == "--disable") {
      if (i + 1 >= argc) {
        error = "--disable needs a rule id";
        return ParseStatus::Error;
      }
      options.lintDisabled.emplace_back(argv[++i]);
    } else if (arg == "--only" || arg == "--exclude") {
      if (i + 1 >= argc) {
        error = arg + " needs a comma-separated rule id list";
        return ParseStatus::Error;
      }
      const std::string value = argv[++i];
      auto& list = arg == "--only" ? options.lintOnly : options.lintExclude;
      if (!parseIdList(value, list)) {
        return badValue(arg, "a comma-separated rule id list", value);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      error = "unknown option '" + arg + "'";
      return ParseStatus::Error;
    } else {
      options.positional.push_back(arg);
    }
  }
  return ParseStatus::Ok;
}

}  // namespace perfvar::tool

#endif  // PERFVAR_EXAMPLES_TOOL_OPTIONS_HPP
