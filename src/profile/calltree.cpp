#include "profile/calltree.hpp"

#include <sstream>

#include "trace/replay.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace perfvar::profile {

CallTreeNode& CallTreeNode::childFor(trace::FunctionId f) {
  for (auto& c : children) {
    if (c.function == f) {
      return c;
    }
  }
  children.push_back(CallTreeNode{});
  children.back().function = f;
  return children.back();
}

const CallTreeNode* CallTreeNode::findChild(trace::FunctionId f) const {
  for (const auto& c : children) {
    if (c.function == f) {
      return &c;
    }
  }
  return nullptr;
}

std::size_t CallTreeNode::nodeCount() const {
  std::size_t n = 1;
  for (const auto& c : children) {
    n += c.nodeCount();
  }
  return n;
}

std::size_t CallTreeNode::maxDepth() const {
  std::size_t d = 0;
  for (const auto& c : children) {
    d = std::max(d, c.maxDepth());
  }
  return d + 1;
}

CallTree CallTree::build(trace::EventSpan events) {
  CallTree tree;
  // Path of nodes from the root to the currently open frame. Raw pointers
  // into the tree are safe here only because we never touch siblings of an
  // open path; children are appended below the deepest open node, and
  // vector reallocation of a node's `children` does not move the node
  // itself... except it can move *grandchildren* containers. To stay safe
  // we track the path as indices instead of pointers.
  std::vector<std::size_t> pathIndices;  // child index at each level

  const auto nodeAt = [&](std::size_t depth) -> CallTreeNode& {
    CallTreeNode* n = &tree.root_;
    for (std::size_t i = 0; i < depth; ++i) {
      n = &n->children[pathIndices[i]];
    }
    return *n;
  };

  trace::ReplayVisitor v;
  v.onEnter = [&](trace::FunctionId f, trace::Timestamp, std::size_t depth) {
    CallTreeNode& parent = nodeAt(depth);
    std::size_t idx = parent.children.size();
    for (std::size_t i = 0; i < parent.children.size(); ++i) {
      if (parent.children[i].function == f) {
        idx = i;
        break;
      }
    }
    if (idx == parent.children.size()) {
      parent.children.push_back(CallTreeNode{});
      parent.children.back().function = f;
    }
    if (pathIndices.size() <= depth) {
      pathIndices.resize(depth + 1);
    }
    pathIndices[depth] = idx;
  };
  v.onLeave = [&](const trace::Frame& frame) {
    CallTreeNode& node = nodeAt(frame.depth + 1);
    ++node.invocations;
    node.inclusive += frame.inclusive();
    node.exclusive += frame.exclusive();
  };
  trace::replayEvents(events, v);
  return tree;
}

CallTree CallTree::buildMerged(const trace::TraceView& tr) {
  CallTree merged;
  for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
    const trace::RankPin pin = tr.rank(p);
    merged.merge(build(pin.events()));
  }
  return merged;
}

void CallTree::mergeNode(CallTreeNode& into, const CallTreeNode& from) {
  into.invocations += from.invocations;
  into.inclusive += from.inclusive;
  into.exclusive += from.exclusive;
  for (const auto& child : from.children) {
    mergeNode(into.childFor(child.function), child);
  }
}

void CallTree::merge(const CallTree& other) {
  mergeNode(root_, other.root_);
}

const CallTreeNode* CallTree::findPath(
    const std::vector<trace::FunctionId>& path) const {
  const CallTreeNode* n = &root_;
  for (const trace::FunctionId f : path) {
    n = n->findChild(f);
    if (n == nullptr) {
      return nullptr;
    }
  }
  return n;
}

namespace {

void formatNode(const trace::TraceView& tr, const CallTreeNode& node,
                std::size_t depth, std::size_t maxDepth, std::ostream& os) {
  if (depth > maxDepth) {
    return;
  }
  if (node.function != trace::kInvalidFunction) {
    os << std::string(2 * (depth - 1), ' ') << tr.functions().name(node.function)
       << "  [calls " << node.invocations << ", incl "
       << fmt::seconds(tr.toSeconds(node.inclusive)) << ", excl "
       << fmt::seconds(tr.toSeconds(node.exclusive)) << "]\n";
  }
  for (const auto& c : node.children) {
    formatNode(tr, c, depth + 1, maxDepth, os);
  }
}

}  // namespace

std::string formatCallTree(const trace::TraceView& tr, const CallTree& tree,
                           std::size_t maxDepth) {
  std::ostringstream os;
  formatNode(tr, tree.root(), 0, maxDepth, os);
  return os.str();
}

}  // namespace perfvar::profile
