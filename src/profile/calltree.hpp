#ifndef PERFVAR_PROFILE_CALLTREE_HPP
#define PERFVAR_PROFILE_CALLTREE_HPP

/// \file calltree.hpp
/// Call-path trees (calling-context trees) built from traces.
///
/// Each node represents one call path (root -> ... -> function) with
/// accumulated statistics. Per-process trees can be merged into one
/// cross-process tree to answer "where below main is the time spent".

#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::profile {

/// One call-path node.
struct CallTreeNode {
  trace::FunctionId function = trace::kInvalidFunction;
  std::uint64_t invocations = 0;
  trace::Timestamp inclusive = 0;
  trace::Timestamp exclusive = 0;
  std::vector<CallTreeNode> children;  ///< ordered by first occurrence

  /// Child for `f`, creating it if absent.
  CallTreeNode& childFor(trace::FunctionId f);

  /// Child for `f` or nullptr.
  const CallTreeNode* findChild(trace::FunctionId f) const;

  /// Total number of nodes in this subtree (including this node).
  std::size_t nodeCount() const;

  /// Maximum depth of this subtree (a leaf has depth 1).
  std::size_t maxDepth() const;
};

/// Call tree of one process or of the merged trace. The root is a
/// synthetic node (function == kInvalidFunction) whose children are the
/// top-level functions.
class CallTree {
public:
  /// Build the call tree of a single event stream.
  static CallTree build(trace::EventSpan events);
  static CallTree build(const trace::ProcessTrace& process) {
    return build(
        trace::EventSpan(process.events.data(), process.events.size()));
  }

  /// Build the merged call tree of all processes of a trace.
  static CallTree buildMerged(const trace::TraceView& trace);

  const CallTreeNode& root() const { return root_; }

  /// Merge another tree into this one (paths unified by function ids).
  void merge(const CallTree& other);

  /// Total node count excluding the synthetic root.
  std::size_t nodeCount() const { return root_.nodeCount() - 1; }

  /// Find the node for an explicit call path (functions from the top-level
  /// function downward); nullptr if the path never occurred.
  const CallTreeNode* findPath(const std::vector<trace::FunctionId>& path) const;

private:
  static void mergeNode(CallTreeNode& into, const CallTreeNode& from);

  CallTreeNode root_;
};

/// Indented multi-line rendering of a call tree (up to `maxDepth` levels).
std::string formatCallTree(const trace::TraceView& trace, const CallTree& tree,
                           std::size_t maxDepth);

}  // namespace perfvar::profile

#endif  // PERFVAR_PROFILE_CALLTREE_HPP
