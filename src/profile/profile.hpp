#ifndef PERFVAR_PROFILE_PROFILE_HPP
#define PERFVAR_PROFILE_PROFILE_HPP

/// \file profile.hpp
/// Flat profiles: per-function inclusive/exclusive time and invocation
/// counts, per process and aggregated across the whole trace.
///
/// Inclusive vs. exclusive time follows the paper's Figure 1: the inclusive
/// time of an invocation spans enter to leave including children; the
/// exclusive time excludes the inclusive times of direct children.
///
/// Note on recursion: when a function appears on the stack within itself,
/// each invocation still contributes its full inclusive span, so the
/// aggregated inclusive time of a recursive function can exceed wall time.
/// This matches the conventional trace-profile semantics (and Score-P).

#include <string>
#include <vector>

#include "trace/replay.hpp"
#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::profile {

/// Accumulated statistics of one function on one process (or aggregated).
struct FunctionStats {
  trace::FunctionId function = trace::kInvalidFunction;
  std::uint64_t invocations = 0;
  trace::Timestamp inclusive = 0;  ///< ticks
  trace::Timestamp exclusive = 0;  ///< ticks
  trace::Timestamp minInclusive = 0;
  trace::Timestamp maxInclusive = 0;

  void add(trace::Timestamp inc, trace::Timestamp exc);
  void merge(const FunctionStats& other);
};

/// Flat profile of a trace.
class FlatProfile {
public:
  /// Build the profile of a structurally valid trace (accepts a Trace via
  /// the implicit TraceView conversion).
  static FlatProfile build(const trace::TraceView& trace);

  /// Stats of a single process (row `p` of the full profile). Used by the
  /// parallel pipeline to shard the replay by rank; build() is implemented
  /// on top of it, so sharded and serial profiles are identical.
  static std::vector<FunctionStats> buildProcess(const trace::TraceView& trace,
                                                 trace::ProcessId p);

  /// The original std::function-visitor row builder, retained as the
  /// differential oracle for the inlined replay kernel (and as perfbench's
  /// pre-optimization baseline). Must stay bit-identical to buildProcess.
  static std::vector<FunctionStats> buildProcessReference(
      const trace::TraceView& trace, trace::ProcessId p);

  /// Assemble a full profile from per-process rows (as produced by
  /// buildProcess, one row per process of `trace`), aggregating in
  /// ascending process order. All aggregation is integer sums and min/max,
  /// so the result does not depend on how the rows were computed.
  static FlatProfile fromPerProcess(
      const trace::TraceView& trace,
      std::vector<std::vector<FunctionStats>> perProcess);

  std::size_t processCount() const { return perProcess_.size(); }

  /// Stats of `f` on process `p` (zeroed if the function never ran there).
  const FunctionStats& process(trace::ProcessId p, trace::FunctionId f) const;

  /// Aggregated stats of `f` across all processes.
  const FunctionStats& aggregated(trace::FunctionId f) const;

  /// All aggregated stats with at least one invocation, sorted by
  /// descending aggregated inclusive time.
  std::vector<FunctionStats> byInclusiveTime() const;

  /// All aggregated stats with at least one invocation, sorted by
  /// descending aggregated exclusive time.
  std::vector<FunctionStats> byExclusiveTime() const;

  /// Per-process total exclusive time of functions accepted by `keep`
  /// (e.g. non-MPI functions): the classic profile view of computational
  /// load per rank.
  std::vector<trace::Timestamp> exclusiveTimePerProcess(
      const std::vector<bool>& keep) const;

  std::size_t functionCount() const { return aggregated_.size(); }

private:
  std::vector<std::vector<FunctionStats>> perProcess_;  ///< [proc][func]
  std::vector<FunctionStats> aggregated_;               ///< [func]
};

/// Render the top-n functions of a profile as a monospace table.
std::string formatTopFunctions(const trace::TraceView& trace,
                               const FlatProfile& profile, std::size_t n);

}  // namespace perfvar::profile

#endif  // PERFVAR_PROFILE_PROFILE_HPP
