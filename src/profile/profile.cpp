#include "profile/profile.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/format.hpp"

namespace perfvar::profile {

void FunctionStats::add(trace::Timestamp inc, trace::Timestamp exc) {
  if (invocations == 0) {
    minInclusive = inc;
    maxInclusive = inc;
  } else {
    minInclusive = std::min(minInclusive, inc);
    maxInclusive = std::max(maxInclusive, inc);
  }
  ++invocations;
  inclusive += inc;
  exclusive += exc;
}

void FunctionStats::merge(const FunctionStats& other) {
  if (other.invocations == 0) {
    return;
  }
  if (invocations == 0) {
    *this = other;
    return;
  }
  invocations += other.invocations;
  inclusive += other.inclusive;
  exclusive += other.exclusive;
  minInclusive = std::min(minInclusive, other.minInclusive);
  maxInclusive = std::max(maxInclusive, other.maxInclusive);
}

namespace {

/// Statically-typed replay visitor of the profile hot loop; the add() on
/// each completed frame inlines into the replay walk.
struct ProfileVisitor {
  std::vector<FunctionStats>& row;

  void onEnter(trace::FunctionId, trace::Timestamp, std::size_t) {}
  void onLeave(const trace::Frame& frame) {
    row[frame.function].add(frame.inclusive(), frame.exclusive());
  }
  void onMessage(bool, const trace::Event&) {}
  void onMetric(const trace::Event&, std::size_t) {}
};

}  // namespace

std::vector<FunctionStats> FlatProfile::buildProcess(
    const trace::TraceView& tr, trace::ProcessId p) {
  PERFVAR_REQUIRE(p < tr.processCount(), "invalid process id");
  const std::size_t nFuncs = tr.functions().size();
  std::vector<FunctionStats> row(nFuncs);
  for (std::size_t f = 0; f < nFuncs; ++f) {
    row[f].function = static_cast<trace::FunctionId>(f);
  }
  ProfileVisitor visitor{row};
  const trace::RankPin pin = tr.rank(p);
  trace::replayEventsWith(pin.events(), visitor);
  return row;
}

std::vector<FunctionStats> FlatProfile::buildProcessReference(
    const trace::TraceView& tr, trace::ProcessId p) {
  PERFVAR_REQUIRE(p < tr.processCount(), "invalid process id");
  const std::size_t nFuncs = tr.functions().size();
  std::vector<FunctionStats> row(nFuncs);
  for (std::size_t f = 0; f < nFuncs; ++f) {
    row[f].function = static_cast<trace::FunctionId>(f);
  }
  trace::ReplayVisitor v;
  v.onLeave = [&](const trace::Frame& frame) {
    row[frame.function].add(frame.inclusive(), frame.exclusive());
  };
  const trace::RankPin pin = tr.rank(p);
  trace::replayEvents(pin.events(), v);
  return row;
}

FlatProfile FlatProfile::fromPerProcess(
    const trace::TraceView& tr,
    std::vector<std::vector<FunctionStats>> perProcess) {
  PERFVAR_REQUIRE(perProcess.size() == tr.processCount(),
                  "per-process row count mismatch");
  const std::size_t nFuncs = tr.functions().size();
  FlatProfile profile;
  profile.perProcess_ = std::move(perProcess);
  profile.aggregated_.assign(nFuncs, FunctionStats{});
  for (std::size_t f = 0; f < nFuncs; ++f) {
    profile.aggregated_[f].function = static_cast<trace::FunctionId>(f);
  }
  for (const auto& row : profile.perProcess_) {
    PERFVAR_REQUIRE(row.size() == nFuncs, "per-process row size mismatch");
    for (std::size_t f = 0; f < nFuncs; ++f) {
      profile.aggregated_[f].merge(row[f]);
    }
  }
  return profile;
}

FlatProfile FlatProfile::build(const trace::TraceView& tr) {
  std::vector<std::vector<FunctionStats>> perProcess(tr.processCount());
  for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
    perProcess[p] = buildProcess(tr, p);
  }
  return fromPerProcess(tr, std::move(perProcess));
}

const FunctionStats& FlatProfile::process(trace::ProcessId p,
                                          trace::FunctionId f) const {
  PERFVAR_REQUIRE(p < perProcess_.size(), "invalid process id");
  PERFVAR_REQUIRE(f < perProcess_[p].size(), "invalid function id");
  return perProcess_[p][f];
}

const FunctionStats& FlatProfile::aggregated(trace::FunctionId f) const {
  PERFVAR_REQUIRE(f < aggregated_.size(), "invalid function id");
  return aggregated_[f];
}

namespace {

std::vector<FunctionStats> sortedBy(
    const std::vector<FunctionStats>& all,
    trace::Timestamp FunctionStats::* key) {
  std::vector<FunctionStats> out;
  for (const auto& s : all) {
    if (s.invocations > 0) {
      out.push_back(s);
    }
  }
  std::sort(out.begin(), out.end(),
            [&](const FunctionStats& a, const FunctionStats& b) {
              if (a.*key != b.*key) {
                return a.*key > b.*key;
              }
              return a.function < b.function;  // deterministic tie-break
            });
  return out;
}

}  // namespace

std::vector<FunctionStats> FlatProfile::byInclusiveTime() const {
  return sortedBy(aggregated_, &FunctionStats::inclusive);
}

std::vector<FunctionStats> FlatProfile::byExclusiveTime() const {
  return sortedBy(aggregated_, &FunctionStats::exclusive);
}

std::vector<trace::Timestamp> FlatProfile::exclusiveTimePerProcess(
    const std::vector<bool>& keep) const {
  PERFVAR_REQUIRE(keep.size() == aggregated_.size(),
                  "keep mask size must equal function count");
  std::vector<trace::Timestamp> out(perProcess_.size(), 0);
  for (std::size_t p = 0; p < perProcess_.size(); ++p) {
    for (std::size_t f = 0; f < keep.size(); ++f) {
      if (keep[f]) {
        out[p] += perProcess_[p][f].exclusive;
      }
    }
  }
  return out;
}

std::string formatTopFunctions(const trace::TraceView& tr,
                               const FlatProfile& profile, std::size_t n) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"function", "group", "paradigm", "invocations", "inclusive",
                  "exclusive"});
  const auto sorted = profile.byInclusiveTime();
  for (std::size_t i = 0; i < std::min(n, sorted.size()); ++i) {
    const FunctionStats& s = sorted[i];
    const trace::FunctionDef& def = tr.functions().at(s.function);
    rows.push_back({def.name, def.group, trace::paradigmName(def.paradigm),
                    std::to_string(s.invocations),
                    fmt::seconds(tr.toSeconds(s.inclusive)),
                    fmt::seconds(tr.toSeconds(s.exclusive))});
  }
  return fmt::table(rows);
}

}  // namespace perfvar::profile
