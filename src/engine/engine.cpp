#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "analysis/parallel.hpp"
#include "trace/binary_io.hpp"
#include "trace/filter.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace perfvar::engine {

namespace {

// Stage tags mixed into every fingerprint so keys of different stages can
// never collide even for identical option content.
constexpr std::uint64_t kTagDominant = 0x646f6d;    // "dom"
constexpr std::uint64_t kTagSos = 0x736f73;         // "sos"
constexpr std::uint64_t kTagVariation = 0x766172;   // "var"
constexpr std::uint64_t kTagDep = 0x646570;         // "dep"

std::uint64_t fingerprintDominant(const analysis::DominantOptions& o) {
  util::Hasher h;
  h.u64(kTagDominant)
      .u64(o.invocationMultiplier)
      .boolean(o.excludeSynchronization);
  // The classifier only participates in candidacy filtering when
  // exclusion is on; keying on it otherwise would split identical results.
  if (o.excludeSynchronization) {
    h.u64(o.syncClassifier.cacheToken());
  }
  return h.digest();
}

std::uint64_t fingerprintSos(trace::FunctionId segmentFunction,
                             const analysis::SyncClassifier& classifier) {
  return util::Hasher{}
      .u64(kTagSos)
      .u64(segmentFunction)
      .u64(classifier.cacheToken())
      .digest();
}

std::uint64_t fingerprintVariation(std::uint64_t sosKey,
                                   const analysis::VariationOptions& o) {
  return util::Hasher{}
      .u64(kTagVariation)
      .u64(sosKey)
      .f64(o.outlierThreshold)
      .f64(o.processThreshold)
      .u64(o.maxHotspots)
      .digest();
}

std::uint64_t fingerprintDep(const analysis::DepAnalysisOptions& o) {
  // Execution fields (threads/grainSizeRanks/pool) are deliberately
  // excluded: graph construction is byte-identical at every thread count.
  return util::Hasher{}
      .u64(kTagDep)
      .u64(o.sync.cacheToken())
      .f64(o.serialization.rankShareThreshold)
      .f64(o.serialization.functionShareThreshold)
      .u64(o.serialization.minProcesses)
      .u64(o.idleWave.minWaitTicks)
      .f64(o.idleWave.minWaitShare)
      .u64(o.idleWave.minRanks)
      .digest();
}

// Approximate resident sizes of cached stage results (capacity-based where
// the containers are reachable; close enough for observability and
// eviction accounting, not an allocator audit).

std::size_t approxBytes(const profile::FlatProfile& p) {
  return sizeof(p) + (p.processCount() + 1) * p.functionCount() *
                         sizeof(profile::FunctionStats);
}

std::size_t approxBytes(const analysis::DominantSelection& s) {
  return sizeof(s) + (s.candidates.capacity() + s.rejectedTopLevel.capacity()) *
                         sizeof(analysis::DominantCandidate);
}

std::size_t approxBytes(const analysis::SosResult& r) {
  std::size_t total = sizeof(r);
  for (const auto& per : r.all()) {
    total += per.capacity() * sizeof(analysis::SegmentAnalysis);
    for (const auto& seg : per) {
      total += seg.metricDelta.capacity() * sizeof(double);
    }
  }
  return total;
}

std::size_t approxBytes(const analysis::VariationReport& v) {
  return sizeof(v) +
         v.iterations.capacity() * sizeof(analysis::IterationStats) +
         v.processes.capacity() * sizeof(analysis::ProcessStats) +
         (v.processesBySos.capacity() + v.culpritProcesses.capacity()) *
             sizeof(trace::ProcessId) +
         v.hotspots.capacity() * sizeof(analysis::Hotspot);
}

std::size_t approxBytes(const analysis::DepAnalysis& a) {
  std::size_t total =
      sizeof(a) +
      a.criticalPath.steps.capacity() * sizeof(analysis::CriticalPathStep) +
      (a.criticalPath.rankTicks.capacity() +
       a.criticalPath.functionTicks.capacity()) *
          sizeof(std::uint64_t) +
      (a.serialization.ranks.capacity() +
       a.serialization.dominatedRanks.capacity()) *
          sizeof(analysis::RankCriticality) +
      a.serialization.bottlenecks.capacity() *
          sizeof(analysis::RegionCriticality) +
      a.idleWaves.waves.capacity() * sizeof(analysis::IdleWave);
  for (const analysis::IdleWave& wave : a.idleWaves.waves) {
    total += wave.hops.capacity() * sizeof(analysis::IdleWaveHop);
  }
  return total;
}

std::size_t approxBytes(const lint::LintReport& r) {
  std::size_t total = sizeof(r) +
                      r.findings.capacity() * sizeof(lint::Finding) +
                      r.truncated.capacity() * sizeof(lint::TruncatedRule);
  for (const lint::Finding& f : r.findings) {
    total += f.rule.size() + f.message.size();
  }
  for (const std::string& id : r.rulesRun) {
    total += sizeof(std::string) + id.size();
  }
  return total;
}

}  // namespace

struct AnalysisEngine::Impl {
  template <typename T>
  struct Entry {
    std::shared_ptr<const T> value;
    std::uint64_t lastUse = 0;
    std::size_t bytes = 0;
  };
  template <typename T>
  using Map = std::unordered_map<std::uint64_t, Entry<T>>;

  /// Guards every cache container, useClock and bytes. Held only for map
  /// lookups/inserts, never while a stage computes.
  std::mutex cacheMutex;
  std::uint64_t useClock = 0;
  std::uint64_t bytes = 0;

  std::shared_ptr<const profile::FlatProfile> profile;
  std::size_t profileBytes = 0;
  std::shared_ptr<const lint::LintReport> lint;
  std::size_t lintBytes = 0;
  Map<analysis::DominantSelection> dominant;
  Map<analysis::SosResult> sos;
  Map<analysis::VariationReport> variation;
  Map<analysis::DepAnalysis> dep;

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};

  /// Workers of the heavy stages (null when EngineOptions::threads == 1).
  /// poolMutex serializes whole stage batches: ThreadPool::wait() waits
  /// for pool-wide idleness, so interleaving two batches would let one
  /// query wait on (and steal exceptions of) another's tasks.
  std::unique_ptr<util::ThreadPool> pool;
  std::mutex poolMutex;

  template <typename Map>
  void evictLruFrom(Map& map, typename Map::iterator victim) {
    bytes -= victim->second.bytes;
    map.erase(victim);
    evictions.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drop least-recently-used derived entries until the combined count is
  /// within `maxEntries` again. Caller holds cacheMutex.
  void evictIfNeeded(std::size_t maxEntries) {
    if (maxEntries == 0) {
      return;
    }
    auto lruUse = [](const auto& map) {
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      for (const auto& [key, entry] : map) {
        best = std::min(best, entry.lastUse);
      }
      return best;
    };
    auto lruIt = [](auto& map) {
      auto best = map.begin();
      for (auto it = map.begin(); it != map.end(); ++it) {
        if (it->second.lastUse < best->second.lastUse) {
          best = it;
        }
      }
      return best;
    };
    while (dominant.size() + sos.size() + variation.size() + dep.size() >
           maxEntries) {
      const std::uint64_t d = lruUse(dominant);
      const std::uint64_t s = lruUse(sos);
      const std::uint64_t v = lruUse(variation);
      const std::uint64_t g = lruUse(dep);
      if (d <= s && d <= v && d <= g) {
        evictLruFrom(dominant, lruIt(dominant));
      } else if (s <= v && s <= g) {
        evictLruFrom(sos, lruIt(sos));
      } else if (v <= g) {
        evictLruFrom(variation, lruIt(variation));
      } else {
        evictLruFrom(dep, lruIt(dep));
      }
    }
  }

  /// The cache protocol of every derived stage: lookup under the lock,
  /// compute outside it on a miss, insert (first writer wins — a racing
  /// thread that lost simply adopts the winner's instance so all callers
  /// observe one object per key).
  template <typename T, typename Compute>
  std::shared_ptr<const T> getOrCompute(Map<T>& map, std::uint64_t key,
                                        std::size_t maxEntries,
                                        Compute&& compute) {
    {
      std::lock_guard<std::mutex> lock(cacheMutex);
      const auto it = map.find(key);
      if (it != map.end()) {
        it->second.lastUse = ++useClock;
        hits.fetch_add(1, std::memory_order_relaxed);
        return it->second.value;
      }
    }
    misses.fetch_add(1, std::memory_order_relaxed);
    auto computed = std::make_shared<const T>(compute());
    std::lock_guard<std::mutex> lock(cacheMutex);
    const auto [it, inserted] = map.try_emplace(key);
    it->second.lastUse = ++useClock;
    if (!inserted) {
      return it->second.value;  // lost a compute race; adopt the winner
    }
    it->second.value = computed;
    it->second.bytes = approxBytes(*computed);
    bytes += it->second.bytes;
    evictIfNeeded(maxEntries);
    return computed;
  }
};

AnalysisEngine::AnalysisEngine(trace::Trace trace, EngineOptions options)
    : AnalysisEngine(trace::TraceView::owned(std::move(trace)),
                     std::move(options)) {}

AnalysisEngine::AnalysisEngine(trace::TraceView view, EngineOptions options)
    : view_(std::move(view)),
      options_(options),
      impl_(std::make_unique<Impl>()) {
  // Degraded input: build the filtered analysis view once; every stage
  // (and every cache entry) is then relative to it, exactly like
  // analyzeTrace() on the same trace.
  analysisView_ =
      view_.quarantined().empty() ? view_ : view_.dropQuarantined();
  if (options_.threads != 1) {
    impl_->pool = std::make_unique<util::ThreadPool>(options_.threads);
  }
  if (options_.lintOnLoad) {
    const auto report = lintReport();
    if (report->hasAtLeast(options_.lintGateSeverity)) {
      std::ostringstream os;
      os << "lint-on-load gate: trace has "
         << report->countAtLeast(options_.lintGateSeverity)
         << " finding(s) at or above "
         << lint::severityName(options_.lintGateSeverity);
      for (const lint::Finding& f : report->findings) {
        if (f.severity >= options_.lintGateSeverity) {
          os << "\n  first: [" << f.rule << "] " << f.message;
          break;
        }
      }
      ErrorContext context;
      context.code = ErrorCode::MalformedEvent;
      throw Error(os.str(), std::move(context));
    }
  }
}

AnalysisEngine::~AnalysisEngine() = default;

AnalysisEngine AnalysisEngine::fromFile(const std::string& path,
                                        EngineOptions options) {
  // Load with the same parallelism the engine will analyze with: v2
  // trace files decode their per-rank blocks on that many threads
  // (identical Trace for any thread count; v1 files load serially).
  trace::BinaryReadOptions readOptions;
  readOptions.threads = options.threads;
  return AnalysisEngine(trace::loadBinaryFile(path, readOptions), options);
}

AnalysisEngine AnalysisEngine::fromFileLazy(const std::string& path,
                                            EngineOptions options,
                                            trace::TraceViewOptions viewOptions) {
  return AnalysisEngine(trace::TraceView::openFile(path, viewOptions),
                        options);
}

std::shared_ptr<const profile::FlatProfile> AnalysisEngine::profile() {
  {
    std::lock_guard<std::mutex> lock(impl_->cacheMutex);
    if (impl_->profile) {
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      return impl_->profile;
    }
  }
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  auto computed = [&] {
    if (!impl_->pool) {
      return std::make_shared<const profile::FlatProfile>(
          profile::FlatProfile::build(analysisView_));
    }
    std::lock_guard<std::mutex> poolLock(impl_->poolMutex);
    return std::make_shared<const profile::FlatProfile>(
        analysis::buildProfileParallel(analysisView_, *impl_->pool,
                                       options_.grainSizeRanks));
  }();
  std::lock_guard<std::mutex> lock(impl_->cacheMutex);
  if (!impl_->profile) {
    impl_->profile = computed;
    impl_->profileBytes = approxBytes(*computed);
    impl_->bytes += impl_->profileBytes;
  }
  return impl_->profile;
}

std::shared_ptr<const lint::LintReport> AnalysisEngine::lintReport() {
  {
    std::lock_guard<std::mutex> lock(impl_->cacheMutex);
    if (impl_->lint) {
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      return impl_->lint;
    }
  }
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  // Lint the raw trace (not the filtered view): the quarantine-interaction
  // rule exists precisely to surface the ranks the analyses drop.
  auto computed = [&] {
    lint::LintOptions lintOptions;
    lintOptions.grainSizeRanks = options_.grainSizeRanks;
    lintOptions.disabledRules = options_.lintDisabledRules;
    if (!impl_->pool) {
      return std::make_shared<const lint::LintReport>(
          lint::lintTrace(view_, lintOptions));
    }
    std::lock_guard<std::mutex> poolLock(impl_->poolMutex);
    lintOptions.pool = impl_->pool.get();
    return std::make_shared<const lint::LintReport>(
        lint::lintTrace(view_, lintOptions));
  }();
  std::lock_guard<std::mutex> lock(impl_->cacheMutex);
  if (!impl_->lint) {
    impl_->lint = computed;
    impl_->lintBytes = approxBytes(*computed);
    impl_->bytes += impl_->lintBytes;
  }
  return impl_->lint;
}

std::shared_ptr<const analysis::DominantSelection> AnalysisEngine::dominant(
    const analysis::DominantOptions& options) {
  const auto prof = profile();
  return impl_->getOrCompute(
      impl_->dominant, fingerprintDominant(options), options_.maxCacheEntries,
      [&] {
        return analysis::selectDominantFunction(analysisView_, *prof,
                                                options);
      });
}

std::shared_ptr<const analysis::DepAnalysis> AnalysisEngine::depAnalysis(
    const analysis::DepAnalysisOptions& options) {
  return impl_->getOrCompute(
      impl_->dep, fingerprintDep(options), options_.maxCacheEntries, [&] {
        analysis::DepAnalysisOptions effective = options;
        effective.threads = options_.threads;
        effective.grainSizeRanks = options_.grainSizeRanks;
        effective.pool = nullptr;
        if (!impl_->pool) {
          return analysis::analyzeDependencies(analysisView_, effective);
        }
        std::lock_guard<std::mutex> poolLock(impl_->poolMutex);
        effective.pool = impl_->pool.get();
        return analysis::analyzeDependencies(analysisView_, effective);
      });
}

std::string AnalysisEngine::formatDepReport(
    const analysis::DepAnalysisOptions& options) {
  return analysis::formatDepAnalysis(analysisView_, *depAnalysis(options));
}

void AnalysisEngine::exportDepReport(analysis::ExportFormat format,
                                     std::ostream& out,
                                     const analysis::DepAnalysisOptions& options) {
  analysis::exportDepAnalysis(analysisView_, *depAnalysis(options), format,
                              out);
}

EngineResult AnalysisEngine::analyze(const analysis::PipelineOptions& options) {
  EngineResult result;
  // The stages were computed on the analysis view; copies of it share
  // the backend, so the result stays valid past the engine.
  result.trace = analysisView_;
  result.profile = profile();
  // Inline dominant() with the profile already in hand: one counter event
  // per stage per query (a cold analyze is 4 misses, a warm one 4 hits).
  result.selection = impl_->getOrCompute(
      impl_->dominant, fingerprintDominant(options.dominant),
      options_.maxCacheEntries, [&] {
        return analysis::selectDominantFunction(analysisView_,
                                                *result.profile,
                                                options.dominant);
      });
  PERFVAR_REQUIRE(result.selection->hasDominant(),
                  "no function qualifies as time-dominant; lower the "
                  "invocation multiplier or check the instrumentation");
  PERFVAR_REQUIRE(
      options.candidateIndex < result.selection->candidates.size(),
      "candidateIndex exceeds the number of dominant candidates");
  result.segmentFunction =
      result.selection->candidates[options.candidateIndex].function;

  const std::uint64_t sosKey =
      fingerprintSos(result.segmentFunction, options.sync);
  result.sos = impl_->getOrCompute(
      impl_->sos, sosKey, options_.maxCacheEntries, [&] {
        if (!impl_->pool) {
          return analysis::analyzeSos(analysisView_, result.segmentFunction,
                                      options.sync);
        }
        std::lock_guard<std::mutex> poolLock(impl_->poolMutex);
        return analysis::analyzeSosParallel(analysisView_,
                                            result.segmentFunction,
                                            options.sync, *impl_->pool,
                                            options_.grainSizeRanks);
      });

  result.variation = impl_->getOrCompute(
      impl_->variation, fingerprintVariation(sosKey, options.variation),
      options_.maxCacheEntries, [&] {
        if (!impl_->pool) {
          return analysis::analyzeVariation(*result.sos, options.variation);
        }
        std::lock_guard<std::mutex> poolLock(impl_->poolMutex);
        return analysis::analyzeVariationParallel(*result.sos,
                                                  options.variation,
                                                  *impl_->pool,
                                                  options_.grainSizeRanks);
      });
  return result;
}

std::string AnalysisEngine::formatReport(
    const analysis::PipelineOptions& options) {
  const EngineResult r = analyze(options);
  return analysis::formatAnalysis(view_, *r.selection, *r.sos, *r.variation);
}

void AnalysisEngine::exportReport(analysis::ExportFormat format,
                                  std::ostream& out,
                                  const analysis::PipelineOptions& options) {
  const EngineResult r = analyze(options);
  analysis::exportReport(view_, *r.selection, *r.sos, *r.variation, format,
                         out);
}

CacheStats AnalysisEngine::cacheStats() const {
  CacheStats stats;
  stats.hits = impl_->hits.load(std::memory_order_relaxed);
  stats.misses = impl_->misses.load(std::memory_order_relaxed);
  stats.evictions = impl_->evictions.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(impl_->cacheMutex);
  stats.bytes = impl_->bytes;
  return stats;
}

void AnalysisEngine::clearCache() {
  std::lock_guard<std::mutex> lock(impl_->cacheMutex);
  impl_->profile.reset();
  impl_->profileBytes = 0;
  impl_->lint.reset();
  impl_->lintBytes = 0;
  impl_->dominant.clear();
  impl_->sos.clear();
  impl_->variation.clear();
  impl_->dep.clear();
  impl_->bytes = 0;
}

std::string formatCacheStats(const CacheStats& stats) {
  std::ostringstream os;
  os << "cache: hits=" << stats.hits << " misses=" << stats.misses
     << " evictions=" << stats.evictions << " bytes=" << stats.bytes;
  return os.str();
}

}  // namespace perfvar::engine
