#ifndef PERFVAR_ENGINE_ENGINE_HPP
#define PERFVAR_ENGINE_ENGINE_HPP

/// \file engine.hpp
/// AnalysisEngine: a long-lived analysis session over one trace.
///
/// analyzeTrace() recomputes the whole profile -> dominant -> SOS ->
/// variation chain on every call, even though interactive workflows touch
/// the same trace repeatedly: the Figure-5 drill-down re-runs stages 2-3
/// with a different candidateIndex, exporters re-render the same results,
/// and a query service answers many requests against one loaded trace.
/// AnalysisEngine loads the trace once and serves repeated queries from
/// content-addressed stage-level caches:
///
///   stage        cache key (util::Hasher fingerprint)
///   ---------    ------------------------------------------------------
///   profile      (none; one per trace)
///   dominant     DominantOptions fields (+ classifier token if excluding)
///   SOS          segment function id + SyncClassifier::cacheToken()
///   variation    SOS key + VariationOptions fields
///   dep          SyncClassifier token + Serialization/IdleWave thresholds
///
/// A drill-down that only changes candidateIndex therefore recomputes the
/// SOS and variation stages for the new segment function and reuses the
/// cached profile and dominant ranking; a re-export with unchanged options
/// recomputes nothing.
///
/// Execution options that do NOT change results (EngineOptions::threads,
/// grainSizeRanks — see parallel.hpp's determinism guarantee) are
/// deliberately excluded from every fingerprint, so results computed
/// serially and in parallel share cache entries. By the same guarantee,
/// every cached result is bit-identical to a fresh analyzeTrace() run.
///
/// Thread safety: all public member functions may be called concurrently.
/// Cache lookups and inserts synchronize on an internal mutex held only
/// for map operations; stage computation runs outside the lock (two
/// threads racing on the same missing key may both compute it; the first
/// insert wins and both observe the same instance afterwards). Heavy
/// stages dispatch onto an engine-owned util::ThreadPool (serialized by a
/// second mutex — the pool's wait() semantics do not allow interleaved
/// batches) and reuse the rank-sharded helpers from analysis/parallel.hpp.
///
/// Capacity: derived-stage entries (dominant/SOS/variation) are evicted
/// least-recently-used once their count exceeds EngineOptions
/// maxCacheEntries; the profile is never evicted. EngineResult holds
/// shared_ptrs, so eviction never invalidates a result a caller still
/// owns.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "analysis/depgraph.hpp"
#include "analysis/export.hpp"
#include "analysis/pipeline.hpp"
#include "lint/lint.hpp"
#include "profile/profile.hpp"
#include "trace/trace.hpp"
#include "trace/view.hpp"

namespace perfvar::util {
class ThreadPool;
}

namespace perfvar::engine {

/// Construction-time options of an engine.
struct EngineOptions {
  /// Worker threads of the heavy stages: 1 (default) computes inline on
  /// the querying thread, 0 = hardware concurrency, else that many pool
  /// workers. Does not affect results (and is not part of cache keys).
  std::size_t threads = 1;
  /// Ranks per pool task when threads != 1. No effect on results.
  std::size_t grainSizeRanks = 1;
  /// Maximum number of cached derived-stage results (dominant + SOS +
  /// variation entries together; the profile is exempt). 0 = unlimited.
  std::size_t maxCacheEntries = 64;

  /// Opt-in lint-on-load gate: run lint::lintTrace() over the raw trace
  /// (quarantined ranks included) at construction and refuse the session
  /// — by throwing perfvar::Error — when the report has a finding at or
  /// above `lintGateSeverity`. The report is cached either way and
  /// available via lintReport() without recomputation.
  bool lintOnLoad = false;
  /// Severity at (or above) which lintOnLoad rejects the trace.
  lint::Severity lintGateSeverity = lint::Severity::Error;
  /// Rule suppression applied to the lint-on-load run (and the cached
  /// report). Execution options (threads/pool) are taken from the engine.
  std::vector<std::string> lintDisabledRules;
};

/// Cache observability counters (cumulative since construction).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Approximate bytes currently held by cached stage results.
  std::uint64_t bytes = 0;
};

/// One query answer: shared views of the cached stage results. Cheap to
/// copy; keeps the underlying stages (and the engine's trace) alive even
/// across cache eviction or engine destruction.
struct EngineResult {
  /// The view the stages were computed on. For a degraded (quarantined)
  /// input this is the filtered sub-view the analysis ran on; for a clean
  /// trace it is the engine's view itself. Shares backend ownership, so
  /// the result outlives the engine.
  trace::TraceView trace;
  std::shared_ptr<const profile::FlatProfile> profile;
  std::shared_ptr<const analysis::DominantSelection> selection;
  trace::FunctionId segmentFunction = trace::kInvalidFunction;
  std::shared_ptr<const analysis::SosResult> sos;
  std::shared_ptr<const analysis::VariationReport> variation;
};

/// Cached, thread-safe, repeatedly-queryable analysis session over one
/// trace. Non-copyable and non-movable: cached results reference the
/// engine's view, whose backend identity must stay stable.
class AnalysisEngine {
public:
  /// Take ownership of `trace` (move it in; the engine wraps it in an
  /// owned TraceView that keeps it alive for cached results). A trace
  /// with quarantined ranks (a Salvage-mode load) is accepted: every
  /// stage then runs on the dropQuarantined sub-view, exactly like
  /// analyzeTrace().
  explicit AnalysisEngine(trace::Trace trace, EngineOptions options = {});

  /// Session over an existing view — the span-based entry point. Accepts
  /// any backend: a borrowed in-memory trace (which must outlive the
  /// engine), a shared/owned trace, or an out-of-core TraceView::openFile
  /// view, which is how 100k-rank sessions stay within memory budget.
  explicit AnalysisEngine(trace::TraceView view, EngineOptions options = {});

  ~AnalysisEngine();

  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  /// Load a PVT trace file eagerly and open a session over it. The file
  /// is memory-mapped and (for v2 files) its per-rank blocks are decoded
  /// on `options.threads` workers; the loaded trace is identical for
  /// every thread count.
  static AnalysisEngine fromFile(const std::string& path,
                                 EngineOptions options = {});

  /// Open a session over a PVTF v2 file out-of-core: per-rank blocks are
  /// decoded on demand into the view's bounded shard cache instead of
  /// materializing the whole trace. Every query result is byte-identical
  /// to a fromFile() session on the same file.
  static AnalysisEngine fromFileLazy(const std::string& path,
                                     EngineOptions options = {},
                                     trace::TraceViewOptions viewOptions = {});

  const trace::TraceView& trace() const { return view_; }
  const EngineOptions& options() const { return options_; }

  /// The flat profile (stage 1); computed once per engine.
  std::shared_ptr<const profile::FlatProfile> profile();

  /// The lint report of the raw trace (quarantined ranks included),
  /// computed once per engine on the engine's workers and cached like the
  /// profile. With EngineOptions::lintOnLoad it was already computed (and
  /// gated) during construction, so this is a cache hit.
  std::shared_ptr<const lint::LintReport> lintReport();

  /// The dominant-function ranking (stage 2) under `options`.
  std::shared_ptr<const analysis::DominantSelection> dominant(
      const analysis::DominantOptions& options = {});

  /// The cross-rank dependency analysis (happens-before graph, critical
  /// path, serialization bottlenecks, idle waves) under `options`. Cached
  /// like the other derived stages: the fingerprint covers the classifier
  /// token and the detector thresholds, never the execution options, so a
  /// warm re-query at any thread count is a cache hit returning the same
  /// byte-identical instance. Threads/grainSizeRanks/pool in `options`
  /// are ignored; execution is governed by EngineOptions.
  std::shared_ptr<const analysis::DepAnalysis> depAnalysis(
      const analysis::DepAnalysisOptions& options = {});

  /// formatDepAnalysis() of a (cached) dependency query.
  std::string formatDepReport(const analysis::DepAnalysisOptions& options = {});

  /// exportDepAnalysis() of a (cached) dependency query (Text/Json/Csv).
  void exportDepReport(analysis::ExportFormat format, std::ostream& out,
                       const analysis::DepAnalysisOptions& options = {});

  /// Full pipeline query: every stage is served from cache when its
  /// options fingerprint matches a previous query. Throws perfvar::Error
  /// exactly like analyzeTrace() (no dominant candidate, candidateIndex
  /// out of range). PipelineOptions::threads / grainSizeRanks are ignored:
  /// execution is governed by EngineOptions.
  EngineResult analyze(const analysis::PipelineOptions& options = {});

  /// formatAnalysis() of a (cached) query: byte-identical to
  /// formatAnalysis(trace, analyzeTrace(trace, options)).
  std::string formatReport(const analysis::PipelineOptions& options = {});

  /// exportReport() of a (cached) query.
  void exportReport(analysis::ExportFormat format, std::ostream& out,
                    const analysis::PipelineOptions& options = {});

  /// Current cache counters (hits/misses/evictions cumulative).
  CacheStats cacheStats() const;

  /// Drop every cached result, including the profile. Counters keep
  /// accumulating; bytes drops to zero. Outstanding EngineResults stay
  /// valid (they share ownership).
  void clearCache();

private:
  struct Impl;
  trace::TraceView view_;
  /// What the stages compute on: view_ itself for a clean trace, the
  /// dropQuarantined sub-view for a degraded one (built at construction).
  trace::TraceView analysisView_;
  EngineOptions options_;
  std::unique_ptr<Impl> impl_;
};

/// Render "cache: hits=... misses=... evictions=... bytes=..." (the
/// trace_tool `cache` query and CI smoke output).
std::string formatCacheStats(const CacheStats& stats);

}  // namespace perfvar::engine

#endif  // PERFVAR_ENGINE_ENGINE_HPP
