#ifndef PERFVAR_APPS_COSMO_SPECS_FD4_HPP
#define PERFVAR_APPS_COSMO_SPECS_FD4_HPP

/// \file cosmo_specs_fd4.hpp
/// COSMO-SPECS+FD4 workload model (paper case study B).
///
/// The extended weather code with FD4 dynamic load balancing: the cloud
/// workload is spread over many blocks per rank and the Fd4Balancer
/// re-partitions the Hilbert-curve block order whenever the imbalance
/// exceeds its threshold, so all ranks stay evenly loaded. The
/// performance anomaly of the case study is *not* load imbalance but a
/// one-off OS interruption: one SPECS timestep invocation on one rank is
/// stretched by the operating system while its cycle counter stays low.

#include <cstdint>
#include <vector>

#include "apps/cloud_field.hpp"
#include "balance/fd4.hpp"
#include "sim/program.hpp"
#include "sim/simulator.hpp"

namespace perfvar::apps {

/// Configuration of the COSMO-SPECS+FD4 scenario.
struct CosmoSpecsFd4Config {
  std::size_t ranks = 200;
  std::uint32_t blocksX = 40;  ///< block grid (blocks >> ranks)
  std::uint32_t blocksY = 40;
  std::size_t iterations = 20;      ///< coupling iterations
  std::size_t innerTimesteps = 6;   ///< SPECS timesteps per iteration
  double cosmoSeconds = 1.0e-3;
  double fd4Seconds = 0.2e-3;       ///< balancing bookkeeping per iteration
  double specsBlockBase = 0.10e-3;  ///< per-block SPECS base cost
  double specsBlockCloud = 0.50e-3; ///< per-block cost per unit cloud mass
  std::uint64_t haloBytes = 8 * 1024;
  std::uint64_t reduceBytes = 64;
  /// The injected OS interruption.
  std::uint32_t interruptRank = 20;
  std::size_t interruptIteration = 12;
  std::size_t interruptInnerStep = 3;
  double interruptSeconds = 60.0e-3;
  double noiseSigma = 0.015;
  std::uint64_t seed = 1337;
  balance::Fd4Options balancer{};
};

/// Scenario with ground truth.
struct CosmoSpecsFd4Scenario {
  sim::Program program;
  sim::SimOptions simOptions;
  trace::FunctionId iterationFunction = trace::kInvalidFunction;  ///< coarse
  trace::FunctionId specsStepFunction = trace::kInvalidFunction;  ///< fine
  std::uint32_t culpritRank = 0;
  std::size_t culpritIteration = 0;
  /// Global index of the interrupted specs_timestep invocation
  /// (iteration * innerTimesteps + innerStep).
  std::size_t culpritFineSegment = 0;
  std::size_t iterations = 0;
  std::size_t innerTimesteps = 0;
  /// Per-iteration imbalance of the rank loads after balancing (for the
  /// ablation benches: with FD4 these stay near 0).
  std::vector<double> balancedImbalance;
  /// Migration volume of each balancing step.
  std::vector<std::size_t> migratedBlocks;
};

/// Build the scenario.
CosmoSpecsFd4Scenario buildCosmoSpecsFd4(const CosmoSpecsFd4Config& config = {});

}  // namespace perfvar::apps

#endif  // PERFVAR_APPS_COSMO_SPECS_FD4_HPP
