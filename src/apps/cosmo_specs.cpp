#include "apps/cosmo_specs.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace perfvar::apps {

CloudField cosmoSpecsCloudField(const CosmoSpecsConfig& config) {
  // A stationary cloud growing over the run, centered between the block
  // of rank 54 and its neighbors (for the default 10x10 grid). Block
  // centers sit at integer + 0.5 coordinates.
  Cloud cloud;
  cloud.x0 = 0.4 + 0.45 * static_cast<double>(config.gridX);
  cloud.y0 = 0.55 * static_cast<double>(config.gridY);
  cloud.sigma0 = 0.09 * static_cast<double>(std::min(config.gridX,
                                                     config.gridY));
  cloud.amp0 = 0.05;
  cloud.ampGrowth = 0.95 / std::max<double>(1.0,
                                            static_cast<double>(
                                                config.timesteps));
  return CloudField(config.gridX, config.gridY, {cloud});
}

CosmoSpecsScenario buildCosmoSpecs(const CosmoSpecsConfig& config) {
  PERFVAR_REQUIRE(config.timesteps >= 2, "need at least two timesteps");
  const std::uint32_t ranks = config.gridX * config.gridY;
  PERFVAR_REQUIRE(ranks >= 2, "need at least two ranks");

  const CloudField field = cosmoSpecsCloudField(config);

  sim::ProgramBuilder b(ranks);
  const auto fIter = b.function("cosmo_specs_timestep", "ITERATION");
  const auto fCosmo = b.function("cosmo_dynamics", "COSMO");
  const auto fCouple = b.function("couple_fields", "COUPLING");
  const auto fSpecs = b.function("specs_microphysics", "SPECS");

  const auto rankOf = [&](std::uint32_t x, std::uint32_t y) {
    return y * config.gridX + x;
  };

  for (std::size_t t = 0; t < config.timesteps; ++t) {
    for (std::uint32_t y = 0; y < config.gridY; ++y) {
      for (std::uint32_t x = 0; x < config.gridX; ++x) {
        const std::uint32_t r = rankOf(x, y);
        b.enter(r, fIter);
        b.compute(r, fCosmo, config.cosmoSeconds);

        // Halo exchange with the 4-neighborhood (eager sends first, so
        // blocking receives cannot deadlock).
        std::vector<std::uint32_t> neighbors;
        if (x > 0) neighbors.push_back(rankOf(x - 1, y));
        if (x + 1 < config.gridX) neighbors.push_back(rankOf(x + 1, y));
        if (y > 0) neighbors.push_back(rankOf(x, y - 1));
        if (y + 1 < config.gridY) neighbors.push_back(rankOf(x, y + 1));
        const auto tag = static_cast<std::uint32_t>(t);
        for (const std::uint32_t nbr : neighbors) {
          b.send(r, nbr, tag, config.haloBytes);
        }
        for (const std::uint32_t nbr : neighbors) {
          b.recv(r, nbr, tag);
        }

        b.compute(r, fCouple, config.couplingSeconds);
        const double mass = field.mass(x, y, static_cast<double>(t));
        b.compute(r, fSpecs,
                  config.specsBaseSeconds + config.specsCloudSeconds * mass);
        b.allreduce(r, config.reduceBytes);
        b.leave(r, fIter);
      }
    }
  }

  CosmoSpecsScenario scenario;
  scenario.program = b.finish();
  scenario.simOptions.noise.sigma = config.noiseSigma;
  scenario.simOptions.noise.seed = config.seed;
  scenario.iterationFunction = fIter;
  scenario.specsFunction = fSpecs;
  scenario.timesteps = config.timesteps;

  // Ground truth: the six ranks with the highest final cloud mass.
  const auto masses =
      field.blockMasses(static_cast<double>(config.timesteps - 1));
  std::vector<std::uint32_t> order(masses.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t c) {
    return masses[a] > masses[c];
  });
  const std::size_t hot = std::min<std::size_t>(6, order.size());
  scenario.hotRanks.assign(order.begin(),
                           order.begin() + static_cast<std::ptrdiff_t>(hot));
  scenario.hottestRank = order.front();
  return scenario;
}

}  // namespace perfvar::apps
