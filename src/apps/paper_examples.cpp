#include "apps/paper_examples.hpp"

#include "trace/builder.hpp"

namespace perfvar::apps {

trace::Trace buildFigure1Trace() {
  trace::TraceBuilder b(1, /*resolution=*/1);
  const auto foo = b.defineFunction("foo");
  const auto bar = b.defineFunction("bar");
  b.enter(0, 0, foo);
  b.enter(0, 2, bar);
  b.leave(0, 4, bar);
  b.leave(0, 6, foo);
  return b.finish();
}

trace::Trace buildFigure2Trace() {
  trace::TraceBuilder b(3, /*resolution=*/1);
  const auto fMain = b.defineFunction("main");
  const auto fI = b.defineFunction("i");
  const auto fA = b.defineFunction("a");
  const auto fB = b.defineFunction("b");
  const auto fC = b.defineFunction("c");

  for (trace::ProcessId p = 0; p < 3; ++p) {
    b.enter(p, 0, fMain);
    // Initialization phase.
    b.enter(p, 0, fI);
    b.leave(p, 2, fI);
    // Three invocations of a, 4 time steps each (aggregated inclusive
    // time 3 processes x 3 invocations x 4 = 36).
    for (trace::Timestamp start = 2; start <= 10; start += 4) {
      b.enter(p, start, fA);
      b.enter(p, start + 1, fB);
      b.leave(p, start + 2, fB);
      b.enter(p, start + 2, fC);
      b.leave(p, start + 3, fC);
      b.leave(p, start + 4, fA);
    }
    // Trailing work directly in main until t = 18
    // (main aggregated inclusive: 3 x 18 = 54).
    b.leave(p, 18, fMain);
  }
  return b.finish();
}

const double (&figure3CalcTimes())[3][3] {
  static const double kCalc[3][3] = {
      {5.0, 3.0, 1.0},  // iteration 0: strong imbalance, process 0 slow
      {2.0, 2.0, 2.0},  // iteration 1: balanced (duration 3, twice as fast)
      {1.0, 3.0, 4.0},  // iteration 2: imbalance the other way around
  };
  return kCalc;
}

trace::Trace buildFigure3Trace() {
  trace::TraceBuilder b(3, /*resolution=*/1);
  const auto fMain = b.defineFunction("main");
  const auto fA = b.defineFunction("a");
  const auto fCalc = b.defineFunction("calc");
  const auto fMpi = b.defineFunction("MPI", "MPI", trace::Paradigm::MPI);

  const auto& calc = figure3CalcTimes();
  // Iteration end = iteration start + max(calc) + 1 (synchronization
  // completes one time step after the slowest process arrives).
  trace::Timestamp iterStart[4];
  iterStart[0] = 0;
  for (int i = 0; i < 3; ++i) {
    double maxCalc = 0.0;
    for (int p = 0; p < 3; ++p) {
      maxCalc = std::max(maxCalc, calc[i][p]);
    }
    iterStart[i + 1] =
        iterStart[i] + static_cast<trace::Timestamp>(maxCalc) + 1;
  }

  for (trace::ProcessId p = 0; p < 3; ++p) {
    b.enter(p, 0, fMain);
    for (int i = 0; i < 3; ++i) {
      const trace::Timestamp start = iterStart[i];
      const trace::Timestamp end = iterStart[i + 1];
      const auto calcEnd =
          start + static_cast<trace::Timestamp>(calc[i][p]);
      b.enter(p, start, fA);
      b.enter(p, start, fCalc);
      b.leave(p, calcEnd, fCalc);
      b.enter(p, calcEnd, fMpi);
      b.leave(p, end, fMpi);
      b.leave(p, end, fA);
    }
    b.leave(p, iterStart[3], fMain);
  }
  return b.finish();
}

}  // namespace perfvar::apps
