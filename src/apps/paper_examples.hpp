#ifndef PERFVAR_APPS_PAPER_EXAMPLES_HPP
#define PERFVAR_APPS_PAPER_EXAMPLES_HPP

/// \file paper_examples.hpp
/// Exact reconstructions of the paper's methodology figures.
///
/// These traces use resolution 1 (one tick = one abstract "time step" of
/// the figures) so every number printed by the fig1-fig3 benches can be
/// compared directly against the paper.

#include "trace/trace.hpp"

namespace perfvar::apps {

/// Figure 1: foo [0,6] calling bar [2,4] on one process.
/// Inclusive(foo) = 6, exclusive(foo) = 4.
trace::Trace buildFigure1Trace();

/// Figure 2: three processes, functions main/i/a/b/c over t = 0..18.
/// main: 3 invocations, aggregated inclusive 54 (rejected: only p
/// invocations); a: 9 invocations, aggregated inclusive 36 (selected).
trace::Trace buildFigure2Trace();

/// Figure 3: three processes, three iterations of the dominant function
/// `a`, each iteration = calc + MPI synchronization. Segment durations are
/// identical across processes (6, 3, 5) because the MPI call absorbs the
/// imbalance; SOS-times expose the per-process calc times:
///   iteration 0: (5, 3, 1)   iteration 1: (2, 2, 2)   iteration 2: (1, 3, 4)
/// The exact per-cell values of the figure are partially ambiguous in the
/// source text; this reconstruction reproduces every number stated in the
/// prose (first iteration duration 6, middle 3, SOS 5 vs 1 in iteration 0).
trace::Trace buildFigure3Trace();

/// The calc times used by buildFigure3Trace(), [iteration][process].
const double (&figure3CalcTimes())[3][3];

}  // namespace perfvar::apps

#endif  // PERFVAR_APPS_PAPER_EXAMPLES_HPP
