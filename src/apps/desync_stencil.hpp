#ifndef PERFVAR_APPS_DESYNC_STENCIL_HPP
#define PERFVAR_APPS_DESYNC_STENCIL_HPP

/// \file desync_stencil.hpp
/// 1-D stencil exchange that provably emits an idle wave.
///
/// Ground-truth workload of the idle-wave detector, after Afzal et al.:
/// `ranks` processes run a non-periodic nearest-neighbor halo exchange
/// with no global barrier, so a one-off delay on `delayRank` at
/// `delayIteration` (an injected `delayExtraTicks` hiccup) desynchronizes
/// the chain. Both neighbors wait one iteration later, their neighbors
/// the iteration after that — a wavefront of late arrivals propagating
/// one rank per iteration until it washes over the whole machine. The
/// known answer: one idle wave whose origin is `delayRank`, and *no*
/// serialization finding (the delayed rank's criticality share stays far
/// below the dominance threshold).
///
/// Every rank's stream is a deterministic pure function of (config,
/// rank); neighbor completion times come from a forward recurrence over
/// the (small) iteration × rank schedule.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/definitions.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace perfvar::apps {

/// Configuration of the stencil scenario. All costs are in ticks of
/// `resolution`.
struct StencilConfig {
  std::size_t ranks = 16;
  std::size_t iterations = 24;
  /// Ticks per second of all timestamps (default nanoseconds).
  std::uint64_t resolution = 1'000'000'000ULL;

  /// Per-iteration compute cost of every rank.
  std::uint64_t computeTicks = 100'000;
  /// Minimum duration of the exchange region (>= 8: the send and recv
  /// events sit inside it).
  std::uint64_t exchangeTicks = 4'000;
  /// Wire latency between a send and the matching arrival.
  std::uint64_t linkTicks = 500;

  /// The delayed rank; ~0ULL means ranks / 2.
  std::size_t delayRank = static_cast<std::size_t>(-1);
  /// The delayed iteration (0-based); ~0ULL means iterations / 3. The
  /// wave needs iterations - delayIteration > max distance to the chain
  /// ends to wash over every rank.
  std::size_t delayIteration = static_cast<std::size_t>(-1);
  /// The one-off extra compute the delayed rank pays.
  std::uint64_t delayExtraTicks = 600'000;

  /// Uniform per-(rank, iteration) compute jitter in [0, jitter); 0
  /// keeps the schedule exactly at the closed-form ground truth.
  std::uint64_t jitterTicks = 0;
  /// Seed of the deterministic jitter.
  std::uint64_t seed = 2026;
};

/// Interned definitions of the scenario.
struct StencilDefs {
  trace::FunctionId mainFunction = trace::kInvalidFunction;
  trace::FunctionId computeFunction = trace::kInvalidFunction;
  trace::FunctionId exchangeFunction = trace::kInvalidFunction;
};

/// Intern the scenario's functions into the given registry.
StencilDefs registerStencilDefs(trace::FunctionRegistry& functions);

/// Process name of rank `rank` ("Cell N").
std::string stencilProcessName(std::size_t rank);

/// The delayed rank under `config` (resolves the ~0 default).
std::size_t stencilDelayRank(const StencilConfig& config);

/// The time-sorted event stream of one rank: a pure deterministic
/// function of (config, rank). Throws perfvar::Error on an unusable
/// config (fewer than 3 ranks, zero iterations, exchangeTicks < 8).
std::vector<trace::Event> stencilRankEvents(const StencilConfig& config,
                                            trace::ProcessId rank,
                                            const StencilDefs& defs);

/// Materialize the scenario in memory.
trace::Trace buildStencilTrace(const StencilConfig& config);

}  // namespace perfvar::apps

#endif  // PERFVAR_APPS_DESYNC_STENCIL_HPP
