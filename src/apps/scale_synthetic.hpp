#ifndef PERFVAR_APPS_SCALE_SYNTHETIC_HPP
#define PERFVAR_APPS_SCALE_SYNTHETIC_HPP

/// \file scale_synthetic.hpp
/// Deterministic six-figure-rank synthetic workload.
///
/// The paper's pipeline is demonstrated on hundreds of ranks; the
/// out-of-core TraceView backend targets runs two to three orders of
/// magnitude larger. This scenario generates such traces without ever
/// materializing them: each rank's event stream is a pure function of
/// (config, rank), so writeScaleTrace() can synthesize rank r, hand it to
/// trace::V2StreamWriter, discard it and move to rank r+1 — peak memory is
/// one rank regardless of whether 1 000 or 100 000 ranks are requested.
///
/// The workload is a bulk-synchronous iteration loop with a planted
/// imbalance, shaped like the paper's COSMO-SPECS case study: every rank
/// computes (jittered per rank and iteration), exchanges halos with its
/// ring neighbors, then waits at a barrier until the slowest rank of that
/// iteration arrives. A deterministic subset of "culprit" ranks develops a
/// hiccup halfway through the run, so the later iterations show the
/// compute/wait anticorrelation the SOS analysis detects.
///
/// buildScaleTrace() materializes the identical trace in memory; for any
/// config, saving it with writeBinary (v2) is byte-identical to the
/// streamed file, which is what the eager-vs-lazy differential tests pin.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/definitions.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace perfvar::apps {

/// Configuration of the scale scenario. All costs are in ticks of
/// `resolution`; defaults describe a ~20-iteration millisecond-scale loop.
struct ScaleConfig {
  std::size_t ranks = 1024;
  std::size_t iterations = 20;
  /// Ticks per second of all timestamps (default nanoseconds).
  std::uint64_t resolution = 1'000'000'000ULL;

  /// Base cost of the compute region per iteration.
  std::uint64_t computeBaseTicks = 800'000;
  /// Uniform per-(rank, iteration) jitter added on top, in [0, jitter).
  std::uint64_t computeJitterTicks = 200'000;

  /// Per-mille of ranks that become culprits (deterministic subset).
  std::uint32_t hiccupPerMille = 10;
  /// Extra compute ticks a culprit pays each affected iteration.
  std::uint64_t hiccupExtraTicks = 600'000;
  /// First iteration (0-based) at which culprits slow down; defaults to
  /// the second half of the run. ~0ULL means iterations / 2.
  std::size_t hiccupStartIteration = static_cast<std::size_t>(-1);

  /// Fixed cost of the exchange region beyond the barrier wait; must be
  /// >= 8 so the send/recv/metric events fit before the barrier exit.
  std::uint64_t exchangeTicks = 50'000;
  /// Payload of each ring halo message.
  std::uint64_t messageBytes = 64 * 1024;

  /// Per-mille of ranks (the tail of the rank space, deterministic) that
  /// carry an event-dense compute region: skewEventsFactor extra nested
  /// compute enter/leave pairs per iteration, strictly inside the compute
  /// span. Timestamps and analysis results are unchanged — this skews the
  /// per-rank *event count* (and thus replay cost), which is what the
  /// work-stealing scheduler and the throughput benchmark exercise.
  /// 0 (the default) emits exactly the pre-skew streams, byte for byte.
  std::size_t skewTailPerMille = 0;
  std::size_t skewEventsFactor = 0;

  /// Seed of the deterministic jitter / culprit selection.
  std::uint64_t seed = 2026;
};

/// Interned definitions of the scenario (identical for both backends).
struct ScaleDefs {
  trace::FunctionId mainFunction = trace::kInvalidFunction;
  trace::FunctionId computeFunction = trace::kInvalidFunction;
  trace::FunctionId exchangeFunction = trace::kInvalidFunction;
  trace::MetricId computeTicksMetric = trace::kInvalidMetric;
};

/// Summary returned by writeScaleTrace().
struct ScaleWriteResult {
  std::size_t ranks = 0;
  std::uint64_t events = 0;       ///< total events across all ranks
  std::size_t culpritRanks = 0;   ///< ranks carrying the planted hiccup
};

/// Intern the scenario's functions/metrics into the given registries.
ScaleDefs registerScaleDefs(trace::FunctionRegistry& functions,
                            trace::MetricRegistry& metrics);

/// Process name of rank `rank` ("Rank N").
std::string scaleProcessName(std::size_t rank);

/// True when `rank` is one of the planted culprits under `config`.
bool scaleRankIsCulprit(const ScaleConfig& config, trace::ProcessId rank);

/// The time-sorted event stream of one rank: a pure deterministic
/// function of (config, rank). Both backends below are built from this.
std::vector<trace::Event> scaleRankEvents(const ScaleConfig& config,
                                          trace::ProcessId rank,
                                          const ScaleDefs& defs);

/// Stream the scenario to a PVTF v2 file at `path`, one rank at a time
/// (peak memory = one rank's events). Byte-identical to saving
/// buildScaleTrace(config) with writeBinary v2. Throws perfvar::Error on
/// I/O failure or a config with zero ranks/iterations.
ScaleWriteResult writeScaleTrace(const std::string& path,
                                 const ScaleConfig& config);

/// Materialize the identical trace in memory (small configs / tests).
trace::Trace buildScaleTrace(const ScaleConfig& config);

}  // namespace perfvar::apps

#endif  // PERFVAR_APPS_SCALE_SYNTHETIC_HPP
