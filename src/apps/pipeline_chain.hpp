#ifndef PERFVAR_APPS_PIPELINE_CHAIN_HPP
#define PERFVAR_APPS_PIPELINE_CHAIN_HPP

/// \file pipeline_chain.hpp
/// Pipelined producer–consumer chain with a planted serializing rank.
///
/// Ground-truth workload of the dependency-graph analyses: `ranks` stages
/// form a linear pipeline (rank r receives an item from r-1, processes
/// it, sends it to r+1). One stage — `slowRank` — pays `slowExtraTicks`
/// per item, so in steady state every downstream rank waits on it and the
/// critical path runs almost entirely through the slow stage's compute
/// region. The known answer: the serialization detector must report
/// `slowRank` as the dominated rank and (slowRank, stage_compute) as the
/// bottleneck region.
///
/// There is no backpressure: upstream stages run freely, so the slow
/// stage's own receives are never late and its criticality is pure
/// compute, not waiting.
///
/// Every rank's stream is a deterministic pure function of (config,
/// rank); cross-rank arrival times come from a closed forward recurrence
/// over the (small) rank × item schedule.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/definitions.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace perfvar::apps {

/// Configuration of the pipeline scenario. All costs are in ticks of
/// `resolution`.
struct PipelineConfig {
  std::size_t ranks = 8;
  std::size_t items = 32;
  /// Ticks per second of all timestamps (default nanoseconds).
  std::uint64_t resolution = 1'000'000'000ULL;

  /// Per-item cost of every stage.
  std::uint64_t stageTicks = 100'000;
  /// Extra per-item cost of the serializing stage.
  std::uint64_t slowExtraTicks = 400'000;
  /// The serializing stage; ~0ULL means ranks / 2.
  std::size_t slowRank = static_cast<std::size_t>(-1);

  /// Duration of the send region (>= 2: the send event sits inside it).
  std::uint64_t sendTicks = 2'000;
  /// Wire latency between a send and the matching arrival.
  std::uint64_t linkTicks = 500;
  /// Uniform per-(rank, item) compute jitter in [0, jitter); 0 keeps the
  /// schedule exactly at the closed-form ground truth.
  std::uint64_t jitterTicks = 0;
  /// Seed of the deterministic jitter.
  std::uint64_t seed = 2026;
};

/// Interned definitions of the scenario.
struct PipelineDefs {
  trace::FunctionId mainFunction = trace::kInvalidFunction;
  trace::FunctionId stageFunction = trace::kInvalidFunction;
  trace::FunctionId recvFunction = trace::kInvalidFunction;
  trace::FunctionId sendFunction = trace::kInvalidFunction;
};

/// Intern the scenario's functions into the given registry.
PipelineDefs registerPipelineDefs(trace::FunctionRegistry& functions);

/// Process name of rank `rank` ("Stage N").
std::string pipelineProcessName(std::size_t rank);

/// The serializing rank under `config` (resolves the ~0 default).
std::size_t pipelineSlowRank(const PipelineConfig& config);

/// The time-sorted event stream of one rank: a pure deterministic
/// function of (config, rank). Throws perfvar::Error on an unusable
/// config (fewer than 2 ranks, zero items, sendTicks < 2).
std::vector<trace::Event> pipelineRankEvents(const PipelineConfig& config,
                                             trace::ProcessId rank,
                                             const PipelineDefs& defs);

/// Materialize the scenario in memory.
trace::Trace buildPipelineTrace(const PipelineConfig& config);

}  // namespace perfvar::apps

#endif  // PERFVAR_APPS_PIPELINE_CHAIN_HPP
