#ifndef PERFVAR_APPS_WRF_HPP
#define PERFVAR_APPS_WRF_HPP

/// \file wrf.hpp
/// WRF workload model (paper case study C, 12km CONUS benchmark shape).
///
/// 64 ranks on an 8x8 decomposition: an initialization + I/O phase,
/// then iterations of dynamics (advection/pressure) and physics
/// (microphysics/radiation) with halo exchanges and a global reduction.
/// One rank's physics hits denormal operands: a high rate of
/// floating-point exceptions (FR_FPU_EXCEPTIONS_SSE_MICROTRAPS) slows its
/// computation, making every other rank wait - Figure 6.

#include <cstdint>

#include "sim/program.hpp"
#include "sim/simulator.hpp"

namespace perfvar::apps {

/// Configuration of the WRF scenario.
struct WrfConfig {
  std::uint32_t gridX = 8;  ///< ranks = gridX * gridY
  std::uint32_t gridY = 8;
  std::size_t timesteps = 50;
  double initSeconds = 0.25;       ///< per-rank model initialization
  double ioSeconds = 0.9;          ///< input reading on rank 0
  std::uint64_t inputBytes = 64 * 1024 * 1024;  ///< broadcast payload
  double dynSeconds = 2.6e-3;      ///< dynamical core per step
  double physSeconds = 2.2e-3;     ///< physics per step (healthy rank)
  double radSeconds = 0.9e-3;      ///< radiation per step
  /// The FP-exception anomaly.
  std::uint32_t fpeRank = 39;
  double fpeSlowdown = 1.8;        ///< physics slowdown factor on fpeRank
  double fpeRatePerSecond = 4.0e7; ///< exceptions per second of physics
  double fpeBackgroundRate = 2.0e3;  ///< residual rate on healthy ranks
  std::uint64_t haloBytes = 32 * 1024;
  std::uint64_t reduceBytes = 128;
  double noiseSigma = 0.02;
  std::uint64_t seed = 7;
};

/// Scenario with ground truth.
struct WrfScenario {
  sim::Program program;
  sim::SimOptions simOptions;
  trace::FunctionId iterationFunction = trace::kInvalidFunction;
  trace::FunctionId physicsFunction = trace::kInvalidFunction;
  std::uint32_t culpritRank = 0;
  std::size_t timesteps = 0;
  /// Name of the FP-exception counter metric in the produced trace.
  std::string fpExceptionMetricName;
};

/// Build the scenario.
WrfScenario buildWrf(const WrfConfig& config = {});

}  // namespace perfvar::apps

#endif  // PERFVAR_APPS_WRF_HPP
