#include "apps/cosmo_specs_fd4.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace perfvar::apps {

namespace {

CloudField fd4CloudField(const CosmoSpecsFd4Config& config) {
  // A cloud drifting diagonally across the block grid, so the balancer
  // has to migrate blocks repeatedly over the run.
  Cloud cloud;
  cloud.x0 = 0.2 * static_cast<double>(config.blocksX);
  cloud.y0 = 0.2 * static_cast<double>(config.blocksY);
  cloud.vx = 0.6 * static_cast<double>(config.blocksX) /
             std::max<double>(1.0, static_cast<double>(config.iterations));
  cloud.vy = 0.5 * static_cast<double>(config.blocksY) /
             std::max<double>(1.0, static_cast<double>(config.iterations));
  cloud.sigma0 = 0.15 * static_cast<double>(config.blocksX);
  cloud.amp0 = 1.0;
  return CloudField(config.blocksX, config.blocksY, {cloud});
}

}  // namespace

CosmoSpecsFd4Scenario buildCosmoSpecsFd4(const CosmoSpecsFd4Config& config) {
  PERFVAR_REQUIRE(config.ranks >= 2, "need at least two ranks");
  PERFVAR_REQUIRE(config.interruptRank < config.ranks,
                  "interrupt rank out of range");
  PERFVAR_REQUIRE(config.interruptIteration < config.iterations &&
                      config.interruptInnerStep < config.innerTimesteps,
                  "interruption position out of range");

  const CloudField field = fd4CloudField(config);
  balance::Fd4Balancer balancer(config.blocksX, config.blocksY, config.ranks,
                                config.balancer);
  const auto ranks = static_cast<std::uint32_t>(config.ranks);

  sim::ProgramBuilder b(ranks);
  const auto fIter = b.function("coupling_iteration", "ITERATION");
  const auto fCosmo = b.function("cosmo_dynamics", "COSMO");
  const auto fFd4 = b.function("fd4_balance", "FD4");
  const auto fStep = b.function("specs_timestep", "SPECS");
  const auto fSpecs = b.function("specs_microphysics", "SPECS");

  CosmoSpecsFd4Scenario scenario;

  for (std::size_t it = 0; it < config.iterations; ++it) {
    // Per-block SPECS cost of one inner timestep at this iteration.
    const auto masses = field.blockMasses(static_cast<double>(it));
    std::vector<double> blockSeconds(masses.size());
    for (std::size_t i = 0; i < masses.size(); ++i) {
      blockSeconds[i] = config.specsBlockBase +
                        config.specsBlockCloud * masses[i];
    }
    const balance::Fd4StepResult step = balancer.update(blockSeconds);
    scenario.migratedBlocks.push_back(step.migratedBlocks);
    scenario.balancedImbalance.push_back(step.imbalanceAfter);

    const std::vector<double> rankLoad = balancer.rankLoads(blockSeconds);

    for (std::uint32_t r = 0; r < ranks; ++r) {
      b.enter(r, fIter);
      b.compute(r, fCosmo, config.cosmoSeconds);
      b.compute(r, fFd4, config.fd4Seconds);
      b.allreduce(r, config.reduceBytes);

      for (std::size_t k = 0; k < config.innerTimesteps; ++k) {
        b.enter(r, fStep);
        sim::ComputeAttrs attrs;
        if (r == config.interruptRank && it == config.interruptIteration &&
            k == config.interruptInnerStep) {
          attrs.osDelay = config.interruptSeconds;
        }
        b.compute(r, fSpecs, rankLoad[r], attrs);

        // Halo exchange along the space-filling curve: contiguous curve
        // ranges are spatially compact, so curve neighbors are the
        // dominant communication partners.
        const auto tag = static_cast<std::uint32_t>(
            it * config.innerTimesteps + k);
        if (r > 0) {
          b.send(r, r - 1, tag, config.haloBytes);
        }
        if (r + 1 < ranks) {
          b.send(r, r + 1, tag, config.haloBytes);
        }
        if (r > 0) {
          b.recv(r, r - 1, tag);
        }
        if (r + 1 < ranks) {
          b.recv(r, r + 1, tag);
        }
        b.barrier(r);
        b.leave(r, fStep);
      }
      b.leave(r, fIter);
    }
  }

  scenario.program = b.finish();
  scenario.simOptions.noise.sigma = config.noiseSigma;
  scenario.simOptions.noise.seed = config.seed;
  scenario.iterationFunction = fIter;
  scenario.specsStepFunction = fStep;
  scenario.culpritRank = config.interruptRank;
  scenario.culpritIteration = config.interruptIteration;
  scenario.culpritFineSegment =
      config.interruptIteration * config.innerTimesteps +
      config.interruptInnerStep;
  scenario.iterations = config.iterations;
  scenario.innerTimesteps = config.innerTimesteps;
  return scenario;
}

}  // namespace perfvar::apps
