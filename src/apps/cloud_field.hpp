#ifndef PERFVAR_APPS_CLOUD_FIELD_HPP
#define PERFVAR_APPS_CLOUD_FIELD_HPP

/// \file cloud_field.hpp
/// Synthetic cloud field driving the SPECS workload models.
///
/// The COSMO-SPECS case studies hinge on one physical fact: the cost of
/// the SPECS cloud-microphysics computation "heavily depends on the
/// presence and size distribution of various cloud particle types in the
/// grid cell". The CloudField models that driver as a sum of moving,
/// growing 2-D Gaussians over the block grid; the workload models convert
/// local cloud mass into compute seconds.

#include <cstdint>
#include <vector>

namespace perfvar::apps {

/// One Gaussian cloud: position/size/intensity are linear in time.
struct Cloud {
  double x0 = 0.0;       ///< initial center (grid coordinates)
  double y0 = 0.0;
  double vx = 0.0;       ///< drift per timestep
  double vy = 0.0;
  double sigma0 = 1.0;   ///< initial radius
  double sigmaGrowth = 0.0;  ///< radius change per timestep
  double amp0 = 0.0;     ///< initial peak mass
  double ampGrowth = 0.0;    ///< peak-mass change per timestep
};

/// A field of clouds over a gridX x gridY block grid.
class CloudField {
public:
  CloudField(std::uint32_t gridX, std::uint32_t gridY,
             std::vector<Cloud> clouds);

  std::uint32_t gridX() const { return gridX_; }
  std::uint32_t gridY() const { return gridY_; }

  /// Cloud mass at block (bx, by) at timestep t (evaluated at the block
  /// center); always >= 0.
  double mass(std::uint32_t bx, std::uint32_t by, double t) const;

  /// Mass of every block at timestep t, linear index by * gridX + bx.
  std::vector<double> blockMasses(double t) const;

  /// Total mass over the grid at timestep t.
  double totalMass(double t) const;

private:
  std::uint32_t gridX_;
  std::uint32_t gridY_;
  std::vector<Cloud> clouds_;
};

}  // namespace perfvar::apps

#endif  // PERFVAR_APPS_CLOUD_FIELD_HPP
