#include "apps/wrf.hpp"

#include <vector>

#include "util/error.hpp"

namespace perfvar::apps {

WrfScenario buildWrf(const WrfConfig& config) {
  const std::uint32_t ranks = config.gridX * config.gridY;
  PERFVAR_REQUIRE(ranks >= 2, "need at least two ranks");
  PERFVAR_REQUIRE(config.fpeRank < ranks, "fpe rank out of range");
  PERFVAR_REQUIRE(config.timesteps >= 2, "need at least two timesteps");

  sim::ProgramBuilder b(ranks);
  const auto fInit = b.function("wrf_init", "INIT");
  const auto fIo = b.function("wrf_read_input", "INIT", trace::Paradigm::IO);
  const auto fIter = b.function("wrf_timestep", "ITERATION");
  const auto fDyn = b.function("dyn_advection", "WRF_DYN");
  const auto fPhys = b.function("phys_microphysics", "WRF_PHYS");
  const auto fRad = b.function("phys_radiation", "WRF_PHYS");

  const auto rankOf = [&](std::uint32_t x, std::uint32_t y) {
    return y * config.gridX + x;
  };

  // ---- initialization + input I/O + broadcast (the ~11 s lead-in of the
  // paper's Figure 6(a), scaled) ------------------------------------------
  for (std::uint32_t r = 0; r < ranks; ++r) {
    b.compute(r, fInit, config.initSeconds);
    if (r == 0) {
      b.compute(r, fIo, config.ioSeconds);
    }
    b.bcast(r, 0, config.inputBytes);
  }

  // ---- timesteps ----------------------------------------------------------
  for (std::size_t t = 0; t < config.timesteps; ++t) {
    for (std::uint32_t y = 0; y < config.gridY; ++y) {
      for (std::uint32_t x = 0; x < config.gridX; ++x) {
        const std::uint32_t r = rankOf(x, y);
        b.enter(r, fIter);
        b.compute(r, fDyn, config.dynSeconds);

        std::vector<std::uint32_t> neighbors;
        if (x > 0) neighbors.push_back(rankOf(x - 1, y));
        if (x + 1 < config.gridX) neighbors.push_back(rankOf(x + 1, y));
        if (y > 0) neighbors.push_back(rankOf(x, y - 1));
        if (y + 1 < config.gridY) neighbors.push_back(rankOf(x, y + 1));
        const auto tag = static_cast<std::uint32_t>(t);
        for (const std::uint32_t nbr : neighbors) {
          b.send(r, nbr, tag, config.haloBytes);
        }
        for (const std::uint32_t nbr : neighbors) {
          b.recv(r, nbr, tag);
        }

        sim::ComputeAttrs physAttrs;
        double phys = config.physSeconds;
        if (r == config.fpeRank) {
          phys *= config.fpeSlowdown;
          physAttrs.fpExceptions = config.fpeRatePerSecond * phys;
        } else {
          physAttrs.fpExceptions = config.fpeBackgroundRate * phys;
        }
        b.compute(r, fPhys, phys, physAttrs);
        b.compute(r, fRad, config.radSeconds);

        b.allreduce(r, config.reduceBytes);
        b.leave(r, fIter);
      }
    }
  }

  WrfScenario scenario;
  scenario.program = b.finish();
  scenario.simOptions.noise.sigma = config.noiseSigma;
  scenario.simOptions.noise.seed = config.seed;
  scenario.iterationFunction = fIter;
  scenario.physicsFunction = fPhys;
  scenario.culpritRank = config.fpeRank;
  scenario.timesteps = config.timesteps;
  scenario.fpExceptionMetricName =
      scenario.simOptions.counters.fpExceptionsMetricName;
  return scenario;
}

}  // namespace perfvar::apps
