#include "apps/cloud_field.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace perfvar::apps {

CloudField::CloudField(std::uint32_t gridX, std::uint32_t gridY,
                       std::vector<Cloud> clouds)
    : gridX_(gridX), gridY_(gridY), clouds_(std::move(clouds)) {
  PERFVAR_REQUIRE(gridX >= 1 && gridY >= 1, "grid must be non-empty");
}

double CloudField::mass(std::uint32_t bx, std::uint32_t by, double t) const {
  PERFVAR_REQUIRE(bx < gridX_ && by < gridY_, "block out of range");
  const double x = static_cast<double>(bx) + 0.5;
  const double y = static_cast<double>(by) + 0.5;
  double total = 0.0;
  for (const Cloud& c : clouds_) {
    const double cx = c.x0 + c.vx * t;
    const double cy = c.y0 + c.vy * t;
    const double sigma = std::max(1e-6, c.sigma0 + c.sigmaGrowth * t);
    const double amp = std::max(0.0, c.amp0 + c.ampGrowth * t);
    const double dx = x - cx;
    const double dy = y - cy;
    total += amp * std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
  }
  return total;
}

std::vector<double> CloudField::blockMasses(double t) const {
  std::vector<double> masses(static_cast<std::size_t>(gridX_) * gridY_);
  for (std::uint32_t by = 0; by < gridY_; ++by) {
    for (std::uint32_t bx = 0; bx < gridX_; ++bx) {
      masses[static_cast<std::size_t>(by) * gridX_ + bx] = mass(bx, by, t);
    }
  }
  return masses;
}

double CloudField::totalMass(double t) const {
  const auto masses = blockMasses(t);
  double total = 0.0;
  for (const double m : masses) {
    total += m;
  }
  return total;
}

}  // namespace perfvar::apps
