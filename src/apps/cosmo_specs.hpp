#ifndef PERFVAR_APPS_COSMO_SPECS_HPP
#define PERFVAR_APPS_COSMO_SPECS_HPP

/// \file cosmo_specs.hpp
/// COSMO-SPECS workload model (paper case study A).
///
/// The coupled weather code: COSMO (cheap regional dynamics) + SPECS
/// (expensive spectral-bin cloud microphysics) on a static 2-D
/// decomposition with one rank per block. SPECS cost follows the local
/// cloud mass; because the cloud grows over a handful of blocks, the
/// static decomposition develops a worsening load imbalance and the MPI
/// share of the run grows until waiting dominates - exactly Figure 4.

#include <cstdint>
#include <vector>

#include "apps/cloud_field.hpp"
#include "sim/program.hpp"
#include "sim/simulator.hpp"

namespace perfvar::apps {

/// Configuration of the COSMO-SPECS scenario.
struct CosmoSpecsConfig {
  std::uint32_t gridX = 10;   ///< ranks = gridX * gridY
  std::uint32_t gridY = 10;
  std::size_t timesteps = 60;
  double cosmoSeconds = 0.8e-3;     ///< uniform COSMO dynamics per step
  double couplingSeconds = 0.2e-3;  ///< model-coupling cost per step
  double specsBaseSeconds = 3.0e-3; ///< SPECS cost at zero cloud mass
  double specsCloudSeconds = 14.0e-3;  ///< extra SPECS cost per unit mass
  std::uint64_t haloBytes = 16 * 1024;
  std::uint64_t reduceBytes = 64;
  double noiseSigma = 0.01;
  std::uint64_t seed = 42;
};

/// A generated scenario: the program plus its ground truth for tests
/// and benches.
struct CosmoSpecsScenario {
  sim::Program program;
  sim::SimOptions simOptions;
  trace::FunctionId iterationFunction = trace::kInvalidFunction;
  trace::FunctionId specsFunction = trace::kInvalidFunction;
  /// Ranks carrying the cloud (expected SOS hotspots), hottest first.
  std::vector<std::uint32_t> hotRanks;
  std::uint32_t hottestRank = 0;
  std::size_t timesteps = 0;
};

/// Build the scenario. The default cloud is stationary, centered so the
/// overloaded ranks are 44, 45, 54, 55, 64, 65 (10x10 grid) with rank 54
/// the worst - matching the processes named in the paper's Figure 4(b).
CosmoSpecsScenario buildCosmoSpecs(const CosmoSpecsConfig& config = {});

/// The cloud field the default scenario uses (exposed for tests).
CloudField cosmoSpecsCloudField(const CosmoSpecsConfig& config);

}  // namespace perfvar::apps

#endif  // PERFVAR_APPS_COSMO_SPECS_HPP
