/// \file pipeline_chain.cpp
/// The pipelined producer–consumer scenario (see pipeline_chain.hpp).

#include "apps/pipeline_chain.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace perfvar::apps {

namespace {

/// splitmix64 finalizer (same stateless mixer as the scale scenario).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void requireUsable(const PipelineConfig& config) {
  if (config.ranks < 2 || config.items == 0) {
    throw Error("pipeline scenario requires >= 2 ranks and >= 1 item");
  }
  if (config.sendTicks < 2) {
    throw Error("pipeline scenario sendTicks must be >= 2");
  }
  if (config.stageTicks == 0) {
    throw Error("pipeline scenario stageTicks must be >= 1");
  }
}

std::uint64_t stageCost(const PipelineConfig& config, std::size_t rank,
                        std::size_t item) {
  std::uint64_t cost = config.stageTicks;
  if (rank == pipelineSlowRank(config)) {
    cost += config.slowExtraTicks;
  }
  if (config.jitterTicks > 0) {
    cost += mix(config.seed ^
                mix(static_cast<std::uint64_t>(rank) * 0x10001ULL + item)) %
            config.jitterTicks;
  }
  return cost;
}

constexpr std::uint32_t kItemTag = 11;
constexpr std::uint64_t kItemBytes = 16 * 1024;
constexpr trace::Timestamp kRunStart = 1000;

/// The full schedule of the pipeline: when each (rank, item) pair starts
/// waiting, finishes receiving, and finishes computing. The forward
/// recurrence over items (outer) and ranks (inner) is the ground truth
/// the detectors are validated against.
struct Schedule {
  // Indexed [rank * items + item].
  std::vector<trace::Timestamp> waitFrom;   ///< recv region enter (r > 0)
  std::vector<trace::Timestamp> recvDone;   ///< matched arrival consumed
  std::vector<trace::Timestamp> computeEnd;
  std::vector<trace::Timestamp> sendAt;     ///< send event (r < last)
  std::vector<trace::Timestamp> finish;     ///< per-rank final timestamp
};

Schedule computeSchedule(const PipelineConfig& config) {
  const std::size_t n = config.ranks * config.items;
  Schedule s;
  s.waitFrom.assign(n, 0);
  s.recvDone.assign(n, 0);
  s.computeEnd.assign(n, 0);
  s.sendAt.assign(n, 0);
  s.finish.assign(config.ranks, kRunStart);

  std::vector<trace::Timestamp> ready(config.ranks, kRunStart);
  for (std::size_t item = 0; item < config.items; ++item) {
    for (std::size_t rank = 0; rank < config.ranks; ++rank) {
      const std::size_t at = rank * config.items + item;
      s.waitFrom[at] = ready[rank];
      if (rank == 0) {
        s.recvDone[at] = ready[rank];
      } else {
        const trace::Timestamp arrival =
            s.sendAt[(rank - 1) * config.items + item] + config.linkTicks;
        s.recvDone[at] = std::max(arrival, ready[rank]);
      }
      s.computeEnd[at] = s.recvDone[at] + stageCost(config, rank, item);
      if (rank + 1 < config.ranks) {
        s.sendAt[at] = s.computeEnd[at] + 1;
        ready[rank] = s.computeEnd[at] + config.sendTicks;
      } else {
        ready[rank] = s.computeEnd[at];
      }
    }
  }
  for (std::size_t rank = 0; rank < config.ranks; ++rank) {
    s.finish[rank] = ready[rank];
  }
  return s;
}

}  // namespace

PipelineDefs registerPipelineDefs(trace::FunctionRegistry& functions) {
  PipelineDefs defs;
  defs.mainFunction =
      functions.intern("main", "app", trace::Paradigm::Compute);
  defs.stageFunction =
      functions.intern("stage_compute", "app", trace::Paradigm::Compute);
  defs.recvFunction =
      functions.intern("MPI_Recv", "mpi", trace::Paradigm::MPI);
  defs.sendFunction =
      functions.intern("MPI_Send", "mpi", trace::Paradigm::MPI);
  return defs;
}

std::string pipelineProcessName(std::size_t rank) {
  return "Stage " + std::to_string(rank);
}

std::size_t pipelineSlowRank(const PipelineConfig& config) {
  return config.slowRank == static_cast<std::size_t>(-1) ? config.ranks / 2
                                                         : config.slowRank;
}

std::vector<trace::Event> pipelineRankEvents(const PipelineConfig& config,
                                             trace::ProcessId rank,
                                             const PipelineDefs& defs) {
  using trace::Event;
  requireUsable(config);
  const Schedule s = computeSchedule(config);
  const std::size_t r = rank;

  std::vector<Event> events;
  events.reserve(2 + config.items * 8);
  events.push_back(Event::enter(kRunStart, defs.mainFunction));
  for (std::size_t item = 0; item < config.items; ++item) {
    const std::size_t at = r * config.items + item;
    if (r > 0) {
      events.push_back(Event::enter(s.waitFrom[at], defs.recvFunction));
      events.push_back(Event::mpiRecv(s.recvDone[at],
                                      static_cast<trace::ProcessId>(r - 1),
                                      kItemTag, kItemBytes));
      events.push_back(Event::leave(s.recvDone[at], defs.recvFunction));
    }
    events.push_back(Event::enter(s.recvDone[at], defs.stageFunction));
    events.push_back(Event::leave(s.computeEnd[at], defs.stageFunction));
    if (r + 1 < config.ranks) {
      events.push_back(Event::enter(s.computeEnd[at], defs.sendFunction));
      events.push_back(Event::mpiSend(s.sendAt[at],
                                      static_cast<trace::ProcessId>(r + 1),
                                      kItemTag, kItemBytes));
      events.push_back(
          Event::leave(s.computeEnd[at] + config.sendTicks, defs.sendFunction));
    }
  }
  events.push_back(Event::leave(s.finish[r], defs.mainFunction));
  return events;
}

trace::Trace buildPipelineTrace(const PipelineConfig& config) {
  requireUsable(config);
  trace::Trace tr;
  tr.resolution = config.resolution;
  const PipelineDefs defs = registerPipelineDefs(tr.functions);
  tr.processes.resize(config.ranks);
  for (std::size_t r = 0; r < config.ranks; ++r) {
    tr.processes[r].name = pipelineProcessName(r);
    tr.processes[r].events =
        pipelineRankEvents(config, static_cast<trace::ProcessId>(r), defs);
  }
  return tr;
}

}  // namespace perfvar::apps
