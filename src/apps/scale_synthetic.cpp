/// \file scale_synthetic.cpp
/// The deterministic scale scenario (see scale_synthetic.hpp).

#include "apps/scale_synthetic.hpp"

#include <string>

#include "trace/stream_writer.hpp"
#include "util/error.hpp"

namespace perfvar::apps {

namespace {

/// splitmix64 finalizer: the stateless mixer behind the per-(rank,
/// iteration) jitter. Stateless so rank r's stream can be synthesized
/// without generating ranks 0..r-1 first.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::size_t hiccupStart(const ScaleConfig& config) {
  return config.hiccupStartIteration == static_cast<std::size_t>(-1)
             ? config.iterations / 2
             : config.hiccupStartIteration;
}

/// Compute cost of (rank, iteration) including the culprit hiccup.
std::uint64_t computeTicks(const ScaleConfig& config, trace::ProcessId rank,
                           std::size_t iteration, bool culprit) {
  std::uint64_t ticks = config.computeBaseTicks;
  if (config.computeJitterTicks > 0) {
    const std::uint64_t h =
        mix(config.seed ^ mix(static_cast<std::uint64_t>(rank) * 0x10001ULL +
                              iteration));
    ticks += h % config.computeJitterTicks;
  }
  if (culprit && iteration >= hiccupStart(config)) {
    ticks += config.hiccupExtraTicks;
  }
  return ticks;
}

/// The barrier-exit bound of one iteration: base + max possible jitter +
/// (hiccup, once any rank may carry it) + the fixed exchange cost. The
/// same closed form for every rank, so all ranks leave the exchange
/// region at the same timestamp without any cross-rank scan.
std::uint64_t iterationSpanTicks(const ScaleConfig& config,
                                 std::size_t iteration, bool anyCulprits) {
  std::uint64_t span = config.computeBaseTicks + config.exchangeTicks;
  if (config.computeJitterTicks > 0) {
    span += config.computeJitterTicks - 1;
  }
  if (anyCulprits && iteration >= hiccupStart(config)) {
    span += config.hiccupExtraTicks;
  }
  return span;
}

std::size_t countCulprits(const ScaleConfig& config) {
  std::size_t n = 0;
  for (std::size_t r = 0; r < config.ranks; ++r) {
    if (scaleRankIsCulprit(config, static_cast<trace::ProcessId>(r))) {
      ++n;
    }
  }
  return n;
}

/// Extra nested compute pairs of `rank`: skewEventsFactor for the
/// deterministic tail of the rank space, 0 elsewhere (and everywhere at
/// the default config, which keeps pre-skew streams byte-identical).
std::size_t skewPairs(const ScaleConfig& config, trace::ProcessId rank) {
  if (config.skewTailPerMille == 0 || config.skewEventsFactor == 0) {
    return 0;
  }
  const std::size_t tail =
      (config.ranks * config.skewTailPerMille + 999) / 1000;
  return static_cast<std::size_t>(rank) >= config.ranks - tail
             ? config.skewEventsFactor
             : 0;
}

void requireUsable(const ScaleConfig& config) {
  if (config.ranks == 0 || config.iterations == 0) {
    throw Error("scale scenario requires at least one rank and iteration");
  }
  if (config.exchangeTicks < 8) {
    throw Error("scale scenario exchangeTicks must be >= 8");
  }
  if (config.skewTailPerMille > 0 && config.skewEventsFactor > 0 &&
      config.computeBaseTicks < 2 * config.skewEventsFactor + 2) {
    // The nested pairs sit at t+1+2i / t+2+2i and must close before the
    // compute leave at t + work (work >= computeBaseTicks).
    throw Error("scale scenario computeBaseTicks too small for the skew");
  }
}

constexpr std::uint32_t kHaloTag = 7;
constexpr trace::Timestamp kRunStart = 1000;

}  // namespace

ScaleDefs registerScaleDefs(trace::FunctionRegistry& functions,
                            trace::MetricRegistry& metrics) {
  ScaleDefs defs;
  defs.mainFunction =
      functions.intern("main", "app", trace::Paradigm::Compute);
  defs.computeFunction =
      functions.intern("compute", "app", trace::Paradigm::Compute);
  defs.exchangeFunction =
      functions.intern("MPI_Exchange", "mpi", trace::Paradigm::MPI);
  defs.computeTicksMetric =
      metrics.intern("compute_ticks", "ticks", trace::MetricMode::Absolute);
  return defs;
}

std::string scaleProcessName(std::size_t rank) {
  return "Rank " + std::to_string(rank);
}

bool scaleRankIsCulprit(const ScaleConfig& config, trace::ProcessId rank) {
  if (config.hiccupPerMille == 0 || config.hiccupExtraTicks == 0) {
    return false;
  }
  const std::uint64_t h =
      mix(config.seed ^ 0xC0FFEEULL ^ static_cast<std::uint64_t>(rank));
  return h % 1000 < config.hiccupPerMille;
}

std::vector<trace::Event> scaleRankEvents(const ScaleConfig& config,
                                          trace::ProcessId rank,
                                          const ScaleDefs& defs) {
  using trace::Event;
  requireUsable(config);
  const bool culprit = scaleRankIsCulprit(config, rank);
  const bool anyCulprits =
      config.hiccupPerMille > 0 && config.hiccupExtraTicks > 0;
  const auto p = static_cast<std::uint64_t>(config.ranks);
  const auto next =
      static_cast<trace::ProcessId>((static_cast<std::uint64_t>(rank) + 1) % p);
  const auto prev = static_cast<trace::ProcessId>(
      (static_cast<std::uint64_t>(rank) + p - 1) % p);

  const std::size_t pairs = skewPairs(config, rank);

  std::vector<Event> events;
  events.reserve(2 + config.iterations * (7 + 2 * pairs));
  events.push_back(Event::enter(kRunStart, defs.mainFunction));
  trace::Timestamp t = kRunStart;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    const std::uint64_t work = computeTicks(config, rank, iter, culprit);
    const trace::Timestamp barrierExit =
        t + iterationSpanTicks(config, iter, anyCulprits);
    events.push_back(Event::enter(t, defs.computeFunction));
    // Event-density skew: nested sub-steps strictly inside the compute
    // span. They reuse the compute function (no definitions change) and
    // leave every boundary timestamp untouched.
    for (std::size_t i = 0; i < pairs; ++i) {
      events.push_back(Event::enter(t + 1 + 2 * i, defs.computeFunction));
      events.push_back(Event::leave(t + 2 + 2 * i, defs.computeFunction));
    }
    events.push_back(Event::leave(t + work, defs.computeFunction));
    events.push_back(Event::enter(t + work, defs.exchangeFunction));
    events.push_back(
        Event::mpiSend(t + work + 1, next, kHaloTag, config.messageBytes));
    events.push_back(
        Event::mpiRecv(t + work + 2, prev, kHaloTag, config.messageBytes));
    events.push_back(Event::metric(t + work + 3, defs.computeTicksMetric,
                                   static_cast<double>(work)));
    events.push_back(Event::leave(barrierExit, defs.exchangeFunction));
    t = barrierExit;
  }
  events.push_back(Event::leave(t, defs.mainFunction));
  return events;
}

ScaleWriteResult writeScaleTrace(const std::string& path,
                                 const ScaleConfig& config) {
  requireUsable(config);
  trace::FunctionRegistry functions;
  trace::MetricRegistry metrics;
  const ScaleDefs defs = registerScaleDefs(functions, metrics);
  std::vector<std::string> names;
  names.reserve(config.ranks);
  for (std::size_t r = 0; r < config.ranks; ++r) {
    names.push_back(scaleProcessName(r));
  }

  trace::V2StreamWriter writer(path, config.resolution, functions, metrics,
                               names);
  ScaleWriteResult result;
  result.ranks = config.ranks;
  result.culpritRanks = countCulprits(config);
  for (std::size_t r = 0; r < config.ranks; ++r) {
    const auto rank = static_cast<trace::ProcessId>(r);
    const std::vector<trace::Event> events =
        scaleRankEvents(config, rank, defs);
    writer.writeRank(rank, events);
    result.events += events.size();
  }
  writer.finish();
  return result;
}

trace::Trace buildScaleTrace(const ScaleConfig& config) {
  requireUsable(config);
  trace::Trace tr;
  tr.resolution = config.resolution;
  const ScaleDefs defs = registerScaleDefs(tr.functions, tr.metrics);
  tr.processes.resize(config.ranks);
  for (std::size_t r = 0; r < config.ranks; ++r) {
    tr.processes[r].name = scaleProcessName(r);
    tr.processes[r].events =
        scaleRankEvents(config, static_cast<trace::ProcessId>(r), defs);
  }
  return tr;
}

}  // namespace perfvar::apps
