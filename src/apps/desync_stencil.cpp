/// \file desync_stencil.cpp
/// The desynchronized-stencil scenario (see desync_stencil.hpp).

#include "apps/desync_stencil.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace perfvar::apps {

namespace {

/// splitmix64 finalizer (same stateless mixer as the scale scenario).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void requireUsable(const StencilConfig& config) {
  if (config.ranks < 3 || config.iterations == 0) {
    throw Error("stencil scenario requires >= 3 ranks and >= 1 iteration");
  }
  if (config.exchangeTicks < 8) {
    throw Error("stencil scenario exchangeTicks must be >= 8");
  }
  if (config.computeTicks == 0) {
    throw Error("stencil scenario computeTicks must be >= 1");
  }
}

std::size_t delayIterationOf(const StencilConfig& config) {
  return config.delayIteration == static_cast<std::size_t>(-1)
             ? config.iterations / 3
             : config.delayIteration;
}

std::uint64_t computeCost(const StencilConfig& config, std::size_t rank,
                          std::size_t iteration) {
  std::uint64_t cost = config.computeTicks;
  if (rank == stencilDelayRank(config) &&
      iteration == delayIterationOf(config)) {
    cost += config.delayExtraTicks;
  }
  if (config.jitterTicks > 0) {
    cost += mix(config.seed ^ mix(static_cast<std::uint64_t>(rank) *
                                      0x20003ULL +
                                  iteration)) %
            config.jitterTicks;
  }
  return cost;
}

/// Tag of a message travelling toward rank 0 (sent by r to r-1) and away
/// from it (sent by r to r+1). Receives swap them: rank r consumes its
/// left neighbor's kTagRight and its right neighbor's kTagLeft.
constexpr std::uint32_t kTagLeft = 3;
constexpr std::uint32_t kTagRight = 4;
constexpr std::uint64_t kHaloBytes = 8 * 1024;
constexpr trace::Timestamp kRunStart = 1000;

/// The full schedule: per (rank, iteration) the compute end `c` and the
/// two receive completions. No barrier — each rank proceeds as soon as
/// its own halos arrived, which is exactly what lets the wave travel.
struct Schedule {
  // Indexed [rank * iterations + iteration].
  std::vector<trace::Timestamp> start;
  std::vector<trace::Timestamp> computeEnd;
  std::vector<trace::Timestamp> recvLeft;   ///< from r-1 (0 when r == 0)
  std::vector<trace::Timestamp> recvRight;  ///< from r+1 (0 when r == last)
  std::vector<trace::Timestamp> exchangeEnd;
};

Schedule computeSchedule(const StencilConfig& config) {
  const std::size_t n = config.ranks * config.iterations;
  Schedule s;
  s.start.assign(n, 0);
  s.computeEnd.assign(n, 0);
  s.recvLeft.assign(n, 0);
  s.recvRight.assign(n, 0);
  s.exchangeEnd.assign(n, 0);

  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    // Pass 1: starts and compute ends (rank-local given the previous
    // iteration's exchange ends).
    for (std::size_t rank = 0; rank < config.ranks; ++rank) {
      const std::size_t at = rank * config.iterations + iter;
      s.start[at] = iter == 0 ? kRunStart : s.exchangeEnd[at - 1];
      s.computeEnd[at] = s.start[at] + computeCost(config, rank, iter);
    }
    // Pass 2: receives and exchange ends (need both neighbors' computeEnd
    // of this iteration). Sends depart at c+1 (left) and c+2 (right).
    for (std::size_t rank = 0; rank < config.ranks; ++rank) {
      const std::size_t at = rank * config.iterations + iter;
      const trace::Timestamp c = s.computeEnd[at];
      trace::Timestamp last = c + 3;
      if (rank > 0) {
        const trace::Timestamp fromLeft =
            s.computeEnd[(rank - 1) * config.iterations + iter] + 2 +
            config.linkTicks;
        s.recvLeft[at] = std::max(last, fromLeft);
        last = s.recvLeft[at];
      }
      if (rank + 1 < config.ranks) {
        const trace::Timestamp fromRight =
            s.computeEnd[(rank + 1) * config.iterations + iter] + 1 +
            config.linkTicks;
        s.recvRight[at] = std::max(last, fromRight);
        last = s.recvRight[at];
      }
      s.exchangeEnd[at] = std::max(c + config.exchangeTicks, last);
    }
  }
  return s;
}

}  // namespace

StencilDefs registerStencilDefs(trace::FunctionRegistry& functions) {
  StencilDefs defs;
  defs.mainFunction =
      functions.intern("main", "app", trace::Paradigm::Compute);
  defs.computeFunction =
      functions.intern("compute", "app", trace::Paradigm::Compute);
  defs.exchangeFunction =
      functions.intern("MPI_Halo", "mpi", trace::Paradigm::MPI);
  return defs;
}

std::string stencilProcessName(std::size_t rank) {
  return "Cell " + std::to_string(rank);
}

std::size_t stencilDelayRank(const StencilConfig& config) {
  return config.delayRank == static_cast<std::size_t>(-1) ? config.ranks / 2
                                                          : config.delayRank;
}

std::vector<trace::Event> stencilRankEvents(const StencilConfig& config,
                                            trace::ProcessId rank,
                                            const StencilDefs& defs) {
  using trace::Event;
  requireUsable(config);
  const Schedule s = computeSchedule(config);
  const std::size_t r = rank;

  std::vector<Event> events;
  events.reserve(2 + config.iterations * 8);
  events.push_back(Event::enter(kRunStart, defs.mainFunction));
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    const std::size_t at = r * config.iterations + iter;
    const trace::Timestamp c = s.computeEnd[at];
    events.push_back(Event::enter(s.start[at], defs.computeFunction));
    events.push_back(Event::leave(c, defs.computeFunction));
    events.push_back(Event::enter(c, defs.exchangeFunction));
    if (r > 0) {
      events.push_back(Event::mpiSend(c + 1,
                                      static_cast<trace::ProcessId>(r - 1),
                                      kTagLeft, kHaloBytes));
    }
    if (r + 1 < config.ranks) {
      events.push_back(Event::mpiSend(c + 2,
                                      static_cast<trace::ProcessId>(r + 1),
                                      kTagRight, kHaloBytes));
    }
    if (r > 0) {
      events.push_back(Event::mpiRecv(s.recvLeft[at],
                                      static_cast<trace::ProcessId>(r - 1),
                                      kTagRight, kHaloBytes));
    }
    if (r + 1 < config.ranks) {
      events.push_back(Event::mpiRecv(s.recvRight[at],
                                      static_cast<trace::ProcessId>(r + 1),
                                      kTagLeft, kHaloBytes));
    }
    events.push_back(Event::leave(s.exchangeEnd[at], defs.exchangeFunction));
  }
  events.push_back(Event::leave(
      s.exchangeEnd[r * config.iterations + config.iterations - 1],
      defs.mainFunction));
  return events;
}

trace::Trace buildStencilTrace(const StencilConfig& config) {
  requireUsable(config);
  trace::Trace tr;
  tr.resolution = config.resolution;
  const StencilDefs defs = registerStencilDefs(tr.functions);
  tr.processes.resize(config.ranks);
  for (std::size_t r = 0; r < config.ranks; ++r) {
    tr.processes[r].name = stencilProcessName(r);
    tr.processes[r].events =
        stencilRankEvents(config, static_cast<trace::ProcessId>(r), defs);
  }
  return tr;
}

}  // namespace perfvar::apps
