#include "vis/color.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace perfvar::vis {

std::string Rgb::hex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string s = "#......";
  s[1] = kDigits[r >> 4];
  s[2] = kDigits[r & 0xF];
  s[3] = kDigits[g >> 4];
  s[4] = kDigits[g & 0xF];
  s[5] = kDigits[b >> 4];
  s[6] = kDigits[b & 0xF];
  return s;
}

Rgb Rgb::lerp(Rgb a, Rgb b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  const auto mix = [t](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>(
        std::lround(static_cast<double>(x) * (1.0 - t) +
                    static_cast<double>(y) * t));
  };
  return Rgb{mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b)};
}

double Rgb::luminance() const {
  return (0.2126 * r + 0.7152 * g + 0.0722 * b) / 255.0;
}

ColorMap::ColorMap(std::vector<Rgb> anchors) : anchors_(std::move(anchors)) {
  PERFVAR_REQUIRE(anchors_.size() >= 2, "color map needs at least 2 anchors");
}

Rgb ColorMap::at(double t) const {
  if (std::isnan(t)) {
    return missing_;
  }
  t = std::clamp(t, 0.0, 1.0);
  const double pos = t * static_cast<double>(anchors_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, anchors_.size() - 1);
  return Rgb::lerp(anchors_[lo], anchors_[hi], pos - static_cast<double>(lo));
}

ColorMap ColorMap::coldHot() {
  return ColorMap({Rgb{13, 39, 166},    // deep blue (cold)
                   Rgb{0, 160, 233},    // cyan
                   Rgb{58, 181, 74},    // green
                   Rgb{255, 222, 23},   // yellow
                   Rgb{243, 112, 33},   // orange
                   Rgb{215, 25, 28}});  // red (hot)
}

ColorMap ColorMap::viridis() {
  return ColorMap({Rgb{68, 1, 84}, Rgb{71, 44, 122}, Rgb{59, 81, 139},
                   Rgb{44, 113, 142}, Rgb{33, 144, 141}, Rgb{39, 173, 129},
                   Rgb{92, 200, 99}, Rgb{170, 220, 50}, Rgb{253, 231, 37}});
}

ColorMap ColorMap::grayscale() {
  return ColorMap({Rgb{255, 255, 255}, Rgb{0, 0, 0}});
}

ColorMap ColorMap::monochrome(Rgb tone) {
  return ColorMap({Rgb{255, 255, 255}, tone});
}

ValueScale ValueScale::linear(double lo, double hi) {
  return ValueScale(lo, hi);
}

namespace {

std::vector<double> finiteValues(const std::vector<double>& values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const double v : values) {
    if (std::isfinite(v)) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace

ValueScale ValueScale::fromData(const std::vector<double>& values) {
  const auto finite = finiteValues(values);
  if (finite.empty()) {
    return ValueScale(0.0, 0.0);
  }
  const auto [mn, mx] = std::minmax_element(finite.begin(), finite.end());
  return ValueScale(*mn, *mx);
}

ValueScale ValueScale::robust(const std::vector<double>& values, double qLow,
                              double qHigh) {
  PERFVAR_REQUIRE(qLow < qHigh, "robust scale: qLow must be below qHigh");
  const auto finite = finiteValues(values);
  if (finite.empty()) {
    return ValueScale(0.0, 0.0);
  }
  return ValueScale(stats::quantile(finite, qLow),
                    stats::quantile(finite, qHigh));
}

double ValueScale::normalize(double v) const {
  if (std::isnan(v)) {
    return v;
  }
  if (hi_ <= lo_) {
    return 0.5;
  }
  return std::clamp((v - lo_) / (hi_ - lo_), 0.0, 1.0);
}

}  // namespace perfvar::vis
