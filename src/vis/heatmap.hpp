#ifndef PERFVAR_VIS_HEATMAP_HPP
#define PERFVAR_VIS_HEATMAP_HPP

/// \file heatmap.hpp
/// Heatmap rendering of [process][column] value matrices.
///
/// This is the paper's core visualization (Figures 4(b), 5(b), 5(c),
/// 6(b), 6(c)): one row per process, one column per iteration (or time
/// bin), cell color encoding the SOS-time or a counter value on the
/// cold/hot scale.

#include <string>
#include <vector>

#include "vis/color.hpp"
#include "vis/image.hpp"
#include "vis/svg.hpp"

namespace perfvar::vis {

/// Options of the heatmap renderers.
struct HeatmapOptions {
  std::string title;
  std::vector<std::string> rowLabels;  ///< optional, one per row
  ColorMap colorMap = ColorMap::coldHot();
  /// Use robust (quantile) normalization instead of min/max.
  bool robustScale = true;
  /// Explicit scale overriding the data-derived one (if lo < hi).
  double scaleLow = 0.0;
  double scaleHigh = 0.0;
  /// Cell geometry for the raster renderer (pixels).
  std::size_t cellWidth = 4;
  std::size_t cellHeight = 6;
  /// Draw a color legend bar.
  bool legend = true;
  /// Label every k-th row (0 = automatic).
  std::size_t rowLabelStride = 0;
  /// Row indices rendered as explicit "no data" bands (quarantined ranks
  /// of a salvaged trace); their cell values are ignored.
  std::vector<std::size_t> noDataRows;
  /// Color of the no-data bands.
  Rgb noDataColor{210, 210, 214};
};

/// A value matrix: rows = processes, columns = iterations / time bins.
/// Rows may have different lengths; missing cells render in the map's
/// missing color. NaN cells likewise.
using Matrix = std::vector<std::vector<double>>;

/// Render the heatmap into a raster image.
Image renderHeatmapImage(const Matrix& values, const HeatmapOptions& options);

/// Render the heatmap as an SVG document.
SvgDocument renderHeatmapSvg(const Matrix& values,
                             const HeatmapOptions& options);

/// Render the heatmap as ANSI-colored terminal text (24-bit color
/// backgrounds, one character cell per matrix cell, `maxColumns` wide -
/// wider matrices are downsampled by averaging).
std::string renderHeatmapAnsi(const Matrix& values,
                              const HeatmapOptions& options,
                              std::size_t maxColumns = 100);

/// ASCII fallback: shade characters instead of colors.
std::string renderHeatmapAscii(const Matrix& values,
                               const HeatmapOptions& options,
                               std::size_t maxColumns = 100);

/// Compute the value scale a render would use (exposed for legends and
/// for testing).
ValueScale heatmapScale(const Matrix& values, const HeatmapOptions& options);

/// Topology view: lay one value per rank out on the application's 2-D
/// process grid (rank = y * gridX + x) and render it as a heatmap image.
/// This shows the *spatial* shape of a hotspot (e.g. the cloud footprint
/// of the COSMO-SPECS case study). Requires values.size() == gridX*gridY.
Image renderTopologyImage(const std::vector<double>& valuePerRank,
                          std::size_t gridX, std::size_t gridY,
                          const HeatmapOptions& options);

/// SVG variant of the topology view, with per-cell rank labels when the
/// grid is small enough (<= 16x16).
SvgDocument renderTopologySvg(const std::vector<double>& valuePerRank,
                              std::size_t gridX, std::size_t gridY,
                              const HeatmapOptions& options);

}  // namespace perfvar::vis

#endif  // PERFVAR_VIS_HEATMAP_HPP
