#include "vis/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace perfvar::vis {

namespace {

/// Categorical palette for application function groups.
const std::vector<Rgb>& categoricalPalette() {
  static const std::vector<Rgb> kPalette = {
      Rgb{123, 63, 153},   // purple (e.g. SPECS in the paper's Fig. 4)
      Rgb{58, 181, 74},    // green (COSMO)
      Rgb{255, 222, 23},   // yellow (coupling)
      Rgb{0, 114, 188},    // blue (dynamics)
      Rgb{140, 98, 57},    // brown (physics)
      Rgb{0, 169, 157},    // teal
      Rgb{236, 0, 140},    // magenta
      Rgb{247, 148, 29},   // orange
      Rgb{102, 102, 102},  // gray
      Rgb{141, 198, 63},   // light green
  };
  return kPalette;
}

/// Invoke `cb(function, t0, t1)` for every maximal interval during which
/// `function` is on top of the call stack of the stream.
template <typename Callback>
void forEachTopInterval(trace::EventSpan events, Callback&& cb) {
  std::vector<trace::FunctionId> stack;
  trace::Timestamp prev = 0;
  bool first = true;
  for (const trace::Event& e : events) {
    if (e.kind != trace::EventKind::Enter &&
        e.kind != trace::EventKind::Leave) {
      continue;
    }
    if (!first && !stack.empty() && e.time > prev) {
      cb(stack.back(), prev, e.time);
    }
    if (e.kind == trace::EventKind::Enter) {
      stack.push_back(e.ref);
    } else {
      PERFVAR_REQUIRE(!stack.empty() && stack.back() == e.ref,
                      "timeline: unbalanced enter/leave");
      stack.pop_back();
    }
    prev = e.time;
    first = false;
  }
}

struct TimeWindow {
  trace::Timestamp start;
  trace::Timestamp end;
};

TimeWindow resolveWindow(const trace::TraceView& tr,
                         const TimelineOptions& options) {
  if (options.windowEnd > options.windowStart) {
    return {options.windowStart, options.windowEnd};
  }
  return {tr.startTime(), tr.endTime()};
}

}  // namespace

FunctionColors FunctionColors::standard(const trace::TraceView& tr) {
  FunctionColors fc;
  fc.view_ = tr;
  fc.byFunction_.resize(tr.functions().size());
  std::map<std::string, Rgb> groupColor;
  std::size_t nextPaletteSlot = 0;

  for (std::size_t f = 0; f < tr.functions().size(); ++f) {
    const auto& def = tr.functions().at(static_cast<trace::FunctionId>(f));
    Rgb c;
    switch (def.paradigm) {
      case trace::Paradigm::MPI:
        c = Rgb{215, 25, 28};  // red, as in Vampir
        break;
      case trace::Paradigm::OpenMP:
        c = Rgb{247, 148, 29};  // orange
        break;
      case trace::Paradigm::IO:
        c = Rgb{121, 85, 61};  // brown
        break;
      case trace::Paradigm::Memory:
        c = Rgb{150, 150, 200};
        break;
      default: {
        const std::string key = def.group.empty() ? def.name : def.group;
        const auto it = groupColor.find(key);
        if (it != groupColor.end()) {
          c = it->second;
        } else {
          const auto& palette = categoricalPalette();
          c = palette[nextPaletteSlot % palette.size()];
          ++nextPaletteSlot;
          groupColor.emplace(key, c);
        }
        break;
      }
    }
    fc.byFunction_[f] = c;
  }

  // Legend: one entry per distinct label.
  std::map<std::string, Rgb> legendMap;
  for (std::size_t f = 0; f < tr.functions().size(); ++f) {
    const auto& def = tr.functions().at(static_cast<trace::FunctionId>(f));
    std::string label;
    if (def.paradigm == trace::Paradigm::MPI) {
      label = "MPI";
    } else if (def.paradigm == trace::Paradigm::OpenMP) {
      label = "OpenMP";
    } else if (def.paradigm == trace::Paradigm::IO) {
      label = "I/O";
    } else {
      label = def.group.empty() ? def.name : def.group;
    }
    legendMap.emplace(label, fc.byFunction_[f]);
  }
  fc.legend_.assign(legendMap.begin(), legendMap.end());
  return fc;
}

Rgb FunctionColors::color(trace::FunctionId f) const {
  PERFVAR_REQUIRE(f < byFunction_.size(), "invalid function id");
  return byFunction_[f];
}

void FunctionColors::setGroupColor(const std::string& group, Rgb c) {
  PERFVAR_REQUIRE(view_.valid(), "uninitialized FunctionColors");
  for (std::size_t f = 0; f < view_.functions().size(); ++f) {
    if (view_.functions().at(static_cast<trace::FunctionId>(f)).group ==
        group) {
      byFunction_[f] = c;
    }
  }
  for (auto& [label, color] : legend_) {
    if (label == group) {
      color = c;
    }
  }
}

std::vector<std::pair<std::string, Rgb>> FunctionColors::legend() const {
  return legend_;
}

std::vector<std::vector<trace::FunctionId>> timelineBins(
    const trace::TraceView& tr, const TimelineOptions& options) {
  PERFVAR_REQUIRE(options.bins > 0, "timeline needs at least one bin");
  const TimeWindow window = resolveWindow(tr, options);
  const double span = static_cast<double>(window.end - window.start);
  const std::size_t bins = options.bins;
  const std::size_t nFuncs = tr.functions().size();

  std::vector<std::vector<trace::FunctionId>> result(
      tr.processCount(),
      std::vector<trace::FunctionId>(bins, trace::kInvalidFunction));
  for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
    if (tr.isQuarantined(p)) {
      std::fill(result[p].begin(), result[p].end(), kTimelineNoData);
    }
  }
  if (span <= 0.0) {
    return result;
  }

  // coverage[bin][func] = covered ticks within the bin.
  std::vector<std::vector<double>> coverage(bins,
                                            std::vector<double>(nFuncs, 0.0));
  for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
    if (tr.isQuarantined(p)) {
      continue;
    }
    for (auto& binRow : coverage) {
      std::fill(binRow.begin(), binRow.end(), 0.0);
    }
    const trace::RankPin pin = tr.rank(p);
    forEachTopInterval(
        pin.events(),
        [&](trace::FunctionId f, trace::Timestamp t0, trace::Timestamp t1) {
          const trace::Timestamp a = std::max(t0, window.start);
          const trace::Timestamp b = std::min(t1, window.end);
          if (a >= b) {
            return;
          }
          const double binWidth = span / static_cast<double>(bins);
          const auto firstBin = static_cast<std::size_t>(
              static_cast<double>(a - window.start) / binWidth);
          const auto lastBin = std::min(
              bins - 1, static_cast<std::size_t>(
                            static_cast<double>(b - 1 - window.start) /
                            binWidth));
          for (std::size_t bin = firstBin; bin <= lastBin; ++bin) {
            const double binStart =
                static_cast<double>(window.start) +
                binWidth * static_cast<double>(bin);
            const double lo = std::max(binStart, static_cast<double>(a));
            const double hi =
                std::min(binStart + binWidth, static_cast<double>(b));
            if (hi > lo) {
              coverage[bin][f] += hi - lo;
            }
          }
        });
    for (std::size_t bin = 0; bin < bins; ++bin) {
      double best = 0.0;
      trace::FunctionId bestF = trace::kInvalidFunction;
      for (std::size_t f = 0; f < nFuncs; ++f) {
        if (coverage[bin][f] > best) {
          best = coverage[bin][f];
          bestF = static_cast<trace::FunctionId>(f);
        }
      }
      result[p][bin] = bestF;
    }
  }
  return result;
}

Image renderTimelineImage(const trace::TraceView& tr,
                          const FunctionColors& colors,
                          const TimelineOptions& options) {
  const auto bins = timelineBins(tr, options);
  const std::size_t rows = bins.size();
  const std::size_t cols = options.bins;
  const std::size_t titleHeight = options.title.empty() ? 0 : 14;
  const std::size_t legendHeight =
      options.legend ? 12 * ((colors.legend().size() + 3) / 4) + 6 : 0;
  Image img(cols + 2, titleHeight + rows * options.rowHeight + legendHeight + 2);
  if (!options.title.empty()) {
    img.text(2, 2, options.title, Rgb{0, 0, 0});
  }
  const std::size_t y0 = titleHeight + 1;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const trace::FunctionId f = bins[r][c];
      const Rgb color = f == trace::kInvalidFunction ? options.idleColor
                        : f == kTimelineNoData       ? options.noDataColor
                                                     : colors.color(f);
      img.fillRect(1 + c, y0 + r * options.rowHeight, 1, options.rowHeight,
                   color);
    }
  }
  if (options.legend) {
    const auto entries = colors.legend();
    std::size_t x = 2;
    std::size_t y = y0 + rows * options.rowHeight + 4;
    for (const auto& [label, color] : entries) {
      const std::size_t w = 12 + Image::textWidth(label) + 10;
      if (x + w >= img.width() && x > 2) {
        x = 2;
        y += 12;
      }
      img.fillRect(x, y, 8, 8, color);
      img.text(x + 11, y, label, Rgb{0, 0, 0});
      x += w;
    }
  }
  return img;
}

SvgDocument renderTimelineSvg(const trace::TraceView& tr,
                              const FunctionColors& colors,
                              const TimelineOptions& options) {
  const auto bins = timelineBins(tr, options);
  const std::size_t rows = bins.size();
  const std::size_t cols = options.bins;
  const double cellW = std::max(1.0, 900.0 / static_cast<double>(cols));
  const double rowH = std::max(2.0, 500.0 / static_cast<double>(rows));
  const double titleH = options.title.empty() ? 0.0 : 24.0;
  const double legendH = options.legend ? 20.0 : 0.0;
  const double plotW = cellW * static_cast<double>(cols);
  const double plotH = rowH * static_cast<double>(rows);
  SvgDocument svg(plotW + 10, titleH + plotH + legendH + 10);
  if (!options.title.empty()) {
    svg.text(4, 16, options.title, Rgb{0, 0, 0}, 14.0);
  }
  const double x0 = 4;
  const double y0 = titleH + 4;

  for (std::size_t r = 0; r < rows; ++r) {
    // Merge equal-colored runs into single rects to keep files small.
    std::size_t c = 0;
    while (c < cols) {
      std::size_t c1 = c + 1;
      while (c1 < cols && bins[r][c1] == bins[r][c]) {
        ++c1;
      }
      const trace::FunctionId f = bins[r][c];
      const Rgb color = f == trace::kInvalidFunction ? options.idleColor
                        : f == kTimelineNoData       ? options.noDataColor
                                                     : colors.color(f);
      svg.rect(x0 + cellW * static_cast<double>(c),
               y0 + rowH * static_cast<double>(r),
               cellW * static_cast<double>(c1 - c) + 0.2, rowH + 0.2, color);
      c = c1;
    }
  }

  if (options.messageLines) {
    const TimeWindow window = resolveWindow(tr, options);
    const double span = static_cast<double>(window.end - window.start);
    if (span > 0.0) {
      struct Msg {
        trace::Timestamp sendTime;
        trace::Timestamp recvTime;
        trace::ProcessId src;
        trace::ProcessId dst;
        std::uint64_t bytes;
      };
      // FIFO matching per (src, dst, tag).
      std::map<std::tuple<trace::ProcessId, trace::ProcessId, std::uint32_t>,
               std::vector<trace::Timestamp>>
          pendingSends;
      for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
        if (tr.isQuarantined(p)) {
          continue;  // salvaged partial streams are not trustworthy
        }
        const trace::RankPin pin = tr.rank(p);
        for (const auto& e : pin.events()) {
          if (e.kind == trace::EventKind::MpiSend) {
            pendingSends[{p, e.ref, e.aux}].push_back(e.time);
          }
        }
      }
      std::map<std::tuple<trace::ProcessId, trace::ProcessId, std::uint32_t>,
               std::size_t>
          nextSend;
      std::vector<Msg> messages;
      for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
        if (tr.isQuarantined(p)) {
          continue;
        }
        const trace::RankPin pin = tr.rank(p);
        for (const auto& e : pin.events()) {
          if (e.kind == trace::EventKind::MpiRecv) {
            const auto key = std::make_tuple(
                static_cast<trace::ProcessId>(e.ref), p, e.aux);
            const auto it = pendingSends.find(key);
            if (it != pendingSends.end()) {
              std::size_t& idx = nextSend[key];
              if (idx < it->second.size()) {
                messages.push_back(Msg{it->second[idx], e.time,
                                       static_cast<trace::ProcessId>(e.ref), p,
                                       e.size});
                ++idx;
              }
            }
          }
        }
      }
      std::sort(messages.begin(), messages.end(),
                [](const Msg& a, const Msg& b) { return a.bytes > b.bytes; });
      if (messages.size() > options.maxMessageLines) {
        messages.resize(options.maxMessageLines);
      }
      for (const Msg& m : messages) {
        if (m.sendTime < window.start || m.recvTime > window.end) {
          continue;
        }
        const double xA =
            x0 + plotW * static_cast<double>(m.sendTime - window.start) / span;
        const double xB =
            x0 + plotW * static_cast<double>(m.recvTime - window.start) / span;
        const double yA = y0 + rowH * (static_cast<double>(m.src) + 0.5);
        const double yB = y0 + rowH * (static_cast<double>(m.dst) + 0.5);
        svg.line(xA, yA, xB, yB, Rgb{0, 0, 0}, 0.4);
      }
    }
  }

  if (options.legend) {
    double x = x0;
    const double y = y0 + plotH + 14;
    for (const auto& [label, color] : colors.legend()) {
      svg.rect(x, y - 8, 10, 10, color);
      svg.text(x + 14, y, label, Rgb{0, 0, 0}, 10.0);
      x += 24 + 6.5 * static_cast<double>(label.size());
    }
  }
  return svg;
}

std::string renderTimelineAscii(const trace::TraceView& tr,
                                const TimelineOptions& options) {
  const auto bins = timelineBins(tr, options);
  // Assign letters per function group (MPI gets '#').
  std::map<std::string, char> groupChar;
  std::vector<char> funcChar(tr.functions().size(), '?');
  char next = 'a';
  for (std::size_t f = 0; f < tr.functions().size(); ++f) {
    const auto& def = tr.functions().at(static_cast<trace::FunctionId>(f));
    if (def.paradigm == trace::Paradigm::MPI) {
      funcChar[f] = '#';
      continue;
    }
    const std::string key = def.group.empty() ? def.name : def.group;
    const auto it = groupChar.find(key);
    if (it != groupChar.end()) {
      funcChar[f] = it->second;
    } else {
      funcChar[f] = next;
      groupChar.emplace(key, next);
      if (next < 'z') {
        ++next;
      }
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) {
    os << options.title << '\n';
  }
  for (std::size_t p = 0; p < bins.size(); ++p) {
    for (const trace::FunctionId f : bins[p]) {
      os << (f == trace::kInvalidFunction ? ' '
             : f == kTimelineNoData       ? 'x'
                                          : funcChar[f]);
    }
    os << '\n';
  }
  if (options.legend) {
    os << "legend: # = MPI";
    for (const auto& [label, c] : groupChar) {
      os << ", " << c << " = " << label;
    }
    if (!tr.quarantined().empty()) {
      os << ", x = no data (quarantined)";
    }
    os << '\n';
  }
  return os.str();
}

std::vector<std::vector<double>> paradigmShareOverTime(
    const trace::TraceView& tr, std::size_t bins) {
  PERFVAR_REQUIRE(bins > 0, "needs at least one bin");
  const trace::Timestamp start = tr.startTime();
  const trace::Timestamp end = tr.endTime();
  const double span = static_cast<double>(end - start);
  constexpr std::size_t kParadigms = 6;
  std::vector<std::vector<double>> shares(kParadigms,
                                          std::vector<double>(bins, 0.0));
  if (span <= 0.0) {
    return shares;
  }
  std::vector<double> busy(bins, 0.0);
  const double binWidth = span / static_cast<double>(bins);
  for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
    const trace::RankPin pin = tr.rank(p);
    forEachTopInterval(
        pin.events(),
        [&](trace::FunctionId f, trace::Timestamp t0, trace::Timestamp t1) {
          const auto paradigm = static_cast<std::size_t>(
              tr.functions().at(f).paradigm);
          const auto firstBin = static_cast<std::size_t>(
              static_cast<double>(t0 - start) / binWidth);
          const auto lastBin = std::min(
              bins - 1,
              static_cast<std::size_t>(static_cast<double>(t1 - 1 - start) /
                                       binWidth));
          for (std::size_t bin = firstBin; bin <= lastBin; ++bin) {
            const double binStart =
                static_cast<double>(start) +
                binWidth * static_cast<double>(bin);
            const double lo = std::max(binStart, static_cast<double>(t0));
            const double hi =
                std::min(binStart + binWidth, static_cast<double>(t1));
            if (hi > lo) {
              shares[paradigm][bin] += hi - lo;
              busy[bin] += hi - lo;
            }
          }
        });
  }
  for (std::size_t par = 0; par < kParadigms; ++par) {
    for (std::size_t bin = 0; bin < bins; ++bin) {
      shares[par][bin] = busy[bin] > 0.0 ? shares[par][bin] / busy[bin] : 0.0;
    }
  }
  return shares;
}

}  // namespace perfvar::vis
