#ifndef PERFVAR_VIS_CHART_HPP
#define PERFVAR_VIS_CHART_HPP

/// \file chart.hpp
/// Simple SVG line charts for analysis series (MPI share over the run,
/// per-iteration durations, trend lines). Complements the timeline and
/// heatmap renderers with the "statistics panel" views Vampir places next
/// to its timelines.

#include <string>
#include <vector>

#include "vis/color.hpp"
#include "vis/svg.hpp"

namespace perfvar::vis {

/// One chart series: y-values over implicit x = 0..n-1 (or explicit xs).
struct Series {
  std::string label;
  std::vector<double> ys;
  std::vector<double> xs;  ///< optional; indices if empty
  Rgb color{0, 114, 188};
  bool filled = false;  ///< area fill under the line
};

/// Chart options.
struct ChartOptions {
  std::string title;
  std::string xLabel;
  std::string yLabel;
  double width = 640;
  double height = 320;
  /// Force the y axis to [yMin, yMax] when yMin < yMax.
  double yMin = 0.0;
  double yMax = 0.0;
  bool legend = true;
  /// Draw y values as percentages.
  bool percentY = false;
};

/// Render series as an SVG line chart with axes and tick labels.
/// NaN values break the line. Throws on empty input.
SvgDocument renderLineChart(const std::vector<Series>& series,
                            const ChartOptions& options);

/// Default categorical colors for chart series (cycled).
Rgb seriesColor(std::size_t index);

}  // namespace perfvar::vis

#endif  // PERFVAR_VIS_CHART_HPP
