#include "vis/image.hpp"

#include <array>
#include <cctype>
#include <fstream>
#include <ostream>
#include <unordered_map>

#include "util/error.hpp"

namespace perfvar::vis {

namespace {

/// 5x7 bitmap font. Each glyph is 7 strings of 5 cells; '#' = pixel on.
struct Glyph {
  std::array<const char*, 7> rows;
};

const std::unordered_map<char, Glyph>& font() {
  static const std::unordered_map<char, Glyph> kFont = {
      {' ', {{".....", ".....", ".....", ".....", ".....", ".....", "....."}}},
      {'0', {{".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###."}}},
      {'1', {{"..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."}}},
      {'2', {{".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####"}}},
      {'3', {{".###.", "#...#", "....#", "..##.", "....#", "#...#", ".###."}}},
      {'4', {{"...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#."}}},
      {'5', {{"#####", "#....", "####.", "....#", "....#", "#...#", ".###."}}},
      {'6', {{".###.", "#....", "#....", "####.", "#...#", "#...#", ".###."}}},
      {'7', {{"#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."}}},
      {'8', {{".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###."}}},
      {'9', {{".###.", "#...#", "#...#", ".####", "....#", "....#", ".###."}}},
      {'A', {{".###.", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"}}},
      {'B', {{"####.", "#...#", "#...#", "####.", "#...#", "#...#", "####."}}},
      {'C', {{".###.", "#...#", "#....", "#....", "#....", "#...#", ".###."}}},
      {'D', {{"####.", "#...#", "#...#", "#...#", "#...#", "#...#", "####."}}},
      {'E', {{"#####", "#....", "#....", "####.", "#....", "#....", "#####"}}},
      {'F', {{"#####", "#....", "#....", "####.", "#....", "#....", "#...."}}},
      {'G', {{".###.", "#...#", "#....", "#.###", "#...#", "#...#", ".###."}}},
      {'H', {{"#...#", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"}}},
      {'I', {{".###.", "..#..", "..#..", "..#..", "..#..", "..#..", ".###."}}},
      {'J', {{"..###", "...#.", "...#.", "...#.", "...#.", "#..#.", ".##.."}}},
      {'K', {{"#...#", "#..#.", "#.#..", "##...", "#.#..", "#..#.", "#...#"}}},
      {'L', {{"#....", "#....", "#....", "#....", "#....", "#....", "#####"}}},
      {'M', {{"#...#", "##.##", "#.#.#", "#.#.#", "#...#", "#...#", "#...#"}}},
      {'N', {{"#...#", "##..#", "#.#.#", "#..##", "#...#", "#...#", "#...#"}}},
      {'O', {{".###.", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."}}},
      {'P', {{"####.", "#...#", "#...#", "####.", "#....", "#....", "#...."}}},
      {'Q', {{".###.", "#...#", "#...#", "#...#", "#.#.#", "#..#.", ".##.#"}}},
      {'R', {{"####.", "#...#", "#...#", "####.", "#.#..", "#..#.", "#...#"}}},
      {'S', {{".####", "#....", "#....", ".###.", "....#", "....#", "####."}}},
      {'T', {{"#####", "..#..", "..#..", "..#..", "..#..", "..#..", "..#.."}}},
      {'U', {{"#...#", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."}}},
      {'V', {{"#...#", "#...#", "#...#", "#...#", "#...#", ".#.#.", "..#.."}}},
      {'W', {{"#...#", "#...#", "#...#", "#.#.#", "#.#.#", "##.##", "#...#"}}},
      {'X', {{"#...#", "#...#", ".#.#.", "..#..", ".#.#.", "#...#", "#...#"}}},
      {'Y', {{"#...#", "#...#", ".#.#.", "..#..", "..#..", "..#..", "..#.."}}},
      {'Z', {{"#####", "....#", "...#.", "..#..", ".#...", "#....", "#####"}}},
      {'.', {{".....", ".....", ".....", ".....", ".....", ".##..", ".##.."}}},
      {',', {{".....", ".....", ".....", ".....", ".##..", "..#..", ".#..."}}},
      {':', {{".....", ".##..", ".##..", ".....", ".##..", ".##..", "....."}}},
      {'-', {{".....", ".....", ".....", "#####", ".....", ".....", "....."}}},
      {'+', {{".....", "..#..", "..#..", "#####", "..#..", "..#..", "....."}}},
      {'_', {{".....", ".....", ".....", ".....", ".....", ".....", "#####"}}},
      {'=', {{".....", ".....", "#####", ".....", "#####", ".....", "....."}}},
      {'/', {{"....#", "...#.", "...#.", "..#..", ".#...", ".#...", "#...."}}},
      {'%', {{"##..#", "##..#", "...#.", "..#..", ".#...", "#..##", "#..##"}}},
      {'(', {{"...#.", "..#..", ".#...", ".#...", ".#...", "..#..", "...#."}}},
      {')', {{".#...", "..#..", "...#.", "...#.", "...#.", "..#..", ".#..."}}},
      {'[', {{".###.", ".#...", ".#...", ".#...", ".#...", ".#...", ".###."}}},
      {']', {{".###.", "...#.", "...#.", "...#.", "...#.", "...#.", ".###."}}},
      {'>', {{"#....", ".#...", "..#..", "...#.", "..#..", ".#...", "#...."}}},
      {'<', {{"...#.", "..#..", ".#...", "#....", ".#...", "..#..", "...#."}}},
      {'#', {{".#.#.", "#####", ".#.#.", ".#.#.", ".#.#.", "#####", ".#.#."}}},
  };
  return kFont;
}

}  // namespace

Image::Image(std::size_t width, std::size_t height, Rgb fill)
    : width_(width), height_(height), pixels_(width * height, fill) {
  PERFVAR_REQUIRE(width > 0 && height > 0, "image dimensions must be positive");
  PERFVAR_REQUIRE(width * height <= (1ULL << 28),
                  "image too large (limit 256 Mpixel)");
}

Rgb Image::at(std::size_t x, std::size_t y) const {
  PERFVAR_REQUIRE(x < width_ && y < height_, "pixel out of bounds");
  return pixels_[y * width_ + x];
}

void Image::set(std::size_t x, std::size_t y, Rgb c) {
  if (x < width_ && y < height_) {
    pixels_[y * width_ + x] = c;
  }
}

void Image::fillRect(std::size_t x, std::size_t y, std::size_t w,
                     std::size_t h, Rgb c) {
  const std::size_t x1 = std::min(x + w, width_);
  const std::size_t y1 = std::min(y + h, height_);
  for (std::size_t yy = y; yy < y1; ++yy) {
    for (std::size_t xx = x; xx < x1; ++xx) {
      pixels_[yy * width_ + xx] = c;
    }
  }
}

void Image::hline(std::size_t x0, std::size_t x1, std::size_t y, Rgb c) {
  if (y >= height_) {
    return;
  }
  for (std::size_t x = x0; x <= x1 && x < width_; ++x) {
    pixels_[y * width_ + x] = c;
  }
}

void Image::vline(std::size_t x, std::size_t y0, std::size_t y1, Rgb c) {
  if (x >= width_) {
    return;
  }
  for (std::size_t y = y0; y <= y1 && y < height_; ++y) {
    pixels_[y * width_ + x] = c;
  }
}

void Image::rectOutline(std::size_t x, std::size_t y, std::size_t w,
                        std::size_t h, Rgb c) {
  if (w == 0 || h == 0) {
    return;
  }
  hline(x, x + w - 1, y, c);
  hline(x, x + w - 1, y + h - 1, c);
  vline(x, y, y + h - 1, c);
  vline(x + w - 1, y, y + h - 1, c);
}

void Image::text(std::size_t x, std::size_t y, const std::string& s, Rgb c,
                 std::size_t scale) {
  std::size_t cx = x;
  for (const char rawCh : s) {
    const char ch = static_cast<char>(
        std::toupper(static_cast<unsigned char>(rawCh)));
    const auto it = font().find(ch);
    if (it != font().end()) {
      for (std::size_t row = 0; row < 7; ++row) {
        for (std::size_t col = 0; col < 5; ++col) {
          if (it->second.rows[row][col] == '#') {
            fillRect(cx + col * scale, y + row * scale, scale, scale, c);
          }
        }
      }
    }
    cx += 6 * scale;  // 5 cells + 1 gap
  }
}

std::size_t Image::textWidth(const std::string& s, std::size_t scale) {
  return s.size() * 6 * scale;
}

std::size_t Image::textHeight(std::size_t scale) {
  return 7 * scale;
}

void Image::writePpm(std::ostream& out) const {
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  std::vector<unsigned char> row(width_ * 3);
  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t x = 0; x < width_; ++x) {
      const Rgb c = pixels_[y * width_ + x];
      row[3 * x] = c.r;
      row[3 * x + 1] = c.g;
      row[3 * x + 2] = c.b;
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  PERFVAR_REQUIRE(out.good(), "PPM write failed");
}

void Image::savePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  PERFVAR_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  writePpm(out);
}

void Image::writeBmp(std::ostream& out) const {
  const std::size_t rowBytes = (width_ * 3 + 3) & ~std::size_t{3};
  const std::size_t dataSize = rowBytes * height_;
  const std::size_t fileSize = 54 + dataSize;

  const auto put16 = [&](std::uint32_t v) {
    out.put(static_cast<char>(v & 0xFF));
    out.put(static_cast<char>((v >> 8) & 0xFF));
  };
  const auto put32 = [&](std::uint32_t v) {
    put16(v & 0xFFFF);
    put16(v >> 16);
  };

  out.put('B');
  out.put('M');
  put32(static_cast<std::uint32_t>(fileSize));
  put32(0);
  put32(54);  // pixel data offset
  put32(40);  // BITMAPINFOHEADER size
  put32(static_cast<std::uint32_t>(width_));
  put32(static_cast<std::uint32_t>(height_));
  put16(1);   // planes
  put16(24);  // bpp
  put32(0);   // no compression
  put32(static_cast<std::uint32_t>(dataSize));
  put32(2835);  // ~72 dpi
  put32(2835);
  put32(0);
  put32(0);

  std::vector<unsigned char> row(rowBytes, 0);
  for (std::size_t yy = 0; yy < height_; ++yy) {
    const std::size_t y = height_ - 1 - yy;  // BMP is bottom-up
    for (std::size_t x = 0; x < width_; ++x) {
      const Rgb c = pixels_[y * width_ + x];
      row[3 * x] = c.b;
      row[3 * x + 1] = c.g;
      row[3 * x + 2] = c.r;
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
  PERFVAR_REQUIRE(out.good(), "BMP write failed");
}

void Image::saveBmp(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  PERFVAR_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  writeBmp(out);
}

}  // namespace perfvar::vis
