#include "vis/chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace perfvar::vis {

Rgb seriesColor(std::size_t index) {
  static const Rgb kColors[] = {
      Rgb{0, 114, 188}, Rgb{215, 25, 28},  Rgb{58, 181, 74},
      Rgb{123, 63, 153}, Rgb{247, 148, 29}, Rgb{0, 169, 157},
  };
  return kColors[index % (sizeof(kColors) / sizeof(kColors[0]))];
}

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void add(double v) {
    if (std::isfinite(v)) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }

  bool valid() const { return lo <= hi; }
};

std::string tickLabel(double v, bool percent) {
  if (percent) {
    return fmt::percent(v);
  }
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

}  // namespace

SvgDocument renderLineChart(const std::vector<Series>& seriesList,
                            const ChartOptions& options) {
  PERFVAR_REQUIRE(!seriesList.empty(), "chart needs at least one series");
  for (const auto& s : seriesList) {
    PERFVAR_REQUIRE(!s.ys.empty(), "chart series must not be empty");
    PERFVAR_REQUIRE(s.xs.empty() || s.xs.size() == s.ys.size(),
                    "xs/ys size mismatch");
  }

  Range xr;
  Range yr;
  for (const auto& s : seriesList) {
    for (std::size_t i = 0; i < s.ys.size(); ++i) {
      xr.add(s.xs.empty() ? static_cast<double>(i) : s.xs[i]);
      yr.add(s.ys[i]);
    }
  }
  PERFVAR_REQUIRE(xr.valid() && yr.valid(), "chart data has no finite values");
  if (options.yMin < options.yMax) {
    yr.lo = options.yMin;
    yr.hi = options.yMax;
  }
  if (yr.hi == yr.lo) {
    yr.hi = yr.lo + 1.0;
  }
  if (xr.hi == xr.lo) {
    xr.hi = xr.lo + 1.0;
  }

  const double mL = 56;
  const double mR = 14;
  const double mT = options.title.empty() ? 14 : 30;
  const double mB = options.legend ? 56 : 38;
  const double plotW = options.width - mL - mR;
  const double plotH = options.height - mT - mB;
  PERFVAR_REQUIRE(plotW > 10 && plotH > 10, "chart too small");

  SvgDocument svg(options.width, options.height);
  const Rgb axis{60, 60, 60};
  const Rgb grid{225, 225, 225};
  const Rgb text{30, 30, 30};

  if (!options.title.empty()) {
    svg.text(mL, 18, options.title, text, 13.0);
  }

  const auto xPos = [&](double x) {
    return mL + plotW * (x - xr.lo) / (xr.hi - xr.lo);
  };
  const auto yPos = [&](double y) {
    return mT + plotH * (1.0 - (y - yr.lo) / (yr.hi - yr.lo));
  };

  // Grid and ticks.
  constexpr int kTicks = 5;
  for (int t = 0; t <= kTicks; ++t) {
    const double fy = yr.lo + (yr.hi - yr.lo) * t / kTicks;
    svg.line(mL, yPos(fy), mL + plotW, yPos(fy), grid, 0.7);
    svg.text(mL - 6, yPos(fy) + 3.5, tickLabel(fy, options.percentY), text,
             9.0, "end");
    const double fx = xr.lo + (xr.hi - xr.lo) * t / kTicks;
    svg.text(xPos(fx), mT + plotH + 14, tickLabel(fx, false), text, 9.0,
             "middle");
  }
  svg.line(mL, mT, mL, mT + plotH, axis, 1.0);
  svg.line(mL, mT + plotH, mL + plotW, mT + plotH, axis, 1.0);
  if (!options.xLabel.empty()) {
    svg.text(mL + plotW / 2, mT + plotH + 28, options.xLabel, text, 10.0,
             "middle");
  }
  if (!options.yLabel.empty()) {
    svg.text(4, mT - 4, options.yLabel, text, 10.0);
  }

  // Series.
  for (const auto& s : seriesList) {
    std::ostringstream path;
    path.setf(std::ios::fixed);
    path.precision(2);
    bool pen = false;
    std::ostringstream area;
    area.setf(std::ios::fixed);
    area.precision(2);
    double firstX = 0.0;
    double lastX = 0.0;
    bool anyPoint = false;
    for (std::size_t i = 0; i < s.ys.size(); ++i) {
      const double x = s.xs.empty() ? static_cast<double>(i) : s.xs[i];
      const double y = s.ys[i];
      if (!std::isfinite(y)) {
        pen = false;
        continue;
      }
      path << (pen ? " L " : " M ") << xPos(x) << ' ' << yPos(y);
      area << (anyPoint ? " L " : "M ") << xPos(x) << ' ' << yPos(y);
      if (!anyPoint) {
        firstX = x;
      }
      lastX = x;
      pen = true;
      anyPoint = true;
    }
    if (!anyPoint) {
      continue;
    }
    if (s.filled) {
      area << " L " << xPos(lastX) << ' ' << yPos(yr.lo) << " L "
           << xPos(firstX) << ' ' << yPos(yr.lo) << " Z";
      std::ostringstream el;
      el << "<path d=\"" << area.str() << "\" fill=\"" << s.color.hex()
         << "\" fill-opacity=\"0.15\" stroke=\"none\"/>";
      svg.raw(el.str());
    }
    std::ostringstream el;
    el << "<path d=\"" << path.str() << "\" fill=\"none\" stroke=\""
       << s.color.hex() << "\" stroke-width=\"1.6\"/>";
    svg.raw(el.str());
  }

  if (options.legend) {
    double x = mL;
    const double y = options.height - 10;
    for (const auto& s : seriesList) {
      if (s.label.empty()) {
        continue;
      }
      svg.line(x, y - 4, x + 16, y - 4, s.color, 2.0);
      svg.text(x + 20, y, s.label, text, 10.0);
      x += 30 + 6.2 * static_cast<double>(s.label.size());
    }
  }
  return svg;
}

}  // namespace perfvar::vis
