#ifndef PERFVAR_VIS_COLOR_HPP
#define PERFVAR_VIS_COLOR_HPP

/// \file color.hpp
/// Colors and color maps for the performance visualizations.
///
/// The paper encodes SOS-times "with a color-coded scale. Blue - cold -
/// colors indicate short durations, whereas red - hot - colors indicate
/// long durations" (Section VI). ColorMap::coldHot reproduces that scale;
/// additional maps are provided for counter overlays and timelines.

#include <cstdint>
#include <string>
#include <vector>

namespace perfvar::vis {

/// 8-bit sRGB color.
struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  bool operator==(const Rgb&) const = default;

  /// CSS hex string "#rrggbb".
  std::string hex() const;

  /// Linear interpolation between two colors, t in [0,1].
  static Rgb lerp(Rgb a, Rgb b, double t);

  /// Relative luminance (BT.709, gamma-ignored approximation in [0,1]).
  double luminance() const;
};

/// A one-dimensional color scale over [0,1], defined by anchor colors at
/// equidistant positions with linear interpolation in between.
class ColorMap {
public:
  explicit ColorMap(std::vector<Rgb> anchors);

  /// Color at t; t is clamped to [0,1]. NaN maps to `missing()`.
  Rgb at(double t) const;

  /// Color used for missing values (NaN); light gray by default.
  Rgb missing() const { return missing_; }
  void setMissing(Rgb c) { missing_ = c; }

  /// The paper's cold/hot scale: blue -> cyan -> green -> yellow -> red.
  static ColorMap coldHot();

  /// Perceptually ordered map (viridis approximation).
  static ColorMap viridis();

  /// White-to-black ramp.
  static ColorMap grayscale();

  /// Single-hue ramp (white -> saturated `tone`), for counter overlays.
  static ColorMap monochrome(Rgb tone);

  const std::vector<Rgb>& anchors() const { return anchors_; }

private:
  std::vector<Rgb> anchors_;
  Rgb missing_{220, 220, 220};
};

/// Maps raw values to [0,1] for a ColorMap: linear or robust-quantile
/// normalization (the latter keeps one extreme outlier from flattening
/// the rest of the scale - useful for heatmaps with a single hotspot).
class ValueScale {
public:
  /// Linear scale over [lo, hi]; degenerate ranges map everything to 0.5.
  static ValueScale linear(double lo, double hi);

  /// Linear scale over the finite min/max of `values`.
  static ValueScale fromData(const std::vector<double>& values);

  /// Scale spanning the [qLow, qHigh] quantiles of `values`; values
  /// outside are clamped to the ends of the color ramp.
  static ValueScale robust(const std::vector<double>& values,
                           double qLow = 0.02, double qHigh = 0.98);

  /// Normalized position of `v` in [0,1]; NaN passes through as NaN.
  double normalize(double v) const;

  double low() const { return lo_; }
  double high() const { return hi_; }

private:
  ValueScale(double lo, double hi) : lo_(lo), hi_(hi) {}
  double lo_;
  double hi_;
};

}  // namespace perfvar::vis

#endif  // PERFVAR_VIS_COLOR_HPP
