#ifndef PERFVAR_VIS_SVG_HPP
#define PERFVAR_VIS_SVG_HPP

/// \file svg.hpp
/// Minimal SVG document builder for vector renders of timelines,
/// heatmaps and legends.

#include <iosfwd>
#include <sstream>
#include <string>

#include "vis/color.hpp"

namespace perfvar::vis {

/// Accumulates SVG elements and serializes a standalone document.
class SvgDocument {
public:
  SvgDocument(double width, double height);

  double width() const { return width_; }
  double height() const { return height_; }

  void rect(double x, double y, double w, double h, Rgb fill);
  void rectOutline(double x, double y, double w, double h, Rgb strokeColor,
                   double strokeWidth = 1.0);
  void line(double x1, double y1, double x2, double y2, Rgb strokeColor,
            double strokeWidth = 1.0);

  /// Anchor: "start", "middle" or "end".
  void text(double x, double y, const std::string& s, Rgb fill,
            double fontSize = 12.0, const std::string& anchor = "start");

  /// Raw element passthrough for anything not covered above.
  void raw(const std::string& element);

  /// Optional <title> element (tooltips in browsers) attached to the next
  /// rect: call before rect(). Implemented via raw grouping by callers.
  std::string finalize() const;

  void save(const std::string& path) const;

  /// XML-escape a string for use in text content or attributes.
  static std::string escape(const std::string& s);

private:
  double width_;
  double height_;
  std::ostringstream body_;
};

}  // namespace perfvar::vis

#endif  // PERFVAR_VIS_SVG_HPP
