#include "vis/heatmap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace perfvar::vis {

namespace {

std::size_t maxColumnsOf(const Matrix& values) {
  std::size_t n = 0;
  for (const auto& row : values) {
    n = std::max(n, row.size());
  }
  return n;
}

std::vector<double> flatten(const Matrix& values) {
  std::vector<double> flat;
  for (const auto& row : values) {
    for (const double v : row) {
      flat.push_back(v);
    }
  }
  return flat;
}

/// Downsample a row to `columns` cells by averaging finite values.
std::vector<double> resampleRow(const std::vector<double>& row,
                                std::size_t columns, std::size_t fullWidth) {
  std::vector<double> out(columns, std::numeric_limits<double>::quiet_NaN());
  if (fullWidth == 0) {
    return out;
  }
  for (std::size_t c = 0; c < columns; ++c) {
    const std::size_t lo = c * fullWidth / columns;
    std::size_t hi = (c + 1) * fullWidth / columns;
    hi = std::max(hi, lo + 1);
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = lo; i < hi && i < row.size(); ++i) {
      if (std::isfinite(row[i])) {
        sum += row[i];
        ++count;
      }
    }
    if (count > 0) {
      out[c] = sum / static_cast<double>(count);
    }
  }
  return out;
}

bool isNoDataRow(const HeatmapOptions& options, std::size_t row) {
  return std::find(options.noDataRows.begin(), options.noDataRows.end(),
                   row) != options.noDataRows.end();
}

std::size_t labelStride(std::size_t rows, std::size_t requested,
                        std::size_t maxLabels) {
  if (requested > 0) {
    return requested;
  }
  std::size_t stride = 1;
  while (rows / stride > maxLabels) {
    stride *= 2;
  }
  return stride;
}

}  // namespace

ValueScale heatmapScale(const Matrix& values, const HeatmapOptions& options) {
  if (options.scaleLow < options.scaleHigh) {
    return ValueScale::linear(options.scaleLow, options.scaleHigh);
  }
  const auto flat = flatten(values);
  return options.robustScale ? ValueScale::robust(flat)
                             : ValueScale::fromData(flat);
}

Image renderHeatmapImage(const Matrix& values, const HeatmapOptions& options) {
  PERFVAR_REQUIRE(!values.empty(), "heatmap needs at least one row");
  const std::size_t rows = values.size();
  const std::size_t cols = std::max<std::size_t>(1, maxColumnsOf(values));
  const ValueScale scale = heatmapScale(values, options);

  const std::size_t labelWidth =
      options.rowLabels.empty()
          ? 0
          : 2 + Image::textWidth(*std::max_element(
                    options.rowLabels.begin(), options.rowLabels.end(),
                    [](const std::string& a, const std::string& b) {
                      return a.size() < b.size();
                    }));
  const std::size_t titleHeight = options.title.empty() ? 0 : 14;
  const std::size_t legendHeight = options.legend ? 24 : 0;
  const std::size_t plotW = cols * options.cellWidth;
  const std::size_t plotH = rows * options.cellHeight;
  Image img(labelWidth + plotW + 2, titleHeight + plotH + legendHeight + 2);

  if (!options.title.empty()) {
    img.text(2, 2, options.title, Rgb{0, 0, 0});
  }

  const std::size_t x0 = labelWidth + 1;
  const std::size_t y0 = titleHeight + 1;
  for (std::size_t r = 0; r < rows; ++r) {
    if (isNoDataRow(options, r)) {
      img.fillRect(x0, y0 + r * options.cellHeight, cols * options.cellWidth,
                   options.cellHeight, options.noDataColor);
      continue;
    }
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = c < values[r].size()
                           ? values[r][c]
                           : std::numeric_limits<double>::quiet_NaN();
      const Rgb color = options.colorMap.at(scale.normalize(v));
      img.fillRect(x0 + c * options.cellWidth, y0 + r * options.cellHeight,
                   options.cellWidth, options.cellHeight, color);
    }
  }

  if (!options.rowLabels.empty()) {
    const std::size_t stride = labelStride(
        rows, options.rowLabelStride,
        std::max<std::size_t>(1, plotH / (Image::textHeight() + 2)));
    for (std::size_t r = 0; r < rows; r += stride) {
      if (r < options.rowLabels.size()) {
        const std::size_t cy = y0 + r * options.cellHeight;
        if (options.cellHeight >= Image::textHeight() ||
            r % std::max<std::size_t>(stride, 1) == 0) {
          img.text(2, cy, options.rowLabels[r], Rgb{0, 0, 0});
        }
      }
    }
  }

  if (options.legend) {
    const std::size_t ly = y0 + plotH + 6;
    const std::size_t barW = std::min<std::size_t>(plotW, 256);
    for (std::size_t i = 0; i < barW; ++i) {
      const double t =
          static_cast<double>(i) / static_cast<double>(barW - 1);
      img.fillRect(x0 + i, ly, 1, 10, options.colorMap.at(t));
    }
    img.rectOutline(x0, ly, barW, 10, Rgb{0, 0, 0});
    img.text(x0, ly + 12, fmt::fixed(scale.low(), 3), Rgb{0, 0, 0});
    const std::string hiLabel = fmt::fixed(scale.high(), 3);
    const std::size_t hw = Image::textWidth(hiLabel);
    img.text(x0 + barW - std::min(barW, hw), ly + 12, hiLabel, Rgb{0, 0, 0});
  }
  return img;
}

SvgDocument renderHeatmapSvg(const Matrix& values,
                             const HeatmapOptions& options) {
  PERFVAR_REQUIRE(!values.empty(), "heatmap needs at least one row");
  const std::size_t rows = values.size();
  const std::size_t cols = std::max<std::size_t>(1, maxColumnsOf(values));
  const ValueScale scale = heatmapScale(values, options);

  const double cellW = std::max<double>(2.0, 900.0 / static_cast<double>(cols));
  const double cellH = std::max<double>(2.0, 500.0 / static_cast<double>(rows));
  const double labelW = options.rowLabels.empty() ? 0.0 : 80.0;
  const double titleH = options.title.empty() ? 0.0 : 24.0;
  const double legendH = options.legend ? 40.0 : 0.0;
  const double plotW = cellW * static_cast<double>(cols);
  const double plotH = cellH * static_cast<double>(rows);

  SvgDocument svg(labelW + plotW + 10, titleH + plotH + legendH + 10);
  if (!options.title.empty()) {
    svg.text(labelW + 4, 16, options.title, Rgb{0, 0, 0}, 14.0);
  }
  const double x0 = labelW + 4;
  const double y0 = titleH + 4;
  for (std::size_t r = 0; r < rows; ++r) {
    if (isNoDataRow(options, r)) {
      svg.rect(x0, y0 + cellH * static_cast<double>(r),
               cellW * static_cast<double>(cols) + 0.3, cellH + 0.3,
               options.noDataColor);
      continue;
    }
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = c < values[r].size()
                           ? values[r][c]
                           : std::numeric_limits<double>::quiet_NaN();
      svg.rect(x0 + cellW * static_cast<double>(c),
               y0 + cellH * static_cast<double>(r), cellW + 0.3, cellH + 0.3,
               options.colorMap.at(scale.normalize(v)));
    }
  }
  if (!options.rowLabels.empty()) {
    const std::size_t stride = labelStride(
        rows, options.rowLabelStride,
        static_cast<std::size_t>(std::max(1.0, plotH / 14.0)));
    for (std::size_t r = 0; r < rows; r += stride) {
      if (r < options.rowLabels.size()) {
        svg.text(labelW, y0 + cellH * (static_cast<double>(r) + 0.8),
                 options.rowLabels[r], Rgb{0, 0, 0}, 10.0, "end");
      }
    }
  }
  if (options.legend) {
    const double ly = y0 + plotH + 10;
    const double barW = std::min(plotW, 300.0);
    const int steps = 64;
    for (int i = 0; i < steps; ++i) {
      const double t = static_cast<double>(i) / (steps - 1);
      svg.rect(x0 + barW * t, ly, barW / steps + 0.5, 12,
               options.colorMap.at(t));
    }
    svg.rectOutline(x0, ly, barW, 12, Rgb{0, 0, 0});
    svg.text(x0, ly + 24, fmt::fixed(scale.low(), 3), Rgb{0, 0, 0}, 10.0);
    svg.text(x0 + barW, ly + 24, fmt::fixed(scale.high(), 3), Rgb{0, 0, 0},
             10.0, "end");
  }
  return svg;
}

namespace {

std::string renderTerminal(const Matrix& values, const HeatmapOptions& options,
                           std::size_t maxColumns, bool ansi) {
  PERFVAR_REQUIRE(!values.empty(), "heatmap needs at least one row");
  const std::size_t fullWidth = maxColumnsOf(values);
  const std::size_t cols = std::min(maxColumns, std::max<std::size_t>(
                                                    1, fullWidth));
  const ValueScale scale = heatmapScale(values, options);
  static const char* kShades = " .:-=+*#%@";

  std::ostringstream os;
  if (!options.title.empty()) {
    os << options.title << '\n';
  }
  for (std::size_t r = 0; r < values.size(); ++r) {
    if (r < options.rowLabels.size()) {
      os << fmt::pad(options.rowLabels[r], -12) << ' ';
    }
    if (isNoDataRow(options, r)) {
      for (std::size_t c = 0; c < cols; ++c) {
        if (ansi) {
          const Rgb b = options.noDataColor;
          os << "\x1b[48;2;" << int{b.r} << ';' << int{b.g} << ';' << int{b.b}
             << "m \x1b[0m";
        } else {
          os << 'x';
        }
      }
      os << '\n';
      continue;
    }
    const auto row = resampleRow(values[r], cols, fullWidth);
    for (const double v : row) {
      const double t = scale.normalize(v);
      if (ansi) {
        const Rgb c = options.colorMap.at(t);
        os << "\x1b[48;2;" << int{c.r} << ';' << int{c.g} << ';' << int{c.b}
           << "m \x1b[0m";
      } else if (std::isnan(t)) {
        os << ' ';
      } else {
        const int idx = std::clamp(static_cast<int>(t * 9.999), 0, 9);
        os << kShades[idx];
      }
    }
    os << '\n';
  }
  if (options.legend) {
    os << "scale: " << fmt::fixed(scale.low(), 4) << " (cold) .. "
       << fmt::fixed(scale.high(), 4) << " (hot)\n";
  }
  return os.str();
}

}  // namespace

namespace {

Matrix rankGrid(const std::vector<double>& valuePerRank, std::size_t gridX,
                std::size_t gridY) {
  PERFVAR_REQUIRE(gridX >= 1 && gridY >= 1, "topology grid must be non-empty");
  PERFVAR_REQUIRE(valuePerRank.size() == gridX * gridY,
                  "value count must equal gridX * gridY");
  Matrix m(gridY, std::vector<double>(gridX, 0.0));
  for (std::size_t y = 0; y < gridY; ++y) {
    for (std::size_t x = 0; x < gridX; ++x) {
      m[y][x] = valuePerRank[y * gridX + x];
    }
  }
  return m;
}

}  // namespace

Image renderTopologyImage(const std::vector<double>& valuePerRank,
                          std::size_t gridX, std::size_t gridY,
                          const HeatmapOptions& options) {
  HeatmapOptions topo = options;
  topo.rowLabels.clear();
  // Square-ish cells sized for visibility.
  topo.cellWidth = std::max<std::size_t>(topo.cellWidth, 12);
  topo.cellHeight = std::max<std::size_t>(topo.cellHeight, 12);
  return renderHeatmapImage(rankGrid(valuePerRank, gridX, gridY), topo);
}

SvgDocument renderTopologySvg(const std::vector<double>& valuePerRank,
                              std::size_t gridX, std::size_t gridY,
                              const HeatmapOptions& options) {
  const Matrix grid = rankGrid(valuePerRank, gridX, gridY);
  HeatmapOptions topo = options;
  topo.rowLabels.clear();
  SvgDocument svg = renderHeatmapSvg(grid, topo);
  if (gridX <= 16 && gridY <= 16) {
    // Overlay rank numbers; geometry mirrors renderHeatmapSvg's layout.
    const ValueScale scale = heatmapScale(grid, topo);
    const double cellW = std::max(2.0, 900.0 / static_cast<double>(gridX));
    const double cellH = std::max(2.0, 500.0 / static_cast<double>(gridY));
    const double titleH = topo.title.empty() ? 0.0 : 24.0;
    for (std::size_t y = 0; y < gridY; ++y) {
      for (std::size_t x = 0; x < gridX; ++x) {
        const Rgb bg = topo.colorMap.at(scale.normalize(grid[y][x]));
        const Rgb fg = bg.luminance() > 0.55 ? Rgb{0, 0, 0}
                                             : Rgb{255, 255, 255};
        svg.text(4.0 + cellW * (static_cast<double>(x) + 0.5),
                 titleH + 4.0 + cellH * (static_cast<double>(y) + 0.6),
                 std::to_string(y * gridX + x), fg,
                 std::min(cellH * 0.35, 12.0), "middle");
      }
    }
  }
  return svg;
}

std::string renderHeatmapAnsi(const Matrix& values,
                              const HeatmapOptions& options,
                              std::size_t maxColumns) {
  return renderTerminal(values, options, maxColumns, true);
}

std::string renderHeatmapAscii(const Matrix& values,
                               const HeatmapOptions& options,
                               std::size_t maxColumns) {
  return renderTerminal(values, options, maxColumns, false);
}

}  // namespace perfvar::vis
