#ifndef PERFVAR_VIS_IMAGE_HPP
#define PERFVAR_VIS_IMAGE_HPP

/// \file image.hpp
/// A simple raster image with PPM (P6) and BMP (24-bit) writers.
///
/// The renderers draw into Image; the files are viewable with any image
/// tool and easy to golden-test (both formats are fully deterministic).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "vis/color.hpp"

namespace perfvar::vis {

class Image {
public:
  Image(std::size_t width, std::size_t height, Rgb fill = Rgb{255, 255, 255});

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  Rgb at(std::size_t x, std::size_t y) const;
  void set(std::size_t x, std::size_t y, Rgb c);

  /// Filled axis-aligned rectangle; clipped to the image bounds.
  void fillRect(std::size_t x, std::size_t y, std::size_t w, std::size_t h,
                Rgb c);

  /// 1-pixel horizontal / vertical lines (clipped).
  void hline(std::size_t x0, std::size_t x1, std::size_t y, Rgb c);
  void vline(std::size_t x, std::size_t y0, std::size_t y1, Rgb c);

  /// 1-pixel rectangle outline (clipped).
  void rectOutline(std::size_t x, std::size_t y, std::size_t w, std::size_t h,
                   Rgb c);

  /// Draw text with the built-in 5x7 bitmap font (upper-case latin,
  /// digits and basic punctuation; other characters render as blanks).
  /// (x, y) is the top-left corner; scale enlarges the glyphs.
  void text(std::size_t x, std::size_t y, const std::string& s, Rgb c,
            std::size_t scale = 1);

  /// Width in pixels that text() will occupy.
  static std::size_t textWidth(const std::string& s, std::size_t scale = 1);
  static std::size_t textHeight(std::size_t scale = 1);

  /// Write binary PPM (P6).
  void writePpm(std::ostream& out) const;
  void savePpm(const std::string& path) const;

  /// Write a 24-bit uncompressed BMP.
  void writeBmp(std::ostream& out) const;
  void saveBmp(const std::string& path) const;

private:
  std::size_t width_;
  std::size_t height_;
  std::vector<Rgb> pixels_;
};

}  // namespace perfvar::vis

#endif  // PERFVAR_VIS_IMAGE_HPP
