#ifndef PERFVAR_VIS_TIMELINE_HPP
#define PERFVAR_VIS_TIMELINE_HPP

/// \file timeline.hpp
/// Master-timeline rendering of traces (Vampir's main view; paper
/// Figures 4(a), 5(a), 6(a)).
///
/// One row per process; the horizontal axis is trace time; the color of a
/// pixel column is the function on top of the call stack (the currently
/// executing function) that covers the largest share of the column's time
/// span. Function colors derive from their group (consistent with the
/// paper: MPI = red, application groups get distinct colors).

#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/view.hpp"
#include "vis/color.hpp"
#include "vis/image.hpp"
#include "vis/svg.hpp"

namespace perfvar::vis {

/// Assigns colors to functions, by function group (preferred) or paradigm.
class FunctionColors {
public:
  /// Default palette: MPI red, IO brown, OpenMP orange; application
  /// groups cycle through a categorical palette; ungrouped compute green.
  static FunctionColors standard(const trace::TraceView& trace);

  Rgb color(trace::FunctionId f) const;

  /// Override the color of one group.
  void setGroupColor(const std::string& group, Rgb c);

  /// Legend entries: (label, color), deduplicated by group.
  std::vector<std::pair<std::string, Rgb>> legend() const;

private:
  FunctionColors() = default;
  trace::TraceView view_;  ///< shares the backend; keeps registries alive
  std::vector<Rgb> byFunction_;
  std::vector<std::pair<std::string, Rgb>> legend_;
};

/// Options of the timeline renderers.
struct TimelineOptions {
  std::string title;
  /// Horizontal resolution (number of time bins).
  std::size_t bins = 900;
  /// Row height in pixels for the raster renderer.
  std::size_t rowHeight = 5;
  /// Draw message (send->recv) lines in the SVG renderer.
  bool messageLines = true;
  /// Maximum number of message lines drawn (largest-bytes first).
  std::size_t maxMessageLines = 2000;
  /// Idle (no function on the stack) color.
  Rgb idleColor{245, 245, 245};
  /// Color of quarantined (salvage-dropped) rank rows, rendered as
  /// explicit "no data" bands distinct from idle.
  Rgb noDataColor{210, 210, 214};
  /// Render the function-group legend.
  bool legend = true;
  /// Restrict rendering to [start, end) ticks; 0/0 = full trace.
  trace::Timestamp windowStart = 0;
  trace::Timestamp windowEnd = 0;
};

/// Sentinel bin value marking a quarantined rank's row: the renderers
/// paint it in TimelineOptions::noDataColor ('x' in ASCII) instead of
/// looking up a function color.
inline constexpr trace::FunctionId kTimelineNoData =
    trace::kInvalidFunction - 1;

/// Compute the [process][bin] dominant-function matrix underlying the
/// timeline: each cell holds the FunctionId covering the largest time
/// share of that bin on top of the stack, or trace::kInvalidFunction for
/// idle. Rows of quarantined ranks are filled with kTimelineNoData —
/// salvaged partial data is deliberately not drawn as if it were sound.
/// Exposed for tests and ASCII rendering.
std::vector<std::vector<trace::FunctionId>> timelineBins(
    const trace::TraceView& trace, const TimelineOptions& options);

/// Raster timeline.
Image renderTimelineImage(const trace::TraceView& trace,
                          const FunctionColors& colors,
                          const TimelineOptions& options);

/// SVG timeline (with optional message lines).
SvgDocument renderTimelineSvg(const trace::TraceView& trace,
                              const FunctionColors& colors,
                              const TimelineOptions& options);

/// ASCII timeline for terminals: one character per (process, bin); each
/// function group gets a letter (its legend is appended), MPI renders as
/// '#', idle as ' '. Useful for quick looks at traces over SSH.
std::string renderTimelineAscii(const trace::TraceView& trace,
                                const TimelineOptions& options);

/// Fraction of total stack-top time per paradigm over `bins` time bins,
/// aggregated across processes: series[paradigm][bin] in [0,1]. This
/// regenerates "MPI share grows over the run" observations from timeline
/// views.
std::vector<std::vector<double>> paradigmShareOverTime(
    const trace::TraceView& trace, std::size_t bins);

}  // namespace perfvar::vis

#endif  // PERFVAR_VIS_TIMELINE_HPP
