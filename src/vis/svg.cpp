#include "vis/svg.hpp"

#include <fstream>

#include "util/error.hpp"

namespace perfvar::vis {

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height) {
  PERFVAR_REQUIRE(width > 0 && height > 0, "SVG dimensions must be positive");
  body_.setf(std::ios::fixed);
  body_.precision(2);
}

std::string SvgDocument::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void SvgDocument::rect(double x, double y, double w, double h, Rgb fill) {
  body_ << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
        << "\" height=\"" << h << "\" fill=\"" << fill.hex() << "\"/>\n";
}

void SvgDocument::rectOutline(double x, double y, double w, double h,
                              Rgb strokeColor, double strokeWidth) {
  body_ << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
        << "\" height=\"" << h << "\" fill=\"none\" stroke=\""
        << strokeColor.hex() << "\" stroke-width=\"" << strokeWidth
        << "\"/>\n";
}

void SvgDocument::line(double x1, double y1, double x2, double y2,
                       Rgb strokeColor, double strokeWidth) {
  body_ << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2
        << "\" y2=\"" << y2 << "\" stroke=\"" << strokeColor.hex()
        << "\" stroke-width=\"" << strokeWidth << "\"/>\n";
}

void SvgDocument::text(double x, double y, const std::string& s, Rgb fill,
                       double fontSize, const std::string& anchor) {
  body_ << "<text x=\"" << x << "\" y=\"" << y << "\" fill=\"" << fill.hex()
        << "\" font-size=\"" << fontSize
        << "\" font-family=\"monospace\" text-anchor=\"" << anchor << "\">"
        << escape(s) << "</text>\n";
}

void SvgDocument::raw(const std::string& element) {
  body_ << element << '\n';
}

std::string SvgDocument::finalize() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
     << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
     << "\" height=\"" << height_ << "\" viewBox=\"0 0 " << width_ << ' '
     << height_ << "\">\n"
     << body_.str() << "</svg>\n";
  return os.str();
}

void SvgDocument::save(const std::string& path) const {
  std::ofstream out(path);
  PERFVAR_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << finalize();
  PERFVAR_REQUIRE(out.good(), "write to '" + path + "' failed");
}

}  // namespace perfvar::vis
