#ifndef PERFVAR_SERVER_SERVER_HPP
#define PERFVAR_SERVER_SERVER_HPP

/// \file server.hpp
/// The analysis daemon: transport + session threads around TraceService.
///
/// A Server accepts framed-protocol connections (docs/PROTOCOL.md) and
/// runs one session thread per connection. Two transports feed it:
///
///   - listen(path) + run(): the `trace_tool serve` daemon on a
///     Unix-domain socket. run() blocks until stop() — which a client can
///     trigger with a Shutdown frame.
///   - serveConnection(fd): adopt one already-connected descriptor (the
///     server end of util::socketPair()). Tests, benchmarks and
///     examples/insitu_monitor use this to run client and server in one
///     process without touching the filesystem.
///
/// stop() wakes the accept loop AND shuts down every live session socket,
/// so blocked reads see EOF and the destructor's join cannot hang. The
/// TraceService — and with it every resident trace — lives exactly as
/// long as the Server.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.hpp"
#include "util/socket.hpp"

namespace perfvar::server {

class Server {
public:
  explicit Server(ServerOptions options = {});

  /// Stops the server and joins every session thread.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The shared brain; handy for in-process assertions (stats()).
  TraceService& service() { return service_; }

  /// Bind the daemon's Unix-domain listening socket. Throws
  /// Error(IoFailure) when the path cannot be bound.
  void listen(const std::string& path);

  /// Path passed to listen(), empty before.
  const std::string& socketPath() const { return socketPath_; }

  /// Accept loop: serves connections until stop(). Requires listen().
  void run();

  /// Adopt one connected descriptor and serve it on a session thread
  /// (returns immediately). Works with or without listen()/run().
  void serveConnection(util::FileDescriptor fd);

  /// Initiate shutdown: wakes the accept loop and every session read.
  /// Idempotent and callable from session threads (Shutdown frames).
  void stop();

  /// Graceful shutdown (SIGTERM): stop accepting new connections and new
  /// requests, but let every in-flight request finish and flush its
  /// response — sessions see EOF on the *read* side only, so replies
  /// already being written still reach the peer. Joins all session
  /// threads, then fsyncs every live journal. Callable from a non-session
  /// thread only (it joins session threads).
  void drain();

  bool stopped() const { return stopping_.load(); }

private:
  void sessionLoop(util::FileDescriptor fd, std::uint64_t id);

  TraceService service_;
  util::FileDescriptor listenFd_;
  std::string socketPath_;
  std::atomic<bool> stopping_{false};

  /// Guards sessionFds_ and threads_. Session sockets are shut down (and
  /// session threads registered) only under this mutex, and a session
  /// closes its descriptor only AFTER deregistering under it — so stop()
  /// never races a shutdown(2) against a close(2)/descriptor reuse.
  std::mutex mutex_;
  std::map<std::uint64_t, int> sessionFds_;
  std::uint64_t nextSession_ = 0;
  std::vector<std::thread> threads_;
};

}  // namespace perfvar::server

#endif  // PERFVAR_SERVER_SERVER_HPP
