#include "server/client.hpp"

#include "util/framing.hpp"

namespace perfvar::server {

Client::Client(util::FileDescriptor fd) : fd_(std::move(fd)) {
  util::suppressSigpipe();
  util::writeFrame(fd_.get(), static_cast<std::uint8_t>(FrameType::Hello),
                   encodeHello());
  util::Frame frame;
  PERFVAR_REQUIRE_E(util::readFrame(fd_.get(), frame),
                    "client: server closed the connection during handshake",
                    ErrorContext::at(ErrorCode::TruncatedInput));
  if (static_cast<FrameType>(frame.type) == FrameType::Error) {
    const ProtocolError e = decodeErrorPayload(frame.payload);
    throw Error("client: handshake rejected: " + e.message,
                ErrorContext::at(e.code));
  }
  PERFVAR_REQUIRE_E(
      static_cast<FrameType>(frame.type) == FrameType::HelloOk,
      std::string("client: expected hello-ok, got ") +
          frameTypeName(static_cast<FrameType>(frame.type)),
      ErrorContext::at(ErrorCode::MalformedEvent));
}

Client Client::connectTo(const std::string& path, std::size_t retries) {
  return Client(util::connectUnix(path, retries));
}

Client Client::connectTo(const std::string& path,
                         const util::ConnectRetryPolicy& policy) {
  return Client(util::connectUnix(path, policy));
}

ClientResponse Client::request(FrameType type, std::string_view payload) {
  util::writeFrame(fd_.get(), static_cast<std::uint8_t>(type), payload);
  ClientResponse response;
  util::Frame frame;
  for (;;) {
    PERFVAR_REQUIRE_E(util::readFrame(fd_.get(), frame),
                      "client: server closed the connection mid-request",
                      ErrorContext::at(ErrorCode::TruncatedInput));
    const auto ftype = static_cast<FrameType>(frame.type);
    if (ftype == FrameType::Alert) {
      response.alerts.push_back(std::move(frame.payload));
      continue;
    }
    PERFVAR_REQUIRE_E(isFinalResponse(ftype),
                      std::string("client: unexpected response frame ") +
                          frameTypeName(ftype),
                      ErrorContext::at(ErrorCode::MalformedEvent));
    response.type = ftype;
    response.payload = std::move(frame.payload);
    return response;
  }
}

ClientResponse Client::load(const std::string& name,
                            const std::string& path) {
  return request(FrameType::Load, name + " " + path);
}

ClientResponse Client::open(const std::string& name,
                            const std::string& spec) {
  return request(FrameType::Open, name + " " + spec);
}

ClientResponse Client::append(const std::string& name,
                              std::string_view image) {
  return request(FrameType::Append, encodeAppendPayload(name, image));
}

ClientResponse Client::analyze(const std::string& spec) {
  return request(FrameType::Analyze, spec);
}

ClientResponse Client::exportReport(const std::string& spec) {
  return request(FrameType::Export, spec);
}

ClientResponse Client::lint(const std::string& name) {
  return request(FrameType::Lint, name);
}

ClientResponse Client::stats(const std::string& name) {
  return request(FrameType::Stats, name);
}

ClientResponse Client::evict(const std::string& name) {
  return request(FrameType::Evict, name);
}

ClientResponse Client::subscribe(const std::string& name) {
  return request(FrameType::Subscribe, name);
}

ClientResponse Client::close() {
  return request(FrameType::Close, {});
}

ClientResponse Client::shutdownServer() {
  return request(FrameType::Shutdown, {});
}

}  // namespace perfvar::server
