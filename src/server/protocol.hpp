#ifndef PERFVAR_SERVER_PROTOCOL_HPP
#define PERFVAR_SERVER_PROTOCOL_HPP

/// \file protocol.hpp
/// Frame vocabulary of the analysis server ("PVTS" protocol, version 1).
///
/// Transport: every message is one length-prefixed frame (util/framing.hpp;
/// byte layout in docs/PROTOCOL.md). This header defines what the frame
/// types and payloads mean.
///
/// Conversation shape:
///   1. The client opens with a Hello frame (magic "PVTS" + version); the
///      server answers HelloOk or an Error frame and drops the connection.
///   2. Every later request frame is answered by a sequence of response
///      frames ending in exactly one FINAL frame (Ok, Data, Error,
///      Evicted or Bye — see isFinalResponse). Non-final Alert frames may
///      precede the final frame of an Append request, and may arrive
///      unsolicited between requests on subscribed connections.
///
/// Request payloads are space-separated text tokens (mirroring the
/// `trace_tool query` stdin language), except Append, which carries a
/// binary v2 chunk image after a length-prefixed trace name. Error
/// payloads reuse the ErrorCode taxonomy of util/error.hpp, so a client
/// can assert on *which* failure occurred without string matching.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/export.hpp"
#include "analysis/pipeline.hpp"
#include "util/error.hpp"

namespace perfvar::server {

/// Handshake magic of the Hello payload ("PVTS" = PerfVar Trace Server).
inline constexpr char kProtocolMagic[4] = {'P', 'V', 'T', 'S'};

/// Protocol version spoken by this build.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame types. Requests occupy [1, 63], responses [64, 127]; everything
/// else is a protocol violation answered with an Error frame.
enum class FrameType : std::uint8_t {
  // ---- requests (client -> server) ----
  Hello = 1,      ///< handshake: magic + version
  Load = 2,       ///< "<name> <path>": open a trace file as an engine
  Open = 3,       ///< "<name> <segmentFn> [threshold Z] [warmup N]":
                  ///< create a live (streaming) trace
  Append = 4,     ///< binary: name + v2 chunk image for a live trace
  Analyze = 5,    ///< "<name> [candidate K] [threshold Z] [max-hotspots N]"
  Export = 6,     ///< "<name> <format> [analyze options]"
  Lint = 7,       ///< "<name>": rule-based diagnostics
  Stats = 8,      ///< "" = server stats; "<name>" = per-trace stats
  Evict = 9,      ///< "<name>": drop a resident trace
  Subscribe = 10, ///< "<name>": receive Alert frames of a live trace
  Close = 11,     ///< "": end this session (server answers Bye)
  Shutdown = 12,  ///< "": stop the whole server (server answers Bye)

  // ---- responses (server -> client) ----
  HelloOk = 64,   ///< handshake accepted: u32 LE server protocol version
  Ok = 65,        ///< final: request succeeded, short text summary
  Data = 66,      ///< final: request succeeded, bulk payload (report, ...)
  Error = 67,     ///< final: u8 ErrorCode + message text
  Evicted = 68,   ///< final: the named trace was evicted (memory budget)
  Alert = 69,     ///< non-final: streaming SOS alert line
  Bye = 70,       ///< final: session (or server) is closing
};

/// True for the response types that end a request's frame sequence.
bool isFinalResponse(FrameType type);

/// Stable lower-case name of a frame type ("load", "ok", ...), for logs
/// and error messages; "unknown" for out-of-range values.
const char* frameTypeName(FrameType type);

// ---- Hello ----------------------------------------------------------------

/// Payload of the Hello request: magic "PVTS" + u32 LE kProtocolVersion.
std::string encodeHello();

/// Validate a Hello payload; throws Error(BadMagic) on wrong magic and
/// Error(UnsupportedVersion) on a version this build does not speak.
void checkHello(std::string_view payload);

/// Payload of the HelloOk response: u32 LE server protocol version.
std::string encodeHelloOk();

// ---- Error ----------------------------------------------------------------

/// Payload of an Error frame: u8 ErrorCode + UTF-8 message.
std::string encodeErrorPayload(ErrorCode code, std::string_view message);

/// Decoded Error frame payload.
struct ProtocolError {
  ErrorCode code = ErrorCode::Generic;
  std::string message;
};

/// Decode an Error payload; malformed payloads decode as Generic with the
/// raw bytes as message (error frames must never themselves throw).
ProtocolError decodeErrorPayload(std::string_view payload);

// ---- Append ---------------------------------------------------------------

/// Payload of an Append request:
///   u32 LE name length | name bytes | v2 chunk image (to end of payload)
std::string encodeAppendPayload(std::string_view name,
                                std::string_view image);

/// Decoded Append payload. `image` points into the payload passed to
/// decodeAppendPayload — it must outlive the view.
struct AppendPayload {
  std::string name;
  std::string_view image;
};

/// Decode an Append payload; throws Error(MalformedEvent) when the name
/// length overruns the payload.
AppendPayload decodeAppendPayload(std::string_view payload);

// ---- text request helpers -------------------------------------------------

/// Split a text payload into whitespace-separated tokens.
std::vector<std::string> splitTokens(std::string_view text);

/// Parse `[candidate K] [threshold Z] [max-hotspots N]` pairs starting at
/// tokens[first] (the trace_tool query option language). Throws
/// Error(MalformedEvent) on unknown keys or bad values.
analysis::PipelineOptions parsePipelineOptions(
    const std::vector<std::string>& tokens, std::size_t first);

/// Parse an export format name (text | json | csv | csv-iterations |
/// csv-hotspots); throws Error(MalformedEvent) on anything else.
analysis::ExportFormat parseExportFormat(const std::string& name);

}  // namespace perfvar::server

#endif  // PERFVAR_SERVER_PROTOCOL_HPP
