#ifndef PERFVAR_SERVER_JOURNAL_HPP
#define PERFVAR_SERVER_JOURNAL_HPP

/// \file journal.hpp
/// Per-trace write-ahead append journal ("PVTJ") of the analysis server.
///
/// A live streaming trace exists only in daemon memory; a crash between
/// the producer's Append and the next archive step loses it. When the
/// server runs with a journal directory, every accepted Open/Append is
/// recorded here *before* the request is acknowledged, so `serve
/// --journal-dir <d> --recover` can replay the journals and reconstruct
/// each live entry byte-identical to the pre-crash state — including the
/// reorder-window contents and StreamingSos progress, which replay
/// re-derives by re-feeding the same chunk images through the same code
/// path as the original appends.
///
/// File layout (all integers little-endian):
///
///   header:  "PVTJ" | u32 version (=1) | u32 nameLen | name bytes
///            | u64 FNV-1a over (version | nameLen | name)
///   records: u32 payloadLen | u8 type | payload | u64 FNV-1a over
///            (type byte | payload)
///
/// Record types:
///   Open   (1): u32 fnLen | fn | u64 threshold (double bit pattern)
///               | u64 warmup — the live entry's stream options.
///   Append (2): u8 mode (0 = committed directly, 1 = entered the reorder
///               window) | raw v2 chunk image as received on the wire.
///   Flush  (3): u64 count — the `count` earliest reorder-window chunks
///               were committed (failed chunks count as processed; they
///               are dropped on replay exactly as they were live).
///
/// Recovery is torn-tail tolerant: scanJournal() accepts the longest
/// prefix of structurally valid, checksum-clean records and reports where
/// the valid bytes end, so a crash mid-write costs at most the final
/// (unacknowledged) record. Double-apply is impossible by construction —
/// truncating the tail and replaying the prefix is idempotent.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/append_file.hpp"

namespace perfvar::server {

/// Journal file format version written by this build.
inline constexpr std::uint32_t kJournalVersion = 1;

/// Record vocabulary (see file comment for payload layouts).
enum class JournalRecordType : std::uint8_t {
  Open = 1,
  Append = 2,
  Flush = 3,
};

/// One decoded journal record.
struct JournalRecord {
  JournalRecordType type = JournalRecordType::Open;
  std::string payload;
};

/// Payload of an Open record.
struct JournalOpen {
  std::string segmentFunction;
  double threshold = 0.0;
  std::uint64_t warmup = 0;
};

/// Payload of an Append record.
struct JournalAppend {
  bool buffered = false;    ///< entered the reorder window (vs committed)
  std::string_view image;   ///< points into the record payload
};

std::string encodeJournalOpen(const JournalOpen& open);
JournalOpen decodeJournalOpen(std::string_view payload);

std::string encodeJournalAppend(bool buffered, std::string_view image);
/// The returned view aliases `payload`.
JournalAppend decodeJournalAppend(std::string_view payload);

std::string encodeJournalFlush(std::uint64_t count);
std::uint64_t decodeJournalFlush(std::string_view payload);

/// Deterministic journal file name for a trace: a sanitized prefix of the
/// trace name plus its FNV-1a hash, ".pvj" suffix. Collision-free because
/// the hash disambiguates names that sanitize identically.
std::string journalFileName(std::string_view traceName);

/// All *.pvj files directly inside `dir`, sorted by path for reproducible
/// recovery order. A missing directory yields an empty list.
std::vector<std::string> listJournals(const std::string& dir);

/// Appending writer over one trace's journal file.
class JournalWriter {
public:
  /// Start a fresh journal for `traceName` inside `dir` (truncates any
  /// previous file — an Open supersedes the name's history). Creates
  /// `dir` if missing.
  static JournalWriter create(const std::string& dir,
                              std::string_view traceName, bool fsyncEachRecord);

  /// Continue appending to an existing journal file (recovery keeps the
  /// replayed prefix and extends it).
  static JournalWriter openExisting(std::string path, bool fsyncEachRecord);

  /// Append one record (single write(2)), then fsync when the policy says
  /// so. Throws Error(IoFailure) on any failure.
  void append(JournalRecordType type, std::string_view payload);

  /// fsync now regardless of policy (shutdown drain).
  void sync();

  const std::string& path() const { return file_.path(); }

private:
  JournalWriter(util::AppendFile file, bool fsyncEachRecord)
      : file_(std::move(file)), fsyncEachRecord_(fsyncEachRecord) {}

  util::AppendFile file_;
  bool fsyncEachRecord_ = false;
};

/// Result of scanning a journal file.
struct JournalScan {
  std::string traceName;               ///< from the header
  std::vector<JournalRecord> records;  ///< valid prefix, in order
  std::uint64_t validBytes = 0;        ///< file offset after the last good record
  bool torn = false;                   ///< trailing bytes past validBytes
};

/// Scan `path`, accepting the longest valid record prefix. A file whose
/// header is unreadable/corrupt throws Error (the journal identifies no
/// trace); a corrupt or truncated record tail merely stops the scan with
/// torn = true. Never throws on tail damage.
JournalScan scanJournal(const std::string& path);

}  // namespace perfvar::server

#endif  // PERFVAR_SERVER_JOURNAL_HPP
