#include "server/server.hpp"

#include "util/framing.hpp"

namespace perfvar::server {

Server::Server(ServerOptions options) : service_(options) {
  util::suppressSigpipe();
}

Server::~Server() {
  stop();
  // stop() shut every session socket down, so each loop sees EOF and
  // exits; the joins below cannot hang on a blocked read.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

void Server::listen(const std::string& path) {
  listenFd_ = util::listenUnix(path);
  socketPath_ = path;
}

void Server::run() {
  PERFVAR_REQUIRE(listenFd_.valid(), "server: listen() before run()");
  while (!stopping_.load()) {
    util::FileDescriptor conn = util::acceptConnection(listenFd_.get());
    if (!conn.valid()) {
      break;  // the listening socket was shut down: stop()
    }
    serveConnection(std::move(conn));
  }
}

void Server::serveConnection(util::FileDescriptor fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = nextSession_++;
  sessionFds_.emplace(id, fd.get());
  if (stopping_.load()) {
    // Raced with stop(): make sure this session's first read fails too.
    util::shutdownSocket(fd.get());
  }
  threads_.emplace_back(
      [this, id](util::FileDescriptor conn) {
        sessionLoop(std::move(conn), id);
      },
      std::move(fd));
}

void Server::stop() {
  stopping_.store(true);
  std::lock_guard<std::mutex> lock(mutex_);
  if (listenFd_.valid()) {
    util::shutdownSocket(listenFd_.get());
  }
  for (const auto& [id, fd] : sessionFds_) {
    util::shutdownSocket(fd);
  }
}

void Server::drain() {
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (listenFd_.valid()) {
      util::shutdownSocket(listenFd_.get());
    }
    // Read-side only: blocked readFrame calls return EOF and the session
    // loops wind down, but a response currently being written still
    // flushes to the peer.
    for (const auto& [id, fd] : sessionFds_) {
      util::shutdownSocketRead(fd);
    }
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  service_.syncJournals();
}

void Server::sessionLoop(util::FileDescriptor fd, std::uint64_t id) {
  const ServerOptions& serverOptions = service_.options();
  SenderOptions senderOptions;
  senderOptions.sendTimeoutMs = serverOptions.sendTimeoutMs;
  senderOptions.alertQueueBytes = serverOptions.alertQueueBytes;
  auto sender = std::make_shared<Sender>(fd.get(), senderOptions);
  std::shared_ptr<ServerSession> session;
  try {
    util::Frame request;
    // Handshake: the first frame must be a valid Hello. Anything else
    // gets a best-effort Error frame and the connection is dropped.
    if (util::readFrame(fd.get(), request)) {
      bool accepted = false;
      if (static_cast<FrameType>(request.type) != FrameType::Hello) {
        sender->send(FrameType::Error,
                     encodeErrorPayload(
                         ErrorCode::MalformedEvent,
                         std::string("expected a hello frame, got ") +
                             frameTypeName(
                                 static_cast<FrameType>(request.type))));
      } else {
        try {
          checkHello(request.payload);
          accepted = true;
        } catch (const Error& e) {
          sender->send(FrameType::Error,
                       encodeErrorPayload(e.code(), e.what()));
        }
      }
      if (accepted) {
        sender->send(FrameType::HelloOk, encodeHelloOk());
        session = service_.openSession(sender);
        while (util::readFrame(fd.get(), request)) {
          const auto type = static_cast<FrameType>(request.type);
          if (type == FrameType::Close) {
            sender->send(FrameType::Bye, "closing session");
            break;
          }
          if (type == FrameType::Shutdown) {
            sender->send(FrameType::Bye, "shutting down");
            stop();
            break;
          }
          bool delivered = true;
          for (const util::Frame& response :
               service_.handle(session, request)) {
            if (!sender->send(static_cast<FrameType>(response.type),
                              response.payload)) {
              delivered = false;
              break;
            }
          }
          if (!delivered) {
            break;  // peer gone mid-response
          }
        }
      }
    }
  } catch (const Error& e) {
    // readFrame faults: an oversized declared length (MalformedEvent)
    // deserves a structured goodbye; truncation and transport errors
    // mean the peer is gone — nothing left to tell it.
    if (e.code() == ErrorCode::MalformedEvent) {
      sender->send(FrameType::Error, encodeErrorPayload(e.code(), e.what()));
    }
  } catch (const std::exception&) {
    // Session threads never propagate: a crash here would take the whole
    // daemon down, which is exactly what the fuzz tests forbid.
  }
  if (session) {
    service_.closeSession(session);
  }
  sender->deactivate();
  {
    // Deregister under the lock BEFORE closing, so stop() cannot shut
    // down a reused descriptor number.
    std::lock_guard<std::mutex> lock(mutex_);
    sessionFds_.erase(id);
  }
  fd.close();
}

}  // namespace perfvar::server
