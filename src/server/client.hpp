#ifndef PERFVAR_SERVER_CLIENT_HPP
#define PERFVAR_SERVER_CLIENT_HPP

/// \file client.hpp
/// Blocking client of the analysis server protocol.
///
/// A Client owns one connected descriptor, performs the Hello handshake
/// on construction, and turns each request into the protocol's
/// frame-sequence contract: request() writes one frame and collects
/// responses until the final one (Ok, Data, Error, Evicted or Bye),
/// gathering any Alert frames seen on the way. It is the one
/// implementation of the client side shared by `trace_tool connect`, the
/// in-situ monitor example, the benchmarks and the server tests — so a
/// protocol change breaks loudly in all of them at once.
///
/// A Client is NOT thread-safe; give each thread its own connection
/// (that is the server's unit of session isolation anyway).

#include <string>
#include <string_view>
#include <vector>

#include "server/protocol.hpp"
#include "util/socket.hpp"

namespace perfvar::server {

/// Outcome of one request: the final frame plus any Alert payloads that
/// arrived before it (own appends on subscribed live traces, or
/// unsolicited alerts queued since the previous request).
struct ClientResponse {
  FrameType type = FrameType::Error;
  std::string payload;
  std::vector<std::string> alerts;

  /// True for the two success finals (Ok / Data).
  bool ok() const {
    return type == FrameType::Ok || type == FrameType::Data;
  }

  /// Decode an Error final's structured payload (code + message).
  ProtocolError error() const { return decodeErrorPayload(payload); }
};

class Client {
public:
  /// Adopt a connected descriptor and perform the handshake. Throws
  /// Error when the server refuses or the transport fails.
  explicit Client(util::FileDescriptor fd);

  /// Connect to a daemon's Unix socket, retrying while it starts up.
  static Client connectTo(const std::string& path, std::size_t retries = 50);

  /// Connect with an explicit bounded-retry/backoff policy
  /// (`trace_tool connect --retry N --retry-delay-ms M`).
  static Client connectTo(const std::string& path,
                          const util::ConnectRetryPolicy& policy);

  /// Send one frame and collect responses until the final frame.
  /// Error finals are RETURNED (type == FrameType::Error), not thrown —
  /// they are protocol results; only transport failures throw.
  ClientResponse request(FrameType type, std::string_view payload);

  // Convenience wrappers over request() — text payloads mirror the
  // `trace_tool connect` command language.
  ClientResponse load(const std::string& name, const std::string& path);
  ClientResponse open(const std::string& name, const std::string& spec);
  ClientResponse append(const std::string& name, std::string_view image);
  ClientResponse analyze(const std::string& spec);
  ClientResponse exportReport(const std::string& spec);
  ClientResponse lint(const std::string& name);
  ClientResponse stats(const std::string& name = {});
  ClientResponse evict(const std::string& name);
  ClientResponse subscribe(const std::string& name);

  /// End the session (Close -> Bye). The connection is unusable after.
  ClientResponse close();

  /// Ask the server to stop entirely (Shutdown -> Bye).
  ClientResponse shutdownServer();

  int fd() const { return fd_.get(); }

private:
  util::FileDescriptor fd_;
};

}  // namespace perfvar::server

#endif  // PERFVAR_SERVER_CLIENT_HPP
