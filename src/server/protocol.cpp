#include "server/protocol.hpp"

#include <cstring>
#include <sstream>

namespace perfvar::server {

namespace {

void putU32LE(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t getU32LE(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

bool parseSize(const std::string& value, std::size_t& out) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  try {
    out = static_cast<std::size_t>(std::stoul(value));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool parseDouble(const std::string& value, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(value, &pos);
    return pos == value.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

bool isFinalResponse(FrameType type) {
  switch (type) {
    case FrameType::Ok:
    case FrameType::Data:
    case FrameType::Error:
    case FrameType::Evicted:
    case FrameType::Bye:
      return true;
    default:
      return false;
  }
}

const char* frameTypeName(FrameType type) {
  switch (type) {
    case FrameType::Hello: return "hello";
    case FrameType::Load: return "load";
    case FrameType::Open: return "open";
    case FrameType::Append: return "append";
    case FrameType::Analyze: return "analyze";
    case FrameType::Export: return "export";
    case FrameType::Lint: return "lint";
    case FrameType::Stats: return "stats";
    case FrameType::Evict: return "evict";
    case FrameType::Subscribe: return "subscribe";
    case FrameType::Close: return "close";
    case FrameType::Shutdown: return "shutdown";
    case FrameType::HelloOk: return "hello-ok";
    case FrameType::Ok: return "ok";
    case FrameType::Data: return "data";
    case FrameType::Error: return "error";
    case FrameType::Evicted: return "evicted";
    case FrameType::Alert: return "alert";
    case FrameType::Bye: return "bye";
  }
  return "unknown";
}

std::string encodeHello() {
  std::string payload(kProtocolMagic, sizeof kProtocolMagic);
  putU32LE(payload, kProtocolVersion);
  return payload;
}

void checkHello(std::string_view payload) {
  PERFVAR_REQUIRE_E(
      payload.size() >= sizeof kProtocolMagic &&
          std::memcmp(payload.data(), kProtocolMagic,
                      sizeof kProtocolMagic) == 0,
      "hello: bad protocol magic (expected \"PVTS\")",
      ErrorContext::at(ErrorCode::BadMagic, 0));
  PERFVAR_REQUIRE_E(payload.size() == sizeof kProtocolMagic + 4,
                    "hello: truncated payload",
                    ErrorContext::at(ErrorCode::TruncatedInput,
                                     payload.size()));
  const std::uint32_t version = getU32LE(
      reinterpret_cast<const unsigned char*>(payload.data()) +
      sizeof kProtocolMagic);
  PERFVAR_REQUIRE_E(version == kProtocolVersion,
                    "hello: unsupported protocol version " +
                        std::to_string(version) + " (this server speaks " +
                        std::to_string(kProtocolVersion) + ")",
                    ErrorContext::at(ErrorCode::UnsupportedVersion, 4));
}

std::string encodeHelloOk() {
  std::string payload;
  putU32LE(payload, kProtocolVersion);
  return payload;
}

std::string encodeErrorPayload(ErrorCode code, std::string_view message) {
  std::string payload;
  payload.push_back(static_cast<char>(code));
  payload.append(message);
  return payload;
}

ProtocolError decodeErrorPayload(std::string_view payload) {
  ProtocolError e;
  if (payload.empty()) {
    e.message = "(empty error payload)";
    return e;
  }
  const auto raw = static_cast<std::uint8_t>(payload[0]);
  e.code = raw <= static_cast<std::uint8_t>(ErrorCode::ChunkOutOfWindow)
               ? static_cast<ErrorCode>(raw)
               : ErrorCode::Generic;
  e.message.assign(payload.begin() + 1, payload.end());
  return e;
}

std::string encodeAppendPayload(std::string_view name,
                                std::string_view image) {
  std::string payload;
  payload.reserve(4 + name.size() + image.size());
  putU32LE(payload, static_cast<std::uint32_t>(name.size()));
  payload.append(name);
  payload.append(image);
  return payload;
}

AppendPayload decodeAppendPayload(std::string_view payload) {
  PERFVAR_REQUIRE_E(payload.size() >= 4,
                    "append: truncated payload (no name length)",
                    ErrorContext::at(ErrorCode::MalformedEvent, 0));
  const std::uint32_t nameLen = getU32LE(
      reinterpret_cast<const unsigned char*>(payload.data()));
  PERFVAR_REQUIRE_E(4 + static_cast<std::size_t>(nameLen) <= payload.size(),
                    "append: name length overruns the payload",
                    ErrorContext::at(ErrorCode::MalformedEvent, 0));
  AppendPayload out;
  out.name.assign(payload.data() + 4, nameLen);
  out.image = payload.substr(4 + nameLen);
  return out;
}

std::vector<std::string> splitTokens(std::string_view text) {
  std::istringstream split{std::string(text)};
  std::vector<std::string> tokens;
  for (std::string t; split >> t;) {
    tokens.push_back(t);
  }
  return tokens;
}

analysis::PipelineOptions parsePipelineOptions(
    const std::vector<std::string>& tokens, std::size_t first) {
  analysis::PipelineOptions opts;
  for (std::size_t i = first; i < tokens.size(); i += 2) {
    PERFVAR_REQUIRE_E(i + 1 < tokens.size(),
                      "query option '" + tokens[i] + "' needs a value",
                      ErrorContext::at(ErrorCode::MalformedEvent));
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    if (key == "candidate") {
      PERFVAR_REQUIRE_E(parseSize(value, opts.candidateIndex),
                        "candidate expects a non-negative integer, got '" +
                            value + "'",
                        ErrorContext::at(ErrorCode::MalformedEvent));
    } else if (key == "threshold") {
      PERFVAR_REQUIRE_E(parseDouble(value, opts.variation.outlierThreshold),
                        "threshold expects a number, got '" + value + "'",
                        ErrorContext::at(ErrorCode::MalformedEvent));
    } else if (key == "max-hotspots") {
      PERFVAR_REQUIRE_E(parseSize(value, opts.variation.maxHotspots),
                        "max-hotspots expects a non-negative integer, got '" +
                            value + "'",
                        ErrorContext::at(ErrorCode::MalformedEvent));
    } else {
      throw Error("unknown query option '" + key + "'",
                  ErrorContext::at(ErrorCode::MalformedEvent));
    }
  }
  return opts;
}

analysis::ExportFormat parseExportFormat(const std::string& name) {
  if (name == "text") {
    return analysis::ExportFormat::Text;
  }
  if (name == "json") {
    return analysis::ExportFormat::Json;
  }
  if (name == "csv") {
    return analysis::ExportFormat::Csv;
  }
  if (name == "csv-iterations") {
    return analysis::ExportFormat::CsvIterations;
  }
  if (name == "csv-hotspots") {
    return analysis::ExportFormat::CsvHotspots;
  }
  throw Error("unknown export format '" + name +
                  "' (expected text | json | csv | csv-iterations | "
                  "csv-hotspots)",
              ErrorContext::at(ErrorCode::MalformedEvent));
}

}  // namespace perfvar::server
