#include "server/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"
#include "util/framing.hpp"
#include "util/hash.hpp"

namespace perfvar::server {

namespace {

constexpr char kJournalMagic[4] = {'P', 'V', 'T', 'J'};

/// Ceiling on a record payload: the largest Append payload is one mode
/// byte plus a maximum-size protocol frame image. Anything larger in a
/// scanned file is corruption, not an allocation request.
constexpr std::uint64_t kMaxJournalPayload = util::kMaxFramePayload + 64;

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void putU64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

std::uint32_t getU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t getU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

std::uint64_t recordChecksum(JournalRecordType type, std::string_view payload) {
  const auto typeByte = static_cast<std::uint8_t>(type);
  return util::Hasher{}
      .bytes(&typeByte, 1)
      .bytes(payload.data(), payload.size())
      .digest();
}

std::uint64_t headerChecksum(std::string_view nameAndVersionBytes) {
  return util::Hasher{}
      .bytes(nameAndVersionBytes.data(), nameAndVersionBytes.size())
      .digest();
}

[[noreturn]] void throwMalformed(const std::string& what,
                                 const std::string& path = {}) {
  ErrorContext context;
  context.code = ErrorCode::MalformedEvent;
  context.path = path;
  throw Error(what, std::move(context));
}

std::string encodeRecord(JournalRecordType type, std::string_view payload) {
  std::string out;
  out.reserve(4 + 1 + payload.size() + 8);
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out.push_back(static_cast<char>(type));
  out.append(payload);
  putU64(out, recordChecksum(type, payload));
  return out;
}

std::string encodeHeader(std::string_view traceName) {
  std::string out(kJournalMagic, sizeof(kJournalMagic));
  std::string hashed;
  putU32(hashed, kJournalVersion);
  putU32(hashed, static_cast<std::uint32_t>(traceName.size()));
  hashed.append(traceName);
  out += hashed;
  putU64(out, headerChecksum(hashed));
  return out;
}

}  // namespace

std::string encodeJournalOpen(const JournalOpen& open) {
  std::string out;
  putU32(out, static_cast<std::uint32_t>(open.segmentFunction.size()));
  out.append(open.segmentFunction);
  std::uint64_t thresholdBits = 0;
  static_assert(sizeof(thresholdBits) == sizeof(open.threshold));
  std::memcpy(&thresholdBits, &open.threshold, sizeof(thresholdBits));
  putU64(out, thresholdBits);
  putU64(out, open.warmup);
  return out;
}

JournalOpen decodeJournalOpen(std::string_view payload) {
  if (payload.size() < 4) {
    throwMalformed("journal Open record too short");
  }
  const auto* p = reinterpret_cast<const unsigned char*>(payload.data());
  const std::uint32_t fnLen = getU32(p);
  if (payload.size() != 4 + static_cast<std::size_t>(fnLen) + 16) {
    throwMalformed("journal Open record has inconsistent length");
  }
  JournalOpen open;
  open.segmentFunction.assign(payload.data() + 4, fnLen);
  const std::uint64_t thresholdBits = getU64(p + 4 + fnLen);
  std::memcpy(&open.threshold, &thresholdBits, sizeof(open.threshold));
  open.warmup = getU64(p + 4 + fnLen + 8);
  return open;
}

std::string encodeJournalAppend(bool buffered, std::string_view image) {
  std::string out;
  out.reserve(1 + image.size());
  out.push_back(buffered ? '\1' : '\0');
  out.append(image);
  return out;
}

JournalAppend decodeJournalAppend(std::string_view payload) {
  if (payload.empty() || (payload[0] != '\0' && payload[0] != '\1')) {
    throwMalformed("journal Append record has a bad mode byte");
  }
  JournalAppend append;
  append.buffered = payload[0] == '\1';
  append.image = payload.substr(1);
  return append;
}

std::string encodeJournalFlush(std::uint64_t count) {
  std::string out;
  putU64(out, count);
  return out;
}

std::uint64_t decodeJournalFlush(std::string_view payload) {
  if (payload.size() != 8) {
    throwMalformed("journal Flush record has inconsistent length");
  }
  return getU64(reinterpret_cast<const unsigned char*>(payload.data()));
}

std::string journalFileName(std::string_view traceName) {
  std::string stem;
  for (const char c : traceName.substr(0, 48)) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    stem.push_back(keep ? c : '_');
  }
  const std::uint64_t hash =
      util::Hasher{}.bytes(traceName.data(), traceName.size()).digest();
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(hash));
  if (!stem.empty()) {
    stem.push_back('-');
  }
  return stem + hex + ".pvj";
}

std::vector<std::string> listJournals(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec) && entry.path().extension() == ".pvj") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

JournalWriter JournalWriter::create(const std::string& dir,
                                    std::string_view traceName,
                                    bool fsyncEachRecord) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path =
      (std::filesystem::path(dir) / journalFileName(traceName)).string();
  util::AppendFile file = util::AppendFile::create(path);
  JournalWriter writer(std::move(file), fsyncEachRecord);
  const std::string header = encodeHeader(traceName);
  writer.file_.append(header.data(), header.size());
  if (fsyncEachRecord) {
    writer.file_.sync();
  }
  return writer;
}

JournalWriter JournalWriter::openExisting(std::string path,
                                          bool fsyncEachRecord) {
  util::AppendFile file = util::AppendFile::openAppend(path);
  return JournalWriter(std::move(file), fsyncEachRecord);
}

void JournalWriter::append(JournalRecordType type, std::string_view payload) {
  const std::string record = encodeRecord(type, payload);
  file_.append(record.data(), record.size());
  if (fsyncEachRecord_) {
    file_.sync();
  }
}

void JournalWriter::sync() {
  file_.sync();
}

JournalScan scanJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ErrorContext context;
    context.code = ErrorCode::IoFailure;
    context.path = path;
    throw Error("cannot open journal", std::move(context));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::uint64_t size = bytes.size();

  // Header: magic | u32 version | u32 nameLen | name | u64 checksum.
  if (size < sizeof(kJournalMagic) + 8 ||
      std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    ErrorContext context;
    context.code = ErrorCode::BadMagic;
    context.path = path;
    throw Error("not a PVTJ journal", std::move(context));
  }
  const std::uint32_t version = getU32(data + 4);
  PERFVAR_REQUIRE_E(version == kJournalVersion,
                    "unsupported journal version " + std::to_string(version),
                    [&] {
                      ErrorContext c;
                      c.code = ErrorCode::UnsupportedVersion;
                      c.path = path;
                      return c;
                    }());
  const std::uint32_t nameLen = getU32(data + 8);
  const std::uint64_t headerEnd = 12ull + nameLen + 8;
  if (nameLen > kMaxJournalPayload || size < headerEnd) {
    throwMalformed("journal header is truncated", path);
  }
  const std::string_view hashed(bytes.data() + 4, 8 + nameLen);
  if (getU64(data + 12 + nameLen) != headerChecksum(hashed)) {
    ErrorContext context;
    context.code = ErrorCode::ChecksumMismatch;
    context.path = path;
    throw Error("journal header checksum mismatch", std::move(context));
  }

  JournalScan scan;
  scan.traceName.assign(bytes.data() + 12, nameLen);
  scan.validBytes = headerEnd;

  // Records: accept the longest clean prefix; stop at the first record
  // whose length, bounds or checksum fail (the torn tail).
  std::uint64_t offset = headerEnd;
  while (true) {
    if (size - offset < 4) {
      break;
    }
    const std::uint64_t payloadLen = getU32(data + offset);
    if (payloadLen > kMaxJournalPayload ||
        size - offset < 4 + 1 + payloadLen + 8) {
      break;
    }
    const auto type = static_cast<JournalRecordType>(data[offset + 4]);
    if (type != JournalRecordType::Open && type != JournalRecordType::Append &&
        type != JournalRecordType::Flush) {
      break;
    }
    const std::string_view payload(bytes.data() + offset + 5, payloadLen);
    const std::uint64_t stored = getU64(data + offset + 5 + payloadLen);
    if (stored != recordChecksum(type, payload)) {
      break;
    }
    scan.records.push_back(JournalRecord{type, std::string(payload)});
    offset += 4 + 1 + payloadLen + 8;
    scan.validBytes = offset;
  }
  scan.torn = scan.validBytes != size;
  return scan;
}

}  // namespace perfvar::server
