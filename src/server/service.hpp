#ifndef PERFVAR_SERVER_SERVICE_HPP
#define PERFVAR_SERVER_SERVICE_HPP

/// \file service.hpp
/// TraceService: the transport-independent brain of the analysis server.
///
/// The service keeps multiple traces resident behind the existing
/// content-addressed stage caches and answers protocol requests:
///
///   - `load` opens a trace file as an engine::AnalysisEngine entry, so
///     repeated analyze/export requests are served from its stage caches.
///     Loading an already-resident name with the same path is idempotent
///     (same Ok response) — the determinism anchor of the concurrency
///     tests.
///   - `open` + `append` maintain a LIVE trace: each Append frame carries
///     a self-contained v2 chunk image, decoded with the per-rank block
///     path (trace::appendBinaryBuffer) and fed through
///     analysis::StreamingSos so windowed SOS alerts stream back — to the
///     appending connection (deterministically, before its final Ok) and
///     to every subscribed session.
///   - Memory budgets: ServerOptions::maxResidentBytes (global) and
///     maxSessionBytes (per loading session) are enforced by LRU
///     eviction. Evicted names are tombstoned; requests referencing them
///     receive a graceful Evicted frame (not a generic error) until the
///     name is re-loaded or re-opened. With rehydration enabled, budget
///     eviction instead spills the entry's source reference (trace file
///     path or journal path) and a later request faults it back in —
///     eviction becomes a cache miss, not data loss.
///   - Durability: with ServerOptions::journalDir set, every accepted
///     Open/Append of a live trace is recorded in a per-trace
///     write-ahead journal (server/journal.hpp) before the request is
///     acknowledged; `recover` replays the journals at construction so a
///     restarted daemon serves the same bytes as the crashed one.
///   - Out-of-order producers: reorderWindowBytes > 0 buffers appended
///     chunks in a bounded per-trace window and commits them in start-time
///     order (on window overflow, oldest first, and before any read), so
///     uncoordinated producers need not serialize their appends. A chunk
///     older than the already-committed tail is rejected with the
///     deterministic chunk-out-of-window error.
///
/// Locking: a registry mutex guards the name -> entry map, tombstones,
/// LRU clocks and byte accounting; a per-entry mutex serializes
/// computation on one trace. The two are never held simultaneously in a
/// nested fashion that could deadlock: handlers take the registry lock
/// only in short lookup/account sections, and the entry lock only between
/// them. Responses are deterministic per request (given the same resident
/// state), which is what the serial-vs-concurrent differential test
/// leans on.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "server/journal.hpp"
#include "server/protocol.hpp"
#include "trace/binary_io.hpp"
#include "util/framing.hpp"

namespace perfvar::server {

/// Construction-time options of a TraceService / Server.
struct ServerOptions {
  /// Worker threads of trace decode and analysis stages (per request):
  /// 1 = inline, 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Per-engine derived-stage cache capacity (EngineOptions equivalent).
  std::size_t maxCacheEntries = 64;
  /// Global memory budget over all resident traces in bytes
  /// (trace::approxMemoryBytes accounting); 0 = unlimited. Exceeding it
  /// evicts least-recently-used entries (never the one being touched).
  std::size_t maxResidentBytes = 0;
  /// Per-session budget over the traces a session loaded; 0 = unlimited.
  std::size_t maxSessionBytes = 0;
  /// Directory of per-trace write-ahead journals; empty = journaling off
  /// (the pre-durability behavior, byte-identical on the wire).
  std::string journalDir;
  /// Replay the journals found in journalDir at construction,
  /// reconstructing every live entry the crashed daemon had accepted.
  bool recover = false;
  /// fsync the journal after every record. Off, durability extends to
  /// the OS page cache (daemon crash safe, host crash not).
  bool journalFsync = false;
  /// Byte budget of the per-live-trace out-of-order reorder window;
  /// 0 = appends must arrive time-ordered (the pre-window behavior).
  std::size_t reorderWindowBytes = 0;
  /// Spill budget-evicted entries (journal/source reference) and fault
  /// them back in when referenced, instead of tombstoning. trace_tool
  /// enables this together with --journal-dir.
  bool rehydrate = false;
  /// Per-send poll timeout in milliseconds: a peer whose socket stays
  /// unwritable this long is treated as dead and its sender deactivates
  /// (0 = block indefinitely, the pre-timeout behavior).
  int sendTimeoutMs = 5000;
  /// Byte bound of a subscriber's queued undelivered alert frames;
  /// beyond it new alerts are dropped and summarized by a `dropped=N`
  /// marker frame once the queue drains.
  std::size_t alertQueueBytes = 1 << 20;
};

/// Delivery policy of a Sender (derived from ServerOptions).
struct SenderOptions {
  int sendTimeoutMs = 5000;          ///< 0 = block indefinitely
  std::size_t alertQueueBytes = 1 << 20;
};

/// Thread-safe frame sink of one connection. send() never throws: a
/// failed write (peer gone) or a stalled peer (per-send poll timeout)
/// deactivates the sender and every later send becomes a no-op, so alert
/// broadcasts cannot poison an append handler.
///
/// Alert fan-out is decoupled from the peer's read pace: enqueueAlert()
/// appends the frame's wire bytes to a bounded in-memory queue and
/// flushes opportunistically without ever blocking. When the queue is
/// full, new alerts are dropped and coalesced into a single
/// `dropped=N` Alert marker frame emitted once space frees, so a slow
/// subscriber costs bounded memory and zero append latency. send()
/// always drains the queue first, keeping each connection's frame order
/// intact.
class Sender {
public:
  explicit Sender(int fd, SenderOptions options = {})
      : fd_(fd), options_(options) {}

  /// Write one frame (queued alerts first); returns false when the
  /// sender is (or just became) inactive.
  bool send(FrameType type, std::string_view payload);

  /// Queue one Alert frame without blocking; drops-and-counts beyond the
  /// queue bound. Returns false when the sender is inactive.
  bool enqueueAlert(std::string_view line);

  /// Nonblocking best-effort flush of queued bytes; returns false when
  /// the sender is inactive.
  bool pumpAlerts();

  /// Stop sending (session teardown).
  void deactivate();

  bool active() const;

  /// Alerts dropped over the sender's lifetime (slow-consumer policy).
  std::uint64_t alertsDropped() const;

private:
  bool flushLocked(bool waitForDrain);
  void queueDropMarkerLocked();

  mutable std::mutex mutex_;
  int fd_;
  SenderOptions options_;
  bool active_ = true;
  std::string outbuf_;  ///< queued wire bytes (alerts, partial writes)
  std::uint64_t droppedPending_ = 0;  ///< drops awaiting a marker frame
  std::uint64_t droppedTotal_ = 0;
};

/// Per-connection session state. Created by openSession(), passed to
/// every handle() call of that connection.
struct ServerSession {
  std::uint64_t id = 0;
  std::shared_ptr<Sender> sender;
  /// Live-trace names this session subscribed to (alert delivery).
  std::set<std::string> subscriptions;
};

/// Server-wide counters (the no-argument `stats` request).
struct ServiceStats {
  std::size_t traces = 0;
  std::size_t residentBytes = 0;
  std::uint64_t evictions = 0;
  std::size_t spilled = 0;        ///< evicted entries waiting on disk
  std::uint64_t rehydrations = 0; ///< spilled entries faulted back in
};

class TraceService {
public:
  explicit TraceService(ServerOptions options = {});
  ~TraceService();

  TraceService(const TraceService&) = delete;
  TraceService& operator=(const TraceService&) = delete;

  const ServerOptions& options() const { return options_; }

  /// Register a new connection; the returned session identifies it in
  /// every later handle() call.
  std::shared_ptr<ServerSession> openSession(std::shared_ptr<Sender> sender);

  /// Unregister a connection. Its loaded traces stay resident (a server
  /// outlives its clients); its subscriptions die with it.
  void closeSession(const std::shared_ptr<ServerSession>& session);

  /// Answer one request frame: returns the ordered response frames for
  /// the requesting connection, ending in exactly one final frame.
  /// Errors — protocol violations, unknown names, corrupt chunks — come
  /// back as Error frames; handle() itself only throws on programming
  /// errors. Alert frames for OTHER subscribed sessions are delivered
  /// through their senders as a side effect.
  std::vector<util::Frame> handle(
      const std::shared_ptr<ServerSession>& session,
      const util::Frame& request);

  /// Current server-wide counters.
  ServiceStats stats() const;

  /// fsync every live entry's journal (graceful drain / SIGTERM).
  void syncJournals();

private:
  struct Entry;
  class Registry;
  struct Lookup;

  /// Find a resident trace by name and bump its LRU clock; distinguishes
  /// "never existed" from "was evicted" (tombstoned) from "spilled to
  /// disk" (rehydratable).
  Lookup lookupEntry(const std::string& name);

  /// lookupEntry plus transparent rehydration of spilled entries: a
  /// spilled name is rebuilt from its journal / source file and
  /// re-registered under the budgets before the lookup returns. When the
  /// source is gone the name degrades to a tombstone (Evicted).
  Lookup resolveEntry(const std::string& name);

  /// Replay every journal in options_.journalDir into resident live
  /// entries (construction with recover set). Unreadable journals are
  /// skipped, never fatal.
  void recoverJournals();

  /// Rebuild a live entry by replaying its journal (torn tails are
  /// truncated first). `expectedName` guards rehydration against a
  /// renamed journal file; nullptr accepts the header's name (recovery).
  std::shared_ptr<Entry> buildLiveFromJournal(const std::string& path,
                                              const std::string* expectedName);

  /// Rebuild an engine entry from its trace file (rehydration).
  std::shared_ptr<Entry> buildEngineEntry(const std::string& name,
                                          const std::string& path);

  // -- live-entry helpers; all *Locked members expect the entry lock --

  /// Append one chunk image to the live trace and feed the streaming
  /// analyzer exactly the appended tail (the legacy append body).
  trace::AppendStats commitChunkLocked(Entry& e, std::string_view image);

  /// Commit the earliest reorder-window chunk. A chunk the trace rejects
  /// is dropped and counted — its producer was acknowledged long ago, so
  /// the error has no addressee (replay does the same, keeping recovery
  /// deterministic).
  void commitEarliestLocked(Entry& e);

  /// Commit earliest-first until the window holds at most `targetBytes`;
  /// writes one journal Flush record covering the processed chunks.
  /// Returns the number of chunks processed (committed + dropped).
  std::size_t flushWindowToLocked(Entry& e, std::size_t targetBytes);

  /// Append one journal record; a journal write failure permanently
  /// disables the entry's journal (durability lost, loudly) and rethrows.
  void journalRecordLocked(Entry& e, JournalRecordType type,
                           std::string_view payload);

  /// Format-and-clear pendingAlerts into "name: alert" lines, keeping
  /// the lifetime counter.
  std::vector<std::string> drainAlertsLocked(Entry& e);

  /// Deliver alert lines: queued to every other subscribed session's
  /// sender, appended to `out` for the requester when it subscribed.
  void broadcastAlertsLocked(Entry& e,
                             const std::shared_ptr<ServerSession>& session,
                             const std::vector<std::string>& lines,
                             std::vector<util::Frame>& out);

  /// Commit the whole reorder window before a read so reads observe all
  /// accepted data; delivers the resulting alerts. Returns the number of
  /// chunks processed (0 = nothing buffered, no side effects).
  std::size_t flushForReadLocked(Entry& e,
                                 const std::shared_ptr<ServerSession>& session,
                                 std::vector<util::Frame>& out);

  /// Re-account an entry's bytes with the registry and enforce budgets
  /// (call without the entry lock held).
  void reaccountEntry(const std::string& name,
                      const std::shared_ptr<Entry>& entry,
                      std::size_t newBytes);

  std::vector<util::Frame> dispatch(
      const std::shared_ptr<ServerSession>& session,
      const util::Frame& request);

  std::vector<util::Frame> handleLoad(const std::shared_ptr<ServerSession>&,
                                      const std::vector<std::string>& tokens);
  std::vector<util::Frame> handleOpen(const std::shared_ptr<ServerSession>&,
                                      const std::vector<std::string>& tokens);
  std::vector<util::Frame> handleAppend(const std::shared_ptr<ServerSession>&,
                                        std::string_view payload);
  std::vector<util::Frame> handleAnalyze(const std::shared_ptr<ServerSession>&,
                                         const std::vector<std::string>&);
  std::vector<util::Frame> handleExport(const std::shared_ptr<ServerSession>&,
                                        const std::vector<std::string>&);
  std::vector<util::Frame> handleLint(const std::shared_ptr<ServerSession>&,
                                      const std::vector<std::string>&);
  std::vector<util::Frame> handleStats(const std::shared_ptr<ServerSession>&,
                                       const std::vector<std::string>&);
  std::vector<util::Frame> handleEvict(const std::vector<std::string>&);
  std::vector<util::Frame> handleSubscribe(
      const std::shared_ptr<ServerSession>&,
      const std::vector<std::string>& tokens);

  ServerOptions options_;
  std::unique_ptr<Registry> registry_;
};

}  // namespace perfvar::server

#endif  // PERFVAR_SERVER_SERVICE_HPP
