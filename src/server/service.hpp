#ifndef PERFVAR_SERVER_SERVICE_HPP
#define PERFVAR_SERVER_SERVICE_HPP

/// \file service.hpp
/// TraceService: the transport-independent brain of the analysis server.
///
/// The service keeps multiple traces resident behind the existing
/// content-addressed stage caches and answers protocol requests:
///
///   - `load` opens a trace file as an engine::AnalysisEngine entry, so
///     repeated analyze/export requests are served from its stage caches.
///     Loading an already-resident name with the same path is idempotent
///     (same Ok response) — the determinism anchor of the concurrency
///     tests.
///   - `open` + `append` maintain a LIVE trace: each Append frame carries
///     a self-contained v2 chunk image, decoded with the per-rank block
///     path (trace::appendBinaryBuffer) and fed through
///     analysis::StreamingSos so windowed SOS alerts stream back — to the
///     appending connection (deterministically, before its final Ok) and
///     to every subscribed session.
///   - Memory budgets: ServerOptions::maxResidentBytes (global) and
///     maxSessionBytes (per loading session) are enforced by LRU
///     eviction. Evicted names are tombstoned; requests referencing them
///     receive a graceful Evicted frame (not a generic error) until the
///     name is re-loaded or re-opened.
///
/// Locking: a registry mutex guards the name -> entry map, tombstones,
/// LRU clocks and byte accounting; a per-entry mutex serializes
/// computation on one trace. The two are never held simultaneously in a
/// nested fashion that could deadlock: handlers take the registry lock
/// only in short lookup/account sections, and the entry lock only between
/// them. Responses are deterministic per request (given the same resident
/// state), which is what the serial-vs-concurrent differential test
/// leans on.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "server/protocol.hpp"
#include "util/framing.hpp"

namespace perfvar::server {

/// Construction-time options of a TraceService / Server.
struct ServerOptions {
  /// Worker threads of trace decode and analysis stages (per request):
  /// 1 = inline, 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Per-engine derived-stage cache capacity (EngineOptions equivalent).
  std::size_t maxCacheEntries = 64;
  /// Global memory budget over all resident traces in bytes
  /// (trace::approxMemoryBytes accounting); 0 = unlimited. Exceeding it
  /// evicts least-recently-used entries (never the one being touched).
  std::size_t maxResidentBytes = 0;
  /// Per-session budget over the traces a session loaded; 0 = unlimited.
  std::size_t maxSessionBytes = 0;
};

/// Thread-safe frame sink of one connection. send() never throws: a
/// failed write (peer gone) deactivates the sender and every later send
/// becomes a no-op, so alert broadcasts cannot poison an append handler.
class Sender {
public:
  explicit Sender(int fd) : fd_(fd) {}

  /// Write one frame; returns false when the sender is (or just became)
  /// inactive.
  bool send(FrameType type, std::string_view payload);

  /// Stop sending (session teardown).
  void deactivate();

private:
  std::mutex mutex_;
  int fd_;
  bool active_ = true;
};

/// Per-connection session state. Created by openSession(), passed to
/// every handle() call of that connection.
struct ServerSession {
  std::uint64_t id = 0;
  std::shared_ptr<Sender> sender;
  /// Live-trace names this session subscribed to (alert delivery).
  std::set<std::string> subscriptions;
};

/// Server-wide counters (the no-argument `stats` request).
struct ServiceStats {
  std::size_t traces = 0;
  std::size_t residentBytes = 0;
  std::uint64_t evictions = 0;
};

class TraceService {
public:
  explicit TraceService(ServerOptions options = {});
  ~TraceService();

  TraceService(const TraceService&) = delete;
  TraceService& operator=(const TraceService&) = delete;

  const ServerOptions& options() const { return options_; }

  /// Register a new connection; the returned session identifies it in
  /// every later handle() call.
  std::shared_ptr<ServerSession> openSession(std::shared_ptr<Sender> sender);

  /// Unregister a connection. Its loaded traces stay resident (a server
  /// outlives its clients); its subscriptions die with it.
  void closeSession(const std::shared_ptr<ServerSession>& session);

  /// Answer one request frame: returns the ordered response frames for
  /// the requesting connection, ending in exactly one final frame.
  /// Errors — protocol violations, unknown names, corrupt chunks — come
  /// back as Error frames; handle() itself only throws on programming
  /// errors. Alert frames for OTHER subscribed sessions are delivered
  /// through their senders as a side effect.
  std::vector<util::Frame> handle(
      const std::shared_ptr<ServerSession>& session,
      const util::Frame& request);

  /// Current server-wide counters.
  ServiceStats stats() const;

private:
  struct Entry;
  class Registry;
  struct Lookup;

  /// Find a resident trace by name and bump its LRU clock; distinguishes
  /// "never existed" from "was evicted" (tombstoned).
  Lookup lookupEntry(const std::string& name);

  std::vector<util::Frame> dispatch(
      const std::shared_ptr<ServerSession>& session,
      const util::Frame& request);

  std::vector<util::Frame> handleLoad(const std::shared_ptr<ServerSession>&,
                                      const std::vector<std::string>& tokens);
  std::vector<util::Frame> handleOpen(const std::shared_ptr<ServerSession>&,
                                      const std::vector<std::string>& tokens);
  std::vector<util::Frame> handleAppend(const std::shared_ptr<ServerSession>&,
                                        std::string_view payload);
  std::vector<util::Frame> handleAnalyze(const std::vector<std::string>&);
  std::vector<util::Frame> handleExport(const std::vector<std::string>&);
  std::vector<util::Frame> handleLint(const std::vector<std::string>&);
  std::vector<util::Frame> handleStats(const std::vector<std::string>&);
  std::vector<util::Frame> handleEvict(const std::vector<std::string>&);
  std::vector<util::Frame> handleSubscribe(
      const std::shared_ptr<ServerSession>&,
      const std::vector<std::string>& tokens);

  ServerOptions options_;
  std::unique_ptr<Registry> registry_;
};

}  // namespace perfvar::server

#endif  // PERFVAR_SERVER_SERVICE_HPP
