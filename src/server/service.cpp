#include "server/service.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/streaming.hpp"
#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "trace/binary_io.hpp"
#include "trace/stats.hpp"
#include "util/format.hpp"

namespace perfvar::server {

// ---- Sender ---------------------------------------------------------------

bool Sender::send(FrameType type, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) {
    return false;
  }
  try {
    util::writeFrame(fd_, static_cast<std::uint8_t>(type), payload);
    return true;
  } catch (const Error&) {
    // Peer gone (EPIPE, reset): one broadcast must never poison the
    // handler that triggered it. The session loop notices on its own.
    active_ = false;
    return false;
  }
}

void Sender::deactivate() {
  std::lock_guard<std::mutex> lock(mutex_);
  active_ = false;
}

// ---- resident-trace registry ----------------------------------------------

/// One resident trace: either a file-backed engine (stage caches) or a
/// live streaming trace.
struct TraceService::Entry {
  enum class Kind { Engine, Live };

  std::mutex mutex;  ///< serializes computation on this trace

  Kind kind = Kind::Engine;
  std::string name;

  // Engine entries.
  std::string path;
  std::unique_ptr<engine::AnalysisEngine> engine;
  std::string loadMessage;  ///< the idempotent Ok payload of `load`

  // Live entries.
  trace::Trace live;
  std::string segmentFunctionName;
  analysis::StreamingOptions streamOptions;
  std::unique_ptr<analysis::StreamingSos> sos;
  std::vector<analysis::StreamingAlert> pendingAlerts;
  std::string openMessage;  ///< the idempotent Ok payload of `open`
  std::uint64_t appendsDone = 0;
  std::uint64_t alertsTotal = 0;
  std::vector<std::weak_ptr<ServerSession>> subscribers;

  // Accounting (guarded by the REGISTRY mutex, not by `mutex`).
  std::size_t bytes = 0;
  std::uint64_t lastUse = 0;
  std::uint64_t ownerSession = 0;
};

/// Name -> entry map plus eviction state. All members are guarded by
/// `mutex`; Entry contents (beyond the accounting block) are not.
class TraceService::Registry {
public:
  mutable std::mutex mutex;
  std::map<std::string, std::shared_ptr<Entry>> entries;
  /// Names removed by budget or explicit eviction: referencing one gets a
  /// graceful Evicted response until the name is re-loaded / re-opened.
  std::set<std::string> tombstones;
  std::uint64_t useClock = 0;
  std::uint64_t evictions = 0;
  std::size_t residentBytes = 0;
  std::map<std::uint64_t, std::size_t> sessionBytes;
  std::uint64_t nextSessionId = 1;

  /// Drop one entry (caller holds `mutex`).
  void evictLocked(const std::map<std::string,
                                  std::shared_ptr<Entry>>::iterator it) {
    const std::shared_ptr<Entry>& e = it->second;
    residentBytes -= std::min(residentBytes, e->bytes);
    auto sess = sessionBytes.find(e->ownerSession);
    if (sess != sessionBytes.end()) {
      sess->second -= std::min(sess->second, e->bytes);
    }
    tombstones.insert(it->first);
    ++evictions;
    entries.erase(it);
  }

  /// LRU eviction until the global and per-session budgets hold again;
  /// `keep` (the entry just touched) is never evicted. Caller holds
  /// `mutex`.
  void enforceBudgetsLocked(const ServerOptions& options, const Entry* keep,
                            std::uint64_t sessionId) {
    const auto lruVictim = [&](bool sessionOnly) {
      auto victim = entries.end();
      for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (it->second.get() == keep) {
          continue;
        }
        if (sessionOnly && it->second->ownerSession != sessionId) {
          continue;
        }
        if (victim == entries.end() ||
            it->second->lastUse < victim->second->lastUse) {
          victim = it;
        }
      }
      return victim;
    };
    while (options.maxResidentBytes > 0 &&
           residentBytes > options.maxResidentBytes) {
      const auto victim = lruVictim(/*sessionOnly=*/false);
      if (victim == entries.end()) {
        break;  // only `keep` is left; it may exceed the budget alone
      }
      evictLocked(victim);
    }
    while (options.maxSessionBytes > 0 &&
           sessionBytes[sessionId] > options.maxSessionBytes) {
      const auto victim = lruVictim(/*sessionOnly=*/true);
      if (victim == entries.end()) {
        break;
      }
      evictLocked(victim);
    }
  }
};

namespace {

util::Frame frame(FrameType type, std::string payload) {
  util::Frame f;
  f.type = static_cast<std::uint8_t>(type);
  f.payload = std::move(payload);
  return f;
}

std::vector<util::Frame> one(FrameType type, std::string payload) {
  std::vector<util::Frame> out;
  out.push_back(frame(type, std::move(payload)));
  return out;
}

[[noreturn]] void throwUnknownTrace(const std::string& name) {
  throw Error("unknown trace '" + name + "' (load or open it first)",
              ErrorContext::at(ErrorCode::Generic));
}

[[noreturn]] void throwUsage(const std::string& message) {
  throw Error(message, ErrorContext::at(ErrorCode::MalformedEvent));
}

}  // namespace

// ---- TraceService ---------------------------------------------------------

TraceService::TraceService(ServerOptions options)
    : options_(options), registry_(std::make_unique<Registry>()) {}

TraceService::~TraceService() = default;

std::shared_ptr<ServerSession> TraceService::openSession(
    std::shared_ptr<Sender> sender) {
  auto session = std::make_shared<ServerSession>();
  session->sender = std::move(sender);
  std::lock_guard<std::mutex> lock(registry_->mutex);
  session->id = registry_->nextSessionId++;
  registry_->sessionBytes[session->id] = 0;
  return session;
}

void TraceService::closeSession(
    const std::shared_ptr<ServerSession>& session) {
  if (!session) {
    return;
  }
  if (session->sender) {
    session->sender->deactivate();
  }
  std::lock_guard<std::mutex> lock(registry_->mutex);
  registry_->sessionBytes.erase(session->id);
  // Resident traces deliberately outlive the session that loaded them;
  // subscriptions die with the session (the weak_ptrs expire).
}

ServiceStats TraceService::stats() const {
  std::lock_guard<std::mutex> lock(registry_->mutex);
  ServiceStats s;
  s.traces = registry_->entries.size();
  s.residentBytes = registry_->residentBytes;
  s.evictions = registry_->evictions;
  return s;
}

std::vector<util::Frame> TraceService::handle(
    const std::shared_ptr<ServerSession>& session,
    const util::Frame& request) {
  try {
    return dispatch(session, request);
  } catch (const Error& e) {
    return one(FrameType::Error, encodeErrorPayload(e.code(), e.what()));
  } catch (const std::exception& e) {
    return one(FrameType::Error,
               encodeErrorPayload(ErrorCode::Generic, e.what()));
  }
}

std::vector<util::Frame> TraceService::dispatch(
    const std::shared_ptr<ServerSession>& session,
    const util::Frame& request) {
  const auto type = static_cast<FrameType>(request.type);
  switch (type) {
    case FrameType::Load:
      return handleLoad(session, splitTokens(request.payload));
    case FrameType::Open:
      return handleOpen(session, splitTokens(request.payload));
    case FrameType::Append:
      return handleAppend(session, request.payload);
    case FrameType::Analyze:
      return handleAnalyze(splitTokens(request.payload));
    case FrameType::Export:
      return handleExport(splitTokens(request.payload));
    case FrameType::Lint:
      return handleLint(splitTokens(request.payload));
    case FrameType::Stats:
      return handleStats(splitTokens(request.payload));
    case FrameType::Evict:
      return handleEvict(splitTokens(request.payload));
    case FrameType::Subscribe:
      return handleSubscribe(session, splitTokens(request.payload));
    case FrameType::Hello:
      throwUsage("unexpected hello frame mid-session");
    default:
      throwUsage("unknown request frame type " +
                 std::to_string(request.type));
  }
}

std::vector<util::Frame> TraceService::handleLoad(
    const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    throwUsage("load expects: <name> <path>");
  }
  const std::string& name = tokens[0];
  const std::string& path = tokens[1];

  std::shared_ptr<Entry> entry;
  bool created = false;
  {
    std::lock_guard<std::mutex> lock(registry_->mutex);
    const auto it = registry_->entries.find(name);
    if (it != registry_->entries.end()) {
      entry = it->second;
      // Idempotent reload of the same file: the anchor that makes
      // concurrent `load` transcripts byte-identical to serial ones.
      if (entry->kind != Entry::Kind::Engine || entry->path != path) {
        throw Error("trace name '" + name +
                        "' is already resident with a different source",
                    ErrorContext::at(ErrorCode::Generic));
      }
      entry->lastUse = ++registry_->useClock;
    } else {
      registry_->tombstones.erase(name);
      entry = std::make_shared<Entry>();
      entry->kind = Entry::Kind::Engine;
      entry->name = name;
      entry->path = path;
      entry->ownerSession = session->id;
      entry->lastUse = ++registry_->useClock;
      registry_->entries.emplace(name, entry);
      created = true;
    }
  }

  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (!entry->engine) {
      try {
        trace::BinaryReadOptions ro;
        ro.threads = options_.threads;
        trace::Trace tr = trace::loadBinaryFile(path, ro);
        engine::EngineOptions eo;
        eo.threads = options_.threads;
        eo.maxCacheEntries = options_.maxCacheEntries;
        auto eng = std::make_unique<engine::AnalysisEngine>(std::move(tr),
                                                            eo);
        std::ostringstream msg;
        msg << "loaded " << name << ": "
            << eng->trace().processCount() << " processes, "
            << eng->trace().eventCount() << " events";
        entry->loadMessage = msg.str();
        entry->engine = std::move(eng);
      } catch (...) {
        // Roll the registration back so the name is usable again; a
        // concurrent waiter holding this shared_ptr retries the load
        // itself and reports the same error.
        if (created) {
          std::lock_guard<std::mutex> lock2(registry_->mutex);
          const auto it = registry_->entries.find(name);
          if (it != registry_->entries.end() && it->second == entry) {
            registry_->entries.erase(it);
          }
        }
        throw;
      }
      const std::size_t bytes =
          trace::approxMemoryBytes(entry->engine->trace());
      std::lock_guard<std::mutex> lock2(registry_->mutex);
      const auto it = registry_->entries.find(name);
      if (it != registry_->entries.end() && it->second == entry) {
        registry_->residentBytes += bytes;
        registry_->sessionBytes[entry->ownerSession] += bytes;
        entry->bytes = bytes;
        registry_->enforceBudgetsLocked(options_, entry.get(), session->id);
      }
    }
    return one(FrameType::Ok, entry->loadMessage);
  }
}

std::vector<util::Frame> TraceService::handleOpen(
    const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) {
    throwUsage("open expects: <name> <segmentFunction> [threshold Z] "
               "[warmup N]");
  }
  const std::string& name = tokens[0];
  const std::string& fn = tokens[1];
  analysis::StreamingOptions streamOptions;
  for (std::size_t i = 2; i < tokens.size(); i += 2) {
    if (i + 1 >= tokens.size()) {
      throwUsage("open option '" + tokens[i] + "' needs a value");
    }
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    if (key == "threshold") {
      try {
        std::size_t pos = 0;
        streamOptions.alertThreshold = std::stod(value, &pos);
        if (pos != value.size()) {
          throwUsage("open threshold expects a number, got '" + value + "'");
        }
      } catch (const std::exception&) {
        throwUsage("open threshold expects a number, got '" + value + "'");
      }
    } else if (key == "warmup") {
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        throwUsage("open warmup expects a non-negative integer, got '" +
                   value + "'");
      }
      streamOptions.warmupSegments =
          static_cast<std::size_t>(std::stoul(value));
    } else {
      throwUsage("unknown open option '" + key + "'");
    }
  }

  std::lock_guard<std::mutex> lock(registry_->mutex);
  const auto it = registry_->entries.find(name);
  if (it != registry_->entries.end()) {
    const std::shared_ptr<Entry>& entry = it->second;
    const bool sameSpec =
        entry->kind == Entry::Kind::Live &&
        entry->segmentFunctionName == fn &&
        entry->streamOptions.alertThreshold ==
            streamOptions.alertThreshold &&
        entry->streamOptions.warmupSegments == streamOptions.warmupSegments;
    if (!sameSpec) {
      throw Error("trace name '" + name +
                      "' is already resident with a different source",
                  ErrorContext::at(ErrorCode::Generic));
    }
    entry->lastUse = ++registry_->useClock;
    return one(FrameType::Ok, entry->openMessage);
  }
  registry_->tombstones.erase(name);
  auto entry = std::make_shared<Entry>();
  entry->kind = Entry::Kind::Live;
  entry->name = name;
  entry->segmentFunctionName = fn;
  entry->streamOptions = streamOptions;
  entry->ownerSession = session->id;
  entry->lastUse = ++registry_->useClock;
  std::ostringstream msg;
  msg << "opened " << name << ": segment " << fn << ", threshold "
      << fmt::fixed(streamOptions.alertThreshold, 2) << ", warmup "
      << streamOptions.warmupSegments;
  entry->openMessage = msg.str();
  registry_->entries.emplace(name, entry);
  return one(FrameType::Ok, entry->openMessage);
}

/// Registry lookup outcome shared by the name-referencing handlers.
struct TraceService::Lookup {
  std::shared_ptr<Entry> entry;
  bool evicted = false;
};

TraceService::Lookup TraceService::lookupEntry(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_->mutex);
  Lookup out;
  const auto it = registry_->entries.find(name);
  if (it != registry_->entries.end()) {
    out.entry = it->second;
    out.entry->lastUse = ++registry_->useClock;
  } else if (registry_->tombstones.count(name) > 0) {
    out.evicted = true;
  }
  return out;
}

std::vector<util::Frame> TraceService::handleAppend(
    const std::shared_ptr<ServerSession>& session,
    std::string_view payload) {
  const AppendPayload append = decodeAppendPayload(payload);
  const Lookup found = lookupEntry(append.name);
  if (found.evicted) {
    return one(FrameType::Evicted, append.name);
  }
  if (!found.entry) {
    throwUnknownTrace(append.name);
  }
  const std::shared_ptr<Entry>& entry = found.entry;
  if (entry->kind != Entry::Kind::Live) {
    throw Error("trace '" + append.name +
                    "' is file-backed; append requires a live trace "
                    "(use open)",
                ErrorContext::at(ErrorCode::Generic));
  }

  std::vector<util::Frame> out;
  std::string okMessage;
  std::vector<std::string> alertLines;
  std::size_t newBytes = 0;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    // Sizes before the append: the chunk's events land at each stream's
    // tail, which is what the streaming analyzer must consume.
    std::vector<std::size_t> before(entry->live.processCount());
    for (std::size_t p = 0; p < before.size(); ++p) {
      before[p] = entry->live.processes[p].events.size();
    }

    trace::BinaryReadOptions ro;
    ro.threads = options_.threads;
    const trace::AppendStats stats = trace::appendBinaryBuffer(
        entry->live, append.image.data(), append.image.size(), ro);

    if (!entry->sos && entry->live.processCount() > 0) {
      // Adopt-on-first-append just defined the trace; bring the
      // streaming analyzer up against its definitions.
      const auto fn = entry->live.functions.find(entry->segmentFunctionName);
      if (!fn.has_value()) {
        entry->live = trace::Trace{};  // back to pristine, name reusable
        throw Error("segment function '" + entry->segmentFunctionName +
                        "' is not defined in the appended chunk",
                    ErrorContext::at(ErrorCode::MalformedEvent));
      }
      entry->sos = std::make_unique<analysis::StreamingSos>(
          entry->live, *fn, entry->streamOptions);
      Entry* raw = entry.get();
      entry->sos->setAlertCallback(
          [raw](const analysis::StreamingAlert& alert) {
            raw->pendingAlerts.push_back(alert);
          });
      before.assign(entry->live.processCount(), 0);
    }

    if (entry->sos) {
      // Feed exactly the appended tail, interleaved in (time, process)
      // order — identical to what one replay() of the final trace visits
      // for this time window. (A zero-process chunk leaves the analyzer
      // unconstructed; there is nothing to feed either.)
      trace::Trace tail;
      tail.resolution = entry->live.resolution;
      tail.processes.resize(entry->live.processCount());
      for (std::size_t p = 0; p < entry->live.processCount(); ++p) {
        const auto& events = entry->live.processes[p].events;
        tail.processes[p].events.assign(events.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                before[p]),
                                        events.end());
      }
      entry->sos->feed(tail);
    }

    for (const analysis::StreamingAlert& alert : entry->pendingAlerts) {
      alertLines.push_back(append.name + ": " +
                           analysis::formatStreamingAlert(entry->live,
                                                          alert));
    }
    entry->alertsTotal += entry->pendingAlerts.size();
    entry->pendingAlerts.clear();
    ++entry->appendsDone;

    std::ostringstream msg;
    msg << "appended " << append.name << ": " << stats.eventsAppended
        << " events, "
        << (entry->sos ? entry->sos->segmentsCompleted() : 0)
        << " segments, " << alertLines.size() << " alerts";
    okMessage = msg.str();
    newBytes = trace::approxMemoryBytes(entry->live);

    // Broadcast to subscribed sessions while holding the entry lock, so
    // alerts of successive appends arrive in order. The requester's own
    // alerts go into the response sequence instead (deterministically
    // before the final Ok).
    auto& subs = entry->subscribers;
    for (auto it = subs.begin(); it != subs.end();) {
      const std::shared_ptr<ServerSession> sub = it->lock();
      if (!sub) {
        it = subs.erase(it);
        continue;
      }
      if (sub->id != session->id) {
        for (const std::string& line : alertLines) {
          sub->sender->send(FrameType::Alert, line);
        }
      }
      ++it;
    }
    if (session->subscriptions.count(append.name) > 0) {
      for (const std::string& line : alertLines) {
        out.push_back(frame(FrameType::Alert, line));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(registry_->mutex);
    const auto it = registry_->entries.find(append.name);
    if (it != registry_->entries.end() && it->second == entry) {
      registry_->residentBytes += newBytes;
      registry_->residentBytes -= std::min(registry_->residentBytes,
                                           entry->bytes);
      auto sess = registry_->sessionBytes.find(entry->ownerSession);
      if (sess != registry_->sessionBytes.end()) {
        sess->second += newBytes;
        sess->second -= std::min(sess->second, entry->bytes);
      }
      entry->bytes = newBytes;
      registry_->enforceBudgetsLocked(options_, entry.get(),
                                      entry->ownerSession);
    }
  }
  out.push_back(frame(FrameType::Ok, okMessage));
  return out;
}

std::vector<util::Frame> TraceService::handleAnalyze(
    const std::vector<std::string>& tokens) {
  if (tokens.empty()) {
    throwUsage("analyze expects: <name> [candidate K] [threshold Z] "
               "[max-hotspots N]");
  }
  const Lookup found = lookupEntry(tokens[0]);
  if (found.evicted) {
    return one(FrameType::Evicted, tokens[0]);
  }
  if (!found.entry) {
    throwUnknownTrace(tokens[0]);
  }
  analysis::PipelineOptions opts = parsePipelineOptions(tokens, 1);
  const std::shared_ptr<Entry>& entry = found.entry;
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->kind == Entry::Kind::Engine) {
    return one(FrameType::Data, entry->engine->formatReport(opts));
  }
  PERFVAR_REQUIRE(entry->live.processCount() > 0,
                  "live trace '" + tokens[0] + "' has no appended data yet");
  opts.threads = options_.threads;
  const analysis::AnalysisResult result =
      analysis::analyzeTrace(entry->live, opts);
  return one(FrameType::Data, analysis::formatAnalysis(entry->live, result));
}

std::vector<util::Frame> TraceService::handleExport(
    const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) {
    throwUsage("export expects: <name> <text|json|csv|csv-iterations|"
               "csv-hotspots> [analyze options]");
  }
  const Lookup found = lookupEntry(tokens[0]);
  if (found.evicted) {
    return one(FrameType::Evicted, tokens[0]);
  }
  if (!found.entry) {
    throwUnknownTrace(tokens[0]);
  }
  const analysis::ExportFormat format = parseExportFormat(tokens[1]);
  analysis::PipelineOptions opts = parsePipelineOptions(tokens, 2);
  const std::shared_ptr<Entry>& entry = found.entry;
  std::lock_guard<std::mutex> lock(entry->mutex);
  std::ostringstream os;
  if (entry->kind == Entry::Kind::Engine) {
    entry->engine->exportReport(format, os, opts);
  } else {
    PERFVAR_REQUIRE(entry->live.processCount() > 0,
                    "live trace '" + tokens[0] +
                        "' has no appended data yet");
    opts.threads = options_.threads;
    const analysis::AnalysisResult result =
        analysis::analyzeTrace(entry->live, opts);
    analysis::exportReport(entry->live, result, format, os);
  }
  return one(FrameType::Data, os.str());
}

std::vector<util::Frame> TraceService::handleLint(
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) {
    throwUsage("lint expects: <name>");
  }
  const Lookup found = lookupEntry(tokens[0]);
  if (found.evicted) {
    return one(FrameType::Evicted, tokens[0]);
  }
  if (!found.entry) {
    throwUnknownTrace(tokens[0]);
  }
  const std::shared_ptr<Entry>& entry = found.entry;
  std::lock_guard<std::mutex> lock(entry->mutex);
  std::ostringstream os;
  if (entry->kind == Entry::Kind::Engine) {
    lint::exportLintReport(*entry->engine->lintReport(),
                           analysis::ExportFormat::Text, os);
  } else {
    PERFVAR_REQUIRE(entry->live.processCount() > 0,
                    "live trace '" + tokens[0] +
                        "' has no appended data yet");
    lint::LintOptions lo;
    lo.threads = options_.threads;
    lint::exportLintReport(lint::lintTrace(entry->live, lo),
                           analysis::ExportFormat::Text, os);
  }
  return one(FrameType::Data, os.str());
}

std::vector<util::Frame> TraceService::handleStats(
    const std::vector<std::string>& tokens) {
  if (tokens.empty()) {
    const ServiceStats s = stats();
    std::ostringstream os;
    os << "traces: " << s.traces << '\n'
       << "resident: " << s.residentBytes << " bytes\n"
       << "evictions: " << s.evictions << '\n';
    return one(FrameType::Data, os.str());
  }
  if (tokens.size() != 1) {
    throwUsage("stats expects at most one <name>");
  }
  const Lookup found = lookupEntry(tokens[0]);
  if (found.evicted) {
    return one(FrameType::Evicted, tokens[0]);
  }
  if (!found.entry) {
    throwUnknownTrace(tokens[0]);
  }
  const std::shared_ptr<Entry>& entry = found.entry;
  std::lock_guard<std::mutex> lock(entry->mutex);
  std::ostringstream os;
  os << "trace: " << entry->name << '\n';
  if (entry->kind == Entry::Kind::Engine) {
    os << "kind: engine\n"
       << "bytes: " << entry->bytes << '\n'
       << engine::formatCacheStats(entry->engine->cacheStats()) << '\n';
  } else {
    os << "kind: live\n"
       << "bytes: " << entry->bytes << '\n'
       << "appends: " << entry->appendsDone << '\n'
       << "segments: "
       << (entry->sos ? entry->sos->segmentsCompleted() : 0) << '\n'
       << "alerts: " << entry->alertsTotal << '\n';
  }
  return one(FrameType::Data, os.str());
}

std::vector<util::Frame> TraceService::handleEvict(
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) {
    throwUsage("evict expects: <name>");
  }
  std::lock_guard<std::mutex> lock(registry_->mutex);
  const auto it = registry_->entries.find(tokens[0]);
  if (it == registry_->entries.end()) {
    if (registry_->tombstones.count(tokens[0]) > 0) {
      return one(FrameType::Evicted, tokens[0]);
    }
    throwUnknownTrace(tokens[0]);
  }
  registry_->evictLocked(it);
  return one(FrameType::Ok, "evicted " + tokens[0]);
}

std::vector<util::Frame> TraceService::handleSubscribe(
    const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) {
    throwUsage("subscribe expects: <name>");
  }
  const Lookup found = lookupEntry(tokens[0]);
  if (found.evicted) {
    return one(FrameType::Evicted, tokens[0]);
  }
  if (!found.entry) {
    throwUnknownTrace(tokens[0]);
  }
  const std::shared_ptr<Entry>& entry = found.entry;
  if (entry->kind != Entry::Kind::Live) {
    throw Error("trace '" + tokens[0] +
                    "' is file-backed; only live traces emit alerts",
                ErrorContext::at(ErrorCode::Generic));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  entry->subscribers.push_back(session);
  session->subscriptions.insert(tokens[0]);
  return one(FrameType::Ok, "subscribed " + tokens[0]);
}

}  // namespace perfvar::server
