#include "server/service.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/streaming.hpp"
#include "engine/engine.hpp"
#include "lint/lint.hpp"
#include "trace/binary_io.hpp"
#include "trace/stats.hpp"
#include "util/format.hpp"

namespace perfvar::server {

// ---- Sender ---------------------------------------------------------------

/// Flush outbuf_ to the socket. waitForDrain = false is the nonblocking
/// alert pump: write what the kernel accepts and leave the rest queued.
/// waitForDrain = true (response frames) polls for writability up to the
/// per-send timeout between partial writes; a peer that stays unwritable
/// that long is treated as dead and the sender deactivates — exactly the
/// semantics a closed peer already had, extended to stalled-but-alive
/// ones.
bool Sender::flushLocked(bool waitForDrain) {
  while (active_ && !outbuf_.empty()) {
    std::size_t written = 0;
    if (!util::sendNonBlocking(fd_, outbuf_.data(), outbuf_.size(),
                               written)) {
      // Peer gone (EPIPE, reset): one broadcast must never poison the
      // handler that triggered it. The session loop notices on its own.
      active_ = false;
      outbuf_.clear();
      return false;
    }
    if (written > 0) {
      outbuf_.erase(0, written);
      continue;
    }
    if (!waitForDrain) {
      return true;  // kernel buffer full; bytes stay queued
    }
    bool writable = false;
    try {
      writable = util::pollWritable(
          fd_, options_.sendTimeoutMs > 0 ? options_.sendTimeoutMs : -1);
    } catch (const Error&) {
      writable = false;
    }
    if (!writable) {
      active_ = false;
      outbuf_.clear();
      return false;
    }
  }
  return active_;
}

void Sender::queueDropMarkerLocked() {
  outbuf_ += util::encodeFrame(
      static_cast<std::uint8_t>(FrameType::Alert),
      "dropped=" + std::to_string(droppedPending_));
  droppedPending_ = 0;
}

bool Sender::send(FrameType type, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) {
    return false;
  }
  if (droppedPending_ > 0) {
    queueDropMarkerLocked();
  }
  outbuf_ += util::encodeFrame(static_cast<std::uint8_t>(type), payload);
  return flushLocked(/*waitForDrain=*/true);
}

bool Sender::enqueueAlert(std::string_view line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) {
    return false;
  }
  std::string bytes =
      util::encodeFrame(static_cast<std::uint8_t>(FrameType::Alert), line);
  if (outbuf_.size() + bytes.size() > options_.alertQueueBytes &&
      !outbuf_.empty()) {
    // Slow consumer: drop this alert, remember how many were coalesced
    // away. The marker frame is queued once the backlog clears.
    ++droppedPending_;
    ++droppedTotal_;
    flushLocked(/*waitForDrain=*/false);
    return active_;
  }
  if (droppedPending_ > 0) {
    queueDropMarkerLocked();
  }
  outbuf_ += bytes;
  return flushLocked(/*waitForDrain=*/false);
}

bool Sender::pumpAlerts() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!active_) {
    return false;
  }
  const bool ok = flushLocked(/*waitForDrain=*/false);
  if (ok && droppedPending_ > 0 &&
      outbuf_.size() < options_.alertQueueBytes) {
    queueDropMarkerLocked();
    return flushLocked(/*waitForDrain=*/false);
  }
  return ok;
}

void Sender::deactivate() {
  std::lock_guard<std::mutex> lock(mutex_);
  active_ = false;
  outbuf_.clear();
}

bool Sender::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

std::uint64_t Sender::alertsDropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return droppedTotal_;
}

// ---- resident-trace registry ----------------------------------------------

/// One resident trace: either a file-backed engine (stage caches) or a
/// live streaming trace.
struct TraceService::Entry {
  enum class Kind { Engine, Live };

  std::mutex mutex;  ///< serializes computation on this trace

  Kind kind = Kind::Engine;
  std::string name;

  // Engine entries.
  std::string path;
  std::unique_ptr<engine::AnalysisEngine> engine;
  std::string loadMessage;  ///< the idempotent Ok payload of `load`

  // Live entries.
  trace::Trace live;
  std::string segmentFunctionName;
  analysis::StreamingOptions streamOptions;
  std::unique_ptr<analysis::StreamingSos> sos;
  std::vector<analysis::StreamingAlert> pendingAlerts;
  std::string openMessage;  ///< the idempotent Ok payload of `open`
  std::uint64_t appendsDone = 0;
  std::uint64_t alertsTotal = 0;
  std::vector<std::weak_ptr<ServerSession>> subscribers;

  /// One out-of-order chunk held in the reorder window.
  struct PendingChunk {
    std::string image;           ///< raw v2 chunk image (wire bytes)
    trace::Timestamp start = 0;  ///< earliest event time in the chunk
    std::uint64_t seq = 0;       ///< arrival order (tiebreak for equal starts)
  };
  /// Reorder window, sorted by (start, seq). Committed earliest-first on
  /// overflow and in full before any read.
  std::vector<PendingChunk> pending;
  std::size_t pendingBytes = 0;
  std::uint64_t nextChunkSeq = 0;
  std::uint64_t chunksDropped = 0;  ///< window chunks the trace rejected

  /// Write-ahead journal of this live trace; null when journaling is off
  /// or permanently disabled after a journal I/O failure.
  std::unique_ptr<JournalWriter> journal;

  // Accounting (guarded by the REGISTRY mutex, not by `mutex`).
  std::size_t bytes = 0;
  std::uint64_t lastUse = 0;
  std::uint64_t ownerSession = 0;
};

/// Name -> entry map plus eviction state. All members are guarded by
/// `mutex`; Entry contents (beyond the accounting block) are not.
class TraceService::Registry {
public:
  /// On-disk remains of a spilled (rehydratable) entry.
  struct SpillInfo {
    Entry::Kind kind = Entry::Kind::Engine;
    std::string source;  ///< engine: trace file path; live: journal path
    std::uint64_t ownerSession = 0;
  };

  mutable std::mutex mutex;
  std::map<std::string, std::shared_ptr<Entry>> entries;
  /// Names removed by budget or explicit eviction: referencing one gets a
  /// graceful Evicted response until the name is re-loaded / re-opened.
  std::set<std::string> tombstones;
  /// Names budget-evicted with a recoverable source: referencing one
  /// faults it back in (rehydration). Disjoint from tombstones.
  std::map<std::string, SpillInfo> spilled;
  std::uint64_t useClock = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rehydrations = 0;
  std::size_t residentBytes = 0;
  std::map<std::uint64_t, std::size_t> sessionBytes;
  std::uint64_t nextSessionId = 1;

  /// Drop one entry (caller holds `mutex`). With `spill` set, an entry
  /// whose state survives on disk — an engine's source file or a live
  /// entry's journal — is parked in `spilled` instead of tombstoned, so
  /// the next reference rehydrates it. (Reading e->journal here is safe:
  /// the pointer is set before the entry is published into `entries` and
  /// never reassigned while resident.)
  void evictLocked(const std::map<std::string,
                                  std::shared_ptr<Entry>>::iterator it,
                   bool spill) {
    const std::shared_ptr<Entry>& e = it->second;
    residentBytes -= std::min(residentBytes, e->bytes);
    auto sess = sessionBytes.find(e->ownerSession);
    if (sess != sessionBytes.end()) {
      sess->second -= std::min(sess->second, e->bytes);
    }
    std::string source;
    if (spill) {
      if (e->kind == Entry::Kind::Engine) {
        source = e->path;
      } else if (e->journal) {
        source = e->journal->path();
      }
    }
    if (!source.empty()) {
      spilled[it->first] = SpillInfo{e->kind, source, e->ownerSession};
    } else {
      tombstones.insert(it->first);
    }
    ++evictions;
    entries.erase(it);
  }

  /// LRU eviction until the global and per-session budgets hold again;
  /// `keep` (the entry just touched) is never evicted. Caller holds
  /// `mutex`.
  void enforceBudgetsLocked(const ServerOptions& options, const Entry* keep,
                            std::uint64_t sessionId) {
    const auto lruVictim = [&](bool sessionOnly) {
      auto victim = entries.end();
      for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (it->second.get() == keep) {
          continue;
        }
        if (sessionOnly && it->second->ownerSession != sessionId) {
          continue;
        }
        if (victim == entries.end() ||
            it->second->lastUse < victim->second->lastUse) {
          victim = it;
        }
      }
      return victim;
    };
    while (options.maxResidentBytes > 0 &&
           residentBytes > options.maxResidentBytes) {
      const auto victim = lruVictim(/*sessionOnly=*/false);
      if (victim == entries.end()) {
        break;  // only `keep` is left; it may exceed the budget alone
      }
      evictLocked(victim, options.rehydrate);
    }
    while (options.maxSessionBytes > 0 &&
           sessionBytes[sessionId] > options.maxSessionBytes) {
      const auto victim = lruVictim(/*sessionOnly=*/true);
      if (victim == entries.end()) {
        break;
      }
      evictLocked(victim, options.rehydrate);
    }
  }
};

namespace {

util::Frame frame(FrameType type, std::string payload) {
  util::Frame f;
  f.type = static_cast<std::uint8_t>(type);
  f.payload = std::move(payload);
  return f;
}

std::vector<util::Frame> one(FrameType type, std::string payload) {
  std::vector<util::Frame> out;
  out.push_back(frame(type, std::move(payload)));
  return out;
}

[[noreturn]] void throwUnknownTrace(const std::string& name) {
  throw Error("unknown trace '" + name + "' (load or open it first)",
              ErrorContext::at(ErrorCode::Generic));
}

[[noreturn]] void throwUsage(const std::string& message) {
  throw Error(message, ErrorContext::at(ErrorCode::MalformedEvent));
}

std::string formatOpenMessage(const std::string& name, const std::string& fn,
                              const analysis::StreamingOptions& so) {
  std::ostringstream msg;
  msg << "opened " << name << ": segment " << fn << ", threshold "
      << fmt::fixed(so.alertThreshold, 2) << ", warmup "
      << so.warmupSegments;
  return msg.str();
}

}  // namespace

// ---- TraceService ---------------------------------------------------------

TraceService::TraceService(ServerOptions options)
    : options_(std::move(options)), registry_(std::make_unique<Registry>()) {
  if (options_.recover && !options_.journalDir.empty()) {
    recoverJournals();
  }
}

TraceService::~TraceService() = default;

std::shared_ptr<ServerSession> TraceService::openSession(
    std::shared_ptr<Sender> sender) {
  auto session = std::make_shared<ServerSession>();
  session->sender = std::move(sender);
  std::lock_guard<std::mutex> lock(registry_->mutex);
  session->id = registry_->nextSessionId++;
  registry_->sessionBytes[session->id] = 0;
  return session;
}

void TraceService::closeSession(
    const std::shared_ptr<ServerSession>& session) {
  if (!session) {
    return;
  }
  if (session->sender) {
    session->sender->deactivate();
  }
  std::lock_guard<std::mutex> lock(registry_->mutex);
  registry_->sessionBytes.erase(session->id);
  // Resident traces deliberately outlive the session that loaded them;
  // subscriptions die with the session (the weak_ptrs expire).
}

ServiceStats TraceService::stats() const {
  std::lock_guard<std::mutex> lock(registry_->mutex);
  ServiceStats s;
  s.traces = registry_->entries.size();
  s.residentBytes = registry_->residentBytes;
  s.evictions = registry_->evictions;
  s.spilled = registry_->spilled.size();
  s.rehydrations = registry_->rehydrations;
  return s;
}

void TraceService::syncJournals() {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(registry_->mutex);
    for (const auto& [name, entry] : registry_->entries) {
      entries.push_back(entry);
    }
  }
  for (const std::shared_ptr<Entry>& entry : entries) {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->journal) {
      try {
        entry->journal->sync();
      } catch (const Error&) {
        // Drain is best effort; the per-record fsync policy is the
        // guarantee knob.
      }
    }
  }
}

std::vector<util::Frame> TraceService::handle(
    const std::shared_ptr<ServerSession>& session,
    const util::Frame& request) {
  try {
    return dispatch(session, request);
  } catch (const Error& e) {
    return one(FrameType::Error, encodeErrorPayload(e.code(), e.what()));
  } catch (const std::exception& e) {
    return one(FrameType::Error,
               encodeErrorPayload(ErrorCode::Generic, e.what()));
  }
}

std::vector<util::Frame> TraceService::dispatch(
    const std::shared_ptr<ServerSession>& session,
    const util::Frame& request) {
  const auto type = static_cast<FrameType>(request.type);
  switch (type) {
    case FrameType::Load:
      return handleLoad(session, splitTokens(request.payload));
    case FrameType::Open:
      return handleOpen(session, splitTokens(request.payload));
    case FrameType::Append:
      return handleAppend(session, request.payload);
    case FrameType::Analyze:
      return handleAnalyze(session, splitTokens(request.payload));
    case FrameType::Export:
      return handleExport(session, splitTokens(request.payload));
    case FrameType::Lint:
      return handleLint(session, splitTokens(request.payload));
    case FrameType::Stats:
      return handleStats(session, splitTokens(request.payload));
    case FrameType::Evict:
      return handleEvict(splitTokens(request.payload));
    case FrameType::Subscribe:
      return handleSubscribe(session, splitTokens(request.payload));
    case FrameType::Hello:
      throwUsage("unexpected hello frame mid-session");
    default:
      throwUsage("unknown request frame type " +
                 std::to_string(request.type));
  }
}

/// Registry lookup outcome shared by the name-referencing handlers.
struct TraceService::Lookup {
  std::shared_ptr<Entry> entry;
  bool evicted = false;
  bool spilled = false;
  Registry::SpillInfo spill;  ///< valid when spilled
};

std::vector<util::Frame> TraceService::handleLoad(
    const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 2) {
    throwUsage("load expects: <name> <path>");
  }
  const std::string& name = tokens[0];
  const std::string& path = tokens[1];

  if (options_.rehydrate) {
    // Fault a spilled entry back in first, so the idempotent-reload check
    // below sees it as resident (a spilled entry is cold, not gone).
    resolveEntry(name);
  }

  std::shared_ptr<Entry> entry;
  bool created = false;
  {
    std::lock_guard<std::mutex> lock(registry_->mutex);
    const auto it = registry_->entries.find(name);
    if (it != registry_->entries.end()) {
      entry = it->second;
      // Idempotent reload of the same file: the anchor that makes
      // concurrent `load` transcripts byte-identical to serial ones.
      if (entry->kind != Entry::Kind::Engine || entry->path != path) {
        throw Error("trace name '" + name +
                        "' is already resident with a different source",
                    ErrorContext::at(ErrorCode::Generic));
      }
      entry->lastUse = ++registry_->useClock;
    } else {
      registry_->tombstones.erase(name);
      registry_->spilled.erase(name);
      entry = std::make_shared<Entry>();
      entry->kind = Entry::Kind::Engine;
      entry->name = name;
      entry->path = path;
      entry->ownerSession = session->id;
      entry->lastUse = ++registry_->useClock;
      registry_->entries.emplace(name, entry);
      created = true;
    }
  }

  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (!entry->engine) {
      try {
        trace::BinaryReadOptions ro;
        ro.threads = options_.threads;
        trace::Trace tr = trace::loadBinaryFile(path, ro);
        engine::EngineOptions eo;
        eo.threads = options_.threads;
        eo.maxCacheEntries = options_.maxCacheEntries;
        auto eng = std::make_unique<engine::AnalysisEngine>(std::move(tr),
                                                            eo);
        std::ostringstream msg;
        msg << "loaded " << name << ": "
            << eng->trace().processCount() << " processes, "
            << eng->trace().eventCount() << " events";
        entry->loadMessage = msg.str();
        entry->engine = std::move(eng);
      } catch (...) {
        // Roll the registration back so the name is usable again; a
        // concurrent waiter holding this shared_ptr retries the load
        // itself and reports the same error.
        if (created) {
          std::lock_guard<std::mutex> lock2(registry_->mutex);
          const auto it = registry_->entries.find(name);
          if (it != registry_->entries.end() && it->second == entry) {
            registry_->entries.erase(it);
          }
        }
        throw;
      }
      const std::size_t bytes =
          trace::approxMemoryBytes(entry->engine->trace());
      std::lock_guard<std::mutex> lock2(registry_->mutex);
      const auto it = registry_->entries.find(name);
      if (it != registry_->entries.end() && it->second == entry) {
        registry_->residentBytes += bytes;
        registry_->sessionBytes[entry->ownerSession] += bytes;
        entry->bytes = bytes;
        registry_->enforceBudgetsLocked(options_, entry.get(), session->id);
      }
    }
    return one(FrameType::Ok, entry->loadMessage);
  }
}

std::vector<util::Frame> TraceService::handleOpen(
    const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) {
    throwUsage("open expects: <name> <segmentFunction> [threshold Z] "
               "[warmup N]");
  }
  const std::string& name = tokens[0];
  const std::string& fn = tokens[1];
  analysis::StreamingOptions streamOptions;
  for (std::size_t i = 2; i < tokens.size(); i += 2) {
    if (i + 1 >= tokens.size()) {
      throwUsage("open option '" + tokens[i] + "' needs a value");
    }
    const std::string& key = tokens[i];
    const std::string& value = tokens[i + 1];
    if (key == "threshold") {
      try {
        std::size_t pos = 0;
        streamOptions.alertThreshold = std::stod(value, &pos);
        if (pos != value.size()) {
          throwUsage("open threshold expects a number, got '" + value + "'");
        }
      } catch (const std::exception&) {
        throwUsage("open threshold expects a number, got '" + value + "'");
      }
    } else if (key == "warmup") {
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        throwUsage("open warmup expects a non-negative integer, got '" +
                   value + "'");
      }
      streamOptions.warmupSegments =
          static_cast<std::size_t>(std::stoul(value));
    } else {
      throwUsage("unknown open option '" + key + "'");
    }
  }

  if (options_.rehydrate) {
    // A spilled live entry is cold, not gone: fault it back in so a
    // same-spec re-open resumes the journaled history instead of
    // silently starting the trace over.
    resolveEntry(name);
  }

  std::lock_guard<std::mutex> lock(registry_->mutex);
  const auto it = registry_->entries.find(name);
  if (it != registry_->entries.end()) {
    const std::shared_ptr<Entry>& entry = it->second;
    const bool sameSpec =
        entry->kind == Entry::Kind::Live &&
        entry->segmentFunctionName == fn &&
        entry->streamOptions.alertThreshold ==
            streamOptions.alertThreshold &&
        entry->streamOptions.warmupSegments == streamOptions.warmupSegments;
    if (!sameSpec) {
      throw Error("trace name '" + name +
                      "' is already resident with a different source",
                  ErrorContext::at(ErrorCode::Generic));
    }
    entry->lastUse = ++registry_->useClock;
    return one(FrameType::Ok, entry->openMessage);
  }
  registry_->tombstones.erase(name);
  registry_->spilled.erase(name);
  auto entry = std::make_shared<Entry>();
  entry->kind = Entry::Kind::Live;
  entry->name = name;
  entry->segmentFunctionName = fn;
  entry->streamOptions = streamOptions;
  entry->ownerSession = session->id;
  entry->lastUse = ++registry_->useClock;
  entry->openMessage = formatOpenMessage(name, fn, streamOptions);
  if (!options_.journalDir.empty()) {
    // Journal the open before the entry becomes visible: an acknowledged
    // open must survive a crash, and a failed journal must fail the open.
    entry->journal = std::make_unique<JournalWriter>(JournalWriter::create(
        options_.journalDir, name, options_.journalFsync));
    JournalOpen open;
    open.segmentFunction = fn;
    open.threshold = streamOptions.alertThreshold;
    open.warmup = streamOptions.warmupSegments;
    entry->journal->append(JournalRecordType::Open, encodeJournalOpen(open));
  }
  registry_->entries.emplace(name, entry);
  return one(FrameType::Ok, entry->openMessage);
}

TraceService::Lookup TraceService::lookupEntry(const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_->mutex);
  Lookup out;
  const auto it = registry_->entries.find(name);
  if (it != registry_->entries.end()) {
    out.entry = it->second;
    out.entry->lastUse = ++registry_->useClock;
  } else if (const auto sit = registry_->spilled.find(name);
             sit != registry_->spilled.end()) {
    out.spilled = true;
    out.spill = sit->second;
  } else if (registry_->tombstones.count(name) > 0) {
    out.evicted = true;
  }
  return out;
}

TraceService::Lookup TraceService::resolveEntry(const std::string& name) {
  Lookup found = lookupEntry(name);
  if (found.entry || found.evicted || !found.spilled) {
    return found;
  }
  // Rebuild outside any lock: engine loads and journal replays are slow,
  // and the budgets below must not hold the registry hostage meanwhile.
  std::shared_ptr<Entry> entry;
  try {
    entry = found.spill.kind == Entry::Kind::Engine
                ? buildEngineEntry(name, found.spill.source)
                : buildLiveFromJournal(found.spill.source, &name);
    entry->ownerSession = found.spill.ownerSession;
  } catch (const std::exception&) {
    entry = nullptr;  // source gone / unreadable: degrade to a tombstone
  }
  std::lock_guard<std::mutex> lock(registry_->mutex);
  const auto it = registry_->entries.find(name);
  if (it != registry_->entries.end()) {
    // Lost a rehydration race; the resident entry wins.
    found.spilled = false;
    found.entry = it->second;
    found.entry->lastUse = ++registry_->useClock;
    return found;
  }
  registry_->spilled.erase(name);
  found.spilled = false;
  if (!entry) {
    registry_->tombstones.insert(name);
    found.evicted = true;
    return found;
  }
  ++registry_->rehydrations;
  entry->lastUse = ++registry_->useClock;
  registry_->entries.emplace(name, entry);
  registry_->residentBytes += entry->bytes;
  registry_->sessionBytes[entry->ownerSession] += entry->bytes;
  registry_->enforceBudgetsLocked(options_, entry.get(),
                                  entry->ownerSession);
  found.entry = entry;
  return found;
}

std::shared_ptr<TraceService::Entry> TraceService::buildEngineEntry(
    const std::string& name, const std::string& path) {
  auto entry = std::make_shared<Entry>();
  entry->kind = Entry::Kind::Engine;
  entry->name = name;
  entry->path = path;
  trace::BinaryReadOptions ro;
  ro.threads = options_.threads;
  trace::Trace tr = trace::loadBinaryFile(path, ro);
  engine::EngineOptions eo;
  eo.threads = options_.threads;
  eo.maxCacheEntries = options_.maxCacheEntries;
  auto eng = std::make_unique<engine::AnalysisEngine>(std::move(tr), eo);
  std::ostringstream msg;
  msg << "loaded " << name << ": " << eng->trace().processCount()
      << " processes, " << eng->trace().eventCount() << " events";
  entry->loadMessage = msg.str();
  entry->engine = std::move(eng);
  entry->bytes = trace::approxMemoryBytes(entry->engine->trace());
  return entry;
}

std::shared_ptr<TraceService::Entry> TraceService::buildLiveFromJournal(
    const std::string& path, const std::string* expectedName) {
  JournalScan scan = scanJournal(path);
  if (scan.torn) {
    // Amputate the torn tail before reopening for append, so the next
    // record lands after the last valid one.
    util::truncateFile(path, scan.validBytes);
  }
  PERFVAR_REQUIRE_E(!scan.records.empty() &&
                        scan.records.front().type == JournalRecordType::Open,
                    "journal has no Open record: " + path,
                    ErrorContext::at(ErrorCode::MalformedEvent));
  PERFVAR_REQUIRE_E(expectedName == nullptr || scan.traceName == *expectedName,
                    "journal names trace '" + scan.traceName +
                        "', expected '" +
                        (expectedName ? *expectedName : std::string{}) + "'",
                    ErrorContext::at(ErrorCode::MalformedEvent));

  const JournalOpen open = decodeJournalOpen(scan.records.front().payload);
  auto entry = std::make_shared<Entry>();
  entry->kind = Entry::Kind::Live;
  entry->name = scan.traceName;
  entry->segmentFunctionName = open.segmentFunction;
  entry->streamOptions.alertThreshold = open.threshold;
  entry->streamOptions.warmupSegments =
      static_cast<std::size_t>(open.warmup);
  entry->openMessage = formatOpenMessage(
      entry->name, entry->segmentFunctionName, entry->streamOptions);

  // Replay is record-driven, not window-driven: the journal says exactly
  // which chunks committed and which stayed buffered, so the rebuilt
  // entry matches the pre-crash one even if the reorder-window setting
  // changed across the restart.
  for (std::size_t i = 1; i < scan.records.size(); ++i) {
    const JournalRecord& record = scan.records[i];
    if (record.type == JournalRecordType::Append) {
      const JournalAppend append = decodeJournalAppend(record.payload);
      if (append.buffered) {
        try {
          trace::BinaryReadOptions ro;
          ro.threads = options_.threads;
          trace::Trace chunk = trace::readBinaryBuffer(
              append.image.data(), append.image.size(), ro);
          Entry::PendingChunk pc;
          pc.image.assign(append.image.data(), append.image.size());
          pc.start = chunk.startTime();
          pc.seq = entry->nextChunkSeq++;
          const auto pos = std::upper_bound(
              entry->pending.begin(), entry->pending.end(), pc.start,
              [](trace::Timestamp start, const Entry::PendingChunk& c) {
                return start < c.start;
              });
          entry->pendingBytes += pc.image.size();
          entry->pending.insert(pos, std::move(pc));
        } catch (const Error&) {
          ++entry->chunksDropped;
        }
      } else {
        try {
          commitChunkLocked(*entry, append.image);
        } catch (const Error&) {
          ++entry->chunksDropped;
        }
      }
      ++entry->appendsDone;
    } else if (record.type == JournalRecordType::Flush) {
      const std::uint64_t count = decodeJournalFlush(record.payload);
      for (std::uint64_t n = 0; n < count && !entry->pending.empty(); ++n) {
        commitEarliestLocked(*entry);
      }
    }
    // Alerts re-fire during replay; only the lifetime counter matters
    // (no sessions exist yet to deliver to).
    entry->alertsTotal += entry->pendingAlerts.size();
    entry->pendingAlerts.clear();
  }

  entry->bytes =
      trace::approxMemoryBytes(entry->live) + entry->pendingBytes;
  if (!options_.journalDir.empty()) {
    entry->journal = std::make_unique<JournalWriter>(
        JournalWriter::openExisting(path, options_.journalFsync));
  }
  return entry;
}

void TraceService::recoverJournals() {
  for (const std::string& path : listJournals(options_.journalDir)) {
    std::shared_ptr<Entry> entry;
    try {
      entry = buildLiveFromJournal(path, nullptr);
    } catch (const std::exception&) {
      continue;  // recovery never fails on one bad journal
    }
    std::lock_guard<std::mutex> lock(registry_->mutex);
    if (registry_->entries.count(entry->name) > 0) {
      continue;
    }
    entry->lastUse = ++registry_->useClock;
    registry_->entries.emplace(entry->name, entry);
    registry_->residentBytes += entry->bytes;
    registry_->sessionBytes[entry->ownerSession] += entry->bytes;
  }
  std::lock_guard<std::mutex> lock(registry_->mutex);
  registry_->enforceBudgetsLocked(options_, nullptr, 0);
}

trace::AppendStats TraceService::commitChunkLocked(Entry& entry,
                                                   std::string_view image) {
  // Sizes before the append: the chunk's events land at each stream's
  // tail, which is what the streaming analyzer must consume.
  std::vector<std::size_t> before(entry.live.processCount());
  for (std::size_t p = 0; p < before.size(); ++p) {
    before[p] = entry.live.processes[p].events.size();
  }

  trace::BinaryReadOptions ro;
  ro.threads = options_.threads;
  const trace::AppendStats stats = trace::appendBinaryBuffer(
      entry.live, image.data(), image.size(), ro);

  if (!entry.sos && entry.live.processCount() > 0) {
    // Adopt-on-first-append just defined the trace; bring the
    // streaming analyzer up against its definitions.
    const auto fn = entry.live.functions.find(entry.segmentFunctionName);
    if (!fn.has_value()) {
      entry.live = trace::Trace{};  // back to pristine, name reusable
      throw Error("segment function '" + entry.segmentFunctionName +
                      "' is not defined in the appended chunk",
                  ErrorContext::at(ErrorCode::MalformedEvent));
    }
    entry.sos = std::make_unique<analysis::StreamingSos>(
        entry.live, *fn, entry.streamOptions);
    Entry* raw = &entry;
    entry.sos->setAlertCallback(
        [raw](const analysis::StreamingAlert& alert) {
          raw->pendingAlerts.push_back(alert);
        });
    before.assign(entry.live.processCount(), 0);
  }

  if (entry.sos) {
    // Feed exactly the appended tail, interleaved in (time, process)
    // order — identical to what one replay() of the final trace visits
    // for this time window. (A zero-process chunk leaves the analyzer
    // unconstructed; there is nothing to feed either.)
    trace::Trace tail;
    tail.resolution = entry.live.resolution;
    tail.processes.resize(entry.live.processCount());
    for (std::size_t p = 0; p < entry.live.processCount(); ++p) {
      const auto& events = entry.live.processes[p].events;
      tail.processes[p].events.assign(
          events.begin() + static_cast<std::ptrdiff_t>(before[p]),
          events.end());
    }
    entry.sos->feed(tail);
  }
  return stats;
}

void TraceService::commitEarliestLocked(Entry& entry) {
  Entry::PendingChunk chunk = std::move(entry.pending.front());
  entry.pending.erase(entry.pending.begin());
  entry.pendingBytes -= std::min(entry.pendingBytes, chunk.image.size());
  try {
    commitChunkLocked(entry, chunk.image);
  } catch (const Error&) {
    ++entry.chunksDropped;
  }
}

std::size_t TraceService::flushWindowToLocked(Entry& entry,
                                              std::size_t targetBytes) {
  std::size_t processed = 0;
  while (!entry.pending.empty() && entry.pendingBytes > targetBytes) {
    commitEarliestLocked(entry);
    ++processed;
  }
  if (processed > 0 && entry.journal) {
    journalRecordLocked(entry, JournalRecordType::Flush,
                        encodeJournalFlush(processed));
  }
  return processed;
}

void TraceService::journalRecordLocked(Entry& entry, JournalRecordType type,
                                       std::string_view payload) {
  if (!entry.journal) {
    return;
  }
  try {
    entry.journal->append(type, payload);
  } catch (...) {
    // Durability is gone for this entry; keep serving from memory but
    // never pretend later records were journaled, and fail this request
    // loudly so the producer knows.
    entry.journal.reset();
    throw;
  }
}

std::vector<std::string> TraceService::drainAlertsLocked(Entry& entry) {
  std::vector<std::string> lines;
  lines.reserve(entry.pendingAlerts.size());
  for (const analysis::StreamingAlert& alert : entry.pendingAlerts) {
    lines.push_back(entry.name + ": " +
                    analysis::formatStreamingAlert(entry.live, alert));
  }
  entry.alertsTotal += entry.pendingAlerts.size();
  entry.pendingAlerts.clear();
  return lines;
}

void TraceService::broadcastAlertsLocked(
    Entry& entry, const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& lines, std::vector<util::Frame>& out) {
  // Queue to subscribed sessions while holding the entry lock, so alerts
  // of successive appends arrive in order. Delivery is the bounded-queue
  // nonblocking path: a slow subscriber cannot stall this handler. The
  // requester's own alerts go into the response sequence instead
  // (deterministically before the final frame).
  auto& subs = entry.subscribers;
  for (auto it = subs.begin(); it != subs.end();) {
    const std::shared_ptr<ServerSession> sub = it->lock();
    if (!sub) {
      it = subs.erase(it);
      continue;
    }
    if (!session || sub->id != session->id) {
      for (const std::string& line : lines) {
        sub->sender->enqueueAlert(line);
      }
    }
    ++it;
  }
  if (session && session->subscriptions.count(entry.name) > 0) {
    for (const std::string& line : lines) {
      out.push_back(frame(FrameType::Alert, line));
    }
  }
}

std::size_t TraceService::flushForReadLocked(
    Entry& entry, const std::shared_ptr<ServerSession>& session,
    std::vector<util::Frame>& out) {
  if (entry.kind != Entry::Kind::Live || entry.pending.empty()) {
    return 0;
  }
  const std::size_t processed = flushWindowToLocked(entry, 0);
  broadcastAlertsLocked(entry, session, drainAlertsLocked(entry), out);
  return processed;
}

void TraceService::reaccountEntry(const std::string& name,
                                  const std::shared_ptr<Entry>& entry,
                                  std::size_t newBytes) {
  std::lock_guard<std::mutex> lock(registry_->mutex);
  const auto it = registry_->entries.find(name);
  if (it != registry_->entries.end() && it->second == entry) {
    registry_->residentBytes += newBytes;
    registry_->residentBytes -= std::min(registry_->residentBytes,
                                         entry->bytes);
    auto sess = registry_->sessionBytes.find(entry->ownerSession);
    if (sess != registry_->sessionBytes.end()) {
      sess->second += newBytes;
      sess->second -= std::min(sess->second, entry->bytes);
    }
    entry->bytes = newBytes;
    registry_->enforceBudgetsLocked(options_, entry.get(),
                                    entry->ownerSession);
  }
}

std::vector<util::Frame> TraceService::handleAppend(
    const std::shared_ptr<ServerSession>& session,
    std::string_view payload) {
  const AppendPayload append = decodeAppendPayload(payload);
  const Lookup found = resolveEntry(append.name);
  if (found.evicted) {
    return one(FrameType::Evicted, append.name);
  }
  if (!found.entry) {
    throwUnknownTrace(append.name);
  }
  const std::shared_ptr<Entry>& entry = found.entry;
  if (entry->kind != Entry::Kind::Live) {
    throw Error("trace '" + append.name +
                    "' is file-backed; append requires a live trace "
                    "(use open)",
                ErrorContext::at(ErrorCode::Generic));
  }

  std::vector<util::Frame> out;
  std::string okMessage;
  std::vector<std::string> alertLines;
  std::size_t newBytes = 0;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    const std::size_t window = options_.reorderWindowBytes;
    bool direct = window == 0;
    std::size_t flushed = 0;
    trace::Trace chunk;
    if (!direct) {
      // Window mode decodes the chunk strictly up front: a corrupt image
      // is rejected with the same error taxonomy as a direct append, and
      // never journaled.
      trace::BinaryReadOptions ro;
      ro.threads = options_.threads;
      chunk = trace::readBinaryBuffer(append.image.data(),
                                      append.image.size(), ro);
      // Definition-only chunks carry no ordering constraint; commit them
      // directly so adopt-on-first-append semantics hold.
      direct = chunk.eventCount() == 0;
      if (!direct && entry->live.eventCount() > 0 &&
          chunk.startTime() < entry->live.endTime()) {
        throw Error(
            "chunk for '" + append.name +
                "' starts before the committed tail (the reorder window "
                "already flushed past it)",
            ErrorContext::at(ErrorCode::ChunkOutOfWindow));
      }
    } else if (!entry->pending.empty()) {
      // Recovery can leave a window from a run that had one configured;
      // commit it before direct appends so time order is preserved.
      flushed += flushWindowToLocked(*entry, 0);
    }

    if (direct) {
      const trace::AppendStats stats =
          commitChunkLocked(*entry, append.image);
      journalRecordLocked(*entry, JournalRecordType::Append,
                          encodeJournalAppend(/*buffered=*/false,
                                              append.image));
      ++entry->appendsDone;
      alertLines = drainAlertsLocked(*entry);
      std::ostringstream msg;
      msg << "appended " << append.name << ": " << stats.eventsAppended
          << " events, "
          << (entry->sos ? entry->sos->segmentsCompleted() : 0)
          << " segments, " << alertLines.size() << " alerts";
      okMessage = msg.str();
    } else {
      // Journal before the buffer mutation: an accepted chunk must be
      // recoverable the instant its Ok is on the wire.
      journalRecordLocked(*entry, JournalRecordType::Append,
                          encodeJournalAppend(/*buffered=*/true,
                                              append.image));
      Entry::PendingChunk pc;
      pc.image.assign(append.image.data(), append.image.size());
      pc.start = chunk.startTime();
      pc.seq = entry->nextChunkSeq++;
      const auto pos = std::upper_bound(
          entry->pending.begin(), entry->pending.end(), pc.start,
          [](trace::Timestamp start, const Entry::PendingChunk& c) {
            return start < c.start;
          });
      entry->pendingBytes += pc.image.size();
      entry->pending.insert(pos, std::move(pc));
      ++entry->appendsDone;
      if (entry->pendingBytes > window) {
        flushed += flushWindowToLocked(*entry, window);
      }
      alertLines = drainAlertsLocked(*entry);
      std::ostringstream msg;
      msg << "buffered " << append.name << ": " << chunk.eventCount()
          << " events, window " << entry->pending.size() << " chunks/"
          << entry->pendingBytes << " bytes";
      if (flushed > 0) {
        msg << ", flushed " << flushed << " chunks, " << alertLines.size()
            << " alerts";
      }
      okMessage = msg.str();
    }
    newBytes =
        trace::approxMemoryBytes(entry->live) + entry->pendingBytes;
    broadcastAlertsLocked(*entry, session, alertLines, out);
  }

  reaccountEntry(append.name, entry, newBytes);
  out.push_back(frame(FrameType::Ok, okMessage));
  return out;
}

std::vector<util::Frame> TraceService::handleAnalyze(
    const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& tokens) {
  if (tokens.empty()) {
    throwUsage("analyze expects: <name> [candidate K] [threshold Z] "
               "[max-hotspots N]");
  }
  const Lookup found = resolveEntry(tokens[0]);
  if (found.evicted) {
    return one(FrameType::Evicted, tokens[0]);
  }
  if (!found.entry) {
    throwUnknownTrace(tokens[0]);
  }
  analysis::PipelineOptions opts = parsePipelineOptions(tokens, 1);
  const std::shared_ptr<Entry>& entry = found.entry;
  std::vector<util::Frame> out;
  std::size_t flushed = 0;
  std::size_t newBytes = 0;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    flushed = flushForReadLocked(*entry, session, out);
    if (entry->kind == Entry::Kind::Engine) {
      out.push_back(frame(FrameType::Data, entry->engine->formatReport(opts)));
    } else {
      PERFVAR_REQUIRE(entry->live.processCount() > 0,
                      "live trace '" + tokens[0] +
                          "' has no appended data yet");
      opts.threads = options_.threads;
      const analysis::AnalysisResult result =
          analysis::analyzeTrace(entry->live, opts);
      out.push_back(frame(FrameType::Data,
                          analysis::formatAnalysis(entry->live, result)));
    }
    newBytes = entry->kind == Entry::Kind::Live
                   ? trace::approxMemoryBytes(entry->live) +
                         entry->pendingBytes
                   : entry->bytes;
  }
  if (flushed > 0) {
    reaccountEntry(tokens[0], entry, newBytes);
  }
  return out;
}

std::vector<util::Frame> TraceService::handleExport(
    const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& tokens) {
  if (tokens.size() < 2) {
    throwUsage("export expects: <name> <text|json|csv|csv-iterations|"
               "csv-hotspots> [analyze options]");
  }
  const Lookup found = resolveEntry(tokens[0]);
  if (found.evicted) {
    return one(FrameType::Evicted, tokens[0]);
  }
  if (!found.entry) {
    throwUnknownTrace(tokens[0]);
  }
  const analysis::ExportFormat format = parseExportFormat(tokens[1]);
  analysis::PipelineOptions opts = parsePipelineOptions(tokens, 2);
  const std::shared_ptr<Entry>& entry = found.entry;
  std::vector<util::Frame> out;
  std::size_t flushed = 0;
  std::size_t newBytes = 0;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    flushed = flushForReadLocked(*entry, session, out);
    std::ostringstream os;
    if (entry->kind == Entry::Kind::Engine) {
      entry->engine->exportReport(format, os, opts);
    } else {
      PERFVAR_REQUIRE(entry->live.processCount() > 0,
                      "live trace '" + tokens[0] +
                          "' has no appended data yet");
      opts.threads = options_.threads;
      const analysis::AnalysisResult result =
          analysis::analyzeTrace(entry->live, opts);
      analysis::exportReport(entry->live, result, format, os);
    }
    out.push_back(frame(FrameType::Data, os.str()));
    newBytes = entry->kind == Entry::Kind::Live
                   ? trace::approxMemoryBytes(entry->live) +
                         entry->pendingBytes
                   : entry->bytes;
  }
  if (flushed > 0) {
    reaccountEntry(tokens[0], entry, newBytes);
  }
  return out;
}

std::vector<util::Frame> TraceService::handleLint(
    const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) {
    throwUsage("lint expects: <name>");
  }
  const Lookup found = resolveEntry(tokens[0]);
  if (found.evicted) {
    return one(FrameType::Evicted, tokens[0]);
  }
  if (!found.entry) {
    throwUnknownTrace(tokens[0]);
  }
  const std::shared_ptr<Entry>& entry = found.entry;
  std::vector<util::Frame> out;
  std::size_t flushed = 0;
  std::size_t newBytes = 0;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    flushed = flushForReadLocked(*entry, session, out);
    std::ostringstream os;
    if (entry->kind == Entry::Kind::Engine) {
      lint::exportLintReport(*entry->engine->lintReport(),
                             analysis::ExportFormat::Text, os);
    } else {
      PERFVAR_REQUIRE(entry->live.processCount() > 0,
                      "live trace '" + tokens[0] +
                          "' has no appended data yet");
      lint::LintOptions lo;
      lo.threads = options_.threads;
      lint::exportLintReport(lint::lintTrace(entry->live, lo),
                             analysis::ExportFormat::Text, os);
    }
    out.push_back(frame(FrameType::Data, os.str()));
    newBytes = entry->kind == Entry::Kind::Live
                   ? trace::approxMemoryBytes(entry->live) +
                         entry->pendingBytes
                   : entry->bytes;
  }
  if (flushed > 0) {
    reaccountEntry(tokens[0], entry, newBytes);
  }
  return out;
}

std::vector<util::Frame> TraceService::handleStats(
    const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& tokens) {
  static_cast<void>(session);  // stats never flushes the reorder window
  if (tokens.empty()) {
    const ServiceStats s = stats();
    std::ostringstream os;
    os << "traces: " << s.traces << '\n'
       << "resident: " << s.residentBytes << " bytes\n"
       << "evictions: " << s.evictions << '\n'
       << "spilled: " << s.spilled << '\n'
       << "rehydrations: " << s.rehydrations << '\n';
    return one(FrameType::Data, os.str());
  }
  if (tokens.size() != 1) {
    throwUsage("stats expects at most one <name>");
  }
  const Lookup found = resolveEntry(tokens[0]);
  if (found.evicted) {
    return one(FrameType::Evicted, tokens[0]);
  }
  if (!found.entry) {
    throwUnknownTrace(tokens[0]);
  }
  const std::shared_ptr<Entry>& entry = found.entry;
  std::lock_guard<std::mutex> lock(entry->mutex);
  std::ostringstream os;
  os << "trace: " << entry->name << '\n';
  if (entry->kind == Entry::Kind::Engine) {
    os << "kind: engine\n"
       << "bytes: " << entry->bytes << '\n'
       << engine::formatCacheStats(entry->engine->cacheStats()) << '\n';
  } else {
    os << "kind: live\n"
       << "bytes: " << entry->bytes << '\n'
       << "appends: " << entry->appendsDone << '\n'
       << "segments: "
       << (entry->sos ? entry->sos->segmentsCompleted() : 0) << '\n'
       << "alerts: " << entry->alertsTotal << '\n'
       << "window: " << entry->pending.size() << " chunks, "
       << entry->pendingBytes << " bytes\n"
       << "window-dropped: " << entry->chunksDropped << '\n'
       << "journal: " << (entry->journal ? "on" : "off") << '\n';
  }
  return one(FrameType::Data, os.str());
}

std::vector<util::Frame> TraceService::handleEvict(
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) {
    throwUsage("evict expects: <name>");
  }
  std::lock_guard<std::mutex> lock(registry_->mutex);
  const auto it = registry_->entries.find(tokens[0]);
  if (it == registry_->entries.end()) {
    if (registry_->spilled.count(tokens[0]) > 0) {
      // Explicit eviction of a spilled name: the user wants it gone, so
      // drop the rehydration path too.
      registry_->spilled.erase(tokens[0]);
      registry_->tombstones.insert(tokens[0]);
      return one(FrameType::Ok, "evicted " + tokens[0]);
    }
    if (registry_->tombstones.count(tokens[0]) > 0) {
      return one(FrameType::Evicted, tokens[0]);
    }
    throwUnknownTrace(tokens[0]);
  }
  // Explicit eviction is a drop, never a spill: rehydration is for the
  // budget's evictions, not the user's.
  registry_->evictLocked(it, /*spill=*/false);
  return one(FrameType::Ok, "evicted " + tokens[0]);
}

std::vector<util::Frame> TraceService::handleSubscribe(
    const std::shared_ptr<ServerSession>& session,
    const std::vector<std::string>& tokens) {
  if (tokens.size() != 1) {
    throwUsage("subscribe expects: <name>");
  }
  const Lookup found = resolveEntry(tokens[0]);
  if (found.evicted) {
    return one(FrameType::Evicted, tokens[0]);
  }
  if (!found.entry) {
    throwUnknownTrace(tokens[0]);
  }
  const std::shared_ptr<Entry>& entry = found.entry;
  if (entry->kind != Entry::Kind::Live) {
    throw Error("trace '" + tokens[0] +
                    "' is file-backed; only live traces emit alerts",
                ErrorContext::at(ErrorCode::Generic));
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  entry->subscribers.push_back(session);
  session->subscriptions.insert(tokens[0]);
  return one(FrameType::Ok, "subscribed " + tokens[0]);
}

}  // namespace perfvar::server
