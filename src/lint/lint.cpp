#include "lint/lint.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "trace/filter.hpp"
#include "util/error.hpp"
#include "util/json_writer.hpp"
#include "util/thread_pool.hpp"

namespace perfvar::lint {

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Info:
      return "info";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

Severity severityFromName(const std::string& name) {
  if (name == "info") {
    return Severity::Info;
  }
  if (name == "warning") {
    return Severity::Warning;
  }
  if (name == "error") {
    return Severity::Error;
  }
  PERFVAR_REQUIRE(false, "unknown severity name '" + name +
                             "' (expected info, warning or error)");
}

std::size_t LintReport::count(Severity s) const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    n += f.severity == s ? 1 : 0;
  }
  return n;
}

std::size_t LintReport::countAtLeast(Severity s) const {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    n += f.severity >= s ? 1 : 0;
  }
  return n;
}

void Sink::reportAt(Severity severity, std::size_t eventIndex,
                    std::string message) {
  if (severity < minSeverity_) {
    return;
  }
  out_.push_back(Finding{ruleId_, severity, process_,
                         static_cast<std::int64_t>(eventIndex),
                         std::move(message)});
}

void Sink::report(Severity severity, std::string message) {
  if (severity < minSeverity_) {
    return;
  }
  out_.push_back(Finding{ruleId_, severity, process_, -1, std::move(message)});
}

void Sink::reportProcess(Severity severity, trace::ProcessId process,
                         std::string message) {
  if (severity < minSeverity_) {
    return;
  }
  out_.push_back(Finding{ruleId_, severity, static_cast<std::int64_t>(process),
                         -1, std::move(message)});
}

void Rule::checkProcess(const RuleContext&, trace::ProcessId, Sink&) const {}

void Rule::checkTrace(const RuleContext&, Sink&) const {}

RuleContext::RuleContext(const trace::TraceView& trace,
                         const LintOptions& options)
    : view_(trace), options_(options) {}

RuleContext::~RuleContext() = default;

const trace::TraceView* RuleContext::analysisTrace() const {
  if (!analysisTraceComputed_) {
    analysisTraceComputed_ = true;
    if (view_.quarantined().empty()) {
      analysisTrace_ = &view_;
    } else {
      try {
        filteredView_ = view_.dropQuarantined();
        analysisTrace_ = &filteredView_;
      } catch (const std::exception&) {
        analysisTrace_ = nullptr;  // every rank quarantined
      }
    }
  }
  return analysisTrace_;
}

namespace {

/// FlatProfile::build replays streams without consulting the registries
/// (an undefined function id indexes its stats row out of bounds), so the
/// context must not hand it a trace with dangling refs. Imbalance and
/// backwards clocks are caught by the replay's own checks; dangling refs
/// are the one precondition to screen here.
bool refsAreDefined(const trace::TraceView& tr) {
  for (trace::ProcessId p = 0; p < tr.processCount(); ++p) {
    const trace::RankPin pin = tr.rank(p);
    for (const trace::Event& e : pin.events()) {
      switch (e.kind) {
        case trace::EventKind::Enter:
        case trace::EventKind::Leave:
          if (e.ref >= tr.functions().size()) {
            return false;
          }
          break;
        case trace::EventKind::Metric:
          if (e.ref >= tr.metrics().size()) {
            return false;
          }
          break;
        default:
          break;
      }
    }
  }
  return true;
}

}  // namespace

const profile::FlatProfile* RuleContext::profileOrNull() const {
  if (!profileComputed_) {
    profileComputed_ = true;
    const trace::TraceView* tr = analysisTrace();
    if (tr != nullptr && refsAreDefined(*tr)) {
      try {
        profile_ =
            std::make_unique<profile::FlatProfile>(profile::FlatProfile::build(*tr));
      } catch (const std::exception&) {
        profile_.reset();  // malformed streams; structural rules report them
      }
    }
  }
  return profile_.get();
}

const analysis::DominantSelection* RuleContext::dominantOrNull() const {
  if (!dominantComputed_) {
    dominantComputed_ = true;
    if (const profile::FlatProfile* prof = profileOrNull()) {
      analysis::DominantOptions dopts;
      dopts.invocationMultiplier = options_.invocationMultiplier;
      dopts.excludeSynchronization = true;
      dopts.syncClassifier = options_.sync;
      try {
        dominant_ = std::make_unique<analysis::DominantSelection>(
            analysis::selectDominantFunction(*analysisTrace(), *prof, dopts));
      } catch (const std::exception&) {
        dominant_.reset();
      }
    }
  }
  return dominant_.get();
}

const analysis::DepAnalysis* RuleContext::depAnalysisOrNull() const {
  if (!depAnalysisComputed_) {
    depAnalysisComputed_ = true;
    if (const trace::TraceView* tr = analysisTrace()) {
      analysis::DepAnalysisOptions dopts;
      dopts.sync = options_.sync;
      dopts.serialization = options_.serialization;
      dopts.idleWave = options_.idleWave;
      // Runs in the serial global phase; the per-rank pool (if any) is
      // idle there, so graph construction may reuse it. Thread count
      // never changes the result (see depgraph.hpp).
      dopts.pool = options_.pool;
      dopts.threads = options_.threads;
      try {
        depAnalysis_ = std::make_unique<analysis::DepAnalysis>(
            analysis::analyzeDependencies(*tr, dopts));
      } catch (const std::exception&) {
        depAnalysis_.reset();
      }
    }
  }
  return depAnalysis_.get();
}

void RuleRegistry::add(std::shared_ptr<const Rule> rule) {
  PERFVAR_REQUIRE(rule != nullptr, "null lint rule");
  const std::string_view id = rule->id();
  PERFVAR_REQUIRE(!id.empty(), "empty lint rule id");
  for (const char c : id) {
    PERFVAR_REQUIRE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '-',
                    "lint rule id '" + std::string(id) +
                        "' is not kebab-case ([a-z0-9-])");
  }
  PERFVAR_REQUIRE(find(id) == nullptr,
                  "duplicate lint rule id '" + std::string(id) + "'");
  rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(std::string_view id) const {
  for (const auto& rule : rules_) {
    if (rule->id() == id) {
      return rule.get();
    }
  }
  return nullptr;
}

namespace {

bool contains(const std::vector<std::string>& names, std::string_view id) {
  return std::find(names.begin(), names.end(), id) != names.end();
}

/// Per-rank findings ordering: by event index (whole-process findings with
/// index -1 first, end-of-stream findings last because they carry index ==
/// events.size()), ties in rule registry order. stable_sort keeps the
/// per-rule emission order for findings at the same event.
void sortRankFindings(std::vector<Finding>& findings,
                      const std::vector<std::size_t>& ruleOrder,
                      const std::vector<std::size_t>& findingRule) {
  std::vector<std::size_t> idx(findings.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    idx[i] = i;
  }
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (findings[a].eventIndex != findings[b].eventIndex) {
                       return findings[a].eventIndex < findings[b].eventIndex;
                     }
                     return ruleOrder[findingRule[a]] <
                            ruleOrder[findingRule[b]];
                   });
  std::vector<Finding> sorted;
  sorted.reserve(findings.size());
  for (const std::size_t i : idx) {
    sorted.push_back(std::move(findings[i]));
  }
  findings = std::move(sorted);
}

}  // namespace

LintReport lintTrace(const trace::TraceView& trace, const LintOptions& options,
                     const RuleRegistry& registry) {
  LintReport report;
  report.processCount = trace.processCount();

  // Resolve the enabled rule list (registry order). Unknown ids in the
  // suppression lists become Info findings instead of hard errors so that
  // a config naming a since-renamed rule still lints.
  std::vector<const Rule*> enabled;
  for (const auto& rule : registry.rules()) {
    if (contains(options.disabledRules, rule->id())) {
      continue;
    }
    if (!options.onlyRules.empty() && !contains(options.onlyRules, rule->id())) {
      continue;
    }
    enabled.push_back(rule.get());
    report.rulesRun.emplace_back(rule->id());
  }
  std::vector<Finding> configFindings;
  if (options.minSeverity <= Severity::Info) {
    for (const auto& names :
         {&options.disabledRules, &options.onlyRules}) {
      for (const std::string& name : *names) {
        if (registry.find(name) == nullptr) {
          configFindings.push_back(
              Finding{"lint-config", Severity::Info, -1, -1,
                      "unknown rule id '" + name + "' in " +
                          (names == &options.disabledRules ? "disabledRules"
                                                           : "onlyRules")});
        }
      }
    }
  }

  RuleContext context(trace, options);
  const std::size_t processCount = trace.processCount();

  // Registry position of each enabled rule, for deterministic tie-breaks.
  std::vector<std::size_t> ruleOrder(enabled.size());
  for (std::size_t r = 0; r < enabled.size(); ++r) {
    ruleOrder[r] = r;
  }

  // Per-rank phase: every task writes only its own rank's slot, so the
  // merged result is independent of the thread count.
  std::vector<std::vector<Finding>> perRank(processCount);
  const auto checkRank = [&](std::size_t p) {
    std::vector<Finding>& out = perRank[p];
    std::vector<std::size_t> findingRule;  // parallel to `out`
    for (std::size_t r = 0; r < enabled.size(); ++r) {
      const Rule* rule = enabled[r];
      Sink sink(std::string(rule->id()), static_cast<std::int64_t>(p),
                options.minSeverity, out);
      try {
        rule->checkProcess(context, static_cast<trace::ProcessId>(p), sink);
      } catch (const std::exception& e) {
        // Robustness contract: a throwing rule becomes a finding, never a
        // crash of the lint run itself.
        out.push_back(Finding{std::string(rule->id()), Severity::Warning,
                              static_cast<std::int64_t>(p), -1,
                              std::string("rule aborted: ") + e.what()});
      }
      findingRule.resize(out.size(), r);
    }
    sortRankFindings(out, ruleOrder, findingRule);
  };

  util::ThreadPool* pool = options.pool;
  std::unique_ptr<util::ThreadPool> owned;
  if (pool == nullptr && options.threads != 1) {
    owned = std::make_unique<util::ThreadPool>(
        util::ThreadPool::resolveThreadCount(options.threads));
    pool = owned.get();
  }
  util::parallelChunks(pool, processCount,
                       std::max<std::size_t>(1, options.grainSizeRanks),
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t p = begin; p < end; ++p) {
                           checkRank(p);
                         }
                       });

  for (std::size_t p = 0; p < processCount; ++p) {
    for (Finding& f : perRank[p]) {
      report.findings.push_back(std::move(f));
    }
  }

  // Global phase: serial, registry order, appended after rank findings.
  for (const Rule* rule : enabled) {
    Sink sink(std::string(rule->id()), -1, options.minSeverity,
              report.findings);
    try {
      rule->checkTrace(context, sink);
    } catch (const std::exception& e) {
      report.findings.push_back(Finding{std::string(rule->id()),
                                        Severity::Warning, -1, -1,
                                        std::string("rule aborted: ") +
                                            e.what()});
    }
  }
  for (Finding& f : configFindings) {
    report.findings.push_back(std::move(f));
  }

  // Cap findings per rule, keeping the first maxFindingsPerRule in report
  // order and recording how many were dropped.
  if (options.maxFindingsPerRule != 0) {
    std::map<std::string, std::uint64_t> kept;
    std::map<std::string, std::uint64_t> dropped;
    std::vector<Finding> capped;
    capped.reserve(report.findings.size());
    for (Finding& f : report.findings) {
      if (kept[f.rule] < options.maxFindingsPerRule) {
        ++kept[f.rule];
        capped.push_back(std::move(f));
      } else {
        ++dropped[f.rule];
      }
    }
    report.findings = std::move(capped);
    for (const auto& [rule, n] : dropped) {
      report.truncated.push_back(TruncatedRule{rule, n});
    }
  }

  return report;
}

namespace {

std::string findingLocation(const Finding& f) {
  std::ostringstream os;
  if (f.process < 0) {
    os << "trace";
  } else {
    os << "process " << f.process;
    if (f.eventIndex >= 0) {
      os << ", event " << f.eventIndex;
    }
  }
  return os.str();
}

}  // namespace

std::string formatLintReport(const LintReport& report) {
  std::ostringstream os;
  os << "lint: " << report.rulesRun.size() << " rule(s), "
     << report.processCount << " process(es)\n";
  for (const Finding& f : report.findings) {
    os << severityName(f.severity) << " [" << f.rule << "] "
       << findingLocation(f) << ": " << f.message << '\n';
  }
  for (const TruncatedRule& t : report.truncated) {
    os << "note: [" << t.rule << "] " << t.dropped
       << " further finding(s) suppressed (maxFindingsPerRule)\n";
  }
  if (report.clean()) {
    os << "no findings\n";
  } else {
    os << report.count(Severity::Error) << " error(s), "
       << report.count(Severity::Warning) << " warning(s), "
       << report.count(Severity::Info) << " info\n";
  }
  return os.str();
}

namespace {

void writeLintJson(const LintReport& report, std::ostream& out) {
  util::JsonWriter w(out);
  w.beginObject();
  w.key("lint");
  w.beginObject();
  w.key("processes");
  w.value(static_cast<std::uint64_t>(report.processCount));
  w.key("rules");
  w.beginArray();
  for (const std::string& id : report.rulesRun) {
    w.value(id);
  }
  w.endArray();
  w.key("counts");
  w.beginObject();
  w.key("error");
  w.value(static_cast<std::uint64_t>(report.count(Severity::Error)));
  w.key("warning");
  w.value(static_cast<std::uint64_t>(report.count(Severity::Warning)));
  w.key("info");
  w.value(static_cast<std::uint64_t>(report.count(Severity::Info)));
  w.endObject();
  w.key("findings");
  w.beginArray();
  for (const Finding& f : report.findings) {
    w.beginObject();
    w.key("rule");
    w.value(f.rule);
    w.key("severity");
    w.value(std::string(severityName(f.severity)));
    w.key("process");
    w.value(static_cast<std::int64_t>(f.process));
    w.key("event");
    w.value(static_cast<std::int64_t>(f.eventIndex));
    w.key("message");
    w.value(f.message);
    w.endObject();
  }
  w.endArray();
  if (!report.truncated.empty()) {
    w.key("truncated");
    w.beginArray();
    for (const TruncatedRule& t : report.truncated) {
      w.beginObject();
      w.key("rule");
      w.value(t.rule);
      w.key("dropped");
      w.value(t.dropped);
      w.endObject();
    }
    w.endArray();
  }
  w.endObject();
  w.endObject();
  out << '\n';
}

std::string csvQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    out += c;
    if (c == '"') {
      out += '"';
    }
  }
  out += '"';
  return out;
}

void writeLintCsv(const LintReport& report, std::ostream& out) {
  out << "severity,rule,process,event,message\n";
  for (const Finding& f : report.findings) {
    out << severityName(f.severity) << ',' << f.rule << ',' << f.process << ','
        << f.eventIndex << ',' << csvQuote(f.message) << '\n';
  }
}

}  // namespace

void exportLintReport(const LintReport& report, analysis::ExportFormat format,
                      std::ostream& out) {
  switch (format) {
    case analysis::ExportFormat::Text:
      out << formatLintReport(report);
      return;
    case analysis::ExportFormat::Json:
      writeLintJson(report, out);
      return;
    case analysis::ExportFormat::Csv:
      writeLintCsv(report, out);
      return;
    case analysis::ExportFormat::CsvIterations:
    case analysis::ExportFormat::CsvHotspots:
      break;
  }
  PERFVAR_REQUIRE(false, "unsupported ExportFormat for lint reports "
                         "(use text, json or csv)");
}

std::string exportLintReportString(const LintReport& report,
                                   analysis::ExportFormat format) {
  std::ostringstream os;
  exportLintReport(report, format, os);
  return os.str();
}

}  // namespace perfvar::lint
